// Shared checked numeric parsing for the komodo-* command-line tools.
//
// strtoull with a null endptr accepts "10x" as 10 and "abc" as 0 without
// complaint — and for tools whose whole stdout is a pure function of flags
// like --seed, a typo then silently runs a *different* deterministic
// campaign. ParseU64 demands the full token parse, rejects negatives (which
// strtoull would wrap), range-checks, and exits with a diagnostic naming the
// offending flag.
#ifndef TOOLS_CLI_UTIL_H_
#define TOOLS_CLI_UTIL_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace komodo::cli {

// Parses `value` as an unsigned 64-bit integer — decimal, or hex/octal with
// the usual 0x/0 prefixes (base 0). The entire token must be consumed and
// the result must lie in [min_value, max_value]; any violation prints a
// one-line diagnostic naming `flag` and exits with status 2 (usage error).
inline uint64_t ParseU64(const char* prog, const char* flag, const char* value,
                         uint64_t min_value = 0,
                         uint64_t max_value = std::numeric_limits<uint64_t>::max()) {
  // Demand a leading digit: rules out empty tokens, whitespace, and the
  // "-1" / "+1" forms strtoull would quietly accept (negatives by wrapping).
  if (value == nullptr || !std::isdigit(static_cast<unsigned char>(value[0]))) {
    std::fprintf(stderr, "%s: %s expects an unsigned integer, got '%s'\n", prog, flag,
                 value == nullptr ? "" : value);
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 0);
  if (errno == ERANGE || end == value || *end != '\0') {
    std::fprintf(stderr, "%s: %s expects an unsigned integer, got '%s'\n", prog, flag, value);
    std::exit(2);
  }
  if (parsed < min_value || parsed > max_value) {
    std::fprintf(stderr, "%s: %s must be in [%llu, %llu], got %s\n", prog, flag,
                 static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value), value);
    std::exit(2);
  }
  return parsed;
}

}  // namespace komodo::cli

#endif  // TOOLS_CLI_UTIL_H_
