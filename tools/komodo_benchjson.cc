// komodo-benchjson: schema validator for the JSON artifacts the bench
// harness and the tracer emit. check.sh runs it over every bench-smoke
// output so a drifting emitter fails CI rather than silently producing
// unparseable artifacts.
//
//   komodo-benchjson FILE...                    auto-detect schema per file
//   komodo-benchjson --schema bench FILE...     force komodo-bench-v1
//   komodo-benchjson --schema metrics FILE...   force komodo-metrics-v1
//   komodo-benchjson --schema chrome FILE...    force chrome-trace format
//
// Exit status: 0 all files valid, 1 any violation, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace {

using komodo::obs::JsonValue;
using komodo::obs::ParseJson;

std::vector<std::string> g_errors;

void Fail(const std::string& where, const std::string& what) {
  g_errors.push_back(where + ": " + what);
}

bool RequireMember(const JsonValue& v, const std::string& where, const char* key,
                   JsonValue::Kind kind, const JsonValue** out = nullptr) {
  const JsonValue* m = v.Find(key);
  if (m == nullptr) {
    Fail(where, std::string("missing key \"") + key + "\"");
    return false;
  }
  if (m->kind != kind) {
    Fail(where, std::string("key \"") + key + "\" has wrong type");
    return false;
  }
  if (out != nullptr) {
    *out = m;
  }
  return true;
}

// komodo-bench-v1: {"schema","bench","config":{},"results":[{name,metric,value,unit}]}
void ValidateBench(const JsonValue& root, const std::string& file) {
  RequireMember(root, file, "bench", JsonValue::Kind::kString);
  RequireMember(root, file, "config", JsonValue::Kind::kObject);
  const JsonValue* results = nullptr;
  if (!RequireMember(root, file, "results", JsonValue::Kind::kArray, &results)) {
    return;
  }
  if (results->items.empty()) {
    Fail(file, "results array is empty");
  }
  for (size_t i = 0; i < results->items.size(); ++i) {
    const JsonValue& r = results->items[i];
    const std::string where = file + " results[" + std::to_string(i) + "]";
    if (!r.IsObject()) {
      Fail(where, "not an object");
      continue;
    }
    RequireMember(r, where, "name", JsonValue::Kind::kString);
    RequireMember(r, where, "metric", JsonValue::Kind::kString);
    RequireMember(r, where, "value", JsonValue::Kind::kNumber);
    RequireMember(r, where, "unit", JsonValue::Kind::kString);
  }
}

void ValidateHistogram(const JsonValue& h, const std::string& where) {
  RequireMember(h, where, "count", JsonValue::Kind::kNumber);
  RequireMember(h, where, "sum", JsonValue::Kind::kNumber);
  RequireMember(h, where, "min", JsonValue::Kind::kNumber);
  RequireMember(h, where, "max", JsonValue::Kind::kNumber);
  RequireMember(h, where, "mean", JsonValue::Kind::kNumber);
  const JsonValue* buckets = nullptr;
  if (!RequireMember(h, where, "log2_buckets", JsonValue::Kind::kArray, &buckets)) {
    return;
  }
  uint64_t total = 0;
  for (const JsonValue& b : buckets->items) {
    if (!b.IsArray() || b.items.size() != 2 || !b.items[0].IsNumber() || !b.items[1].IsNumber()) {
      Fail(where, "log2_buckets entries must be [lower_bound, count] pairs");
      return;
    }
    total += static_cast<uint64_t>(b.items[1].number);
  }
  const JsonValue* count = h.Find("count");
  if (count != nullptr && count->IsNumber() &&
      total != static_cast<uint64_t>(count->number)) {
    Fail(where, "log2_buckets counts do not sum to count");
  }
}

void ValidateCallStatsArray(const JsonValue& arr, const std::string& where) {
  for (size_t i = 0; i < arr.items.size(); ++i) {
    const JsonValue& s = arr.items[i];
    const std::string w = where + "[" + std::to_string(i) + "]";
    if (!s.IsObject()) {
      Fail(w, "not an object");
      continue;
    }
    RequireMember(s, w, "call", JsonValue::Kind::kNumber);
    RequireMember(s, w, "name", JsonValue::Kind::kString);
    RequireMember(s, w, "calls", JsonValue::Kind::kNumber);
    RequireMember(s, w, "errors", JsonValue::Kind::kNumber);
    const JsonValue* cycles = nullptr;
    if (RequireMember(s, w, "cycles", JsonValue::Kind::kObject, &cycles)) {
      ValidateHistogram(*cycles, w + ".cycles");
    }
    RequireMember(s, w, "steps", JsonValue::Kind::kNumber);
    RequireMember(s, w, "wall_ns", JsonValue::Kind::kNumber);
    RequireMember(s, w, "interp_cache", JsonValue::Kind::kObject);
    RequireMember(s, w, "jit", JsonValue::Kind::kObject);
    RequireMember(s, w, "tlb_flushes", JsonValue::Kind::kNumber);
  }
}

// Optional "serve" section a komodo-serve daemon embeds in its metrics
// document: the queue/eviction/batching counters plus two histograms.
void ValidateServeSection(const JsonValue& serve, const std::string& where) {
  for (const char* key :
       {"sessions_created", "sessions_destroyed", "requests_submitted", "requests_completed",
        "requests_failed", "queue_full_rejections", "queue_depth_hwm", "enters", "resumes",
        "world_switches", "batches", "batched_requests", "evictions", "rebuilds",
        "resident_pages"}) {
    RequireMember(serve, where, key, JsonValue::Kind::kNumber);
  }
  const JsonValue* latency = nullptr;
  if (RequireMember(serve, where, "request_latency_cycles", JsonValue::Kind::kObject, &latency)) {
    ValidateHistogram(*latency, where + ".request_latency_cycles");
  }
  const JsonValue* batch = nullptr;
  if (RequireMember(serve, where, "batch_size", JsonValue::Kind::kObject, &batch)) {
    ValidateHistogram(*batch, where + ".batch_size");
  }
  // Internal consistency: enters + resumes must equal world_switches.
  const JsonValue* enters = serve.Find("enters");
  const JsonValue* resumes = serve.Find("resumes");
  const JsonValue* switches = serve.Find("world_switches");
  if (enters != nullptr && resumes != nullptr && switches != nullptr && enters->IsNumber() &&
      resumes->IsNumber() && switches->IsNumber() &&
      enters->number + resumes->number != switches->number) {
    Fail(where, "enters + resumes != world_switches");
  }
}

// komodo-metrics-v1: {"schema","counters":{...},"smc":[...],"svc":[...]}
// plus an optional "serve" section (komodo-serve daemons).
void ValidateMetrics(const JsonValue& root, const std::string& file) {
  const JsonValue* counters = nullptr;
  if (RequireMember(root, file, "counters", JsonValue::Kind::kObject, &counters)) {
    for (const char* key : {"events_recorded", "events_dropped", "smc_calls", "svc_calls",
                            "enclave_entries", "enclave_resumes", "enclave_exits", "exceptions",
                            "tlb_flushes"}) {
      RequireMember(*counters, file + " counters", key, JsonValue::Kind::kNumber);
    }
  }
  const JsonValue* smc = nullptr;
  if (RequireMember(root, file, "smc", JsonValue::Kind::kArray, &smc)) {
    ValidateCallStatsArray(*smc, file + " smc");
  }
  const JsonValue* svc = nullptr;
  if (RequireMember(root, file, "svc", JsonValue::Kind::kArray, &svc)) {
    ValidateCallStatsArray(*svc, file + " svc");
  }
  if (const JsonValue* serve = root.Find("serve")) {
    if (!serve->IsObject()) {
      Fail(file, "key \"serve\" has wrong type");
    } else {
      ValidateServeSection(*serve, file + " serve");
    }
  }
}

// Chrome "Trace Event Format" as emitted by ExportChromeTrace: an object
// with a traceEvents array of M/X/i events carrying ts(+dur) and pid/tid.
void ValidateChrome(const JsonValue& root, const std::string& file) {
  const JsonValue* events = nullptr;
  if (!RequireMember(root, file, "traceEvents", JsonValue::Kind::kArray, &events)) {
    return;
  }
  for (size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& e = events->items[i];
    const std::string where = file + " traceEvents[" + std::to_string(i) + "]";
    if (!e.IsObject()) {
      Fail(where, "not an object");
      continue;
    }
    const JsonValue* ph = nullptr;
    if (!RequireMember(e, where, "ph", JsonValue::Kind::kString, &ph)) {
      continue;
    }
    RequireMember(e, where, "name", JsonValue::Kind::kString);
    RequireMember(e, where, "pid", JsonValue::Kind::kNumber);
    RequireMember(e, where, "tid", JsonValue::Kind::kNumber);
    if (ph->str == "X") {
      RequireMember(e, where, "ts", JsonValue::Kind::kNumber);
      RequireMember(e, where, "dur", JsonValue::Kind::kNumber);
    } else if (ph->str == "i") {
      RequireMember(e, where, "ts", JsonValue::Kind::kNumber);
    } else if (ph->str != "M") {
      Fail(where, "unexpected event phase \"" + ph->str + "\"");
    }
  }
}

int ValidateFile(const std::string& path, const std::string& forced_schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "komodo-benchjson: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  const auto parsed = ParseJson(ss.str(), &error);
  if (!parsed.has_value()) {
    Fail(path, "invalid JSON: " + error);
    return 1;
  }
  const JsonValue& root = *parsed;
  if (!root.IsObject()) {
    Fail(path, "top-level value is not an object");
    return 1;
  }

  std::string schema = forced_schema;
  if (schema.empty()) {
    if (const JsonValue* s = root.Find("schema"); s != nullptr && s->IsString()) {
      if (s->str == "komodo-bench-v1") {
        schema = "bench";
      } else if (s->str == "komodo-metrics-v1") {
        schema = "metrics";
      }
    }
    if (schema.empty() && root.Find("traceEvents") != nullptr) {
      schema = "chrome";
    }
    if (schema.empty()) {
      Fail(path, "unrecognized schema (no komodo-* \"schema\" key or \"traceEvents\")");
      return 1;
    }
  }

  const size_t before = g_errors.size();
  if (schema == "bench") {
    const JsonValue* s = root.Find("schema");
    if (s == nullptr || !s->IsString() || s->str != "komodo-bench-v1") {
      Fail(path, "schema key is not \"komodo-bench-v1\"");
    }
    ValidateBench(root, path);
  } else if (schema == "metrics") {
    const JsonValue* s = root.Find("schema");
    if (s == nullptr || !s->IsString() || s->str != "komodo-metrics-v1") {
      Fail(path, "schema key is not \"komodo-metrics-v1\"");
    }
    ValidateMetrics(root, path);
  } else if (schema == "chrome") {
    ValidateChrome(root, path);
  } else {
    std::fprintf(stderr, "komodo-benchjson: unknown schema \"%s\"\n", schema.c_str());
    return 2;
  }
  return g_errors.size() == before ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string forced;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      forced = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome") == 0) {
      forced = "chrome";
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: komodo-benchjson [--schema bench|metrics|chrome] file.json...\n");
    return 2;
  }
  int rc = 0;
  for (const std::string& f : files) {
    const int r = ValidateFile(f, forced);
    if (r > rc) {
      rc = r;
    }
  }
  for (const std::string& e : g_errors) {
    std::fprintf(stderr, "komodo-benchjson: %s\n", e.c_str());
  }
  if (rc == 0) {
    std::printf("komodo-benchjson: %zu file(s) valid\n", files.size());
  }
  return rc;
}
