// komodo-fuzz: unified differential fuzzer for the monitor (DESIGN.md §10).
//
// Generates randomized OS/enclave call traces from a replayable 64-bit seed
// and runs them through the pluggable oracles (refinement, invariants,
// noninterference, interp). On failure it shrinks the trace to a minimal
// reproducer and writes it as a small text file for tests/corpus/.
//
// Determinism contract: stdout is a pure function of the flags *except
// --jobs and --no-reuse* (which only change how fast the same work runs) —
// timing and progress go to stderr. `komodo-fuzz --seed N ... | sha256sum`
// twice gives identical bytes, `--jobs 1` and `--jobs 8` give identical
// bytes, and the campaign-hash line pins every generated trace and verdict
// in canonical shard order (scripts/check.sh compares serial vs parallel).
// --shards IS part of the hash domain: it defines how the trace stream is
// split into independently seeded substreams.
//
// --mode evolve switches the campaign from the blind trace stream to
// coverage-guided corpus evolution (DESIGN.md §15): the call budget splits
// over --rounds synchronous generations, each mutating the traces that
// discovered new coverage. Evolve stdout — including the v3 campaign hash,
// per-oracle coverage/corpus counts and the coverage-curve line — obeys the
// same determinism contract: a pure function of everything but --jobs and
// --no-reuse.
//
// Usage:
//   komodo-fuzz [--seed N] [--calls N] [--oracle all|<name>] [--trace-len N]
//               [--inject <name>] [--no-shrink] [--out DIR]
//               [--jobs N] [--shards N] [--no-reuse]
//               [--mode blind|evolve] [--rounds N] [--max-corpus N]
//               [--corpus-dir DIR]
//   komodo-fuzz --replay FILE [--no-inject]
//
// Exit codes: 0 = no failure, 1 = oracle failure (witness written/printed),
// 2 = usage or harness error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/fuzz/campaign.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/inject.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/shrink.h"
#include "src/fuzz/trace.h"
#include "tools/cli_util.h"

namespace {

using komodo::cli::ParseU64;
using komodo::fuzz::CampaignMode;
using komodo::fuzz::CampaignOptions;
using komodo::fuzz::CampaignResult;
using komodo::fuzz::Trace;
using komodo::fuzz::Verdict;

int Usage() {
  std::fprintf(stderr,
               "usage: komodo-fuzz [--seed N] [--calls N] [--oracle all|refinement|"
               "invariants|noninterference|interp]\n"
               "                   [--trace-len N] [--inject NAME] [--no-shrink] [--out DIR]\n"
               "                   [--jobs N] [--shards N] [--no-reuse]\n"
               "                   [--mode blind|evolve] [--rounds N] [--max-corpus N]\n"
               "                   [--corpus-dir DIR]\n"
               "       komodo-fuzz --replay FILE [--no-inject]\n");
  return 2;
}

int Replay(const std::string& path, bool apply_inject) {
  const auto trace = Trace::ReadFile(path);
  if (!trace) {
    std::fprintf(stderr, "komodo-fuzz: cannot parse trace file %s\n", path.c_str());
    return 2;
  }
  const Verdict v = komodo::fuzz::RunTrace(*trace, apply_inject);
  std::printf("replay %s oracle=%s inject=%s seed=%llu: %s\n", path.c_str(),
              trace->oracle.c_str(), trace->inject.empty() ? "none" : trace->inject.c_str(),
              static_cast<unsigned long long>(trace->seed), v.failed ? "FAIL" : "PASS");
  if (v.failed) {
    std::printf("  %s\n", v.detail.c_str());
  }
  return v.failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions opts;
  std::string replay_path;
  std::string out_dir = ".";
  bool apply_inject = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.seed = ParseU64("komodo-fuzz", "--seed", v);
    } else if (arg == "--calls") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.calls = ParseU64("komodo-fuzz", "--calls", v);
    } else if (arg == "--trace-len") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.trace_len = static_cast<size_t>(ParseU64("komodo-fuzz", "--trace-len", v, 1, 1 << 20));
    } else if (arg == "--oracle") {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (std::string(v) != "all") {
        opts.oracles.push_back(v);
      }
    } else if (arg == "--inject") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.inject = v;
      if (!komodo::fuzz::SetInjectByName(opts.inject)) {
        std::fprintf(stderr, "komodo-fuzz: unknown injection '%s'\n", opts.inject.c_str());
        return 2;
      }
      komodo::fuzz::SetInjectByName("none");
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      // 0 = use hardware concurrency.
      opts.jobs = static_cast<int>(ParseU64("komodo-fuzz", "--jobs", v, 0, 4096));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.shards = static_cast<uint32_t>(ParseU64("komodo-fuzz", "--shards", v, 1, 1 << 16));
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "blind") == 0) {
        opts.mode = CampaignMode::kBlind;
      } else if (std::strcmp(v, "evolve") == 0) {
        opts.mode = CampaignMode::kEvolve;
      } else {
        std::fprintf(stderr, "komodo-fuzz: --mode expects blind or evolve, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--rounds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.rounds = static_cast<uint32_t>(ParseU64("komodo-fuzz", "--rounds", v, 1, 1 << 16));
    } else if (arg == "--max-corpus") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.max_corpus =
          static_cast<size_t>(ParseU64("komodo-fuzz", "--max-corpus", v, 1, 1 << 20));
    } else if (arg == "--corpus-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.corpus_dir = v;
    } else if (arg == "--no-reuse") {
      opts.reuse_worlds = false;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage();
      replay_path = v;
    } else if (arg == "--no-inject") {
      apply_inject = false;
    } else {
      std::fprintf(stderr, "komodo-fuzz: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }

  if (!replay_path.empty()) {
    return Replay(replay_path, apply_inject);
  }

  for (const std::string& o : opts.oracles) {
    bool known = false;
    for (const std::string& k : komodo::fuzz::OracleNames()) {
      known = known || k == o;
    }
    if (!known) {
      std::fprintf(stderr, "komodo-fuzz: unknown oracle '%s'\n", o.c_str());
      return 2;
    }
  }

  const CampaignResult result = komodo::fuzz::RunCampaign(
      opts, [](const std::string& line) { std::fprintf(stderr, "%s\n", line.c_str()); });

  const bool evolve = opts.mode == CampaignMode::kEvolve;
  for (const auto& st : result.stats) {
    if (evolve) {
      std::printf("oracle %s: %llu calls in %llu traces, coverage-keys=%llu corpus=%llu\n",
                  st.oracle.c_str(), static_cast<unsigned long long>(st.calls),
                  static_cast<unsigned long long>(st.traces),
                  static_cast<unsigned long long>(st.coverage_keys),
                  static_cast<unsigned long long>(st.corpus_entries));
    } else {
      std::printf("oracle %s: %llu calls in %llu traces\n", st.oracle.c_str(),
                  static_cast<unsigned long long>(st.calls),
                  static_cast<unsigned long long>(st.traces));
    }
    std::fprintf(stderr, "oracle %s: %.1f calls/s\n", st.oracle.c_str(),
                 st.seconds > 0 ? static_cast<double>(st.calls) / st.seconds : 0.0);
  }
  if (evolve) {
    std::printf("coverage-curve");
    for (uint64_t keys : result.coverage_curve) {
      std::printf(" %llu", static_cast<unsigned long long>(keys));
    }
    std::printf("\n");
  }
  std::printf("campaign-hash %s\n", result.hash.c_str());
  if (evolve && !opts.corpus_dir.empty()) {
    std::fprintf(stderr, "corpus saved under %s\n", opts.corpus_dir.c_str());
  }

  if (!result.failed) {
    std::printf("no failures (seed=%llu, %llu calls per oracle)\n",
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(opts.calls));
    return 0;
  }

  std::printf("FAIL oracle=%s seed=%llu op=%d\n  %s\n", result.original.oracle.c_str(),
              static_cast<unsigned long long>(result.original.seed), result.verdict.failing_op,
              result.verdict.detail.c_str());
  if (opts.shrink) {
    std::printf("shrunk %llu -> %llu ops (%llu calls)\n",
                static_cast<unsigned long long>(result.shrink.ops_before),
                static_cast<unsigned long long>(result.shrink.ops_after),
                static_cast<unsigned long long>(result.witness.CallCount()));
  }
  const std::string path = out_dir + "/witness-" + result.witness.oracle + "-" +
                           std::to_string(result.witness.seed) + ".trace";
  if (result.witness.WriteFile(path)) {
    std::printf("witness written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "komodo-fuzz: cannot write %s\n", path.c_str());
  }
  std::printf("--- witness ---\n%s", result.witness.Format().c_str());
  return 1;
}
