// komodo-serve: CLI front end for the serve daemon (DESIGN.md §14).
//
//   komodo-serve --demo
//       Scripted showcase: a few sessions, batched submissions, one timeout.
//   komodo-serve --stdin [--metrics-out FILE]
//       Line-protocol daemon loop on stdin/stdout (the check.sh smoke):
//         create <program>      -> session <id>
//         submit <sid> <arg>    -> request <id> | error <reason>
//         wait <rid>            -> result <rid> ok <value> | result <rid> fail <failure>
//         drain                 -> drained
//         destroy <sid>         -> destroyed <sid> dropped <n>
//         stats                 -> one-line counter summary
//         quit
//   komodo-serve --load [--sessions N] [--requests M] [--seed S] [--budget P]
//                [--no-batch] [--metrics-out FILE]
//       Deterministic seeded load generator; prints the stats summary.
//
// Exit status: 0 on success, 1 on a failed demo expectation, 2 on usage/IO.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/serve/server.h"
#include "tools/cli_util.h"

namespace {

using komodo::word;
using komodo::serve::DefaultCatalog;
using komodo::serve::RequestFailureName;
using komodo::serve::RequestId;
using komodo::serve::RequestResult;
using komodo::serve::ServeErrName;
using komodo::serve::Server;
using komodo::serve::SessionId;

void PrintStats(const Server& server) {
  const auto& st = server.stats();
  std::printf(
      "stats sessions %" PRIu64 "/%" PRIu64 " requests %" PRIu64 " completed %" PRIu64
      " failed %" PRIu64 " world-switches %" PRIu64 " batches %" PRIu64 " evictions %" PRIu64
      " rebuilds %" PRIu64 " queue-hwm %" PRIu64 "\n",
      st.sessions_created, st.sessions_destroyed, st.requests_submitted, st.requests_completed,
      st.requests_failed, st.world_switches, st.batches, st.evictions, st.rebuilds,
      st.queue_depth_hwm);
}

int WriteMetricsIfAsked(const Server& server, const std::string& path) {
  if (path.empty()) {
    return 0;
  }
  if (!server.WriteMetrics(path)) {
    std::fprintf(stderr, "komodo-serve: cannot write %s\n", path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int RunDemo(const std::string& metrics_out) {
  Server::Config config;
  config.nsecure_pages = 64;
  config.secure_page_budget = 15;  // two resident enclaves -> eviction visible
  config.steps_per_slice = 2000;
  Server server(DefaultCatalog(), config);

  const SessionId counter = *server.CreateSession("counter");
  const SessionId echo = *server.CreateSession("echo");
  const SessionId spin = *server.CreateSession("spin");

  std::printf("komodo-serve demo: 3 sessions (counter, echo, spin)\n");
  std::vector<RequestId> rids;
  for (word i = 1; i <= 4; ++i) {
    rids.push_back(*server.Submit(counter, i));
  }
  rids.push_back(*server.Submit(echo, 21));
  server.Drain();
  for (RequestId rid : rids) {
    const RequestResult* r = server.Poll(rid);
    std::printf("request %u -> %s %u\n", rid, r->ok ? "ok" : RequestFailureName(r->failure),
                r->value);
  }
  // counter state: 1+2+3+4 = 10 after one batched Enter.
  const bool counter_ok = server.Poll(rids[3])->value == 10;
  const bool echo_ok = server.Poll(rids[4])->value == 43;

  // The spin session wedges and times out; the daemon keeps serving.
  const RequestResult spin_r = *server.Wait(*server.Submit(spin, 0));
  std::printf("spin request -> %s (typed timeout, enclave destroyed)\n",
              RequestFailureName(spin_r.failure));
  const RequestResult after = *server.Wait(*server.Submit(counter, 5));
  std::printf("counter after spin timeout -> %u\n", after.value);

  PrintStats(server);
  const int rc = WriteMetricsIfAsked(server, metrics_out);
  if (rc != 0) {
    return rc;
  }
  const bool ok = counter_ok && echo_ok &&
                  spin_r.failure == komodo::serve::RequestFailure::kTimeout && after.ok;
  std::printf("demo %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}

int RunStdin(const std::string& metrics_out) {
  Server server(DefaultCatalog());
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') {
      continue;
    }
    if (cmd == "quit") {
      break;
    }
    if (cmd == "create") {
      std::string program;
      in >> program;
      auto sid = server.CreateSession(program);
      if (sid.ok()) {
        std::printf("session %u\n", *sid);
      } else {
        std::printf("error %s\n", ServeErrName(sid.error()));
      }
    } else if (cmd == "submit") {
      SessionId sid = 0;
      word arg = 0;
      in >> sid >> arg;
      auto rid = server.Submit(sid, arg);
      if (rid.ok()) {
        std::printf("request %u\n", *rid);
      } else {
        std::printf("error %s\n", ServeErrName(rid.error()));
      }
    } else if (cmd == "wait") {
      RequestId rid = 0;
      in >> rid;
      auto r = server.Wait(rid);
      if (!r.ok()) {
        std::printf("error %s\n", ServeErrName(r.error()));
      } else if (r->ok) {
        std::printf("result %u ok %u\n", rid, r->value);
      } else {
        std::printf("result %u fail %s\n", rid, RequestFailureName(r->failure));
      }
    } else if (cmd == "drain") {
      server.Drain();
      std::printf("drained\n");
    } else if (cmd == "destroy") {
      SessionId sid = 0;
      in >> sid;
      auto dropped = server.DestroySession(sid);
      if (dropped.ok()) {
        std::printf("destroyed %u dropped %u\n", sid, *dropped);
      } else {
        std::printf("error %s\n", ServeErrName(dropped.error()));
      }
    } else if (cmd == "stats") {
      PrintStats(server);
    } else {
      std::printf("error unknown-command\n");
    }
    std::fflush(stdout);
  }
  return WriteMetricsIfAsked(server, metrics_out);
}

int RunLoad(word sessions, word requests, uint64_t seed, word budget, bool batching,
            const std::string& metrics_out) {
  Server::Config config;
  config.nsecure_pages = 256;
  config.secure_page_budget = budget;
  config.queue_capacity = 256;
  config.batching = batching;
  Server server(DefaultCatalog(), config);

  std::vector<SessionId> sids;
  sids.reserve(sessions);
  for (word i = 0; i < sessions; ++i) {
    sids.push_back(*server.CreateSession(i % 2 == 0 ? "counter" : "echo"));
  }
  uint64_t x = seed != 0 ? seed : 1;
  auto rnd = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  word submitted = 0;
  while (submitted < requests) {
    const SessionId sid = sids[rnd() % sids.size()];
    if (server.Submit(sid, static_cast<word>(rnd() % 997)).ok()) {
      ++submitted;
    } else {
      server.Drain();
    }
  }
  server.Drain();
  PrintStats(server);
  const auto& st = server.stats();
  std::printf("world-switches-per-request %.3f\n",
              st.requests_completed == 0
                  ? 0.0
                  : static_cast<double>(st.world_switches) /
                        static_cast<double>(st.requests_completed));
  return WriteMetricsIfAsked(server, metrics_out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::string metrics_out;
  word sessions = 100;
  word requests = 1000;
  word budget = 35;
  uint64_t seed = 20260809;
  bool batching = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "komodo-serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--demo" || arg == "--stdin" || arg == "--load") {
      mode = arg;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--sessions") {
      sessions = static_cast<word>(
          komodo::cli::ParseU64("komodo-serve", "--sessions", next(), 1, 1 << 20));
    } else if (arg == "--requests") {
      requests = static_cast<word>(
          komodo::cli::ParseU64("komodo-serve", "--requests", next(), 1, 1 << 28));
    } else if (arg == "--budget") {
      budget = static_cast<word>(
          komodo::cli::ParseU64("komodo-serve", "--budget", next(), 1, 1 << 20));
    } else if (arg == "--seed") {
      seed = komodo::cli::ParseU64("komodo-serve", "--seed", next());
    } else if (arg == "--no-batch") {
      batching = false;
    } else {
      std::fprintf(stderr,
                   "usage: komodo-serve --demo | --stdin | --load [--sessions N] [--requests M]"
                   " [--seed S] [--budget P] [--no-batch] [--metrics-out FILE]\n");
      return 2;
    }
  }
  if (mode == "--demo") {
    return RunDemo(metrics_out);
  }
  if (mode == "--stdin") {
    return RunStdin(metrics_out);
  }
  if (mode == "--load") {
    return RunLoad(sessions, requests, seed, budget, batching, metrics_out);
  }
  std::fprintf(stderr, "komodo-serve: pick a mode (--demo | --stdin | --load)\n");
  return 2;
}
