// komodo-lint: static secret-flow & privilege analyzer for enclave binaries.
//
// Runs CFG recovery, the privilege lint and the abstract-interpretation taint
// pass (src/analysis/) over enclave program images and prints one finding per
// line, tab-separated:
//
//   <program>\t<kind>\t<address>\t<detail>
//
// Usage:
//   komodo-lint --shipped              lint every shipped enclave program
//   komodo-lint --check-shipped        same, exit 1 on any finding (CTest)
//   komodo-lint --check-fixtures       verify the seeded-bad fixtures each
//                                      produce exactly their expected finding
//   komodo-lint --list                 list known program names
//   komodo-lint <name>...              lint selected shipped programs
//   komodo-lint --hex <file>           lint whitespace-separated hex words
//                                      (linked at the conventional code VA)
//
// Exit status: 0 = no findings (or fixtures behaved as expected), 1 =
// findings reported, 2 = usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/fixtures.h"
#include "src/enclave/example_programs.h"
#include "src/enclave/programs.h"
#include "src/enclave/sha256_program.h"
#include "src/os/os.h"

namespace {

using komodo::analysis::AnalysisResult;
using komodo::analysis::AnalyzeProgram;
using komodo::analysis::BadFixture;
using komodo::analysis::Finding;
using komodo::analysis::FindingKindName;
using komodo::arm::word;

struct NamedProgram {
  std::string name;
  std::vector<word> program;
  // The three deliberately-faulting exception-path programs are shipped as
  // dynamic test fixtures, not as enclave code; they are linted only on
  // explicit request, never by --shipped / --check-shipped.
  bool expect_clean = true;
};

std::vector<NamedProgram> ShippedPrograms() {
  using namespace komodo::enclave;
  return {
      {"add_two", AddTwoProgram()},
      {"echo_shared", EchoSharedProgram()},
      {"counter", CounterProgram()},
      {"counter_batch", CounterBatchProgram()},
      {"echo_batch", EchoBatchProgram()},
      {"spin", SpinProgram()},
      {"attest", AttestProgram()},
      {"verify", VerifyProgram()},
      {"dyn_mem", DynMemProgram()},
      {"random", RandomProgram()},
      {"leak_secret", LeakSecretProgram()},
      {"sha256", Sha256Program()},
      {"example_quickstart", QuickstartProgram()},
      {"example_heap", HeapProgram()},
      {"example_drill_victim", DrillVictimProgram()},
      {"example_vault", VaultProgram()},
      {"read_outside", ReadOutsideProgram(), false},
      {"write_code", WriteCodeProgram(), false},
      {"undefined_insn", UndefinedInsnProgram(), false},
  };
}

int PrintFindings(const std::string& name, const AnalysisResult& result) {
  for (const Finding& f : result.findings) {
    std::printf("%s\t%s\n", name.c_str(), komodo::analysis::FormatFinding(f).c_str());
  }
  return result.findings.empty() ? 0 : 1;
}

int LintPrograms(const std::vector<NamedProgram>& programs) {
  int status = 0;
  for (const NamedProgram& p : programs) {
    const AnalysisResult result = AnalyzeProgram(p.program, komodo::os::kEnclaveCodeVa);
    if (PrintFindings(p.name, result) != 0) {
      status = 1;
    }
  }
  return status;
}

int CheckFixtures() {
  int status = 0;
  std::vector<BadFixture> fixtures = komodo::analysis::SeededBadFixtures();
  for (BadFixture& f : komodo::analysis::ExtraBadFixtures()) {
    fixtures.push_back(std::move(f));
  }
  for (const BadFixture& f : fixtures) {
    const AnalysisResult result = AnalyzeProgram(f.program, komodo::os::kEnclaveCodeVa);
    PrintFindings(f.name, result);
    if (result.findings.size() != 1 || result.findings[0].kind != f.expected) {
      std::fprintf(stderr, "FAIL: fixture %s: expected exactly one %s finding, got %zu\n",
                   f.name.c_str(), FindingKindName(f.expected), result.findings.size());
      status = 1;
    }
  }
  return status;
}

int LintHexFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "komodo-lint: cannot open %s\n", path);
    return 2;
  }
  std::vector<word> program;
  std::string tok;
  while (in >> tok) {
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(tok, &used, 16);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size() || value > 0xffff'fffful) {
      std::fprintf(stderr, "komodo-lint: %s: not a 32-bit hex word: '%s'\n", path, tok.c_str());
      return 2;
    }
    program.push_back(static_cast<word>(value));
  }
  return PrintFindings(path, AnalyzeProgram(program, komodo::os::kEnclaveCodeVa));
}

int Usage() {
  std::fprintf(stderr,
               "usage: komodo-lint --shipped | --check-shipped | --check-fixtures | --list |\n"
               "                   --hex <file> | <program>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::vector<NamedProgram> shipped = ShippedPrograms();

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const NamedProgram& p : shipped) {
      std::printf("%s%s\n", p.name.c_str(), p.expect_clean ? "" : " (faulting test fixture)");
    }
    return 0;
  }
  if (std::strcmp(argv[1], "--shipped") == 0 || std::strcmp(argv[1], "--check-shipped") == 0) {
    std::vector<NamedProgram> clean;
    for (const NamedProgram& p : shipped) {
      if (p.expect_clean) {
        clean.push_back(p);
      }
    }
    return LintPrograms(clean);
  }
  if (std::strcmp(argv[1], "--check-fixtures") == 0) {
    return CheckFixtures();
  }
  if (std::strcmp(argv[1], "--hex") == 0) {
    if (argc != 3) {
      return Usage();
    }
    return LintHexFile(argv[2]);
  }

  std::vector<NamedProgram> selected;
  for (int i = 1; i < argc; ++i) {
    bool found = false;
    for (const NamedProgram& p : shipped) {
      if (p.name == argv[i]) {
        selected.push_back(p);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "komodo-lint: unknown program '%s' (try --list)\n", argv[i]);
      return 2;
    }
  }
  return LintPrograms(selected);
}
