// komodo-verify: exhaustive small-world model checker (DESIGN.md §12).
//
// Enumerates every reachable abstract PageDb of a bounded world and checks,
// for every call in the registry with every canonical argument vector, that
// the spec preserves the PageDb invariants, that the concrete monitor refines
// the spec, and that every observed error code is declared in the registry
// row. States are deduplicated under page-number symmetry, so the closure is
// small enough to walk in seconds and its hash pins the explored space.
//
// Exit codes: 0 = closed with all obligations holding; 1 = obligation failed
// (counterexample printed, optionally written as a komodo-fuzz trace);
// 2 = usage or harness error.
//
// stdout is deterministic for a given command line (timings go to stderr and
// the bench JSON), so check.sh can run it twice and compare byte-for-byte.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "src/verify/explore.h"
#include "tools/cli_util.h"

namespace {

using komodo::verify::CallStats;
using komodo::verify::Explore;
using komodo::verify::ExploreResult;
using komodo::verify::WorldSpec;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--world small|mini] [--pages N] [--max-addrspaces N]\n"
               "          [--inject NAME] [--out TRACE] [--bench-out JSON]\n"
               "\n"
               "  --world small   5 pages, 2 addrspaces (default)\n"
               "  --world mini    2 pages, 1 addrspace (hand-checkable closure)\n"
               "  --pages N       override the secure-page count\n"
               "  --max-addrspaces N  clip successors with more addrspaces\n"
               "  --inject NAME   arm a fuzz fault injection (see komodo-fuzz)\n"
               "  --out TRACE     write the counterexample trace here on failure\n"
               "  --bench-out JSON  write komodo-bench-v1 timings/counters here\n",
               argv0);
  return 2;
}

void PrintReport(const WorldSpec& spec, const ExploreResult& r) {
  std::printf("komodo-verify: world pages=%u max_addrspaces=%u inject=%s\n",
              static_cast<unsigned>(spec.pages), static_cast<unsigned>(spec.max_addrspaces),
              spec.inject.empty() ? "none" : spec.inject.c_str());
  std::printf("%-4s %-14s %3s %8s %12s  %s\n", "kind", "call", "nr", "vectors", "transitions",
              "observed errors");
  for (const CallStats& c : r.calls) {
    std::string errs;
    for (const std::string& e : c.errors) {
      if (!errs.empty()) {
        errs += "|";
      }
      errs += e;
    }
    if (errs.empty()) {
      errs = "-";
    }
    std::printf("%-4s %-14s %3u %8llu %12llu  %s\n", c.is_svc ? "svc" : "smc", c.name.c_str(),
                static_cast<unsigned>(c.number), static_cast<unsigned long long>(c.vectors),
                static_cast<unsigned long long>(c.transitions), errs.c_str());
  }
  std::printf("states %llu\n", static_cast<unsigned long long>(r.states));
  std::printf("transitions %llu\n", static_cast<unsigned long long>(r.transitions));
  std::printf("clipped %llu\n", static_cast<unsigned long long>(r.clipped));
  std::printf("closure-hash %s\n", r.closure_hash.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  WorldSpec spec;
  std::string out_path;
  std::string bench_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--world") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      if (std::strcmp(v, "small") == 0) {
        spec.pages = 5;
        spec.max_addrspaces = 2;
      } else if (std::strcmp(v, "mini") == 0) {
        spec.pages = 2;
        spec.max_addrspaces = 1;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--pages") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      spec.pages = static_cast<komodo::word>(
          komodo::cli::ParseU64("komodo-verify", "--pages", v, 1, 64));
    } else if (arg == "--max-addrspaces") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      spec.max_addrspaces = static_cast<komodo::word>(
          komodo::cli::ParseU64("komodo-verify", "--max-addrspaces", v, 1, 64));
    } else if (arg == "--inject") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      spec.inject = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      out_path = v;
    } else if (arg == "--bench-out") {
      const char* v = next();
      if (v == nullptr) {
        return Usage(argv[0]);
      }
      bench_path = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (spec.pages < 2 || spec.pages > 16) {
    std::fprintf(stderr, "komodo-verify: --pages must be in [2, 16] (closure blow-up)\n");
    return 2;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const ExploreResult r = Explore(spec);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  if (!r.harness_error.empty()) {
    std::fprintf(stderr, "komodo-verify: harness error: %s\n", r.harness_error.c_str());
    return 2;
  }

  PrintReport(spec, r);
  std::fprintf(stderr, "komodo-verify: %.0f ms\n", wall_ms);

  if (!bench_path.empty()) {
    const std::filesystem::path dir = std::filesystem::path(bench_path).parent_path();
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
    }
    komodo::bench::BenchJson bench("komodo-verify");
    bench.Config("pages", static_cast<uint64_t>(spec.pages));
    bench.Config("max_addrspaces", static_cast<uint64_t>(spec.max_addrspaces));
    bench.Config("inject", spec.inject.empty() ? "none" : spec.inject);
    bench.Result("explore", "states", static_cast<double>(r.states), "count");
    bench.Result("explore", "transitions", static_cast<double>(r.transitions), "count");
    bench.Result("explore", "clipped", static_cast<double>(r.clipped), "count");
    bench.Result("explore", "wall", wall_ms, "ms");
    if (!bench.Write(bench_path)) {
      return 2;
    }
  }

  if (r.failure.has_value()) {
    std::printf("FAIL depth=%zu exact_replay=%s\n", r.failure->depth,
                r.failure->exact_replay ? "yes" : "no");
    std::printf("%s\n", r.failure->detail.c_str());
    std::printf("--- counterexample trace ---\n%s", r.failure->trace.Format().c_str());
    if (!out_path.empty()) {
      if (!r.failure->trace.WriteFile(out_path)) {
        std::fprintf(stderr, "komodo-verify: cannot write %s\n", out_path.c_str());
        return 2;
      }
      std::fprintf(stderr, "komodo-verify: wrote counterexample to %s\n", out_path.c_str());
    }
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
