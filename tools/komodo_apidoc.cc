// komodo-apidoc: generates the Table 1 API reference in DESIGN.md from the
// call registry (src/core/call_list.inc). The registry is the single source
// of truth for call numbers, arities and error sets; this tool keeps the
// prose in sync and `--check` (run under ctest) fails the build when the
// committed docs drift from the table.
//
//   komodo-apidoc --print            write the generated section to stdout
//   komodo-apidoc --check [file]     exit 1 if the file's generated block differs
//   komodo-apidoc --update [file]    rewrite the generated block in place
//
// The block is delimited by literal markers so the rest of the document is
// never touched:
//   <!-- BEGIN GENERATED: komodo-apidoc table1 -->
//   <!-- END GENERATED: komodo-apidoc table1 -->
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/call_table.h"

namespace {

using komodo::CallInfo;

constexpr char kBeginMarker[] = "<!-- BEGIN GENERATED: komodo-apidoc table1 -->";
constexpr char kEndMarker[] = "<!-- END GENERATED: komodo-apidoc table1 -->";

#ifndef KOMODO_SOURCE_DIR
#define KOMODO_SOURCE_DIR "."
#endif

std::string FormatErrors(const char* errors) {
  if (std::strcmp(errors, "-") == 0) {
    return "cannot fail";
  }
  std::string out;
  std::string cur;
  for (const char* p = errors;; ++p) {
    if (*p == '|' || *p == '\0') {
      if (!out.empty()) {
        out += ", ";
      }
      out += "`" + cur + "`";
      cur.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      cur += *p;
    }
  }
  return out;
}

std::string FormatArgs(const CallInfo& c) {
  if (c.arity == 0) {
    return "—";
  }
  std::string out = "`";
  out += c.arg_names;
  out += "`";
  return out;
}

std::string GeneratedSection() {
  std::ostringstream out;
  out << "Generated from `src/core/call_list.inc` by `komodo-apidoc --update`;\n"
      << "edit the registry, not this block. Error names are `KomErrName()`\n"
      << "strings; every call also returns `success`.\n"
      << "\n"
      << "**SMCs (invoked by the OS, call number in `r0`):**\n"
      << "\n"
      << "| # | Call | Arguments | Errors |\n"
      << "|--:|------|-----------|--------|\n";
  for (const CallInfo& c : komodo::kSmcCalls) {
    out << "| " << c.number << " | `" << c.name << "` | " << FormatArgs(c) << " | "
        << FormatErrors(c.errors) << " |\n";
  }
  out << "\n"
      << "**SVCs (invoked by enclave code, call number in `r0`):**\n"
      << "\n"
      << "| # | Call | Arguments | Errors |\n"
      << "|--:|------|-----------|--------|\n";
  for (const CallInfo& c : komodo::kSvcCalls) {
    out << "| " << c.number << " | `" << c.name << "` | " << FormatArgs(c) << " | "
        << FormatErrors(c.errors) << " |\n";
  }
  return out.str();
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Splices the generated section between the markers; returns false (leaving
// *text untouched) when the markers are absent or out of order.
bool Splice(std::string* text, const std::string& generated) {
  const size_t begin = text->find(kBeginMarker);
  if (begin == std::string::npos) {
    return false;
  }
  const size_t content_start = begin + std::strlen(kBeginMarker);
  const size_t end = text->find(kEndMarker, content_start);
  if (end == std::string::npos) {
    return false;
  }
  text->replace(content_start, end - content_start, "\n" + generated);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "--print";
  std::string path = argc > 2 ? argv[2] : std::string(KOMODO_SOURCE_DIR) + "/DESIGN.md";

  const std::string generated = GeneratedSection();
  if (mode == "--print") {
    std::fputs(generated.c_str(), stdout);
    return 0;
  }
  if (mode != "--check" && mode != "--update") {
    std::fprintf(stderr, "usage: komodo-apidoc --print | --check [file] | --update [file]\n");
    return 2;
  }

  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "komodo-apidoc: cannot read %s\n", path.c_str());
    return 2;
  }
  std::string updated = text;
  if (!Splice(&updated, generated)) {
    std::fprintf(stderr, "komodo-apidoc: markers not found in %s (expected '%s' ... '%s')\n",
                 path.c_str(), kBeginMarker, kEndMarker);
    return 2;
  }

  if (mode == "--check") {
    if (updated != text) {
      std::fprintf(stderr,
                   "komodo-apidoc: %s is stale relative to src/core/call_list.inc; "
                   "run komodo-apidoc --update\n",
                   path.c_str());
      return 1;
    }
    return 0;
  }

  if (updated == text) {
    return 0;  // already current
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << updated)) {
    std::fprintf(stderr, "komodo-apidoc: cannot write %s\n", path.c_str());
    return 2;
  }
  std::fprintf(stderr, "komodo-apidoc: updated %s\n", path.c_str());
  return 0;
}
