// SHA-256 computed *inside* an enclave by real interpreted ARM code — the
// enclave-side twin of the verified assembly SHA the paper's monitor uses
// (§7.2). The OS stages a padded message in shared memory; the enclave hashes
// it through its own page tables, instruction by instruction, and publishes
// the digest. The host cross-checks.
//
//   $ ./examples/enclave_sha "some message"
#include <cstdio>
#include <string>

#include "src/crypto/sha256.h"
#include "src/enclave/sha256_program.h"
#include "src/os/world.h"

using namespace komodo;

int main(int argc, char** argv) {
  const std::string text = argc > 1 ? argv[1] : "komodo: verification disentangles "
                                                "secure-enclave hardware from software";
  const std::vector<uint8_t> message(text.begin(), text.end());

  os::World world{64};
  auto built = world.os.NewEnclave().Code(enclave::Sha256Program()).SharedPage().Build();
  if (!built.ok()) {
    return 1;
  }
  const os::EnclaveHandle e = *std::move(built);
  std::printf("enclave code: %zu A32 instructions/words in one measured page\n",
              enclave::Sha256Program().size());

  const word nblocks = enclave::StageSha256Message(world.os, e.shared_insecure_pgnr, message);
  const uint64_t insns_before = world.machine.cycles.total();
  const os::EnterResult r = world.os.Enter(e.thread, nblocks);
  if (!r.exited()) {
    std::printf("enclave faulted: %s\n", KomErrName(r.err));
    return 1;
  }
  const auto digest = enclave::ReadSha256Digest(world.os, e.shared_insecure_pgnr);

  crypto::Digest enclave_digest;
  std::copy(digest.begin(), digest.end(), enclave_digest.begin());
  const crypto::Digest host_digest = crypto::Sha256Hash(message);

  std::printf("message (%zu bytes, %u blocks): \"%s\"\n", message.size(), nblocks, text.c_str());
  std::printf("enclave: %s\n", crypto::DigestToHex(enclave_digest).c_str());
  std::printf("host:    %s\n", crypto::DigestToHex(host_digest).c_str());
  std::printf("simulated cycles: %llu\n",
              static_cast<unsigned long long>(world.machine.cycles.total() - insns_before));
  if (enclave_digest != host_digest) {
    std::printf("MISMATCH\n");
    return 1;
  }
  std::printf("digests agree.\n");
  return 0;
}
