// Remote attestation end-to-end (§4's deferred design, implemented):
//
//   attestor enclave ──Attest──► monitor MAC ──OS ferries──► signing enclave
//        │                                                        │ Verify (monitor)
//        │                                                        │ RSA sign
//        ▼                                                        ▼
//   its measurement                               signature a REMOTE party can check
//
// The remote verifier trusts only the signing enclave's endorsed public key —
// it never sees the machine, the monitor, or the MAC key.
//
//   $ ./examples/remote_attestation
#include <cstdio>
#include <memory>

#include "src/enclave/programs.h"
#include "src/enclave/signing_enclave.h"
#include "src/os/world.h"
#include "src/spec/extract.h"

using namespace komodo;
using enclave::SigningEnclave;

int main() {
  os::World world{128};
  enclave::NativeRuntime runtime(world.monitor);

  // --- Attestor: an ordinary enclave with something to prove -------------------
  auto built_attestor = world.os.NewEnclave().Code(enclave::AttestProgram()).SharedPage().Build();
  if (!built_attestor.ok()) {
    return 1;
  }
  const os::EnclaveHandle attestor = *std::move(built_attestor);

  // --- Signing enclave: generates its key at init ------------------------------
  auto built_signer = world.os.NewEnclave().Code({0xe3a00001, 0xef000000}).SharedPage().Build();
  if (!built_signer.ok()) {
    return 1;
  }
  const os::EnclaveHandle signer = *std::move(built_signer);
  auto signing = std::make_shared<SigningEnclave>(/*key_seed=*/20170101);
  runtime.Register(signer.l1pt, signing);
  if (world.os.Enter(signer.thread, enclave::kSignerCmdInit).payload != 1) {
    return 1;
  }
  // "Provisioning": the device manufacturer endorses the signing key. The
  // remote verifier receives exactly this value out of band.
  const crypto::RsaPublicKey endorsed_key = signing->public_key();
  std::printf("signing enclave key endorsed: n = %s...\n",
              endorsed_key.n.ToHex().substr(0, 24).c_str());

  // --- 1. The attestor produces a local attestation ----------------------------
  const word kDataSeed = 0x7700;
  if (!world.os.Enter(attestor.thread, kDataSeed).exited()) {
    return 1;
  }
  const auto db = spec::ExtractPageDb(world.machine);
  const auto measurement = db[attestor.addrspace].As<spec::AddrspacePage>().measurement;
  std::printf("attestor produced a local MAC over its measurement + data\n");

  // --- 2. The untrusted OS ferries it to the signing enclave -------------------
  for (word i = 0; i < 8; ++i) {
    world.os.WriteInsecure(signer.shared_insecure_pgnr, i, kDataSeed + i);
    world.os.WriteInsecure(signer.shared_insecure_pgnr, 8 + i, measurement[i]);
    world.os.WriteInsecure(signer.shared_insecure_pgnr, 16 + i,
                           world.os.ReadInsecure(attestor.shared_insecure_pgnr, i));
  }
  if (world.os.Enter(signer.thread, enclave::kSignerCmdSign).payload != 1) {
    std::printf("signing enclave refused — forged attestation?\n");
    return 1;
  }
  std::printf("signing enclave verified the MAC via the monitor and signed\n");

  // --- 3. The remote verifier, with nothing but the endorsed key ---------------
  std::vector<uint8_t> signature(128);
  for (size_t i = 0; i < signature.size(); ++i) {
    const word v = world.os.ReadInsecure(
        signer.shared_insecure_pgnr, (enclave::kSignerSigOffset + static_cast<word>(i)) / 4);
    signature[i] = static_cast<uint8_t>(v >> ((i % 4) * 8));
  }
  std::array<word, 8> data;
  std::array<word, 8> measure;
  for (word i = 0; i < 8; ++i) {
    data[i] = kDataSeed + i;
    measure[i] = measurement[i];
  }
  const std::vector<uint8_t> message = SigningEnclave::SignedMessage(measure, data);
  const bool ok =
      crypto::RsaVerifySha256(endorsed_key, message.data(), message.size(), signature);
  std::printf("remote verifier: signature %s — enclave identity %s\n", ok ? "valid" : "INVALID",
              ok ? "proven to a party that never saw this machine" : "NOT proven");
  if (!ok) {
    return 1;
  }

  // --- 4. And a forgery does not get signed -------------------------------------
  world.os.WriteInsecure(signer.shared_insecure_pgnr, 16, 0xdeadbeef);  // corrupt the MAC
  const bool refused = world.os.Enter(signer.thread, enclave::kSignerCmdSign).payload == 0;
  std::printf("forged MAC: signing enclave %s\n", refused ? "refused to sign" : "SIGNED (BUG)");
  return refused ? 0 : 1;
}
