// Quickstart: boot the simulated platform, build a tiny enclave, run it, and
// tear it down — the smallest end-to-end tour of the Komodo API (Table 1).
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/enclave/example_programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"

using namespace komodo;

int main() {
  // 1. Boot: machine + monitor + untrusted OS. The (simulated) bootloader has
  //    reserved 64 secure pages and derived the attestation key.
  os::World world{64};
  std::printf("monitor reports %u secure pages\n", world.os.GetPhysPages());

  // 2. The enclave: r1 = arg1 + arg2, then the Exit supervisor call — three
  //    instructions, assembled in enclave::QuickstartProgram().
  // 3. Construct it through the monitor: address space, page tables, measured
  //    code/data pages, a thread, finalise. the EnclaveBuilder wraps the SMC calls.
  auto built = world.os.NewEnclave().Code(enclave::QuickstartProgram()).Build();
  if (!built.ok()) {
    std::printf("enclave construction failed: %s\n", KomErrName(built.error()));
    return 1;
  }
  const os::EnclaveHandle enclave = *std::move(built);
  const auto db = spec::ExtractPageDb(world.machine);
  const auto measurement =
      crypto::WordsToDigest(db[enclave.addrspace].As<spec::AddrspacePage>().measurement);
  std::printf("enclave measurement: %s\n", crypto::DigestToHex(measurement).c_str());

  // 4. Enter it. The monitor switches worlds, loads the enclave page table,
  //    and drops to secure user mode; the enclave adds and exits.
  const os::EnterResult r = world.os.Enter(enclave.thread, 20, 22);
  std::printf("Enter(20, 22) -> err=%s retval=%u\n", KomErrName(r.err), r.payload);

  // 5. Tear down: stop, then deallocate every page.
  world.os.Stop(enclave.addrspace);
  for (const PageNr page : enclave.data_pages) {
    world.os.Remove(page);
  }
  world.os.Remove(enclave.thread);
  for (const PageNr page : enclave.l2pts) {
    world.os.Remove(page);
  }
  world.os.Remove(enclave.l1pt);
  world.os.Remove(enclave.addrspace);
  std::printf("enclave destroyed; %llu simulated cycles total\n",
              static_cast<unsigned long long>(world.machine.cycles.total()));
  return r.payload == 42 ? 0 : 1;
}
