// A password-vault enclave: the secret lives in an enclave data page; the
// untrusted OS can submit guesses through shared memory but can neither read
// the secret nor reset the enclave's lockout counter — the intro's motivating
// scenario of keeping credentials safe from a compromised kernel.
//
// Vault policy (all enforced by interpreted enclave code):
//   * a guess is compared word-by-word against the secret, constant pattern;
//   * 3 wrong guesses lock the vault permanently (counter in the data page);
//   * on a correct guess the vault releases its payload to the shared page.
//
//   $ ./examples/password_vault
#include <cstdio>

#include "src/arm/assembler.h"
#include "src/os/world.h"

using namespace komodo;

namespace {

constexpr word kMaxAttempts = 3;
// Data-page layout: words 0..3 secret, word 4 failed-attempt count,
// words 5..8 payload released on success.
// Shared-page layout: words 0..3 guess; word 4 result (1 ok / 0 bad / 2
// locked); words 5..8 released payload.

std::vector<word> VaultProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  Assembler::Label locked = a.NewLabel();
  Assembler::Label wrong = a.NewLabel();
  Assembler::Label out = a.NewLabel();

  a.MovImm(R4, os::kEnclaveDataVa);
  a.MovImm(R5, os::kEnclaveSharedVa);

  // Locked already?
  a.Ldr(R6, R4, 16);  // attempts
  a.Cmp(R6, kMaxAttempts);
  a.B(locked, Cond::kCs);  // attempts >= max

  // Compare the guess against the secret: accumulate XOR differences so the
  // access pattern is guess-independent.
  a.MovImm(R7, 0);
  for (int i = 0; i < 4; ++i) {
    a.Ldr(R8, R4, i * 4);   // secret word
    a.Ldr(R9, R5, i * 4);   // guess word
    a.Eor(R8, R8, R9);
    a.Orr(R7, R7, R8);
  }
  a.Cmp(R7, 0u);
  a.B(wrong, Cond::kNe);

  // Correct: release the payload and reset the counter.
  for (int i = 0; i < 4; ++i) {
    a.Ldr(R8, R4, 20 + i * 4);
    a.Str(R8, R5, 20 + i * 4);
  }
  a.MovImm(R6, 0);
  a.Str(R6, R4, 16);
  a.MovImm(R10, 1);
  a.B(out);

  a.Bind(wrong);
  a.Add(R6, R6, 1u);
  a.Str(R6, R4, 16);
  a.MovImm(R10, 0);
  a.B(out);

  a.Bind(locked);
  a.MovImm(R10, 2);

  a.Bind(out);
  a.Str(R10, R5, 16);  // result word
  a.Mov(R1, R10);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

const char* ResultName(word r) {
  switch (r) {
    case 0:
      return "rejected";
    case 1:
      return "ACCEPTED";
    case 2:
      return "locked out";
    default:
      return "?";
  }
}

}  // namespace

int main() {
  os::World world{64};
  os::Os::BuildOptions opts;
  opts.with_shared_page = true;
  // Secret and payload are in the measured initial contents here for
  // simplicity; a deployment would provision them post-attestation.
  opts.data_init = {0xdead0001, 0xdead0002, 0xdead0003, 0xdead0004,  // secret
                    0,                                               // attempts
                    0xfeed0001, 0xfeed0002, 0xfeed0003, 0xfeed0004};  // payload
  os::EnclaveHandle vault;
  if (world.os.BuildEnclave(VaultProgram(), &opts, &vault) != kErrSuccess) {
    return 1;
  }
  const word shared = opts.shared_insecure_pgnr;

  auto attempt = [&](word g0, word g1, word g2, word g3) {
    world.os.WriteInsecure(shared, 0, g0);
    world.os.WriteInsecure(shared, 1, g1);
    world.os.WriteInsecure(shared, 2, g2);
    world.os.WriteInsecure(shared, 3, g3);
    const os::SmcRet r = world.os.Enter(vault.thread);
    std::printf("guess %08x...: %s\n", g0, ResultName(r.val));
    return r.val;
  };

  // The OS guesses wrong twice, then right: payload released.
  attempt(1, 2, 3, 4);
  attempt(5, 6, 7, 8);
  if (attempt(0xdead0001, 0xdead0002, 0xdead0003, 0xdead0004) != 1) {
    return 1;
  }
  if (world.os.ReadInsecure(shared, 5) != 0xfeed0001) {
    std::printf("payload missing!\n");
    return 1;
  }
  std::printf("payload released: %08x %08x %08x %08x\n", world.os.ReadInsecure(shared, 5),
              world.os.ReadInsecure(shared, 6), world.os.ReadInsecure(shared, 7),
              world.os.ReadInsecure(shared, 8));

  // A second vault gets brute-forced: three wrong guesses lock it for good —
  // even the correct password is refused afterwards.
  os::Os::BuildOptions opts2 = opts;
  opts2.with_shared_page = true;
  os::EnclaveHandle vault2;
  if (world.os.BuildEnclave(VaultProgram(), &opts2, &vault2) != kErrSuccess) {
    return 1;
  }
  const word shared2 = opts2.shared_insecure_pgnr;
  auto attempt2 = [&](word g0) {
    world.os.WriteInsecure(shared2, 0, g0);
    world.os.WriteInsecure(shared2, 1, 0);
    world.os.WriteInsecure(shared2, 2, 0);
    world.os.WriteInsecure(shared2, 3, 0);
    const os::SmcRet r = world.os.Enter(vault2.thread);
    std::printf("brute force %08x: %s\n", g0, ResultName(r.val));
    return r.val;
  };
  attempt2(0x111);
  attempt2(0x222);
  attempt2(0x333);
  world.os.WriteInsecure(shared2, 1, 0xdead0002);
  world.os.WriteInsecure(shared2, 2, 0xdead0003);
  world.os.WriteInsecure(shared2, 3, 0xdead0004);
  const word final_result = attempt2(0xdead0001);  // correct, but too late
  if (final_result != 2) {
    std::printf("lockout failed!\n");
    return 1;
  }
  std::printf("vault locked: the OS cannot reset the counter — it lives in a secure page.\n");
  return 0;
}
