// A password-vault enclave: the secret lives in an enclave data page; the
// untrusted OS can submit guesses through shared memory but can neither read
// the secret nor reset the enclave's lockout counter — the intro's motivating
// scenario of keeping credentials safe from a compromised kernel.
//
// Vault policy (all enforced by interpreted enclave code — see
// enclave::VaultProgram in src/enclave/example_programs.cc):
//   * a guess is compared word-by-word against the secret, constant-time:
//     outcomes are selected with bitmasks so no branch or access pattern
//     depends on the secret (komodo-lint verifies this statically);
//   * 3 wrong guesses lock the vault permanently (counter in the data page);
//   * on a correct guess the vault releases its payload to the shared page.
//
//   $ ./examples/password_vault
#include <cstdio>

#include "src/enclave/example_programs.h"
#include "src/os/world.h"

using namespace komodo;
using enclave::VaultProgram;

namespace {

// Data-page layout: words 0..3 secret, word 4 failed-attempt count,
// words 5..8 payload released on success.
// Shared-page layout: words 0..3 guess; word 4 result (1 ok / 0 bad / 2
// locked); words 5..8 released payload.

const char* ResultName(word r) {
  switch (r) {
    case 0:
      return "rejected";
    case 1:
      return "ACCEPTED";
    case 2:
      return "locked out";
    default:
      return "?";
  }
}

}  // namespace

int main() {
  os::World world{64};
  // Secret and payload are in the measured initial contents here for
  // simplicity; a deployment would provision them post-attestation.
  const std::vector<word> vault_data = {
      0xdead0001, 0xdead0002, 0xdead0003, 0xdead0004,  // secret
      0,                                               // attempts
      0xfeed0001, 0xfeed0002, 0xfeed0003, 0xfeed0004};  // payload
  auto built_vault =
      world.os.NewEnclave().Code(VaultProgram()).Data(vault_data).SharedPage().Build();
  if (!built_vault.ok()) {
    return 1;
  }
  const os::EnclaveHandle vault = *std::move(built_vault);
  const word shared = vault.shared_insecure_pgnr;

  auto attempt = [&](word g0, word g1, word g2, word g3) {
    world.os.WriteInsecure(shared, 0, g0);
    world.os.WriteInsecure(shared, 1, g1);
    world.os.WriteInsecure(shared, 2, g2);
    world.os.WriteInsecure(shared, 3, g3);
    const os::EnterResult r = world.os.Enter(vault.thread);
    std::printf("guess %08x...: %s\n", g0, ResultName(r.payload));
    return r.payload;
  };

  // The OS guesses wrong twice, then right: payload released.
  attempt(1, 2, 3, 4);
  attempt(5, 6, 7, 8);
  if (attempt(0xdead0001, 0xdead0002, 0xdead0003, 0xdead0004) != 1) {
    return 1;
  }
  if (world.os.ReadInsecure(shared, 5) != 0xfeed0001) {
    std::printf("payload missing!\n");
    return 1;
  }
  std::printf("payload released: %08x %08x %08x %08x\n", world.os.ReadInsecure(shared, 5),
              world.os.ReadInsecure(shared, 6), world.os.ReadInsecure(shared, 7),
              world.os.ReadInsecure(shared, 8));

  // A second vault gets brute-forced: three wrong guesses lock it for good —
  // even the correct password is refused afterwards.
  auto built_vault2 =
      world.os.NewEnclave().Code(VaultProgram()).Data(vault_data).SharedPage().Build();
  if (!built_vault2.ok()) {
    return 1;
  }
  const os::EnclaveHandle vault2 = *std::move(built_vault2);
  const word shared2 = vault2.shared_insecure_pgnr;
  auto attempt2 = [&](word g0) {
    world.os.WriteInsecure(shared2, 0, g0);
    world.os.WriteInsecure(shared2, 1, 0);
    world.os.WriteInsecure(shared2, 2, 0);
    world.os.WriteInsecure(shared2, 3, 0);
    const os::EnterResult r = world.os.Enter(vault2.thread);
    std::printf("brute force %08x: %s\n", g0, ResultName(r.payload));
    return r.payload;
  };
  attempt2(0x111);
  attempt2(0x222);
  attempt2(0x333);
  world.os.WriteInsecure(shared2, 1, 0xdead0002);
  world.os.WriteInsecure(shared2, 2, 0xdead0003);
  world.os.WriteInsecure(shared2, 3, 0xdead0004);
  const word final_result = attempt2(0xdead0001);  // correct, but too late
  if (final_result != 2) {
    std::printf("lockout failed!\n");
    return 1;
  }
  std::printf("vault locked: the OS cannot reset the counter — it lives in a secure page.\n");
  return 0;
}
