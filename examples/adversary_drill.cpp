// Adversary drill: a hostile OS runs through the attacks the paper's
// verification effort is designed to stop — including the two concrete bugs
// §9.1 reports finding in the unverified prototype — and shows the monitor
// rejecting each one while a victim enclave keeps its secret.
//
//   $ ./examples/adversary_drill
#include <cstdio>

#include "src/arm/assembler.h"
#include "src/enclave/example_programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"

using namespace komodo;

namespace {

int failures = 0;

void Check(const char* attack, bool rejected, const char* how) {
  std::printf("%-58s %s (%s)\n", attack, rejected ? "BLOCKED" : "!! SUCCEEDED", how);
  if (!rejected) {
    ++failures;
  }
}

}  // namespace

int main() {
  os::World world{64};
  os::EnclaveHandle victim;
  auto built_victim = world.os.NewEnclave().Code(enclave::DrillVictimProgram()).Build();
  if (!built_victim.ok()) {
    return 1;
  }
  victim = *std::move(built_victim);
  // A secret arrives in the victim (modelled as a secure-channel delivery).
  world.machine.mem.Write(PagePaddr(victim.data_pages[1]), 0x5ec23e);

  std::printf("victim enclave up (addrspace page %u). beginning drill:\n\n", victim.addrspace);

  // 1. §9.1 bug #1: InitAddrspace with aliased arguments.
  Check("InitAddrspace(p, p) aliasing",
        world.os.InitAddrspace(40, 40).err == kErrInvalidPageNo, "kErrInvalidPageNo");

  // 2. §9.1 bug #2: feed the monitor's own image as "insecure" content.
  os::EnclaveHandle drone;
  // Build a half-constructed enclave to attack with.
  world.os.InitAddrspace(41, 42);
  world.os.InitL2Table(41, 43, 0);
  Check("MapSecure sourcing the monitor image",
        world.os.MapSecure(41, 44, MakeMapping(0x8000, kMapR),
                           arm::kMonitorBase / arm::kPageSize)
                .err == kErrInvalidArgument,
        "kErrInvalidArgument");
  Check("MapSecure sourcing the secure page region",
        world.os.MapSecure(41, 44, MakeMapping(0x8000, kMapR),
                           arm::kSecurePagesBase / arm::kPageSize)
                .err == kErrInvalidArgument,
        "kErrInvalidArgument");

  // 3. Double-mapping: claim the victim's data page for a new enclave.
  Check("MapSecure over the victim's data page",
        world.os.MapSecure(41, victim.data_pages[1], MakeMapping(0x8000, kMapR), 32).err ==
            kErrPageInUse,
        "kErrPageInUse");

  // 4. Retype the victim's pages.
  Check("InitThread on the victim's addrspace",
        world.os.InitThread(victim.addrspace, 45, 0xbad).err == kErrAlreadyFinal,
        "kErrAlreadyFinal");
  Check("InitAddrspace over the victim's thread page",
        world.os.InitAddrspace(victim.thread, 45).err == kErrPageInUse, "kErrPageInUse");

  // 5. Steal pages without stopping.
  Check("Remove on a live data page",
        world.os.Remove(victim.data_pages[1]).err == kErrNotStopped, "kErrNotStopped");

  // 6. Executable shared memory (would let the OS inject code post-measure).
  Check("MapInsecure with execute permission",
        world.os.MapInsecure(41, MakeMapping(0x9000, kMapR | kMapX), 32).err ==
            kErrInvalidMapping,
        "kErrInvalidMapping");

  // 7. Re-enter a suspended thread (context confusion).
  //    Interrupt the victim first.
  world.machine.pending_irq = true;
  const os::EnterResult interrupted = world.os.Enter(victim.thread);
  Check("interrupt reported without enclave state",
        interrupted.interrupted() && interrupted.payload == 0, "only the fact itself");
  Check("Enter on a suspended thread",
        world.os.Enter(victim.thread).err == KomErr::kAlreadyEntered, "kErrAlreadyEntered");
  const os::EnterResult resumed = world.os.Resume(victim.thread);
  Check("victim resumes and completes", resumed.exited(), "kErrSuccess");

  // 8. Direct physical access from the normal world (TrustZone filter).
  {
    arm::Assembler a(0x2000);
    a.MovImm(arm::R0, PagePaddr(victim.data_pages[1]));
    a.Ldr(arm::R1, arm::R0, 0);
    a.Svc();
    const std::vector<word> code = a.Finish();
    for (size_t i = 0; i < code.size(); ++i) {
      world.machine.mem.Write(0x2000 + static_cast<word>(i) * 4, code[i]);
    }
    world.machine.pc = 0x2000;
    const auto exc = arm::RunUntilException(world.machine, 100);
    Check("normal-world load of a secure page",
          exc == arm::Exception::kDataAbort, "TrustZone abort");
    // Restore the OS to a sane state for completeness.
    world.machine.cpsr.mode = arm::Mode::kSupervisor;
    world.machine.pc = 0x1000;
  }

  std::printf("\n%s\n", failures == 0 ? "all attacks blocked." : "ATTACKS GOT THROUGH!");
  (void)drone;
  return failures == 0 ? 0 : 1;
}
