// Local attestation between two enclaves (§4): an "attestor" enclave MACs its
// identity + a payload via the monitor's Attest call; a "verifier" enclave
// checks it with Verify. The OS ferries the bytes but cannot forge them — the
// MAC key never leaves the monitor.
//
//   $ ./examples/attested_channel
#include <cstdio>

#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"

using namespace komodo;

namespace {

struct Built {
  os::EnclaveHandle handle;
  word shared_pg;
};

Built Build(os::World& world, const std::vector<word>& code) {
  auto built = world.os.NewEnclave().Code(code).SharedPage().Build();
  if (!built.ok()) {
    std::printf("build failed\n");
    std::exit(1);
  }
  os::EnclaveHandle e = *std::move(built);
  const word shared_pg = e.shared_insecure_pgnr;
  return {e, shared_pg};
}

}  // namespace

int main() {
  os::World world{128};
  const Built attestor = Build(world, enclave::AttestProgram());
  const Built verifier = Build(world, enclave::VerifyProgram());

  // The attestor binds user data (derived from 0x1000) to its identity.
  if (!world.os.Enter(attestor.handle.thread, 0x1000).exited()) {
    return 1;
  }
  std::printf("attestor produced a MAC over (measurement, data)\n");

  // The OS reads the attestor's measurement (public) and the MAC from the
  // shared page, and hands everything to the verifier.
  const auto db = spec::ExtractPageDb(world.machine);
  const auto measurement =
      db[attestor.handle.addrspace].As<spec::AddrspacePage>().measurement;
  for (word i = 0; i < 8; ++i) {
    world.os.WriteInsecure(verifier.shared_pg, i, 0x1000 + i);  // claimed data
    world.os.WriteInsecure(verifier.shared_pg, 8 + i, measurement[i]);
    world.os.WriteInsecure(verifier.shared_pg, 16 + i,
                           world.os.ReadInsecure(attestor.shared_pg, i));
  }
  os::EnterResult r = world.os.Enter(verifier.handle.thread);
  std::printf("verifier says: %s\n", r.payload == 1 ? "genuine" : "FORGED");
  if (r.payload != 1) {
    return 1;
  }

  // A man-in-the-middle OS flips one bit of the payload: verification fails.
  world.os.WriteInsecure(verifier.shared_pg, 0, 0x1001);
  r = world.os.Enter(verifier.handle.thread);
  std::printf("after OS tampering: %s\n", r.payload == 1 ? "genuine (BUG!)" : "rejected");
  return r.payload == 0 ? 0 : 1;
}
