// The trusted notary of §8.2: an enclave that timestamps documents with a
// monotonic counter and an RSA signature. A relying party that knows the
// notary's public key (published at init) can order documents conclusively —
// without trusting the OS that hosts the enclave.
//
//   $ ./examples/notary_demo
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/arm/cycle_model.h"
#include "src/enclave/notary.h"
#include "src/os/world.h"

using namespace komodo;

namespace {

// Builds the notary enclave with the 129-page shared document region.
struct NotaryHost {
  os::World world{512};
  enclave::NativeRuntime runtime{world.monitor};
  std::shared_ptr<enclave::NotaryProgram> notary;
  PageNr thread = 0;
  word doc_pg0 = 0;

  bool Build() {
    auto& os = world.os;
    const PageNr as = os.AllocSecurePage();
    const PageNr l1pt = os.AllocSecurePage();
    const PageNr l2 = os.AllocSecurePage();
    if (os.InitAddrspace(as, l1pt).err != kErrSuccess) return false;
    if (os.InitL2Table(as, l2, 0).err != kErrSuccess) return false;
    const word staging = os.AllocInsecurePage();
    os.WriteInsecurePage(staging, {0xe3a00001, 0xef000000});
    const PageNr code = os.AllocSecurePage();
    if (os.MapSecure(as, code, MakeMapping(os::kEnclaveCodeVa, kMapR | kMapX), staging).err !=
        kErrSuccess) {
      return false;
    }
    doc_pg0 = os.AllocInsecurePage();
    for (word i = 1; i < enclave::kNotarySharedPages + 1; ++i) {
      os.AllocInsecurePage();
    }
    for (word i = 0; i < enclave::kNotarySharedPages + 1; ++i) {
      if (os.MapInsecure(as,
                         MakeMapping(os::kEnclaveSharedVa + i * arm::kPageSize, kMapR | kMapW),
                         doc_pg0 + i)
              .err != kErrSuccess) {
        return false;
      }
    }
    thread = os.AllocSecurePage();
    if (os.InitThread(as, thread, os::kEnclaveCodeVa).err != kErrSuccess) return false;
    if (os.Finalise(as).err != kErrSuccess) return false;
    notary = std::make_shared<enclave::NotaryProgram>(/*key_seed=*/20260707);
    runtime.Register(l1pt, notary);
    return true;
  }

  void Stage(const std::vector<uint8_t>& doc) {
    for (size_t i = 0; i < doc.size(); i += 4) {
      word v = 0;
      for (size_t j = 0; j < 4 && i + j < doc.size(); ++j) {
        v |= static_cast<word>(doc[i + j]) << (8 * j);
      }
      world.machine.mem.Write(doc_pg0 * arm::kPageSize + static_cast<word>(i), v);
    }
  }

  std::vector<uint8_t> Signature() {
    std::vector<uint8_t> sig(128);
    const paddr base = doc_pg0 * arm::kPageSize + enclave::kNotaryMaxDocBytes + 1024;
    for (size_t i = 0; i < sig.size(); ++i) {
      const word v = world.machine.mem.Read((base + static_cast<word>(i)) & ~3u);
      sig[i] = static_cast<uint8_t>(v >> (((base + i) & 3u) * 8));
    }
    return sig;
  }
};

}  // namespace

int main() {
  NotaryHost host;
  if (!host.Build()) {
    std::printf("failed to build the notary enclave\n");
    return 1;
  }

  std::printf("initialising notary (RSA-1024 keygen inside the enclave)...\n");
  if (!host.world.os.Enter(host.thread, enclave::kNotaryCmdInit).exited()) {
    return 1;
  }
  const crypto::RsaPublicKey& pub = host.notary->core().public_key();
  std::printf("notary public modulus: %s...\n", pub.n.ToHex().substr(0, 32).c_str());

  const std::vector<std::string> documents = {
      "contract: alice sells bob one raspberry pi 2",
      "amendment: price is 35 dollars",
      "contract: alice sells bob one raspberry pi 2",  // same text, later stamp
  };
  for (const std::string& text : documents) {
    const std::vector<uint8_t> doc(text.begin(), text.end());
    host.Stage(doc);
    const uint64_t before = host.world.machine.cycles.total();
    const os::EnterResult r =
        host.world.os.Enter(host.thread, enclave::kNotaryCmdNotarize, doc.size());
    const uint64_t cycles = host.world.machine.cycles.total() - before;
    if (!r.exited() || r.payload == 0) {
      std::printf("notarisation failed\n");
      return 1;
    }
    const uint32_t stamp = r.payload - 1;  // counter value bound into the signature
    const std::vector<uint8_t> sig = host.Signature();

    // Relying party: verify document || stamp against the public key.
    std::vector<uint8_t> message = doc;
    message.push_back(static_cast<uint8_t>(stamp));
    message.push_back(static_cast<uint8_t>(stamp >> 8));
    message.push_back(static_cast<uint8_t>(stamp >> 16));
    message.push_back(static_cast<uint8_t>(stamp >> 24));
    const bool ok = crypto::RsaVerifySha256(pub, message.data(), message.size(), sig);
    std::printf("stamp %u  verify=%s  %.1f ms  \"%s\"\n", stamp, ok ? "OK" : "FAIL",
                arm::CyclesToMs(cycles), text.c_str());
    if (!ok) {
      return 1;
    }
  }
  std::printf("the two copies of the contract carry distinct, ordered stamps.\n");
  return 0;
}
