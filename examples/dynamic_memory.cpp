// SGXv2-style dynamic memory (§4, Dynamic allocation): the OS donates spare
// pages at runtime; the enclave decides — invisibly to the OS — whether they
// become data pages or page tables. The OS can reclaim spares, and learns
// (only) that a page is no longer spare when Remove fails.
//
//   $ ./examples/dynamic_memory
#include <cstdio>

#include "src/enclave/example_programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"

using namespace komodo;

namespace {

// The enclave (enclave::HeapProgram) receives two spare page numbers; it maps
// one as heap at 0x30000, writes a value, and deliberately leaves the second
// spare untouched.
const char* TypeName(PageType t) {
  switch (t) {
    case PageType::kFree:
      return "free";
    case PageType::kSparePage:
      return "spare";
    case PageType::kDataPage:
      return "data";
    default:
      return "other";
  }
}

}  // namespace

int main() {
  os::World world{64};
  auto built = world.os.NewEnclave().Code(enclave::HeapProgram()).Build();
  if (!built.ok()) {
    return 1;
  }
  const os::EnclaveHandle e = *std::move(built);

  const PageNr spare_used = world.os.AllocSecurePage();
  const PageNr spare_kept = world.os.AllocSecurePage();
  world.os.AllocSpare(e.addrspace, spare_used);
  world.os.AllocSpare(e.addrspace, spare_kept);
  std::printf("OS donated spare pages %u and %u\n", spare_used, spare_kept);

  const os::EnterResult r = world.os.Enter(e.thread, spare_used, spare_kept);
  std::printf("enclave mapped a heap page and read back 0x%x\n", r.payload);

  auto db = spec::ExtractPageDb(world.machine);
  std::printf("page %u is now: %s (the OS cannot see this directly)\n", spare_used,
              TypeName(db[spare_used].type()));

  // The OS tries to reclaim both. The converted page refuses — and that
  // refusal is the one bit the design deliberately declassifies (§6.2).
  const os::SmcRet used = world.os.Remove(spare_used);
  const os::SmcRet kept = world.os.Remove(spare_kept);
  std::printf("Remove(converted page) -> %s   (the allowed side channel)\n",
              KomErrName(used.err));
  std::printf("Remove(untouched spare) -> %s\n", KomErrName(kept.err));

  return (used.err == kErrNotStopped && kept.err == kErrSuccess && r.payload == 0xfeed) ? 0 : 1;
}
