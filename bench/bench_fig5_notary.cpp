// Figure 5 reproduction: notary latency vs document size (4 kB – 512 kB),
// Komodo enclave vs native Linux process. The paper's result: the two lines
// coincide — enclave overhead is negligible because the workload is dominated
// by hashing and signing. Reported in milliseconds at 900 MHz.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/arm/cycle_model.h"
#include "src/enclave/notary.h"
#include "src/os/world.h"

namespace komodo {
namespace {

// The notary enclave wired up with the full shared document region, as in
// tests/enclave/notary_test.cc.
struct NotaryRig {
  os::World w{512};
  enclave::NativeRuntime runtime{w.monitor};
  std::shared_ptr<enclave::NotaryProgram> program;
  PageNr thread = 0;
  word doc_pg0 = 0;

  explicit NotaryRig(uint64_t key_seed, bool trace = false) {
    if (trace) {
      w.monitor.obs().Enable();  // before the build, so the SMCs trace too
    }
    auto& os = w.os;
    const PageNr as = os.AllocSecurePage();
    const PageNr l1pt = os.AllocSecurePage();
    const PageNr l2 = os.AllocSecurePage();
    if (os.InitAddrspace(as, l1pt).err != kErrSuccess ||
        os.InitL2Table(as, l2, 0).err != kErrSuccess) {
      std::abort();
    }
    const word staging = os.AllocInsecurePage();
    os.WriteInsecurePage(staging, {0xe3a00001, 0xef000000});
    const PageNr code = os.AllocSecurePage();
    if (os.MapSecure(as, code, MakeMapping(os::kEnclaveCodeVa, kMapR | kMapX), staging).err !=
        kErrSuccess) {
      std::abort();
    }
    doc_pg0 = os.AllocInsecurePage();
    for (word i = 1; i < enclave::kNotarySharedPages + 1; ++i) {
      os.AllocInsecurePage();
    }
    for (word i = 0; i < enclave::kNotarySharedPages + 1; ++i) {
      if (os.MapInsecure(
                as,
                MakeMapping(os::kEnclaveSharedVa + i * arm::kPageSize, kMapR | kMapW),
                doc_pg0 + i)
              .err != kErrSuccess) {
        std::abort();
      }
    }
    thread = os.AllocSecurePage();
    if (os.InitThread(as, thread, os::kEnclaveCodeVa).err != kErrSuccess ||
        os.Finalise(as).err != kErrSuccess) {
      std::abort();
    }
    program = std::make_shared<enclave::NotaryProgram>(key_seed);
    runtime.Register(l1pt, program);
    if (!w.os.Enter(thread, enclave::kNotaryCmdInit).exited()) {
      std::abort();
    }
  }

  void StageDocument(const std::vector<uint8_t>& doc) {
    for (size_t i = 0; i < doc.size(); i += 4) {
      word v = 0;
      for (size_t j = 0; j < 4 && i + j < doc.size(); ++j) {
        v |= static_cast<word>(doc[i + j]) << (8 * j);
      }
      w.machine.mem.Write(doc_pg0 * arm::kPageSize + static_cast<word>(i), v);
    }
  }

  uint64_t NotarizeCycles(size_t len) {
    const uint64_t before = w.machine.cycles.total();
    if (!w.os.Enter(thread, enclave::kNotaryCmdNotarize, static_cast<word>(len)).exited()) {
      std::abort();
    }
    return w.machine.cycles.total() - before;
  }
};

struct Fig5Row {
  size_t kb;
  double enclave_ms;
  double native_ms;
};

std::vector<Fig5Row> MeasureFig5() {
  NotaryRig rig(4242);
  enclave::NotaryNative native(4242);
  native.Init();

  std::vector<Fig5Row> rows;
  for (size_t kb : {4, 8, 16, 32, 64, 128, 256, 512}) {
    const std::vector<uint8_t> doc(kb * 1024, static_cast<uint8_t>(kb));
    rig.StageDocument(doc);
    const uint64_t enclave_cycles = rig.NotarizeCycles(doc.size());
    native.ResetCycles();
    native.Notarize(doc);
    rows.push_back({kb, arm::CyclesToMs(enclave_cycles), arm::CyclesToMs(native.cycles())});
  }
  return rows;
}

void PrintFig5(const std::vector<Fig5Row>& rows) {
  std::printf("\n=== Figure 5: notary performance (ms at 900 MHz) ===\n");
  std::printf("%10s %16s %16s %10s\n", "input (kB)", "Komodo enclave", "Linux process",
              "overhead");
  for (const Fig5Row& r : rows) {
    std::printf("%10zu %16.2f %16.2f %9.2f%%\n", r.kb, r.enclave_ms, r.native_ms,
                (r.enclave_ms - r.native_ms) / r.native_ms * 100.0);
  }
  std::printf(
      "\nPaper shape: both lines coincide (enclave == native within noise), rising from\n"
      "~30 ms (RSA-dominated) to ~70-80 ms at 512 kB (hash-dominated). Overhead %% must be\n"
      "tiny at every size.\n");
}

void EmitJson(const std::vector<Fig5Row>& rows) {
  bench::BenchJson json("fig5_notary");
  json.Config("clock_mhz", static_cast<uint64_t>(900));
  for (const Fig5Row& r : rows) {
    const std::string name = "doc_" + std::to_string(r.kb) + "kB";
    json.Result(name, "enclave_ms", r.enclave_ms, "ms");
    json.Result(name, "native_ms", r.native_ms, "ms");
    json.Result(name, "overhead_pct", (r.enclave_ms - r.native_ms) / r.native_ms * 100.0, "%");
  }
  json.Write("BENCH_fig5_notary.json");
}

// --trace: run one mid-size notarisation with the tracer live and dump the
// chrome://tracing timeline plus the per-call metrics rollup. This is the
// showcase artifact for DESIGN.md §9 (load TRACE_fig5_notary.json in
// Perfetto to see the SMC/SVC spans of a real Fig. 5 workload).
void RunTraced() {
  NotaryRig rig(4242, /*trace=*/true);
  for (size_t kb : {4, 64}) {
    const std::vector<uint8_t> doc(kb * 1024, static_cast<uint8_t>(kb));
    rig.StageDocument(doc);
    rig.NotarizeCycles(doc.size());
  }
  if (!rig.w.monitor.obs().WriteChromeTrace("TRACE_fig5_notary.json") ||
      !rig.w.monitor.obs().WriteMetrics("METRICS_fig5_notary.json")) {
    std::abort();
  }
  std::printf("wrote TRACE_fig5_notary.json\nwrote METRICS_fig5_notary.json\n");
}

void BM_NotaryEnclave(benchmark::State& state) {
  NotaryRig rig(1);
  const size_t kb = static_cast<size_t>(state.range(0));
  const std::vector<uint8_t> doc(kb * 1024, 7);
  rig.StageDocument(doc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.NotarizeCycles(doc.size()));
  }
  state.counters["doc_kB"] = static_cast<double>(kb);
}
BENCHMARK(BM_NotaryEnclave)->Arg(4)->Arg(64)->Arg(512);

void BM_NotaryNative(benchmark::State& state) {
  enclave::NotaryNative native(1);
  native.Init();
  const std::vector<uint8_t> doc(static_cast<size_t>(state.range(0)) * 1024, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(native.Notarize(doc));
  }
}
BENCHMARK(BM_NotaryNative)->Arg(4)->Arg(64)->Arg(512);

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      komodo::RunTraced();
      return 0;
    }
  }
  const std::vector<komodo::Fig5Row> rows = komodo::MeasureFig5();
  komodo::PrintFig5(rows);
  komodo::EmitJson(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
