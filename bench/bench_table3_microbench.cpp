// Table 3 reproduction: monitor-call microbenchmarks on the simulated
// Raspberry Pi 2 (simulated Cortex-A7 cycles; the paper's column is measured
// hardware cycles). Shapes to check: trivial SMCs are O(100) cycles, full
// crossings O(500-1000), Attest/Verify dominated by ~5 SHA-256 compressions,
// MapData dominated by zero-filling a page.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/call_table.h"
#include "src/enclave/native_runtime.h"
#include "src/os/world.h"

namespace komodo {
namespace {

using bench::PrintHeader;
using bench::PrintRow;
using enclave::NativeProgram;
using enclave::NativeRuntime;
using enclave::UserAction;
using enclave::UserContext;

// A probe program scripted as a list of actions; it snapshots the cycle
// counter each time control enters user mode.
class ProbeProgram : public enclave::NativeProgram {
 public:
  explicit ProbeProgram(arm::MachineState& m) : m_(m) {}

  void Script(std::vector<UserAction> actions) {
    actions_ = std::move(actions);
    next_ = 0;
    entry_cycles_.clear();
  }

  UserAction Run(UserContext& ctx) override {
    (void)ctx;
    entry_cycles_.push_back(m_.cycles.total());
    if (next_ < actions_.size()) {
      return actions_[next_++];
    }
    return UserAction::Exit(0);
  }

  const std::vector<uint64_t>& entry_cycles() const { return entry_cycles_; }

 private:
  arm::MachineState& m_;
  std::vector<UserAction> actions_;
  size_t next_ = 0;
  std::vector<uint64_t> entry_cycles_;
};

struct Bench {
  os::World w{128};
  NativeRuntime runtime{w.monitor};
  std::shared_ptr<ProbeProgram> probe;
  os::EnclaveHandle e;

  Bench() {
    probe = std::make_shared<ProbeProgram>(w.machine);
    auto built = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
    if (!built.ok()) {
      std::abort();
    }
    e = *std::move(built);
    runtime.Register(e.l1pt, probe);
  }

  uint64_t Cycles(const std::function<void()>& fn) {
    const uint64_t before = w.machine.cycles.total();
    fn();
    return w.machine.cycles.total() - before;
  }
};

struct Table3Results {
  uint64_t null_smc, enter_exit, enter_only, resume_only, attest, verify, alloc_spare, map_data;
};

Table3Results MeasureTable3() {
  Table3Results r{};
  Bench b;

  // GetPhysPages: the null SMC.
  b.Cycles([&] { b.w.os.GetPhysPages(); });  // warm (nothing to warm, but symmetric)
  r.null_smc = b.Cycles([&] { b.w.os.GetPhysPages(); });

  // Enter + Exit: full crossing with an immediately-exiting enclave.
  b.probe->Script({UserAction::Exit(0)});
  b.Cycles([&] { b.w.os.Enter(b.e.thread); });  // warm entry (page tables etc.)
  b.probe->Script({UserAction::Exit(0)});
  r.enter_exit = b.Cycles([&] { b.w.os.Enter(b.e.thread); });

  // Enter only: cycles from SMC start to first user-mode instruction.
  b.probe->Script({UserAction::Exit(0)});
  {
    const uint64_t start = b.w.machine.cycles.total();
    b.w.os.Enter(b.e.thread);
    r.enter_only = b.probe->entry_cycles().at(0) - start;
  }

  // Resume only: suspend via an injected interrupt, then measure Resume up to
  // the point user execution continues.
  b.w.machine.pending_irq = true;
  if (!b.w.os.Enter(b.e.thread).interrupted()) {
    std::abort();
  }
  b.probe->Script({UserAction::Exit(0)});
  {
    const uint64_t start = b.w.machine.cycles.total();
    b.w.os.Resume(b.e.thread);
    r.resume_only = b.probe->entry_cycles().at(0) - start;
  }

  // Attest / Verify: SVCs measured between consecutive user-mode entries.
  const vaddr data_va = os::kEnclaveDataVa;
  const vaddr mac_va = os::kEnclaveDataVa + 32;
  b.probe->Script({UserAction::Svc(kSvcAttest, data_va, mac_va), UserAction::Exit(0)});
  b.w.os.Enter(b.e.thread);
  r.attest = b.probe->entry_cycles().at(1) - b.probe->entry_cycles().at(0);

  b.probe->Script({UserAction::Svc(kSvcVerify, data_va, data_va, mac_va), UserAction::Exit(0)});
  b.w.os.Enter(b.e.thread);
  r.verify = b.probe->entry_cycles().at(1) - b.probe->entry_cycles().at(0);

  // AllocSpare: plain SMC.
  const PageNr spare = b.w.os.AllocSecurePage();
  r.alloc_spare = b.Cycles([&] { b.w.os.AllocSpare(b.e.addrspace, spare); });

  // MapData: dynamic-allocation SVC (zero-fills a page).
  b.probe->Script(
      {UserAction::Svc(kSvcMapData, spare, MakeMapping(0x30000, kMapR | kMapW)),
       UserAction::Exit(0)});
  b.w.os.Enter(b.e.thread);
  r.map_data = b.probe->entry_cycles().at(1) - b.probe->entry_cycles().at(0);
  return r;
}

void PrintTable3(const Table3Results& r) {
  PrintHeader("Table 3: monitor-call microbenchmarks (Raspberry Pi 2, cycles)");
  PrintRow("GetPhysPages (null SMC)", 123, static_cast<double>(r.null_smc));
  PrintRow("Enter + Exit", 738, static_cast<double>(r.enter_exit));
  PrintRow("Enter only (no return)", 496, static_cast<double>(r.enter_only));
  PrintRow("Resume only (no return)", 625, static_cast<double>(r.resume_only));
  PrintRow("Attest", 12411, static_cast<double>(r.attest));
  PrintRow("Verify", 13373, static_cast<double>(r.verify));
  PrintRow("AllocSpare", 217, static_cast<double>(r.alloc_spare));
  PrintRow("MapData", 5826, static_cast<double>(r.map_data));
  std::printf(
      "\nShape checks: null SMC ~O(100); Enter+Exit ~O(500-1000) and ~10x below SGX's 7,100;\n"
      "Attest/Verify ~= 5 SHA-256 compressions; MapData ~= 4kB zero-fill. See EXPERIMENTS.md.\n");
}

void EmitJson(const Table3Results& r) {
  bench::BenchJson json("table3_microbench");
  json.Config("pages", static_cast<uint64_t>(128));
  // Single-call rows take their names from the call registry, so the JSON
  // vocabulary cannot drift from src/core/call_list.inc; compound rows
  // (enter_exit, enter_only, resume_only) are named for the measured span.
  const struct {
    const char* name;
    uint64_t cycles;
    uint64_t paper;
  } rows[] = {
      {FindSmc(kSmcGetPhysPages)->name, r.null_smc, 123},
      {"enter_exit", r.enter_exit, 738},
      {"enter_only", r.enter_only, 496},
      {"resume_only", r.resume_only, 625},
      {FindSvc(kSvcAttest)->name, r.attest, 12411},
      {FindSvc(kSvcVerify)->name, r.verify, 13373},
      {FindSmc(kSmcAllocSpare)->name, r.alloc_spare, 217},
      {FindSvc(kSvcMapData)->name, r.map_data, 5826},
  };
  for (const auto& row : rows) {
    json.Result(row.name, "sim_cycles", static_cast<double>(row.cycles), "cycles");
    json.Result(row.name, "paper_cycles", static_cast<double>(row.paper), "cycles");
  }
  json.Write("BENCH_table3.json");
}

// Wall-clock benchmarks of the simulator itself (how fast the model runs on
// the host; the paper's numbers are the simulated cycles above).
void BM_NullSmc(benchmark::State& state) {
  Bench b;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.w.os.GetPhysPages());
  }
  state.counters["sim_cycles"] = static_cast<double>(b.Cycles([&] { b.w.os.GetPhysPages(); }));
}
BENCHMARK(BM_NullSmc);

void BM_EnterExit(benchmark::State& state) {
  Bench b;
  for (auto _ : state) {
    b.probe->Script({UserAction::Exit(0)});
    benchmark::DoNotOptimize(b.w.os.Enter(b.e.thread).err);
  }
  b.probe->Script({UserAction::Exit(0)});
  state.counters["sim_cycles"] =
      static_cast<double>(b.Cycles([&] { b.w.os.Enter(b.e.thread); }));
}
BENCHMARK(BM_EnterExit);

void BM_Attest(benchmark::State& state) {
  Bench b;
  for (auto _ : state) {
    b.probe->Script({UserAction::Svc(kSvcAttest, os::kEnclaveDataVa, os::kEnclaveDataVa + 32),
                     UserAction::Exit(0)});
    benchmark::DoNotOptimize(b.w.os.Enter(b.e.thread).err);
  }
}
BENCHMARK(BM_Attest);

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  const komodo::Table3Results results = komodo::MeasureTable3();
  komodo::PrintTable3(results);
  komodo::EmitJson(results);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
