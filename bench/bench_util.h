// Shared helpers for the benchmark binaries: paper-vs-measured table
// printing and cycle-measurement probes built on the native enclave runtime.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace komodo::bench {

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-28s %14s %14s %8s\n", "operation", "paper (cyc)", "measured (cyc)", "ratio");
}

inline void PrintRow(const std::string& name, double paper, double measured) {
  std::printf("%-28s %14.0f %14.0f %7.2fx\n", name.c_str(), paper, measured,
              measured / paper);
}

inline void PrintPlainRow(const std::string& name, const std::string& value) {
  std::printf("%-28s %s\n", name.c_str(), value.c_str());
}

}  // namespace komodo::bench

#endif  // BENCH_BENCH_UTIL_H_
