// Shared helpers for the benchmark binaries: paper-vs-measured table
// printing and the one JSON artifact schema every bench emits
// ("komodo-bench-v1", validated by tools/komodo-benchjson in check.sh).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace komodo::bench {

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-28s %14s %14s %8s\n", "operation", "paper (cyc)", "measured (cyc)", "ratio");
}

inline void PrintRow(const std::string& name, double paper, double measured) {
  std::printf("%-28s %14.0f %14.0f %7.2fx\n", name.c_str(), paper, measured,
              measured / paper);
}

inline void PrintPlainRow(const std::string& name, const std::string& value) {
  std::printf("%-28s %s\n", name.c_str(), value.c_str());
}

// Accumulates results for one bench binary and writes the komodo-bench-v1
// artifact:
//   {"schema": "komodo-bench-v1", "bench": "<binary>",
//    "config": {...run parameters...},
//    "results": [{"name", "metric", "value", "unit"}, ...]}
// One schema across every bench_* binary so downstream tooling (and the
// check.sh validation leg) never special-cases an emitter.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void Config(const std::string& key, const std::string& value) {
    config_.push_back({key, value, 0, false});
  }
  void Config(const std::string& key, uint64_t value) { config_.push_back({key, "", value, true}); }

  void Result(const std::string& name, const std::string& metric, double value,
              const std::string& unit) {
    results_.push_back({name, metric, value, unit});
  }

  bool Write(const std::string& path) const {
    std::string out;
    obs::JsonWriter w(&out);
    w.BeginObject();
    w.KV("schema", "komodo-bench-v1");
    w.KV("bench", bench_);
    w.Key("config");
    w.BeginObject();
    for (const ConfigEntry& c : config_) {
      if (c.is_num) {
        w.KV(c.key, c.num);
      } else {
        w.KV(c.key, c.str);
      }
    }
    w.EndObject();
    w.Key("results");
    w.BeginArray();
    for (const ResultEntry& r : results_) {
      w.BeginObject();
      w.KV("name", r.name);
      w.KV("metric", r.metric);
      w.KV("value", r.value);
      w.KV("unit", r.unit);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    out += "\n";

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::perror(path.c_str());
      return false;
    }
    const size_t n = std::fwrite(out.data(), 1, out.size(), f);
    const int rc = std::fclose(f);
    if (n != out.size() || rc != 0) {
      std::fprintf(stderr, "short write: %s\n", path.c_str());
      return false;
    }
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  struct ConfigEntry {
    std::string key;
    std::string str;
    uint64_t num;
    bool is_num;
  };
  struct ResultEntry {
    std::string name;
    std::string metric;
    double value;
    std::string unit;
  };

  std::string bench_;
  std::vector<ConfigEntry> config_;
  std::vector<ResultEntry> results_;
};

}  // namespace komodo::bench

#endif  // BENCH_BENCH_UTIL_H_
