// §8.1 comparison: Komodo enclave crossings vs SGX's published microcode
// latencies (EENTER ~3,800 / EEXIT ~3,300 cycles, Orenbach et al. [66]).
// The paper's claim: "the Komodo result represents an order of magnitude
// improvement" for a full crossing. Also compares the dynamic-memory paths
// (AllocSpare+MapData vs EAUG+EACCEPT).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/enclave/native_runtime.h"
#include "src/os/world.h"
#include "src/sgx/sgx_model.h"

namespace komodo {
namespace {

struct KomodoCrossings {
  uint64_t enter_exit;
  uint64_t alloc_and_map;
};

class ExitProgram : public enclave::NativeProgram {
 public:
  enclave::UserAction Run(enclave::UserContext&) override {
    return enclave::UserAction::Exit(0);
  }
};

class MapDataProgram : public enclave::NativeProgram {
 public:
  PageNr spare = 0;
  word next_va = 0x30000;
  bool pending = false;
  enclave::UserAction Run(enclave::UserContext&) override {
    if (!pending) {
      pending = true;
      const word va = next_va;
      next_va += arm::kPageSize;
      return enclave::UserAction::Svc(kSvcMapData, spare, MakeMapping(va, kMapR | kMapW));
    }
    pending = false;
    return enclave::UserAction::Exit(0);
  }
};

KomodoCrossings MeasureKomodo() {
  os::World w{128};
  enclave::NativeRuntime runtime(w.monitor);
  auto built = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  if (!built.ok()) {
    std::abort();
  }
  const os::EnclaveHandle e = *std::move(built);
  auto exit_program = std::make_shared<ExitProgram>();
  runtime.Register(e.l1pt, exit_program);

  w.os.Enter(e.thread);  // warm
  uint64_t before = w.machine.cycles.total();
  w.os.Enter(e.thread);
  const uint64_t enter_exit = w.machine.cycles.total() - before;

  // Dynamic path: AllocSpare (SMC) + MapData (SVC inside one entry).
  auto map_program = std::make_shared<MapDataProgram>();
  map_program->spare = w.os.AllocSecurePage();
  runtime.Register(e.l1pt, map_program);
  before = w.machine.cycles.total();
  w.os.AllocSpare(e.addrspace, map_program->spare);
  w.os.Enter(e.thread);
  const uint64_t alloc_and_map = w.machine.cycles.total() - before;
  return {enter_exit, alloc_and_map};
}

struct SgxCrossings {
  uint64_t enter_exit;
  uint64_t aug_accept;
};

SgxCrossings MeasureSgx() {
  sgx::SgxMachine m(64);
  std::array<uint8_t, sgx::kSgxPageBytes> zero{};
  if (m.Ecreate(0) != sgx::SgxStatus::kOk ||
      m.Eadd(0, 1, 0, false, false, sgx::EpcmType::kTcs, zero) != sgx::SgxStatus::kOk ||
      m.Einit(0) != sgx::SgxStatus::kOk) {
    std::abort();
  }
  m.ResetCycles();
  m.Eenter(1);
  m.Eexit(1);
  const uint64_t enter_exit = m.cycles();
  m.ResetCycles();
  m.Eaug(0, 5, 0x5000);
  m.Eaccept(5, 0x5000, true, false);
  const uint64_t aug_accept = m.cycles();
  return {enter_exit, aug_accept};
}

void PrintComparison(const KomodoCrossings& k, const SgxCrossings& s) {
  std::printf("\n=== Section 8.1: Komodo vs SGX crossing costs (cycles) ===\n");
  std::printf("%-34s %12s %12s %10s\n", "operation", "SGX", "Komodo", "speedup");
  std::printf("%-34s %12llu %12llu %9.1fx\n", "full crossing (enter + exit)",
              static_cast<unsigned long long>(s.enter_exit),
              static_cast<unsigned long long>(k.enter_exit),
              static_cast<double>(s.enter_exit) / static_cast<double>(k.enter_exit));
  std::printf("%-34s %12llu %12llu %9.1fx\n", "dynamic page (alloc + map/accept)",
              static_cast<unsigned long long>(s.aug_accept),
              static_cast<unsigned long long>(k.alloc_and_map),
              static_cast<double>(s.aug_accept) / static_cast<double>(k.alloc_and_map));
  std::printf(
      "\nPaper claim: SGX full crossing ~7,100 cycles vs Komodo 738 — \"an order of\n"
      "magnitude improvement\". The shape check is speedup >= ~5x.\n");
  std::printf("(Paper reference values: SGX EENTER 3,800 + EEXIT 3,300 = 7,100; Komodo 738.)\n");
}

void EmitJson(const KomodoCrossings& k, const SgxCrossings& s) {
  bench::BenchJson json("sgx_comparison");
  json.Config("sgx_reference", "Orenbach et al. [66]");
  json.Result("enter_exit", "komodo_cycles", static_cast<double>(k.enter_exit), "cycles");
  json.Result("enter_exit", "sgx_cycles", static_cast<double>(s.enter_exit), "cycles");
  json.Result("enter_exit", "speedup",
              static_cast<double>(s.enter_exit) / static_cast<double>(k.enter_exit), "x");
  json.Result("dynamic_page", "komodo_cycles", static_cast<double>(k.alloc_and_map), "cycles");
  json.Result("dynamic_page", "sgx_cycles", static_cast<double>(s.aug_accept), "cycles");
  json.Result("dynamic_page", "speedup",
              static_cast<double>(s.aug_accept) / static_cast<double>(k.alloc_and_map), "x");
  json.Write("BENCH_sgx_comparison.json");
}

void BM_SgxEnterExit(benchmark::State& state) {
  sgx::SgxMachine m(64);
  std::array<uint8_t, sgx::kSgxPageBytes> zero{};
  m.Ecreate(0);
  m.Eadd(0, 1, 0, false, false, sgx::EpcmType::kTcs, zero);
  m.Einit(0);
  for (auto _ : state) {
    m.Eenter(1);
    m.Eexit(1);
  }
  state.counters["sim_cycles_per_crossing"] = 7100;
}
BENCHMARK(BM_SgxEnterExit);

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  const komodo::KomodoCrossings k = komodo::MeasureKomodo();
  const komodo::SgxCrossings s = komodo::MeasureSgx();
  komodo::PrintComparison(k, s);
  komodo::EmitJson(k, s);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
