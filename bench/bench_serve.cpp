// Serve-daemon throughput benchmark (DESIGN.md §14): the cost of hosting
// thousands of concurrent enclave sessions over one Komodo world on one
// core, under a secure-page budget small enough that LRU eviction is
// constantly active.
//
// Three phases run the SAME seeded request schedule (hot-set skew: most
// requests hit a small set of popular sessions, the rest spread uniformly —
// the shape that makes both batching and LRU residency matter):
//
//   unbatched       batching off, tight budget — one world switch per
//                   request; the pre-§8.1-style baseline
//   batched         batching on, same tight budget — same-session requests
//                   coalesce into one Enter (up to kServeBatchMax)
//   batched-roomy   batching on, 3x budget — isolates how much of the
//                   remaining cost is eviction/rebuild churn
//
// Per phase: exact p50/p99/mean request latency in simulated cycles
// (sorted per-request samples, not histogram buckets), host-wall req/s,
// world-switches-per-request, eviction/rebuild counts. The batched phase
// must show a measurable world-switch reduction vs unbatched — the bench
// fails if it does not, so the committed artifact can never claim a win
// that stopped reproducing.
//
// Emits BENCH_serve.json (komodo-bench-v1). `--smoke` shrinks the sweep for
// CI but keeps eviction active and still enforces the reduction gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/server.h"

namespace komodo {
namespace {

using serve::DefaultCatalog;
using serve::RequestId;
using serve::RequestResult;
using serve::Server;
using serve::ServeErr;
using serve::SessionId;

struct Sweep {
  word sessions = 1000;
  word requests = 8000;
  word hot_sessions = 16;  // the skew target: 3 of 4 requests land here
  uint64_t seed = 20260809;
};

struct PhaseResult {
  std::string name;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  double mean = 0.0;
  double wall_seconds = 0.0;
  double req_per_sec = 0.0;
  double switches_per_req = 0.0;
  double mean_batch = 0.0;
  uint64_t world_switches = 0;
  uint64_t evictions = 0;
  uint64_t rebuilds = 0;
};

PhaseResult RunPhase(const std::string& name, const Sweep& sweep, bool batching, word budget) {
  Server::Config config;
  config.nsecure_pages = budget + 16;  // the budget is the binding constraint
  config.secure_page_budget = budget;
  config.queue_capacity = 512;
  config.batching = batching;
  Server server(DefaultCatalog(), config);

  std::vector<SessionId> sids;
  sids.reserve(sweep.sessions);
  for (word i = 0; i < sweep.sessions; ++i) {
    auto sid = server.CreateSession(i % 2 == 0 ? "counter" : "echo");
    if (!sid.ok()) {
      std::fprintf(stderr, "bench_serve: CreateSession failed in %s\n", name.c_str());
      std::abort();
    }
    sids.push_back(*sid);
  }

  uint64_t x = sweep.seed;
  auto rnd = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };

  std::vector<RequestId> rids;
  rids.reserve(sweep.requests);
  const auto wall_start = std::chrono::steady_clock::now();
  for (word i = 0; i < sweep.requests; ++i) {
    const uint64_t r = rnd();
    const SessionId sid = (r % 4 != 0) ? sids[r % sweep.hot_sessions]
                                       : sids[rnd() % sids.size()];
    auto rid = server.Submit(sid, static_cast<word>(rnd() % 997));
    while (!rid.ok() && rid.error() == ServeErr::kQueueFull) {
      server.PumpOne();
      rid = server.Submit(sid, static_cast<word>(rnd() % 997));
    }
    if (!rid.ok()) {
      std::fprintf(stderr, "bench_serve: Submit failed in %s\n", name.c_str());
      std::abort();
    }
    rids.push_back(*rid);
  }
  server.Drain();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;

  std::vector<uint64_t> latencies;
  latencies.reserve(rids.size());
  for (const RequestId rid : rids) {
    const RequestResult* r = server.Poll(rid);
    if (r == nullptr || !r->ok) {
      std::fprintf(stderr, "bench_serve: request %u did not complete ok in %s\n", rid,
                   name.c_str());
      std::abort();
    }
    latencies.push_back(r->latency_cycles);
  }
  std::sort(latencies.begin(), latencies.end());

  const auto& st = server.stats();
  PhaseResult out;
  out.name = name;
  out.p50 = latencies[latencies.size() / 2];
  out.p99 = latencies[latencies.size() * 99 / 100];
  double sum = 0.0;
  for (const uint64_t l : latencies) {
    sum += static_cast<double>(l);
  }
  out.mean = sum / static_cast<double>(latencies.size());
  out.wall_seconds = wall.count();
  out.req_per_sec =
      wall.count() > 0 ? static_cast<double>(st.requests_completed) / wall.count() : 0.0;
  out.switches_per_req = static_cast<double>(st.world_switches) /
                         static_cast<double>(st.requests_completed);
  out.mean_batch = st.batches > 0
                       ? static_cast<double>(st.batched_requests) / static_cast<double>(st.batches)
                       : 0.0;
  out.world_switches = st.world_switches;
  out.evictions = st.evictions;
  out.rebuilds = st.rebuilds;
  return out;
}

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  using komodo::PhaseResult;
  using komodo::RunPhase;
  using komodo::Sweep;
  using komodo::word;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  Sweep sweep;
  if (smoke) {
    sweep.sessions = 64;
    sweep.requests = 400;
    sweep.hot_sessions = 8;
  }
  // 7 secure pages per catalog enclave: the tight budget keeps ~10 of the
  // sweep's sessions resident, so most cold requests pay an evict+rebuild.
  const word tight_budget = 70;
  const word roomy_budget = 210;

  std::vector<PhaseResult> phases;
  phases.push_back(RunPhase("unbatched", sweep, /*batching=*/false, tight_budget));
  phases.push_back(RunPhase("batched", sweep, /*batching=*/true, tight_budget));
  phases.push_back(RunPhase("batched-roomy", sweep, /*batching=*/true, roomy_budget));

  std::printf("\n=== serve daemon sweep (%u sessions, %u requests, hot set %u) ===\n",
              sweep.sessions, sweep.requests, sweep.hot_sessions);
  std::printf("%-16s %12s %12s %12s %10s %8s %10s %10s\n", "phase", "p50 (cyc)", "p99 (cyc)",
              "req/s", "switch/req", "batch", "evictions", "rebuilds");
  for (const PhaseResult& p : phases) {
    std::printf("%-16s %12llu %12llu %12.1f %10.3f %8.2f %10llu %10llu\n", p.name.c_str(),
                static_cast<unsigned long long>(p.p50), static_cast<unsigned long long>(p.p99),
                p.req_per_sec, p.switches_per_req, p.mean_batch,
                static_cast<unsigned long long>(p.evictions),
                static_cast<unsigned long long>(p.rebuilds));
  }

  const PhaseResult& unbatched = phases[0];
  const PhaseResult& batched = phases[1];
  const double reduction = batched.switches_per_req > 0
                               ? unbatched.switches_per_req / batched.switches_per_req
                               : 0.0;
  std::printf("\nbatching world-switch reduction: %.2fx (%.3f -> %.3f switches/request)\n",
              reduction, unbatched.switches_per_req, batched.switches_per_req);

  komodo::bench::BenchJson json("bench_serve");
  json.Config("smoke", smoke);
  json.Config("seed", sweep.seed);
  json.Config("sessions", sweep.sessions);
  json.Config("requests", sweep.requests);
  json.Config("hot_sessions", sweep.hot_sessions);
  json.Config("tight_budget_pages", tight_budget);
  json.Config("roomy_budget_pages", roomy_budget);
  json.Config("queue_capacity", 512);
  for (const PhaseResult& p : phases) {
    json.Result(p.name, "p50_latency", static_cast<double>(p.p50), "cycles");
    json.Result(p.name, "p99_latency", static_cast<double>(p.p99), "cycles");
    json.Result(p.name, "mean_latency", p.mean, "cycles");
    json.Result(p.name, "wall_seconds", p.wall_seconds, "s");
    json.Result(p.name, "requests_per_sec", p.req_per_sec, "req/s");
    json.Result(p.name, "world_switches_per_request", p.switches_per_req, "switches/req");
    json.Result(p.name, "mean_batch_size", p.mean_batch, "requests");
    json.Result(p.name, "world_switches", static_cast<double>(p.world_switches), "switches");
    json.Result(p.name, "evictions", static_cast<double>(p.evictions), "evictions");
    json.Result(p.name, "rebuilds", static_cast<double>(p.rebuilds), "rebuilds");
  }
  json.Result("batching", "world_switch_reduction", reduction, "x");

  const char* path = "BENCH_serve.json";
  if (!json.Write(path)) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path);
    return 1;
  }

  // The claim the artifact exists to make: batching measurably reduces
  // world switches on the identical request schedule.
  if (batched.switches_per_req >= unbatched.switches_per_req) {
    std::fprintf(stderr, "bench_serve: batching showed no world-switch reduction\n");
    return 1;
  }
  if (batched.evictions == 0 || unbatched.evictions == 0) {
    std::fprintf(stderr, "bench_serve: budget did not force eviction; sweep is not stressing"
                         " residency\n");
    return 1;
  }
  return 0;
}
