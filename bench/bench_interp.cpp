// Interpreter fast-path benchmark (DESIGN.md §8): wall-clock steps/sec and
// SMC round-trip latency with the decode cache + micro-TLB + flat-memory fast
// path on versus off (KOMODO_INTERP_CACHE semantics). The cache-off
// configuration is the pre-cache interpreter — a full two-level walk per
// user-mode access, a fresh Decode() per step and the O(L1) live-page-table
// scan per store — so the speedup column tracks exactly what the fast path
// buys. Simulated cycle counts must be identical in both configurations
// (asserted here; the differential suite checks the full state).
//
// Emits BENCH_interp.json in the working directory so the perf trajectory is
// tracked PR over PR. `--smoke` runs tiny iteration counts for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/arm/machine.h"
#include "src/enclave/programs.h"
#include "src/enclave/sha256_program.h"
#include "src/os/world.h"

namespace komodo {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct RunStats {
  uint64_t steps = 0;
  uint64_t cycles = 0;
  double seconds = 0;
};

// Builds a SHA-256 enclave and notarises `iters` documents of `doc_len`
// bytes (the hashing core of the Fig. 5 notary workload, fully interpreted).
RunStats RunNotary(bool cached, size_t doc_len, int iters) {
  os::World w{64};
  w.machine.interp.set_enabled(cached);
  os::Os::BuildOptions opts;
  opts.with_shared_page = true;
  os::EnclaveHandle e;
  if (w.os.BuildEnclave(enclave::Sha256Program(), &opts, &e) != kErrSuccess) {
    std::abort();
  }
  std::vector<uint8_t> doc(doc_len);
  for (size_t i = 0; i < doc_len; ++i) {
    doc[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const uint64_t steps0 = w.machine.steps_retired;
  const uint64_t cycles0 = w.machine.cycles.total();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const word nblocks = enclave::StageSha256Message(w.os, opts.shared_insecure_pgnr, doc);
    if (w.os.Enter(e.thread, nblocks).err != kErrSuccess) {
      std::abort();
    }
  }
  const auto t1 = Clock::now();
  return {w.machine.steps_retired - steps0, w.machine.cycles.total() - cycles0,
          Seconds(t0, t1)};
}

// Enter/exit with a trivial enclave: the SMC round-trip cost in host time.
RunStats RunSmcRoundTrip(bool cached, int iters) {
  os::World w{64};
  w.machine.interp.set_enabled(cached);
  os::Os::BuildOptions opts;
  os::EnclaveHandle e;
  if (w.os.BuildEnclave(enclave::AddTwoProgram(), &opts, &e) != kErrSuccess) {
    std::abort();
  }
  const uint64_t steps0 = w.machine.steps_retired;
  const uint64_t cycles0 = w.machine.cycles.total();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    if (w.os.Enter(e.thread, 2, 3).err != kErrSuccess) {
      std::abort();
    }
  }
  const auto t1 = Clock::now();
  return {w.machine.steps_retired - steps0, w.machine.cycles.total() - cycles0,
          Seconds(t0, t1)};
}

struct Comparison {
  std::string name;
  RunStats cached;
  RunStats uncached;
  int iters = 0;

  double CachedSps() const { return static_cast<double>(cached.steps) / cached.seconds; }
  double UncachedSps() const { return static_cast<double>(uncached.steps) / uncached.seconds; }
  double Speedup() const { return uncached.seconds / cached.seconds; }
};

void CheckInvisible(const Comparison& c) {
  // Architectural invisibility, cheap version: identical step and simulated
  // cycle counts. (The differential test suite compares whole machines.)
  if (c.cached.steps != c.uncached.steps || c.cached.cycles != c.uncached.cycles) {
    std::fprintf(stderr,
                 "FATAL: %s diverged: steps %llu vs %llu, cycles %llu vs %llu\n",
                 c.name.c_str(), static_cast<unsigned long long>(c.cached.steps),
                 static_cast<unsigned long long>(c.uncached.steps),
                 static_cast<unsigned long long>(c.cached.cycles),
                 static_cast<unsigned long long>(c.uncached.cycles));
    std::abort();
  }
}

void EmitJson(const std::vector<Comparison>& rows, bool smoke, const char* path) {
  bench::BenchJson json("interp");
  json.Config("smoke", smoke);
  for (const Comparison& c : rows) {
    json.Config(c.name + "_iters", static_cast<uint64_t>(c.iters));
    json.Result(c.name, "steps", static_cast<double>(c.cached.steps), "count");
    json.Result(c.name, "cached_steps_per_sec", c.CachedSps(), "steps/s");
    json.Result(c.name, "uncached_steps_per_sec", c.UncachedSps(), "steps/s");
    json.Result(c.name, "cached_seconds", c.cached.seconds, "s");
    json.Result(c.name, "uncached_seconds", c.uncached.seconds, "s");
    json.Result(c.name, "speedup", c.Speedup(), "x");
  }
  json.Write(path);
}

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  using komodo::Comparison;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  const int notary_iters = smoke ? 1 : 12;
  const int sha_iters = smoke ? 2 : 200;
  const int smc_iters = smoke ? 10 : 2000;

  std::vector<Comparison> rows;
  {
    Comparison c;
    c.name = "notary_3000B";
    c.iters = notary_iters;
    c.cached = komodo::RunNotary(true, 3000, notary_iters);
    c.uncached = komodo::RunNotary(false, 3000, notary_iters);
    rows.push_back(c);
  }
  {
    Comparison c;
    c.name = "sha256_64B";
    c.iters = sha_iters;
    c.cached = komodo::RunNotary(true, 64, sha_iters);
    c.uncached = komodo::RunNotary(false, 64, sha_iters);
    rows.push_back(c);
  }
  {
    Comparison c;
    c.name = "smc_roundtrip";
    c.iters = smc_iters;
    c.cached = komodo::RunSmcRoundTrip(true, smc_iters);
    c.uncached = komodo::RunSmcRoundTrip(false, smc_iters);
    rows.push_back(c);
  }

  std::printf("=== Interpreter fast path: cached vs uncached ===\n");
  std::printf("%-16s %12s %14s %14s %9s\n", "workload", "steps", "cached st/s",
              "uncached st/s", "speedup");
  for (const Comparison& c : rows) {
    komodo::CheckInvisible(c);
    std::printf("%-16s %12llu %14.0f %14.0f %8.2fx\n", c.name.c_str(),
                static_cast<unsigned long long>(c.cached.steps), c.CachedSps(),
                c.UncachedSps(), c.Speedup());
  }
  const Comparison& smc = rows.back();
  std::printf("\nSMC round-trip: %.0f ns cached, %.0f ns uncached (per Enter/exit)\n",
              smc.cached.seconds / smc.iters * 1e9, smc.uncached.seconds / smc.iters * 1e9);

  komodo::EmitJson(rows, smoke, "BENCH_interp.json");
  return 0;
}
