// Interpreter and JIT fast-path benchmark (DESIGN.md §8, §13): wall-clock
// steps/sec and SMC round-trip latency across three configurations —
//   uncached : interpreter with every fast path off (KOMODO_INTERP_CACHE=off
//              semantics): a full two-level walk per user-mode access, a
//              fresh Decode() per step, the O(L1) live-page-table scan per
//              store;
//   cached   : decode cache + micro-TLB + flat-memory fast path on;
//   jit      : the caches plus the A32→x64 block translator.
// All three must retire identical step and simulated-cycle counts (asserted
// here; the differential suite compares whole machines). On hosts without
// JIT support the jit column degenerates to a second cached run.
//
// Emits BENCH_interp.json in the working directory so the perf trajectory is
// tracked PR over PR. `--smoke` runs tiny iteration counts for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/arm/machine.h"
#include "src/enclave/programs.h"
#include "src/enclave/sha256_program.h"
#include "src/jit/jit.h"
#include "src/os/world.h"

namespace komodo {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

enum class Config { kUncached, kCached, kJit };

// KOMODO_JIT defaults on, so every configuration pins both knobs explicitly.
void Apply(Config cfg, arm::MachineState& m) {
  m.interp.set_enabled(cfg != Config::kUncached);
  m.jit.set_enabled(cfg == Config::kJit);
}

struct RunStats {
  uint64_t steps = 0;
  uint64_t cycles = 0;
  uint64_t jit_steps = 0;  // steps retired inside translated blocks
  double seconds = 0;
};

// Builds a SHA-256 enclave and notarises `iters` documents of `doc_len`
// bytes (the hashing core of the Fig. 5 notary workload, fully interpreted).
RunStats RunNotary(Config cfg, size_t doc_len, int iters) {
  os::World w{64};
  Apply(cfg, w.machine);
  auto built = w.os.NewEnclave().Code(enclave::Sha256Program()).SharedPage().Build();
  if (!built.ok()) {
    std::abort();
  }
  const os::EnclaveHandle e = *std::move(built);
  std::vector<uint8_t> doc(doc_len);
  for (size_t i = 0; i < doc_len; ++i) {
    doc[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  const uint64_t steps0 = w.machine.steps_retired;
  const uint64_t cycles0 = w.machine.cycles.total();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const word nblocks = enclave::StageSha256Message(w.os, e.shared_insecure_pgnr, doc);
    if (!w.os.Enter(e.thread, nblocks).exited()) {
      std::abort();
    }
  }
  const auto t1 = Clock::now();
  return {w.machine.steps_retired - steps0, w.machine.cycles.total() - cycles0,
          w.machine.jit.stats().jit_steps, Seconds(t0, t1)};
}

// Enter/exit with a trivial enclave: the SMC round-trip cost in host time.
RunStats RunSmcRoundTrip(Config cfg, int iters) {
  os::World w{64};
  Apply(cfg, w.machine);
  auto built = w.os.NewEnclave().Code(enclave::AddTwoProgram()).Build();
  if (!built.ok()) {
    std::abort();
  }
  const os::EnclaveHandle e = *std::move(built);
  const uint64_t steps0 = w.machine.steps_retired;
  const uint64_t cycles0 = w.machine.cycles.total();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    if (!w.os.Enter(e.thread, 2, 3).exited()) {
      std::abort();
    }
  }
  const auto t1 = Clock::now();
  return {w.machine.steps_retired - steps0, w.machine.cycles.total() - cycles0,
          w.machine.jit.stats().jit_steps, Seconds(t0, t1)};
}

struct Comparison {
  std::string name;
  RunStats uncached;
  RunStats cached;
  RunStats jit;
  int iters = 0;

  double UncachedSps() const { return static_cast<double>(uncached.steps) / uncached.seconds; }
  double CachedSps() const { return static_cast<double>(cached.steps) / cached.seconds; }
  double JitSps() const { return static_cast<double>(jit.steps) / jit.seconds; }
  double Speedup() const { return uncached.seconds / cached.seconds; }
  double JitSpeedup() const { return cached.seconds / jit.seconds; }
};

void CheckInvisible(const Comparison& c) {
  // Architectural invisibility, cheap version: identical step and simulated
  // cycle counts across all three configurations. (The differential test
  // suite compares whole machines.)
  for (const RunStats* other : {&c.uncached, &c.jit}) {
    if (c.cached.steps != other->steps || c.cached.cycles != other->cycles) {
      std::fprintf(stderr,
                   "FATAL: %s diverged: steps %llu vs %llu, cycles %llu vs %llu\n",
                   c.name.c_str(), static_cast<unsigned long long>(c.cached.steps),
                   static_cast<unsigned long long>(other->steps),
                   static_cast<unsigned long long>(c.cached.cycles),
                   static_cast<unsigned long long>(other->cycles));
      std::abort();
    }
  }
}

void EmitJson(const std::vector<Comparison>& rows, bool smoke, const char* path) {
  bench::BenchJson json("interp");
  json.Config("smoke", smoke);
  json.Config("jit_available", jit::Available());
  for (const Comparison& c : rows) {
    json.Config(c.name + "_iters", static_cast<uint64_t>(c.iters));
    json.Result(c.name, "steps", static_cast<double>(c.cached.steps), "count");
    json.Result(c.name, "cached_steps_per_sec", c.CachedSps(), "steps/s");
    json.Result(c.name, "uncached_steps_per_sec", c.UncachedSps(), "steps/s");
    json.Result(c.name, "jit_steps_per_sec", c.JitSps(), "steps/s");
    json.Result(c.name, "cached_seconds", c.cached.seconds, "s");
    json.Result(c.name, "uncached_seconds", c.uncached.seconds, "s");
    json.Result(c.name, "jit_seconds", c.jit.seconds, "s");
    json.Result(c.name, "speedup", c.Speedup(), "x");
    json.Result(c.name, "jit_speedup", c.JitSpeedup(), "x");
    json.Result(c.name, "jit_coverage",
                c.jit.steps == 0
                    ? 0.0
                    : static_cast<double>(c.jit.jit_steps) / static_cast<double>(c.jit.steps),
                "fraction");
  }
  json.Write(path);
}

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  using komodo::Comparison;
  using komodo::Config;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  const int notary_iters = smoke ? 1 : 12;
  const int sha_iters = smoke ? 2 : 200;
  const int smc_iters = smoke ? 10 : 2000;

  struct Spec {
    const char* name;
    size_t doc_len;  // 0 = SMC round-trip workload
    int iters;
  };
  const Spec specs[] = {
      {"notary_3000B", 3000, notary_iters},
      {"sha256_64B", 64, sha_iters},
      {"smc_roundtrip", 0, smc_iters},
  };

  std::vector<Comparison> rows;
  for (const Spec& s : specs) {
    Comparison c;
    c.name = s.name;
    c.iters = s.iters;
    if (s.doc_len == 0) {
      c.uncached = komodo::RunSmcRoundTrip(Config::kUncached, s.iters);
      c.cached = komodo::RunSmcRoundTrip(Config::kCached, s.iters);
      c.jit = komodo::RunSmcRoundTrip(Config::kJit, s.iters);
    } else {
      c.uncached = komodo::RunNotary(Config::kUncached, s.doc_len, s.iters);
      c.cached = komodo::RunNotary(Config::kCached, s.doc_len, s.iters);
      c.jit = komodo::RunNotary(Config::kJit, s.doc_len, s.iters);
    }
    rows.push_back(c);
  }

  std::printf("=== Interpreter fast path: uncached vs cached vs jit ===\n");
  std::printf("%-16s %12s %14s %14s %14s %8s %8s\n", "workload", "steps",
              "uncached st/s", "cached st/s", "jit st/s", "speedup", "jit x");
  for (const Comparison& c : rows) {
    komodo::CheckInvisible(c);
    std::printf("%-16s %12llu %14.0f %14.0f %14.0f %7.2fx %7.2fx\n", c.name.c_str(),
                static_cast<unsigned long long>(c.cached.steps), c.UncachedSps(),
                c.CachedSps(), c.JitSps(), c.Speedup(), c.JitSpeedup());
  }
  const Comparison& smc = rows.back();
  std::printf("\nSMC round-trip: %.0f ns cached, %.0f ns uncached (per Enter/exit)\n",
              smc.cached.seconds / smc.iters * 1e9, smc.uncached.seconds / smc.iters * 1e9);

  komodo::EmitJson(rows, smoke, "BENCH_interp.json");
  return 0;
}
