// Ablation of the entry-path optimisations §8.1 sketches: the prototype
// "conservatively saves and restores every non-volatile register" and
// "flushes the TLB, although this could be avoided for repeated invocation of
// the same enclave". This bench measures Enter+Exit under each optimisation,
// quantifying what the paper says it would gain after proving the
// optimisations correct.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/enclave/native_runtime.h"
#include "src/os/world.h"

namespace komodo {
namespace {

class ExitProgram : public enclave::NativeProgram {
 public:
  enclave::UserAction Run(enclave::UserContext&) override {
    return enclave::UserAction::Exit(0);
  }
};

uint64_t MeasureEnterExit(const Monitor::Config& config) {
  os::World w(128, config);
  enclave::NativeRuntime runtime(w.monitor);
  auto built = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  if (!built.ok()) {
    std::abort();
  }
  const os::EnclaveHandle e = *std::move(built);
  runtime.Register(e.l1pt, std::make_shared<ExitProgram>());
  w.os.Enter(e.thread);  // warm: second entry can exploit the redundant-flush skip
  const uint64_t before = w.machine.cycles.total();
  w.os.Enter(e.thread);
  return w.machine.cycles.total() - before;
}

struct AblationResults {
  uint64_t base, flush, lazy, both;
};

AblationResults MeasureAblation() {
  Monitor::Config baseline;
  Monitor::Config skip_flush;
  skip_flush.opt_skip_redundant_tlb_flush = true;
  Monitor::Config lazy_banked;
  lazy_banked.opt_lazy_banked_regs = true;
  Monitor::Config both;
  both.opt_skip_redundant_tlb_flush = true;
  both.opt_lazy_banked_regs = true;

  return {MeasureEnterExit(baseline), MeasureEnterExit(skip_flush),
          MeasureEnterExit(lazy_banked), MeasureEnterExit(both)};
}

void PrintAblation(const AblationResults& r) {
  const uint64_t c_base = r.base;
  const uint64_t c_flush = r.flush;
  const uint64_t c_lazy = r.lazy;
  const uint64_t c_both = r.both;

  std::printf("\n=== Ablation: §8.1 entry-path optimisations (Enter+Exit, cycles) ===\n");
  std::printf("%-44s %10s %10s\n", "configuration", "cycles", "saved");
  std::printf("%-44s %10llu %10s\n", "unoptimised prototype (paper's configuration)",
              static_cast<unsigned long long>(c_base), "-");
  std::printf("%-44s %10llu %9lld\n", "+ skip redundant TLB flush (same enclave)",
              static_cast<unsigned long long>(c_flush),
              static_cast<long long>(c_base - c_flush));
  std::printf("%-44s %10llu %9lld\n", "+ lazy banked-register save/restore",
              static_cast<unsigned long long>(c_lazy),
              static_cast<long long>(c_base - c_lazy));
  std::printf("%-44s %10llu %9lld\n", "+ both",
              static_cast<unsigned long long>(c_both),
              static_cast<long long>(c_base - c_both));
  std::printf(
      "\nBoth optimisations must preserve every correctness and security test (the suites\n"
      "run them; see tests/). The paper defers them until proven — here the property tests\n"
      "play that role.\n");
}

void EmitJson(const AblationResults& r) {
  bench::BenchJson json("ablation_entry");
  json.Config("workload", "enter_exit_warm");
  json.Result("baseline", "sim_cycles", static_cast<double>(r.base), "cycles");
  json.Result("skip_redundant_tlb_flush", "sim_cycles", static_cast<double>(r.flush), "cycles");
  json.Result("lazy_banked_regs", "sim_cycles", static_cast<double>(r.lazy), "cycles");
  json.Result("both", "sim_cycles", static_cast<double>(r.both), "cycles");
  json.Result("both", "saved_cycles", static_cast<double>(r.base - r.both), "cycles");
  json.Write("BENCH_ablation_entry.json");
}

void BM_EnterExitBaseline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureEnterExit(Monitor::Config{}));
  }
}
BENCHMARK(BM_EnterExitBaseline)->Unit(benchmark::kMillisecond);

void BM_EnterExitOptimised(benchmark::State& state) {
  Monitor::Config config;
  config.opt_skip_redundant_tlb_flush = true;
  config.opt_lazy_banked_regs = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureEnterExit(config));
  }
}
BENCHMARK(BM_EnterExitOptimised)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  const komodo::AblationResults results = komodo::MeasureAblation();
  komodo::PrintAblation(results);
  komodo::EmitJson(results);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
