// Extension benchmark (in the spirit of §8): enclave construction cost as a
// function of enclave size, Komodo vs SGX. Construction is where the two
// designs do the same conceptual work — allocate, measure, finalise — so the
// comparison isolates monitor-call overhead from the measurement work that
// dominates both.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/os/world.h"
#include "src/sgx/sgx_model.h"

namespace komodo {
namespace {

// Cycles to build (and tear down) a Komodo enclave with `data_pages` secure
// pages. Uses a fresh world per measurement so page allocation is identical.
uint64_t KomodoBuildCycles(word data_pages) {
  os::World w{512};
  const word staging = w.os.AllocInsecurePage();
  w.os.WriteInsecurePage(staging, {0xe3a00001, 0xef000000});
  const uint64_t before = w.machine.cycles.total();

  const PageNr as = w.os.AllocSecurePage();
  const PageNr l1pt = w.os.AllocSecurePage();
  if (w.os.InitAddrspace(as, l1pt).err != kErrSuccess) {
    std::abort();
  }
  // One L2 table covers up to 1024 pages; enough for this sweep.
  const PageNr l2 = w.os.AllocSecurePage();
  if (w.os.InitL2Table(as, l2, 0).err != kErrSuccess) {
    std::abort();
  }
  for (word i = 0; i < data_pages; ++i) {
    const PageNr page = w.os.AllocSecurePage();
    if (w.os.MapSecure(as, page, MakeMapping(0x8000 + i * arm::kPageSize, kMapR | kMapX),
                       staging)
            .err != kErrSuccess) {
      std::abort();
    }
  }
  const PageNr thread = w.os.AllocSecurePage();
  if (w.os.InitThread(as, thread, 0x8000).err != kErrSuccess ||
      w.os.Finalise(as).err != kErrSuccess) {
    std::abort();
  }
  return w.machine.cycles.total() - before;
}

uint64_t SgxBuildCycles(sgx::word data_pages) {
  sgx::SgxMachine m(512);
  std::array<uint8_t, sgx::kSgxPageBytes> contents{};
  contents.fill(0x5a);
  m.ResetCycles();
  if (m.Ecreate(0) != sgx::SgxStatus::kOk) {
    std::abort();
  }
  if (m.Eadd(0, 1, 0, false, false, sgx::EpcmType::kTcs, contents) != sgx::SgxStatus::kOk) {
    std::abort();
  }
  for (sgx::word i = 0; i < data_pages; ++i) {
    const sgx::word page = 2 + i;
    if (m.Eadd(0, page, 0x8000 + i * sgx::kSgxPageBytes, true, true, sgx::EpcmType::kReg,
               contents) != sgx::SgxStatus::kOk) {
      std::abort();
    }
    for (sgx::word off = 0; off < sgx::kSgxPageBytes; off += sgx::kEextendChunk) {
      if (m.Eextend(0, page, off) != sgx::SgxStatus::kOk) {
        std::abort();
      }
    }
  }
  if (m.Einit(0) != sgx::SgxStatus::kOk) {
    std::abort();
  }
  return m.cycles();
}

struct BuildRow {
  word pages;
  uint64_t komodo_cycles;
  uint64_t sgx_cycles;
};

std::vector<BuildRow> MeasureBuild() {
  std::vector<BuildRow> rows;
  for (word n : {1u, 4u, 16u, 64u, 128u}) {
    rows.push_back({n, KomodoBuildCycles(n), SgxBuildCycles(n)});
  }
  return rows;
}

void PrintBuildComparison(const std::vector<BuildRow>& rows) {
  std::printf("\n=== Extension: enclave construction cost vs size (cycles) ===\n");
  std::printf("%12s %14s %14s %14s %14s\n", "data pages", "Komodo", "per page", "SGX",
              "per page");
  uint64_t prev_k = 0;
  uint64_t prev_s = 0;
  word prev_n = 0;
  for (const BuildRow& row : rows) {
    const word n = row.pages;
    const uint64_t k = row.komodo_cycles;
    const uint64_t s = row.sgx_cycles;
    const double k_per = prev_n ? static_cast<double>(k - prev_k) / (n - prev_n) : 0;
    const double s_per = prev_n ? static_cast<double>(s - prev_s) / (n - prev_n) : 0;
    std::printf("%12u %14llu %14.0f %14llu %14.0f\n", n, static_cast<unsigned long long>(k),
                k_per, static_cast<unsigned long long>(s), s_per);
    prev_k = k;
    prev_s = s;
    prev_n = n;
  }
  std::printf(
      "\nBoth are dominated by per-page measurement hashing (64 SHA-256 blocks/page); the\n"
      "marginal costs should be within ~2x of each other. Komodo additionally copies page\n"
      "contents into secure RAM; SGX pays per-256B EEXTEND microcode flows.\n");
}

void EmitJson(const std::vector<BuildRow>& rows) {
  bench::BenchJson json("enclave_build");
  json.Config("page_sizes", "1,4,16,64,128");
  for (const BuildRow& row : rows) {
    const std::string name = "pages_" + std::to_string(row.pages);
    json.Result(name, "komodo_cycles", static_cast<double>(row.komodo_cycles), "cycles");
    json.Result(name, "sgx_cycles", static_cast<double>(row.sgx_cycles), "cycles");
  }
  json.Write("BENCH_enclave_build.json");
}

void BM_KomodoBuild64(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(KomodoBuildCycles(64));
  }
}
BENCHMARK(BM_KomodoBuild64)->Unit(benchmark::kMillisecond);

void BM_SgxBuild64(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(SgxBuildCycles(64));
  }
}
BENCHMARK(BM_SgxBuild64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  const std::vector<komodo::BuildRow> rows = komodo::MeasureBuild();
  komodo::PrintBuildComparison(rows);
  komodo::EmitJson(rows);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
