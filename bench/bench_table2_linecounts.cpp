// Table 2 analogue: line counts per component. The paper's columns are
// Dafny spec / Vale implementation / proof annotations; the natural analogue
// here is specification code (src/spec), implementation code, and tests
// (property tests play the role the proofs played). Counts are physical
// source lines excluding blanks and pure comment lines, like the paper's.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#ifndef KOMODO_SOURCE_DIR
#define KOMODO_SOURCE_DIR "."
#endif

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp";
}

int CountLines(const fs::path& file) {
  std::ifstream in(file);
  std::string line;
  int count = 0;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    // Trim leading whitespace.
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;  // blank
    }
    const std::string body = line.substr(first);
    if (in_block_comment) {
      if (body.find("*/") != std::string::npos) {
        in_block_comment = false;
      }
      continue;
    }
    if (body.rfind("//", 0) == 0) {
      continue;  // comment line
    }
    if (body.rfind("/*", 0) == 0 && body.find("*/") == std::string::npos) {
      in_block_comment = true;
      continue;
    }
    ++count;
  }
  return count;
}

int CountDir(const fs::path& dir) {
  int total = 0;
  if (!fs::exists(dir)) {
    return 0;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      total += CountLines(entry.path());
    }
  }
  return total;
}

void PrintTable2() {
  const fs::path root = KOMODO_SOURCE_DIR;
  struct Row {
    const char* component;
    const char* paper_cols;  // spec / impl / proof from Table 2
    fs::path dir;
  };
  const std::vector<Row> rows = {
      {"ARM machine model", "1,174 /   112 /    985", root / "src/arm"},
      {"Crypto (SHA/HMAC/RSA)", "  250 /   415 /  3,200", root / "src/crypto"},
      {"Komodo monitor (SMC+SVC)", "1,609 / 2,183 / 11,020", root / "src/core"},
      {"Spec + noninterference", "  175 /     - /  2,644", root / "src/spec"},
      {"OS model / harness", "    - /     - /      -", root / "src/os"},
      {"SGX baseline", "    - /     - /      -", root / "src/sgx"},
      {"Enclave runtime + notary", "    - / 3,700 /      -", root / "src/enclave"},
  };
  std::printf("\n=== Table 2 analogue: line counts per component ===\n");
  std::printf("%-28s %26s %12s\n", "component", "paper (spec/impl/proof)", "this repo");
  int src_total = 0;
  for (const Row& r : rows) {
    const int lines = CountDir(r.dir);
    src_total += lines;
    std::printf("%-28s %26s %12d\n", r.component, r.paper_cols, lines);
  }
  const int tests = CountDir(root / "tests");
  const int bench = CountDir(root / "bench");
  const int examples = CountDir(root / "examples");
  std::printf("%-28s %26s %12d\n", "tests (role of proofs)", "18,655 proof lines", tests);
  std::printf("%-28s %26s %12d\n", "benchmarks", "-", bench);
  std::printf("%-28s %26s %12d\n", "examples", "-", examples);
  std::printf("%-28s %26s %12d\n", "TOTAL", "25,811 (4,446/2,710/18,655)",
              src_total + tests + bench + examples);
  std::printf(
      "\nThe paper's 'proof' column (18,655 Dafny annotation lines) maps onto this repo's\n"
      "test suite: machine-checked proofs are replaced by executable-spec refinement and\n"
      "noninterference property tests. See DESIGN.md substitution #2.\n");
}

void BM_CountRepo(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountDir(fs::path(KOMODO_SOURCE_DIR) / "src"));
  }
}
BENCHMARK(BM_CountRepo);

}  // namespace

int main(int argc, char** argv) {
  PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
