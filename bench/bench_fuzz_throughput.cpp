// Fuzz-campaign throughput benchmark (DESIGN.md §11, §15): monitor calls/sec
// for the differential fuzzer under (a) fresh world construction per trace —
// the pre-pooling baseline, (b) snapshot-reset world pooling, and (c) a
// worker sweep over --jobs. Every sweep configuration must produce the same
// campaign hash; the bench aborts if any run disagrees, so the numbers can
// never come from different work.
//
// The jobs sweep clamps every requested worker count to the host's hardware
// concurrency: running 8 threads on 1 core measures scheduler thrash, not
// scaling (the pre-clamp committed numbers showed jobs-4/8 at 0.62-0.69x of
// serial on a 1-core host). Requested counts that clamp to an
// already-measured effective count are reported as skipped; a run whose
// effective jobs exceeded host cores aborts the bench.
//
// The evolve section runs coverage-guided corpus evolution (--mode evolve)
// against a blind campaign with coverage measurement at the same call
// budget, records the per-round coverage-growth curve, and enforces the
// acceptance gate: evolve must reach strictly more distinct coverage keys
// than blind. Executed calls are reported for both modes — the evolve
// ledger and its depth clamp keep them within ~2% of blind's, so the
// comparison really is at equal budget.
//
// Emits BENCH_fuzz.json in the working directory so the perf trajectory is
// tracked PR over PR. `--smoke` runs a tiny call budget for CI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/fuzz/campaign.h"

namespace komodo {
namespace {

struct Run {
  std::string name;
  int requested_jobs = 1;
  unsigned effective_jobs = 1;
  fuzz::CampaignResult result;
};

Run RunConfig(const std::string& name, const fuzz::CampaignOptions& opts, int requested_jobs,
              unsigned effective_jobs) {
  fuzz::CampaignOptions run_opts = opts;
  run_opts.jobs = static_cast<int>(effective_jobs);
  Run run{name, requested_jobs, effective_jobs, fuzz::RunCampaign(run_opts)};
  if (run.result.failed) {
    std::fprintf(stderr, "bench_fuzz_throughput: oracle failure in %s:\n%s\n", name.c_str(),
                 run.result.original.Format().c_str());
    std::abort();
  }
  return run;
}

uint64_t TotalCalls(const fuzz::CampaignResult& r) {
  uint64_t calls = 0;
  for (const fuzz::OracleStats& st : r.stats) {
    calls += st.calls;
  }
  return calls;
}

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  using komodo::Run;
  using komodo::RunConfig;
  using komodo::TotalCalls;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t calls = smoke ? 100 : 1500;
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());

  komodo::fuzz::CampaignOptions sweep;
  sweep.seed = 20260807;
  sweep.calls = calls;
  sweep.trace_len = 60;

  std::vector<Run> runs;
  {
    komodo::fuzz::CampaignOptions fresh = sweep;
    fresh.reuse_worlds = false;
    runs.push_back(RunConfig("serial-fresh", fresh, 1, 1));
  }
  runs.push_back(RunConfig("serial-pooled", sweep, 1, 1));
  unsigned max_effective = 1;  // job counts already measured (1 = the serial runs)
  for (const int jobs : {2, 4, 8}) {
    const unsigned effective = std::min<unsigned>(static_cast<unsigned>(jobs), host_cores);
    if (effective <= max_effective) {
      std::printf("jobs-%d: skipped (clamped to %u on a %u-core host, already measured)\n",
                  jobs, effective, host_cores);
      continue;
    }
    max_effective = effective;
    runs.push_back(RunConfig("jobs-" + std::to_string(jobs), sweep, jobs, effective));
  }

  // Oversubscription gate: the whole point of the clamp is that no measured
  // configuration ran more workers than cores.
  for (const Run& run : runs) {
    if (run.effective_jobs > host_cores) {
      std::fprintf(stderr, "bench_fuzz_throughput: %s ran %u workers on %u cores\n",
                   run.name.c_str(), run.effective_jobs, host_cores);
      return 1;
    }
  }

  // Determinism gate: one campaign hash across every sweep configuration.
  for (const Run& run : runs) {
    if (run.result.hash != runs.front().result.hash) {
      std::fprintf(stderr, "bench_fuzz_throughput: hash mismatch in %s\n  %s\n  %s\n",
                   run.name.c_str(), runs.front().result.hash.c_str(),
                   run.result.hash.c_str());
      return 1;
    }
  }

  // Evolve-vs-blind coverage comparison at one call budget. Fewer shards and
  // shorter traces than the sweep keep the floor-overshoot of per-shard
  // budgets small relative to the budget itself.
  komodo::fuzz::CampaignOptions cover_opts;
  cover_opts.seed = 20260807;
  // The comparison needs enough budget for guided depth to pull ahead of the
  // blind stream: blind's marginal key rate collapses past ~1000 calls per
  // oracle while deep extensions keep producing, so the crossover sits well
  // above the sweep's smoke budget and the margin only becomes robust around
  // 3000 calls/oracle. The comparison therefore runs the same pinned config
  // in smoke and full mode (~40s of single-core wall time): a thin margin at
  // a smaller budget would make the acceptance gate flake under unrelated
  // coverage-key churn.
  cover_opts.calls = 3000;
  cover_opts.trace_len = 30;
  cover_opts.shards = 4;
  cover_opts.jobs = static_cast<int>(std::min(8u, host_cores));
  cover_opts.measure_coverage = true;
  const Run blind_cover = RunConfig("blind-coverage", cover_opts, cover_opts.jobs,
                                    static_cast<unsigned>(cover_opts.jobs));
  cover_opts.measure_coverage = false;
  cover_opts.mode = komodo::fuzz::CampaignMode::kEvolve;
  cover_opts.rounds = 4;
  cover_opts.max_corpus = 64;
  const Run evolve = RunConfig("evolve", cover_opts, cover_opts.jobs,
                               static_cast<unsigned>(cover_opts.jobs));

  // Acceptance gate: at the same budget, coverage guidance must beat the
  // blind stream on distinct coverage keys — strictly.
  if (evolve.result.coverage_keys <= blind_cover.result.coverage_keys) {
    std::fprintf(stderr,
                 "bench_fuzz_throughput: evolve coverage (%llu keys) failed to beat blind "
                 "(%llu keys)\n",
                 static_cast<unsigned long long>(evolve.result.coverage_keys),
                 static_cast<unsigned long long>(blind_cover.result.coverage_keys));
    return 1;
  }

  komodo::bench::BenchJson json("bench_fuzz_throughput");
  json.Config("smoke", smoke);
  json.Config("seed", 20260807);
  json.Config("calls_per_oracle", calls);
  json.Config("trace_len", 60);
  json.Config("shards", 16);
  json.Config("host_cores", host_cores);
  json.Config("campaign_hash", runs.front().result.hash);
  json.Config("evolve_calls_per_oracle", cover_opts.calls);
  json.Config("evolve_trace_len", cover_opts.trace_len);
  json.Config("evolve_shards", cover_opts.shards);
  json.Config("evolve_rounds", cover_opts.rounds);
  json.Config("evolve_max_corpus", static_cast<uint64_t>(cover_opts.max_corpus));
  json.Config("evolve_campaign_hash", evolve.result.hash);

  std::printf("\n=== fuzz campaign throughput (host_cores=%u) ===\n", host_cores);
  std::printf("%-16s %5s %5s %12s %12s %12s %14s\n", "config", "req", "eff", "wall (s)",
              "calls/s", "worlds", "pages/reset");
  const double base = runs.front().result.wall_seconds;
  for (const Run& run : runs) {
    const komodo::fuzz::CampaignResult& r = run.result;
    const double rate = r.wall_seconds > 0 ? TotalCalls(r) / r.wall_seconds : 0.0;
    const double pages_per_reset =
        r.worlds_reused > 0 ? static_cast<double>(r.pages_restored) / r.worlds_reused : 0.0;
    std::printf("%-16s %5d %5u %12.3f %12.1f %12llu %14.1f  (%.2fx)\n", run.name.c_str(),
                run.requested_jobs, run.effective_jobs, r.wall_seconds, rate,
                static_cast<unsigned long long>(r.worlds_built), pages_per_reset,
                base / r.wall_seconds);
    json.Result(run.name, "jobs_requested", static_cast<double>(run.requested_jobs), "jobs");
    json.Result(run.name, "jobs_effective", static_cast<double>(run.effective_jobs), "jobs");
    json.Result(run.name, "wall_seconds", r.wall_seconds, "s");
    json.Result(run.name, "calls_per_sec", rate, "calls/s");
    json.Result(run.name, "worlds_built", static_cast<double>(r.worlds_built), "worlds");
    json.Result(run.name, "worlds_reused", static_cast<double>(r.worlds_reused), "worlds");
    json.Result(run.name, "pages_per_reset", pages_per_reset, "pages");
    json.Result(run.name, "speedup_vs_serial_fresh", base / r.wall_seconds, "x");
  }

  std::printf("\n=== evolve vs blind coverage (calls_per_oracle=%llu) ===\n",
              static_cast<unsigned long long>(cover_opts.calls));
  for (const Run* run : {&blind_cover, &evolve}) {
    const komodo::fuzz::CampaignResult& r = run->result;
    std::printf("%-16s %12.3fs %8llu calls %8llu coverage keys\n", run->name.c_str(),
                r.wall_seconds, static_cast<unsigned long long>(TotalCalls(r)),
                static_cast<unsigned long long>(r.coverage_keys));
    json.Result(run->name, "wall_seconds", r.wall_seconds, "s");
    json.Result(run->name, "calls_executed", static_cast<double>(TotalCalls(r)), "calls");
    json.Result(run->name, "coverage_keys", static_cast<double>(r.coverage_keys), "keys");
    for (const komodo::fuzz::OracleStats& st : r.stats) {
      std::printf("    %-18s %6llu calls %6llu keys\n", st.oracle.c_str(),
                  static_cast<unsigned long long>(st.calls),
                  static_cast<unsigned long long>(st.coverage_keys));
      json.Result(run->name, "coverage_keys_" + st.oracle,
                  static_cast<double>(st.coverage_keys), "keys");
    }
  }
  std::printf("coverage curve:");
  for (size_t i = 0; i < evolve.result.coverage_curve.size(); ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(evolve.result.coverage_curve[i]));
    json.Result("evolve", "coverage_round_" + std::to_string(i),
                static_cast<double>(evolve.result.coverage_curve[i]), "keys");
  }
  std::printf("\nevolve/blind coverage ratio: %.2fx\n",
              blind_cover.result.coverage_keys > 0
                  ? static_cast<double>(evolve.result.coverage_keys) /
                        static_cast<double>(blind_cover.result.coverage_keys)
                  : 0.0);
  uint64_t corpus_total = 0;
  for (const komodo::fuzz::OracleStats& st : evolve.result.stats) {
    corpus_total += st.corpus_entries;
  }
  json.Result("evolve", "corpus_entries", static_cast<double>(corpus_total), "traces");

  const char* path = "BENCH_fuzz.json";
  if (!json.Write(path)) {
    std::fprintf(stderr, "bench_fuzz_throughput: cannot write %s\n", path);
    return 1;
  }
  return 0;
}
