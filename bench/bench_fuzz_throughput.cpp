// Fuzz-campaign throughput benchmark (DESIGN.md §11): monitor calls/sec for
// the differential fuzzer under (a) fresh world construction per trace — the
// pre-pooling baseline, (b) snapshot-reset world pooling, and (c) a worker
// sweep over --jobs. Every configuration must produce the same campaign
// hash; the bench aborts if any run disagrees, so the numbers can never come
// from different work.
//
// The jobs sweep only shows wall-clock scaling on a multicore host — the
// committed BENCH_fuzz.json records host_cores so a flat curve on a 1-core
// box reads as expected, not as a regression. The fresh-vs-pooled ratio is a
// single-thread property and is meaningful anywhere.
//
// Emits BENCH_fuzz.json in the working directory so the perf trajectory is
// tracked PR over PR. `--smoke` runs a tiny call budget for CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/fuzz/campaign.h"

namespace komodo {
namespace {

struct Run {
  std::string name;
  fuzz::CampaignResult result;
};

Run RunConfig(const std::string& name, uint64_t calls, int jobs, bool reuse) {
  fuzz::CampaignOptions opts;
  opts.seed = 20260807;
  opts.calls = calls;
  opts.trace_len = 60;
  opts.jobs = jobs;
  opts.reuse_worlds = reuse;
  Run run{name, fuzz::RunCampaign(opts)};
  if (run.result.failed) {
    std::fprintf(stderr, "bench_fuzz_throughput: oracle failure in %s:\n%s\n", name.c_str(),
                 run.result.original.Format().c_str());
    std::abort();
  }
  return run;
}

uint64_t TotalCalls(const fuzz::CampaignResult& r) {
  uint64_t calls = 0;
  for (const fuzz::OracleStats& st : r.stats) {
    calls += st.calls;
  }
  return calls;
}

}  // namespace
}  // namespace komodo

int main(int argc, char** argv) {
  using komodo::Run;
  using komodo::RunConfig;
  using komodo::TotalCalls;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t calls = smoke ? 100 : 1500;
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());

  std::vector<Run> runs;
  runs.push_back(RunConfig("serial-fresh", calls, 1, /*reuse=*/false));
  runs.push_back(RunConfig("serial-pooled", calls, 1, /*reuse=*/true));
  for (const int jobs : {2, 4, 8}) {
    runs.push_back(RunConfig("jobs-" + std::to_string(jobs), calls, jobs, /*reuse=*/true));
  }

  // Determinism gate: one campaign hash across every configuration.
  for (const Run& run : runs) {
    if (run.result.hash != runs.front().result.hash) {
      std::fprintf(stderr, "bench_fuzz_throughput: hash mismatch in %s\n  %s\n  %s\n",
                   run.name.c_str(), runs.front().result.hash.c_str(),
                   run.result.hash.c_str());
      return 1;
    }
  }

  komodo::bench::BenchJson json("bench_fuzz_throughput");
  json.Config("smoke", smoke);
  json.Config("seed", 20260807);
  json.Config("calls_per_oracle", calls);
  json.Config("trace_len", 60);
  json.Config("shards", 16);
  json.Config("host_cores", host_cores);
  json.Config("campaign_hash", runs.front().result.hash);

  std::printf("\n=== fuzz campaign throughput (host_cores=%u) ===\n", host_cores);
  std::printf("%-16s %12s %12s %12s %14s\n", "config", "wall (s)", "calls/s", "worlds", "pages/reset");
  const double base = runs.front().result.wall_seconds;
  for (const Run& run : runs) {
    const komodo::fuzz::CampaignResult& r = run.result;
    const double rate = r.wall_seconds > 0 ? TotalCalls(r) / r.wall_seconds : 0.0;
    const double pages_per_reset =
        r.worlds_reused > 0 ? static_cast<double>(r.pages_restored) / r.worlds_reused : 0.0;
    std::printf("%-16s %12.3f %12.1f %12llu %14.1f  (%.2fx)\n", run.name.c_str(),
                r.wall_seconds, rate, static_cast<unsigned long long>(r.worlds_built),
                pages_per_reset, base / r.wall_seconds);
    json.Result(run.name, "wall_seconds", r.wall_seconds, "s");
    json.Result(run.name, "calls_per_sec", rate, "calls/s");
    json.Result(run.name, "worlds_built", static_cast<double>(r.worlds_built), "worlds");
    json.Result(run.name, "worlds_reused", static_cast<double>(r.worlds_reused), "worlds");
    json.Result(run.name, "pages_per_reset", pages_per_reset, "pages");
    json.Result(run.name, "speedup_vs_serial_fresh", base / r.wall_seconds, "x");
  }

  const char* path = "BENCH_fuzz.json";
  if (!json.Write(path)) {
    std::fprintf(stderr, "bench_fuzz_throughput: cannot write %s\n", path);
    return 1;
  }
  return 0;
}
