// Taint-pass tests: every seeded-bad fixture produces exactly its expected
// finding, and the precision features the shipped programs rely on (constant
// propagation through MOVW/MOVT, strong updates on data-page cells, trap
// clobbering, in-code constant tables) hold.
#include "src/analysis/taint.h"

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/analysis/fixtures.h"
#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"
#include "src/os/os.h"

namespace komodo::analysis {
namespace {

using arm::Assembler;
using arm::Cond;
using namespace arm;  // register names

constexpr vaddr kBase = os::kEnclaveCodeVa;

AnalysisResult Analyze(const std::vector<word>& program) {
  return AnalyzeProgram(program, kBase);
}

void EmitExit(Assembler& a, word retval = 0) {
  a.MovImm(R1, retval);
  a.MovImm(R0, kSvcExit);
  a.Svc();
}

TEST(TaintFixtures, EachSeededBadFixtureYieldsExactlyItsFinding) {
  for (const BadFixture& f : SeededBadFixtures()) {
    const AnalysisResult result = Analyze(f.program);
    ASSERT_EQ(result.findings.size(), 1u) << f.name;
    EXPECT_EQ(result.findings[0].kind, f.expected) << f.name;
  }
}

TEST(TaintFixtures, ExtraFixturesCoverRemainingFindingKinds) {
  for (const BadFixture& f : ExtraBadFixtures()) {
    const AnalysisResult result = Analyze(f.program);
    ASSERT_EQ(result.findings.size(), 1u) << f.name;
    EXPECT_EQ(result.findings[0].kind, f.expected) << f.name;
  }
}

TEST(TaintPrecision, PublicBranchIsNotFlagged) {
  // Branching on an Enter argument (r0) is public control flow.
  Assembler a(kBase);
  Assembler::Label skip = a.NewLabel();
  a.Cmp(R0, 0u);
  a.B(skip, Cond::kEq);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Str(R0, R4, 0);
  a.Bind(skip);
  EmitExit(a);
  EXPECT_TRUE(Analyze(a.Finish()).Clean());
}

TEST(TaintPrecision, SecretValueStoreToPublicAddressIsDeclassificationNotAFinding) {
  // LeakSecretProgram's pattern: the enclave may publish its own secret; only
  // secret-dependent *addresses* and *branches* are channels (§6).
  Assembler a(kBase);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);  // secret value
  a.MovImm(R6, os::kEnclaveSharedVa);
  a.Str(R5, R6, 0);  // public (constant) address
  EmitExit(a);
  EXPECT_TRUE(Analyze(a.Finish()).Clean());
}

TEST(TaintPrecision, StrongUpdateMakesOwnStoredValuePublicAgain) {
  // A program that writes a public value into its private page and reads it
  // back must not be flagged when it branches on the reloaded value — this is
  // exactly the sha256 program's block-counter idiom.
  Assembler a(kBase);
  Assembler::Label done = a.NewLabel();
  a.MovImm(R4, os::kEnclaveDataVa + 0x120);
  a.Str(R0, R4, 0);  // data[0x120] = public arg
  a.Ldr(R5, R4, 0);
  a.Cmp(R5, 0u);
  a.B(done, Cond::kEq);
  a.Bind(done);
  EmitExit(a);
  EXPECT_TRUE(Analyze(a.Finish()).Clean());
}

TEST(TaintPrecision, TrapClobberResetsDataPageCellsToSecret) {
  // After an SVC the monitor may rewrite enclave memory (Attest writes the
  // MAC), so previously-written cells fall back to secret — branching on one
  // afterwards is flagged.
  Assembler a(kBase);
  Assembler::Label done = a.NewLabel();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.MovImm(R5, 7);
  a.Str(R5, R4, 0);  // public cell...
  a.MovImm(R0, kSvcGetRandom);
  a.Svc();           // ...until the monitor runs
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R6, R4, 0);
  a.Cmp(R6, 0u);
  a.B(done, Cond::kEq);
  a.Bind(done);
  EmitExit(a);
  const AnalysisResult result = Analyze(a.Finish());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, FindingKind::kSecretDependentBranch);
}

TEST(TaintPrecision, InCodeConstantTableLoadsStayPublic) {
  // The sha256 idiom: LDM from a constant pool inside the code page, then
  // branch on arithmetic over the loaded constants.
  Assembler a(kBase);
  Assembler::Label start = a.NewLabel();
  Assembler::Label table = a.NewLabel();
  Assembler::Label done = a.NewLabel();
  a.B(start);
  a.Bind(table);
  a.EmitWord(3);
  a.Bind(start);
  a.MovImm(R4, a.AddrOf(table));
  a.Ldr(R5, R4, 0);  // r5 = 3, from the code page
  a.Cmp(R5, 3u);
  a.B(done, Cond::kEq);
  a.Bind(done);
  EmitExit(a);
  EXPECT_TRUE(Analyze(a.Finish()).Clean());
}

TEST(TaintPrecision, SecretTaintPropagatesThroughArithmetic) {
  // secret -> shifted/added -> used as an index: still flagged.
  Assembler a(kBase);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);                                   // secret
  a.AddShifted(R6, R5, R5, ShiftKind::kLsl, 2);       // derived from secret
  a.Add(R6, R6, 16u);
  a.MovImm(R7, os::kEnclaveSharedVa);
  a.LdrReg(R8, R7, R6);                               // secret-indexed load
  EmitExit(a);
  const AnalysisResult result = Analyze(a.Finish());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, FindingKind::kSecretIndexedLoad);
}

TEST(TaintPrecision, SvcNumberResolvedThroughMovwMovt) {
  // A call number materialized via the MOVW/MOVT path (any constant the
  // rotated-immediate encoder rejects goes through it) still resolves.
  Assembler a(kBase);
  a.MovImm(R0, 0x12345);  // needs MOVW/MOVT; not a Table 1 call
  a.Svc();
  EmitExit(a);
  const AnalysisResult result = Analyze(a.Finish());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, FindingKind::kSvcOutOfRange);
  EXPECT_EQ(result.findings[0].detail, "r0=" + std::to_string(0x12345));
}

TEST(TaintPrecision, LoopCounterJoinStaysPublic) {
  // Fixpoint over a back edge: the counter joins to non-constant but remains
  // public, so the loop branch is not flagged.
  Assembler a(kBase);
  Assembler::Label loop = a.NewLabel();
  a.MovImm(R6, 0);
  a.Bind(loop);
  a.Add(R6, R6, 4u);
  a.Cmp(R6, 64u);
  a.B(loop, Cond::kNe);
  EmitExit(a);
  EXPECT_TRUE(Analyze(a.Finish()).Clean());
}

TEST(TaintPrecision, MrsCpsrExposesSecretFlags) {
  // Reading the CPSR after comparing a secret leaks the flags into a
  // register; indexing with it is a secret-indexed access.
  Assembler a(kBase);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Cmp(R5, 0u);     // flags now secret (no conditional used: no branch finding)
  a.MrsCpsr(R6);     // r6 tainted by the flags
  a.MovImm(R7, os::kEnclaveSharedVa);
  a.And(R6, R6, 0x80000000u);
  a.Lsr(R6, R6, 24);
  a.LdrReg(R8, R7, R6);
  EmitExit(a);
  const AnalysisResult result = Analyze(a.Finish());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, FindingKind::kSecretIndexedLoad);
}

}  // namespace
}  // namespace komodo::analysis
