// End-to-end lint regression: every shipped enclave program analyzes clean,
// and the deliberately-faulting exception-path fixtures keep their expected
// static signature. A change to src/enclave that introduces a secret-flow or
// privilege defect fails here (and in the komodo_lint_* CTest cases).
#include "src/analysis/analyzer.h"

#include <gtest/gtest.h>

#include "src/enclave/example_programs.h"
#include "src/enclave/programs.h"
#include "src/enclave/sha256_program.h"
#include "src/os/os.h"

namespace komodo::analysis {
namespace {

using komodo::enclave::Sha256Program;

AnalysisResult Analyze(const std::vector<word>& program) {
  return AnalyzeProgram(program, os::kEnclaveCodeVa);
}

std::string Dump(const AnalysisResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += FormatFinding(f) + "\n";
  }
  return out;
}

TEST(LintShipped, AllCleanPrograms) {
  using namespace komodo::enclave;
  const struct {
    const char* name;
    std::vector<word> program;
  } programs[] = {
      {"add_two", AddTwoProgram()},
      {"echo_shared", EchoSharedProgram()},
      {"counter", CounterProgram()},
      {"spin", SpinProgram()},
      {"attest", AttestProgram()},
      {"verify", VerifyProgram()},
      {"dyn_mem", DynMemProgram()},
      {"random", RandomProgram()},
      {"leak_secret", LeakSecretProgram()},
      {"sha256", Sha256Program()},
      // The examples' enclave programs (src/enclave/example_programs.cc).
      // The vault in particular must stay constant-time: a secret-dependent
      // branch here is a real timing leak in a demo about not leaking.
      {"example_quickstart", QuickstartProgram()},
      {"example_heap", HeapProgram()},
      {"example_drill_victim", DrillVictimProgram()},
      {"example_vault", VaultProgram()},
  };
  for (const auto& p : programs) {
    const AnalysisResult result = Analyze(p.program);
    EXPECT_TRUE(result.Clean()) << p.name << " findings:\n" << Dump(result);
  }
}

TEST(LintShipped, FaultingFixturesKeepTheirStaticSignature) {
  using namespace komodo::enclave;
  // read_outside / write_code fault at *runtime* (unmapped VA, read-only
  // page); statically their addresses are public constants, so they are
  // clean — the dynamic exception-path tests cover them.
  EXPECT_TRUE(Analyze(ReadOutsideProgram()).Clean());
  EXPECT_TRUE(Analyze(WriteCodeProgram()).Clean());
  // undefined_insn is statically visible: the word is not in the modelled
  // subset.
  const AnalysisResult undef = Analyze(UndefinedInsnProgram());
  ASSERT_EQ(undef.findings.size(), 1u) << Dump(undef);
  EXPECT_EQ(undef.findings[0].kind, FindingKind::kUndecodableWord);
}

TEST(LintShipped, Sha256CfgIsNontrivial) {
  // Sanity-check CFG recovery on the largest shipped program: several blocks,
  // all loops closed (every reachable block has a successor except exits).
  const AnalysisResult result = Analyze(Sha256Program());
  EXPECT_GT(result.cfg.blocks.size(), 10u);
  EXPECT_GT(result.cfg.insns.size(), 100u);
}

}  // namespace
}  // namespace komodo::analysis
