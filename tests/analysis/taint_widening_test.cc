// Widening regression for the taint fixpoint (taint.cc Interp::Run): a loop
// that shifts values through a chain of tracked store cells ascends the
// lattice one cell per pass, so before widening the iteration count grew
// with the number of tracked addresses — a long enough chain exhausted the
// fixpoint budget and tripped its convergence assert. After kWidenAfterJoins
// re-joins of a block the store is abstracted to region defaults, which
// bounds the remaining ascent by the registers alone. These tests pin both
// sides: the cascade converges fast *because* widening fires, and short
// well-behaved loops still converge without it (no precision tax).
#include <gtest/gtest.h>

#include "src/analysis/cfg.h"
#include "src/analysis/taint.h"
#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"
#include "src/os/os.h"

namespace komodo::analysis {
namespace {

using arm::Assembler;
using arm::Cond;
using namespace arm;  // register names

constexpr vaddr kBase = os::kEnclaveCodeVa;
constexpr int kCells = 24;  // > kWidenAfterJoins, so the cascade must widen

TaintResult Analyze(const std::vector<word>& program) {
  return RunTaintPass(BuildCfg(program, kBase));
}

void EmitExit(Assembler& a) {
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
}

// The pathological shape: every private-page cell starts at the same known
// constant, so the in-loop shift cell[i] = cell[i-1] is the identity until
// the bump of cell[0] kills its constant at the first join. Copying highest
// cell first means each transfer reads the *pre-iteration* neighbour, so
// unknown-ness crawls up the chain exactly one cell per fixpoint pass —
// kCells + 1 joins of the loop head before it would stabilize on its own.
void EmitCellCascadeLoop(Assembler& a) {
  a.MovImm(R10, os::kEnclaveDataVa);
  a.MovImm(R0, 1);
  for (int i = 0; i < kCells; ++i) {
    a.Str(R0, R10, 4 * i);
  }
  a.MovImm(R5, 0);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  for (int i = kCells - 1; i >= 1; --i) {
    a.Ldr(R1, R10, 4 * (i - 1));
    a.Str(R1, R10, 4 * i);
  }
  a.Ldr(R1, R10, 0);
  a.Add(R1, R1, 1);
  a.Str(R1, R10, 0);
  a.Add(R5, R5, 1);
  a.Cmp(R5, 8u);
  a.B(loop, Cond::kNe);
}

TEST(TaintWidening, CellCascadeLoopConvergesCleanViaWidening) {
  Assembler a(kBase);
  EmitCellCascadeLoop(a);
  EmitExit(a);
  const TaintResult r = Analyze(a.Finish());
  // Widening fired (kCells cells need more joins than kWidenAfterJoins
  // allows) ...
  EXPECT_GT(r.widened_joins, 0u);
  // ... and the result is still clean: the loop counter and every store
  // address are public constants; secret-*valued* private cells are fine.
  EXPECT_TRUE(r.findings.empty()) << r.findings.size() << " findings";
  for (const AbsState& s : r.block_in) {
    if (s.valid) {
      EXPECT_EQ(s.flags, Taint::kPublic);
    }
  }
}

TEST(TaintWidening, WidenedStoreNeverReportsBelowRegionDefault) {
  // Widening may only *raise* a cell toward its region default: once the
  // cascade's cells are abstracted, no fixpoint state may track a
  // private-page (secret-region) cell as public — such cells are either
  // secret or erased (absent cells read as the secret default anyway).
  Assembler a(kBase);
  EmitCellCascadeLoop(a);
  EmitExit(a);
  const TaintResult r = Analyze(a.Finish());
  ASSERT_GT(r.widened_joins, 0u);
  for (const AbsState& s : r.block_in) {
    if (!s.valid) {
      continue;
    }
    for (const auto& [addr, cell] : s.store) {
      if (addr >= os::kEnclaveDataVa && addr < os::kEnclaveDataVa + 0x1000) {
        EXPECT_EQ(cell.taint, Taint::kSecret) << "cell " << std::hex << addr;
      }
    }
  }
}

TEST(TaintWidening, ShortLoopsConvergeWithoutWidening) {
  // A small counted loop that stores and reloads through the private page:
  // stabilizes in two or three joins, so widening must not fire and the
  // public loop counter keeps the branch clean.
  Assembler a(kBase);
  a.MovImm(R10, os::kEnclaveDataVa + 0x120);
  a.MovImm(R5, 0);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.Str(R5, R10, 0);
  a.Ldr(R6, R10, 0);
  a.Add(R5, R5, 1);
  a.Cmp(R5, 4u);
  a.B(loop, Cond::kNe);
  EmitExit(a);
  const TaintResult r = Analyze(a.Finish());
  EXPECT_EQ(r.widened_joins, 0u);
  EXPECT_TRUE(r.findings.empty());
}

TEST(TaintWidening, WideningDoesNotMaskRealSecretBranches) {
  // Soundness alongside widening: the same cascade loop, but the exit also
  // branches on a value loaded from a never-written private-page cell
  // (secret by region default). Erasing widened cells must not erase the
  // secret-dependent-branch finding.
  Assembler a(kBase);
  EmitCellCascadeLoop(a);
  a.Ldr(R2, R10, 0x400);  // untouched private cell: secret
  Assembler::Label skip = a.NewLabel();
  a.Cmp(R2, 0u);
  a.B(skip, Cond::kEq);
  a.Bind(skip);
  EmitExit(a);
  const TaintResult r = Analyze(a.Finish());
  EXPECT_GT(r.widened_joins, 0u);
  bool secret_branch = false;
  for (const Finding& f : r.findings) {
    secret_branch |= f.kind == FindingKind::kSecretDependentBranch;
  }
  EXPECT_TRUE(secret_branch);
}

}  // namespace
}  // namespace komodo::analysis
