// CFG recovery unit tests: block splitting, edge kinds, reachability.
#include "src/analysis/cfg.h"

#include <gtest/gtest.h>

#include "src/analysis/privilege.h"
#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"
#include "src/os/os.h"

namespace komodo::analysis {
namespace {

using arm::Assembler;
using arm::Cond;
using namespace arm;  // register names

constexpr vaddr kBase = os::kEnclaveCodeVa;

TEST(CfgTest, StraightLineIsOneBlockEndingAtTrap) {
  Assembler a(kBase);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  const Cfg cfg = BuildCfg(a.Finish(), kBase);

  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].exit, BlockExit::kTrap);
  // The SVC is the last instruction: no return point, no successors.
  EXPECT_TRUE(cfg.blocks[0].successors.empty());
}

TEST(CfgTest, ConditionalBranchSplitsBlocksWithTakenAndFallEdges) {
  Assembler a(kBase);
  Assembler::Label target = a.NewLabel();
  a.Cmp(R0, 0u);
  a.B(target, Cond::kEq);   // block 0 terminator
  a.MovImm(R1, 1);          // block 1 (fallthrough)
  a.Bind(target);
  a.MovImm(R1, 2);          // block 2 (branch target)
  a.MovImm(R0, kSvcExit);
  a.Svc();
  const Cfg cfg = BuildCfg(a.Finish(), kBase);

  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.blocks[0].exit, BlockExit::kBranch);
  ASSERT_TRUE(cfg.blocks[0].taken.has_value());
  ASSERT_TRUE(cfg.blocks[0].fall.has_value());
  EXPECT_EQ(*cfg.blocks[0].taken, 2u);
  EXPECT_EQ(*cfg.blocks[0].fall, 1u);
  // Fallthrough block falls into the target block.
  EXPECT_EQ(cfg.blocks[1].exit, BlockExit::kFallthrough);
  EXPECT_EQ(cfg.blocks[1].successors, std::vector<size_t>{2});
}

TEST(CfgTest, BackEdgeLoop) {
  Assembler a(kBase);
  Assembler::Label loop = a.NewLabel();
  a.MovImm(R6, 0);
  a.Bind(loop);
  a.Add(R6, R6, 1u);
  a.B(loop);
  const Cfg cfg = BuildCfg(a.Finish(), kBase);

  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_EQ(cfg.blocks[1].exit, BlockExit::kBranch);
  EXPECT_EQ(cfg.blocks[1].successors, std::vector<size_t>{1});  // self-loop
}

TEST(CfgTest, UndecodableWordTerminatesWithNoSuccessors) {
  Assembler a(kBase);
  a.MovImm(R1, 0);
  a.EmitWord(0xe7f0'00f0);
  a.MovImm(R0, kSvcExit);  // unreachable
  a.Svc();
  const Cfg cfg = BuildCfg(a.Finish(), kBase);

  const size_t undef_block = cfg.BlockOf(*cfg.IndexOf(kBase + 1 * kWordSize));
  EXPECT_EQ(cfg.blocks[undef_block].exit, BlockExit::kUndefined);
  EXPECT_TRUE(cfg.blocks[undef_block].successors.empty());

  const std::vector<bool> reachable = ReachableBlocks(cfg);
  // The code after the undecodable word is a separate, unreachable block.
  const size_t after = cfg.BlockOf(*cfg.IndexOf(kBase + 2 * kWordSize));
  EXPECT_FALSE(reachable[after]);
}

TEST(CfgTest, BxIsIndirectExit) {
  Assembler a(kBase);
  a.Bx(LR);
  const Cfg cfg = BuildCfg(a.Finish(), kBase);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].exit, BlockExit::kIndirect);
  EXPECT_TRUE(cfg.blocks[0].successors.empty());
}

TEST(CfgTest, ConstantTableAfterUnconditionalBranchIsUnreachable) {
  // The sha256 program's idiom: B over an in-code constant pool.
  Assembler a(kBase);
  Assembler::Label start = a.NewLabel();
  a.B(start);
  a.EmitWord(0x428a2f98);  // table data, whatever it decodes as
  a.EmitWord(0x71374491);
  a.Bind(start);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  const Cfg cfg = BuildCfg(a.Finish(), kBase);

  const std::vector<bool> reachable = ReachableBlocks(cfg);
  const size_t table_block = cfg.BlockOf(*cfg.IndexOf(kBase + kWordSize));
  EXPECT_FALSE(reachable[table_block]);
  const size_t start_block = cfg.BlockOf(*cfg.IndexOf(kBase + 3 * kWordSize));
  EXPECT_TRUE(reachable[start_block]);
}

TEST(CfgTest, IndexOfRejectsOutsideAndMisaligned) {
  Assembler a(kBase);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  const Cfg cfg = BuildCfg(a.Finish(), kBase);
  EXPECT_FALSE(cfg.IndexOf(kBase - 4).has_value());
  EXPECT_FALSE(cfg.IndexOf(kBase + 1).has_value());
  EXPECT_FALSE(cfg.IndexOf(kBase + 100 * kWordSize).has_value());
  EXPECT_TRUE(cfg.IndexOf(kBase).has_value());
}

}  // namespace
}  // namespace komodo::analysis
