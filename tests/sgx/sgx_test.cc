// SGX baseline model: EPCM state machine (construction, execution, dynamic
// memory, paging protocol) and the published crossing latencies used in the
// §8.1 comparison.
#include "src/sgx/sgx_model.h"

#include <gtest/gtest.h>

namespace komodo::sgx {
namespace {

std::array<uint8_t, kSgxPageBytes> Filled(uint8_t b) {
  std::array<uint8_t, kSgxPageBytes> a;
  a.fill(b);
  return a;
}

class SgxTest : public ::testing::Test {
 protected:
  SgxMachine sgx{64};

  // Builds a minimal enclave: SECS at 0, TCS at 1, one REG page at 2.
  void BuildEnclave() {
    ASSERT_EQ(sgx.Ecreate(0), SgxStatus::kOk);
    ASSERT_EQ(sgx.Eadd(0, 1, 0x0000, false, false, EpcmType::kTcs, Filled(0)), SgxStatus::kOk);
    ASSERT_EQ(sgx.Eadd(0, 2, 0x1000, true, true, EpcmType::kReg, Filled(7)), SgxStatus::kOk);
    for (word off = 0; off < kSgxPageBytes; off += kEextendChunk) {
      ASSERT_EQ(sgx.Eextend(0, 2, off), SgxStatus::kOk);
    }
    ASSERT_EQ(sgx.Einit(0), SgxStatus::kOk);
  }
};

TEST_F(SgxTest, ConstructionLifecycle) {
  BuildEnclave();
  EXPECT_TRUE(sgx.Secs(0).initialised);
  EXPECT_EQ(sgx.Epcm(1).type, EpcmType::kTcs);
  EXPECT_EQ(sgx.Epcm(2).type, EpcmType::kReg);
  EXPECT_EQ(sgx.Epcm(2).secs, 0u);
}

TEST_F(SgxTest, EcreateValidation) {
  EXPECT_EQ(sgx.Ecreate(64), SgxStatus::kInvalidPage);
  ASSERT_EQ(sgx.Ecreate(0), SgxStatus::kOk);
  EXPECT_EQ(sgx.Ecreate(0), SgxStatus::kPageInUse);
}

TEST_F(SgxTest, EaddValidation) {
  ASSERT_EQ(sgx.Ecreate(0), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eadd(5, 1, 0, false, false, EpcmType::kReg, Filled(0)),
            SgxStatus::kInvalidPage);  // not a SECS
  EXPECT_EQ(sgx.Eadd(0, 0, 0, false, false, EpcmType::kReg, Filled(0)),
            SgxStatus::kPageInUse);  // the SECS itself
  EXPECT_EQ(sgx.Eadd(0, 1, 0x123, false, false, EpcmType::kReg, Filled(0)),
            SgxStatus::kInvalidLinaddr);
  EXPECT_EQ(sgx.Eadd(0, 1, 0, false, false, EpcmType::kSecs, Filled(0)),
            SgxStatus::kInvalidPage);
  ASSERT_EQ(sgx.Einit(0), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eadd(0, 1, 0, false, false, EpcmType::kReg, Filled(0)),
            SgxStatus::kAlreadyInitialised);  // v1: no EADD after EINIT
}

TEST_F(SgxTest, MrenclaveReflectsContentsAndLayout) {
  BuildEnclave();
  const crypto::Digest base = sgx.Mrenclave(0);

  SgxMachine other(64);
  ASSERT_EQ(other.Ecreate(0), SgxStatus::kOk);
  ASSERT_EQ(other.Eadd(0, 1, 0x0000, false, false, EpcmType::kTcs, Filled(0)), SgxStatus::kOk);
  ASSERT_EQ(other.Eadd(0, 2, 0x1000, true, true, EpcmType::kReg, Filled(8)),  // contents differ
            SgxStatus::kOk);
  for (word off = 0; off < kSgxPageBytes; off += kEextendChunk) {
    ASSERT_EQ(other.Eextend(0, 2, off), SgxStatus::kOk);
  }
  ASSERT_EQ(other.Einit(0), SgxStatus::kOk);
  EXPECT_NE(other.Mrenclave(0), base);
}

TEST_F(SgxTest, UnmeasuredContentNotInMrenclave) {
  // Matching the real semantics: EADD without EEXTEND leaves contents out of
  // the measurement — one of the subtle SGX pitfalls.
  SgxMachine a(64);
  SgxMachine b(64);
  for (SgxMachine* m : {&a, &b}) {
    ASSERT_EQ(m->Ecreate(0), SgxStatus::kOk);
  }
  ASSERT_EQ(a.Eadd(0, 1, 0, true, false, EpcmType::kReg, Filled(1)), SgxStatus::kOk);
  ASSERT_EQ(b.Eadd(0, 1, 0, true, false, EpcmType::kReg, Filled(2)), SgxStatus::kOk);
  ASSERT_EQ(a.Einit(0), SgxStatus::kOk);
  ASSERT_EQ(b.Einit(0), SgxStatus::kOk);
  EXPECT_EQ(a.Mrenclave(0), b.Mrenclave(0));
}

TEST_F(SgxTest, EnterExitProtocol) {
  BuildEnclave();
  EXPECT_EQ(sgx.Eenter(2), SgxStatus::kInvalidPage);  // REG is not a TCS
  ASSERT_EQ(sgx.Eenter(1), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eenter(1), SgxStatus::kEntryInProgress);
  ASSERT_EQ(sgx.Eexit(1), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eexit(1), SgxStatus::kNotEntered);
  ASSERT_EQ(sgx.Eresume(1), SgxStatus::kOk);
  ASSERT_EQ(sgx.Aex(1), SgxStatus::kOk);
}

TEST_F(SgxTest, EnterRequiresEinit) {
  ASSERT_EQ(sgx.Ecreate(0), SgxStatus::kOk);
  ASSERT_EQ(sgx.Eadd(0, 1, 0, false, false, EpcmType::kTcs, Filled(0)), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eenter(1), SgxStatus::kNotInitialised);
}

TEST_F(SgxTest, DynamicMemoryEaugEaccept) {
  BuildEnclave();
  ASSERT_EQ(sgx.Eaug(0, 5, 0x5000), SgxStatus::kOk);
  EXPECT_TRUE(sgx.Epcm(5).pending);
  // Wrong address or stronger permissions rejected.
  EXPECT_EQ(sgx.Eaccept(5, 0x6000, true, false), SgxStatus::kInvalidLinaddr);
  EXPECT_EQ(sgx.Eaccept(5, 0x5000, true, true), SgxStatus::kPermMismatch);
  ASSERT_EQ(sgx.Eaccept(5, 0x5000, true, false), SgxStatus::kOk);
  EXPECT_FALSE(sgx.Epcm(5).pending);
  EXPECT_EQ(sgx.Eaccept(5, 0x5000, true, false), SgxStatus::kNotPending);
}

TEST_F(SgxTest, EaugRequiresInitialisedEnclave) {
  ASSERT_EQ(sgx.Ecreate(0), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eaug(0, 5, 0x5000), SgxStatus::kNotInitialised);
}

TEST_F(SgxTest, EremoveOrdering) {
  BuildEnclave();
  EXPECT_EQ(sgx.Eremove(0), SgxStatus::kPageInUse);  // SECS last
  ASSERT_EQ(sgx.Eenter(1), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eremove(1), SgxStatus::kEntryInProgress);
  ASSERT_EQ(sgx.Eexit(1), SgxStatus::kOk);
  ASSERT_EQ(sgx.Eremove(1), SgxStatus::kOk);
  ASSERT_EQ(sgx.Eremove(2), SgxStatus::kOk);
  EXPECT_EQ(sgx.Eremove(0), SgxStatus::kOk);
}

TEST_F(SgxTest, PagingProtocolRequiresEtrackEpoch) {
  // The EBLOCK → ETRACK → EWB dance (§2's TLB-shootdown validation).
  BuildEnclave();
  std::vector<uint8_t> blob;
  EXPECT_EQ(sgx.Ewb(2, &blob), SgxStatus::kNotBlocked);
  ASSERT_EQ(sgx.Eblock(2), SgxStatus::kOk);
  EXPECT_EQ(sgx.Ewb(2, &blob), SgxStatus::kNotTracked);  // no epoch elapsed
  ASSERT_EQ(sgx.Etrack(0), SgxStatus::kOk);
  ASSERT_EQ(sgx.Ewb(2, &blob), SgxStatus::kOk);
  EXPECT_FALSE(sgx.Epcm(2).valid);

  // Reload and verify integrity checking.
  ASSERT_EQ(sgx.Eldu(0, 2, 0x1000, blob), SgxStatus::kOk);
  EXPECT_TRUE(sgx.Epcm(2).valid);
  std::vector<uint8_t> tampered = blob;
  ASSERT_EQ(sgx.Eblock(2), SgxStatus::kOk);
  ASSERT_EQ(sgx.Etrack(0), SgxStatus::kOk);
  ASSERT_EQ(sgx.Ewb(2, &blob), SgxStatus::kOk);
  tampered[0] ^= 1;
  EXPECT_EQ(sgx.Eldu(0, 2, 0x1000, tampered), SgxStatus::kInvalidLinaddr);
}

TEST_F(SgxTest, EtrackBlockedWhileThreadsInside) {
  BuildEnclave();
  ASSERT_EQ(sgx.Eenter(1), SgxStatus::kOk);
  EXPECT_EQ(sgx.Etrack(0), SgxStatus::kEntryInProgress);
  ASSERT_EQ(sgx.Eexit(1), SgxStatus::kOk);
  EXPECT_EQ(sgx.Etrack(0), SgxStatus::kOk);
}

TEST_F(SgxTest, CrossingCostsMatchPublishedNumbers) {
  BuildEnclave();
  sgx.ResetCycles();
  ASSERT_EQ(sgx.Eenter(1), SgxStatus::kOk);
  ASSERT_EQ(sgx.Eexit(1), SgxStatus::kOk);
  // §8.1 quotes ~3,800 + ~3,300 = ~7,100 cycles for a full crossing.
  EXPECT_EQ(sgx.cycles(), 7100u);
}

}  // namespace
}  // namespace komodo::sgx
