// Symmetry canonicalization for the model checker: the canonical key must be
// a true orbit invariant (same key for every page-number relabeling of a
// state, different keys for genuinely different states) and the quotient must
// respect the PageDb validity invariants it is used to cache.
#include "src/verify/canon.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/spec/invariants.h"
#include "src/verify/explore.h"

namespace komodo::verify {
namespace {

using spec::AddrspacePage;
using spec::DataPage;
using spec::DispatcherPage;
using spec::L1PTablePage;
using spec::L2PTablePage;
using spec::PageDb;
using spec::PageDbEntry;
using spec::SecureMapping;

// A 6-page world with one full enclave (as=0, l1pt=1, l2pt=2, data=3,
// disp=4) and one free page — every reference-carrying page type at once.
PageDb EnclaveDb() {
  PageDb d(6);
  AddrspacePage as;
  as.l1pt_page = 1;
  as.refcount = 4;
  as.state = AddrspaceState::kFinal;
  d[0] = PageDbEntry{0, as};
  L1PTablePage l1;
  l1.l2_tables[0] = 2;
  d[1] = PageDbEntry{0, l1};
  L2PTablePage l2;
  l2.entries[8] = SecureMapping{3, true, false};
  d[2] = PageDbEntry{0, l2};
  DataPage data;
  data.contents[0] = 0x1234;
  d[3] = PageDbEntry{0, data};
  d[4] = PageDbEntry{0, DispatcherPage{}};
  return d;
}

// All permutations of 0..n-1.
std::vector<Perm> AllPerms(PageNr n) {
  Perm p(n);
  std::iota(p.begin(), p.end(), 0);
  std::vector<Perm> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

TEST(CanonTest, CanonicalizeIsIdempotent) {
  const PageDb d = EnclaveDb();
  const PageDb c = Canonicalize(d);
  EXPECT_EQ(CanonicalKey(d), CanonicalKey(c));
  EXPECT_TRUE(Canonicalize(c) == c);
  EXPECT_EQ(Serialize(Canonicalize(c)), Serialize(c));
}

TEST(CanonTest, KeyIsInvariantUnderEveryPermutation) {
  const PageDb d = EnclaveDb();
  const std::string key = CanonicalKey(d);
  for (const Perm& p : AllPerms(d.NPages())) {
    EXPECT_EQ(CanonicalKey(ApplyPermutation(d, p)), key);
  }
}

TEST(CanonTest, DistinctStatesGetDistinctKeys) {
  const PageDb d = EnclaveDb();
  PageDb stopped = d;
  stopped[0].As<AddrspacePage>().state = AddrspaceState::kStopped;
  EXPECT_NE(CanonicalKey(d), CanonicalKey(stopped));

  PageDb wrote = d;
  wrote[3].As<DataPage>().contents[7] = 0xdead;
  EXPECT_NE(CanonicalKey(d), CanonicalKey(wrote));
}

TEST(CanonTest, PermutationPreservesInvariantVerdict) {
  const PageDb d = EnclaveDb();
  ASSERT_TRUE(spec::PageDbViolations(d).empty());
  for (const Perm& p : AllPerms(d.NPages())) {
    const PageDb permuted = ApplyPermutation(d, p);
    EXPECT_TRUE(spec::PageDbViolations(permuted).empty())
        << spec::PageDbViolations(permuted).front();
  }

  PageDb bad = d;
  bad[0].As<AddrspacePage>().refcount = 1;  // wrong: owns 4 pages
  for (const Perm& p : AllPerms(d.NPages())) {
    EXPECT_FALSE(spec::PageDbViolations(ApplyPermutation(bad, p)).empty());
  }
}

TEST(CanonTest, MeasurementIsQuotientedOut) {
  // The serialization deliberately excludes the addrspace measurement (no
  // guard or invariant reads it), so two states differing only there — e.g.
  // Stopped-from-Init vs Stopped-from-Final — collapse into one.
  const PageDb d = EnclaveDb();
  PageDb measured = d;
  measured[0].As<AddrspacePage>().measurement[0] = 0xfeed;
  EXPECT_FALSE(measured == d);  // full comparison still distinguishes them
  EXPECT_EQ(CanonicalKey(measured), CanonicalKey(d));
}

// The mini world's closure was derived by hand: boot [Free, Free], then
// InitAddrspace is the only call that can make progress, giving
//   S1 as(Init, rc=1) + l1pt    S2 as(Final) + l1pt   (Finalise)
//   S3 as(Stopped) + l1pt       (Stop)
//   S4 as(Stopped, rc=0) + Free (Remove l1pt)
// and Remove(as) from S4 closes the cycle back to boot. Five states; a sixth
// would mean either canonicalization or a spec guard regressed.
TEST(CanonTest, MiniWorldClosesAtFiveStates) {
  WorldSpec spec;
  spec.pages = 2;
  spec.max_addrspaces = 1;
  const ExploreResult r = Explore(spec);
  ASSERT_TRUE(r.harness_error.empty()) << r.harness_error;
  ASSERT_TRUE(r.ok) << (r.failure.has_value() ? r.failure->detail : "");
  EXPECT_EQ(r.states, 5u);
  EXPECT_EQ(r.clipped, 0u);
}

TEST(CanonTest, ExplorationIsDeterministic) {
  WorldSpec spec;
  spec.pages = 2;
  spec.max_addrspaces = 1;
  const ExploreResult a = Explore(spec);
  const ExploreResult b = Explore(spec);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.closure_hash, b.closure_hash);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_FALSE(a.closure_hash.empty());
}

}  // namespace
}  // namespace komodo::verify
