// End-to-end properties of the small-world exploration: the default world
// closes with every obligation holding, the registry's declared error sets
// are exactly the observable ones (both directions), and an injected monitor
// bug is found with a counterexample the fuzzer replays.
#include <gtest/gtest.h>

#include "src/core/call_table.h"
#include "src/fuzz/oracles.h"
#include "src/verify/explore.h"

namespace komodo::verify {
namespace {

// The small-world closure takes a few seconds, so every test that only reads
// the clean run shares one exploration.
const ExploreResult& SmallWorld() {
  static const ExploreResult r = Explore(WorldSpec{});
  return r;
}

TEST(VerifyWorldTest, SmallWorldClosesWithAllObligations) {
  const ExploreResult& r = SmallWorld();
  ASSERT_TRUE(r.harness_error.empty()) << r.harness_error;
  ASSERT_TRUE(r.ok) << (r.failure.has_value() ? r.failure->detail : "");
  EXPECT_FALSE(r.failure.has_value());
  EXPECT_GT(r.states, 100u);  // a collapsed closure means canon over-merges
  EXPECT_FALSE(r.closure_hash.empty());
}

// The registry cross-check, both directions. The explorer already fails the
// run when an observed error is undeclared; this test demands the converse
// too — every declared error is actually reachable in the small world, so a
// stale `errors` column in call_list.inc cannot survive.
TEST(VerifyWorldTest, DeclaredErrorSetsAreExactlyTheObservableOnes) {
  const ExploreResult& r = SmallWorld();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.calls.size(), static_cast<size_t>(kNumSmcCalls + kNumSvcCalls));
  for (const CallStats& c : r.calls) {
    SCOPED_TRACE(std::string(c.is_svc ? "svc " : "smc ") + c.name);
    EXPECT_GT(c.transitions, 0u);
    EXPECT_EQ(c.errors, c.declared);
  }
}

TEST(VerifyWorldTest, InjectedBugIsFoundAndWitnessReplays) {
  WorldSpec spec;
  spec.inject = "initaddrspace-alias";
  const ExploreResult r = Explore(spec);
  ASSERT_TRUE(r.harness_error.empty()) << r.harness_error;
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.failure.has_value());
  // The alias bug fires on the very first InitAddrspace from boot.
  EXPECT_EQ(r.failure->depth, 1u);
  EXPECT_TRUE(r.failure->exact_replay);

  // The counterexample is a komodo-fuzz trace: it must fail under its
  // injection and pass against the clean monitor (same contract as the
  // committed corpus).
  const fuzz::Verdict with = fuzz::RunTrace(r.failure->trace, /*apply_inject=*/true);
  EXPECT_TRUE(with.failed) << "witness does not reproduce under the injection";
  const fuzz::Verdict without = fuzz::RunTrace(r.failure->trace, /*apply_inject=*/false);
  EXPECT_FALSE(without.failed) << "clean monitor fails the witness: " << without.detail;
}

TEST(VerifyWorldTest, UnknownInjectIsAHarnessError) {
  WorldSpec spec;
  spec.inject = "no-such-fault";
  const ExploreResult r = Explore(spec);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.harness_error.empty());
}

}  // namespace
}  // namespace komodo::verify
