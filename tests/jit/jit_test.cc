// Block-JIT unit suite (DESIGN.md §13): the A32→x64 translator must be
// architecturally invisible behind RunUntilException. The cases here are the
// ones bisimulation sweeps reach only by luck — block invalidation through
// the page-generation tags (cross-block and within the executing block),
// the interpreter fallback boundary (traps, budget exhaustion, unaligned
// fetch), the KOMODO_JIT escape hatch, and the stats surface the bench and
// obs layers report. Everything that needs translated code to actually run
// is skipped on hosts without JIT support.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <vector>

#include "src/arm/assembler.h"
#include "src/arm/execute.h"
#include "src/arm/machine.h"
#include "src/fuzz/oracles.h"
#include "src/jit/jit.h"

namespace komodo::arm {
namespace {

constexpr vaddr kCodeBase = 0x2000;
constexpr vaddr kScratchBase = 0x4000;

// Flat normal-world machine (translation is identity), the simplest host for
// straight-line user code.
MachineState MakeMachine(const std::vector<word>& code, bool jitted) {
  MachineState m(8);
  m.interp.set_enabled(true);
  m.jit.set_enabled(jitted);
  m.cpsr.mode = Mode::kMonitor;
  m.SetScrNs(true);
  m.cpsr.mode = Mode::kSupervisor;
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kCodeBase + static_cast<word>(i) * kWordSize, code[i]);
  }
  m.pc = kCodeBase;
  return m;
}

// Runs the same program to its terminating exception with the JIT on and
// off, and requires bit-identical final state (cycles included) plus the
// same exception.
void ExpectBisimulatesToSvc(const std::vector<word>& code, uint64_t max_steps) {
  MachineState jm = MakeMachine(code, /*jitted=*/true);
  MachineState im = MakeMachine(code, /*jitted=*/false);
  const std::optional<Exception> je = RunUntilException(jm, max_steps);
  const std::optional<Exception> ie = RunUntilException(im, max_steps);
  EXPECT_EQ(je, ie);
  for (const std::string& diff : fuzz::MachineDiff(jm, im)) {
    ADD_FAILURE() << diff;
  }
}

TEST(JitState, EnvVarGatesDefault) {
  // JitState reads KOMODO_JIT at construction, like KOMODO_INTERP_CACHE.
  ASSERT_EQ(setenv("KOMODO_JIT", "off", 1), 0);
  {
    MachineState m(8);
    EXPECT_FALSE(m.jit.enabled());
  }
  ASSERT_EQ(unsetenv("KOMODO_JIT"), 0);
  {
    MachineState m(8);
    EXPECT_EQ(m.jit.enabled(), jit::Available());
  }
}

TEST(JitState, CopiesCarryFlagButColdCaches) {
  MachineState m(8);
  m.jit.set_enabled(jit::Available());
  MachineState copy = m;
  EXPECT_EQ(copy.jit.enabled(), m.jit.enabled());
  EXPECT_EQ(copy.jit.stats().blocks_translated, 0u);
}

TEST(JitState, DisabledMachineNeverJits) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 7);
  a.Add(R0, R0, 35);
  a.Svc();
  MachineState m = MakeMachine(a.Finish(), /*jitted=*/false);
  EXPECT_EQ(RunUntilException(m, 100), Exception::kSvc);
  EXPECT_EQ(m.r[0], 42u);
  EXPECT_EQ(m.jit.stats().jit_steps, 0u);
  EXPECT_EQ(m.jit.stats().blocks_translated, 0u);
}

TEST(JitRun, StraightLineBlockRunsJitted) {
  if (!jit::Available()) {
    GTEST_SKIP() << "no JIT on this host";
  }
  Assembler a(kCodeBase);
  a.MovImm(R0, 1);
  a.MovImm(R1, 2);
  a.Add(R2, R0, R1);
  a.Lsl(R3, R2, 4);
  a.Svc();
  MachineState m = MakeMachine(a.Finish(), /*jitted=*/true);
  EXPECT_EQ(RunUntilException(m, 100), Exception::kSvc);
  EXPECT_EQ(m.r[2], 3u);
  EXPECT_EQ(m.r[3], 48u);
  // The four data-processing insns form one block; the SVC terminates it and
  // falls back to the interpreter.
  EXPECT_EQ(m.jit.stats().blocks_translated, 1u);
  EXPECT_EQ(m.jit.stats().jit_steps, 4u);
  EXPECT_GE(m.jit.stats().fallback_steps, 1u);
}

TEST(JitRun, LoopReentersCachedBlock) {
  if (!jit::Available()) {
    GTEST_SKIP() << "no JIT on this host";
  }
  Assembler a(kCodeBase);
  a.MovImm(R0, 0);
  a.MovImm(R1, 100);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.Add(R0, R0, 3);
  a.Subs(R1, R1, 1);
  a.B(loop, Cond::kNe);
  a.Svc();
  MachineState m = MakeMachine(a.Finish(), /*jitted=*/true);
  EXPECT_EQ(RunUntilException(m, 1000), Exception::kSvc);
  EXPECT_EQ(m.r[0], 300u);
  // The loop body translates once and is re-entered every iteration.
  EXPECT_LE(m.jit.stats().blocks_translated, 3u);
  EXPECT_GT(m.jit.stats().block_hits, 90u);
  EXPECT_EQ(m.jit.stats().block_invalidations, 0u);
}

TEST(JitRun, BudgetExhaustionRetiresExactStepCount) {
  if (!jit::Available()) {
    GTEST_SKIP() << "no JIT on this host";
  }
  // An infinite loop: RunUntilException must retire exactly max_steps even
  // though the loop body's block is longer than the final budget remnant.
  Assembler a(kCodeBase);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.Add(R0, R0, 1);
  a.Add(R1, R1, 2);
  a.Add(R2, R2, 3);
  a.B(loop);
  MachineState m = MakeMachine(a.Finish(), /*jitted=*/true);
  EXPECT_EQ(RunUntilException(m, 107), std::nullopt);
  EXPECT_EQ(m.steps_retired, 107u);
  // The tail that didn't fit a whole block ran interpreted.
  EXPECT_GT(m.jit.stats().fallback_steps, 0u);
  EXPECT_GT(m.jit.stats().jit_steps, 90u);
}

TEST(JitRun, StoreIntoOwnBlockRestartsTranslation) {
  if (!jit::Available()) {
    GTEST_SKIP() << "no JIT on this host";
  }
  // The store rewrites an instruction LATER in the same basic block (ahead of
  // the execution point), so the already-running block must stop at the store
  // and the rewritten instruction must be re-translated, not replayed stale:
  //   str  r4, [r3]        ; overwrite the MOV below with ADD R0,R0,#2
  //   mov  r0, #1          ; <- target; becomes ADD R0,R0,#2
  //   svc  #0
  Instruction add2;
  add2.op = Op::kAdd;
  add2.rd = R0;
  add2.rn = R0;
  add2.op2 = Operand2::Imm(2);

  vaddr target_addr = 0;
  std::vector<word> code;
  for (int pass = 0; pass < 2; ++pass) {
    Assembler a(kCodeBase);
    a.MovImm(R0, 40);
    a.MovImm(R4, Encode(add2));
    a.MovImm(R3, target_addr);
    a.Str(R4, R3, 0);
    const vaddr here = a.CurrentAddr();
    a.MovImm(R0, 1);  // overwritten before it executes
    a.Svc();
    code = a.Finish();
    target_addr = here;
  }
  MachineState jm = MakeMachine(code, /*jitted=*/true);
  MachineState im = MakeMachine(code, /*jitted=*/false);
  EXPECT_EQ(RunUntilException(jm, 100), Exception::kSvc);
  EXPECT_EQ(RunUntilException(im, 100), Exception::kSvc);
  EXPECT_EQ(im.r[0], 42u) << "interpreter reference disagrees with intent";
  EXPECT_EQ(jm.r[0], 42u) << "stale block replayed the overwritten MOV";
  for (const std::string& diff : fuzz::MachineDiff(jm, im)) {
    ADD_FAILURE() << diff;
  }
}

TEST(JitRun, CrossBlockStoreInvalidatesThroughPageGen) {
  if (!jit::Available()) {
    GTEST_SKIP() << "no JIT on this host";
  }
  // A loop whose body is rewritten from a PREVIOUS iteration's store: the
  // block was translated on lap one, the store bumps the code page's
  // generation, and the next lookup must notice and retranslate.
  Instruction add2;
  add2.op = Op::kAdd;
  add2.rd = R0;
  add2.rn = R0;
  add2.op2 = Operand2::Imm(2);

  vaddr target_addr = 0;
  std::vector<word> code;
  for (int pass = 0; pass < 2; ++pass) {
    Assembler a(kCodeBase);
    a.MovImm(R0, 0);
    a.MovImm(R2, 0);
    a.MovImm(R4, Encode(add2));
    a.MovImm(R3, target_addr);
    Assembler::Label loop = a.NewLabel();
    a.Bind(loop);
    const vaddr here = a.CurrentAddr();
    a.Add(R0, R0, 1);  // rewritten to ADD R0,R0,#2 after lap one
    a.Str(R4, R3, 0);
    a.Add(R2, R2, 1);
    a.Cmp(R2, 3);
    a.B(loop, Cond::kNe);
    a.Svc();
    code = a.Finish();
    target_addr = here;
  }
  MachineState jm = MakeMachine(code, /*jitted=*/true);
  MachineState im = MakeMachine(code, /*jitted=*/false);
  EXPECT_EQ(RunUntilException(jm, 200), Exception::kSvc);
  EXPECT_EQ(RunUntilException(im, 200), Exception::kSvc);
  EXPECT_EQ(im.r[0], 5u);
  EXPECT_EQ(jm.r[0], 5u) << "stale block survived a code-page generation bump";
  EXPECT_GT(jm.jit.stats().block_invalidations, 0u);
  for (const std::string& diff : fuzz::MachineDiff(jm, im)) {
    ADD_FAILURE() << diff;
  }
}

TEST(JitRun, NonJitableHeadFallsBackAndCachesVerdict) {
  if (!jit::Available()) {
    GTEST_SKIP() << "no JIT on this host";
  }
  // MRS heads the hot loop: the block lookup must decline (kInterpretOne)
  // without translating anything, every iteration.
  Assembler a(kCodeBase);
  a.MovImm(R0, 0);
  a.MovImm(R1, 20);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.MrsCpsr(R5);
  a.Add(R0, R0, 1);
  a.Subs(R1, R1, 1);
  a.B(loop, Cond::kNe);
  a.Svc();
  MachineState m = MakeMachine(a.Finish(), /*jitted=*/true);
  EXPECT_EQ(RunUntilException(m, 500), Exception::kSvc);
  EXPECT_EQ(m.r[0], 20u);
  // The MRS step interprets each lap; the rest of the body still jits.
  EXPECT_GE(m.jit.stats().fallback_steps, 20u);
  EXPECT_GT(m.jit.stats().jit_steps, 0u);
}

TEST(JitRun, ExceptionInMidBlockChargesExactly) {
  if (!jit::Available()) {
    GTEST_SKIP() << "no JIT on this host";
  }
  // The third instruction data-aborts (unmapped secure address in the normal
  // world): the block must retire exactly three steps, charge the two ALU
  // steps plus the load's pre-fault charge, and take the same exception at
  // the same return address as the interpreter.
  Assembler a(kCodeBase);
  a.MovImm(R0, 1);
  a.MovImm(R3, kSecurePagesBase);  // TrustZone filter faults NS access
  a.Ldr(R2, R3, 0);
  a.Svc();
  const std::vector<word> code = a.Finish();
  MachineState jm = MakeMachine(code, /*jitted=*/true);
  MachineState im = MakeMachine(code, /*jitted=*/false);
  EXPECT_EQ(RunUntilException(jm, 100), Exception::kDataAbort);
  EXPECT_EQ(RunUntilException(im, 100), Exception::kDataAbort);
  EXPECT_EQ(jm.steps_retired, im.steps_retired);
  for (const std::string& diff : fuzz::MachineDiff(jm, im)) {
    ADD_FAILURE() << diff;
  }
}

TEST(JitRun, LdmStmRoundTripBisimulates) {
  Assembler a(kCodeBase);
  a.MovImm(R10, kScratchBase);
  a.MovImm(R0, 0x11);
  a.MovImm(R1, 0x22);
  a.MovImm(R2, 0x33);
  a.Stmia(R10, 0b0000000000000111, /*writeback=*/true);  // r0-r2
  a.MovImm(R10, kScratchBase);
  a.Ldmia(R10, 0b0000000011110000, /*writeback=*/false);  // r4-r7 (r7 reads junk)
  a.Svc();
  ExpectBisimulatesToSvc(a.Finish(), 100);
}

TEST(JitRun, ByteOpsAndShiftedOperandsBisimulate) {
  Assembler a(kCodeBase);
  a.MovImm(R10, kScratchBase);
  a.MovImm(R0, 0xab);
  a.Strb(R0, R10, 2);
  a.Ldrb(R1, R10, 2);
  a.Lsl(R2, R1, 24);
  a.Asr(R3, R2, 31);
  a.Ror(R4, R1, 4);
  a.AddShifted(R5, R1, R2, ShiftKind::kLsr, 8);
  a.Adds(R6, R2, R2);  // carry out
  a.Adc(R7, R0, R1);   // carry in
  a.Svc();
  ExpectBisimulatesToSvc(a.Finish(), 100);
}

TEST(JitRun, ConditionalAndBranchLinkBisimulate) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 5);
  a.Cmp(R0, 5);
  a.MovImm(R1, 1, Cond::kEq);
  a.MovImm(R2, 2, Cond::kNe);  // cond-fails inside the block
  Assembler::Label sub = a.NewLabel();
  a.Bl(sub);
  a.Svc();
  a.Bind(sub);
  a.Add(R3, R0, R1);
  a.Bx(LR);
  ExpectBisimulatesToSvc(a.Finish(), 100);
}

}  // namespace
}  // namespace komodo::arm
