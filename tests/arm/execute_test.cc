// Interpreter semantics: ALU behaviour and flags, memory access, branches,
// traps, interrupts and exception plumbing. Programs run flat-mapped in the
// normal world (no page tables) unless stated.
#include "src/arm/execute.h"

#include <gtest/gtest.h>

#include "src/arm/assembler.h"

namespace komodo::arm {
namespace {

constexpr vaddr kCodeBase = 0x2000;

// Loads a program at kCodeBase in insecure RAM and prepares supervisor-mode
// normal-world execution.
MachineState MakeMachine(const std::vector<word>& code) {
  MachineState m(16);
  m.cpsr.mode = Mode::kMonitor;
  m.SetScrNs(true);
  m.cpsr.mode = Mode::kSupervisor;
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kCodeBase + static_cast<word>(i) * kWordSize, code[i]);
  }
  m.pc = kCodeBase;
  m.vbar_secure = kDirectMapVbase + kMonitorBase + 0x100;
  m.vbar_monitor = kDirectMapVbase + kMonitorBase + 0x200;
  return m;
}

// Runs until the first SVC; returns machine for inspection.
MachineState RunToSvc(const std::vector<word>& code) {
  MachineState m = MakeMachine(code);
  const std::optional<Exception> exc = RunUntilException(m, 10000);
  EXPECT_EQ(exc, Exception::kSvc);
  return m;
}

TEST(ExecuteTest, MovAddSubImmediates) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 41);
  a.Add(R0, R0, 1u);
  a.MovImm(R1, 100);
  a.Sub(R2, R1, 58u);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[0], 42u);
  EXPECT_EQ(m.r[2], 42u);
}

TEST(ExecuteTest, WideImmediatesViaMovwMovt) {
  Assembler a(kCodeBase);
  a.MovImm(R3, 0xdeadbeef);
  a.MovImm(R4, 0x12345678);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[3], 0xdeadbeefu);
  EXPECT_EQ(m.r[4], 0x12345678u);
}

TEST(ExecuteTest, MvnEncodingForInvertedImmediates) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0xffffffff);
  a.MovImm(R1, 0xfffffff0);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[0], 0xffffffffu);
  EXPECT_EQ(m.r[1], 0xfffffff0u);
}

TEST(ExecuteTest, LogicalAndShiftOps) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0xf0);
  a.MovImm(R1, 0x0f);
  a.Orr(R2, R0, R1);   // 0xff
  a.And(R3, R2, 0x3c); // 0x3c
  a.Eor(R4, R2, R3);   // 0xc3
  a.Bic(R5, R2, 0x0f); // 0xf0
  a.Lsl(R6, R2, 8);    // 0xff00
  a.Lsr(R7, R6, 4);    // 0x0ff0
  a.Asr(R8, R6, 4);    // 0x0ff0 (positive)
  a.Ror(R9, R2, 8);    // 0xff000000
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[2], 0xffu);
  EXPECT_EQ(m.r[3], 0x3cu);
  EXPECT_EQ(m.r[4], 0xc3u);
  EXPECT_EQ(m.r[5], 0xf0u);
  EXPECT_EQ(m.r[6], 0xff00u);
  EXPECT_EQ(m.r[7], 0x0ff0u);
  EXPECT_EQ(m.r[8], 0x0ff0u);
  EXPECT_EQ(m.r[9], 0xff000000u);
}

TEST(ExecuteTest, AsrSignExtends) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x80000000);
  a.Asr(R1, R0, 4);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[1], 0xf8000000u);
}

TEST(ExecuteTest, MultiplyAndFlags) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 7);
  a.MovImm(R1, 6);
  a.Mul(R2, R0, R1);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[2], 42u);
}

TEST(ExecuteTest, CarryChainWith64BitAdd) {
  // 0xffffffff + 1 with carry into the high word.
  Assembler a(kCodeBase);
  a.MovImm(R0, 0xffffffff);  // low a
  a.MovImm(R1, 0);           // high a
  a.MovImm(R2, 1);           // low b
  a.MovImm(R3, 0);           // high b
  a.Adds(R4, R0, R2);
  a.Adc(R5, R1, R3);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[4], 0u);
  EXPECT_EQ(m.r[5], 1u);
}

TEST(ExecuteTest, CmpSetsFlagsAndConditionalExecution) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 5);
  a.Cmp(R0, 5u);
  a.MovImm(R1, 1, Cond::kEq);
  a.MovImm(R2, 1, Cond::kNe);  // skipped
  a.Cmp(R0, 9u);
  a.MovImm(R3, 1, Cond::kLt);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[1], 1u);
  EXPECT_EQ(m.r[2], 0u);
  EXPECT_EQ(m.r[3], 1u);
}

TEST(ExecuteTest, SubsOverflowAndNegative) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0);
  a.Subs(R1, R0, 1u);  // 0 - 1 = -1: N set, C clear (borrow)
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[1], 0xffffffffu);
  EXPECT_TRUE(m.cpsr.n);
  EXPECT_FALSE(m.cpsr.c);
  EXPECT_FALSE(m.cpsr.v);
}

TEST(ExecuteTest, LoadStoreWordAndByte) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  a.MovImm(R1, 0xcafe1234);
  a.Str(R1, R0, 0);
  a.Ldr(R2, R0, 0);
  a.Ldrb(R3, R0, 1);   // 0x12.. little-endian byte 1 = 0x12
  a.MovImm(R4, 0x99);
  a.Strb(R4, R0, 2);
  a.Ldr(R5, R0, 0);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[2], 0xcafe1234u);
  EXPECT_EQ(m.r[3], 0x12u);
  EXPECT_EQ(m.r[5], 0xca991234u);
}

TEST(ExecuteTest, LoadStoreRegisterOffset) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  a.MovImm(R1, 8);
  a.MovImm(R2, 77);
  a.StrReg(R2, R0, R1);
  a.LdrReg(R3, R0, R1);
  a.Ldr(R4, R0, 8);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[3], 77u);
  EXPECT_EQ(m.r[4], 77u);
}

TEST(ExecuteTest, BranchLoopAndBl) {
  Assembler a(kCodeBase);
  Assembler::Label loop = a.NewLabel();
  a.MovImm(R0, 0);
  a.MovImm(R1, 10);
  a.Bind(loop);
  a.Add(R0, R0, 3u);
  a.Subs(R1, R1, 1u);
  a.B(loop, Cond::kNe);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[0], 30u);
}

TEST(ExecuteTest, BlSetsLinkRegisterAndBxReturns) {
  Assembler a(kCodeBase);
  Assembler::Label func = a.NewLabel();
  Assembler::Label done = a.NewLabel();
  a.MovImm(R0, 1);
  a.Bl(func);
  a.Add(R0, R0, 100u);  // executed after return
  a.B(done);
  a.Bind(func);
  a.Add(R0, R0, 10u);
  a.Bx(LR);
  a.Bind(done);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[0], 111u);
}

TEST(ExecuteTest, UnalignedWordAccessFaults) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3001);
  a.Ldr(R1, R0, 0);
  a.Svc();
  MachineState m = MakeMachine(a.Finish());
  EXPECT_EQ(RunUntilException(m, 100), Exception::kDataAbort);
  EXPECT_EQ(m.cpsr.mode, Mode::kAbort);
}

TEST(ExecuteTest, NormalWorldCannotTouchSecureMemory) {
  // The TrustZone filter turns normal-world accesses to the monitor image or
  // secure pages into aborts (§3.2).
  for (word target : {kMonitorBase, kSecurePagesBase}) {
    Assembler a(kCodeBase);
    a.MovImm(R0, target);
    a.Ldr(R1, R0, 0);
    a.Svc();
    MachineState m = MakeMachine(a.Finish());
    EXPECT_EQ(RunUntilException(m, 100), Exception::kDataAbort) << std::hex << target;
  }
}

TEST(ExecuteTest, UndefinedInstructionTrapsToUndMode) {
  MachineState m = MakeMachine({0xe7f000f0});
  EXPECT_EQ(RunUntilException(m, 10), Exception::kUndefined);
  EXPECT_EQ(m.cpsr.mode, Mode::kUndefined);
  EXPECT_EQ(m.lr_banked[static_cast<size_t>(Mode::kUndefined)], kCodeBase + 4);
}

TEST(ExecuteTest, SvcBanksReturnStateAndMasksIrq) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 7);
  a.Svc(42);
  MachineState m = MakeMachine(a.Finish());
  m.cpsr.irq_masked = false;
  EXPECT_EQ(RunUntilException(m, 10), Exception::kSvc);
  EXPECT_EQ(m.cpsr.mode, Mode::kSupervisor);
  EXPECT_TRUE(m.cpsr.irq_masked);
  // lr_svc points after the svc; spsr_svc holds the pre-trap cpsr.
  EXPECT_EQ(m.lr_banked[static_cast<size_t>(Mode::kSupervisor)], kCodeBase + 8);
  EXPECT_FALSE(m.Spsr().irq_masked);
}

TEST(ExecuteTest, SmcFromSupervisorEntersMonitorMode) {
  Assembler a(kCodeBase);
  a.Smc();
  MachineState m = MakeMachine(a.Finish());
  EXPECT_EQ(RunUntilException(m, 10), Exception::kSmc);
  EXPECT_EQ(m.cpsr.mode, Mode::kMonitor);
  EXPECT_EQ(m.CurrentWorld(), World::kSecure);  // monitor mode is always secure
  EXPECT_TRUE(m.cpsr.fiq_masked);
}

TEST(ExecuteTest, PendingIrqTakenWhenUnmasked) {
  Assembler a(kCodeBase);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.Add(R0, R0, 1u);
  a.B(loop);
  MachineState m = MakeMachine(a.Finish());
  m.cpsr.irq_masked = false;
  // Let it spin, then inject.
  EXPECT_EQ(RunUntilException(m, 100), std::nullopt);
  m.pending_irq = true;
  EXPECT_EQ(RunUntilException(m, 10), Exception::kIrq);
  EXPECT_EQ(m.cpsr.mode, Mode::kIrq);
  EXPECT_FALSE(m.pending_irq);
}

TEST(ExecuteTest, MaskedIrqStaysPending) {
  Assembler a(kCodeBase);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.B(loop);
  MachineState m = MakeMachine(a.Finish());
  m.cpsr.irq_masked = true;
  m.pending_irq = true;
  EXPECT_EQ(RunUntilException(m, 100), std::nullopt);
  EXPECT_TRUE(m.pending_irq);
}

TEST(ExecuteTest, FiqHasPriorityOverIrq) {
  Assembler a(kCodeBase);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.B(loop);
  MachineState m = MakeMachine(a.Finish());
  m.cpsr.irq_masked = false;
  m.cpsr.fiq_masked = false;
  m.pending_irq = true;
  m.pending_fiq = true;
  EXPECT_EQ(RunUntilException(m, 10), Exception::kFiq);
}

TEST(ExecuteTest, MovsPcLrReturnsFromException) {
  // svc, then the "handler" (we fake it) returns with MOVS PC, LR.
  Assembler a(kCodeBase);
  a.MovImm(R0, 1);
  a.Svc();
  a.Add(R0, R0, 1u);  // must execute after the return
  a.Svc(99);
  MachineState m = MakeMachine(a.Finish());
  ASSERT_EQ(RunUntilException(m, 10), Exception::kSvc);
  // Handler: return to lr_svc via exception return.
  m.ExceptionReturn(m.lr_banked[static_cast<size_t>(Mode::kSupervisor)]);
  EXPECT_EQ(m.cpsr.mode, Mode::kSupervisor);  // spsr restored the OS mode
  ASSERT_EQ(RunUntilException(m, 10), Exception::kSvc);
  EXPECT_EQ(m.r[0], 2u);
}

TEST(ExecuteTest, CyclesAccumulate) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 1);
  a.Add(R0, R0, 1u);
  a.Svc();
  MachineState m = MakeMachine(a.Finish());
  const uint64_t before = m.cycles.total();
  RunUntilException(m, 10);
  EXPECT_GT(m.cycles.total(), before);
}

TEST(ExecuteTest, PushPopRoundTrip) {
  Assembler a(kCodeBase);
  a.MovImm(SP, 0x4000);
  a.MovImm(R4, 11);
  a.MovImm(R5, 22);
  a.MovImm(R6, 33);
  a.Push((1u << R4) | (1u << R5) | (1u << R6));
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.MovImm(R6, 0);
  a.Pop((1u << R4) | (1u << R5) | (1u << R6));
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[4], 11u);
  EXPECT_EQ(m.r[5], 22u);
  EXPECT_EQ(m.r[6], 33u);
  EXPECT_EQ(m.ReadReg(SP), 0x4000u);  // balanced
}

TEST(ExecuteTest, PushStoresDescendingAscendingRegisterOrder) {
  Assembler a(kCodeBase);
  a.MovImm(SP, 0x4000);
  a.MovImm(R1, 0x111);
  a.MovImm(R7, 0x777);
  a.Push((1u << R1) | (1u << R7));
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  // Lowest register at the lowest address.
  EXPECT_EQ(m.mem.Read(0x4000 - 8), 0x111u);
  EXPECT_EQ(m.mem.Read(0x4000 - 4), 0x777u);
  EXPECT_EQ(m.ReadReg(SP), 0x4000u - 8);
}

TEST(ExecuteTest, LdmiaStmiaWithWriteback) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  a.MovImm(R2, 5);
  a.MovImm(R3, 6);
  a.Stmia(R0, (1u << R2) | (1u << R3), /*writeback=*/true);
  a.MovImm(R1, 0x3000);
  a.Ldmia(R1, (1u << R4) | (1u << R5));
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[0], 0x3008u);  // advanced past two words
  EXPECT_EQ(m.r[1], 0x3000u);  // no writeback requested
  EXPECT_EQ(m.r[4], 5u);
  EXPECT_EQ(m.r[5], 6u);
}

TEST(ExecuteTest, PopIntoPcReturnsFromCall) {
  Assembler a(kCodeBase);
  Assembler::Label func = a.NewLabel();
  Assembler::Label done = a.NewLabel();
  a.MovImm(SP, 0x4000);
  a.MovImm(R0, 5);
  a.Bl(func);
  a.Add(R0, R0, 100u);
  a.B(done);
  a.Bind(func);
  a.Push((1u << R4) | (1u << LR));
  a.MovImm(R4, 0);  // clobber a callee-saved register...
  a.Add(R0, R0, 10u);
  a.Pop((1u << R4) | (1u << PC));  // ...and return, restoring it
  a.Bind(done);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[0], 115u);
}

TEST(ExecuteTest, BlockTransferFaultsOnUnmappedAddress) {
  Assembler a(kCodeBase);
  a.MovImm(R0, kMonitorBase);  // secure memory: normal world faults
  a.Ldmia(R0, 0x000f);
  a.Svc();
  MachineState m = MakeMachine(a.Finish());
  EXPECT_EQ(RunUntilException(m, 100), Exception::kDataAbort);
}

// Runs `code` as secure-privileged instructions placed in monitor RAM and
// fetched through the direct map.
MachineState RunSecurePrivileged(const std::vector<word>& code) {
  MachineState m(16);
  m.cpsr.mode = Mode::kSupervisor;
  m.scr_ns = false;
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kMonitorBase + 0x600 + static_cast<word>(i) * kWordSize, code[i]);
  }
  m.pc = kDirectMapVbase + kMonitorBase + 0x600;
  return m;
}

TEST(ExecuteTest, Cp15TtbrAndTlbFlush) {
  Assembler a(kDirectMapVbase + kMonitorBase + 0x600);
  a.MovImm(R0, kSecurePagesBase);
  a.WriteTtbr0(R0);   // marks TLB inconsistent
  a.ReadTtbr0(R1);
  a.TlbiAll(R2);      // flush restores consistency
  a.Svc();
  MachineState m = RunSecurePrivileged(a.Finish());
  ASSERT_EQ(RunUntilException(m, 20), Exception::kSvc);
  EXPECT_EQ(m.ttbr0, kSecurePagesBase);
  EXPECT_EQ(m.r[1], kSecurePagesBase);
  EXPECT_TRUE(m.tlb_consistent);
}

TEST(ExecuteTest, Cp15TtbrWriteMarksTlbInconsistent) {
  Assembler a(kDirectMapVbase + kMonitorBase + 0x600);
  a.MovImm(R0, kSecurePagesBase);
  a.WriteTtbr0(R0);
  a.Svc();
  MachineState m = RunSecurePrivileged(a.Finish());
  ASSERT_EQ(RunUntilException(m, 20), Exception::kSvc);
  EXPECT_FALSE(m.tlb_consistent);
}

TEST(ExecuteTest, Cp15ScrRequiresMonitorMode) {
  Assembler a(kDirectMapVbase + kMonitorBase + 0x600);
  a.MovImm(R0, 1);
  a.WriteScr(R0);
  MachineState m = RunSecurePrivileged(a.Finish());  // supervisor, not monitor
  EXPECT_EQ(RunUntilException(m, 20), Exception::kUndefined);

  // From monitor mode it works and switches worlds.
  Assembler b(kDirectMapVbase + kMonitorBase + 0x600);
  b.MovImm(R0, 1);
  b.WriteScr(R0);
  b.ReadScr(R1);
  b.Svc();
  MachineState m2 = RunSecurePrivileged(b.Finish());
  m2.cpsr.mode = Mode::kMonitor;
  ASSERT_EQ(RunUntilException(m2, 20), Exception::kSvc);
  EXPECT_EQ(m2.r[1], 1u);
  EXPECT_TRUE(m2.scr_ns);
}

TEST(ExecuteTest, Cp15ForbiddenFromUserAndNormalWorld) {
  // Normal-world supervisor: CP15 access is outside the model -> undefined.
  Assembler a(kCodeBase);
  a.ReadTtbr0(R0);
  MachineState m = MakeMachine(a.Finish());  // normal world supervisor
  EXPECT_EQ(RunUntilException(m, 20), Exception::kUndefined);
}

TEST(ExecuteTest, Cp15UnknownRegisterUndefined) {
  Assembler a(kDirectMapVbase + kMonitorBase + 0x600);
  a.Mrc(R0, 0, 5, 0, 0);  // DFSR — unmodelled
  MachineState m = RunSecurePrivileged(a.Finish());
  EXPECT_EQ(RunUntilException(m, 20), Exception::kUndefined);
}

TEST(ExecuteTest, MrsMsrUserFlagsOnly) {
  Assembler a(kCodeBase);
  a.MrsCpsr(R0);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  Mode mode;
  ASSERT_TRUE(DecodeMode(m.r[0], &mode));
  EXPECT_EQ(mode, Mode::kSupervisor);
}

}  // namespace
}  // namespace komodo::arm
