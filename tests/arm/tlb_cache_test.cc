// Micro-TLB coherence (DESIGN.md §8): cached translations must never outlive
// the descriptors they were derived from. The entries are tagged with the
// generation counters of the L1/L2 pages the walk read, so a store into a
// live page table — from interpreted code, monitor C++, or a bare test poke —
// invalidates them by construction, and TLBIALL/TTBR writes flush outright.
// These tests drive the cache through both the direct TlbWalk interface and
// full interpreted execution, and check the §5.1 tlb_consistent discipline
// stays intact alongside it.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/arm/execute.h"
#include "src/arm/interp_cache.h"
#include "src/arm/page_table.h"

namespace komodo::arm {
namespace {

// Secure-page layout used throughout: page 0 = L1 table, page 1 = L2 tables,
// pages 2.. = mapped data/code.
class TlbCacheTest : public ::testing::Test {
 protected:
  TlbCacheTest() : mem_(64) {
    l1_base_ = kSecurePagesBase;
    l2_page_ = kSecurePagesBase + kPageSize;
    for (word k = 0; k < kL2TablesPerPage; ++k) {
      mem_.Write(l1_base_ + k * kWordSize,
                 MakeL1PageTableDesc(l2_page_ + k * kL2TableBytes));
    }
  }

  paddr SecurePage(word n) { return kSecurePagesBase + n * kPageSize; }

  void Map(vaddr va, paddr page, bool w, bool x) {
    const word slot = (va >> 12) & 0x3ff;
    mem_.Write(l2_page_ + slot * kWordSize, MakeL2SmallPageDesc(page, w, x, false));
  }

  PhysMemory mem_;
  paddr l1_base_;
  paddr l2_page_;
};

TEST_F(TlbCacheTest, HitReturnsIdenticalWalk) {
  Map(0x8000, SecurePage(2), /*w=*/true, /*x=*/false);
  InterpCaches caches;
  caches.set_enabled(true);
  const WalkResult miss = caches.TlbWalk(mem_, l1_base_, 0x8123);
  const WalkResult hit = caches.TlbWalk(mem_, l1_base_, 0x8456);
  EXPECT_EQ(caches.stats().tlb_misses, 1u);
  EXPECT_EQ(caches.stats().tlb_hits, 1u);
  ASSERT_TRUE(miss.ok);
  ASSERT_TRUE(hit.ok);
  EXPECT_EQ(miss.phys, SecurePage(2) + 0x123);
  EXPECT_EQ(hit.phys, SecurePage(2) + 0x456);
  EXPECT_EQ(hit.user_write, miss.user_write);
  EXPECT_EQ(hit.executable, miss.executable);
}

TEST_F(TlbCacheTest, StoreIntoLiveL2RemapsWithoutStaleness) {
  Map(0x8000, SecurePage(2), true, false);
  InterpCaches caches;
  caches.set_enabled(true);
  ASSERT_EQ(caches.TlbWalk(mem_, l1_base_, 0x8000).phys, SecurePage(2));
  ASSERT_EQ(caches.stats().tlb_hits + caches.stats().tlb_misses, 1u);

  // Poke the live L2 descriptor directly (as the monitor's MapData does):
  // no invalidation call, only the page-generation bump.
  Map(0x8000, SecurePage(3), true, false);
  const WalkResult w = caches.TlbWalk(mem_, l1_base_, 0x8000);
  ASSERT_TRUE(w.ok);
  EXPECT_EQ(w.phys, SecurePage(3)) << "micro-TLB served a stale translation";
}

TEST_F(TlbCacheTest, PermissionTighteningIsSeen) {
  Map(0x8000, SecurePage(2), /*w=*/true, false);
  InterpCaches caches;
  caches.set_enabled(true);
  ASSERT_TRUE(caches.TlbWalk(mem_, l1_base_, 0x8000).user_write);
  Map(0x8000, SecurePage(2), /*w=*/false, false);  // revoke write
  EXPECT_FALSE(caches.TlbWalk(mem_, l1_base_, 0x8000).user_write);
}

TEST_F(TlbCacheTest, UnmapIsSeen) {
  Map(0x8000, SecurePage(2), true, false);
  InterpCaches caches;
  caches.set_enabled(true);
  ASSERT_TRUE(caches.TlbWalk(mem_, l1_base_, 0x8000).ok);
  mem_.Write(l2_page_ + ((0x8000u >> 12) & 0x3ff) * kWordSize, kL2FaultDesc);
  EXPECT_FALSE(caches.TlbWalk(mem_, l1_base_, 0x8000).ok);
}

// TLBIALL, TTBR writes and SCR.NS world switches deliberately leave the
// micro-TLB warm (machine.cc): the tags already guarantee coherence, and the
// warm entries are what makes the SMC world-switch round trip cheap. This
// pins both halves — a hit after the CP15 churn, and correctness if the
// descriptors changed underneath it meanwhile.
TEST(TlbWarmAcrossFlush, Cp15ChurnKeepsEntriesAndStaysCoherent) {
  MachineState m(64);
  m.interp.set_enabled(true);
  const paddr l1_base = kSecurePagesBase;
  const paddr l2_page = kSecurePagesBase + kPageSize;
  for (word k = 0; k < kL2TablesPerPage; ++k) {
    m.mem.Write(l1_base + k * kWordSize,
                MakeL1PageTableDesc(l2_page + k * kL2TableBytes));
  }
  auto map = [&](vaddr va, paddr page) {
    const word slot = (va >> 12) & 0x3ff;
    m.mem.Write(l2_page + slot * kWordSize,
                MakeL2SmallPageDesc(page, /*w=*/true, /*x=*/false, false));
  };
  map(0x8000, kSecurePagesBase + 2 * kPageSize);

  m.cpsr.mode = Mode::kMonitor;
  m.WriteTtbr0(l1_base);
  m.FlushTlb();
  ASSERT_TRUE(m.interp.TlbWalk(m.mem, m.ttbr0, 0x8000).ok);
  ASSERT_EQ(m.interp.stats().tlb_misses, 1u);

  // The full world-switch round trip: TLBIALL, hop to the normal world and
  // back, rewrite TTBR0 with the same base. None of it may evict the entry.
  m.FlushTlb();
  m.SetScrNs(true);
  m.SetScrNs(false);
  m.WriteTtbr0(l1_base);
  m.FlushTlb();
  const WalkResult warm = m.interp.TlbWalk(m.mem, m.ttbr0, 0x8000);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.phys, kSecurePagesBase + 2 * kPageSize);
  EXPECT_EQ(m.interp.stats().tlb_hits, 1u) << "CP15 churn evicted a valid entry";

  // And staying warm must not mean staying stale: a descriptor rewrite with
  // no flush at all is still seen (generation tags, not flushes, are the
  // coherence mechanism).
  map(0x8000, kSecurePagesBase + 3 * kPageSize);
  const WalkResult remapped = m.interp.TlbWalk(m.mem, m.ttbr0, 0x8000);
  ASSERT_TRUE(remapped.ok);
  EXPECT_EQ(remapped.phys, kSecurePagesBase + 3 * kPageSize);
}

TEST_F(TlbCacheTest, InvalidateTlbDropsEverything) {
  Map(0x8000, SecurePage(2), true, false);
  InterpCaches caches;
  caches.set_enabled(true);
  (void)caches.TlbWalk(mem_, l1_base_, 0x8000);
  caches.InvalidateTlb();
  (void)caches.TlbWalk(mem_, l1_base_, 0x8000);
  EXPECT_EQ(caches.stats().tlb_misses, 2u);
  EXPECT_EQ(caches.stats().tlb_hits, 0u);
}

// The full §5.1 discipline through interpreted execution, in both cache
// modes: an enclave that maps its own L2 table user-writable and stores a new
// descriptor through it. The store must (a) take effect for later walks and
// (b) mark the TLB inconsistent until TLBIALL.
class TlbDisciplineTest : public ::testing::TestWithParam<bool> {};

TEST_P(TlbDisciplineTest, InterpretedStoreIntoLiveL2) {
  const bool cached = GetParam();

  MachineState m(64);
  m.interp.set_enabled(cached);
  const paddr l1_base = kSecurePagesBase;
  const paddr l2_page = kSecurePagesBase + kPageSize;
  const paddr code_page = kSecurePagesBase + 2 * kPageSize;
  const paddr d1 = kSecurePagesBase + 3 * kPageSize;
  const paddr d2 = kSecurePagesBase + 4 * kPageSize;
  for (word k = 0; k < kL2TablesPerPage; ++k) {
    m.mem.Write(l1_base + k * kWordSize,
                MakeL1PageTableDesc(l2_page + k * kL2TableBytes));
  }
  auto map = [&](vaddr va, paddr page, bool w, bool x) {
    const word slot = (va >> 12) & 0x3ff;
    m.mem.Write(l2_page + slot * kWordSize, MakeL2SmallPageDesc(page, w, x, false));
  };
  map(0x8000, code_page, false, true);  // code
  map(0xa000, l2_page, true, false);    // the live L2 table itself, writable
  map(0xb000, d1, true, false);         // the VA the store will remap
  m.mem.Write(d1, 0x111u);
  m.mem.Write(d2, 0x222u);

  // LDR R4,[R3] warms the micro-TLB for 0xb000; STR R1,[R0] rewrites its
  // descriptor through the 0xa000 window; LDR R2,[R3] (after the flush below)
  // must read through the remapped page.
  Assembler a(0x8000);
  a.Ldr(R4, R3, 0);
  a.Str(R1, R0, 0);
  a.Ldr(R2, R3, 0);
  const std::vector<word> code = a.Finish();
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(code_page + static_cast<word>(i) * kWordSize, code[i]);
  }

  m.cpsr.mode = Mode::kMonitor;
  m.WriteTtbr0(l1_base);
  m.FlushTlb();
  m.cpsr.mode = Mode::kUser;  // secure world (SCR.NS stays 0)
  m.pc = 0x8000;
  m.r[3] = 0xb000;
  m.r[0] = 0xa000 + ((0xb000u >> 12) & 0x3ff) * kWordSize;  // 0xb000's L2 slot
  m.r[1] = MakeL2SmallPageDesc(d2, true, false, false);

  ASSERT_EQ(Step(m).status, StepStatus::kOk);  // warm-up load
  EXPECT_EQ(m.r[4], 0x111u);
  ASSERT_TRUE(m.tlb_consistent);
  ASSERT_EQ(Step(m).status, StepStatus::kOk);  // store into the live L2
  EXPECT_FALSE(m.tlb_consistent) << "store into live page table not noticed";
  m.FlushTlb();  // TLBIALL restores consistency
  EXPECT_TRUE(m.tlb_consistent);
  ASSERT_EQ(Step(m).status, StepStatus::kOk);
  EXPECT_EQ(m.r[2], 0x222u) << "load used a stale translation after remap";
}

INSTANTIATE_TEST_SUITE_P(BothModes, TlbDisciplineTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? "cached" : "uncached";
                         });

}  // namespace
}  // namespace komodo::arm
