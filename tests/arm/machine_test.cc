// Architectural-transition tests: register banking, exception entry/return,
// TrustZone worlds and TLB-consistency tracking.
#include "src/arm/machine.h"

#include <gtest/gtest.h>

#include "src/arm/execute.h"
#include "src/arm/page_table.h"

namespace komodo::arm {
namespace {

TEST(MachineTest, SpLrBankedPerMode) {
  MachineState m(8);
  m.WriteRegMode(SP, 0x1000, Mode::kSupervisor);
  m.WriteRegMode(SP, 0x2000, Mode::kIrq);
  m.WriteRegMode(SP, 0x3000, Mode::kUser);
  m.WriteRegMode(LR, 0xaaaa, Mode::kMonitor);
  EXPECT_EQ(m.ReadRegMode(SP, Mode::kSupervisor), 0x1000u);
  EXPECT_EQ(m.ReadRegMode(SP, Mode::kIrq), 0x2000u);
  EXPECT_EQ(m.ReadRegMode(SP, Mode::kUser), 0x3000u);
  EXPECT_EQ(m.ReadRegMode(LR, Mode::kMonitor), 0xaaaau);
  EXPECT_EQ(m.ReadRegMode(LR, Mode::kUser), 0u);
}

TEST(MachineTest, GeneralRegistersNotBanked) {
  MachineState m(8);
  m.cpsr.mode = Mode::kSupervisor;
  m.WriteReg(R5, 77);
  m.cpsr.mode = Mode::kIrq;
  EXPECT_EQ(m.ReadReg(R5), 77u);
}

TEST(MachineTest, CurrentModeViewFollowsCpsr) {
  MachineState m(8);
  m.cpsr.mode = Mode::kSupervisor;
  m.WriteReg(SP, 0x10);
  m.cpsr.mode = Mode::kIrq;
  m.WriteReg(SP, 0x20);
  EXPECT_EQ(m.ReadReg(SP), 0x20u);
  m.cpsr.mode = Mode::kSupervisor;
  EXPECT_EQ(m.ReadReg(SP), 0x10u);
}

TEST(MachineTest, ExceptionEntryBanksStateAndMasks) {
  MachineState m(8);
  m.cpsr.mode = Mode::kUser;
  m.cpsr.irq_masked = false;
  m.cpsr.fiq_masked = false;
  m.cpsr.z = true;
  m.vbar_secure = 0x80001000;
  m.TakeException(Exception::kIrq, 0x5678);
  EXPECT_EQ(m.cpsr.mode, Mode::kIrq);
  EXPECT_TRUE(m.cpsr.irq_masked);
  EXPECT_FALSE(m.cpsr.fiq_masked);  // IRQ entry leaves FIQ enabled
  EXPECT_EQ(m.lr_banked[static_cast<size_t>(Mode::kIrq)], 0x5678u);
  const Psr saved = m.spsr_banked[static_cast<size_t>(Mode::kIrq)];
  EXPECT_EQ(saved.mode, Mode::kUser);
  EXPECT_TRUE(saved.z);
  EXPECT_EQ(m.pc, 0x80001000u + 0x18u);
}

TEST(MachineTest, SmcEntryMasksFiqAndUsesMonitorVector) {
  MachineState m(8);
  m.cpsr.mode = Mode::kSupervisor;
  m.cpsr.fiq_masked = false;
  m.vbar_monitor = 0x80002000;
  m.TakeException(Exception::kSmc, 0x100);
  EXPECT_EQ(m.cpsr.mode, Mode::kMonitor);
  EXPECT_TRUE(m.cpsr.fiq_masked);
  EXPECT_EQ(m.pc, 0x80002008u);
}

TEST(MachineTest, ExceptionReturnRestoresPsr) {
  MachineState m(8);
  m.cpsr.mode = Mode::kMonitor;
  Psr user;
  user.mode = Mode::kUser;
  user.irq_masked = false;
  user.fiq_masked = false;
  user.c = true;
  m.spsr_banked[static_cast<size_t>(Mode::kMonitor)] = user;
  m.ExceptionReturn(0x8000);
  EXPECT_EQ(m.cpsr.mode, Mode::kUser);
  EXPECT_FALSE(m.cpsr.irq_masked);
  EXPECT_TRUE(m.cpsr.c);
  EXPECT_EQ(m.pc, 0x8000u);
}

TEST(MachineTest, MonitorModeAlwaysSecure) {
  MachineState m(8);
  m.cpsr.mode = Mode::kMonitor;
  m.scr_ns = true;
  EXPECT_EQ(m.CurrentWorld(), World::kSecure);
  m.cpsr.mode = Mode::kSupervisor;
  EXPECT_EQ(m.CurrentWorld(), World::kNormal);
  m.scr_ns = false;
  EXPECT_EQ(m.CurrentWorld(), World::kSecure);
}

TEST(MachineTest, TtbrWriteInvalidatesTlbFlushRestores) {
  MachineState m(8);
  EXPECT_TRUE(m.tlb_consistent);
  m.WriteTtbr0(kSecurePagesBase);
  EXPECT_FALSE(m.tlb_consistent);
  m.FlushTlb();
  EXPECT_TRUE(m.tlb_consistent);
}

TEST(MachineTest, InterpretedStoreToLivePageTableInvalidatesTlb) {
  // A store landing inside the live page table must mark the TLB
  // inconsistent (§5.1). We run a secure-privileged store through the
  // direct map.
  MachineState m(8);
  m.cpsr.mode = Mode::kSupervisor;
  m.scr_ns = false;  // secure world
  const paddr l1 = kSecurePagesBase;
  m.WriteTtbr0(l1);
  m.FlushTlb();
  ASSERT_TRUE(m.tlb_consistent);

  // str r1, [r0] with r0 = directmap(l1): assemble a single store.
  // Program is placed in monitor RAM and fetched through the direct map.
  const word str = 0xe5801000;  // str r1, [r0]
  m.mem.Write(kMonitorBase + 0x500, str);
  m.pc = kDirectMapVbase + kMonitorBase + 0x500;
  m.r[0] = kDirectMapVbase + l1;
  m.r[1] = 0x1234;
  const StepResult r = Step(m);
  ASSERT_EQ(r.status, StepStatus::kOk);
  EXPECT_EQ(m.mem.Read(l1), 0x1234u);
  EXPECT_FALSE(m.tlb_consistent);
}

TEST(MachineTest, VectorOffsetsArchitectural) {
  EXPECT_EQ(VectorOffset(Exception::kUndefined), 0x04u);
  EXPECT_EQ(VectorOffset(Exception::kSvc), 0x08u);
  EXPECT_EQ(VectorOffset(Exception::kPrefetchAbort), 0x0cu);
  EXPECT_EQ(VectorOffset(Exception::kDataAbort), 0x10u);
  EXPECT_EQ(VectorOffset(Exception::kIrq), 0x18u);
  EXPECT_EQ(VectorOffset(Exception::kFiq), 0x1cu);
}

TEST(MachineTest, SecurePrivilegedUsesDirectMap) {
  MachineState m(8);
  m.cpsr.mode = Mode::kMonitor;
  m.mem.Write(kMonitorBase + 0x40, 0xfeedface);
  const Translation t =
      TranslateAddress(m, kDirectMapVbase + kMonitorBase + 0x40, Access::kRead);
  ASSERT_TRUE(t.ok);
  EXPECT_EQ(m.mem.Read(t.phys), 0xfeedfaceu);
  // Below the direct map there is no privileged mapping.
  EXPECT_FALSE(TranslateAddress(m, 0x40, Access::kRead).ok);
}

}  // namespace
}  // namespace komodo::arm
