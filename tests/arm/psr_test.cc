#include "src/arm/psr.h"

#include <gtest/gtest.h>

namespace komodo::arm {
namespace {

TEST(PsrTest, EncodeDecodeRoundTripAllModes) {
  const Mode modes[] = {Mode::kUser,  Mode::kFiq,       Mode::kIrq,    Mode::kSupervisor,
                        Mode::kAbort, Mode::kUndefined, Mode::kMonitor};
  for (Mode m : modes) {
    for (int flags = 0; flags < 64; ++flags) {
      Psr p;
      p.mode = m;
      p.n = flags & 1;
      p.z = flags & 2;
      p.c = flags & 4;
      p.v = flags & 8;
      p.irq_masked = flags & 16;
      p.fiq_masked = flags & 32;
      EXPECT_EQ(Psr::Decode(p.Encode()), p) << ModeName(m) << " flags=" << flags;
    }
  }
}

TEST(PsrTest, ArchitecturalModeEncodings) {
  EXPECT_EQ(ModeEncoding(Mode::kUser), 0b10000u);
  EXPECT_EQ(ModeEncoding(Mode::kFiq), 0b10001u);
  EXPECT_EQ(ModeEncoding(Mode::kIrq), 0b10010u);
  EXPECT_EQ(ModeEncoding(Mode::kSupervisor), 0b10011u);
  EXPECT_EQ(ModeEncoding(Mode::kMonitor), 0b10110u);
  EXPECT_EQ(ModeEncoding(Mode::kAbort), 0b10111u);
  EXPECT_EQ(ModeEncoding(Mode::kUndefined), 0b11011u);
}

TEST(PsrTest, UnmodelledModeEncodingsRejected) {
  Mode out;
  EXPECT_FALSE(DecodeMode(0b11111, &out));  // system mode
  EXPECT_FALSE(DecodeMode(0b11010, &out));  // hyp mode
  EXPECT_FALSE(DecodeMode(0b00000, &out));
}

TEST(PsrTest, DecodePreservesModeOnGarbage) {
  // Decoding an invalid mode field keeps the default mode rather than
  // fabricating one.
  const Psr p = Psr::Decode(0xffffffff & ~0x1fu);
  EXPECT_EQ(p.mode, Mode::kSupervisor);
  EXPECT_TRUE(p.n && p.z && p.c && p.v);
}

TEST(CondTest, FlagSemantics) {
  Psr p;
  p.z = true;
  EXPECT_TRUE(CondPasses(Cond::kEq, p));
  EXPECT_FALSE(CondPasses(Cond::kNe, p));
  p.z = false;
  p.c = true;
  EXPECT_TRUE(CondPasses(Cond::kCs, p));
  EXPECT_TRUE(CondPasses(Cond::kHi, p));  // C && !Z
  p.n = true;
  p.v = false;
  EXPECT_TRUE(CondPasses(Cond::kLt, p));  // N != V
  EXPECT_FALSE(CondPasses(Cond::kGe, p));
  p.v = true;
  EXPECT_TRUE(CondPasses(Cond::kGe, p));
  EXPECT_TRUE(CondPasses(Cond::kGt, p));  // !Z && N==V
  EXPECT_TRUE(CondPasses(Cond::kAl, Psr{}));
}

TEST(CondTest, LsIsComplementOfHi) {
  for (int i = 0; i < 4; ++i) {
    Psr p;
    p.c = i & 1;
    p.z = i & 2;
    EXPECT_NE(CondPasses(Cond::kHi, p), CondPasses(Cond::kLs, p));
  }
}

}  // namespace
}  // namespace komodo::arm
