#include "src/arm/page_table.h"

#include <gtest/gtest.h>

namespace komodo::arm {
namespace {

class PageTableTest : public ::testing::Test {
 protected:
  PageTableTest() : mem_(64) {
    l1_base_ = kSecurePagesBase;            // page 0: L1 table
    l2_page_ = kSecurePagesBase + kPageSize;  // page 1: L2 tables
    data_page_ = kSecurePagesBase + 2 * kPageSize;
  }

  // Installs the L2 page into the 4 L1 slots covering [0, 4 MB).
  void InstallL2() {
    for (word k = 0; k < kL2TablesPerPage; ++k) {
      mem_.Write(l1_base_ + k * kWordSize, MakeL1PageTableDesc(l2_page_ + k * kL2TableBytes));
    }
  }

  void Map(vaddr va, paddr page, bool w, bool x, bool ns = false) {
    const word slot = (va >> 12) & 0x3ff;
    mem_.Write(l2_page_ + slot * kWordSize, MakeL2SmallPageDesc(page, w, x, ns));
  }

  PhysMemory mem_;
  paddr l1_base_;
  paddr l2_page_;
  paddr data_page_;
};

TEST_F(PageTableTest, DescriptorEncodings) {
  const word l1 = MakeL1PageTableDesc(0x40101400);
  EXPECT_TRUE(IsL1PageTableDesc(l1));
  EXPECT_EQ(L1DescTableBase(l1), 0x40101400u);
  EXPECT_FALSE(IsL1PageTableDesc(kL1FaultDesc));

  const word rw = MakeL2SmallPageDesc(0x40102000, true, false, false);
  EXPECT_TRUE(IsL2SmallPageDesc(rw));
  EXPECT_EQ(L2DescPageBase(rw), 0x40102000u);
  L2Perms p = L2DescPerms(rw);
  EXPECT_TRUE(p.user_read && p.user_write);
  EXPECT_FALSE(p.executable);
  EXPECT_FALSE(p.ns);

  const word rx = MakeL2SmallPageDesc(0x40102000, false, true, false);
  p = L2DescPerms(rx);
  EXPECT_TRUE(p.user_read);
  EXPECT_FALSE(p.user_write);
  EXPECT_TRUE(p.executable);

  const word ns = MakeL2SmallPageDesc(0x00010000, true, false, true);
  EXPECT_TRUE(L2DescPerms(ns).ns);
}

TEST_F(PageTableTest, WalkResolvesMappedPage) {
  InstallL2();
  Map(0x8000, data_page_, /*w=*/true, /*x=*/false);
  const WalkResult w = WalkPageTable(mem_, l1_base_, 0x8123);
  ASSERT_TRUE(w.ok);
  EXPECT_EQ(w.phys, data_page_ + 0x123);
  EXPECT_TRUE(w.user_write);
  EXPECT_FALSE(w.executable);
}

TEST_F(PageTableTest, WalkFaultsOnMissingL1) {
  const WalkResult w = WalkPageTable(mem_, l1_base_, 0x8000);
  EXPECT_FALSE(w.ok);
}

TEST_F(PageTableTest, WalkFaultsOnMissingL2Slot) {
  InstallL2();
  EXPECT_FALSE(WalkPageTable(mem_, l1_base_, 0x9000).ok);
}

TEST_F(PageTableTest, WalkFaultsAboveEnclaveLimit) {
  InstallL2();
  Map(0x8000, data_page_, true, false);
  EXPECT_FALSE(WalkPageTable(mem_, l1_base_, kEnclaveVaLimit).ok);
  EXPECT_FALSE(WalkPageTable(mem_, l1_base_, 0xffffffff).ok);
}

TEST_F(PageTableTest, SecondLevelTableSelection) {
  InstallL2();
  // 1 MB + 4 kB lands in the second hardware table inside the L2 page.
  Map(0x0010'1000, data_page_, false, false);
  const WalkResult w = WalkPageTable(mem_, l1_base_, 0x0010'1008);
  ASSERT_TRUE(w.ok);
  EXPECT_EQ(w.phys, data_page_ + 8);
  EXPECT_FALSE(w.user_write);
}

TEST_F(PageTableTest, WritablePagesEnumeratesOnlyWritable) {
  InstallL2();
  Map(0x8000, data_page_, /*w=*/false, /*x=*/true);
  Map(0xa000, data_page_ + kPageSize, /*w=*/true, /*x=*/false);
  const std::vector<WritableMapping> pages = WritablePages(mem_, l1_base_);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0].va, 0xa000u);
  EXPECT_EQ(pages[0].page_base, data_page_ + kPageSize);
}

TEST_F(PageTableTest, AddrInLivePageTableCoversBothLevels) {
  InstallL2();
  EXPECT_TRUE(AddrInLivePageTable(mem_, l1_base_, l1_base_ + 0x40));
  EXPECT_TRUE(AddrInLivePageTable(mem_, l1_base_, l2_page_));
  EXPECT_TRUE(AddrInLivePageTable(mem_, l1_base_, l2_page_ + kL2TableBytes - 4));
  EXPECT_FALSE(AddrInLivePageTable(mem_, l1_base_, data_page_));
}

}  // namespace
}  // namespace komodo::arm
