// Parameterized interpreter sweeps: every data-processing op is checked
// against a host-side oracle on many random operand pairs; every shift kind
// and every condition code gets the same treatment. This is the
// machine-model analogue of the paper's instruction-semantics spec.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/arm/execute.h"
#include "src/crypto/drbg.h"

namespace komodo::arm {
namespace {

constexpr vaddr kCodeBase = 0x2000;

MachineState MakeMachine(const std::vector<word>& code) {
  MachineState m(8);
  m.cpsr.mode = Mode::kMonitor;
  m.SetScrNs(true);
  m.cpsr.mode = Mode::kSupervisor;
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kCodeBase + static_cast<word>(i) * kWordSize, code[i]);
  }
  m.pc = kCodeBase;
  return m;
}

// --- Data-processing ops vs oracle ---------------------------------------------

struct DpCase {
  Op op;
  const char* name;
  word (*oracle)(word a, word b, bool carry_in);
};

const DpCase kDpCases[] = {
    {Op::kAnd, "and", [](word a, word b, bool) { return a & b; }},
    {Op::kEor, "eor", [](word a, word b, bool) { return a ^ b; }},
    {Op::kSub, "sub", [](word a, word b, bool) { return a - b; }},
    {Op::kRsb, "rsb", [](word a, word b, bool) { return b - a; }},
    {Op::kAdd, "add", [](word a, word b, bool) { return a + b; }},
    {Op::kAdc, "adc", [](word a, word b, bool c) { return a + b + (c ? 1 : 0); }},
    {Op::kSbc, "sbc", [](word a, word b, bool c) { return a - b - (c ? 0 : 1); }},
    {Op::kRsc, "rsc", [](word a, word b, bool c) { return b - a - (c ? 0 : 1); }},
    {Op::kOrr, "orr", [](word a, word b, bool) { return a | b; }},
    {Op::kMov, "mov", [](word, word b, bool) { return b; }},
    {Op::kBic, "bic", [](word a, word b, bool) { return a & ~b; }},
    {Op::kMvn, "mvn", [](word, word b, bool) { return ~b; }},
};

class DpOracleTest : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpOracleTest, MatchesOracleOnRandomOperands) {
  const DpCase& c = GetParam();
  crypto::HashDrbg drbg(static_cast<uint64_t>(c.op) * 7919 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    const word a_val = drbg.NextWord();
    const word b_val = drbg.NextWord();
    const bool carry = drbg.Below(2) != 0;

    Instruction insn;
    insn.op = c.op;
    insn.rd = R2;
    insn.rn = R0;
    insn.op2 = Operand2::Rm(R1);
    MachineState m = MakeMachine({Encode(insn), 0xef000000});
    m.r[0] = a_val;
    m.r[1] = b_val;
    m.cpsr.c = carry;
    ASSERT_EQ(RunUntilException(m, 10), Exception::kSvc);
    EXPECT_EQ(m.r[2], c.oracle(a_val, b_val, carry))
        << c.name << "(" << a_val << ", " << b_val << ", C=" << carry << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, DpOracleTest, ::testing::ValuesIn(kDpCases),
                         [](const ::testing::TestParamInfo<DpCase>& param_info) {
                           return param_info.param.name;
                         });

// --- Flag-setting compares vs oracle ----------------------------------------------

struct CmpCase {
  word a;
  word b;
};

class CmpFlagsTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(CmpFlagsTest, CmpFlagsMatchArithmetic) {
  const auto [a_val, b_val] = GetParam();
  Instruction cmp;
  cmp.op = Op::kCmp;
  cmp.rn = R0;
  cmp.op2 = Operand2::Rm(R1);
  MachineState m = MakeMachine({Encode(cmp), 0xef000000});
  m.r[0] = a_val;
  m.r[1] = b_val;
  ASSERT_EQ(RunUntilException(m, 10), Exception::kSvc);
  const word diff = a_val - b_val;
  EXPECT_EQ(m.cpsr.n, (diff >> 31) != 0);
  EXPECT_EQ(m.cpsr.z, diff == 0);
  EXPECT_EQ(m.cpsr.c, a_val >= b_val);  // no borrow
  const int64_t signed_diff =
      static_cast<int64_t>(static_cast<int32_t>(a_val)) - static_cast<int32_t>(b_val);
  EXPECT_EQ(m.cpsr.v, signed_diff != static_cast<int32_t>(diff));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, CmpFlagsTest,
                         ::testing::Values(CmpCase{0, 0}, CmpCase{1, 0}, CmpCase{0, 1},
                                           CmpCase{0x7fffffff, 0xffffffff},
                                           CmpCase{0x80000000, 1},
                                           CmpCase{0x80000000, 0x80000000},
                                           CmpCase{0xffffffff, 0x7fffffff},
                                           CmpCase{42, 42}, CmpCase{0xdeadbeef, 0xcafe}));

// --- Shifts vs oracle ------------------------------------------------------------------

struct ShiftCase {
  ShiftKind kind;
  uint8_t amount;
  const char* name;
};

class ShiftOracleTest : public ::testing::TestWithParam<ShiftCase> {};

word ShiftOracle(ShiftKind kind, unsigned amount, word v) {
  switch (kind) {
    case ShiftKind::kLsl:
      return amount == 0 ? v : v << amount;
    case ShiftKind::kLsr:
      return amount == 0 ? 0 : v >> amount;  // LSR #0 encodes LSR #32
    case ShiftKind::kAsr: {
      if (amount == 0) {
        amount = 32;
      }
      const bool sign = (v >> 31) != 0;
      if (amount >= 32) {
        return sign ? 0xffffffff : 0;
      }
      return static_cast<word>(static_cast<int32_t>(v) >> amount);
    }
    case ShiftKind::kRor:
      if (amount == 0) {
        return v;  // tested separately (RRX depends on carry)
      }
      return (v >> amount) | (v << (32 - amount));
  }
  return v;
}

TEST_P(ShiftOracleTest, MovShiftedMatchesOracle) {
  const ShiftCase& c = GetParam();
  if (c.kind == ShiftKind::kRor && c.amount == 0) {
    GTEST_SKIP() << "ROR #0 is RRX";
  }
  crypto::HashDrbg drbg(static_cast<uint64_t>(c.kind) * 131 + c.amount);
  for (int trial = 0; trial < 100; ++trial) {
    const word v = drbg.NextWord();
    Instruction insn;
    insn.op = Op::kMov;
    insn.rd = R2;
    insn.op2 = Operand2::Rm(R1, c.kind, c.amount);
    MachineState m = MakeMachine({Encode(insn), 0xef000000});
    m.r[1] = v;
    ASSERT_EQ(RunUntilException(m, 10), Exception::kSvc);
    EXPECT_EQ(m.r[2], ShiftOracle(c.kind, c.amount, v)) << c.name << " #" << int{c.amount};
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndAmounts, ShiftOracleTest,
    ::testing::Values(ShiftCase{ShiftKind::kLsl, 0, "lsl0"}, ShiftCase{ShiftKind::kLsl, 1, "lsl1"},
                      ShiftCase{ShiftKind::kLsl, 17, "lsl17"},
                      ShiftCase{ShiftKind::kLsl, 31, "lsl31"},
                      ShiftCase{ShiftKind::kLsr, 1, "lsr1"}, ShiftCase{ShiftKind::kLsr, 16, "lsr16"},
                      ShiftCase{ShiftKind::kLsr, 31, "lsr31"},
                      ShiftCase{ShiftKind::kLsr, 0, "lsr32"},
                      ShiftCase{ShiftKind::kAsr, 1, "asr1"}, ShiftCase{ShiftKind::kAsr, 31, "asr31"},
                      ShiftCase{ShiftKind::kAsr, 0, "asr32"},
                      ShiftCase{ShiftKind::kRor, 1, "ror1"}, ShiftCase{ShiftKind::kRor, 8, "ror8"},
                      ShiftCase{ShiftKind::kRor, 31, "ror31"}),
    [](const ::testing::TestParamInfo<ShiftCase>& param_info) { return param_info.param.name; });

// --- Conditional execution: every condition against every flag combination -------------

class CondSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CondSweepTest, ConditionalMovAgreesWithPredicate) {
  const Cond cond = static_cast<Cond>(GetParam());
  for (int flags = 0; flags < 16; ++flags) {
    Instruction insn;
    insn.op = Op::kMov;
    insn.cond = cond;
    insn.rd = R2;
    insn.op2 = Operand2::Imm(1);
    MachineState m = MakeMachine({Encode(insn), 0xef000000});
    m.cpsr.n = flags & 1;
    m.cpsr.z = flags & 2;
    m.cpsr.c = flags & 4;
    m.cpsr.v = flags & 8;
    const bool expected = CondPasses(cond, m.cpsr);
    ASSERT_EQ(RunUntilException(m, 10), Exception::kSvc);
    EXPECT_EQ(m.r[2] == 1, expected) << "cond " << GetParam() << " flags " << flags;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConditions, CondSweepTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace komodo::arm
