#include "src/arm/assembler.h"

#include <gtest/gtest.h>

#include "src/arm/execute.h"

namespace komodo::arm {
namespace {

constexpr vaddr kBase = 0x2000;

TEST(AssemblerTest, ForwardAndBackwardBranchesResolve) {
  Assembler a(kBase);
  Assembler::Label fwd = a.NewLabel();
  Assembler::Label back = a.NewLabel();
  a.Bind(back);
  a.B(fwd);        // forward
  a.B(back);       // backward
  a.Bind(fwd);
  a.Svc();
  const std::vector<word> code = a.Finish();
  // First branch targets kBase+8 (the svc): offset = 8 - (0+8) = 0.
  const std::optional<Instruction> b1 = Decode(code[0]);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->branch_offset, 0);
  // Second targets kBase: offset = 0 - (4+8) = -12.
  const std::optional<Instruction> b2 = Decode(code[1]);
  EXPECT_EQ(b2->branch_offset, -12);
}

TEST(AssemblerTest, AddrOfAndCurrentAddr) {
  Assembler a(kBase);
  EXPECT_EQ(a.CurrentAddr(), kBase);
  a.MovImm(R0, 1);
  EXPECT_EQ(a.CurrentAddr(), kBase + 4);
  Assembler::Label here = a.NewLabel();
  a.Bind(here);
  EXPECT_EQ(a.AddrOf(here), kBase + 4);
}

TEST(AssemblerTest, MovImmChoosesShortestEncoding) {
  {
    Assembler a(kBase);
    a.MovImm(R0, 0xff);  // plain mov
    EXPECT_EQ(a.size_words(), 1u);
  }
  {
    Assembler a(kBase);
    a.MovImm(R0, 0xff000000);  // rotated immediate
    EXPECT_EQ(a.size_words(), 1u);
  }
  {
    Assembler a(kBase);
    a.MovImm(R0, 0xfffffffe);  // mvn
    EXPECT_EQ(a.size_words(), 1u);
  }
  {
    Assembler a(kBase);
    a.MovImm(R0, 0x1234);  // movw only
    EXPECT_EQ(a.size_words(), 1u);
  }
  {
    Assembler a(kBase);
    a.MovImm(R0, 0x12345678);  // movw + movt
    EXPECT_EQ(a.size_words(), 2u);
  }
}

TEST(AssemblerTest, MovImmValuesCorrectWhenExecuted) {
  const word values[] = {0,          1,       0xff,       0x100,      0xff000000,
                         0xfffffffe, 0x1234,  0x12345678, 0xdeadbeef, 0x80000000,
                         0xffffffff, 0x8004,  0x3c3c3c3c};
  Assembler a(kBase);
  // Materialise each into r0 and store to a table at 0x3000.
  a.MovImm(R1, 0x3000);
  for (size_t i = 0; i < std::size(values); ++i) {
    a.MovImm(R0, values[i]);
    a.Str(R0, R1, static_cast<int32_t>(i * 4));
  }
  a.Svc();

  MachineState m(8);
  m.cpsr.mode = Mode::kMonitor;
  m.SetScrNs(true);
  m.cpsr.mode = Mode::kSupervisor;
  const std::vector<word> code = a.Finish();
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kBase + static_cast<word>(i) * 4, code[i]);
  }
  m.pc = kBase;
  ASSERT_EQ(RunUntilException(m, 1000), Exception::kSvc);
  for (size_t i = 0; i < std::size(values); ++i) {
    EXPECT_EQ(m.mem.Read(0x3000 + static_cast<word>(i) * 4), values[i]) << i;
  }
}

TEST(AssemblerTest, NegativeLoadStoreOffsets) {
  Assembler a(kBase);
  a.MovImm(R0, 0x3010);
  a.MovImm(R1, 77);
  a.Str(R1, R0, -16);
  a.Ldr(R2, R0, -16);
  a.Svc();
  MachineState m(8);
  m.cpsr.mode = Mode::kMonitor;
  m.SetScrNs(true);
  m.cpsr.mode = Mode::kSupervisor;
  const std::vector<word> code = a.Finish();
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kBase + static_cast<word>(i) * 4, code[i]);
  }
  m.pc = kBase;
  ASSERT_EQ(RunUntilException(m, 100), Exception::kSvc);
  EXPECT_EQ(m.mem.Read(0x3000), 77u);
  EXPECT_EQ(m.r[2], 77u);
}

TEST(AssemblerTest, EveryEmittedWordDecodes) {
  Assembler a(kBase);
  Assembler::Label l = a.NewLabel();
  a.Bind(l);
  a.MovImm(R0, 0xabcdef01);
  a.Add(R1, R0, 4u);
  a.Sub(R2, R1, R0);
  a.Mul(R3, R1, R2);
  a.And(R4, R1, 0xf0u);
  a.Orr(R5, R4, R1);
  a.Eor(R6, R5, R4);
  a.Bic(R7, R6, 1u);
  a.Mvn(R8, R7);
  a.Lsl(R9, R8, 3);
  a.Asr(R10, R9, 2);
  a.Cmp(R10, R9);
  a.Tst(R10, 1u);
  a.Adds(R1, R1, R2);
  a.Adc(R2, R2, R3);
  a.Subs(R3, R3, 1u);
  a.Sbc(R4, R4, R5);
  a.Rsb(R5, R5, 0u);
  a.Ldr(R6, R0, 8);
  a.Str(R6, R0, 12);
  a.Ldrb(R7, R0, 1);
  a.Strb(R7, R0, 2);
  a.LdrReg(R8, R0, R1);
  a.StrReg(R8, R0, R1);
  a.Ldmia(R0, 0x6);
  a.Stmia(R0, 0x6, true);
  a.Push(0xf0);
  a.Pop(0xf0);
  a.B(l, Cond::kNe);
  a.Bl(l);
  a.Bx(LR);
  a.Svc(7);
  a.Smc(2);
  a.MrsCpsr(R11);
  a.MsrCpsr(R11);
  const std::vector<word> code = a.Finish();
  for (size_t i = 0; i < code.size(); ++i) {
    EXPECT_TRUE(Decode(code[i]).has_value()) << "word " << i << " = 0x" << std::hex << code[i];
  }
}

TEST(AssemblerDeathTest, UnencodableImmediateAsserts) {
  EXPECT_DEATH(
      {
        Assembler a(kBase);
        a.Add(R0, R0, 0x12345678u);
      },
      "immediate");
}

TEST(AssemblerDeathTest, OversizeOffsetAsserts) {
  EXPECT_DEATH(
      {
        Assembler a(kBase);
        a.Ldr(R0, R1, 0x1000);
      },
      "offset");
}

}  // namespace
}  // namespace komodo::arm
