// Shifter and addressing edge cases audited for the fuzzing subsystem
// (DESIGN.md §10): the flag corners a structured generator rarely reaches —
// immediate-rotate carry-out, RRX, the LSR/ASR #32 encodings, the cond
// 0b1110/0b1111 boundary, LDM/STM with the base register in the list, and
// the PC-as-data conventions (STR stores insn_addr+8, LDR masks alignment).
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/arm/execute.h"
#include "src/arm/isa.h"

namespace komodo::arm {
namespace {

constexpr vaddr kCodeBase = 0x2000;

MachineState MakeMachine(const std::vector<word>& code) {
  MachineState m(16);
  m.cpsr.mode = Mode::kMonitor;
  m.SetScrNs(true);
  m.cpsr.mode = Mode::kSupervisor;
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kCodeBase + static_cast<word>(i) * kWordSize, code[i]);
  }
  m.pc = kCodeBase;
  m.vbar_secure = kDirectMapVbase + kMonitorBase + 0x100;
  m.vbar_monitor = kDirectMapVbase + kMonitorBase + 0x200;
  return m;
}

MachineState RunToSvc(const std::vector<word>& code) {
  MachineState m = MakeMachine(code);
  const std::optional<Exception> exc = RunUntilException(m, 10000);
  EXPECT_EQ(exc, Exception::kSvc);
  return m;
}

Instruction Movs(Reg rd, Operand2 op2) {
  Instruction i;
  i.op = Op::kMov;
  i.set_flags = true;
  i.rd = rd;
  i.op2 = op2;
  return i;
}

TEST(IsaEdge, ImmediateRotateCarryOutIsBit31) {
  // MOVS with a rotated immediate (rot4 != 0) sets C to bit 31 of the value;
  // with rot4 == 0 the carry is untouched.
  Assembler a(kCodeBase);
  a.MovImm(R0, 1);
  a.Adds(R1, R0, R0);                          // 1 + 1: C := 0
  a.Emit(Movs(R2, Operand2::Imm(0x80, 4)));    // ror(0x80, 8) = 0x8000'0000, C := 1
  a.MrsCpsr(R4);
  a.Cmp(R0, 0u);                               // 1 - 0: C := 1
  a.Emit(Movs(R3, Operand2::Imm(0x01, 1)));    // ror(1, 2) = 0x4000'0000, C := 0
  a.MrsCpsr(R5);
  a.Cmp(R0, 0u);                               // C := 1
  a.Emit(Movs(R6, Operand2::Imm(0x05, 0)));    // rot4 == 0: C unchanged (1)
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[2], 0x8000'0000u);
  EXPECT_NE(m.r[4] & (1u << 29), 0u) << "rot4!=0, bit31=1 must set C";
  EXPECT_EQ(m.r[3], 0x4000'0000u);
  EXPECT_EQ(m.r[5] & (1u << 29), 0u) << "rot4!=0, bit31=0 must clear C";
  EXPECT_TRUE(m.cpsr.c) << "rot4==0 must leave C untouched";
}

TEST(IsaEdge, RrxRotatesThroughCarry) {
  // Register-form ROR #0 is RRX: result = (value >> 1) | C<<31, C := bit 0.
  Assembler a(kCodeBase);
  a.MovImm(R0, 3);
  a.Cmp(R0, 0u);                                            // C := 1
  a.Emit(Movs(R1, Operand2::Rm(R0, ShiftKind::kRor, 0)));   // (3>>1)|1<<31, C := 1
  a.Emit(Movs(R2, Operand2::Rm(R1, ShiftKind::kRor, 0)));   // chain the carry again
  a.MovImm(R3, 4);
  a.Adds(R4, R3, R3);                                       // C := 0
  a.Emit(Movs(R5, Operand2::Rm(R0, ShiftKind::kRor, 0)));   // (3>>1)|0, C := 1
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[1], 0x8000'0001u);
  EXPECT_EQ(m.r[2], 0xc000'0000u);
  EXPECT_EQ(m.r[5], 0x0000'0001u);
  EXPECT_TRUE(m.cpsr.c) << "RRX carry-out is bit 0 of the input";
}

TEST(IsaEdge, LsrAsrEncodedShiftZeroMeansThirtyTwo) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x8000'0001);
  a.Emit(Movs(R1, Operand2::Rm(R0, ShiftKind::kLsr, 0)));  // LSR #32: 0, C := bit31
  a.MrsCpsr(R4);
  a.Emit(Movs(R2, Operand2::Rm(R0, ShiftKind::kAsr, 0)));  // ASR #32: sign-fill
  a.MovImm(R5, 0x7fff'ffff);
  a.Emit(Movs(R3, Operand2::Rm(R5, ShiftKind::kAsr, 0)));  // positive: 0, C := 0
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[1], 0u);
  EXPECT_NE(m.r[4] & (1u << 29), 0u) << "LSR #32 carry-out is bit 31";
  EXPECT_NE(m.r[4] & (1u << 30), 0u) << "LSR #32 of nonzero sets Z on zero result";
  EXPECT_EQ(m.r[2], 0xffff'ffffu);
  EXPECT_EQ(m.r[3], 0u);
  EXPECT_FALSE(m.cpsr.c) << "ASR #32 carry-out is the sign bit";
}

TEST(IsaEdge, CondAlwaysExecutesAndCondNvIsUndefined) {
  // cond 0b1110 (AL) executes regardless of flags; the 0b1111 space is
  // outside the modelled subset and must raise Undefined, not execute.
  EXPECT_TRUE(Decode(0xe3a01001u).has_value());   // MOV r1, #1
  EXPECT_FALSE(Decode(0xf3a01001u).has_value());  // same bits, cond=0b1111

  Assembler a(kCodeBase);
  a.MovImm(R1, 0);
  a.EmitWord(0xf3a01001u);  // must trap, not assign r1
  a.Svc();
  MachineState m = MakeMachine(a.Finish());
  const std::optional<Exception> exc = RunUntilException(m, 100);
  EXPECT_EQ(exc, Exception::kUndefined);
  EXPECT_EQ(m.r[1], 0u);
}

TEST(IsaEdge, LdmBaseInListLoadWinsOverWriteback) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  a.MovImm(R2, 0x1111);
  a.Str(R2, R0, 0);
  a.MovImm(R2, 0x2222);
  a.Str(R2, R0, 4);
  a.Ldmia(R0, 0b0011, /*writeback=*/true);  // LDMIA r0!, {r0, r1}
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[0], 0x1111u) << "loaded base must win over writeback";
  EXPECT_EQ(m.r[1], 0x2222u);
}

TEST(IsaEdge, StmBaseInListStoresOriginalBaseThenWritesBack) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  a.MovImm(R1, 0x7);
  a.Stmia(R0, 0b0011, /*writeback=*/true);  // STMIA r0!, {r0, r1}
  a.MovImm(R4, 0x3000);
  a.Ldr(R2, R4, 0);
  a.Ldr(R3, R4, 4);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[2], 0x3000u) << "STM stores the pre-writeback base value";
  EXPECT_EQ(m.r[3], 0x7u);
  EXPECT_EQ(m.r[0], 0x3008u) << "writeback still advances the base";
}

TEST(IsaEdge, StrPcStoresInstructionAddressPlusEight) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  const vaddr str_addr = a.CurrentAddr();
  Instruction str;
  str.op = Op::kStr;
  str.rd = PC;
  str.rn = R0;
  a.Emit(str);
  a.Ldr(R1, R0, 0);
  a.Svc();
  MachineState m = RunToSvc(a.Finish());
  EXPECT_EQ(m.r[1], str_addr + 8);
}

TEST(IsaEdge, LdrToPcMasksAlignmentBits) {
  // A function pointer with stray low bits still lands on the word boundary.
  constexpr vaddr kTarget = 0x2100;
  Assembler t(kTarget);
  t.MovImm(R5, 0x77);
  t.Svc();
  const std::vector<word> target = t.Finish();

  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  a.MovImm(R1, kTarget | 2);  // misaligned pointer
  a.Str(R1, R0, 0);
  a.Ldr(PC, R0, 0);
  MachineState m = MakeMachine(a.Finish());
  for (size_t i = 0; i < target.size(); ++i) {
    m.mem.Write(kTarget + static_cast<word>(i) * kWordSize, target[i]);
  }
  const std::optional<Exception> exc = RunUntilException(m, 1000);
  EXPECT_EQ(exc, Exception::kSvc);
  EXPECT_EQ(m.r[5], 0x77u) << "execution must land at the masked address";
}

TEST(IsaEdge, LdmIntoPcMasksAlignmentBits) {
  constexpr vaddr kTarget = 0x2100;
  Assembler t(kTarget);
  t.MovImm(R5, 0x99);
  t.Svc();
  const std::vector<word> target = t.Finish();

  Assembler a(kCodeBase);
  a.MovImm(R0, 0x3000);
  a.MovImm(R1, kTarget | 1);
  a.Str(R1, R0, 0);
  a.Ldmia(R0, 1u << 15);  // LDMIA r0, {pc}
  MachineState m = MakeMachine(a.Finish());
  for (size_t i = 0; i < target.size(); ++i) {
    m.mem.Write(kTarget + static_cast<word>(i) * kWordSize, target[i]);
  }
  const std::optional<Exception> exc = RunUntilException(m, 1000);
  EXPECT_EQ(exc, Exception::kSvc);
  EXPECT_EQ(m.r[5], 0x99u);
}

}  // namespace
}  // namespace komodo::arm
