// Encoder/decoder inverse properties and spot checks against known A32
// encodings (assembled with the reference tables of DDI 0406C §A8).
#include <gtest/gtest.h>

#include "src/arm/isa.h"
#include "src/crypto/drbg.h"

namespace komodo::arm {
namespace {

void ExpectRoundTrip(const Instruction& insn) {
  const word bits = Encode(insn);
  const std::optional<Instruction> decoded = Decode(bits);
  ASSERT_TRUE(decoded.has_value()) << "0x" << std::hex << bits;
  EXPECT_EQ(Encode(*decoded), bits) << OpName(insn.op);
}

TEST(IsaTest, KnownEncodings) {
  // mov r0, #1  => e3a00001
  Instruction mov;
  mov.op = Op::kMov;
  mov.rd = R0;
  mov.rn = R0;
  mov.op2 = Operand2::Imm(1);
  EXPECT_EQ(Encode(mov), 0xe3a00001u);

  // add r1, r2, r3 => e0821003
  Instruction add;
  add.op = Op::kAdd;
  add.rd = R1;
  add.rn = R2;
  add.op2 = Operand2::Rm(R3);
  EXPECT_EQ(Encode(add), 0xe0821003u);

  // ldr r0, [r1, #4] => e5910004
  Instruction ldr;
  ldr.op = Op::kLdr;
  ldr.rd = R0;
  ldr.rn = R1;
  ldr.mem_imm12 = 4;
  EXPECT_EQ(Encode(ldr), 0xe5910004u);

  // str r0, [r1] => e5810000
  Instruction str;
  str.op = Op::kStr;
  str.rd = R0;
  str.rn = R1;
  EXPECT_EQ(Encode(str), 0xe5810000u);

  // svc #0 => ef000000
  Instruction svc;
  svc.op = Op::kSvc;
  EXPECT_EQ(Encode(svc), 0xef000000u);

  // smc #0 => e1600070
  Instruction smc;
  smc.op = Op::kSmc;
  EXPECT_EQ(Encode(smc), 0xe1600070u);

  // bx lr => e12fff1e
  Instruction bx;
  bx.op = Op::kBx;
  bx.rm = LR;
  EXPECT_EQ(Encode(bx), 0xe12fff1eu);

  // movw r0, #0x1234 => e3010234
  Instruction movw;
  movw.op = Op::kMovw;
  movw.rd = R0;
  movw.trap_imm = 0x1234;
  EXPECT_EQ(Encode(movw), 0xe3010234u);

  // mul r0, r1, r2 => e0000291  (rd=0, rm=1, rs=2)
  Instruction mul;
  mul.op = Op::kMul;
  mul.rd = R0;
  mul.rm = R1;
  mul.rn = R2;
  EXPECT_EQ(Encode(mul), 0xe0000291u);

  // movs pc, lr => e1b0f00e (mov with S, rd=pc)
  Instruction movs;
  movs.op = Op::kMov;
  movs.set_flags = true;
  movs.rd = PC;
  movs.op2 = Operand2::Rm(LR);
  EXPECT_EQ(Encode(movs), 0xe1b0f00eu);
}

TEST(IsaTest, DataProcessingRoundTrip) {
  const Op ops[] = {Op::kAnd, Op::kEor, Op::kSub, Op::kRsb, Op::kAdd, Op::kAdc,
                    Op::kSbc, Op::kRsc, Op::kOrr, Op::kMov, Op::kBic, Op::kMvn};
  for (Op op : ops) {
    for (int rd = 0; rd < 16; rd += 3) {
      for (int rn = 0; rn < 16; rn += 5) {
        Instruction insn;
        insn.op = op;
        insn.rd = static_cast<Reg>(rd);
        insn.rn = static_cast<Reg>(rn);
        insn.op2 = Operand2::Imm(0x42, 3);
        ExpectRoundTrip(insn);
        insn.op2 = Operand2::Rm(R7, ShiftKind::kLsr, 9);
        insn.set_flags = true;
        ExpectRoundTrip(insn);
      }
    }
  }
}

TEST(IsaTest, CompareOpsAlwaysSetFlags) {
  const Op ops[] = {Op::kTst, Op::kTeq, Op::kCmp, Op::kCmn};
  for (Op op : ops) {
    Instruction insn;
    insn.op = op;
    insn.rn = R3;
    insn.op2 = Operand2::Imm(0xff);
    const word bits = Encode(insn);
    EXPECT_TRUE((bits >> 20) & 1) << OpName(op) << " must encode S=1";
    ExpectRoundTrip(insn);
  }
}

TEST(IsaTest, MemoryRoundTrip) {
  const Op ops[] = {Op::kLdr, Op::kStr, Op::kLdrb, Op::kStrb};
  for (Op op : ops) {
    Instruction insn;
    insn.op = op;
    insn.rd = R5;
    insn.rn = R6;
    insn.mem_imm12 = 0xabc;
    insn.mem_add = false;
    ExpectRoundTrip(insn);
    insn.mem_reg_offset = true;
    insn.rm = R9;
    insn.mem_add = true;
    ExpectRoundTrip(insn);
  }
}

TEST(IsaTest, BranchOffsetsRoundTrip) {
  for (int32_t offset : {-0x2000000, -4096, -4, 0, 4, 4096, 0x1fffffc}) {
    Instruction b;
    b.op = Op::kB;
    b.branch_offset = offset;
    const std::optional<Instruction> decoded = Decode(Encode(b));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->branch_offset, offset);
    b.op = Op::kBl;
    b.cond = Cond::kNe;
    const std::optional<Instruction> bl = Decode(Encode(b));
    ASSERT_TRUE(bl.has_value());
    EXPECT_EQ(bl->op, Op::kBl);
    EXPECT_EQ(bl->cond, Cond::kNe);
    EXPECT_EQ(bl->branch_offset, offset);
  }
}

TEST(IsaTest, StatusRegisterRoundTrip) {
  for (bool spsr : {false, true}) {
    Instruction mrs;
    mrs.op = Op::kMrs;
    mrs.rd = R4;
    mrs.uses_spsr = spsr;
    ExpectRoundTrip(mrs);
    Instruction msr;
    msr.op = Op::kMsr;
    msr.rm = R4;
    msr.uses_spsr = spsr;
    ExpectRoundTrip(msr);
  }
}

TEST(IsaTest, TryImm32FindsAllRotatedImmediates) {
  // Every value expressible as ror(imm8, 2r) must be found and re-evaluate to
  // itself.
  for (unsigned imm8 = 0; imm8 < 256; imm8 += 7) {
    for (unsigned rot = 0; rot < 16; ++rot) {
      const word value = Operand2::Imm(static_cast<uint8_t>(imm8),
                                       static_cast<uint8_t>(rot))
                             .ImmValue();
      const std::optional<Operand2> found = Operand2::TryImm32(value);
      ASSERT_TRUE(found.has_value()) << value;
      EXPECT_EQ(found->ImmValue(), value);
    }
  }
  EXPECT_FALSE(Operand2::TryImm32(0x12345678).has_value());
  EXPECT_FALSE(Operand2::TryImm32(0x0001ff00).has_value());  // 9 significant bits
}

TEST(IsaTest, UnmodelledSpaceRejected) {
  EXPECT_FALSE(Decode(0xf0000000).has_value());  // unconditional space
  EXPECT_FALSE(Decode(0xe8fd8000).has_value());  // ldm with S bit (exception return form)
  EXPECT_FALSE(Decode(0xe9ed4000).has_value());  // stm with S bit (user bank form)
  EXPECT_FALSE(Decode(0xe8bd0000).has_value());  // ldm with empty register list
  EXPECT_FALSE(Decode(0xe7f000f0).has_value());  // udf
  EXPECT_FALSE(Decode(0xe0010312).has_value());  // register-shifted register
  EXPECT_FALSE(Decode(0xee110e10).has_value());  // mrc of cp14 (only cp15 modelled)
  EXPECT_FALSE(Decode(0xec510f10).has_value());  // ldc/stc space
}

TEST(IsaTest, Cp15RoundTrip) {
  // mrc p15, 0, r0, c2, c0, 0 (read TTBR0) => ee120f10
  Instruction mrc;
  mrc.op = Op::kMrc;
  mrc.rd = R0;
  mrc.cp_crn = 2;
  EXPECT_EQ(Encode(mrc), 0xee120f10u);
  ExpectRoundTrip(mrc);
  // mcr p15, 0, r1, c8, c7, 0 (TLBIALL) => ee081f17
  Instruction mcr;
  mcr.op = Op::kMcr;
  mcr.rd = R1;
  mcr.cp_crn = 8;
  mcr.cp_crm = 7;
  EXPECT_EQ(Encode(mcr), 0xee081f17u);
  ExpectRoundTrip(mcr);
}

TEST(IsaTest, BlockTransferRoundTrip) {
  // push {r4-r7, lr} => e92d40f0 ; pop {r4-r7, pc} => e8bd80f0
  Instruction push;
  push.op = Op::kStm;
  push.rn = SP;
  push.reg_list = 0x40f0;
  push.mem_add = false;
  push.block_pre = true;
  push.block_wback = true;
  EXPECT_EQ(Encode(push), 0xe92d40f0u);
  ExpectRoundTrip(push);

  Instruction pop;
  pop.op = Op::kLdm;
  pop.rn = SP;
  pop.reg_list = 0x80f0;
  pop.mem_add = true;
  pop.block_pre = false;
  pop.block_wback = true;
  EXPECT_EQ(Encode(pop), 0xe8bd80f0u);
  ExpectRoundTrip(pop);

  // ldmia r2, {r0, r1} => e8920003
  Instruction ldm;
  ldm.op = Op::kLdm;
  ldm.rn = R2;
  ldm.reg_list = 0x0003;
  ldm.mem_add = true;
  EXPECT_EQ(Encode(ldm), 0xe8920003u);
  ExpectRoundTrip(ldm);
}

TEST(IsaTest, FuzzedDecodeEncodeIdempotent) {
  // For random words: if it decodes, re-encoding the decode must reproduce an
  // instruction that decodes identically (decoder is a partial inverse).
  crypto::HashDrbg drbg(1234);
  int decoded_count = 0;
  for (int i = 0; i < 200000; ++i) {
    const word bits = drbg.NextWord();
    const std::optional<Instruction> d1 = Decode(bits);
    if (!d1.has_value()) {
      continue;
    }
    ++decoded_count;
    const word re = Encode(*d1);
    const std::optional<Instruction> d2 = Decode(re);
    ASSERT_TRUE(d2.has_value()) << std::hex << bits << " -> " << re;
    EXPECT_EQ(Encode(*d2), re);
  }
  EXPECT_GT(decoded_count, 1000);  // the modelled subset is a meaningful slice
}

}  // namespace
}  // namespace komodo::arm
