// Cached-vs-uncached-vs-JIT differential suite (DESIGN.md §8, §13): the
// interpreter fast path (decode cache, micro-TLB, live-page-table footprint)
// and the x64 block translator must both be architecturally invisible. Every
// test here runs the same program through a cache-enabled machine, a
// cache-disabled machine, and (where the host supports it) a JIT-enabled
// machine, and requires bit-identical final state — registers, banked state,
// memory, TLB-consistency bit, cycle count and per-step exception trace. The
// adversarial cases are the ones a broken cache or translator would get
// wrong: self-modifying code (stale decode / stale block), live page-table
// edits (stale walk) and TTBR rewrites across enclave switches (stale tags).
#include <gtest/gtest.h>

#include <vector>

#include "src/arm/assembler.h"
#include "src/arm/execute.h"
#include "src/crypto/drbg.h"
#include "src/enclave/programs.h"
#include "src/enclave/sha256_program.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/oracles.h"
#include "src/jit/jit.h"
#include "src/os/world.h"

namespace komodo::arm {
namespace {

constexpr vaddr kCodeBase = 0x2000;
constexpr vaddr kScratchBase = 0x4000;

// The field-by-field comparison lives in the fuzz library (the interp oracle
// uses the same one); here each differing field becomes its own failure.
void ExpectSameState(const MachineState& a, const MachineState& b) {
  for (const std::string& diff : fuzz::MachineDiff(a, b)) {
    ADD_FAILURE() << diff;
  }
}

// A bare machine in the normal world (flat translation), like the ISA sweeps
// use: exercises the decode cache without page tables in the way. The JIT is
// pinned off except for the explicit third machine (KOMODO_JIT defaults on).
MachineState MakeFlatMachine(const std::vector<word>& code, bool cached,
                             bool jitted = false) {
  MachineState m(8);
  m.interp.set_enabled(cached);
  m.jit.set_enabled(jitted);
  m.cpsr.mode = Mode::kMonitor;
  m.SetScrNs(true);
  m.cpsr.mode = Mode::kSupervisor;
  for (size_t i = 0; i < code.size(); ++i) {
    m.mem.Write(kCodeBase + static_cast<word>(i) * kWordSize, code[i]);
  }
  m.pc = kCodeBase;
  return m;
}

// Steps the cached and uncached machines in lockstep for `max_steps`,
// requiring the same per-step outcome (retired vs exception kind), then runs
// the JIT machine through RunUntilException under the same total step budget
// — blocks retire several steps at once, so exceptions are matched by the
// step index they retire at rather than per call. All three final states
// must be bit-identical (cycles and steps_retired included).
void RunLockstep(MachineState& cached, MachineState& uncached, MachineState& jitted,
                 int max_steps) {
  std::vector<std::optional<Exception>> trace(static_cast<size_t>(max_steps));
  for (int i = 0; i < max_steps; ++i) {
    const StepResult rc = Step(cached);
    const StepResult ru = Step(uncached);
    ASSERT_EQ(rc.status, ru.status) << "step " << i;
    if (rc.status == StepStatus::kException) {
      ASSERT_EQ(rc.exception, ru.exception) << "step " << i;
      trace[static_cast<size_t>(i)] = rc.exception;
    }
  }
  ExpectSameState(cached, uncached);

  const uint64_t base = jitted.steps_retired;
  uint64_t done = 0;
  while (done < static_cast<uint64_t>(max_steps)) {
    const std::optional<Exception> e =
        RunUntilException(jitted, static_cast<uint64_t>(max_steps) - done);
    done = jitted.steps_retired - base;
    if (e.has_value()) {
      ASSERT_GT(done, 0u);
      ASSERT_EQ(trace.at(done - 1), e) << "jit exception at retired step " << done;
    } else {
      ASSERT_EQ(done, static_cast<uint64_t>(max_steps));
    }
  }
  ExpectSameState(jitted, cached);
}

// --- Randomized flat programs ----------------------------------------------------

TEST(InterpDiffTest, RandomFlatProgramsMatchExactly) {
  // The generator lives in the fuzz library (fuzz::RandomFlatInsn) so the
  // komodo-fuzz interp oracle and this suite exercise the same space.
  for (uint64_t seed = 0; seed < 24; ++seed) {
    crypto::HashDrbg drbg(0x9e3779b9 + seed);
    std::vector<word> code;
    const size_t len = 16 + drbg.Below(48);
    for (size_t i = 0; i < len; ++i) {
      code.push_back(Encode(fuzz::RandomFlatInsn(drbg)));
    }
    code.push_back(0xef000000);  // SVC #0 terminator

    MachineState cached = MakeFlatMachine(code, /*cached=*/true);
    MachineState uncached = MakeFlatMachine(code, /*cached=*/false);
    MachineState jitted = MakeFlatMachine(code, /*cached=*/true, /*jitted=*/true);
    for (MachineState* m : {&cached, &uncached, &jitted}) {
      for (int i = 0; i < 13; ++i) {
        crypto::HashDrbg rdrbg(seed * 131 + i);
        m->r[i] = rdrbg.NextWord();
      }
      m->r[10] = kScratchBase;
      m->r[11] = kCodeBase;
    }
    RunLockstep(cached, uncached, jitted, static_cast<int>(len) + 8);
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence with seed " << seed;
    }
  }
}

TEST(InterpDiffTest, TightLoopMatchesAndHitsDecodeCache) {
  Assembler a(kCodeBase);
  a.MovImm(R0, 0);
  a.MovImm(R1, 500);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.Add(R0, R0, 3);
  a.Subs(R1, R1, 1);
  a.B(loop, Cond::kNe);
  a.Svc();
  const std::vector<word> code = a.Finish();

  MachineState cached = MakeFlatMachine(code, true);
  MachineState uncached = MakeFlatMachine(code, false);
  MachineState jitted = MakeFlatMachine(code, true, /*jitted=*/true);
  RunLockstep(cached, uncached, jitted, 1510);
  EXPECT_EQ(cached.r[0], 1500u);
  // The loop re-executes the same three instructions ~500 times; nearly every
  // fetch after the first lap must hit.
  EXPECT_GT(cached.interp.stats().decode_hits, 1400u);
  if (jit::Available()) {
    // The loop body is a single translated block, re-entered ~500 times.
    EXPECT_GT(jitted.jit.stats().block_hits, 400u);
    EXPECT_GT(jitted.jit.stats().jit_steps, 1000u);
  }
}

// --- Self-modifying code ----------------------------------------------------------

// A loop whose body instruction is overwritten (through flat memory) on every
// iteration: ADD R0,R0,#1 the first pass, ADD R0,R0,#2 afterwards. A decode
// cache that missed the store would keep replaying the stale instruction;
// the generation check forces a re-decode and both machines agree.
TEST(InterpDiffTest, SelfModifyingCodeForcesRedecode) {
  Instruction add2;
  add2.op = Op::kAdd;
  add2.rd = R0;
  add2.rn = R0;
  add2.op2 = Operand2::Imm(2);

  // Two-pass assembly: the target's address depends only on the (fixed)
  // prologue, so assemble once with a placeholder to learn it, then for real.
  vaddr target_addr = 0;
  std::vector<word> code;
  for (int pass = 0; pass < 2; ++pass) {
    Assembler a(kCodeBase);
    a.MovImm(R0, 0);
    a.MovImm(R2, 0);             // iteration counter
    a.MovImm(R4, Encode(add2));  // replacement encoding
    Assembler::Label loop = a.NewLabel();
    a.Bind(loop);
    const vaddr here = a.CurrentAddr();
    a.Add(R0, R0, 1);  // the instruction that gets rewritten
    a.MovImm(R3, target_addr);
    a.Str(R4, R3, 0);  // overwrite the ADD above
    a.Add(R2, R2, 1);
    a.Cmp(R2, 3);
    a.B(loop, Cond::kNe);
    a.Svc();
    code = a.Finish();
    target_addr = here;
  }
  MachineState cached = MakeFlatMachine(code, true);
  MachineState uncached = MakeFlatMachine(code, false);
  MachineState jitted = MakeFlatMachine(code, true, /*jitted=*/true);
  RunLockstep(cached, uncached, jitted, 200);
  // 1 on the first pass, 2 on the remaining two: a stale decode would give 3.
  EXPECT_EQ(cached.r[0], 5u);
  EXPECT_EQ(uncached.r[0], 5u);
  EXPECT_EQ(jitted.r[0], 5u);
}

// --- Enclave workloads (page tables + monitor in the loop) -----------------------

// Runs `fn` against a cached, an uncached and a JIT-enabled world and
// requires identical SMC results and machine state. On hosts without JIT
// support the third world degenerates into a second cached interpreter.
template <typename Fn>
void DiffWorlds(Fn fn) {
  os::World cached{64};
  os::World uncached{64};
  os::World jitted{64};
  cached.machine.interp.set_enabled(true);
  cached.machine.jit.set_enabled(false);
  uncached.machine.interp.set_enabled(false);
  uncached.machine.jit.set_enabled(false);
  jitted.machine.interp.set_enabled(true);
  jitted.machine.jit.set_enabled(true);
  fn(cached);
  fn(uncached);
  fn(jitted);
  ExpectSameState(cached.machine, uncached.machine);
  ExpectSameState(jitted.machine, cached.machine);
}

TEST(InterpDiffTest, Sha256EnclaveMatches) {
  DiffWorlds([](os::World& w) {
    os::EnclaveHandle e;
    auto built_e = w.os.NewEnclave().Code(enclave::Sha256Program()).SharedPage().Build();
    ASSERT_TRUE(built_e.ok());
    e = *std::move(built_e);
    std::vector<uint8_t> msg(300);
    for (size_t i = 0; i < msg.size(); ++i) {
      msg[i] = static_cast<uint8_t>(i * 7);
    }
    const word nblocks = enclave::StageSha256Message(w.os, e.shared_insecure_pgnr, msg);
    const os::EnterResult r = w.os.Enter(e.thread, nblocks);
    ASSERT_TRUE(r.exited());
  });
}

// Enter enclave A, then B, then A again: every Enter rewrites TTBR0, so a
// micro-TLB keyed only on virtual page would serve A's translations to B.
TEST(InterpDiffTest, TtbrRewriteAcrossEnclaveSwitches) {
  DiffWorlds([](os::World& w) {
    os::EnclaveHandle a, b;
    auto built_a = w.os.NewEnclave().Code(enclave::CounterProgram()).Build();
    ASSERT_TRUE(built_a.ok());
    a = *std::move(built_a);
    auto built_b = w.os.NewEnclave().Code(enclave::AddTwoProgram()).Build();
    ASSERT_TRUE(built_b.ok());
    b = *std::move(built_b);
    os::EnterResult r = w.os.Enter(a.thread, 5);
    ASSERT_TRUE(r.exited());
    EXPECT_EQ(r.payload, 5u);
    r = w.os.Enter(b.thread, 20, 22);
    ASSERT_TRUE(r.exited());
    EXPECT_EQ(r.payload, 42u);
    r = w.os.Enter(a.thread, 7);  // counter persists in A's data page
    ASSERT_TRUE(r.exited());
    EXPECT_EQ(r.payload, 12u);
  });
}

TEST(InterpDiffTest, DynamicMappingEnclaveMatches) {
  DiffWorlds([](os::World& w) {
    // MapData edits the live page table from monitor C++ mid-run; the
    // uncached path re-walks, the cached path must notice the generation
    // bump on the L2 page.
    os::EnclaveHandle e;
    Assembler a(os::kEnclaveCodeVa);
    a.Mov(R7, R0);
    a.MovImm(R0, kSvcMapData);
    a.Mov(R1, R7);
    a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
    a.Svc();
    a.Mov(R4, R0);
    a.MovImm(R5, 0x30000);
    a.MovImm(R6, 0xbeef);
    a.Str(R6, R5, 0);
    a.Ldr(R1, R5, 0);
    a.Add(R1, R1, R4);
    a.MovImm(R0, kSvcExit);
    a.Svc();
    auto built_e = w.os.NewEnclave().Code(a.Finish()).Build();
    ASSERT_TRUE(built_e.ok());
    e = *std::move(built_e);
    const PageNr spare = w.os.AllocSecurePage();
    ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
    const os::EnterResult r = w.os.Enter(e.thread, spare);
    ASSERT_TRUE(r.exited());
    EXPECT_EQ(r.payload, 0xbeefu);
  });
}

}  // namespace
}  // namespace komodo::arm
