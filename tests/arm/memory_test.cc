#include "src/arm/memory.h"

#include <gtest/gtest.h>

namespace komodo::arm {
namespace {

TEST(MemoryTest, RegionBoundaries) {
  PhysMemory mem(256);
  EXPECT_EQ(mem.RegionOf(kInsecureBase), MemRegion::kInsecure);
  EXPECT_EQ(mem.RegionOf(kInsecureBase + kInsecureSize - 4), MemRegion::kInsecure);
  EXPECT_EQ(mem.RegionOf(kInsecureBase + kInsecureSize), MemRegion::kUnmapped);
  EXPECT_EQ(mem.RegionOf(kMonitorBase), MemRegion::kMonitor);
  EXPECT_EQ(mem.RegionOf(kMonitorBase + kMonitorSize - 4), MemRegion::kMonitor);
  EXPECT_EQ(mem.RegionOf(kSecurePagesBase), MemRegion::kSecurePages);
  EXPECT_EQ(mem.RegionOf(kSecurePagesBase + 256 * kPageSize - 4), MemRegion::kSecurePages);
  EXPECT_EQ(mem.RegionOf(kSecurePagesBase + 256 * kPageSize), MemRegion::kUnmapped);
}

TEST(MemoryTest, SecureRegionSizeTracksConfiguredPages) {
  PhysMemory small(8);
  EXPECT_EQ(small.RegionOf(kSecurePagesBase + 8 * kPageSize - 4), MemRegion::kSecurePages);
  EXPECT_EQ(small.RegionOf(kSecurePagesBase + 8 * kPageSize), MemRegion::kUnmapped);
}

TEST(MemoryTest, ReadWriteRoundTripAcrossRegions) {
  PhysMemory mem(16);
  mem.Write(kInsecureBase + 0x100, 0x11111111);
  mem.Write(kMonitorBase + 0x100, 0x22222222);
  mem.Write(kSecurePagesBase + 0x100, 0x33333333);
  EXPECT_EQ(mem.Read(kInsecureBase + 0x100), 0x11111111u);
  EXPECT_EQ(mem.Read(kMonitorBase + 0x100), 0x22222222u);
  EXPECT_EQ(mem.Read(kSecurePagesBase + 0x100), 0x33333333u);
}

TEST(MemoryTest, PageHelpers) {
  PhysMemory mem(16);
  word page[kWordsPerPage];
  for (word i = 0; i < kWordsPerPage; ++i) {
    page[i] = i * 3 + 1;
  }
  mem.WritePage(kSecurePagesBase, page);
  word readback[kWordsPerPage];
  mem.ReadPage(kSecurePagesBase, readback);
  for (word i = 0; i < kWordsPerPage; ++i) {
    ASSERT_EQ(readback[i], i * 3 + 1);
  }
  mem.ZeroPage(kSecurePagesBase);
  mem.ReadPage(kSecurePagesBase, readback);
  for (word i = 0; i < kWordsPerPage; ++i) {
    ASSERT_EQ(readback[i], 0u);
  }
}

TEST(MemoryTest, PageBytesLittleEndian) {
  PhysMemory mem(16);
  mem.Write(kSecurePagesBase, 0x04030201);
  uint8_t bytes[kPageSize];
  mem.ReadPageBytes(kSecurePagesBase, bytes);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[1], 2);
  EXPECT_EQ(bytes[2], 3);
  EXPECT_EQ(bytes[3], 4);
}

TEST(MemoryTest, InsecurePagePredicateRejectsMonitorAndSecure) {
  PhysMemory mem(16);
  EXPECT_TRUE(IsInsecurePageAddr(mem, 0x10000));
  EXPECT_FALSE(IsInsecurePageAddr(mem, kMonitorBase));
  EXPECT_FALSE(IsInsecurePageAddr(mem, kSecurePagesBase));
  EXPECT_FALSE(IsInsecurePageAddr(mem, kMonitorBase + kPageSize));
  EXPECT_FALSE(IsInsecurePageAddr(mem, 0x10001));  // unaligned
  EXPECT_FALSE(IsInsecurePageAddr(mem, 0xf000'0000));  // unmapped
}

TEST(MemoryTest, EqualityDetectsSingleWordChange) {
  PhysMemory a(8);
  PhysMemory b(8);
  EXPECT_EQ(a, b);
  b.Write(kSecurePagesBase + 8, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace komodo::arm
