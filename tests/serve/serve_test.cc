// komodo-serve (DESIGN.md §14): session lifecycle, LRU eviction + rebuild
// under a secure-page budget, bounded-queue backpressure, typed timeouts and
// batched scheduling over one Komodo world.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/enclave/programs.h"
#include "src/obs/json.h"
#include "src/serve/server.h"

namespace komodo::serve {
namespace {

Server::Config SmallConfig() {
  Server::Config c;
  c.nsecure_pages = 64;
  c.secure_page_budget = 64;
  c.queue_capacity = 8;
  return c;
}

TEST(ServeCatalogTest, DefaultCatalogContents) {
  const ProgramCatalog catalog = DefaultCatalog();
  ASSERT_NE(catalog.Find("counter"), nullptr);
  ASSERT_NE(catalog.Find("echo"), nullptr);
  ASSERT_NE(catalog.Find("spin"), nullptr);
  EXPECT_TRUE(catalog.Find("counter")->batch_abi);
  EXPECT_FALSE(catalog.Find("spin")->batch_abi);
  EXPECT_EQ(catalog.Find("no-such-program"), nullptr);
}

TEST(ServeTest, SessionLifecycle) {
  Server server(DefaultCatalog(), SmallConfig());
  EXPECT_EQ(server.CreateSession("no-such-program").error(), ServeErr::kUnknownProgram);

  auto sid = server.CreateSession("echo");
  ASSERT_TRUE(sid.ok());
  auto rid = server.Submit(*sid, 21);
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(server.Poll(*rid), nullptr);  // not pumped yet

  auto r = server.Wait(*rid);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ok);
  EXPECT_EQ(r->value, 43u);  // 2*21+1
  EXPECT_GT(r->latency_cycles, 0u);

  // Poll after completion sees the same result.
  const RequestResult* polled = server.Poll(*rid);
  ASSERT_NE(polled, nullptr);
  EXPECT_EQ(polled->value, 43u);

  auto destroyed = server.DestroySession(*sid);
  ASSERT_TRUE(destroyed.ok());
  EXPECT_EQ(*destroyed, 0u);  // no pending requests dropped
  EXPECT_EQ(server.Submit(*sid, 1).error(), ServeErr::kUnknownSession);
  EXPECT_EQ(server.DestroySession(*sid).error(), ServeErr::kUnknownSession);
  EXPECT_EQ(server.resident_pages(), 0u);
}

TEST(ServeTest, CounterStatePersistsAcrossRequestsWhileResident) {
  Server server(DefaultCatalog(), SmallConfig());
  const SessionId sid = *server.CreateSession("counter");
  EXPECT_EQ(server.Wait(*server.Submit(sid, 5))->value, 5u);
  EXPECT_EQ(server.Wait(*server.Submit(sid, 7))->value, 12u);
  EXPECT_EQ(server.Wait(*server.Submit(sid, 1))->value, 13u);
}

TEST(ServeTest, EvictionRebuildsFromMeasuredInitialState) {
  // Budget fits exactly two resident enclaves (7 pages each); a third session
  // forces the LRU one out. The counter is the witness: an evicted session's
  // counter restarts from zero after the rebuild, and its shared page (the
  // client-visible buffer) is preserved.
  Server::Config c = SmallConfig();
  c.secure_page_budget = 15;
  Server server(DefaultCatalog(), c);
  const SessionId s1 = *server.CreateSession("counter");
  const SessionId s2 = *server.CreateSession("counter");
  const SessionId s3 = *server.CreateSession("counter");

  EXPECT_EQ(server.Wait(*server.Submit(s1, 100))->value, 100u);
  EXPECT_EQ(server.Wait(*server.Submit(s2, 200))->value, 200u);
  EXPECT_TRUE(server.session_built(s1));
  EXPECT_TRUE(server.session_built(s2));
  EXPECT_EQ(server.stats().evictions, 0u);

  // s3 needs pages; s1 is least recently used and must be evicted.
  EXPECT_EQ(server.Wait(*server.Submit(s3, 300))->value, 300u);
  EXPECT_FALSE(server.session_built(s1));
  EXPECT_TRUE(server.session_built(s2));
  EXPECT_EQ(server.stats().evictions, 1u);

  // Resubmitting to s1 rebuilds it; the counter restarted from the measured
  // initial state (Komodo has no sealed storage — eviction loses state).
  EXPECT_EQ(server.Wait(*server.Submit(s1, 4))->value, 4u);
  EXPECT_EQ(server.stats().rebuilds, 1u);
  EXPECT_EQ(server.stats().evictions, 2u);  // s2 went to make room
  // s2 was untouched by s1's rebuild-eviction dance only if it was evicted;
  // its own resubmit rebuilds again and also restarts.
  EXPECT_EQ(server.Wait(*server.Submit(s2, 9))->value, 9u);
  EXPECT_LE(server.resident_pages(), c.secure_page_budget);
}

TEST(ServeTest, BudgetTooSmallForOneEnclaveFailsTyped) {
  Server::Config c = SmallConfig();
  c.secure_page_budget = 6;  // an enclave needs 7
  Server server(DefaultCatalog(), c);
  const SessionId sid = *server.CreateSession("echo");
  auto r = server.Wait(*server.Submit(sid, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ok);
  EXPECT_EQ(r->failure, RequestFailure::kBuildFailed);
}

TEST(ServeTest, QueueFullBackpressure) {
  Server::Config c = SmallConfig();
  c.queue_capacity = 3;
  Server server(DefaultCatalog(), c);
  const SessionId sid = *server.CreateSession("echo");
  ASSERT_TRUE(server.Submit(sid, 1).ok());
  ASSERT_TRUE(server.Submit(sid, 2).ok());
  ASSERT_TRUE(server.Submit(sid, 3).ok());
  EXPECT_EQ(server.Submit(sid, 4).error(), ServeErr::kQueueFull);
  EXPECT_EQ(server.stats().queue_full_rejections, 1u);
  // Draining frees capacity again.
  server.Drain();
  EXPECT_EQ(server.queue_depth(), 0u);
  ASSERT_TRUE(server.Submit(sid, 4).ok());
  server.Drain();
  EXPECT_EQ(server.stats().requests_completed, 4u);
}

TEST(ServeTest, TimeoutFailsTypedAndDestroysTheWedgedEnclave) {
  Server::Config c = SmallConfig();
  c.steps_per_slice = 500;  // tiny slices so the spin program times out fast
  c.timeout_slices = 3;
  Server server(DefaultCatalog(), c);
  const SessionId spin = *server.CreateSession("spin");
  const SessionId echo = *server.CreateSession("echo");

  auto r = server.Wait(*server.Submit(spin, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ok);
  EXPECT_EQ(r->failure, RequestFailure::kTimeout);
  EXPECT_FALSE(server.session_built(spin));  // wedged enclave torn down
  // Exactly timeout_slices world switches were spent on it.
  EXPECT_EQ(server.stats().world_switches, 3u);

  // The server keeps serving other sessions afterwards...
  EXPECT_EQ(server.Wait(*server.Submit(echo, 10))->value, 21u);
  // ...and the timed-out session itself is rebuilt on its next request.
  auto r2 = server.Wait(*server.Submit(spin, 0));
  EXPECT_EQ(r2->failure, RequestFailure::kTimeout);
  EXPECT_EQ(server.stats().rebuilds, 1u);
}

// Boundary pin for the slice accounting: the initial Enter consumes the
// first slice, so timeout_slices=1 means one Enter, zero Resumes, one world
// switch — not "one resume after the enter".
TEST(ServeTest, TimeoutSlicesOfOneMeansEnterOnlyNoResume) {
  Server::Config c = SmallConfig();
  c.steps_per_slice = 500;
  c.timeout_slices = 1;
  Server server(DefaultCatalog(), c);
  const SessionId spin = *server.CreateSession("spin");

  auto r = server.Wait(*server.Submit(spin, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ok);
  EXPECT_EQ(r->failure, RequestFailure::kTimeout);
  EXPECT_EQ(server.stats().enters, 1u);
  EXPECT_EQ(server.stats().resumes, 0u);
  EXPECT_EQ(server.stats().world_switches, 1u);
  EXPECT_FALSE(server.session_built(spin));  // wedged enclave torn down
}

TEST(ServeTest, BatchingCoalescesSameSessionRequests) {
  Server server(DefaultCatalog(), SmallConfig());
  const SessionId sid = *server.CreateSession("counter");
  std::vector<RequestId> rids;
  for (word i = 1; i <= 5; ++i) {
    rids.push_back(*server.Submit(sid, i));
  }
  server.Drain();
  // One Enter serviced all five requests (per-request running counter).
  EXPECT_EQ(server.stats().enters, 1u);
  EXPECT_EQ(server.stats().batches, 1u);
  word expect = 0;
  for (word i = 0; i < 5; ++i) {
    expect += i + 1;
    EXPECT_EQ(server.Poll(rids[i])->value, expect);
  }
}

TEST(ServeTest, BatchingOffUsesOneWorldSwitchPerRequest) {
  Server::Config c = SmallConfig();
  c.batching = false;
  Server server(DefaultCatalog(), c);
  const SessionId sid = *server.CreateSession("counter");
  for (word i = 1; i <= 5; ++i) {
    ASSERT_TRUE(server.Submit(sid, i).ok());
  }
  server.Drain();
  EXPECT_EQ(server.stats().enters, 5u);
  EXPECT_EQ(server.stats().world_switches, 5u);
}

TEST(ServeTest, BatchInterleavedSessionsStayFifoPerSession) {
  // Requests from two sessions interleave; coalescing extracts each
  // session's requests in order, so results stay correct.
  Server server(DefaultCatalog(), SmallConfig());
  const SessionId a = *server.CreateSession("counter");
  const SessionId b = *server.CreateSession("counter");
  const RequestId a1 = *server.Submit(a, 1);
  const RequestId b1 = *server.Submit(b, 10);
  const RequestId a2 = *server.Submit(a, 2);
  const RequestId b2 = *server.Submit(b, 20);
  server.Drain();
  EXPECT_EQ(server.stats().enters, 2u);  // one batch per session
  EXPECT_EQ(server.Poll(a1)->value, 1u);
  EXPECT_EQ(server.Poll(a2)->value, 3u);
  EXPECT_EQ(server.Poll(b1)->value, 10u);
  EXPECT_EQ(server.Poll(b2)->value, 30u);
}

TEST(ServeTest, DestroySessionFailsQueuedRequests) {
  Server server(DefaultCatalog(), SmallConfig());
  const SessionId sid = *server.CreateSession("echo");
  const RequestId rid = *server.Submit(sid, 1);
  auto destroyed = server.DestroySession(sid);
  ASSERT_TRUE(destroyed.ok());
  EXPECT_EQ(*destroyed, 1u);
  const RequestResult* r = server.Poll(rid);
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->ok);
  EXPECT_EQ(r->failure, RequestFailure::kSessionDestroyed);
  EXPECT_EQ(server.Wait(9999).error(), ServeErr::kUnknownRequest);
}

TEST(ServeTest, MetricsDocumentValidatesStructurally) {
  Server server(DefaultCatalog(), SmallConfig());
  const SessionId sid = *server.CreateSession("echo");
  server.Wait(*server.Submit(sid, 3));
  const std::string doc = server.ExportMetrics();
  const auto parsed = obs::ParseJson(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  const obs::JsonValue* serve = parsed->Find("serve");
  ASSERT_NE(serve, nullptr);
  EXPECT_EQ(parsed->Find("schema")->str, "komodo-metrics-v1");
  EXPECT_EQ(serve->Find("requests_completed")->number, 1.0);
  const obs::JsonValue* hist = serve->Find("request_latency_cycles");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 1.0);
}

TEST(ServeTest, DeterministicSeededMultiClientSmoke) {
  // A deterministic load: seeded xorshift picks sessions/args/occasional
  // destroys. The run must be reproducible world-to-world: same seed, same
  // final stats and same per-request results.
  auto run = [](uint64_t seed) {
    Server::Config c;
    c.nsecure_pages = 128;
    c.secure_page_budget = 40;  // 5 resident enclaves -> eviction active
    c.queue_capacity = 16;
    Server server(DefaultCatalog(), c);
    std::vector<SessionId> sids;
    const char* programs[] = {"counter", "echo", "counter", "echo", "counter",
                              "echo", "counter", "echo"};
    for (const char* p : programs) {
      sids.push_back(*server.CreateSession(p));
    }
    uint64_t x = seed;
    auto rnd = [&x]() {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    std::map<RequestId, word> results;
    std::vector<RequestId> inflight;
    for (int i = 0; i < 200; ++i) {
      const SessionId sid = sids[rnd() % sids.size()];
      auto rid = server.Submit(sid, static_cast<word>(rnd() % 1000));
      if (rid.ok()) {
        inflight.push_back(*rid);
      } else {
        server.Drain();  // backpressure: drain and retry next iteration
      }
      if (i % 37 == 0) {
        server.Drain();
      }
    }
    server.Drain();
    for (RequestId rid : inflight) {
      const RequestResult* r = server.Poll(rid);
      EXPECT_NE(r, nullptr);
      if (r != nullptr) {
        results[rid] = r->ok ? r->value : ~0u;
      }
    }
    const ServerStats& st = server.stats();
    EXPECT_GT(st.evictions, 0u);  // the budget was actually exercised
    EXPECT_EQ(st.requests_failed, 0u);
    return std::make_tuple(results, st.world_switches, st.evictions, st.rebuilds,
                           st.requests_completed);
  };
  const auto a = run(0xfeedbeefcafeull);
  const auto b = run(0xfeedbeefcafeull);
  EXPECT_EQ(a, b);
  // Batched scheduling must beat one-world-switch-per-request.
  EXPECT_LT(std::get<1>(a), std::get<4>(a));
}

}  // namespace
}  // namespace komodo::serve
