// Tests for the fuzzing subsystem itself (DESIGN.md §10): trace round-trip,
// generator and campaign determinism, clean-monitor campaigns, and the
// shrinker's contract that a minimized witness (a) still fails, (b) is small,
// and (c) passes once its fault injection is disarmed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fuzz/campaign.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/inject.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/shrink.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {
namespace {

TEST(TraceFormat, RoundTripsEveryOpKind) {
  Trace t;
  t.oracle = "noninterference";
  t.seed = 0xdeadbeefcafe1234ull;
  t.pages = 64;
  t.inject = "skip-scratch-clear";
  t.victim = "spin-scratch";
  t.secrets[0] = 0x11223344;
  t.secrets[1] = 0x55667788;
  t.ops.push_back({OpKind::kPoke, {3, 17, 0xe3a01005, 0, 0}});
  t.ops.push_back({OpKind::kSmc, {10, 0, 1, 2, 3}});
  t.ops.push_back({OpKind::kSvc, {11, 0x8000, 2, 3, 0}});
  t.ops.push_back({OpKind::kEnter, {0, 7, 8, 9, 0}});
  t.ops.push_back({OpKind::kResume, {0, 0, 0, 0, 0}});

  const auto parsed = Trace::Parse(t.Format());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Format(), t.Format());
  EXPECT_EQ(parsed->Hash(), t.Hash());
  EXPECT_EQ(parsed->ops.size(), t.ops.size());
  EXPECT_EQ(parsed->CallCount(), 4u);  // everything but the poke
}

TEST(TraceFormat, SkipsCommentsAndRejectsGarbage) {
  const std::string text =
      "# a committed witness carries a comment header\n"
      "\n"
      "komodo-fuzz-trace v1\n"
      "oracle invariants\n"
      "seed 7\n"
      "# comments inside the body too\n"
      "smc 1 0x0 0x0 0x0 0x0\n"
      "end\n";
  const auto t = Trace::Parse(text);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->oracle, "invariants");
  ASSERT_EQ(t->ops.size(), 1u);

  EXPECT_FALSE(Trace::Parse("not a trace\n").has_value());
  EXPECT_FALSE(Trace::Parse("komodo-fuzz-trace v1\noracle x\nwat 1 2\nend\n").has_value());
  // A trace without the end marker is truncated, not replayable.
  EXPECT_FALSE(Trace::Parse("komodo-fuzz-trace v1\noracle x\nseed 1\n").has_value());
}

TEST(Generator, SameSeedSameTrace) {
  for (const std::string& oracle : OracleNames()) {
    const Trace a = GenerateTrace(oracle, 99, 40);
    const Trace b = GenerateTrace(oracle, 99, 40);
    EXPECT_EQ(a.Hash(), b.Hash()) << oracle;
    const Trace c = GenerateTrace(oracle, 100, 40);
    EXPECT_NE(a.Hash(), c.Hash()) << oracle;
  }
}

TEST(Generator, VictimCatalogAssembles) {
  for (const char* name : kVictimNames) {
    EXPECT_FALSE(VictimProgram(name).empty()) << name;
  }
  EXPECT_TRUE(VictimProgram("no-such-victim").empty());
  EXPECT_TRUE(VictimWantsWritableCode("self-modify"));
  EXPECT_FALSE(VictimWantsWritableCode("spin-scratch"));
}

TEST(Campaign, SameSeedSameHash) {
  CampaignOptions opts;
  opts.seed = 1234;
  opts.calls = 300;
  opts.trace_len = 60;
  const CampaignResult a = RunCampaign(opts);
  const CampaignResult b = RunCampaign(opts);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_FALSE(a.failed);
  EXPECT_FALSE(b.failed);
  ASSERT_EQ(a.stats.size(), OracleNames().size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].calls, b.stats[i].calls) << a.stats[i].oracle;
    EXPECT_GE(a.stats[i].calls, opts.calls) << a.stats[i].oracle;
  }
}

TEST(Campaign, CleanMonitorSurvivesEveryOracle) {
  // A per-oracle smoke run of the unbroken monitor; any failure here is a
  // real divergence and should be shrunk + committed to tests/corpus/.
  for (const std::string& oracle : OracleNames()) {
    CampaignOptions opts;
    opts.seed = 20260807;
    opts.calls = 200;
    opts.trace_len = 50;
    opts.oracles = {oracle};
    const CampaignResult r = RunCampaign(opts);
    EXPECT_FALSE(r.failed) << oracle << ": " << r.verdict.detail << "\n"
                           << r.original.Format();
  }
}

// For each injection: pad its corpus-style witness with noise, confirm the
// noisy trace fails, shrink it, and check the shrinker's three guarantees.
struct ShrinkCase {
  const char* inject;
  Trace noisy;
};

Trace NoisyFrom(const std::string& oracle, const std::string& inject, const std::string& victim,
                std::vector<TraceOp> core) {
  Trace t;
  t.oracle = oracle;
  t.seed = 4242;
  t.pages = victim.empty() ? 24 : 64;
  t.inject = inject;
  t.victim = victim;
  t.secrets[0] = 0x1111;
  t.secrets[1] = 0x2222;
  // Harmless noise around the core: insecure pokes and GetPhysPages queries.
  t.ops.push_back({OpKind::kPoke, {2, 5, 0xe3a00001, 0, 0}});
  t.ops.push_back({OpKind::kSmc, {2, 0, 0, 0, 0}});
  for (const TraceOp& op : core) {
    t.ops.push_back(op);
  }
  t.ops.push_back({OpKind::kSmc, {2, 0, 0, 0, 0}});
  t.ops.push_back({OpKind::kPoke, {3, 9, 0xe3a00002, 0, 0}});
  return t;
}

TEST(Shrinker, MinimizedWitnessStillFailsAndIsInjectionCaused) {
  std::vector<ShrinkCase> cases;
  cases.push_back({"initaddrspace-alias",
                   NoisyFrom("refinement", "initaddrspace-alias", "",
                             {{OpKind::kSmc, {10, 14, 14, 0, 0}}})});
  cases.push_back({"remove-skip-refcount",
                   NoisyFrom("invariants", "remove-skip-refcount", "",
                             {{OpKind::kSvc, {0, 0, 0, 0, 0}},
                              {OpKind::kSmc, {20, 0, 0, 0, 0}}})});
  cases.push_back({"skip-scratch-clear",
                   NoisyFrom("noninterference", "skip-scratch-clear", "spin-scratch",
                             {{OpKind::kEnter, {0, 0, 0, 0, 0}}})});
  cases.push_back({"stale-decode", NoisyFrom("interp", "stale-decode", "self-modify",
                                             {{OpKind::kEnter, {0, 0, 0, 0, 0}}})});

  for (ShrinkCase& c : cases) {
    SCOPED_TRACE(c.inject);
    const Verdict noisy = RunTrace(c.noisy);
    ASSERT_TRUE(noisy.failed) << "noisy trace must fail: " << c.noisy.Format();

    ShrinkStats stats;
    const Trace min = ShrinkTrace(c.noisy, [](const Trace& t) { return RunTrace(t); }, &stats);
    EXPECT_LT(min.ops.size(), c.noisy.ops.size());
    EXPECT_LE(min.CallCount(), 10u);  // the acceptance bound
    EXPECT_TRUE(RunTrace(min).failed) << min.Format();

    // Same witness, injection disarmed: the clean monitor must pass it.
    Trace clean = min;
    clean.inject.clear();
    EXPECT_FALSE(RunTrace(clean).failed) << clean.Format();
  }
}

TEST(Shrinker, NonFailingTraceReturnedUnchanged) {
  Trace t;
  t.oracle = "invariants";
  t.seed = 1;
  t.ops.push_back({OpKind::kSmc, {2, 0, 0, 0, 0}});
  ShrinkStats stats;
  const Trace out = ShrinkTrace(t, [](const Trace& tr) { return RunTrace(tr); }, &stats);
  EXPECT_EQ(out.Format(), t.Format());
  EXPECT_EQ(stats.evaluations, 1u);
}

TEST(Injection, RegistryRoundTrip) {
  for (const char* name : kInjectNames) {
    EXPECT_TRUE(SetInjectByName(name)) << name;
  }
  EXPECT_TRUE(SetInjectByName("none"));
  EXPECT_FALSE(SetInjectByName("no-such-injection"));
  // Flags must all be off again for the rest of the process.
  EXPECT_FALSE(Inject().initaddrspace_alias);
  EXPECT_FALSE(Inject().remove_skip_refcount);
  EXPECT_FALSE(Inject().skip_scratch_clear);
  EXPECT_FALSE(Inject().stale_decode);
}

}  // namespace
}  // namespace komodo::fuzz
