// Pins the evolve-mode contracts (DESIGN.md §15): coverage-guided corpus
// evolution is byte-deterministic at any --jobs count, every corpus entry is
// a replayable `komodo-fuzz-trace v1` that passes its oracle, and guidance
// actually pays — at a pinned equal budget evolve catches an injected fault
// the blind stream misses.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/fuzz/campaign.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/coverage.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/mutate.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {
namespace {

CampaignOptions EvolveOptions() {
  CampaignOptions opts;
  opts.seed = 20260807;
  opts.calls = 150;
  opts.trace_len = 30;
  opts.shards = 4;
  opts.mode = CampaignMode::kEvolve;
  opts.rounds = 3;
  opts.max_corpus = 32;
  return opts;
}

// The whole evolve result — v3 hash, coverage curve, per-oracle corpus
// digests — is byte-identical whether one thread runs all shards or eight
// race for them. This is the determinism pin everything else (CI hash gates,
// the bench comparison) stands on.
TEST(Evolve, JobsInvariantHashCurveAndCorpus) {
  CampaignOptions serial = EvolveOptions();
  serial.jobs = 1;
  CampaignOptions parallel = EvolveOptions();
  parallel.jobs = 8;

  const CampaignResult a = RunCampaign(serial);
  const CampaignResult b = RunCampaign(parallel);

  EXPECT_FALSE(a.failed) << a.verdict.detail;
  EXPECT_FALSE(b.failed) << b.verdict.detail;
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.coverage_keys, b.coverage_keys);
  EXPECT_EQ(a.coverage_curve, b.coverage_curve);
  ASSERT_EQ(a.corpora.size(), b.corpora.size());
  for (size_t i = 0; i < a.corpora.size(); ++i) {
    EXPECT_EQ(a.corpora[i].Digest(), b.corpora[i].Digest());
  }
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].calls, b.stats[i].calls);
    EXPECT_EQ(a.stats[i].coverage_keys, b.stats[i].coverage_keys);
    EXPECT_EQ(a.stats[i].corpus_entries, b.stats[i].corpus_entries);
  }
}

// The v3 hash actually covers the evolve knobs: a different round count is a
// different campaign.
TEST(Evolve, RoundsAreInTheHashDomain) {
  CampaignOptions three = EvolveOptions();
  CampaignOptions four = EvolveOptions();
  four.rounds = 4;
  EXPECT_NE(RunCampaign(three).hash, RunCampaign(four).hash);
}

// The growth curve is the cumulative distinct-key count: nondecreasing, one
// entry per round, ending at the campaign total.
TEST(Evolve, CoverageCurveIsCumulative) {
  const CampaignResult r = RunCampaign(EvolveOptions());
  ASSERT_EQ(r.coverage_curve.size(), 3u);
  for (size_t i = 1; i < r.coverage_curve.size(); ++i) {
    EXPECT_GE(r.coverage_curve[i], r.coverage_curve[i - 1]);
  }
  EXPECT_EQ(r.coverage_curve.back(), r.coverage_keys);
  uint64_t per_oracle = 0;
  for (const OracleStats& st : r.stats) {
    per_oracle += st.coverage_keys;
    EXPECT_LE(st.corpus_entries, 32u);
  }
  EXPECT_EQ(per_oracle, r.coverage_keys);
}

// Every admitted corpus entry replays clean (it was admitted on coverage
// gain, not failure), and survives a SaveDir/LoadDir round trip with its
// hash intact — the "replayable komodo-fuzz-trace v1" guarantee.
TEST(Evolve, CorpusEntriesReplayCleanAndRoundTrip) {
  const CampaignResult r = RunCampaign(EvolveOptions());
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "komodo-evolve-corpus-test";
  std::filesystem::remove_all(dir);

  size_t total = 0;
  ASSERT_EQ(r.corpora.size(), r.stats.size());
  for (size_t i = 0; i < r.corpora.size(); ++i) {
    const Corpus& c = r.corpora[i];
    ASSERT_GT(c.size(), 0u) << r.stats[i].oracle << " admitted nothing";
    const std::string sub = (dir / r.stats[i].oracle).string();
    ASSERT_TRUE(c.SaveDir(sub));

    const std::vector<Trace> reloaded = Corpus::LoadDir(sub);
    ASSERT_EQ(reloaded.size(), c.size());
    for (size_t k = 0; k < c.size(); ++k) {
      SCOPED_TRACE(c.entries()[k].hash);
      EXPECT_EQ(reloaded[k].Hash(), c.entries()[k].hash);
      const Verdict v = RunTrace(reloaded[k], /*apply_inject=*/true);
      EXPECT_FALSE(v.failed) << v.detail;
      ++total;
    }
  }
  EXPECT_GT(total, 0u);
  std::filesystem::remove_all(dir);
}

// Guidance pays: at this pinned seed and budget the blind stream runs clean
// while evolve's deep extensions reach the refcount state the injection
// corrupts. (Determinism makes the pin stable; if a generator or coverage
// change legitimately moves the frontier, re-pin with a config where evolve
// still wins — the bench gate enforces the aggregate version of this claim.)
TEST(Evolve, FindsInjectedFaultBlindMissesAtEqualBudget) {
  CampaignOptions base;
  base.seed = 11;
  base.calls = 60;
  base.trace_len = 30;
  base.shards = 4;
  base.oracles = {"refinement"};
  base.inject = "remove-skip-refcount";
  base.shrink = false;

  CampaignOptions blind = base;
  const CampaignResult b = RunCampaign(blind);
  EXPECT_FALSE(b.failed) << "blind found it too — pick a smaller pinned budget";

  CampaignOptions evolve = base;
  evolve.mode = CampaignMode::kEvolve;
  evolve.rounds = 3;
  evolve.max_corpus = 32;
  const CampaignResult e = RunCampaign(evolve);
  EXPECT_TRUE(e.failed) << "evolve no longer finds the injected fault";
  EXPECT_EQ(e.verdict.failed, true);
}

// MutateTrace is a pure function of (parents, seed, cap): two calls agree
// byte for byte, and a different seed diverges.
TEST(Evolve, MutationIsDeterministic) {
  const Trace p1 = GenerateTrace("refinement", 5, 20);
  const Trace p2 = GenerateTrace("refinement", 9, 20);
  const std::vector<const Trace*> parents = {&p1, &p2};

  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const Trace a = MutateTrace(parents, seed, 60);
    const Trace b = MutateTrace(parents, seed, 60);
    EXPECT_EQ(a.Format(), b.Format());
    EXPECT_LE(a.ops.size(), 60u);
  }
  EXPECT_NE(MutateTrace(parents, 1, 60).Format(), MutateTrace(parents, 2, 60).Format());
}

// Extend-born mutants keep the parent's generator seed, so the mutant's ops
// are exactly the generator's stream at the longer length — the coherence
// that makes extend chains explore deep *valid* state. At least one of a
// seed range must be extend-born (Extend is 5/8 of the mix).
TEST(Evolve, ExtendChainsStayOnTheGeneratorStream) {
  const Trace parent = GenerateTrace("invariants", 42, 15);
  const std::vector<const Trace*> parents = {&parent};

  bool saw_coherent_extension = false;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    const Trace m = MutateTrace(parents, seed, 45);
    if (m.seed != parent.seed || m.ops.size() <= parent.ops.size()) {
      continue;  // not extend-born (or capped back down)
    }
    const Trace regen = GenerateTrace("invariants", parent.seed, m.ops.size());
    ASSERT_EQ(regen.ops.size(), m.ops.size());
    for (size_t i = 0; i < m.ops.size(); ++i) {
      EXPECT_EQ(m.ops[i].kind, regen.ops[i].kind);
      for (int a = 0; a < 5; ++a) {
        EXPECT_EQ(m.ops[i].a[a], regen.ops[i].a[a]);
      }
    }
    saw_coherent_extension = true;
  }
  EXPECT_TRUE(saw_coherent_extension);
}

// Coverage keys are domain-separated and the map's digest is canonical
// (insertion-order independent).
TEST(Evolve, CoverageMapDigestIsCanonical) {
  EXPECT_NE(MixCoverageKey(CoverageDomain::kPageDbShape, 7),
            MixCoverageKey(CoverageDomain::kObsEvent, 7));

  CoverageMap a;
  CoverageMap b;
  a.Add(1);
  a.Add(2);
  a.Add(3);
  b.Add(3);
  b.Add(1);
  b.Add(2);
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_EQ(a.CountNew(b), 0u);
  CoverageMap c;
  c.Add(4);
  EXPECT_EQ(a.CountNew(c), 1u);
  EXPECT_EQ(a.Merge(c), 1u);
  EXPECT_EQ(a.size(), 4u);
}

}  // namespace
}  // namespace komodo::fuzz
