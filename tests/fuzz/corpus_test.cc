// Replays every committed witness in tests/corpus/ (DESIGN.md §10). Each file
// is a minimized reproducer for one injected (or once-real) bug: it must fail
// under its recorded fault injection and pass against the unbroken monitor,
// proving both that the oracle still catches the bug class and that the
// witness fails *because of* the injection rather than a harness artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/fuzz/oracles.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {
namespace {

std::vector<std::string> CorpusFiles() {
  const std::filesystem::path dir = std::filesystem::path(KOMODO_SOURCE_DIR) / "tests" / "corpus";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".trace") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, HasCommittedWitnesses) {
  EXPECT_GE(CorpusFiles().size(), 3u);
}

TEST(Corpus, EveryWitnessFailsWithInjectionAndPassesWithout) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    const auto t = Trace::ReadFile(path);
    ASSERT_TRUE(t.has_value()) << "unparseable corpus file";
    EXPECT_FALSE(t->inject.empty()) << "corpus witnesses must name their injection";
    EXPECT_LE(t->CallCount(), 10u) << "corpus witnesses are minimized";

    const Verdict with = RunTrace(*t, /*apply_inject=*/true);
    EXPECT_TRUE(with.failed) << "witness no longer fails under " << t->inject;

    const Verdict without = RunTrace(*t, /*apply_inject=*/false);
    EXPECT_FALSE(without.failed) << "clean monitor fails the witness: " << without.detail;
  }
}

TEST(Corpus, WitnessesRoundTripThroughTheTraceFormat) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    const auto t = Trace::ReadFile(path);
    ASSERT_TRUE(t.has_value());
    const auto again = Trace::Parse(t->Format());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->Hash(), t->Hash());
  }
}

}  // namespace
}  // namespace komodo::fuzz
