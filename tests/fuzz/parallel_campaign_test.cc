// Pins the parallel-campaign determinism contract (DESIGN.md §11): the
// campaign hash, stats and failure report are a pure function of the options
// for any --jobs count, and snapshot-reset world reuse is state-equal to
// fresh construction.
#include <gtest/gtest.h>

#include <set>

#include "src/fuzz/campaign.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/pool.h"
#include "src/os/world.h"

namespace komodo::fuzz {
namespace {

CampaignOptions SmokeOptions() {
  CampaignOptions opts;
  opts.seed = 20260807;
  opts.calls = 150;
  opts.trace_len = 40;
  return opts;
}

// (a) The whole-campaign result — hash, per-oracle trace/call counts,
// pass/fail — is byte-identical whether one thread runs all shards or eight
// threads race for them.
TEST(ParallelCampaign, JobsInvariantHashAndStats) {
  CampaignOptions serial = SmokeOptions();
  serial.jobs = 1;
  CampaignOptions parallel = SmokeOptions();
  parallel.jobs = 8;

  const CampaignResult a = RunCampaign(serial);
  const CampaignResult b = RunCampaign(parallel);

  EXPECT_FALSE(a.failed) << a.verdict.detail << "\n" << a.original.Format();
  EXPECT_FALSE(b.failed) << b.verdict.detail << "\n" << b.original.Format();
  EXPECT_EQ(a.hash, b.hash);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].oracle, b.stats[i].oracle);
    EXPECT_EQ(a.stats[i].traces, b.stats[i].traces);
    EXPECT_EQ(a.stats[i].calls, b.stats[i].calls);
    // The call budget is honoured per oracle regardless of the shard split.
    EXPECT_GE(a.stats[i].calls, serial.calls);
  }
}

// World pooling is a pure perf knob: disabling reuse reruns every trace on a
// freshly constructed world and must reproduce the pooled hash exactly.
TEST(ParallelCampaign, PoolReuseDoesNotChangeTheHash) {
  CampaignOptions pooled = SmokeOptions();
  CampaignOptions fresh = SmokeOptions();
  fresh.reuse_worlds = false;

  const CampaignResult a = RunCampaign(pooled);
  const CampaignResult b = RunCampaign(fresh);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_GT(a.worlds_reused, 0u);
  EXPECT_EQ(b.worlds_reused, 0u);
  EXPECT_GT(a.pages_restored, 0u);
  // Pooling must beat one-construction-per-acquire by a wide margin.
  EXPECT_LT(a.worlds_built, b.worlds_built / 4);
}

// (b) An injected fault is caught, attributed and shrunk to the same witness
// under any jobs count: the canonically-first-failure rule makes the report
// independent of which worker stumbled on a failure first.
TEST(ParallelCampaign, InjectedFaultCaughtAndShrunkIdenticallyInParallel) {
  CampaignOptions base;
  base.seed = 7;
  base.calls = 200;
  base.trace_len = 40;
  base.oracles = {"refinement"};
  base.inject = "initaddrspace-alias";

  CampaignOptions serial = base;
  serial.jobs = 1;
  CampaignOptions parallel = base;
  parallel.jobs = 4;

  const CampaignResult a = RunCampaign(serial);
  const CampaignResult b = RunCampaign(parallel);

  ASSERT_TRUE(a.failed);
  ASSERT_TRUE(b.failed);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.original.Format(), b.original.Format());
  EXPECT_EQ(a.verdict.detail, b.verdict.detail);
  EXPECT_EQ(a.verdict.failing_op, b.verdict.failing_op);
  EXPECT_EQ(a.witness.Format(), b.witness.Format());
  EXPECT_EQ(a.shrink.ops_after, b.shrink.ops_after);
  // The witness still fails on its own and is injection-caused.
  EXPECT_TRUE(RunTrace(a.witness).failed);
  Trace clean = a.witness;
  clean.inject.clear();
  EXPECT_FALSE(RunTrace(clean).failed);
}

// Timing is reported (wall and summed per-shard CPU) but never hashed: two
// runs of the same options at different jobs counts have different timings
// yet identical hashes (pinned above); here we pin that the fields are
// actually populated.
TEST(ParallelCampaign, TimingReportedOutOfHash) {
  CampaignOptions opts = SmokeOptions();
  opts.oracles = {"invariants"};
  const CampaignResult r = RunCampaign(opts);
  ASSERT_EQ(r.stats.size(), 1u);
  EXPECT_GT(r.stats[0].seconds, 0.0);
  EXPECT_GT(r.stats[0].cpu_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GE(r.wall_seconds, r.stats[0].seconds);
}

// Shard seed streams are decorrelated: no collisions across shards, along a
// stream, or between adjacent master seeds (for a sample far larger than any
// real campaign's shard count).
TEST(ParallelCampaign, ShardSeedStreamsAreDisjoint) {
  std::set<uint64_t> seen;
  for (uint32_t shard = 0; shard < 64; ++shard) {
    for (uint64_t k = 0; k < 64; ++k) {
      EXPECT_TRUE(seen.insert(ShardTraceSeed(1, shard, k)).second)
          << "collision at shard=" << shard << " k=" << k;
      EXPECT_TRUE(seen.insert(ShardTraceSeed(2, shard, k)).second)
          << "master-seed collision at shard=" << shard << " k=" << k;
    }
  }
}

// (c) The snapshot-reset core: dirty a world with real monitor calls, reset
// it, and demand architectural equality with a freshly constructed world —
// memory via PhysMemory::operator== (contents only; generations are cache
// bookkeeping) and everything else via MachineDiff.
TEST(SnapshotReset, ResetToEqualsFreshConstruction) {
  const word pages = 24;
  os::World w(pages, FuzzMonitorConfig());
  w.machine.mem.EnableDirtyTracking();
  const arm::MachineState snapshot = w.machine;

  // Dirty all three memory regions: insecure scratch, monitor globals and
  // secure pages (via real SMCs that allocate and retype pages).
  const word pg = w.os.AllocInsecurePage();
  w.os.WriteInsecure(pg, 0, 0xdeadbeef);
  EXPECT_EQ(w.os.InitAddrspace(0, 1).err, 0u);
  EXPECT_EQ(w.os.InitThread(0, 2, 0x8000).err, 0u);
  ASSERT_FALSE(w.machine.mem.dirty_pages().empty());
  ASSERT_FALSE(w.machine.mem == snapshot.mem);

  const size_t restored = w.machine.ResetTo(snapshot);
  EXPECT_GT(restored, 0u);
  w.monitor.ResetForReuse();
  w.os.ResetForReuse();

  os::World fresh(pages, FuzzMonitorConfig());
  EXPECT_TRUE(w.machine.mem == fresh.machine.mem);
  const auto diff = MachineDiff(w.machine, fresh.machine);
  EXPECT_TRUE(diff.empty()) << diff.front();
  // And the reset world behaves like a fresh one: the same SMC sequence
  // succeeds again from page 0.
  EXPECT_EQ(w.os.InitAddrspace(0, 1).err, 0u);
  EXPECT_EQ(fresh.os.InitAddrspace(0, 1).err, 0u);
  EXPECT_TRUE(w.machine.mem == fresh.machine.mem);
}

// The pool's Acquire/Release cycle delivers pristine worlds: a lease dirtied
// by SMCs comes back reset on the next Acquire.
TEST(SnapshotReset, PoolDeliversPristineWorldsAcrossLeases) {
  WorldPool pool;
  const word pages = 24;
  {
    WorldPool::Lease lease = pool.Acquire(pages);
    EXPECT_EQ(lease.world().os.InitAddrspace(0, 1).err, 0u);
    EXPECT_EQ(lease.world().os.InitThread(0, 2, 0x8000).err, 0u);
  }
  WorldPool::Lease again = pool.Acquire(pages);
  os::World fresh(pages, FuzzMonitorConfig());
  EXPECT_TRUE(again.world().machine.mem == fresh.machine.mem);
  const auto diff = MachineDiff(again.world().machine, fresh.machine);
  EXPECT_TRUE(diff.empty()) << diff.front();
  EXPECT_EQ(pool.stats().constructions, 1u);
  EXPECT_EQ(pool.stats().resets, 1u);
  EXPECT_GT(pool.stats().pages_restored, 0u);
}

}  // namespace
}  // namespace komodo::fuzz
