// Tracer tests (DESIGN.md §9): zero overhead and bit-identical machine
// state when disabled, deterministic traces (modulo wall-clock) when
// enabled, correct ring-wrap accounting, and exporters that emit valid
// JSON in their documented schemas.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/call_table.h"
#include "src/enclave/programs.h"
#include "src/obs/json.h"
#include "src/os/world.h"

namespace komodo {
namespace {

using obs::EventKind;
using obs::TraceEvent;

// A fixed workload touching every event source: enclave build (SMCs),
// two Enters with SVC exits (enter/exit instants, SVC begin/end, TLB
// flushes), plus an error-path SMC. Fully interpreted, so deterministic.
void RunWorkload(os::World& w) {
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(enclave::AddTwoProgram()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  EXPECT_EQ(w.os.Enter(e.thread, 2, 3).payload, 5u);
  EXPECT_EQ(w.os.Enter(e.thread, 40, 2).payload, 42u);
  EXPECT_EQ(w.os.Smc(kSmcInitAddrspace, 9999, 9999).err, kErrInvalidPageNo);
}

TEST(ObsTrace, DisabledRecordsNothing) {
  os::World w{64};
  w.monitor.obs().Disable();  // the suite also runs under KOMODO_TRACE=on
  ASSERT_FALSE(w.monitor.obs().enabled());
  RunWorkload(w);
  const obs::Counters& c = w.monitor.obs().counters();
  EXPECT_EQ(c.events_recorded, 0u);
  EXPECT_EQ(c.smc_calls, 0u);
  EXPECT_EQ(c.svc_calls, 0u);
  EXPECT_TRUE(w.monitor.obs().Events().empty());
  EXPECT_TRUE(w.monitor.obs().smc_stats().empty());
}

TEST(ObsTrace, TracingIsArchitecturallyInvisible) {
  // The tracer observes the cycle counter but never moves it: the same
  // workload with tracing on and off must retire the same steps and charge
  // the same simulated cycles.
  os::World off{64};
  os::World on{64};
  on.monitor.obs().Enable();
  RunWorkload(off);
  RunWorkload(on);
  EXPECT_EQ(off.machine.cycles.total(), on.machine.cycles.total());
  EXPECT_EQ(off.machine.steps_retired, on.machine.steps_retired);
  EXPECT_EQ(off.machine.tlb_flushes, on.machine.tlb_flushes);
  EXPECT_GT(on.monitor.obs().counters().events_recorded, 0u);
}

TEST(ObsTrace, TraceIsDeterministicModuloWallClock) {
  os::World a{64};
  os::World b{64};
  a.monitor.obs().Enable();
  b.monitor.obs().Enable();
  RunWorkload(a);
  RunWorkload(b);

  const std::vector<TraceEvent> ea = a.monitor.obs().Events();
  const std::vector<TraceEvent> eb = b.monitor.obs().Events();
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_FALSE(ea.empty());
  for (size_t i = 0; i < ea.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(ea[i].seq, eb[i].seq);
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].depth, eb[i].depth);
    EXPECT_EQ(ea[i].code, eb[i].code);
    EXPECT_STREQ(ea[i].name, eb[i].name);
    EXPECT_EQ(ea[i].args, eb[i].args);
    EXPECT_EQ(ea[i].err, eb[i].err);
    EXPECT_EQ(ea[i].val, eb[i].val);
    EXPECT_EQ(ea[i].cycles, eb[i].cycles);  // simulated time: deterministic
    EXPECT_EQ(ea[i].steps, eb[i].steps);
    // wall_ns deliberately not compared.
  }
}

TEST(ObsTrace, WorkloadEventShapes) {
  os::World w{64};
  w.monitor.obs().Enable();
  RunWorkload(w);
  const obs::Counters& c = w.monitor.obs().counters();
  EXPECT_EQ(c.enclave_entries, 2u);
  EXPECT_EQ(c.enclave_exits, 2u);
  EXPECT_EQ(c.svc_calls, 2u);  // one Exit SVC per Enter
  EXPECT_GT(c.smc_calls, 8u);  // build sequence + enters + failing call
  EXPECT_GT(c.tlb_flushes, 0u);
  EXPECT_EQ(c.events_dropped, 0u);

  // Per-call stats: Enter was called twice and never failed; the failing
  // InitAddrspace shows up in its error count; SVC Exit has two calls.
  const auto& smc = w.monitor.obs().smc_stats();
  ASSERT_TRUE(smc.count(kSmcEnter));
  EXPECT_EQ(smc.at(kSmcEnter).calls, 2u);
  EXPECT_EQ(smc.at(kSmcEnter).errors, 0u);
  EXPECT_EQ(smc.at(kSmcEnter).name, "Enter");
  EXPECT_GT(smc.at(kSmcEnter).cycles, 0u);
  EXPECT_EQ(smc.at(kSmcEnter).cycle_hist.count(), 2u);
  ASSERT_TRUE(smc.count(kSmcInitAddrspace));
  EXPECT_EQ(smc.at(kSmcInitAddrspace).errors, 1u);
  const auto& svc = w.monitor.obs().svc_stats();
  ASSERT_TRUE(svc.count(kSvcExit));
  EXPECT_EQ(svc.at(kSvcExit).calls, 2u);

  // Every call event's name comes from the registry.
  for (const TraceEvent& e : w.monitor.obs().Events()) {
    if (e.kind == EventKind::kSmcBegin || e.kind == EventKind::kSmcEnd) {
      const CallInfo* info = FindSmc(e.code);
      ASSERT_NE(info, nullptr) << "unregistered SMC " << e.code << " in trace";
      EXPECT_STREQ(e.name, info->name);
    }
  }
}

TEST(ObsTrace, RingWrapDropsOldestAndCounts) {
  os::World w{32};
  w.monitor.obs().Enable(/*ring_capacity=*/8);
  for (int i = 0; i < 10; ++i) {
    w.os.GetPhysPages();  // 2 events per call (begin + end)
  }
  const obs::Counters& c = w.monitor.obs().counters();
  EXPECT_EQ(c.events_recorded, 20u);
  EXPECT_EQ(c.events_dropped, 12u);
  const std::vector<TraceEvent> events = w.monitor.obs().Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, contiguous sequence numbers ending at the last event.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
  }
}

TEST(ObsTrace, ResetClearsButStaysEnabled) {
  os::World w{32};
  w.monitor.obs().Enable();
  w.os.GetPhysPages();
  ASSERT_GT(w.monitor.obs().counters().events_recorded, 0u);
  w.monitor.obs().Reset();
  EXPECT_TRUE(w.monitor.obs().enabled());
  EXPECT_EQ(w.monitor.obs().counters().events_recorded, 0u);
  EXPECT_TRUE(w.monitor.obs().Events().empty());
  w.os.GetPhysPages();
  EXPECT_EQ(w.monitor.obs().counters().events_recorded, 2u);
}

TEST(ObsTrace, ChromeTraceExportIsValidJson) {
  os::World w{64};
  w.monitor.obs().Enable();
  RunWorkload(w);
  std::string error;
  const auto parsed = obs::ParseJson(w.monitor.obs().ExportChromeTrace(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  ASSERT_FALSE(events->items.empty());
  // Complete ("X") events exist for the SMCs and carry ts + dur.
  bool saw_complete = false;
  for (const obs::JsonValue& e : events->items) {
    const obs::JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "X") {
      saw_complete = true;
      EXPECT_NE(e.Find("ts"), nullptr);
      EXPECT_NE(e.Find("dur"), nullptr);
    }
  }
  EXPECT_TRUE(saw_complete);
}

TEST(ObsTrace, MetricsExportIsValidAndComplete) {
  os::World w{64};
  w.monitor.obs().Enable();
  RunWorkload(w);
  std::string error;
  const auto parsed = obs::ParseJson(w.monitor.obs().ExportMetrics(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const obs::JsonValue* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "komodo-metrics-v1");
  const obs::JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Find("smc_calls"), nullptr);
  const obs::JsonValue* smc = parsed->Find("smc");
  ASSERT_NE(smc, nullptr);
  ASSERT_TRUE(smc->IsArray());
  // Every SMC the workload issued has a per-call entry with a histogram.
  bool saw_enter = false;
  for (const obs::JsonValue& s : smc->items) {
    const obs::JsonValue* name = s.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "Enter") {
      saw_enter = true;
      const obs::JsonValue* cycles = s.Find("cycles");
      ASSERT_NE(cycles, nullptr);
      const obs::JsonValue* count = cycles->Find("count");
      ASSERT_NE(count, nullptr);
      EXPECT_EQ(count->number, 2.0);
    }
  }
  EXPECT_TRUE(saw_enter);
}

}  // namespace
}  // namespace komodo
