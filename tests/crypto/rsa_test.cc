#include "src/crypto/rsa.h"

#include <gtest/gtest.h>

namespace komodo::crypto {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST(RsaTest, KeyGenProducesConsistentKey) {
  HashDrbg drbg(42);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  EXPECT_EQ(key.pub.n.BitLength(), 512u);
  EXPECT_EQ(key.pub.e.ToU64(), 65537u);
  EXPECT_EQ(BigNum::Mul(key.p, key.q), key.pub.n);
  // e*d == 1 mod phi
  const BigNum phi = BigNum::Mul(BigNum::Sub(key.p, BigNum(1)), BigNum::Sub(key.q, BigNum(1)));
  EXPECT_EQ(BigNum::Mod(BigNum::Mul(key.pub.e, key.d), phi), BigNum(1));
}

TEST(RsaTest, KeyGenDeterministicFromSeed) {
  HashDrbg a(7);
  HashDrbg b(7);
  EXPECT_EQ(RsaGenerateKey(&a, 512).pub.n, RsaGenerateKey(&b, 512).pub.n);
  HashDrbg c(8);
  EXPECT_NE(RsaGenerateKey(&a, 512).pub.n, RsaGenerateKey(&c, 512).pub.n);
}

TEST(RsaTest, SignVerifyRoundTrip) {
  HashDrbg drbg(1);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  const std::vector<uint8_t> msg = Bytes("attack at dawn");
  const std::vector<uint8_t> sig = RsaSignSha256(key, msg.data(), msg.size());
  EXPECT_EQ(sig.size(), key.pub.ModulusBytes());
  EXPECT_TRUE(RsaVerifySha256(key.pub, msg.data(), msg.size(), sig));
}

TEST(RsaTest, VerifyRejectsTamperedMessage) {
  HashDrbg drbg(2);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  const std::vector<uint8_t> msg = Bytes("attack at dawn");
  const std::vector<uint8_t> sig = RsaSignSha256(key, msg.data(), msg.size());
  const std::vector<uint8_t> other = Bytes("attack at dusk");
  EXPECT_FALSE(RsaVerifySha256(key.pub, other.data(), other.size(), sig));
}

TEST(RsaTest, VerifyRejectsTamperedSignature) {
  HashDrbg drbg(3);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  const std::vector<uint8_t> msg = Bytes("msg");
  std::vector<uint8_t> sig = RsaSignSha256(key, msg.data(), msg.size());
  sig[10] ^= 1;
  EXPECT_FALSE(RsaVerifySha256(key.pub, msg.data(), msg.size(), sig));
  sig[10] ^= 1;
  sig.pop_back();
  EXPECT_FALSE(RsaVerifySha256(key.pub, msg.data(), msg.size(), sig));
}

TEST(RsaTest, VerifyRejectsWrongKey) {
  HashDrbg drbg(4);
  const RsaKeyPair key1 = RsaGenerateKey(&drbg, 512);
  const RsaKeyPair key2 = RsaGenerateKey(&drbg, 512);
  const std::vector<uint8_t> msg = Bytes("msg");
  const std::vector<uint8_t> sig = RsaSignSha256(key1, msg.data(), msg.size());
  EXPECT_FALSE(RsaVerifySha256(key2.pub, msg.data(), msg.size(), sig));
}

TEST(RsaTest, SignaturesDeterministic) {
  // PKCS#1 v1.5 signing is deterministic: same key + message => same bytes.
  HashDrbg drbg(5);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  const std::vector<uint8_t> msg = Bytes("stable");
  EXPECT_EQ(RsaSignSha256(key, msg.data(), msg.size()),
            RsaSignSha256(key, msg.data(), msg.size()));
}

TEST(RsaTest, EmsaEncodingLayout) {
  const Digest digest = Sha256Hash(Bytes("x"));
  const std::vector<uint8_t> em = Pkcs1V15EncodeSha256(digest, 64);
  ASSERT_EQ(em.size(), 64u);
  EXPECT_EQ(em[0], 0x00);
  EXPECT_EQ(em[1], 0x01);
  // PS padding of 0xff up to the 0x00 separator.
  const size_t t_len = 19 + 32;
  for (size_t i = 2; i < 64 - t_len - 1; ++i) {
    EXPECT_EQ(em[i], 0xff) << i;
  }
  EXPECT_EQ(em[64 - t_len - 1], 0x00);
  // Digest is the tail.
  EXPECT_TRUE(std::equal(digest.begin(), digest.end(), em.end() - 32));
}

TEST(RsaTest, CrtAgreesWithPlainModExp) {
  HashDrbg drbg(11);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  ASSERT_TRUE(key.has_crt);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    HashDrbg msg_drbg(seed);
    const BigNum m = BigNum::Mod(BigNum::Random(&msg_drbg, 512, false), key.pub.n);
    const BigNum via_crt = RsaPrivateOp(key, m);
    const BigNum plain = BigNum::ModExp(m, key.d, key.pub.n);
    ASSERT_EQ(via_crt, plain) << "seed " << seed;
  }
}

TEST(RsaTest, CrtParametersConsistent) {
  HashDrbg drbg(12);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  EXPECT_EQ(key.dp, BigNum::Mod(key.d, BigNum::Sub(key.p, BigNum(1))));
  EXPECT_EQ(key.dq, BigNum::Mod(key.d, BigNum::Sub(key.q, BigNum(1))));
  EXPECT_EQ(BigNum::MulMod(key.qinv, key.q, key.p), BigNum(1));
}

TEST(RsaTest, NonCrtKeyStillSigns) {
  HashDrbg drbg(13);
  RsaKeyPair key = RsaGenerateKey(&drbg, 512);
  key.has_crt = false;  // strip the CRT parameters
  const std::vector<uint8_t> msg = Bytes("fallback path");
  const std::vector<uint8_t> sig = RsaSignSha256(key, msg.data(), msg.size());
  EXPECT_TRUE(RsaVerifySha256(key.pub, msg.data(), msg.size(), sig));
}

TEST(RsaTest, Rsa1024EndToEnd) {
  HashDrbg drbg(6);
  const RsaKeyPair key = RsaGenerateKey(&drbg, 1024);
  EXPECT_EQ(key.pub.n.BitLength(), 1024u);
  const std::vector<uint8_t> msg(1000, 0xab);
  const std::vector<uint8_t> sig = RsaSignSha256(key, msg.data(), msg.size());
  EXPECT_TRUE(RsaVerifySha256(key.pub, msg.data(), msg.size(), sig));
}

}  // namespace
}  // namespace komodo::crypto
