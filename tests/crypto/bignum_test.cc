#include "src/crypto/bignum.h"

#include <gtest/gtest.h>

namespace komodo::crypto {
namespace {

TEST(BigNumTest, ConstructionAndHex) {
  EXPECT_TRUE(BigNum().IsZero());
  EXPECT_EQ(BigNum(0).ToHex(), "0");
  EXPECT_EQ(BigNum(0x1234).ToHex(), "1234");
  EXPECT_EQ(BigNum(0xdeadbeefcafeull).ToHex(), "deadbeefcafe");
  EXPECT_EQ(BigNum::FromHex("DeadBeef").ToU64(), 0xdeadbeefull);
  EXPECT_EQ(BigNum::FromHex("0").ToHex(), "0");
}

TEST(BigNumTest, BytesBeRoundTrip) {
  const BigNum n = BigNum::FromHex("0102030405060708090a0b0c");
  const std::vector<uint8_t> bytes = n.ToBytesBe();
  ASSERT_EQ(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[11], 0x0c);
  EXPECT_EQ(BigNum::FromBytesBe(bytes), n);
  // Padding to a minimum length.
  EXPECT_EQ(n.ToBytesBe(16).size(), 16u);
  EXPECT_EQ(n.ToBytesBe(16)[0], 0u);
}

TEST(BigNumTest, CompareAndBitLength) {
  EXPECT_EQ(BigNum(0).BitLength(), 0u);
  EXPECT_EQ(BigNum(1).BitLength(), 1u);
  EXPECT_EQ(BigNum(0xffffffffull).BitLength(), 32u);
  EXPECT_EQ(BigNum(0x100000000ull).BitLength(), 33u);
  EXPECT_LT(BigNum(5), BigNum(6));
  EXPECT_GT(BigNum(0x100000000ull), BigNum(0xffffffffull));
}

TEST(BigNumTest, AddSubMatchU64) {
  HashDrbg drbg(1);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = drbg.NextU64() >> 1;
    const uint64_t b = drbg.NextU64() >> 1;
    EXPECT_EQ(BigNum::Add(BigNum(a), BigNum(b)).ToU64(), a + b);
    const uint64_t hi = std::max(a, b);
    const uint64_t lo = std::min(a, b);
    EXPECT_EQ(BigNum::Sub(BigNum(hi), BigNum(lo)).ToU64(), hi - lo);
  }
}

TEST(BigNumTest, MulMatchU64) {
  HashDrbg drbg(2);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = drbg.NextWord();
    const uint64_t b = drbg.NextWord();
    EXPECT_EQ(BigNum::Mul(BigNum(a), BigNum(b)).ToU64(), a * b);
  }
}

TEST(BigNumTest, DivModMatchU64) {
  HashDrbg drbg(3);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = drbg.NextU64();
    uint64_t b = drbg.NextU64() >> (drbg.Below(48));
    if (b == 0) {
      b = 1;
    }
    BigNum q;
    BigNum r;
    BigNum::DivMod(BigNum(a), BigNum(b), &q, &r);
    EXPECT_EQ(q.ToU64(), a / b) << a << "/" << b;
    EXPECT_EQ(r.ToU64(), a % b) << a << "%" << b;
  }
}

TEST(BigNumTest, DivModIdentityOnLargeNumbers) {
  // a == q*d + r with r < d, exercised on multi-limb values.
  HashDrbg drbg(4);
  for (int i = 0; i < 200; ++i) {
    const BigNum a = BigNum::Random(&drbg, 40 + drbg.Below(400), false);
    const BigNum d = BigNum::Random(&drbg, 33 + drbg.Below(200), false);
    BigNum q;
    BigNum r;
    BigNum::DivMod(a, d, &q, &r);
    EXPECT_LT(BigNum::Compare(r, d), 0);
    EXPECT_EQ(BigNum::Add(BigNum::Mul(q, d), r), a);
  }
}

TEST(BigNumTest, KnuthD6AddBackCase) {
  // Divisors of the form b^n - 1 with dividends just below trigger the rare
  // add-back branch of algorithm D.
  const BigNum d = BigNum::FromHex("ffffffffffffffff");  // 2^64 - 1
  const BigNum a = BigNum::FromHex("fffffffffffffffe00000000000000000000000000000001");
  BigNum q;
  BigNum r;
  BigNum::DivMod(a, d, &q, &r);
  EXPECT_EQ(BigNum::Add(BigNum::Mul(q, d), r), a);
  EXPECT_LT(BigNum::Compare(r, d), 0);
}

TEST(BigNumTest, Shifts) {
  const BigNum one(1);
  EXPECT_EQ(BigNum::ShiftLeft(one, 100).BitLength(), 101u);
  EXPECT_EQ(BigNum::ShiftRight(BigNum::ShiftLeft(one, 100), 100), one);
  EXPECT_TRUE(BigNum::ShiftRight(one, 1).IsZero());
  const BigNum v = BigNum::FromHex("123456789abcdef0");
  EXPECT_EQ(BigNum::ShiftRight(v, 4).ToHex(), "123456789abcdef");
  EXPECT_EQ(BigNum::ShiftLeft(v, 12).ToHex(), "123456789abcdef0000");
}

TEST(BigNumTest, ModExpSmallCases) {
  EXPECT_EQ(BigNum::ModExp(BigNum(2), BigNum(10), BigNum(1000)).ToU64(), 24u);
  EXPECT_EQ(BigNum::ModExp(BigNum(3), BigNum(0), BigNum(7)).ToU64(), 1u);
  EXPECT_EQ(BigNum::ModExp(BigNum(7), BigNum(5), BigNum(13)).ToU64(), 11u);  // 16807 mod 13
  // Fermat: a^(p-1) = 1 mod p.
  const BigNum p(1000003);
  for (uint64_t a : {2ull, 3ull, 999999ull}) {
    EXPECT_EQ(BigNum::ModExp(BigNum(a), BigNum(1000002), p).ToU64(), 1u);
  }
}

TEST(BigNumTest, ModExpLargeKnownValue) {
  // Computed independently (python): pow(0xabcdef1234567890, 65537, (1<<127)-1)
  const BigNum base = BigNum::FromHex("abcdef1234567890");
  const BigNum mod = BigNum::Sub(BigNum::ShiftLeft(BigNum(1), 127), BigNum(1));
  const BigNum result = BigNum::ModExp(base, BigNum(65537), mod);
  // Verify via the multiplicative property instead of a hard-coded constant:
  // result * base^(mod-1-65537... ) is overkill; check result < mod and
  // result^1 consistency with square-and-multiply in a second formulation.
  EXPECT_LT(BigNum::Compare(result, mod), 0);
  // (base^2)^32768 * base = base^65537.
  const BigNum base2 = BigNum::MulMod(base, base, mod);
  const BigNum alt = BigNum::MulMod(BigNum::ModExp(base2, BigNum(32768), mod), base, mod);
  EXPECT_EQ(result, alt);
}

TEST(BigNumTest, GcdAndModInverse) {
  EXPECT_EQ(BigNum::Gcd(BigNum(12), BigNum(18)).ToU64(), 6u);
  EXPECT_EQ(BigNum::Gcd(BigNum(17), BigNum(31)).ToU64(), 1u);
  BigNum inv;
  ASSERT_TRUE(BigNum::ModInverse(BigNum(3), BigNum(7), &inv));
  EXPECT_EQ(inv.ToU64(), 5u);  // 3*5 = 15 = 1 mod 7
  EXPECT_FALSE(BigNum::ModInverse(BigNum(4), BigNum(8), &inv));
  // Property: a * inv(a) == 1 mod m for random coprime pairs.
  HashDrbg drbg(5);
  for (int i = 0; i < 100; ++i) {
    const BigNum m = BigNum::Random(&drbg, 128, true);
    const BigNum a = BigNum::Random(&drbg, 100, false);
    if (!(BigNum::Gcd(a, m) == BigNum(1))) {
      continue;
    }
    ASSERT_TRUE(BigNum::ModInverse(a, m, &inv));
    EXPECT_EQ(BigNum::MulMod(a, inv, m), BigNum(1));
  }
}

TEST(BigNumTest, PrimalitySmallKnowns) {
  HashDrbg drbg(6);
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 97ull, 65537ull, 1000003ull, 2147483647ull}) {
    EXPECT_TRUE(BigNum::IsProbablePrime(BigNum(p), &drbg)) << p;
  }
  for (uint64_t c : {1ull, 4ull, 100ull, 65535ull, 1000001ull, 2147483647ull * 3}) {
    EXPECT_FALSE(BigNum::IsProbablePrime(BigNum(c), &drbg)) << c;
  }
  // Carmichael number 561 = 3 * 11 * 17 must be rejected.
  EXPECT_FALSE(BigNum::IsProbablePrime(BigNum(561), &drbg));
}

TEST(BigNumTest, GeneratePrimeHasRequestedSize) {
  HashDrbg drbg(7);
  const BigNum p = BigNum::GeneratePrime(&drbg, 96);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(BigNum::IsProbablePrime(p, &drbg));
}

TEST(BigNumTest, RandomHasExactBitLength) {
  HashDrbg drbg(8);
  for (size_t bits : {2u, 31u, 32u, 33u, 100u, 512u}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(BigNum::Random(&drbg, bits, false).BitLength(), bits);
      EXPECT_TRUE(BigNum::Random(&drbg, bits, true).IsOdd());
    }
  }
}

}  // namespace
}  // namespace komodo::crypto
