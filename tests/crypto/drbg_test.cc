#include "src/crypto/drbg.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace komodo::crypto {
namespace {

TEST(DrbgTest, DeterministicPerSeed) {
  HashDrbg a(42);
  HashDrbg b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextWord(), b.NextWord());
  }
}

TEST(DrbgTest, DifferentSeedsDiverge) {
  HashDrbg a(1);
  HashDrbg b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextWord() == b.NextWord()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(DrbgTest, FillAndBytesConsistent) {
  HashDrbg a(7);
  HashDrbg b(7);
  uint8_t buf[64];
  a.Fill(buf, sizeof(buf));
  const std::vector<uint8_t> vec = b.Bytes(64);
  EXPECT_TRUE(std::equal(vec.begin(), vec.end(), buf));
}

TEST(DrbgTest, FillRespectsOddLengths) {
  HashDrbg a(7);
  HashDrbg b(7);
  uint8_t one[37];
  a.Fill(one, sizeof(one));
  uint8_t two_a[20];
  uint8_t two_b[17];
  b.Fill(two_a, sizeof(two_a));
  b.Fill(two_b, sizeof(two_b));
  EXPECT_TRUE(std::equal(two_a, two_a + 20, one));
  EXPECT_TRUE(std::equal(two_b, two_b + 17, one + 20));
}

TEST(DrbgTest, BelowStaysInRange) {
  HashDrbg drbg(99);
  for (uint32_t bound : {1u, 2u, 7u, 100u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(drbg.Below(bound), bound);
    }
  }
}

TEST(DrbgTest, BelowRoughlyUniform) {
  HashDrbg drbg(1234);
  std::map<uint32_t, int> counts;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    counts[drbg.Below(4)]++;
  }
  for (uint32_t v = 0; v < 4; ++v) {
    EXPECT_GT(counts[v], kSamples / 4 - 400) << v;
    EXPECT_LT(counts[v], kSamples / 4 + 400) << v;
  }
}

TEST(DrbgTest, WordsLookRandom) {
  HashDrbg drbg(5);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(drbg.NextWord());
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions expected in 1000 draws
}

TEST(DrbgTest, SeedMaterialConstructor) {
  HashDrbg a(std::vector<uint8_t>{1, 2, 3});
  HashDrbg b(std::vector<uint8_t>{1, 2, 3});
  HashDrbg c(std::vector<uint8_t>{1, 2, 4});
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

}  // namespace
}  // namespace komodo::crypto
