#include "src/crypto/hmac.h"

#include <gtest/gtest.h>

namespace komodo::crypto {
namespace {

// RFC 4231 vectors. Our key type is a fixed 32 bytes; HMAC zero-pads shorter
// keys to the block size, so a 20-byte RFC key padded with 12 zero bytes
// produces the identical MAC.
HmacKey KeyFromBytes(const std::vector<uint8_t>& bytes) {
  HmacKey key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

TEST(HmacTest, Rfc4231Case1) {
  const HmacKey key = KeyFromBytes(std::vector<uint8_t>(20, 0x0b));
  const std::string msg = "Hi There";
  const Digest mac = HmacSha256(key, reinterpret_cast<const uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const std::string key_str = "Jefe";
  const HmacKey key = KeyFromBytes({key_str.begin(), key_str.end()});
  const std::string msg = "what do ya want for nothing?";
  const Digest mac = HmacSha256(key, reinterpret_cast<const uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const HmacKey key = KeyFromBytes(std::vector<uint8_t>(20, 0xaa));
  const std::vector<uint8_t> msg(50, 0xdd);
  EXPECT_EQ(DigestToHex(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, StreamMatchesOneShot) {
  HmacKey key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i * 7);
  }
  const std::vector<uint8_t> msg(123, 0x5a);
  HmacSha256Stream stream(key);
  stream.Update(msg.data(), 50);
  stream.Update(msg.data() + 50, msg.size() - 50);
  EXPECT_EQ(stream.Finalize(), HmacSha256(key, msg));
}

TEST(HmacTest, KeySensitivity) {
  HmacKey k1{};
  HmacKey k2{};
  k2[31] = 1;
  const std::vector<uint8_t> msg = {1, 2, 3};
  EXPECT_NE(HmacSha256(k1, msg), HmacSha256(k2, msg));
}

TEST(HmacTest, MessageSensitivity) {
  HmacKey key{};
  key[0] = 0x42;
  EXPECT_NE(HmacSha256(key, {1, 2, 3}), HmacSha256(key, {1, 2, 4}));
  EXPECT_NE(HmacSha256(key, {}), HmacSha256(key, {0}));
}

TEST(HmacTest, UpdateWordLeMatchesByteUpdate) {
  HmacKey key{};
  HmacSha256Stream a(key);
  a.UpdateWordLe(0xddccbbaa);
  HmacSha256Stream b(key);
  const uint8_t bytes[4] = {0xaa, 0xbb, 0xcc, 0xdd};
  b.Update(bytes, 4);
  EXPECT_EQ(a.Finalize(), b.Finalize());
}

}  // namespace
}  // namespace komodo::crypto
