#include "src/crypto/sha256.h"

#include <gtest/gtest.h>

namespace komodo::crypto {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST(Sha256Test, Fips180EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256Hash(Bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Fips180Abc) {
  EXPECT_EQ(DigestToHex(Sha256Hash(Bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, Fips180TwoBlocks) {
  EXPECT_EQ(DigestToHex(Sha256Hash(
                Bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, Fips180MillionAs) {
  Sha256 h;
  const std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk.data(), chunk.size());
  }
  EXPECT_EQ(DigestToHex(h.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::vector<uint8_t> data = Bytes("the quick brown fox jumps over the lazy dog etc etc");
  for (size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.Update(data.data(), split);
    h.Update(data.data() + split, data.size() - split);
    EXPECT_EQ(h.Finalize(), Sha256Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, UpdateWordLeMatchesBytes) {
  Sha256 a;
  a.UpdateWordLe(0x04030201);
  const uint8_t bytes[4] = {1, 2, 3, 4};
  Sha256 b;
  b.Update(bytes, 4);
  EXPECT_EQ(a.Finalize(), b.Finalize());
}

TEST(Sha256Test, ExportImportResumesStream) {
  const std::vector<uint8_t> part1 = Bytes("hello, this is part one of a message ");
  const std::vector<uint8_t> part2 = Bytes("and this is part two, crossing block bounds maybe");

  Sha256 original;
  original.Update(part1);

  Sha256 resumed;
  resumed.Import(original.Export());
  resumed.Update(part2);

  Sha256 reference;
  reference.Update(part1);
  reference.Update(part2);
  EXPECT_EQ(resumed.Finalize(), reference.Finalize());
}

TEST(Sha256Test, ExportImportAtEveryOffsetWithinBlock) {
  for (size_t len = 0; len < 130; ++len) {
    std::vector<uint8_t> data(len, static_cast<uint8_t>(len));
    Sha256 a;
    a.Update(data);
    Sha256 b;
    b.Import(a.Export());
    const std::vector<uint8_t> tail = Bytes("tail");
    a.Update(tail);
    b.Update(tail);
    ASSERT_EQ(a.Finalize(), b.Finalize()) << len;
  }
}

TEST(Sha256Test, TotalBytesTracksInput) {
  Sha256 h;
  h.Update(Bytes("12345"));
  EXPECT_EQ(h.total_bytes(), 5u);
  h.UpdateWordLe(0);
  EXPECT_EQ(h.total_bytes(), 9u);
}

TEST(Sha256Test, DigestWordConversionRoundTrip) {
  const Digest d = Sha256Hash(Bytes("roundtrip"));
  EXPECT_EQ(WordsToDigest(DigestToWords(d)), d);
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256Hash(Bytes("a")), Sha256Hash(Bytes("b")));
  EXPECT_NE(Sha256Hash(Bytes("")), Sha256Hash(std::vector<uint8_t>{0}));
}

TEST(ConstantTimeEqualTest, Basics) {
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {1, 2, 3, 4};
  const uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEqual(a, b, 4));
  EXPECT_FALSE(ConstantTimeEqual(a, c, 4));
  EXPECT_TRUE(ConstantTimeEqual(a, c, 3));
  EXPECT_TRUE(ConstantTimeEqual(a, c, 0));
}

}  // namespace
}  // namespace komodo::crypto
