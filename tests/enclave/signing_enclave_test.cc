// Remote attestation via the trusted signing enclave (§4's deferred design):
// a genuine local attestation becomes a remotely-verifiable RSA signature;
// forgeries are refused because the signing enclave checks the MAC through
// the monitor before signing.
#include "src/enclave/signing_enclave.h"

#include <gtest/gtest.h>

#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"

namespace komodo::enclave {
namespace {

using os::EnclaveHandle;
using os::World;

class SigningEnclaveTest : public ::testing::Test {
 protected:
  SigningEnclaveTest() : runtime(w.monitor) {
    // The attestor: an interpreted A32 enclave producing a local attestation.
    auto built_attestor = w.os.NewEnclave().Code(AttestProgram()).SharedPage().Build();
    EXPECT_TRUE(built_attestor.ok());
    if (built_attestor.ok()) attestor = *std::move(built_attestor);
    attestor_shared = attestor.shared_insecure_pgnr;

    // The signer: a native program in its own enclave.
    auto built_signer = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).SharedPage().Build();
    EXPECT_TRUE(built_signer.ok());
    if (built_signer.ok()) signer = *std::move(built_signer);
    signer_shared = signer.shared_insecure_pgnr;
    program = std::make_shared<SigningEnclave>(/*key_seed=*/99);
    runtime.Register(signer.l1pt, program);
    EXPECT_EQ(w.os.Enter(signer.thread, kSignerCmdInit).payload, 1u);
  }

  // Produces a local attestation from the attestor over data derived from
  // `seed`, then stages (data, measurement, mac) into the signer's shared
  // page. Returns the measurement.
  std::array<word, 8> StageAttestation(word seed) {
    EXPECT_TRUE(w.os.Enter(attestor.thread, seed).exited());
    const auto db = spec::ExtractPageDb(w.machine);
    const auto measurement = db[attestor.addrspace].As<spec::AddrspacePage>().measurement;
    std::array<word, 8> out;
    for (word i = 0; i < 8; ++i) {
      out[i] = measurement[i];
      w.os.WriteInsecure(signer_shared, i, seed + i);  // the attested data
      w.os.WriteInsecure(signer_shared, 8 + i, measurement[i]);
      w.os.WriteInsecure(signer_shared, 16 + i, w.os.ReadInsecure(attestor_shared, i));
    }
    return out;
  }

  std::vector<uint8_t> ReadSignature() {
    std::vector<uint8_t> sig(128);
    for (size_t i = 0; i < sig.size(); ++i) {
      const word v = w.os.ReadInsecure(signer_shared,
                                       (kSignerSigOffset + static_cast<word>(i)) / 4);
      sig[i] = static_cast<uint8_t>(v >> ((i % 4) * 8));
    }
    return sig;
  }

  World w{128};
  NativeRuntime runtime;
  std::shared_ptr<SigningEnclave> program;
  EnclaveHandle attestor;
  EnclaveHandle signer;
  word attestor_shared = 0;
  word signer_shared = 0;
};

TEST_F(SigningEnclaveTest, PublishesEndorsableKey) {
  // The modulus in the shared page matches the in-enclave key.
  std::vector<uint8_t> modulus(128);
  for (size_t i = 0; i < modulus.size(); ++i) {
    const word v = w.os.ReadInsecure(signer_shared,
                                     (kSignerPubkeyOffset + static_cast<word>(i)) / 4);
    modulus[i] = static_cast<uint8_t>(v >> ((i % 4) * 8));
  }
  EXPECT_EQ(crypto::BigNum::FromBytesBe(modulus), program->public_key().n);
}

TEST_F(SigningEnclaveTest, GenuineAttestationGetsSigned) {
  const std::array<word, 8> measurement = StageAttestation(0x42);
  const os::EnterResult r = w.os.Enter(signer.thread, kSignerCmdSign);
  ASSERT_TRUE(r.exited());
  ASSERT_EQ(r.payload, 1u) << "signer refused a genuine attestation";

  // The remote verifier: checks against the endorsed public key only.
  std::array<word, 8> data;
  for (word i = 0; i < 8; ++i) {
    data[i] = 0x42 + i;
  }
  const std::vector<uint8_t> message = SigningEnclave::SignedMessage(measurement, data);
  EXPECT_TRUE(crypto::RsaVerifySha256(program->public_key(), message.data(), message.size(),
                                      ReadSignature()));
}

TEST_F(SigningEnclaveTest, RefusesTamperedData) {
  StageAttestation(0x42);
  w.os.WriteInsecure(signer_shared, 0, 0xbad);  // OS tampers with the data
  EXPECT_EQ(w.os.Enter(signer.thread, kSignerCmdSign).payload, 0u);
}

TEST_F(SigningEnclaveTest, RefusesTamperedMeasurement) {
  StageAttestation(0x42);
  const word original = w.os.ReadInsecure(signer_shared, 8);
  w.os.WriteInsecure(signer_shared, 8, original ^ 1);  // claim another identity
  EXPECT_EQ(w.os.Enter(signer.thread, kSignerCmdSign).payload, 0u);
}

TEST_F(SigningEnclaveTest, RefusesForgedMac) {
  StageAttestation(0x42);
  for (word i = 16; i < 24; ++i) {
    w.os.WriteInsecure(signer_shared, i, 0x41414141);
  }
  EXPECT_EQ(w.os.Enter(signer.thread, kSignerCmdSign).payload, 0u);
}

TEST_F(SigningEnclaveTest, SignatureBindsToData) {
  // A signature over one payload must not verify for another.
  const std::array<word, 8> measurement = StageAttestation(0x42);
  ASSERT_EQ(w.os.Enter(signer.thread, kSignerCmdSign).payload, 1u);
  std::array<word, 8> other_data;
  for (word i = 0; i < 8; ++i) {
    other_data[i] = 0x43 + i;
  }
  const std::vector<uint8_t> message = SigningEnclave::SignedMessage(measurement, other_data);
  EXPECT_FALSE(crypto::RsaVerifySha256(program->public_key(), message.data(), message.size(),
                                       ReadSignature()));
}

TEST_F(SigningEnclaveTest, SignBeforeInitRefused) {
  World fresh{128};
  NativeRuntime rt(fresh.monitor);
  EnclaveHandle e;
  auto built_e = fresh.os.NewEnclave().Code({0xe3a00001, 0xef000000}).SharedPage().Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  auto p = std::make_shared<SigningEnclave>(1);
  rt.Register(e.l1pt, p);
  EXPECT_EQ(fresh.os.Enter(e.thread, kSignerCmdSign).payload, 0u);
}

}  // namespace
}  // namespace komodo::enclave
