// The canned A32 enclave programs assemble to decodable code and behave as
// documented when run under the monitor.
#include "src/enclave/programs.h"

#include <gtest/gtest.h>

#include "src/arm/isa.h"
#include "src/os/world.h"

namespace komodo::enclave {
namespace {

using os::EnclaveHandle;
using os::World;

TEST(ProgramsTest, MostProgramsDecodeCleanly) {
  const std::vector<std::pair<const char*, std::vector<word>>> programs = {
      {"add_two", AddTwoProgram()},       {"echo_shared", EchoSharedProgram()},
      {"counter", CounterProgram()},      {"spin", SpinProgram()},
      {"attest", AttestProgram()},        {"verify", VerifyProgram()},
      {"dynmem", DynMemProgram()},        {"random", RandomProgram()},
      {"leak", LeakSecretProgram()},      {"read_outside", ReadOutsideProgram()},
      {"write_code", WriteCodeProgram()},
  };
  for (const auto& [name, code] : programs) {
    ASSERT_FALSE(code.empty()) << name;
    ASSERT_LE(code.size(), arm::kWordsPerPage) << name;
    for (size_t i = 0; i < code.size(); ++i) {
      EXPECT_TRUE(arm::Decode(code[i]).has_value())
          << name << " word " << i << " = 0x" << std::hex << code[i];
    }
  }
}

TEST(ProgramsTest, UndefinedProgramContainsUndecodableWord) {
  const std::vector<word> code = UndefinedInsnProgram();
  EXPECT_FALSE(arm::Decode(code[0]).has_value());
}

TEST(ProgramsTest, ProgramsFitOnePageWithRoom) {
  // The builder maps a single code page; keep programs comfortably inside.
  EXPECT_LT(AttestProgram().size(), 200u);
  EXPECT_LT(VerifyProgram().size(), 200u);
  EXPECT_LT(DynMemProgram().size(), 100u);
}

TEST(ProgramsTest, EchoSharedEndToEnd) {
  World w{64};
  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(EchoSharedProgram()).SharedPage().Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  for (word x : {0u, 1u, 21u, 0x7fffffffu}) {
    w.os.WriteInsecure(e.shared_insecure_pgnr, 0, x);
    const os::EnterResult r = w.os.Enter(e.thread);
    ASSERT_TRUE(r.exited());
    EXPECT_EQ(r.payload, x);
    EXPECT_EQ(w.os.ReadInsecure(e.shared_insecure_pgnr, 1), 2 * x + 1);
  }
}

TEST(ProgramsTest, CounterAccumulates) {
  World w{64};
  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(CounterProgram()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  word total = 0;
  for (word add : {3u, 0u, 100u, 1u}) {
    total += add;
    EXPECT_EQ(w.os.Enter(e.thread, add).payload, total);
  }
}

}  // namespace
}  // namespace komodo::enclave
