// End-to-end test of the in-enclave SHA-256: real interpreted A32 code,
// through real page tables, checked against the host implementation and
// FIPS 180-4 vectors — the enclave-side analogue of the paper's verified SHA.
#include "src/enclave/sha256_program.h"

#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/os/world.h"

namespace komodo::enclave {
namespace {

using os::EnclaveHandle;
using os::World;

class Sha256ProgramTest : public ::testing::Test {
 protected:
  Sha256ProgramTest() {
    auto built_e = w.os.NewEnclave().Code(Sha256Program()).SharedPage().Build();
    EXPECT_TRUE(built_e.ok());
    if (built_e.ok()) e = *std::move(built_e);
    shared_pg = e.shared_insecure_pgnr;
  }

  std::array<uint8_t, 32> HashInEnclave(const std::vector<uint8_t>& message) {
    const word nblocks = StageSha256Message(w.os, shared_pg, message);
    const os::EnterResult r = w.os.Enter(e.thread, nblocks);
    EXPECT_TRUE(r.exited()) << KomErrName(r.err);
    return ReadSha256Digest(w.os, shared_pg);
  }

  World w{64};
  EnclaveHandle e;
  word shared_pg = 0;
};

TEST_F(Sha256ProgramTest, FipsVectorAbc) {
  const std::array<uint8_t, 32> digest = HashInEnclave({'a', 'b', 'c'});
  crypto::Digest expected;
  std::copy(digest.begin(), digest.end(), expected.begin());
  EXPECT_EQ(crypto::DigestToHex(expected),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST_F(Sha256ProgramTest, FipsVectorEmpty) {
  const std::array<uint8_t, 32> digest = HashInEnclave({});
  crypto::Digest expected;
  std::copy(digest.begin(), digest.end(), expected.begin());
  EXPECT_EQ(crypto::DigestToHex(expected),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST_F(Sha256ProgramTest, MatchesHostImplementationAcrossSizes) {
  for (size_t len : {1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 500u, 1000u, 3000u}) {
    std::vector<uint8_t> message(len);
    for (size_t i = 0; i < len; ++i) {
      message[i] = static_cast<uint8_t>(i * 7 + len);
    }
    const std::array<uint8_t, 32> enclave_digest = HashInEnclave(message);
    const crypto::Digest host_digest = crypto::Sha256Hash(message);
    ASSERT_TRUE(std::equal(enclave_digest.begin(), enclave_digest.end(), host_digest.begin()))
        << "len=" << len;
  }
}

TEST_F(Sha256ProgramTest, ReentrantAcrossMessages) {
  // Each Enter is a fresh hash; state from the previous message must not
  // bleed in (H is re-initialised from the constants each time).
  const std::vector<uint8_t> m1 = {'x'};
  const std::vector<uint8_t> m2 = {'y'};
  const auto d1 = HashInEnclave(m1);
  const auto d2 = HashInEnclave(m2);
  const auto d1_again = HashInEnclave(m1);
  EXPECT_NE(d1, d2);
  EXPECT_EQ(d1, d1_again);
}

TEST_F(Sha256ProgramTest, SurvivesInterruptAndResume) {
  // Interrupt the enclave mid-hash (tiny step budget), resume repeatedly, and
  // verify the digest still comes out right — context save/restore through a
  // real multi-thousand-instruction workload.
  Monitor::Config cfg;
  cfg.max_enclave_steps = 700;  // well below one block's work
  World small(64, cfg);
  EnclaveHandle enclave;
  auto built_enclave = small.os.NewEnclave().Code(Sha256Program()).SharedPage().Build();
  ASSERT_TRUE(built_enclave.ok());
  enclave = *std::move(built_enclave);

  std::vector<uint8_t> message(300);
  for (size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<uint8_t>(i);
  }
  const word nblocks = StageSha256Message(small.os, enclave.shared_insecure_pgnr, message);
  os::EnterResult r = small.os.Enter(enclave.thread, nblocks);
  int interrupts = 0;
  while (r.interrupted()) {
    ++interrupts;
    ASSERT_LT(interrupts, 200);
    r = small.os.Resume(enclave.thread);
  }
  ASSERT_TRUE(r.exited());
  EXPECT_GT(interrupts, 3) << "budget too generous to exercise resume";

  const auto enclave_digest = ReadSha256Digest(small.os, enclave.shared_insecure_pgnr);
  const crypto::Digest host_digest = crypto::Sha256Hash(message);
  EXPECT_TRUE(std::equal(enclave_digest.begin(), enclave_digest.end(), host_digest.begin()));
}

TEST_F(Sha256ProgramTest, CycleCostPerBlockMatchesCalibration) {
  // The interpreted per-block cost should be in the ballpark of the cycle
  // model's SHA-256 constant (MonitorOps::kSha256BlockCycles = 2300), since
  // both describe straightforward ARM implementations.
  const std::vector<uint8_t> one(10, 1);     // 1 block after padding
  const std::vector<uint8_t> nine(520, 1);   // 9 blocks after padding
  word nblocks = StageSha256Message(w.os, shared_pg, one);
  ASSERT_EQ(nblocks, 1u);
  uint64_t before = w.machine.cycles.total();
  ASSERT_TRUE(w.os.Enter(e.thread, 1).exited());
  const uint64_t one_block = w.machine.cycles.total() - before;

  nblocks = StageSha256Message(w.os, shared_pg, nine);
  ASSERT_EQ(nblocks, 9u);
  before = w.machine.cycles.total();
  ASSERT_TRUE(w.os.Enter(e.thread, 9).exited());
  const uint64_t nine_blocks = w.machine.cycles.total() - before;

  const uint64_t per_block = (nine_blocks - one_block) / 8;
  EXPECT_GT(per_block, 1500u);
  EXPECT_LT(per_block, 8000u);
}

}  // namespace
}  // namespace komodo::enclave
