// The notary (§8.2): functional correctness of both backends, signature
// verifiability, monotonic counters, and enclave/native equivalence.
#include "src/enclave/notary.h"

#include <gtest/gtest.h>

#include "src/enclave/native_runtime.h"
#include "src/os/world.h"

namespace komodo::enclave {
namespace {

using os::EnclaveHandle;
using os::World;

// Constructs the notary enclave with the full shared document region mapped
// (129 insecure pages for the document plus one for pubkey/signature), a
// native-runtime program registered for its address space.
struct NotarySetup {
  World w{512};
  NativeRuntime runtime{w.monitor};
  std::shared_ptr<NotaryProgram> program;
  PageNr addrspace = 0;
  PageNr thread = 0;
  word doc_pg0 = 0;  // first insecure page of the document region

  explicit NotarySetup(uint64_t key_seed = 4242) {
    auto& os = w.os;
    addrspace = os.AllocSecurePage();
    const PageNr l1pt = os.AllocSecurePage();
    EXPECT_EQ(os.InitAddrspace(addrspace, l1pt).err, kErrSuccess);
    // L2 tables covering the code VA (first 4 MB) and the shared region
    // (kEnclaveSharedVa .. +516 kB crosses nothing: 1 MB region, same 4 MB).
    const PageNr l2 = os.AllocSecurePage();
    EXPECT_EQ(os.InitL2Table(addrspace, l2, 0).err, kErrSuccess);
    // Code page (native program; contents immaterial but measured).
    const word staging = os.AllocInsecurePage();
    os.WriteInsecurePage(staging, {0xe3a00001, 0xef000000});
    const PageNr code = os.AllocSecurePage();
    EXPECT_EQ(os.MapSecure(addrspace, code, MakeMapping(os::kEnclaveCodeVa, kMapR | kMapX),
                           staging)
                  .err,
              kErrSuccess);
    // Shared document region: contiguous insecure pages.
    doc_pg0 = os.AllocInsecurePage();
    for (word i = 1; i < kNotarySharedPages + 1; ++i) {
      const word pg = os.AllocInsecurePage();
      EXPECT_EQ(pg, doc_pg0 + i);  // allocator is sequential
    }
    for (word i = 0; i < kNotarySharedPages + 1; ++i) {
      EXPECT_EQ(os.MapInsecure(addrspace,
                               MakeMapping(os::kEnclaveSharedVa + i * arm::kPageSize,
                                           kMapR | kMapW),
                               doc_pg0 + i)
                    .err,
                kErrSuccess);
    }
    thread = os.AllocSecurePage();
    EXPECT_EQ(os.InitThread(addrspace, thread, os::kEnclaveCodeVa).err, kErrSuccess);
    EXPECT_EQ(os.Finalise(addrspace).err, kErrSuccess);

    program = std::make_shared<NotaryProgram>(key_seed);
    runtime.Register(l1pt, program);
  }

  // Writes the document into the shared region (OS side).
  void StageDocument(const std::vector<uint8_t>& doc) {
    for (size_t i = 0; i < doc.size(); i += 4) {
      word wv = 0;
      for (size_t j = 0; j < 4 && i + j < doc.size(); ++j) {
        wv |= static_cast<word>(doc[i + j]) << (8 * j);
      }
      w.machine.mem.Write(doc_pg0 * arm::kPageSize + static_cast<word>(i), wv);
    }
  }

  std::vector<uint8_t> ReadSignature(size_t len) {
    std::vector<uint8_t> sig(len);
    const paddr base = doc_pg0 * arm::kPageSize + kNotaryMaxDocBytes + 1024;
    for (size_t i = 0; i < len; ++i) {
      const word wv = w.machine.mem.Read((base + static_cast<word>(i)) & ~3u);
      sig[i] = static_cast<uint8_t>(wv >> (((base + i) & 3u) * 8));
    }
    return sig;
  }
};

TEST(NotaryCoreTest, SignaturesVerifyAndCounterAdvances) {
  NotaryCore core(1);
  core.Init();
  const std::vector<uint8_t> doc = {'d', 'o', 'c'};
  uint64_t cycles = 0;
  const std::vector<uint8_t> sig0 = core.Notarize(doc.data(), doc.size(), &cycles);
  EXPECT_EQ(core.counter(), 1u);
  // Verify against the exact message the notary signs: doc || counter(0).
  std::vector<uint8_t> message = doc;
  message.insert(message.end(), {0, 0, 0, 0});
  EXPECT_TRUE(
      crypto::RsaVerifySha256(core.public_key(), message.data(), message.size(), sig0));

  // Same document again gets a different signature (counter changed).
  const std::vector<uint8_t> sig1 = core.Notarize(doc.data(), doc.size(), &cycles);
  EXPECT_NE(sig0, sig1);
  EXPECT_FALSE(
      crypto::RsaVerifySha256(core.public_key(), message.data(), message.size(), sig1));
}

TEST(NotaryCoreTest, InitIdempotent) {
  NotaryCore core(1);
  EXPECT_GT(core.Init(), 0u);
  EXPECT_EQ(core.Init(), 0u);  // no second keygen
}

TEST(NotaryCoreTest, CostsScaleWithDocumentSize) {
  NotaryCore core(1);
  core.Init();
  std::vector<uint8_t> small(4096, 1);
  std::vector<uint8_t> large(65536, 1);
  uint64_t small_cycles = 0;
  uint64_t large_cycles = 0;
  core.Notarize(small.data(), small.size(), &small_cycles);
  core.Notarize(large.data(), large.size(), &large_cycles);
  EXPECT_GT(large_cycles, small_cycles);
  // Fixed RSA cost dominates at small sizes.
  EXPECT_GT(small_cycles, core.costs().rsa_sign_cycles);
}

TEST(NotaryEnclaveTest, InitPublishesModulus) {
  NotarySetup n;
  const os::EnterResult r = n.w.os.Enter(n.thread, kNotaryCmdInit);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 0u);
  // Modulus appears in the shared page following the document region.
  const paddr base = n.doc_pg0 * arm::kPageSize + kNotaryMaxDocBytes;
  word nonzero = 0;
  for (word i = 0; i < 32; ++i) {
    nonzero |= n.w.machine.mem.Read(base + i * 4);
  }
  EXPECT_NE(nonzero, 0u);
}

TEST(NotaryEnclaveTest, NotarizeProducesVerifiableSignature) {
  NotarySetup n;
  ASSERT_TRUE(n.w.os.Enter(n.thread, kNotaryCmdInit).exited());
  const std::vector<uint8_t> doc(1000, 0x5c);
  n.StageDocument(doc);
  const os::EnterResult r = n.w.os.Enter(n.thread, kNotaryCmdNotarize, 1000);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 1u);  // counter after first notarisation

  const std::vector<uint8_t> sig = n.ReadSignature(128);
  std::vector<uint8_t> message = doc;
  message.insert(message.end(), {0, 0, 0, 0});
  EXPECT_TRUE(crypto::RsaVerifySha256(n.program->core().public_key(), message.data(),
                                      message.size(), sig));
}

TEST(NotaryEnclaveTest, CounterMonotonicAcrossEntries) {
  NotarySetup n;
  ASSERT_TRUE(n.w.os.Enter(n.thread, kNotaryCmdInit).exited());
  const std::vector<uint8_t> doc(64, 1);
  n.StageDocument(doc);
  for (word expected = 1; expected <= 5; ++expected) {
    EXPECT_EQ(n.w.os.Enter(n.thread, kNotaryCmdNotarize, 64).payload, expected);
  }
}

TEST(NotaryEnclaveTest, RejectsOversizedDocument) {
  NotarySetup n;
  ASSERT_TRUE(n.w.os.Enter(n.thread, kNotaryCmdInit).exited());
  EXPECT_EQ(n.w.os.Enter(n.thread, kNotaryCmdNotarize, kNotaryMaxDocBytes + 1).payload, 0u);
  EXPECT_EQ(n.w.os.Enter(n.thread, kNotaryCmdNotarize, 0).payload, 0u);
}

TEST(NotaryBackendsTest, EnclaveAndNativeProduceSameSignatures) {
  // Same key seed => both backends are the same notary; Figure 5 compares
  // their performance on identical work.
  NotarySetup n(777);
  ASSERT_TRUE(n.w.os.Enter(n.thread, kNotaryCmdInit).exited());
  NotaryNative native(777);
  native.Init();

  const std::vector<uint8_t> doc(4096, 0xd0);
  n.StageDocument(doc);
  ASSERT_EQ(n.w.os.Enter(n.thread, kNotaryCmdNotarize, 4096).payload, 1u);
  const std::vector<uint8_t> enclave_sig = n.ReadSignature(128);
  const std::vector<uint8_t> native_sig = native.Notarize(doc);
  EXPECT_EQ(enclave_sig, native_sig);
}

TEST(NotaryBackendsTest, EnclaveCostExceedsNativeByCrossingOnly) {
  NotarySetup n(9);
  NotaryNative native(9);
  ASSERT_TRUE(n.w.os.Enter(n.thread, kNotaryCmdInit).exited());
  native.Init();
  native.ResetCycles();

  const std::vector<uint8_t> doc(16384, 0x11);
  n.StageDocument(doc);
  const uint64_t before = n.w.machine.cycles.total();
  ASSERT_EQ(n.w.os.Enter(n.thread, kNotaryCmdNotarize, 16384).payload, 1u);
  const uint64_t enclave_cycles = n.w.machine.cycles.total() - before;
  native.Notarize(doc);
  const uint64_t native_cycles = native.cycles();

  EXPECT_GT(enclave_cycles, native_cycles);
  // The overhead is small relative to the work (Figure 5's whole point).
  const double overhead =
      static_cast<double>(enclave_cycles - native_cycles) / static_cast<double>(native_cycles);
  EXPECT_LT(overhead, 0.10) << "enclave overhead " << overhead * 100 << "%";
}

}  // namespace
}  // namespace komodo::enclave
