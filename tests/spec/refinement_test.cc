// Refinement: the monitor implementation (operating on simulated machine
// state) agrees with the pure-functional specification — same error codes,
// same abstract PageDB — on directed lifecycles and on thousands of
// randomized adversarial actions. This is the testing analogue of the paper's
// functional-correctness proof (§5.2).
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/fuzz/oracles.h"
#include "src/os/adversary.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"
#include "src/spec/spec_calls.h"
#include "src/spec/spec_dispatch.h"

namespace komodo {
namespace {

using os::AdvAction;
using os::Adversary;
using os::SmcRet;
using os::World;

// Applies the spec function corresponding to an adversary action, through
// the same call registry the implementation dispatches from
// (src/core/call_list.inc): the refinement suite exercises the production
// spec dispatch rather than a hand-maintained parallel table.
spec::Result ApplySpec(const spec::PageDb& d, const AdvAction& a, const arm::MachineState& m) {
  EXPECT_TRUE(spec::HasSmcSpec(a.call)) << "unexpected call " << a.call;
  return spec::ApplySmc(d, m, a.call, {a.args[0], a.args[1], a.args[2], a.args[3]});
}

TEST(RefinementTest, DirectedLifecycleMatchesSpec) {
  World w{32};
  spec::PageDb d = spec::ExtractPageDb(w.machine);

  auto run = [&](word call, word a1 = 0, word a2 = 0, word a3 = 0, word a4 = 0) {
    AdvAction act{call, {a1, a2, a3, a4}};
    const spec::Result expected = ApplySpec(d, act, w.machine);
    const SmcRet got = Adversary::Execute(w.os, act);
    EXPECT_EQ(got.err, expected.err) << act.ToString();
    d = expected.db;
    const spec::PageDb extracted = spec::ExtractPageDb(w.machine);
    ASSERT_TRUE(extracted == d) << "state divergence after " << act.ToString();
  };

  const word staging = w.os.AllocInsecurePage();
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    w.os.WriteInsecure(staging, i, i ^ 0x5a);
  }
  run(kSmcInitAddrspace, 0, 1);
  run(kSmcInitL2Table, 0, 2, 0);
  run(kSmcMapSecure, 0, 3, MakeMapping(0x8000, kMapR | kMapX), staging);
  run(kSmcInitThread, 0, 4, 0x8000);
  run(kSmcAllocSpare, 0, 5);
  run(kSmcMapInsecure, 0, MakeMapping(0x9000, kMapR | kMapW), staging);
  run(kSmcFinalise, 0);
  run(kSmcStop, 0);
  run(kSmcRemove, 5);
  run(kSmcRemove, 4);
  run(kSmcRemove, 3);
  run(kSmcRemove, 2);
  run(kSmcRemove, 1);
  run(kSmcRemove, 0);
}

TEST(RefinementTest, RandomizedAdversarialTraces) {
  // Driven through the shared fuzzing library (DESIGN.md §10): the same
  // generator and bisimulation oracle komodo-fuzz runs long campaigns with,
  // here at a ctest-sized budget. A failure prints the full replayable trace
  // — save it to a file and investigate with `komodo-fuzz --replay`.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const fuzz::Trace t = fuzz::GenerateTrace("refinement", seed, 150);
    const fuzz::Verdict v = fuzz::RunTrace(t);
    EXPECT_FALSE(v.failed) << "seed " << seed << " op " << v.failing_op << ": " << v.detail
                           << "\n"
                           << t.Format();
  }
}

TEST(RefinementTest, MeasurementMatchesSpecPrediction) {
  // The measurement stored at Finalise equals the spec's prediction from the
  // abstract construction trace.
  World w{32};
  const word staging = w.os.AllocInsecurePage();
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    w.os.WriteInsecure(staging, i, 3 * i + 1);
  }
  w.os.InitAddrspace(0, 1);
  w.os.InitL2Table(0, 2, 0);
  w.os.MapSecure(0, 3, MakeMapping(0x8000, kMapR | kMapX), staging);
  w.os.InitThread(0, 4, 0x8000);

  const spec::PageDb before = spec::ExtractPageDb(w.machine);
  const crypto::DigestWords predicted =
      spec::SpecMeasurementAfterFinalise(before[0].As<spec::AddrspacePage>());
  w.os.Finalise(0);
  const spec::PageDb after = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(after[0].As<spec::AddrspacePage>().measurement, predicted);
}

// Enter/Resume post-conditions (the spec's predicate form, §5.2): we verify
// the properties rather than a functional result, since user execution is
// nondeterministic in the spec.
TEST(RefinementTest, EnterPostConditions) {
  World w{32};
  // Enclave that exits immediately: svc #0 with r0 = exit.
  // mov r0,#1 ; svc  (exit with retval r1=arg2)
  const std::vector<word> code = {
      0xe3a00001,  // mov r0, #1 (kSvcExit)
      0xef000000,  // svc
  };
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(code).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);

  const spec::PageDb before = spec::ExtractPageDb(w.machine);
  const os::EnterResult r = w.os.Enter(e.thread, 0x1234, 0x77, 0);
  EXPECT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 0x77u);  // retval = r1 at exit = arg2 staged into r1

  const spec::PageDb after = spec::ExtractPageDb(w.machine);
  // Non-data pages unchanged; thread still not entered; invariants hold.
  EXPECT_TRUE(after[e.thread] == before[e.thread]);
  EXPECT_TRUE(after[e.addrspace] == before[e.addrspace]);
  EXPECT_TRUE(after[e.l1pt] == before[e.l1pt]);
  EXPECT_TRUE(spec::ValidPageDb(after));
  // TLB left consistent for the next entry.
  EXPECT_TRUE(w.machine.tlb_consistent);
}

}  // namespace
}  // namespace komodo
