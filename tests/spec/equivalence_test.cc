// Unit tests for the observational-equivalence relations of §6.1
// (Definitions 1 and 2, and the ≈adv machine-state extension).
#include "src/spec/equivalence.h"

#include <gtest/gtest.h>

namespace komodo::spec {
namespace {

PageDbEntry Data(PageNr owner, word fill) {
  DataPage d;
  d.contents.fill(fill);
  return PageDbEntry{owner, d};
}

PageDbEntry Disp(PageNr owner, bool entered, word pc) {
  DispatcherPage disp;
  disp.entered = entered;
  disp.pc = pc;
  return PageDbEntry{owner, disp};
}

TEST(WeakEquivTest, DataPagesEqualRegardlessOfContents) {
  EXPECT_TRUE(WeakEquivPage(Data(0, 1), Data(0, 2)));
}

TEST(WeakEquivTest, TypeMismatchDetected) {
  EXPECT_FALSE(WeakEquivPage(Data(0, 1), PageDbEntry{0, SparePage{}}));
  EXPECT_FALSE(WeakEquivPage(PageDbEntry{kInvalidPage, FreePage{}}, Data(0, 1)));
}

TEST(WeakEquivTest, DispatcherEnteredFlagObservableContextNot) {
  EXPECT_TRUE(WeakEquivPage(Disp(0, false, 0x100), Disp(0, false, 0x999)));
  EXPECT_TRUE(WeakEquivPage(Disp(0, true, 0x100), Disp(0, true, 0x999)));
  EXPECT_FALSE(WeakEquivPage(Disp(0, true, 0x100), Disp(0, false, 0x100)));
}

TEST(WeakEquivTest, AddrspaceRequiresFullEquality) {
  AddrspacePage as1;
  as1.l1pt_page = 1;
  as1.refcount = 2;
  AddrspacePage as2 = as1;
  EXPECT_TRUE(WeakEquivPage(PageDbEntry{0, as1}, PageDbEntry{0, as2}));
  as2.measurement[0] = 1;
  EXPECT_FALSE(WeakEquivPage(PageDbEntry{0, as1}, PageDbEntry{0, as2}));
}

TEST(WeakEquivTest, PageTablesRequireFullEquality) {
  L2PTablePage l2a;
  L2PTablePage l2b;
  EXPECT_TRUE(WeakEquivPage(PageDbEntry{0, l2a}, PageDbEntry{0, l2b}));
  l2b.entries[3] = SecureMapping{4, true, false};
  EXPECT_FALSE(WeakEquivPage(PageDbEntry{0, l2a}, PageDbEntry{0, l2b}));
}

class EncEquivTest : public ::testing::Test {
 protected:
  EncEquivTest() : d1(8), d2(8) {
    // Two enclaves: observer (as=0) with data page 1; other (as=2) with data
    // page 3.
    AddrspacePage as;
    as.l1pt_page = 4;
    as.refcount = 2;
    d1[0] = d2[0] = PageDbEntry{0, as};
    d1[1] = Data(0, 7);
    d2[1] = Data(0, 7);
    d1[2] = d2[2] = PageDbEntry{2, as};
    d1[3] = Data(2, 1);
    d2[3] = Data(2, 99);  // other enclave's secret differs
    d1[4] = d2[4] = PageDbEntry{0, L1PTablePage{}};
  }
  PageDb d1;
  PageDb d2;
};

TEST_F(EncEquivTest, RelatedWhenOnlyForeignSecretsDiffer) {
  const auto violations = EncEquivViolations(d1, d2, 0);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_F(EncEquivTest, OwnPagesMustBeFullyEqual) {
  d2[1] = Data(0, 8);  // observer's own data page differs
  EXPECT_FALSE(ObsEquivEnc(d1, d2, 0));
  // From the other enclave's perspective, page 1 is foreign — after aligning
  // its *own* page (3, which the fixture left different), the states relate.
  d2[3] = Data(2, 1);
  EXPECT_TRUE(ObsEquivEnc(d1, d2, 2));
}

TEST_F(EncEquivTest, FreeSetMustAgree) {
  d2[5] = Data(2, 0);
  EXPECT_FALSE(ObsEquivEnc(d1, d2, 0));
}

TEST_F(EncEquivTest, OwnershipSetMustAgree) {
  d1[5] = Data(0, 0);
  d2[5] = Data(2, 0);
  EXPECT_FALSE(ObsEquivEnc(d1, d2, 0));
}

TEST(AdvEquivTest, RegistersAndInsecureMemoryObservable) {
  arm::MachineState m1(8);
  arm::MachineState m2(8);
  PageDb d1(8);
  PageDb d2(8);
  EXPECT_TRUE(ObsEquivAdv(m1, d1, m2, d2, kInvalidPage));

  m2.r[3] = 5;
  EXPECT_FALSE(ObsEquivAdv(m1, d1, m2, d2, kInvalidPage));
  m2.r[3] = 0;

  m2.mem.Write(arm::kInsecureBase + 0x2000, 1);
  EXPECT_FALSE(ObsEquivAdv(m1, d1, m2, d2, kInvalidPage));
  m2.mem.Write(arm::kInsecureBase + 0x2000, 0);

  m2.sp_banked[static_cast<size_t>(arm::Mode::kIrq)] = 9;
  EXPECT_FALSE(ObsEquivAdv(m1, d1, m2, d2, kInvalidPage));
  m2.sp_banked[static_cast<size_t>(arm::Mode::kIrq)] = 0;
  EXPECT_TRUE(ObsEquivAdv(m1, d1, m2, d2, kInvalidPage));
}

TEST(AdvEquivTest, MonitorBankAndSecureMemoryInvisible) {
  arm::MachineState m1(8);
  arm::MachineState m2(8);
  PageDb d1(8);
  PageDb d2(8);
  // Monitor-mode banked state and secure RAM are not adversary-observable.
  m2.sp_banked[static_cast<size_t>(arm::Mode::kMonitor)] = 0x1234;
  m2.lr_banked[static_cast<size_t>(arm::Mode::kMonitor)] = 0x5678;
  m2.mem.Write(arm::kMonitorBase + 0x40, 0xdead);
  m2.mem.Write(arm::kSecurePagesBase + 0x40, 0xbeef);
  EXPECT_TRUE(ObsEquivAdv(m1, d1, m2, d2, kInvalidPage));
}

}  // namespace
}  // namespace komodo::spec
