// Typed extraction failures: when the monitor's in-memory representation does
// not decode to any abstract PageDb (possible only via fault injection or
// direct memory corruption), TryExtractPageDb must report a structured error
// naming the offending page instead of killing the process — an injected bug
// has to surface as a replayable oracle failure, not a harness abort.
#include "src/spec/extract.h"

#include <gtest/gtest.h>

#include "src/arm/page_table.h"
#include "src/core/pagedb.h"
#include "src/fuzz/inject.h"
#include "src/os/world.h"
#include "src/spec/invariants.h"

namespace komodo::spec {
namespace {

os::World& BootedWorld() {
  static os::World w(8);
  return w;
}

void WriteDbTypeWord(arm::MachineState& m, PageNr n, word type_word) {
  m.mem.Write(arm::kMonitorBase + kPageDbOffset + n * kPageDbEntryWords * arm::kWordSize,
              type_word);
}

TEST(ExtractErrorTest, CleanBootExtracts) {
  EXPECT_TRUE(TryExtractPageDb(BootedWorld().machine).has_value());
}

TEST(ExtractErrorTest, BogusTypeWordIsATypedError) {
  os::World w(8);
  WriteDbTypeWord(w.machine, 3, 0x7777);
  ExtractError err;
  EXPECT_FALSE(TryExtractPageDb(w.machine, &err).has_value());
  EXPECT_EQ(err.page, 3u);
  EXPECT_NE(err.detail.find("names no page type"), std::string::npos) << err.detail;
}

TEST(ExtractErrorTest, GarbageL1TableIsATypedError) {
  os::World w(8);
  // Type page 2 as an L1 table whose contents are not valid descriptors.
  w.machine.mem.Write(PagePaddr(2), 0x6a09e667);  // neither fault nor page-table
  WriteDbTypeWord(w.machine, 2, static_cast<word>(PageType::kL1PTable));
  ExtractError err;
  EXPECT_FALSE(TryExtractPageDb(w.machine, &err).has_value());
  EXPECT_EQ(err.page, 2u);
  EXPECT_NE(err.detail.find("neither fault nor page-table"), std::string::npos) << err.detail;
}

TEST(ExtractErrorTest, OutOfRegionL2TargetIsATypedError) {
  os::World w(8);
  // An L2 descriptor whose secure small-page target lies past the world's
  // 8 secure pages: base = kSecurePagesBase + 9 pages, small-page bits set.
  const arm::paddr target = arm::kSecurePagesBase + 9 * arm::kPageSize;
  w.machine.mem.Write(PagePaddr(4),
                      arm::MakeL2SmallPageDesc(target, /*writable=*/true, /*executable=*/false,
                                               /*ns=*/false));
  WriteDbTypeWord(w.machine, 4, static_cast<word>(PageType::kL2PTable));
  ExtractError err;
  EXPECT_FALSE(TryExtractPageDb(w.machine, &err).has_value());
  EXPECT_EQ(err.page, 4u);
}

// The formerly-aborting path end to end: the aliased InitAddrspace leaves a
// page typed L1PTable holding measurement words. Extraction reports the
// error; the abort-on-failure wrapper is only for callers that established
// decodability beforehand.
TEST(ExtractErrorTest, InitAddrspaceAliasInjectionYieldsErrorNotAbort) {
  os::World w(8);
  fuzz::ScopedInject inject("initaddrspace-alias");
  ASSERT_EQ(w.os.Smc(kSmcInitAddrspace, 5, 5, 0, 0).err, kErrSuccess)
      << "injection should make the aliased call succeed";
  ExtractError err;
  EXPECT_FALSE(TryExtractPageDb(w.machine, &err).has_value());
  EXPECT_FALSE(err.detail.empty());
}

}  // namespace
}  // namespace komodo::spec
