// §6.2's declassification channels, pinned down one by one: dynamic memory
// management leaks exactly the alloc/free pattern of spare pages; everything
// else about a dynamic allocation (contents, VA, use as data vs page table)
// stays hidden. "We are not aware of attacks on this side-channel, but
// nevertheless saw no reason to mirror [SGXv2's larger leak]" — §4.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/os/world.h"
#include "src/spec/equivalence.h"
#include "src/spec/extract.h"

namespace komodo {
namespace {

using os::World;

// Maps the spare page (arg1) at a VA chosen by the secret in data[0]:
// secret&1 ? 0x31000 : 0x30000. The VA must NOT be observable.
std::vector<word> SecretVaProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  Assembler::Label odd = a.NewLabel();
  Assembler::Label issue = a.NewLabel();
  a.Mov(R7, R0);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Tst(R5, 1u);
  a.B(odd, Cond::kNe);
  a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
  a.B(issue);
  a.Bind(odd);
  a.MovImm(R2, MakeMapping(0x31000, kMapR | kMapW));
  a.Bind(issue);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.Svc();
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

// Converts the spare to an L2 table (secret even) or a data page (secret
// odd). The OS may learn the page stopped being spare (Remove fails), but not
// which of the two it became.
std::vector<word> SecretUseProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  Assembler::Label odd = a.NewLabel();
  Assembler::Label done = a.NewLabel();
  a.Mov(R7, R0);
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Tst(R5, 1u);
  a.B(odd, Cond::kNe);
  a.MovImm(R0, kSvcInitL2Table);
  a.Mov(R1, R7);
  a.MovImm(R2, 1);  // second 4 MB region
  a.Svc();
  a.B(done);
  a.Bind(odd);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x38000, kMapR | kMapW));  // inside the existing L2
  a.Svc();
  a.Bind(done);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

struct PairedRun {
  std::unique_ptr<World> w1;
  std::unique_ptr<World> w2;
  os::EnclaveHandle e;
  PageNr spare;
};

PairedRun RunWithSecrets(const std::vector<word>& code, word s1, word s2) {
  PairedRun p;
  p.w1 = std::make_unique<World>(64);
  p.w2 = std::make_unique<World>(64);
  for (World* w : {p.w1.get(), p.w2.get()}) {
    os::EnclaveHandle e;
    auto built_e = w->os.NewEnclave().Code(code).Build();
    EXPECT_TRUE(built_e.ok());
    if (built_e.ok()) e = *std::move(built_e);
    p.e = e;
    p.spare = w->os.AllocSecurePage();
    EXPECT_EQ(w->os.AllocSpare(e.addrspace, p.spare).err, kErrSuccess);
  }
  p.w1->machine.mem.Write(PagePaddr(p.e.data_pages[1]), s1);
  p.w2->machine.mem.Write(PagePaddr(p.e.data_pages[1]), s2);
  EXPECT_TRUE(p.w1->os.Enter(p.e.thread, p.spare).exited());
  EXPECT_TRUE(p.w2->os.Enter(p.e.thread, p.spare).exited());
  return p;
}

TEST(DeclassificationTest, SecretDependentMappingAddressInvisible) {
  // Same secret parity in both worlds -> identical observable state, even
  // though the secret values differ.
  PairedRun p = RunWithSecrets(SecretVaProgram(), 0x10, 0x20);  // both even
  auto violations = spec::AdvEquivViolations(
      p.w1->machine, spec::ExtractPageDb(p.w1->machine), p.w2->machine,
      spec::ExtractPageDb(p.w2->machine), kInvalidPage);
  EXPECT_TRUE(violations.empty()) << violations.front();

  // Different parity -> different VA inside the enclave's own page table,
  // which lives in a secure page... and the L2 table contents are part of
  // =enc's full-equality clause for page tables. The difference is thus
  // *visible in the abstract relation* — exactly the spare-allocation channel
  // family the paper declassifies. Verify the leak is confined to the
  // enclave's own L2 table and nothing else (registers, memory, other pages).
  PairedRun q = RunWithSecrets(SecretVaProgram(), 0x10, 0x21);  // even vs odd
  violations = spec::AdvEquivViolations(q.w1->machine, spec::ExtractPageDb(q.w1->machine),
                                        q.w2->machine, spec::ExtractPageDb(q.w2->machine),
                                        kInvalidPage);
  for (const std::string& v : violations) {
    EXPECT_NE(v.find("weak equivalence"), std::string::npos)
        << "leak outside the declassified channel: " << v;
  }
}

TEST(DeclassificationTest, SpareConversionObservableOnlyAsRemoveFailure) {
  // Whether the enclave used the spare as an L2 table or a data page must be
  // invisible: both runs' spare pages merely stop being spare. The OS's only
  // probe — Remove — fails identically in both.
  PairedRun p = RunWithSecrets(SecretUseProgram(), 0x10, 0x21);  // L2 vs data
  const os::SmcRet r1 = p.w1->os.Remove(p.spare);
  const os::SmcRet r2 = p.w2->os.Remove(p.spare);
  EXPECT_EQ(r1.err, kErrNotStopped);
  EXPECT_EQ(r2.err, r1.err);

  // The page's concrete type differs across the worlds (kL2PTable vs
  // kDataPage) — confirm the relation flags it as (only) a weak-equivalence
  // difference on that page, i.e. the declassified bit, and that registers
  // and insecure memory agree everywhere.
  const auto violations = spec::AdvEquivViolations(
      p.w1->machine, spec::ExtractPageDb(p.w1->machine), p.w2->machine,
      spec::ExtractPageDb(p.w2->machine), kInvalidPage);
  for (const std::string& v : violations) {
    EXPECT_NE(v.find("weak equivalence"), std::string::npos)
        << "leak outside the declassified channel: " << v;
  }
}

TEST(DeclassificationTest, ExceptionTypeIsDeclassifiedNothingElse) {
  // Two enclaves fault differently (data abort vs undefined instruction):
  // the OS learns the *type* — r1 differs — and nothing else.
  auto run = [](const std::vector<word>& code) {
    auto w = std::make_unique<World>(64);
    os::EnclaveHandle e;
    auto built_e = w->os.NewEnclave().Code(code).Build();
    EXPECT_TRUE(built_e.ok());
    if (built_e.ok()) e = *std::move(built_e);
    // The OS scrubs its own staging pages so the comparison below sees only
    // what the *monitor and enclave* did to insecure memory. (The programs
    // differ, so the staging copies trivially differ — an OS-side artefact.)
    for (word pg = 16; pg < 32; ++pg) {
      w->os.WriteInsecurePage(pg, {});
    }
    EXPECT_TRUE(w->os.Enter(e.thread).faulted());
    return w;
  };
  // Data abort:
  arm::Assembler a1(os::kEnclaveCodeVa);
  a1.MovImm(arm::R4, 0x3f00'0000);
  a1.Ldr(arm::R5, arm::R4, 0);
  // Undefined instruction, with identical preceding instructions so the code
  // pages differ only at the faulting word:
  arm::Assembler a2(os::kEnclaveCodeVa);
  a2.MovImm(arm::R4, 0x3f00'0000);
  a2.EmitWord(0xe7f000f0);

  auto w1 = run(a1.Finish());
  auto w2 = run(a2.Finish());
  EXPECT_EQ(w1->machine.r[1], 2u);  // data abort code
  EXPECT_EQ(w2->machine.r[1], 3u);  // undefined-instruction code
  const auto violations = spec::AdvEquivViolations(
      w1->machine, spec::ExtractPageDb(w1->machine), w2->machine,
      spec::ExtractPageDb(w2->machine), kInvalidPage);
  // Expected differences: r1 (the declassified type) and the two code pages'
  // measured contents (different programs => different enclaves). Nothing
  // else — in particular no register, banked-register or insecure-memory
  // deltas betray the fault detail (faulting address, PC, etc.).
  for (const std::string& v : violations) {
    const bool allowed = v == "r1 differs" || v.find("weak equivalence") != std::string::npos;
    EXPECT_TRUE(allowed) << "leak outside the declassified channels: " << v;
  }
}

}  // namespace
}  // namespace komodo
