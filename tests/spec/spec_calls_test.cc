// Direct unit tests of the pure specification functions: every precondition
// of every call produces the documented error, and effects are exactly the
// documented state change. (The refinement suite checks impl-vs-spec; this
// suite pins down the spec itself.)
#include "src/spec/spec_calls.h"

#include <gtest/gtest.h>

#include "src/spec/invariants.h"

namespace komodo::spec {
namespace {

std::array<word, arm::kWordsPerPage> Fill(word v) {
  std::array<word, arm::kWordsPerPage> a;
  a.fill(v);
  return a;
}

class SpecCallsTest : public ::testing::Test {
 protected:
  SpecCallsTest() : d(16) {}

  void Apply(Result r) {
    ASSERT_EQ(r.err, kErrSuccess);
    d = std::move(r.db);
  }

  // A ready-to-run enclave: as=0, l1pt=1, l2=2, data=3, disp=4.
  void BuildFinalised() {
    Apply(SpecInitAddrspace(d, 0, 1));
    Apply(SpecInitL2Table(d, 0, 2, 0));
    Apply(SpecMapSecure(d, 0, 3, MakeMapping(0x8000, kMapR | kMapX), true, Fill(7)));
    Apply(SpecInitThread(d, 0, 4, 0x8000));
    Apply(SpecFinalise(d, 0));
  }

  PageDb d;
};

TEST_F(SpecCallsTest, InitAddrspaceEffects) {
  Apply(SpecInitAddrspace(d, 5, 9));
  EXPECT_EQ(d[5].type(), PageType::kAddrspace);
  EXPECT_EQ(d[5].owner, 5u);
  EXPECT_EQ(d[9].type(), PageType::kL1PTable);
  EXPECT_EQ(d[9].owner, 5u);
  const AddrspacePage& as = d[5].As<AddrspacePage>();
  EXPECT_EQ(as.l1pt_page, 9u);
  EXPECT_EQ(as.refcount, 1u);
  EXPECT_EQ(as.state, AddrspaceState::kInit);
}

TEST_F(SpecCallsTest, InitAddrspaceErrors) {
  EXPECT_EQ(SpecInitAddrspace(d, 16, 0).err, kErrInvalidPageNo);
  EXPECT_EQ(SpecInitAddrspace(d, 0, 16).err, kErrInvalidPageNo);
  EXPECT_EQ(SpecInitAddrspace(d, 3, 3).err, kErrInvalidPageNo);
  Apply(SpecInitAddrspace(d, 0, 1));
  EXPECT_EQ(SpecInitAddrspace(d, 0, 2).err, kErrPageInUse);
  EXPECT_EQ(SpecInitAddrspace(d, 2, 1).err, kErrPageInUse);
}

TEST_F(SpecCallsTest, MapSecureErrorsInDocumentedOrder) {
  // Addrspace validity outranks page validity outranks mapping validity
  // outranks source validity outranks table presence outranks slot vacancy.
  EXPECT_EQ(SpecMapSecure(d, 0, 3, 0, false, Fill(0)).err, kErrInvalidAddrspace);
  Apply(SpecInitAddrspace(d, 0, 1));
  EXPECT_EQ(SpecMapSecure(d, 0, 16, MakeMapping(0x8000, kMapR), true, Fill(0)).err,
            kErrInvalidPageNo);
  EXPECT_EQ(SpecMapSecure(d, 0, 3, 0, true, Fill(0)).err, kErrInvalidMapping);
  EXPECT_EQ(SpecMapSecure(d, 0, 3, MakeMapping(0x8000, kMapR), false, Fill(0)).err,
            kErrInvalidArgument);
  EXPECT_EQ(SpecMapSecure(d, 0, 3, MakeMapping(0x8000, kMapR), true, Fill(0)).err,
            kErrPageTableMissing);
  Apply(SpecInitL2Table(d, 0, 2, 0));
  Apply(SpecMapSecure(d, 0, 3, MakeMapping(0x8000, kMapR), true, Fill(0)));
  EXPECT_EQ(SpecMapSecure(d, 0, 5, MakeMapping(0x8000, kMapR), true, Fill(0)).err,
            kErrAddrInUse);
  Apply(SpecFinalise(d, 0));
  EXPECT_EQ(SpecMapSecure(d, 0, 5, MakeMapping(0x9000, kMapR), true, Fill(0)).err,
            kErrAlreadyFinal);
}

TEST_F(SpecCallsTest, MeasurementStreamAdvancesDeterministically) {
  PageDb d2(16);
  Result r1 = SpecInitAddrspace(d, 0, 1);
  Result r2 = SpecInitAddrspace(d2, 0, 1);
  EXPECT_TRUE(r1.db == r2.db);
  r1 = SpecInitThread(r1.db, 0, 4, 0x8000);
  r2 = SpecInitThread(r2.db, 0, 4, 0x8004);  // different entry
  EXPECT_FALSE(r1.db[0].As<AddrspacePage>().measurement_stream ==
               r2.db[0].As<AddrspacePage>().measurement_stream);
}

TEST_F(SpecCallsTest, FinaliseComputesDigestOfStream) {
  Apply(SpecInitAddrspace(d, 0, 1));
  Apply(SpecInitThread(d, 0, 4, 0x8000));
  const crypto::DigestWords expected =
      SpecMeasurementAfterFinalise(d[0].As<AddrspacePage>());
  Apply(SpecFinalise(d, 0));
  EXPECT_EQ(d[0].As<AddrspacePage>().measurement, expected);
  EXPECT_EQ(d[0].As<AddrspacePage>().state, AddrspaceState::kFinal);
}

TEST_F(SpecCallsTest, RemoveRefcountAccounting) {
  BuildFinalised();
  EXPECT_EQ(d[0].As<AddrspacePage>().refcount, 4u);
  Apply(SpecStop(d, 0));
  Apply(SpecRemove(d, 4));
  EXPECT_EQ(d[0].As<AddrspacePage>().refcount, 3u);
  Apply(SpecRemove(d, 3));
  Apply(SpecRemove(d, 2));
  Apply(SpecRemove(d, 1));
  EXPECT_EQ(d[0].As<AddrspacePage>().refcount, 0u);
  Apply(SpecRemove(d, 0));
  EXPECT_TRUE(d[0].IsFree());
}

TEST_F(SpecCallsTest, SvcMapDataZeroFills) {
  BuildFinalised();
  Apply(SpecAllocSpare(d, 0, 5));
  Apply(SpecSvcMapData(d, 0, 5, MakeMapping(0x30000, kMapR | kMapW)));
  EXPECT_EQ(d[5].type(), PageType::kDataPage);
  EXPECT_EQ(d[5].As<DataPage>().contents, Fill(0));
  // And it is reachable from the table.
  const auto slot = SpecL2Slot(d, 0, MakeMapping(0x30000, kMapR | kMapW));
  ASSERT_TRUE(slot.has_value());
  const auto* sm =
      std::get_if<SecureMapping>(&d[slot->first].As<L2PTablePage>().entries[slot->second]);
  ASSERT_NE(sm, nullptr);
  EXPECT_EQ(sm->data_page, 5u);
  EXPECT_TRUE(sm->writable);
  EXPECT_FALSE(sm->executable);
}

TEST_F(SpecCallsTest, SvcUnmapRequiresExactMapping) {
  BuildFinalised();
  Apply(SpecAllocSpare(d, 0, 5));
  Apply(SpecSvcMapData(d, 0, 5, MakeMapping(0x30000, kMapR | kMapW)));
  EXPECT_EQ(SpecSvcUnmapData(d, 0, 5, MakeMapping(0x31000, kMapR | kMapW)).err,
            kErrInvalidMapping);
  EXPECT_EQ(SpecSvcUnmapData(d, 0, 3, MakeMapping(0x30000, kMapR | kMapW)).err,
            kErrInvalidMapping);  // data page 3 is mapped at 0x8000, not here
  Apply(SpecSvcUnmapData(d, 0, 5, MakeMapping(0x30000, kMapR | kMapW)));
  EXPECT_EQ(d[5].type(), PageType::kSparePage);
}

TEST_F(SpecCallsTest, SvcInitL2TableCollisions) {
  BuildFinalised();
  Apply(SpecAllocSpare(d, 0, 5));
  EXPECT_EQ(SpecSvcInitL2Table(d, 0, 5, 0).err, kErrAddrInUse);  // slot 0 taken at build
  EXPECT_EQ(SpecSvcInitL2Table(d, 0, 5, 256).err, kErrInvalidMapping);
  EXPECT_EQ(SpecSvcInitL2Table(d, 0, 3, 1).err, kErrNotSpare);  // data page, not spare
  Apply(SpecSvcInitL2Table(d, 0, 5, 1));
  EXPECT_EQ(d[5].type(), PageType::kL2PTable);
}

TEST_F(SpecCallsTest, EveryHappyPathKeepsInvariants) {
  BuildFinalised();
  Apply(SpecAllocSpare(d, 0, 5));
  Apply(SpecSvcMapData(d, 0, 5, MakeMapping(0x30000, kMapR | kMapW)));
  const auto violations = PageDbViolations(d);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

}  // namespace
}  // namespace komodo::spec
