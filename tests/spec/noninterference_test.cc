// Noninterference (§6): paired executions that differ only in secrets must
// remain observationally equivalent to the adversary (confidentiality), and
// paired executions that differ only in untrusted state must leave the
// trusted enclave's view unchanged (integrity). Declassified channels —
// exception type, exit value, spare-page allocation (§6.2) — are tested to be
// the *only* ways information crosses.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/enclave/programs.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/oracles.h"
#include "src/os/adversary.h"
#include "src/os/world.h"
#include "src/spec/equivalence.h"
#include "src/spec/extract.h"

namespace komodo {
namespace {

using os::EnclaveHandle;
using os::World;

// A victim that computes on its secret (data[0]) purely internally: squares
// it into data[1] and exits with a constant.
std::vector<word> InternalComputeProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Mul(R6, R5, R5);
  a.Str(R6, R4, 4);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

// A victim that loads its secret into registers and spins (so an interrupt
// suspends it with secret-laden context).
std::vector<word> SecretSpinProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);  // secret now lives in r5
  a.Mov(R6, R5);
  a.Mov(R7, R5);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.Add(R8, R8, 1u);
  a.B(loop);
  return a.Finish();
}

// Exits with the secret as the return value (declassified by enclave choice).
std::vector<word> ExitWithSecretProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R1, R4, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

struct Pair {
  World w1;
  World w2;
  EnclaveHandle victim;  // same handle in both (identical construction)

  explicit Pair(const std::vector<word>& victim_code, word steps = 0)
      : w1(64, Config(steps)), w2(64, Config(steps)) {
    EnclaveHandle e1;
    EnclaveHandle e2;
    auto built_e1 = w1.os.NewEnclave().Code(victim_code).Build();
    EXPECT_TRUE(built_e1.ok());
    if (built_e1.ok()) e1 = *std::move(built_e1);
    auto built_e2 = w2.os.NewEnclave().Code(victim_code).Build();
    EXPECT_TRUE(built_e2.ok());
    if (built_e2.ok()) e2 = *std::move(built_e2);
    EXPECT_EQ(e1.addrspace, e2.addrspace);
    victim = e1;
  }

  static Monitor::Config Config(word steps) {
    Monitor::Config c;
    if (steps != 0) {
      c.max_enclave_steps = steps;
    }
    return c;
  }

  // Plants differing secrets in the victim's private data page, modelling a
  // secret established through a secure channel after launch (initial
  // contents are OS-supplied and hence public; see §6.2 discussion).
  void PlantSecrets(word s1, word s2) {
    w1.machine.mem.Write(PagePaddr(victim.data_pages[1]), s1);
    w2.machine.mem.Write(PagePaddr(victim.data_pages[1]), s2);
  }

  std::vector<std::string> AdvViolations() {
    return spec::AdvEquivViolations(w1.machine, spec::ExtractPageDb(w1.machine), w2.machine,
                                    spec::ExtractPageDb(w2.machine), kInvalidPage);
  }
};

TEST(ConfidentialityTest, InternalComputationInvisibleToOs) {
  Pair p(InternalComputeProgram());
  p.PlantSecrets(0x1111, 0x2222);
  const os::EnterResult r1 = p.w1.os.Enter(p.victim.thread);
  const os::EnterResult r2 = p.w2.os.Enter(p.victim.thread);
  EXPECT_EQ(r1.err, r2.err);
  EXPECT_EQ(r1.payload, r2.payload);
  const auto violations = p.AdvViolations();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ConfidentialityTest, InterruptedSecretContextInvisibleToOs) {
  Pair p(SecretSpinProgram(), /*steps=*/300);
  p.PlantSecrets(0xaaaa, 0xbbbb);
  const os::EnterResult r1 = p.w1.os.Enter(p.victim.thread);
  const os::EnterResult r2 = p.w2.os.Enter(p.victim.thread);
  EXPECT_TRUE(r1.interrupted());
  EXPECT_TRUE(r2.interrupted());
  // Secret-laden registers were saved to the thread page; nothing observable
  // may differ.
  auto violations = p.AdvViolations();
  EXPECT_TRUE(violations.empty()) << violations.front();
  // Resume and interrupt again; still nothing.
  EXPECT_TRUE(p.w1.os.Resume(p.victim.thread).interrupted());
  EXPECT_TRUE(p.w2.os.Resume(p.victim.thread).interrupted());
  violations = p.AdvViolations();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ConfidentialityTest, AdversarialSmcTracePreservesEquivalence) {
  // Driven through the shared fuzzing library (DESIGN.md §10): the
  // noninterference oracle builds the paired secret-differing worlds, replays
  // the identical randomized OS trace against both, and checks every SMC
  // result plus the full ≈adv relation — the same oracle komodo-fuzz runs
  // long campaigns with. A failure prints the replayable trace.
  for (uint64_t seed = 70; seed < 73; ++seed) {
    const fuzz::Trace t = fuzz::GenerateTrace("noninterference", seed, 80);
    const fuzz::Verdict v = fuzz::RunTrace(t);
    EXPECT_FALSE(v.failed) << "seed " << seed << " op " << v.failing_op << ": " << v.detail
                           << "\n"
                           << t.Format();
  }
}

TEST(ConfidentialityTest, ExitValueIsTheOnlyLeakWhenEnclaveDeclassifies) {
  // An enclave may declassify through its exit value (§6.2). The difference
  // must be confined to r1 — nothing else may vary.
  Pair p(ExitWithSecretProgram());
  p.PlantSecrets(0x1111, 0x2222);
  const os::EnterResult r1 = p.w1.os.Enter(p.victim.thread);
  const os::EnterResult r2 = p.w2.os.Enter(p.victim.thread);
  EXPECT_EQ(r1.payload, 0x1111u);
  EXPECT_EQ(r2.payload, 0x2222u);
  const auto violations = p.AdvViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], "r1 differs");
}

TEST(ConfidentialityTest, EnclaveChoosingToWriteInsecureMemoryLeaks) {
  // Komodo does not police what enclaves write to shared memory (§6): an
  // enclave that publishes its secret produces exactly an insecure-memory
  // difference. This documents the boundary of the guarantee.
  World w1{64};
  World w2{64};
  EnclaveHandle e1;
  EnclaveHandle e2;
  auto built_e1 = w1.os.NewEnclave().Code(enclave::LeakSecretProgram()).SharedPage().Build();
  ASSERT_TRUE(built_e1.ok());
  e1 = *std::move(built_e1);
  auto built_e2 = w2.os.NewEnclave().Code(enclave::LeakSecretProgram()).SharedPage().Build();
  ASSERT_TRUE(built_e2.ok());
  e2 = *std::move(built_e2);
  w1.machine.mem.Write(PagePaddr(e1.data_pages[1]), 0xaaaa);
  w2.machine.mem.Write(PagePaddr(e2.data_pages[1]), 0xbbbb);
  w1.os.Enter(e1.thread);
  w2.os.Enter(e2.thread);
  const auto violations = spec::AdvEquivViolations(
      w1.machine, spec::ExtractPageDb(w1.machine), w2.machine, spec::ExtractPageDb(w2.machine),
      kInvalidPage);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("insecure memory"), std::string::npos);
}

TEST(ConfidentialityTest, FaultingEnclaveRevealsOnlyExceptionType) {
  // Two victims fault at different PCs with different secrets in flight; the
  // OS sees the same error code and the same machine state.
  const auto make_faulter = [](word secret_offset) {
    arm::Assembler a(os::kEnclaveCodeVa);
    using namespace arm;
    a.MovImm(R4, os::kEnclaveDataVa);
    a.Ldr(R5, R4, static_cast<int32_t>(secret_offset));
    a.MovImm(R6, 0x3f00'0000);  // unmapped
    a.Str(R5, R6, 0);           // data abort, secret in r5
    return a.Finish();
  };
  // Same program in both worlds (measurement must match); secrets differ.
  Pair p(make_faulter(0));
  p.PlantSecrets(0xdead, 0xbeef);
  const os::EnterResult r1 = p.w1.os.Enter(p.victim.thread);
  const os::EnterResult r2 = p.w2.os.Enter(p.victim.thread);
  EXPECT_TRUE(r1.faulted());
  EXPECT_EQ(r1.err, r2.err);
  EXPECT_EQ(r1.payload, r2.payload);  // same declassified exception type
  const auto violations = p.AdvViolations();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(IntegrityTest, OsGarbageCannotInfluenceEnclave) {
  // Untrusted state differs between the runs in unsanctioned ways: OS
  // register garbage and unrelated insecure memory. The victim's pages and
  // results must be identical.
  Pair p(InternalComputeProgram());
  p.PlantSecrets(0x7777, 0x7777);  // same secret: victim state starts equal

  // Differing untrusted state.
  for (int i = 4; i <= 11; ++i) {
    p.w1.machine.r[i] = 0x100 + i;
    p.w2.machine.r[i] = 0x900 + i;
  }
  p.w1.machine.mem.Write(arm::kInsecureBase + 0x7000, 0x1);
  p.w2.machine.mem.Write(arm::kInsecureBase + 0x7000, 0x2);

  const os::EnterResult r1 = p.w1.os.Enter(p.victim.thread);
  const os::EnterResult r2 = p.w2.os.Enter(p.victim.thread);
  EXPECT_EQ(r1.err, r2.err);
  EXPECT_EQ(r1.payload, r2.payload);

  // ≈enc for the victim: its own pages fully equal across the two worlds.
  const auto violations =
      spec::EncEquivViolations(spec::ExtractPageDb(p.w1.machine),
                               spec::ExtractPageDb(p.w2.machine), p.victim.addrspace);
  EXPECT_TRUE(violations.empty()) << violations.front();
  // In particular the computed square landed identically.
  EXPECT_EQ(p.w1.machine.mem.Read(PagePaddr(p.victim.data_pages[1]) + 4),
            p.w2.machine.mem.Read(PagePaddr(p.victim.data_pages[1]) + 4));
}

TEST(IntegrityTest, HostileSmcStormCannotCorruptEnclave) {
  // An adversary hammers the monitor in one world with random SMCs that spare
  // the victim's own pages; the victim's pages and behaviour must equal those
  // of the undisturbed world. (A trace that *does* touch the victim — e.g.
  // Stop — legitimately changes what the OS is allowed to change; the paired
  // same-trace tests above cover that case.)
  Pair p(enclave::CounterProgram());
  std::vector<PageNr> victim_pages = {p.victim.addrspace, p.victim.l1pt, p.victim.thread};
  victim_pages.insert(victim_pages.end(), p.victim.l2pts.begin(), p.victim.l2pts.end());
  victim_pages.insert(victim_pages.end(), p.victim.data_pages.begin(),
                      p.victim.data_pages.end());
  // Only two calls can actually change a finalised victim's state: Stop and
  // AllocSpare targeting its address space. Everything else aimed at the
  // victim is rejected by the monitor, which is itself part of what the test
  // demonstrates — so those actions stay in the storm.
  const PageNr victim_as = p.victim.addrspace;
  const auto touches_victim = [victim_as](const os::AdvAction& a) {
    return (a.call == kSmcStop || a.call == kSmcAllocSpare) && a.args[0] == victim_as;
  };
  os::Adversary adv(p.w2.os, 99);
  int executed = 0;
  for (int i = 0; i < 600 && executed < 300; ++i) {
    const os::AdvAction a = adv.NextAction();
    if (touches_victim(a)) {
      continue;
    }
    os::Adversary::Execute(p.w2.os, a);
    ++executed;
  }
  ASSERT_GT(executed, 100);

  const os::EnterResult r1 = p.w1.os.Enter(p.victim.thread, 5);
  const os::EnterResult r2 = p.w2.os.Enter(p.victim.thread, 5);
  EXPECT_EQ(r1.err, r2.err);
  EXPECT_EQ(r1.payload, r2.payload);

  // The victim's own pages are bit-identical across the two worlds.
  const spec::PageDb d1 = spec::ExtractPageDb(p.w1.machine);
  const spec::PageDb d2 = spec::ExtractPageDb(p.w2.machine);
  for (PageNr page : victim_pages) {
    EXPECT_TRUE(d1[page] == d2[page]) << "victim page " << page << " corrupted";
  }
}

TEST(IntegrityTest, OsCannotForgeEnclaveMemoryThroughMonitorApi) {
  // Direct attempts: map an insecure page over enclave VA space after
  // finalise, re-map secure pages, alloc into a finalised enclave.
  Pair p(enclave::CounterProgram());
  World& w = p.w1;
  const word pg = w.os.AllocInsecurePage();
  EXPECT_EQ(w.os.MapInsecure(p.victim.addrspace, MakeMapping(os::kEnclaveDataVa, kMapR | kMapW),
                             pg)
                .err,
            kErrAlreadyFinal);
  EXPECT_EQ(
      w.os.MapSecure(p.victim.addrspace, 40, MakeMapping(os::kEnclaveDataVa, kMapR | kMapW), pg)
          .err,
      kErrAlreadyFinal);
  EXPECT_EQ(w.os.InitThread(p.victim.addrspace, 40, 0xbad).err, kErrAlreadyFinal);
}

}  // namespace
}  // namespace komodo
