// PageDB validity invariants: hand-built abstract states, both valid and
// deliberately corrupted, plus the extracted state of real monitor runs.
#include "src/spec/invariants.h"

#include <gtest/gtest.h>

#include "src/spec/spec_calls.h"

namespace komodo::spec {
namespace {

PageDb EmptyDb() { return PageDb(16); }

// A minimal consistent enclave: as=0, l1pt=1, l2pt=2, data=3, disp=4.
PageDb SmallEnclaveDb() {
  PageDb d = EmptyDb();
  AddrspacePage as;
  as.l1pt_page = 1;
  as.refcount = 4;
  as.state = AddrspaceState::kFinal;
  d[0] = PageDbEntry{0, as};
  L1PTablePage l1;
  l1.l2_tables[0] = 2;
  d[1] = PageDbEntry{0, l1};
  L2PTablePage l2;
  l2.entries[8] = SecureMapping{3, true, false};
  d[2] = PageDbEntry{0, l2};
  d[3] = PageDbEntry{0, DataPage{}};
  d[4] = PageDbEntry{0, DispatcherPage{}};
  return d;
}

TEST(InvariantsTest, EmptyDbValid) { EXPECT_TRUE(ValidPageDb(EmptyDb())); }

TEST(InvariantsTest, SmallEnclaveValid) {
  const auto violations = PageDbViolations(SmallEnclaveDb());
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(InvariantsTest, DetectsWrongRefcount) {
  PageDb d = SmallEnclaveDb();
  d[0].As<AddrspacePage>().refcount = 2;
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsFreePageWithOwner) {
  PageDb d = SmallEnclaveDb();
  d[9] = PageDbEntry{0, FreePage{}};
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsOrphanPage) {
  PageDb d = SmallEnclaveDb();
  d[9] = PageDbEntry{12, SparePage{}};  // owner 12 is free, not an addrspace
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsAddrspaceNotOwningItself) {
  PageDb d = SmallEnclaveDb();
  d[0].owner = 3;
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsBadL1Reference) {
  PageDb d = SmallEnclaveDb();
  d[0].As<AddrspacePage>().l1pt_page = 3;  // a data page
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsL1SlotToForeignTable) {
  PageDb d = SmallEnclaveDb();
  // Second enclave (as=8, l1pt=9) referencing enclave 0's L2 table.
  AddrspacePage as;
  as.l1pt_page = 9;
  as.refcount = 1;
  d[8] = PageDbEntry{8, as};
  L1PTablePage l1;
  l1.l2_tables[0] = 2;  // foreign!
  d[9] = PageDbEntry{8, l1};
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsL2MappingForeignData) {
  PageDb d = SmallEnclaveDb();
  AddrspacePage as;
  as.l1pt_page = 9;
  as.refcount = 3;
  d[8] = PageDbEntry{8, as};
  L1PTablePage l1;
  l1.l2_tables[0] = 10;
  d[9] = PageDbEntry{8, l1};
  L2PTablePage l2;
  l2.entries[5] = SecureMapping{3, false, false};  // page 3 belongs to enclave 0
  d[10] = PageDbEntry{8, l2};
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsDoubleMappedDataPage) {
  PageDb d = SmallEnclaveDb();
  d[2].As<L2PTablePage>().entries[9] = SecureMapping{3, false, false};
  d[0].As<AddrspacePage>().refcount = 4;
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, DetectsUnmappedDataPage) {
  PageDb d = SmallEnclaveDb();
  d[2].As<L2PTablePage>().entries[8] = std::monostate{};
  EXPECT_FALSE(ValidPageDb(d));
}

TEST(InvariantsTest, StoppedAddrspaceExemptFromTableChecks) {
  PageDb d = SmallEnclaveDb();
  d[0].As<AddrspacePage>().state = AddrspaceState::kStopped;
  // Remove the data page out from under the table — legal when stopped.
  d[3] = PageDbEntry{kInvalidPage, FreePage{}};
  d[0].As<AddrspacePage>().refcount = 3;
  const auto violations = PageDbViolations(d);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(InvariantsTest, SpecCallsPreserveValidity) {
  // Drive the spec functions directly through a lifecycle and check validity
  // after every step.
  PageDb d = EmptyDb();
  auto step = [&d](Result r) {
    EXPECT_EQ(r.err, kErrSuccess);
    d = std::move(r.db);
    const auto violations = PageDbViolations(d);
    ASSERT_TRUE(violations.empty()) << violations.front();
  };
  step(SpecInitAddrspace(d, 0, 1));
  step(SpecInitL2Table(d, 0, 2, 0));
  std::array<word, arm::kWordsPerPage> contents{};
  step(SpecMapSecure(d, 0, 3, MakeMapping(0x8000, kMapR | kMapX), true, contents));
  step(SpecInitThread(d, 0, 4, 0x8000));
  step(SpecAllocSpare(d, 0, 5));
  step(SpecMapInsecure(d, 0, MakeMapping(0x9000, kMapR | kMapW), true, 40));
  step(SpecFinalise(d, 0));
  step(SpecSvcInitL2Table(d, 0, 5, 1));
  step(SpecAllocSpare(d, 0, 6));
  step(SpecSvcMapData(d, 0, 6, MakeMapping(0x0040'0000, kMapR | kMapW)));
  step(SpecSvcUnmapData(d, 0, 6, MakeMapping(0x0040'0000, kMapR | kMapW)));
  step(SpecStop(d, 0));
  for (PageNr n : {6u, 5u, 4u, 3u, 2u, 1u}) {
    step(SpecRemove(d, n));
  }
  step(SpecRemove(d, 0));
  EXPECT_TRUE(d == EmptyDb());
}

TEST(InvariantsTest, SpecFailuresLeaveStateUnchanged) {
  PageDb d = EmptyDb();
  d = SpecInitAddrspace(d, 0, 1).db;
  const PageDb before = d;
  // Failed calls must return the input state unchanged.
  auto check = [&before](const Result& r) {
    EXPECT_NE(r.err, kErrSuccess);
    EXPECT_TRUE(r.db == before);
  };
  check(SpecInitAddrspace(d, 0, 2));
  check(SpecInitL2Table(d, 0, 1, 0));
  check(SpecInitThread(d, 2, 3, 0));
  check(SpecRemove(d, 1));
  check(SpecSvcMapData(d, 0, 9, MakeMapping(0x8000, kMapR)));
}

}  // namespace
}  // namespace komodo::spec
