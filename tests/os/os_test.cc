#include "src/os/os.h"

#include <gtest/gtest.h>

#include "src/os/world.h"
#include "src/spec/extract.h"

namespace komodo::os {
namespace {

TEST(OsTest, WorldBootsIntoNormalWorldSupervisor) {
  World w{32};
  EXPECT_EQ(w.machine.cpsr.mode, arm::Mode::kSupervisor);
  EXPECT_EQ(w.machine.CurrentWorld(), arm::World::kNormal);
  EXPECT_FALSE(w.machine.cpsr.irq_masked);
}

TEST(OsTest, BootInitialisesMonitorGlobals) {
  World w{32};
  EXPECT_EQ(w.machine.mem.Read(arm::kMonitorBase + kGlobalNPages), 32u);
  EXPECT_EQ(w.machine.mem.Read(arm::kMonitorBase + kGlobalCurDispatcher), kInvalidPage);
  // An attestation key was derived (vanishingly unlikely to be all-zero).
  word nonzero = 0;
  for (word i = 0; i < 8; ++i) {
    nonzero |= w.machine.mem.Read(arm::kMonitorBase + kGlobalAttestKey + i * 4);
  }
  EXPECT_NE(nonzero, 0u);
}

TEST(OsTest, BootMarksAllPagesFree) {
  World w{32};
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  for (PageNr n = 0; n < 32; ++n) {
    EXPECT_TRUE(d[n].IsFree()) << n;
  }
}

TEST(OsTest, SecurePageAllocatorAscendingAndReusable) {
  World w{32};
  EXPECT_EQ(w.os.AllocSecurePage(), 0u);
  EXPECT_EQ(w.os.AllocSecurePage(), 1u);
  w.os.FreeSecurePage(0);
  EXPECT_EQ(w.os.AllocSecurePage(), 0u);
}

TEST(OsTest, InsecurePageReadWrite) {
  World w{32};
  const word pg = w.os.AllocInsecurePage();
  w.os.WriteInsecure(pg, 3, 0x1234);
  EXPECT_EQ(w.os.ReadInsecure(pg, 3), 0x1234u);
  EXPECT_EQ(w.machine.mem.Read(pg * arm::kPageSize + 12), 0x1234u);
  w.os.WriteInsecurePage(pg, {1, 2, 3});
  EXPECT_EQ(w.os.ReadInsecure(pg, 0), 1u);
  EXPECT_EQ(w.os.ReadInsecure(pg, 2), 3u);
  EXPECT_EQ(w.os.ReadInsecure(pg, 3), 0u);  // tail zeroed
}

TEST(OsTest, SmcRestoresOsContext) {
  World w{32};
  w.machine.r[7] = 0x777;
  const word pc_before = w.machine.pc;
  w.os.Smc(kSmcGetPhysPages);
  EXPECT_EQ(w.machine.r[7], 0x777u);
  EXPECT_EQ(w.machine.pc, pc_before + 4);  // returned after the smc insn
  EXPECT_EQ(w.machine.cpsr.mode, arm::Mode::kSupervisor);
}

TEST(OsTest, BuilderProducesRunnableLayout) {
  World w{64};
  EnclaveHandle e;
  // Exit immediately with r1 = 0 (mov r0,#1; svc).
  auto built_e = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).SharedPage().Data({42}).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[e.addrspace].type(), PageType::kAddrspace);
  EXPECT_EQ(d[e.addrspace].As<spec::AddrspacePage>().state, AddrspaceState::kFinal);
  EXPECT_EQ(d[e.thread].type(), PageType::kDispatcher);
  ASSERT_EQ(e.data_pages.size(), 3u);  // code, data, stack
  EXPECT_EQ(d[e.data_pages[1]].As<spec::DataPage>().contents[0], 42u);
  EXPECT_TRUE(w.os.Enter(e.thread).exited());
}

TEST(OsTest, BuilderPropagatesMonitorErrors) {
  World w{8};  // too few pages: builder runs the monitor out of valid pages
  EnclaveHandle e;
  // 8 pages suffice for as+l1pt+l2+3 data+thread = 7; a second enclave fails.
  auto built_e = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  auto built_e2 = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_FALSE(built_e2.ok());
  EXPECT_NE(built_e2.error(), KomErr::kSuccess);
}

TEST(OsTest, MultipleEnclavesCoexist) {
  World w{64};
  EnclaveHandle a;
  EnclaveHandle b;
  auto built_a = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_a.ok());
  a = *std::move(built_a);
  auto built_b = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_b.ok());
  b = *std::move(built_b);
  EXPECT_NE(a.addrspace, b.addrspace);
  EXPECT_TRUE(w.os.Enter(a.thread).exited());
  EXPECT_TRUE(w.os.Enter(b.thread).exited());
}

}  // namespace
}  // namespace komodo::os
