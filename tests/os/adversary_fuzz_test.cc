// Fuzz-style robustness: long random adversarial SMC traces must never crash
// the monitor, violate PageDB invariants, or corrupt a bystander enclave.
#include <gtest/gtest.h>

#include "src/fuzz/generator.h"
#include "src/fuzz/oracles.h"
#include "src/os/adversary.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo::os {
namespace {

TEST(AdversaryFuzzTest, InvariantsSurviveLongTraces) {
  // Driven through the shared fuzzing library (DESIGN.md §10): the invariants
  // oracle checks spec::PageDbViolations after *every* operation of the same
  // randomized traces komodo-fuzz generates. A failure prints the replayable
  // trace for `komodo-fuzz --replay`.
  for (uint64_t seed = 100; seed < 106; ++seed) {
    const fuzz::Trace t = fuzz::GenerateTrace("invariants", seed, 250);
    const fuzz::Verdict v = fuzz::RunTrace(t);
    EXPECT_FALSE(v.failed) << "seed " << seed << " op " << v.failing_op << ": " << v.detail
                           << "\n"
                           << t.Format();
  }
}

TEST(AdversaryFuzzTest, ActionMixCoversSuccessAndFailure) {
  World w{24};
  Adversary adv(w.os, 7);
  int successes = 0;
  int failures = 0;
  for (int i = 0; i < 500; ++i) {
    const AdvAction a = adv.NextAction();
    const SmcRet r = Adversary::Execute(w.os, a);
    (r.err == kErrSuccess ? successes : failures)++;
  }
  EXPECT_GT(successes, 20) << "adversary too weak: nothing succeeds";
  EXPECT_GT(failures, 20) << "adversary too tame: nothing gets rejected";
}

TEST(AdversaryFuzzTest, MonitorStateStaysInBoundsUnderFuzz) {
  // The monitor must never allocate beyond the configured page count nor
  // produce types outside the enum, whatever the adversary does.
  World w{16};
  Adversary adv(w.os, 31337);
  for (int i = 0; i < 800; ++i) {
    adv.Step();
  }
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d.NPages(), 16u);
  for (PageNr n = 0; n < d.NPages(); ++n) {
    const word type = static_cast<word>(d[n].type());
    EXPECT_LE(type, static_cast<word>(PageType::kSparePage));
  }
}

TEST(AdversaryFuzzTest, BystanderEnclaveStillRunsAfterFuzz) {
  World w{32};
  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);

  Adversary adv(w.os, 55);
  const auto protects = [&e](const AdvAction& a) {
    // Leave the bystander's pages alone (the OS is allowed to stop it; that
    // is not a security violation, just inconvenient for this test).
    for (word arg : a.args) {
      if (arg == e.addrspace || arg == e.thread) {
        return false;
      }
    }
    return true;
  };
  int executed = 0;
  for (int i = 0; i < 1200 && executed < 600; ++i) {
    const AdvAction a = adv.NextAction();
    if (!protects(a)) {
      continue;
    }
    Adversary::Execute(w.os, a);
    ++executed;
  }
  const os::EnterResult r = w.os.Enter(e.thread, 0, 5);
  EXPECT_TRUE(r.exited());
}

TEST(AdversaryFuzzTest, DeterministicReplay) {
  // The same seed yields the same action sequence (needed by the paired
  // noninterference tests).
  World w1{16};
  World w2{16};
  Adversary a1(w1.os, 9);
  Adversary a2(w2.os, 9);
  for (int i = 0; i < 100; ++i) {
    const AdvAction x = a1.NextAction();
    const AdvAction y = a2.NextAction();
    ASSERT_EQ(x.call, y.call);
    for (int j = 0; j < 4; ++j) {
      ASSERT_EQ(x.args[j], y.args[j]);
    }
  }
}

}  // namespace
}  // namespace komodo::os
