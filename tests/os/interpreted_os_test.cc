// Full-machine integration: the *OS itself* runs as interpreted normal-world
// code that issues real SMC instructions. This closes the loop the other
// suites shortcut (they stage registers and raise the exception directly) —
// here every transition from OS code into the monitor and back is
// architectural.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/os/world.h"

namespace komodo {
namespace {

constexpr arm::vaddr kOsCodeBase = 0x4000;

// Runs interpreted normal-world code, servicing SMCs through the monitor,
// until the program raises SVC #0xdd (test-exit marker) or the step budget
// runs out. Returns true on clean exit.
bool RunOsProgram(os::World& w, const std::vector<word>& code, uint64_t max_steps = 100000) {
  for (size_t i = 0; i < code.size(); ++i) {
    w.machine.mem.Write(kOsCodeBase + static_cast<word>(i) * 4, code[i]);
  }
  w.machine.pc = kOsCodeBase;
  uint64_t steps = 0;
  while (steps < max_steps) {
    const std::optional<arm::Exception> exc = arm::RunUntilException(w.machine, max_steps);
    if (!exc.has_value()) {
      return false;
    }
    if (*exc == arm::Exception::kSmc) {
      w.monitor.OnSmc();  // the monitor returns to the instruction after SMC
      continue;
    }
    if (*exc == arm::Exception::kSvc) {
      return true;  // the OS program's exit marker
    }
    ADD_FAILURE() << "unexpected OS-side exception " << static_cast<int>(*exc);
    return false;
  }
  return false;
}

TEST(InterpretedOsTest, QuerySmcFromRealCode) {
  os::World w{16};
  arm::Assembler a(kOsCodeBase);
  using namespace arm;
  a.MovImm(R0, kSmcQuery);
  a.Smc();
  // Result now in r0 (err) / r1 (magic); stash for the host-side check.
  a.MovImm(R4, 0x5000);
  a.Str(R0, R4, 0);
  a.Str(R1, R4, 4);
  a.Svc(0xdd);
  ASSERT_TRUE(RunOsProgram(w, a.Finish()));
  EXPECT_EQ(w.machine.mem.Read(0x5000), kErrSuccess);
  EXPECT_EQ(w.machine.mem.Read(0x5004), kMagic);
}

TEST(InterpretedOsTest, EnclaveLifecycleDrivenFromRealCode) {
  // The interpreted OS constructs a minimal enclave (address space + L2 +
  // code page + thread), finalises it, enters it, and records the result.
  // The enclave adds its two arguments.
  os::World w{16};

  // Stage the enclave's code in an insecure page the OS knows about.
  const word staging_pg = 8;  // insecure page number
  w.os.WriteInsecurePage(staging_pg, {
                                         0xe0801001,  // add r1, r0, r1
                                         0xe3a00001,  // mov r0, #1 (kSvcExit)
                                         0xef000000,  // svc
                                     });

  arm::Assembler a(kOsCodeBase);
  using namespace arm;
  Assembler::Label fail = a.NewLabel();
  auto smc_checked = [&](word call, word a1, word a2, word a3, word a4) {
    a.MovImm(R0, call);
    a.MovImm(R1, a1);
    a.MovImm(R2, a2);
    a.MovImm(R3, a3);
    a.MovImm(R4, a4);
    a.Smc();
    a.Cmp(R0, 0u);
    a.B(fail, Cond::kNe);
  };
  smc_checked(kSmcInitAddrspace, 0, 1, 0, 0);
  smc_checked(kSmcInitL2Table, 0, 2, 0, 0);
  smc_checked(kSmcMapSecure, 0, 3, MakeMapping(os::kEnclaveCodeVa, kMapR | kMapX), staging_pg);
  smc_checked(kSmcInitThread, 0, 4, os::kEnclaveCodeVa, 0);
  smc_checked(kSmcFinalise, 0, 0, 0, 0);
  // Enter(thread=4, 30, 12) — result lands in r1.
  a.MovImm(R0, kSmcEnter);
  a.MovImm(R1, 4);
  a.MovImm(R2, 30);
  a.MovImm(R3, 12);
  a.MovImm(R4, 0);
  a.Smc();
  a.MovImm(R4, 0x5000);
  a.Str(R0, R4, 0);
  a.Str(R1, R4, 4);
  a.Svc(0xdd);
  a.Bind(fail);
  a.MovImm(R4, 0x5000);
  a.MovImm(R5, 0xdead);
  a.Str(R5, R4, 0);
  a.Svc(0xdd);

  ASSERT_TRUE(RunOsProgram(w, a.Finish()));
  EXPECT_EQ(w.machine.mem.Read(0x5000), kErrSuccess);
  EXPECT_EQ(w.machine.mem.Read(0x5004), 42u);
}

TEST(InterpretedOsTest, SmcPreservesInterpretedOsRegisters) {
  os::World w{16};
  arm::Assembler a(kOsCodeBase);
  using namespace arm;
  a.MovImm(R7, 0x777);
  a.MovImm(R11, 0xb0b);
  a.MovImm(R0, kSmcGetPhysPages);
  a.Smc();
  a.MovImm(R4, 0x5000);
  a.Str(R7, R4, 0);
  a.Str(R11, R4, 4);
  a.Str(R1, R4, 8);  // npages
  a.Svc(0xdd);
  ASSERT_TRUE(RunOsProgram(w, a.Finish()));
  EXPECT_EQ(w.machine.mem.Read(0x5000), 0x777u);
  EXPECT_EQ(w.machine.mem.Read(0x5004), 0xb0bu);
  EXPECT_EQ(w.machine.mem.Read(0x5008), 16u);
}

TEST(InterpretedOsTest, ManyEnclaveLifecyclesNoLeak) {
  // Churn: build and fully tear down enclaves repeatedly via the C++ OS
  // model; the free-page set must return to its initial state every time.
  os::World w{32};
  for (int round = 0; round < 20; ++round) {
    auto builder = w.os.NewEnclave().Code({0xe3a00001, 0xef000000});
    if (round % 2 == 0) {
      builder.SharedPage();
    }
    auto built_e = builder.Build();
    ASSERT_TRUE(built_e.ok()) << round;
    os::EnclaveHandle e = *std::move(built_e);
    ASSERT_TRUE(w.os.Enter(e.thread).exited());
    ASSERT_EQ(w.os.Stop(e.addrspace).err, kErrSuccess);
    for (PageNr p : e.data_pages) {
      ASSERT_EQ(w.os.Remove(p).err, kErrSuccess);
      w.os.FreeSecurePage(p);
    }
    ASSERT_EQ(w.os.Remove(e.thread).err, kErrSuccess);
    w.os.FreeSecurePage(e.thread);
    for (PageNr p : e.l2pts) {
      ASSERT_EQ(w.os.Remove(p).err, kErrSuccess);
      w.os.FreeSecurePage(p);
    }
    ASSERT_EQ(w.os.Remove(e.l1pt).err, kErrSuccess);
    w.os.FreeSecurePage(e.l1pt);
    ASSERT_EQ(w.os.Remove(e.addrspace).err, kErrSuccess);
    w.os.FreeSecurePage(e.addrspace);
  }
  // Everything is free again.
  EXPECT_EQ(w.os.GetPhysPages(), 32u);
  for (PageNr n = 0; n < 32; ++n) {
    ASSERT_EQ(w.os.Remove(n).err, kErrSuccess);  // removing free pages: no-op
  }
}

}  // namespace
}  // namespace komodo
