// Enclave-construction SMC semantics: happy paths and every validation rule
// of §4's API, driven through the OS model.
#include <gtest/gtest.h>

#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using os::SmcRet;
using os::World;

class SmcTest : public ::testing::Test {
 protected:
  World w{64};

  // Stages `value`-filled insecure page and returns its page number.
  word StagePage(word fill) {
    const word pg = w.os.AllocInsecurePage();
    for (word i = 0; i < arm::kWordsPerPage; ++i) {
      w.os.WriteInsecure(pg, i, fill);
    }
    return pg;
  }

  void ExpectValid() {
    const auto violations = spec::PageDbViolations(spec::ExtractPageDb(w.machine));
    EXPECT_TRUE(violations.empty()) << violations.front();
  }
};

TEST_F(SmcTest, QueryReturnsMagic) {
  const SmcRet r = w.os.Smc(kSmcQuery);
  EXPECT_EQ(r.err, kErrSuccess);
  EXPECT_EQ(r.val, kMagic);
}

TEST_F(SmcTest, GetPhysPagesReturnsConfiguredCount) {
  EXPECT_EQ(w.os.GetPhysPages(), 64u);
}

TEST_F(SmcTest, UnknownSmcRejected) {
  EXPECT_EQ(w.os.Smc(999).err, kErrInvalidArgument);
}

TEST_F(SmcTest, InitAddrspaceHappyPath) {
  EXPECT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[3].type(), PageType::kAddrspace);
  EXPECT_EQ(d[4].type(), PageType::kL1PTable);
  EXPECT_EQ(d[3].As<spec::AddrspacePage>().refcount, 1u);
  EXPECT_EQ(d[3].As<spec::AddrspacePage>().state, AddrspaceState::kInit);
  ExpectValid();
}

TEST_F(SmcTest, InitAddrspaceRejectsAliasedPages) {
  // The exact bug §9.1 reports: both arguments naming the same page.
  EXPECT_EQ(w.os.InitAddrspace(3, 3).err, kErrInvalidPageNo);
  EXPECT_EQ(spec::ExtractPageDb(w.machine)[3].type(), PageType::kFree);
}

TEST_F(SmcTest, InitAddrspaceRejectsOutOfRangeAndBusyPages) {
  EXPECT_EQ(w.os.InitAddrspace(64, 4).err, kErrInvalidPageNo);
  EXPECT_EQ(w.os.InitAddrspace(3, 64).err, kErrInvalidPageNo);
  EXPECT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  EXPECT_EQ(w.os.InitAddrspace(3, 5).err, kErrPageInUse);
  EXPECT_EQ(w.os.InitAddrspace(5, 4).err, kErrPageInUse);
  ExpectValid();
}

TEST_F(SmcTest, InitThreadRequiresInitAddrspace) {
  EXPECT_EQ(w.os.InitThread(3, 5, 0x8000).err, kErrInvalidAddrspace);
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  EXPECT_EQ(w.os.InitThread(4, 5, 0x8000).err, kErrInvalidAddrspace);  // l1pt is not an as
  EXPECT_EQ(w.os.InitThread(3, 5, 0x8000).err, kErrSuccess);
  EXPECT_EQ(w.os.InitThread(3, 5, 0x8000).err, kErrPageInUse);
  ASSERT_EQ(w.os.Finalise(3).err, kErrSuccess);
  EXPECT_EQ(w.os.InitThread(3, 6, 0x8000).err, kErrAlreadyFinal);
  ExpectValid();
}

TEST_F(SmcTest, InitL2TableValidation) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  EXPECT_EQ(w.os.InitL2Table(3, 5, 256).err, kErrInvalidMapping);  // index out of range
  EXPECT_EQ(w.os.InitL2Table(3, 5, 0).err, kErrSuccess);
  EXPECT_EQ(w.os.InitL2Table(3, 6, 0).err, kErrAddrInUse);  // slots taken
  EXPECT_EQ(w.os.InitL2Table(3, 5, 1).err, kErrPageInUse);  // page taken
  EXPECT_EQ(w.os.InitL2Table(3, 6, 1).err, kErrSuccess);
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[3].As<spec::AddrspacePage>().refcount, 3u);
  ExpectValid();
}

TEST_F(SmcTest, MapSecureHappyPathCopiesContents) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  ASSERT_EQ(w.os.InitL2Table(3, 5, 0).err, kErrSuccess);
  const word staging = StagePage(0xabcd1234);
  const word mapping = MakeMapping(0x8000, kMapR | kMapW);
  ASSERT_EQ(w.os.MapSecure(3, 6, mapping, staging).err, kErrSuccess);
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  ASSERT_EQ(d[6].type(), PageType::kDataPage);
  EXPECT_EQ(d[6].As<spec::DataPage>().contents[0], 0xabcd1234u);
  EXPECT_EQ(d[6].As<spec::DataPage>().contents[1023], 0xabcd1234u);
  // Mapping landed in the L2 table.
  const auto slot = spec::SpecL2Slot(d, 3, mapping);
  ASSERT_TRUE(slot.has_value());
  const auto& entry = d[slot->first].As<spec::L2PTablePage>().entries[slot->second];
  const auto* sm = std::get_if<spec::SecureMapping>(&entry);
  ASSERT_NE(sm, nullptr);
  EXPECT_EQ(sm->data_page, 6u);
  EXPECT_TRUE(sm->writable);
  EXPECT_FALSE(sm->executable);
  ExpectValid();
}

TEST_F(SmcTest, MapSecureRejectsMonitorAndSecureSources) {
  // §9.1's second bug class: the "insecure" source must not alias protected
  // memory.
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  ASSERT_EQ(w.os.InitL2Table(3, 5, 0).err, kErrSuccess);
  const word mapping = MakeMapping(0x8000, kMapR);
  EXPECT_EQ(w.os.MapSecure(3, 6, mapping, arm::kMonitorBase / arm::kPageSize).err,
            kErrInvalidArgument);
  EXPECT_EQ(w.os.MapSecure(3, 6, mapping, arm::kSecurePagesBase / arm::kPageSize).err,
            kErrInvalidArgument);
  EXPECT_EQ(w.os.MapSecure(3, 6, mapping, 0xffff0).err, kErrInvalidArgument);  // unmapped
  ExpectValid();
}

TEST_F(SmcTest, MapSecureValidatesMappingAndTable) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  const word staging = StagePage(1);
  // No L2 table yet.
  EXPECT_EQ(w.os.MapSecure(3, 6, MakeMapping(0x8000, kMapR), staging).err,
            kErrPageTableMissing);
  ASSERT_EQ(w.os.InitL2Table(3, 5, 0).err, kErrSuccess);
  // Mapping outside the 1 GB window.
  EXPECT_EQ(w.os.MapSecure(3, 6, MakeMapping(0x4000'0000, kMapR), staging).err,
            kErrInvalidMapping);
  // Mapping without read permission.
  EXPECT_EQ(w.os.MapSecure(3, 6, 0x8000 | kMapW, staging).err, kErrInvalidMapping);
  // Double map at the same VA.
  ASSERT_EQ(w.os.MapSecure(3, 6, MakeMapping(0x8000, kMapR), staging).err, kErrSuccess);
  EXPECT_EQ(w.os.MapSecure(3, 7, MakeMapping(0x8000, kMapR), staging).err, kErrAddrInUse);
  ExpectValid();
}

TEST_F(SmcTest, MapInsecureRejectsExecutable) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  ASSERT_EQ(w.os.InitL2Table(3, 5, 0).err, kErrSuccess);
  const word pg = w.os.AllocInsecurePage();
  EXPECT_EQ(w.os.MapInsecure(3, MakeMapping(0x9000, kMapR | kMapX), pg).err,
            kErrInvalidMapping);
  EXPECT_EQ(w.os.MapInsecure(3, MakeMapping(0x9000, kMapR | kMapW), pg).err, kErrSuccess);
  ExpectValid();
}

TEST_F(SmcTest, FinaliseLifecycle) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  EXPECT_EQ(w.os.Finalise(3).err, kErrSuccess);
  EXPECT_EQ(w.os.Finalise(3).err, kErrAlreadyFinal);
  EXPECT_EQ(w.os.Finalise(4).err, kErrInvalidAddrspace);
  EXPECT_EQ(w.os.Finalise(63).err, kErrInvalidAddrspace);
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[3].As<spec::AddrspacePage>().state, AddrspaceState::kFinal);
  // The measurement is no longer all-zero.
  EXPECT_NE(d[3].As<spec::AddrspacePage>().measurement, crypto::DigestWords{});
  ExpectValid();
}

TEST_F(SmcTest, MeasurementDependsOnLayoutAndContents) {
  // Two identical constructions produce identical measurements; changing the
  // entry point, VA or contents changes it (§4, Attestation).
  auto build = [&](World& world, word entry, word va, word fill) {
    world.os.InitAddrspace(3, 4);
    world.os.InitL2Table(3, 5, 0);
    const word pg = world.os.AllocInsecurePage();
    for (word i = 0; i < arm::kWordsPerPage; ++i) {
      world.os.WriteInsecure(pg, i, fill);
    }
    world.os.MapSecure(3, 6, MakeMapping(va, kMapR | kMapX), pg);
    world.os.InitThread(3, 7, entry);
    world.os.Finalise(3);
    return spec::ExtractPageDb(world.machine)[3].As<spec::AddrspacePage>().measurement;
  };
  World w1{64};
  World w2{64};
  World w3{64};
  World w4{64};
  World w5{64};
  const auto base = build(w1, 0x8000, 0x8000, 7);
  EXPECT_EQ(build(w2, 0x8000, 0x8000, 7), base);
  EXPECT_NE(build(w3, 0x8004, 0x8000, 7), base);  // entry point
  EXPECT_NE(build(w4, 0x8000, 0x9000, 7), base);  // virtual address
  EXPECT_NE(build(w5, 0x8000, 0x8000, 8), base);  // contents
}

TEST_F(SmcTest, StopAndRemoveFullTeardown) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  ASSERT_EQ(w.os.InitL2Table(3, 5, 0).err, kErrSuccess);
  const word staging = StagePage(9);
  ASSERT_EQ(w.os.MapSecure(3, 6, MakeMapping(0x8000, kMapR), staging).err, kErrSuccess);
  ASSERT_EQ(w.os.InitThread(3, 7, 0x8000).err, kErrSuccess);

  // Live pages cannot be removed.
  EXPECT_EQ(w.os.Remove(6).err, kErrNotStopped);
  EXPECT_EQ(w.os.Remove(3).err, kErrPageInUse);

  ASSERT_EQ(w.os.Stop(3).err, kErrSuccess);
  EXPECT_EQ(w.os.Remove(6).err, kErrSuccess);
  EXPECT_EQ(w.os.Remove(7).err, kErrSuccess);
  EXPECT_EQ(w.os.Remove(5).err, kErrSuccess);
  EXPECT_EQ(w.os.Remove(3).err, kErrPageInUse);  // l1pt still owned
  EXPECT_EQ(w.os.Remove(4).err, kErrSuccess);
  EXPECT_EQ(w.os.Remove(3).err, kErrSuccess);

  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  for (PageNr n : {3u, 4u, 5u, 6u, 7u}) {
    EXPECT_EQ(d[n].type(), PageType::kFree) << n;
  }
  ExpectValid();
}

TEST_F(SmcTest, RemoveScrubsContents) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  ASSERT_EQ(w.os.InitL2Table(3, 5, 0).err, kErrSuccess);
  const word staging = StagePage(0x5ec3e7);
  ASSERT_EQ(w.os.MapSecure(3, 6, MakeMapping(0x8000, kMapR), staging).err, kErrSuccess);
  ASSERT_EQ(w.os.Stop(3).err, kErrSuccess);
  ASSERT_EQ(w.os.Remove(6).err, kErrSuccess);
  // The freed page holds no residue of the enclave's data.
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    ASSERT_EQ(w.machine.mem.Read(PagePaddr(6) + i * arm::kWordSize), 0u);
  }
}

TEST_F(SmcTest, RemoveFreePageIsIdempotent) {
  EXPECT_EQ(w.os.Remove(10).err, kErrSuccess);
  EXPECT_EQ(w.os.Remove(64).err, kErrInvalidPageNo);
}

TEST_F(SmcTest, AllocSpareStates) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  EXPECT_EQ(w.os.AllocSpare(3, 5).err, kErrSuccess);  // allowed in init
  ASSERT_EQ(w.os.Finalise(3).err, kErrSuccess);
  EXPECT_EQ(w.os.AllocSpare(3, 6).err, kErrSuccess);  // and when final
  ASSERT_EQ(w.os.Stop(3).err, kErrSuccess);
  EXPECT_EQ(w.os.AllocSpare(3, 7).err, kErrInvalidAddrspace);  // not when stopped
  // Spare pages are reclaimable without stopping.
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[5].type(), PageType::kSparePage);
  ExpectValid();
}

TEST_F(SmcTest, SpareRemovableFromRunningEnclave) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  ASSERT_EQ(w.os.AllocSpare(3, 5).err, kErrSuccess);
  ASSERT_EQ(w.os.Finalise(3).err, kErrSuccess);
  EXPECT_EQ(w.os.Remove(5).err, kErrSuccess);  // no Stop needed for spares
  ExpectValid();
}

TEST_F(SmcTest, SparesDoNotAffectMeasurement) {
  World other{64};
  auto build = [](World& world, bool with_spare) {
    world.os.InitAddrspace(3, 4);
    if (with_spare) {
      world.os.AllocSpare(3, 9);
    }
    world.os.InitThread(3, 7, 0x8000);
    world.os.Finalise(3);
    return spec::ExtractPageDb(world.machine)[3].As<spec::AddrspacePage>().measurement;
  };
  EXPECT_EQ(build(w, true), build(other, false));
}

TEST_F(SmcTest, EnterValidation) {
  ASSERT_EQ(w.os.InitAddrspace(3, 4).err, kErrSuccess);
  ASSERT_EQ(w.os.InitThread(3, 7, 0x8000).err, kErrSuccess);
  EXPECT_EQ(w.os.Enter(7).err, KomErr::kNotFinal);  // not finalised
  EXPECT_EQ(w.os.Enter(3).err, KomErr::kInvalidPageNo);  // not a thread
  EXPECT_EQ(w.os.Enter(63).err, KomErr::kInvalidPageNo);
  EXPECT_EQ(w.os.Resume(7).err, KomErr::kNotFinal);
  ASSERT_EQ(w.os.Finalise(3).err, kErrSuccess);
  EXPECT_EQ(w.os.Resume(7).err, KomErr::kNotEntered);  // never suspended
}

TEST_F(SmcTest, CyclesChargedPerCall) {
  const uint64_t before = w.machine.cycles.total();
  w.os.GetPhysPages();
  const uint64_t null_smc = w.machine.cycles.total() - before;
  EXPECT_GT(null_smc, 50u);
  EXPECT_LT(null_smc, 1000u);
}

}  // namespace
}  // namespace komodo
