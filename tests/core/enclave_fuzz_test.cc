// Enclave fuzzing: enclaves built from random (but decodable) instruction
// streams and from raw random words. Whatever the enclave does — arithmetic
// garbage, wild loads/stores, random SVCs, undefined encodings — the monitor
// must return cleanly to the OS with sanitised registers, valid PageDB
// invariants, and no access to anything outside the enclave's mappings.
#include <gtest/gtest.h>

#include "src/crypto/drbg.h"
#include "src/fuzz/generator.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using fuzz::RandomEnclaveInsn;
using os::World;

TEST(EnclaveFuzzTest, RandomValidInstructionStreams) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    crypto::HashDrbg drbg(seed * 0x9e3779b9);
    std::vector<word> code;
    for (int i = 0; i < 200; ++i) {
      code.push_back(RandomEnclaveInsn(drbg));
    }
    Monitor::Config cfg;
    cfg.max_enclave_steps = 5000;  // bound runaway loops
    World w(64, cfg);
    os::EnclaveHandle e;
    auto built_e = w.os.NewEnclave().Code(code).SharedPage().Build();
    ASSERT_TRUE(built_e.ok()) << seed;
    e = *std::move(built_e);

    // Poison the OS registers so sanitisation failures are visible.
    for (int i = 5; i <= 11; ++i) {
      w.machine.r[i] = 0xc0de0000 + i;
    }
    os::EnterResult r = w.os.Enter(e.thread, drbg.NextWord(), drbg.NextWord());
    // The enclave may exit, fault, get interrupted, or be suspended — and may
    // be resumed; drive it a few more slices if suspended.
    for (int slice = 0; slice < 5 && r.interrupted(); ++slice) {
      r = w.os.Resume(e.thread);
    }
    EXPECT_TRUE(r.exited() || r.faulted() || r.interrupted())
        << "seed " << seed << ": unexpected error " << KomErrName(r.err);

    // OS context restored, scratch registers sanitised.
    for (int i = 5; i <= 11; ++i) {
      ASSERT_EQ(w.machine.r[i], 0xc0de0000u + i) << "seed " << seed << " r" << i;
    }
    ASSERT_EQ(w.machine.r[2], 0u) << seed;
    ASSERT_EQ(w.machine.r[3], 0u) << seed;
    ASSERT_EQ(w.machine.r[12], 0u) << seed;
    ASSERT_EQ(w.machine.cpsr.mode, arm::Mode::kSupervisor) << seed;
    ASSERT_EQ(w.machine.CurrentWorld(), arm::World::kNormal) << seed;

    // Monitor metadata intact.
    const auto violations = spec::PageDbViolations(spec::ExtractPageDb(w.machine));
    ASSERT_TRUE(violations.empty()) << "seed " << seed << ": " << violations.front();

    // Whatever the enclave did, it could not have touched the monitor image:
    // the PageDB region's npages global is a canary that never changes.
    ASSERT_EQ(w.machine.mem.Read(arm::kMonitorBase + kGlobalNPages), 64u) << seed;
  }
}

TEST(EnclaveFuzzTest, RawRandomWordsAsCode) {
  // Entirely random words: most decode to nothing (undefined) or fault fast.
  for (uint64_t seed = 100; seed <= 120; ++seed) {
    crypto::HashDrbg drbg(seed);
    std::vector<word> code;
    for (int i = 0; i < 64; ++i) {
      code.push_back(drbg.NextWord());
    }
    Monitor::Config cfg;
    cfg.max_enclave_steps = 2000;
    World w(32, cfg);
    os::EnclaveHandle e;
    auto built_e = w.os.NewEnclave().Code(code).Build();
    ASSERT_TRUE(built_e.ok());
    e = *std::move(built_e);
    os::EnterResult r = w.os.Enter(e.thread);
    for (int slice = 0; slice < 3 && r.interrupted(); ++slice) {
      r = w.os.Resume(e.thread);
    }
    EXPECT_TRUE(r.exited() || r.faulted() || r.interrupted())
        << "seed " << seed;
    const auto violations = spec::PageDbViolations(spec::ExtractPageDb(w.machine));
    ASSERT_TRUE(violations.empty()) << "seed " << seed << ": " << violations.front();
  }
}

TEST(EnclaveFuzzTest, FuzzedEnclavesCannotReachOtherEnclaves) {
  // A victim enclave's data page stays intact no matter what the fuzzed
  // enclave executes.
  crypto::HashDrbg drbg(777);
  Monitor::Config cfg;
  cfg.max_enclave_steps = 5000;
  World w(64, cfg);

  os::EnclaveHandle victim;
  auto built_victim = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Data({0x5ec2e7}).Build();
  ASSERT_TRUE(built_victim.ok());
  victim = *std::move(built_victim);
  const auto victim_page_before =
      spec::ExtractPageDb(w.machine)[victim.data_pages[1]];

  for (int round = 0; round < 10; ++round) {
    std::vector<word> code;
    for (int i = 0; i < 150; ++i) {
      code.push_back(RandomEnclaveInsn(drbg));
    }
    os::EnclaveHandle attacker;
    auto built_attacker = w.os.NewEnclave().Code(code).Build();
    ASSERT_TRUE(built_attacker.ok());
    attacker = *std::move(built_attacker);
    os::EnterResult r = w.os.Enter(attacker.thread, drbg.NextWord());
    for (int slice = 0; slice < 3 && r.interrupted(); ++slice) {
      r = w.os.Resume(attacker.thread);
    }
    // Tear the attacker down to recycle pages for the next round.
    w.os.Stop(attacker.addrspace);
    for (PageNr p : attacker.data_pages) {
      w.os.Remove(p);
      w.os.FreeSecurePage(p);
    }
    w.os.Remove(attacker.thread);
    w.os.FreeSecurePage(attacker.thread);
    for (PageNr p : attacker.l2pts) {
      w.os.Remove(p);
      w.os.FreeSecurePage(p);
    }
    w.os.Remove(attacker.l1pt);
    w.os.FreeSecurePage(attacker.l1pt);
    w.os.Remove(attacker.addrspace);
    w.os.FreeSecurePage(attacker.addrspace);
  }

  const auto victim_page_after = spec::ExtractPageDb(w.machine)[victim.data_pages[1]];
  EXPECT_TRUE(victim_page_after == victim_page_before);
  EXPECT_TRUE(w.os.Enter(victim.thread).exited());
}

}  // namespace
}  // namespace komodo
