// Enclave fuzzing: enclaves built from random (but decodable) instruction
// streams and from raw random words. Whatever the enclave does — arithmetic
// garbage, wild loads/stores, random SVCs, undefined encodings — the monitor
// must return cleanly to the OS with sanitised registers, valid PageDB
// invariants, and no access to anything outside the enclave's mappings.
#include <gtest/gtest.h>

#include "src/crypto/drbg.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using os::World;

// Generates a random well-formed instruction (no SMC — that is undefined in
// user mode anyway and tested elsewhere).
word RandomInstruction(crypto::HashDrbg& drbg) {
  using namespace arm;
  Instruction insn;
  insn.cond = static_cast<Cond>(drbg.Below(15));
  switch (drbg.Below(8)) {
    case 0:
    case 1: {  // data-processing, immediate
      static constexpr Op kOps[] = {Op::kAnd, Op::kEor, Op::kSub, Op::kAdd, Op::kOrr,
                                    Op::kMov, Op::kBic, Op::kMvn, Op::kCmp, Op::kTst};
      insn.op = kOps[drbg.Below(10)];
      insn.set_flags = drbg.Below(2) != 0;
      insn.rd = static_cast<Reg>(drbg.Below(13));  // keep PC out of rd
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.op2 = Operand2::Imm(static_cast<uint8_t>(drbg.Below(256)),
                               static_cast<uint8_t>(drbg.Below(16)));
      break;
    }
    case 2: {  // data-processing, shifted register
      insn.op = Op::kAdd;
      insn.rd = static_cast<Reg>(drbg.Below(13));
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.op2 = Operand2::Rm(static_cast<Reg>(drbg.Below(13)),
                              static_cast<ShiftKind>(drbg.Below(4)),
                              static_cast<uint8_t>(drbg.Below(32)));
      break;
    }
    case 3: {  // multiply
      insn.op = Op::kMul;
      insn.rd = static_cast<Reg>(drbg.Below(13));
      insn.rm = static_cast<Reg>(drbg.Below(13));
      insn.rn = static_cast<Reg>(drbg.Below(13));
      break;
    }
    case 4: {  // load/store — mostly wild addresses
      insn.op = drbg.Below(2) ? Op::kLdr : Op::kStr;
      insn.rd = static_cast<Reg>(drbg.Below(13));
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.mem_imm12 = static_cast<uint16_t>(drbg.Below(0x1000));
      insn.mem_add = drbg.Below(2) != 0;
      break;
    }
    case 5: {  // block transfer
      insn.op = drbg.Below(2) ? Op::kLdm : Op::kStm;
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.reg_list = static_cast<uint16_t>(drbg.Below(0x2000) | 1);  // nonempty, no PC
      insn.block_pre = drbg.Below(2) != 0;
      insn.mem_add = drbg.Below(2) != 0;
      insn.block_wback = drbg.Below(2) != 0;
      break;
    }
    case 6: {  // branch (short offsets so it stays near the code page)
      insn.op = Op::kB;
      insn.branch_offset = (static_cast<int32_t>(drbg.Below(64)) - 32) * 4;
      break;
    }
    default: {  // SVC with a random call number and whatever is in the regs
      insn.op = Op::kSvc;
      insn.trap_imm = drbg.Below(4);
      break;
    }
  }
  return Encode(insn);
}

TEST(EnclaveFuzzTest, RandomValidInstructionStreams) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    crypto::HashDrbg drbg(seed * 0x9e3779b9);
    std::vector<word> code;
    for (int i = 0; i < 200; ++i) {
      code.push_back(RandomInstruction(drbg));
    }
    Monitor::Config cfg;
    cfg.max_enclave_steps = 5000;  // bound runaway loops
    World w(64, cfg);
    os::Os::BuildOptions opts;
    opts.with_shared_page = true;
    os::EnclaveHandle e;
    ASSERT_EQ(w.os.BuildEnclave(code, &opts, &e), kErrSuccess) << seed;

    // Poison the OS registers so sanitisation failures are visible.
    for (int i = 5; i <= 11; ++i) {
      w.machine.r[i] = 0xc0de0000 + i;
    }
    os::SmcRet r = w.os.Enter(e.thread, drbg.NextWord(), drbg.NextWord());
    // The enclave may exit, fault, get interrupted, or be suspended — and may
    // be resumed; drive it a few more slices if suspended.
    for (int slice = 0; slice < 5 && r.err == kErrInterrupted; ++slice) {
      r = w.os.Resume(e.thread);
    }
    EXPECT_TRUE(r.err == kErrSuccess || r.err == kErrFault || r.err == kErrInterrupted)
        << "seed " << seed << ": unexpected error " << KomErrName(r.err);

    // OS context restored, scratch registers sanitised.
    for (int i = 5; i <= 11; ++i) {
      ASSERT_EQ(w.machine.r[i], 0xc0de0000u + i) << "seed " << seed << " r" << i;
    }
    ASSERT_EQ(w.machine.r[2], 0u) << seed;
    ASSERT_EQ(w.machine.r[3], 0u) << seed;
    ASSERT_EQ(w.machine.r[12], 0u) << seed;
    ASSERT_EQ(w.machine.cpsr.mode, arm::Mode::kSupervisor) << seed;
    ASSERT_EQ(w.machine.CurrentWorld(), arm::World::kNormal) << seed;

    // Monitor metadata intact.
    const auto violations = spec::PageDbViolations(spec::ExtractPageDb(w.machine));
    ASSERT_TRUE(violations.empty()) << "seed " << seed << ": " << violations.front();

    // Whatever the enclave did, it could not have touched the monitor image:
    // the PageDB region's npages global is a canary that never changes.
    ASSERT_EQ(w.machine.mem.Read(arm::kMonitorBase + kGlobalNPages), 64u) << seed;
  }
}

TEST(EnclaveFuzzTest, RawRandomWordsAsCode) {
  // Entirely random words: most decode to nothing (undefined) or fault fast.
  for (uint64_t seed = 100; seed <= 120; ++seed) {
    crypto::HashDrbg drbg(seed);
    std::vector<word> code;
    for (int i = 0; i < 64; ++i) {
      code.push_back(drbg.NextWord());
    }
    Monitor::Config cfg;
    cfg.max_enclave_steps = 2000;
    World w(32, cfg);
    os::Os::BuildOptions opts;
    os::EnclaveHandle e;
    ASSERT_EQ(w.os.BuildEnclave(code, &opts, &e), kErrSuccess);
    os::SmcRet r = w.os.Enter(e.thread);
    for (int slice = 0; slice < 3 && r.err == kErrInterrupted; ++slice) {
      r = w.os.Resume(e.thread);
    }
    EXPECT_TRUE(r.err == kErrSuccess || r.err == kErrFault || r.err == kErrInterrupted)
        << "seed " << seed;
    const auto violations = spec::PageDbViolations(spec::ExtractPageDb(w.machine));
    ASSERT_TRUE(violations.empty()) << "seed " << seed << ": " << violations.front();
  }
}

TEST(EnclaveFuzzTest, FuzzedEnclavesCannotReachOtherEnclaves) {
  // A victim enclave's data page stays intact no matter what the fuzzed
  // enclave executes.
  crypto::HashDrbg drbg(777);
  Monitor::Config cfg;
  cfg.max_enclave_steps = 5000;
  World w(64, cfg);

  os::Os::BuildOptions vopts;
  vopts.data_init = {0x5ec2e7};
  os::EnclaveHandle victim;
  ASSERT_EQ(w.os.BuildEnclave({0xe3a00001, 0xef000000}, &vopts, &victim), kErrSuccess);
  const auto victim_page_before =
      spec::ExtractPageDb(w.machine)[victim.data_pages[1]];

  for (int round = 0; round < 10; ++round) {
    std::vector<word> code;
    for (int i = 0; i < 150; ++i) {
      code.push_back(RandomInstruction(drbg));
    }
    os::Os::BuildOptions opts;
    os::EnclaveHandle attacker;
    ASSERT_EQ(w.os.BuildEnclave(code, &opts, &attacker), kErrSuccess);
    os::SmcRet r = w.os.Enter(attacker.thread, drbg.NextWord());
    for (int slice = 0; slice < 3 && r.err == kErrInterrupted; ++slice) {
      r = w.os.Resume(attacker.thread);
    }
    // Tear the attacker down to recycle pages for the next round.
    w.os.Stop(attacker.addrspace);
    for (PageNr p : attacker.data_pages) {
      w.os.Remove(p);
      w.os.FreeSecurePage(p);
    }
    w.os.Remove(attacker.thread);
    w.os.FreeSecurePage(attacker.thread);
    for (PageNr p : attacker.l2pts) {
      w.os.Remove(p);
      w.os.FreeSecurePage(p);
    }
    w.os.Remove(attacker.l1pt);
    w.os.FreeSecurePage(attacker.l1pt);
    w.os.Remove(attacker.addrspace);
    w.os.FreeSecurePage(attacker.addrspace);
  }

  const auto victim_page_after = spec::ExtractPageDb(w.machine)[victim.data_pages[1]];
  EXPECT_TRUE(victim_page_after == victim_page_before);
  EXPECT_EQ(w.os.Enter(victim.thread).err, kErrSuccess);
}

}  // namespace
}  // namespace komodo
