// Cycle-model regression guards: the Table 3 / §8.1 shapes the benchmarks
// report are locked in as ranges here, so a refactor that silently breaks the
// cost accounting fails the suite rather than just skewing EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <memory>

#include "src/arm/assembler.h"
#include "src/enclave/native_runtime.h"
#include "src/os/world.h"
#include "src/sgx/sgx_model.h"

namespace komodo {
namespace {

class ExitProgram : public enclave::NativeProgram {
 public:
  enclave::UserAction Run(enclave::UserContext&) override {
    return enclave::UserAction::Exit(0);
  }
};

TEST(CycleRegressionTest, NullSmcStaysTrivial) {
  os::World w{64};
  w.os.GetPhysPages();
  const uint64_t before = w.machine.cycles.total();
  w.os.GetPhysPages();
  const uint64_t cycles = w.machine.cycles.total() - before;
  EXPECT_GE(cycles, 60u);
  EXPECT_LE(cycles, 250u);  // paper: 123
}

TEST(CycleRegressionTest, CrossingStaysWellBelowSgx) {
  os::World w{64};
  enclave::NativeRuntime runtime(w.monitor);
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  runtime.Register(e.l1pt, std::make_shared<ExitProgram>());
  w.os.Enter(e.thread);
  const uint64_t before = w.machine.cycles.total();
  w.os.Enter(e.thread);
  const uint64_t crossing = w.machine.cycles.total() - before;
  EXPECT_GE(crossing, 250u);
  EXPECT_LE(crossing, 1500u);  // paper: 738
  // The §8.1 headline: at least ~5x under SGX's 7,100-cycle crossing.
  EXPECT_GT(7100.0 / static_cast<double>(crossing), 5.0);
}

TEST(CycleRegressionTest, AttestDominatedByFiveShaBlocks) {
  os::World w{64};
  os::EnclaveHandle e;
  // Enclave issuing a single Attest then exiting, in A32.
  arm::Assembler a(os::kEnclaveCodeVa);
  a.MovImm(arm::R0, kSvcAttest);
  a.MovImm(arm::R1, os::kEnclaveDataVa);
  a.MovImm(arm::R2, os::kEnclaveDataVa + 32);
  a.Svc();
  a.MovImm(arm::R1, 0);
  a.MovImm(arm::R0, kSvcExit);
  a.Svc();
  auto built_e = w.os.NewEnclave().Code(a.Finish()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  w.os.Enter(e.thread);
  const uint64_t before = w.machine.cycles.total();
  w.os.Enter(e.thread);
  const uint64_t with_attest = w.machine.cycles.total() - before;
  // 5 SHA blocks ≈ 11.5k plus the crossing; the paper reports 12,411 for the
  // SVC alone.
  EXPECT_GE(with_attest, 11000u);
  EXPECT_LE(with_attest, 20000u);
}

TEST(CycleRegressionTest, MapDataDominatedByZeroFill) {
  os::World w{64};
  os::EnclaveHandle e;
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.Mov(R7, R0);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
  a.Svc();
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  auto built_e = w.os.NewEnclave().Code(a.Finish()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  const uint64_t before = w.machine.cycles.total();
  ASSERT_TRUE(w.os.Enter(e.thread, spare).exited());
  const uint64_t cycles = w.machine.cycles.total() - before;
  // Zero-fill alone is 1024 words * ~5 cycles; paper reports 5,826 for the
  // SVC; our measurement includes the crossing.
  EXPECT_GE(cycles, 5000u);
  EXPECT_LE(cycles, 9000u);
}

TEST(CycleRegressionTest, SgxConstantsMatchCitedLatencies) {
  sgx::SgxCosts costs;
  EXPECT_EQ(costs.eenter + costs.eexit, 7100u);  // Orenbach et al. [66], §8.1
}

}  // namespace
}  // namespace komodo
