// TLB-consistency discipline (§5.1): the monitor must never drop to user mode
// with a stale TLB; stores into live page tables and TTBR writes invalidate
// it; flushes restore it. The model *asserts* on a violation, so these tests
// double as evidence the monitor discharges the obligation.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/os/world.h"

namespace komodo {
namespace {

using os::World;

// An enclave that maps a dynamic page and immediately reads through the new
// mapping — correctness depends on the monitor flushing after the SVC edits
// the live page table.
std::vector<word> MapAndTouchProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.Mov(R7, R0);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
  a.Svc();
  a.Mov(R4, R0);  // MapData error (0 expected)
  a.MovImm(R5, 0x30000);
  a.MovImm(R6, 0x1234);
  a.Str(R6, R5, 0);   // through the brand-new mapping
  a.Ldr(R1, R5, 0);
  a.Add(R1, R1, R4);  // fold the error in so failures are visible
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

TEST(TlbTest, MonitorFlushesAfterDynamicMappingSvc) {
  World w{64};
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(MapAndTouchProgram()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  const os::EnterResult r = w.os.Enter(e.thread, spare);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 0x1234u);
  EXPECT_TRUE(w.machine.tlb_consistent);
}

TEST(TlbTest, EnterLeavesTlbConsistent) {
  World w{64};
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  // Construction dirtied page tables; Enter must flush before user mode.
  EXPECT_TRUE(w.os.Enter(e.thread).exited());
  EXPECT_TRUE(w.machine.tlb_consistent);
}

TEST(TlbTest, ConstructionSmcsOnInactiveTableDoNotRequireFlush) {
  // While no enclave is executing (TTBR0 is either 0 or another enclave's),
  // editing a different enclave's tables must not invalidate the live TLB
  // tracking needlessly... but editing the *live* one must.
  World w{64};
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  ASSERT_TRUE(w.os.Enter(e.thread).exited());
  ASSERT_TRUE(w.machine.tlb_consistent);
  // TTBR0 still holds e's table. Build a second enclave: its page-table
  // writes touch only its own (inactive) tables.
  os::EnclaveHandle e2;
  auto built_e2 = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_e2.ok());
  e2 = *std::move(built_e2);
  EXPECT_TRUE(w.machine.tlb_consistent);
  // But a dynamic map into e (whose table is live in TTBR0) marks it stale.
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e2.addrspace, spare).err, kErrSuccess);
  EXPECT_TRUE(w.machine.tlb_consistent);  // e2's table is not the live one
}

TEST(TlbTest, SkipFlushOptimisationOnlyFiresWhenSafe) {
  Monitor::Config cfg;
  cfg.opt_skip_redundant_tlb_flush = true;
  World w(64, cfg);
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(MapAndTouchProgram()).SharedPage().Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);

  // Two consecutive entries of the same enclave: the second may skip the
  // flush, and everything still works.
  os::EnclaveHandle trivial;
  auto built_trivial = w.os.NewEnclave().Code({0xe3a00001, 0xef000000}).Build();
  ASSERT_TRUE(built_trivial.ok());
  trivial = *std::move(built_trivial);
  ASSERT_TRUE(w.os.Enter(trivial.thread).exited());
  const uint64_t before = w.machine.cycles.total();
  ASSERT_TRUE(w.os.Enter(trivial.thread).exited());
  const uint64_t warm = w.machine.cycles.total() - before;

  // Dynamic mapping dirties the live table mid-run; the next entry must NOT
  // skip the flush (correctness over speed).
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  const os::EnterResult r = w.os.Enter(e.thread, spare);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 0x1234u);

  // Re-entering the trivial enclave after a table switch cannot skip either.
  const uint64_t before2 = w.machine.cycles.total();
  ASSERT_TRUE(w.os.Enter(trivial.thread).exited());
  const uint64_t cold = w.machine.cycles.total() - before2;
  EXPECT_GT(cold, warm);  // the skipped flush is visible in cycles
}

}  // namespace
}  // namespace komodo
