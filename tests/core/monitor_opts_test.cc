// The §8.1 optimisations (skip-redundant-TLB-flush, lazy banked registers)
// must preserve functional behaviour and the security relations — this is the
// testing stand-in for the proofs the paper says the optimisations await.
// The key scenarios from the exec/noninterference suites are re-run under
// every optimisation configuration.
#include <gtest/gtest.h>

#include <memory>

#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/equivalence.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using os::World;

struct OptConfig {
  const char* name;
  bool skip_flush;
  bool lazy_banked;
};

class MonitorOptsTest : public ::testing::TestWithParam<OptConfig> {
 protected:
  Monitor::Config Config(uint64_t steps = 0) const {
    Monitor::Config c;
    c.opt_skip_redundant_tlb_flush = GetParam().skip_flush;
    c.opt_lazy_banked_regs = GetParam().lazy_banked;
    if (steps != 0) {
      c.max_enclave_steps = steps;
    }
    return c;
  }
};

TEST_P(MonitorOptsTest, EnterExitResumeStillCorrect) {
  World w(64, Config(600));
  os::EnclaveHandle spin;
  auto built_spin = w.os.NewEnclave().Code(enclave::SpinProgram()).Build();
  ASSERT_TRUE(built_spin.ok());
  spin = *std::move(built_spin);
  os::EnclaveHandle counter;
  auto built_counter = w.os.NewEnclave().Code(enclave::CounterProgram()).Data({100}).Build();
  ASSERT_TRUE(built_counter.ok());
  counter = *std::move(built_counter);

  EXPECT_EQ(w.os.Enter(counter.thread, 5).payload, 105u);
  ASSERT_TRUE(w.os.Enter(spin.thread, 0xbeef).interrupted());
  EXPECT_EQ(w.os.Enter(counter.thread, 1).payload, 106u);  // interleave other enclave
  ASSERT_TRUE(w.os.Resume(spin.thread).interrupted());
  // The spin stored its arg before looping: context survived the detour.
  EXPECT_EQ(spec::ExtractPageDb(w.machine)[spin.data_pages[1]]
                .As<spec::DataPage>()
                .contents[0],
            0xbeefu);
  EXPECT_TRUE(spec::ValidPageDb(spec::ExtractPageDb(w.machine)));
}

TEST_P(MonitorOptsTest, BankedRegistersStillPreservedOrScrubbed) {
  World w(64, Config());
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(enclave::AddTwoProgram()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  auto& m = w.machine;
  m.sp_banked[static_cast<size_t>(arm::Mode::kIrq)] = 0x111;
  m.lr_banked[static_cast<size_t>(arm::Mode::kSupervisor)] = 0x222;
  m.sp_banked[static_cast<size_t>(arm::Mode::kUser)] = 0x333;
  ASSERT_EQ(w.os.Enter(e.thread, 1, 2).payload, 3u);
  // These banks are saved in every configuration (used by the monitor and by
  // the SVC path), so they must be exactly preserved.
  EXPECT_EQ(m.sp_banked[static_cast<size_t>(arm::Mode::kIrq)], 0x111u);
  EXPECT_EQ(m.lr_banked[static_cast<size_t>(arm::Mode::kSupervisor)], 0x222u);
  EXPECT_EQ(m.sp_banked[static_cast<size_t>(arm::Mode::kUser)], 0x333u);
}

TEST_P(MonitorOptsTest, FaultingEnclaveLeaksNothingThroughAbortBank) {
  // With lazy banking, a fault writes the abort bank with enclave-derived
  // values (the faulting PC); the slow path must scrub. Run the paired-
  // execution check: two worlds, different secrets, faulting victims.
  auto run = [this](word secret) {
    auto w = std::make_unique<World>(64, Config());
    os::EnclaveHandle e;
    auto built_e = w->os.NewEnclave().Code(enclave::ReadOutsideProgram()).Build();
    EXPECT_TRUE(built_e.ok());
    if (built_e.ok()) e = *std::move(built_e);
    w->machine.mem.Write(PagePaddr(e.data_pages[1]), secret);
    EXPECT_TRUE(w->os.Enter(e.thread).faulted());
    return w;
  };
  auto w1 = run(0x1111);
  auto w2 = run(0x2222);
  const auto violations =
      spec::AdvEquivViolations(w1->machine, spec::ExtractPageDb(w1->machine), w2->machine,
                               spec::ExtractPageDb(w2->machine), kInvalidPage);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(MonitorOptsTest, ConfidentialityAcrossRepeatedEntries) {
  // The skip-flush fast path must not create a cross-enclave channel: two
  // enclaves alternating, secrets differing across paired worlds.
  auto run = [this](word secret) {
    auto w = std::make_unique<World>(64, Config());
    os::EnclaveHandle victim;
    auto built_victim = w->os.NewEnclave().Code(enclave::CounterProgram()).SharedPage().Build();
    EXPECT_TRUE(built_victim.ok());
    if (built_victim.ok()) victim = *std::move(built_victim);
    os::EnclaveHandle other;
    auto built_other = w->os.NewEnclave().Code(enclave::EchoSharedProgram()).SharedPage().Build();
    EXPECT_TRUE(built_other.ok());
    if (built_other.ok()) other = *std::move(built_other);
    w->machine.mem.Write(PagePaddr(victim.data_pages[1]) + 8, secret);
    w->os.WriteInsecure(other.shared_insecure_pgnr, 0, 7);
    w->os.Enter(victim.thread, 1);
    w->os.Enter(victim.thread, 2);  // repeated same-enclave entry (fast path)
    w->os.Enter(other.thread);
    w->os.Enter(victim.thread, 3);
    return w;
  };
  auto w1 = run(0xaaaa);
  auto w2 = run(0xbbbb);
  const auto violations =
      spec::AdvEquivViolations(w1->machine, spec::ExtractPageDb(w1->machine), w2->machine,
                               spec::ExtractPageDb(w2->machine), kInvalidPage);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

INSTANTIATE_TEST_SUITE_P(Configs, MonitorOptsTest,
                         ::testing::Values(OptConfig{"baseline", false, false},
                                           OptConfig{"skip_flush", true, false},
                                           OptConfig{"lazy_banked", false, true},
                                           OptConfig{"both", true, true}),
                         [](const ::testing::TestParamInfo<OptConfig>& param_info) {
                           return param_info.param.name;
                         });

}  // namespace
}  // namespace komodo
