// End-to-end enclave execution: Enter/Exit/Resume, interrupts, faults,
// register sanitisation — the Figure 3 state machine with real interpreted
// enclave code.
#include <gtest/gtest.h>

#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using os::EnclaveHandle;
using os::EnterResult;
using os::SmcRet;
using os::World;

class ExecTest : public ::testing::Test {
 protected:
  World w{64};

  EnclaveHandle Build(const std::vector<word>& code) {
    auto built = w.os.NewEnclave().Code(code).SharedPage().Build();
    EXPECT_TRUE(built.ok());
    EnclaveHandle handle = *std::move(built);
    shared_pg_ = handle.shared_insecure_pgnr;
    return handle;
  }

  word shared_pg_ = 0;
};

TEST_F(ExecTest, EnterRunsEnclaveAndReturnsExitValue) {
  const EnclaveHandle e = Build(enclave::AddTwoProgram());
  const EnterResult r = w.os.Enter(e.thread, 20, 22);
  EXPECT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 42u);
}

TEST_F(ExecTest, ExitLeavesThreadReenterable) {
  const EnclaveHandle e = Build(enclave::AddTwoProgram());
  EXPECT_EQ(w.os.Enter(e.thread, 1, 2).payload, 3u);
  EXPECT_EQ(w.os.Enter(e.thread, 10, 20).payload, 30u);
}

TEST_F(ExecTest, OsReturnsToNormalWorldSupervisor) {
  const EnclaveHandle e = Build(enclave::AddTwoProgram());
  w.os.Enter(e.thread, 1, 2);
  EXPECT_EQ(w.machine.cpsr.mode, arm::Mode::kSupervisor);
  EXPECT_EQ(w.machine.CurrentWorld(), arm::World::kNormal);
}

TEST_F(ExecTest, SharedPageCommunication) {
  const EnclaveHandle e = Build(enclave::EchoSharedProgram());
  w.os.WriteInsecure(shared_pg_, 0, 21);
  const EnterResult r = w.os.Enter(e.thread);
  EXPECT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 21u);
  EXPECT_EQ(w.os.ReadInsecure(shared_pg_, 1), 43u);  // 2*21+1
}

TEST_F(ExecTest, DataPagePersistsAcrossEntries) {
  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(enclave::CounterProgram()).Data({100}).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  EXPECT_EQ(w.os.Enter(e.thread, 5).payload, 105u);
  EXPECT_EQ(w.os.Enter(e.thread, 7).payload, 112u);
  EXPECT_EQ(w.os.Enter(e.thread, 0).payload, 112u);
}

TEST_F(ExecTest, InterruptSuspendsAndResumeContinues) {
  World small(64, [] {
    Monitor::Config c;
    c.max_enclave_steps = 500;  // force the timer to fire mid-spin
    return c;
  }());
  EnclaveHandle e;
  auto built_e = small.os.NewEnclave().Code(enclave::SpinProgram()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);

  const EnterResult r = small.os.Enter(e.thread, 0xbeef);
  EXPECT_TRUE(r.interrupted());
  EXPECT_EQ(r.payload, 0u);  // nothing but the fact of the interrupt is reported

  // The dispatcher is marked entered, with the user context saved.
  spec::PageDb d = spec::ExtractPageDb(small.machine);
  EXPECT_TRUE(d[e.thread].As<spec::DispatcherPage>().entered);

  // Re-entering an entered thread fails; Resume continues it.
  EXPECT_EQ(small.os.Enter(e.thread).err, KomErr::kAlreadyEntered);
  const EnterResult r2 = small.os.Resume(e.thread);
  EXPECT_TRUE(r2.interrupted());  // it spins forever, interrupted again

  // Context was preserved: the spin stored arg1 into data[0] before looping.
  d = spec::ExtractPageDb(small.machine);
  EXPECT_EQ(d[e.data_pages[1]].As<spec::DataPage>().contents[0], 0xbeefu);
  EXPECT_TRUE(spec::ValidPageDb(d));
}

TEST_F(ExecTest, ResumedRegistersPreserved) {
  // Spin keeps incrementing r6; after a resume, r6 must continue from the
  // saved value rather than restart. We can observe progress indirectly via
  // saved context in the dispatcher page after the second interrupt.
  World small(64, [] {
    Monitor::Config c;
    c.max_enclave_steps = 1000;
    return c;
  }());
  EnclaveHandle e;
  auto built_e = small.os.NewEnclave().Code(enclave::SpinProgram()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  ASSERT_TRUE(small.os.Enter(e.thread, 0).interrupted());
  const word r6_first =
      spec::ExtractPageDb(small.machine)[e.thread].As<spec::DispatcherPage>().regs[6];
  ASSERT_TRUE(small.os.Resume(e.thread).interrupted());
  const word r6_second =
      spec::ExtractPageDb(small.machine)[e.thread].As<spec::DispatcherPage>().regs[6];
  EXPECT_GT(r6_second, r6_first);
}

TEST_F(ExecTest, FaultingEnclaveReportsOnlyExceptionType) {
  struct Case {
    std::vector<word> code;
    word expected_code;
  };
  const Case cases[] = {
      {enclave::ReadOutsideProgram(), 2},    // data abort
      {enclave::WriteCodeProgram(), 2},      // data abort (permission)
      {enclave::UndefinedInsnProgram(), 3},  // undefined instruction
  };
  for (const Case& c : cases) {
    World fresh{64};
      EnclaveHandle e;
    auto built_e = fresh.os.NewEnclave().Code(c.code).Build();
    ASSERT_TRUE(built_e.ok());
    e = *std::move(built_e);
    const EnterResult r = fresh.os.Enter(e.thread);
    EXPECT_TRUE(r.faulted());
    EXPECT_EQ(r.payload, c.expected_code);
    // A faulted thread may be re-entered fresh (§4).
    EXPECT_TRUE(fresh.os.Enter(e.thread).faulted());
  }
}

TEST_F(ExecTest, NonReturnRegistersZeroedOnExit) {
  // The enclave runs with arbitrary register contents; on return to the OS,
  // the argument/scratch registers (r2-r4, r12) must be zero and the
  // non-volatile registers r5-r11 restored to the OS's values (§5.2).
  const EnclaveHandle e = Build(enclave::AddTwoProgram());
  for (int i = 5; i <= 12; ++i) {
    w.machine.r[i] = 0x1000 + i;
  }
  w.os.Enter(e.thread, 1, 1);
  EXPECT_EQ(w.machine.r[2], 0u);
  EXPECT_EQ(w.machine.r[3], 0u);
  EXPECT_EQ(w.machine.r[4], 0u);
  EXPECT_EQ(w.machine.r[12], 0u);
  for (int i = 5; i <= 11; ++i) {
    EXPECT_EQ(w.machine.r[i], 0x1000u + i) << "r" << i;
  }
}

TEST_F(ExecTest, OsBankedRegistersPreservedAcrossEnclaveRun) {
  const EnclaveHandle e = Build(enclave::AddTwoProgram());
  auto& m = w.machine;
  m.sp_banked[static_cast<size_t>(arm::Mode::kUser)] = 0x111;
  m.lr_banked[static_cast<size_t>(arm::Mode::kUser)] = 0x222;
  m.sp_banked[static_cast<size_t>(arm::Mode::kIrq)] = 0x333;
  m.lr_banked[static_cast<size_t>(arm::Mode::kAbort)] = 0x444;
  w.os.Enter(e.thread, 1, 1);
  EXPECT_EQ(m.sp_banked[static_cast<size_t>(arm::Mode::kUser)], 0x111u);
  EXPECT_EQ(m.lr_banked[static_cast<size_t>(arm::Mode::kUser)], 0x222u);
  EXPECT_EQ(m.sp_banked[static_cast<size_t>(arm::Mode::kIrq)], 0x333u);
  EXPECT_EQ(m.lr_banked[static_cast<size_t>(arm::Mode::kAbort)], 0x444u);
}

TEST_F(ExecTest, GetRandomSvcFillsSharedPage) {
  const EnclaveHandle e = Build(enclave::RandomProgram());
  ASSERT_TRUE(w.os.Enter(e.thread).exited());
  // Four words were produced; vanishingly unlikely to be zero.
  word distinct = 0;
  for (word i = 0; i < 4; ++i) {
    if (w.os.ReadInsecure(shared_pg_, i) != 0) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 3u);
}

TEST_F(ExecTest, StoppedEnclaveCannotRun) {
  const EnclaveHandle e = Build(enclave::AddTwoProgram());
  ASSERT_EQ(w.os.Stop(e.addrspace).err, kErrSuccess);
  EXPECT_EQ(w.os.Enter(e.thread).err, KomErr::kNotFinal);
}

TEST_F(ExecTest, PageDbInvariantsHoldAfterExecution) {
  const EnclaveHandle e = Build(enclave::EchoSharedProgram());
  w.os.WriteInsecure(shared_pg_, 0, 5);
  w.os.Enter(e.thread);
  const auto violations = spec::PageDbViolations(spec::ExtractPageDb(w.machine));
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_F(ExecTest, EnclaveCrossingCycleCost) {
  // §8.1: a full crossing is on the order of hundreds of cycles — far below
  // SGX's ~7,100.
  const EnclaveHandle e = Build(enclave::AddTwoProgram());
  w.os.Enter(e.thread, 1, 1);  // warm
  const uint64_t before = w.machine.cycles.total();
  w.os.Enter(e.thread, 1, 1);
  const uint64_t crossing = w.machine.cycles.total() - before;
  EXPECT_GT(crossing, 200u);
  EXPECT_LT(crossing, 3000u);
}

}  // namespace
}  // namespace komodo
