// Local attestation (§4): enclaves attest their identity; any enclave can
// verify another's attestation through the monitor, and forgeries fail.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"

namespace komodo {
namespace {

using os::EnclaveHandle;
using os::World;

class AttestationTest : public ::testing::Test {
 protected:
  World w{128};

  EnclaveHandle BuildWithShared(const std::vector<word>& code, word* shared_pg) {
    EnclaveHandle e;
    auto built_e = w.os.NewEnclave().Code(code).SharedPage().Build();
    EXPECT_TRUE(built_e.ok());
    if (built_e.ok()) e = *std::move(built_e);
    *shared_pg = e.shared_insecure_pgnr;
    return e;
  }

  crypto::DigestWords MeasurementOf(PageNr as) {
    return spec::ExtractPageDb(w.machine)[as].As<spec::AddrspacePage>().measurement;
  }
};

TEST_F(AttestationTest, AttestThenVerifySucceeds) {
  word attestor_shared = 0;
  word verifier_shared = 0;
  const EnclaveHandle attestor = BuildWithShared(enclave::AttestProgram(), &attestor_shared);
  const EnclaveHandle verifier = BuildWithShared(enclave::VerifyProgram(), &verifier_shared);

  // Attestor produces a MAC over (its measurement, user data derived from 7).
  ASSERT_TRUE(w.os.Enter(attestor.thread, 7).exited());

  // The OS ferries data + attestor measurement + MAC to the verifier.
  const crypto::DigestWords measurement = MeasurementOf(attestor.addrspace);
  for (word i = 0; i < 8; ++i) {
    w.os.WriteInsecure(verifier_shared, i, 7 + i);  // the user data words
    w.os.WriteInsecure(verifier_shared, 8 + i, measurement[i]);
    w.os.WriteInsecure(verifier_shared, 16 + i, w.os.ReadInsecure(attestor_shared, i));
  }
  const os::EnterResult r = w.os.Enter(verifier.thread);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 1u) << "verification must succeed";
}

TEST_F(AttestationTest, VerifyRejectsTamperedData) {
  word attestor_shared = 0;
  word verifier_shared = 0;
  const EnclaveHandle attestor = BuildWithShared(enclave::AttestProgram(), &attestor_shared);
  const EnclaveHandle verifier = BuildWithShared(enclave::VerifyProgram(), &verifier_shared);
  ASSERT_TRUE(w.os.Enter(attestor.thread, 7).exited());
  const crypto::DigestWords measurement = MeasurementOf(attestor.addrspace);
  for (word i = 0; i < 8; ++i) {
    w.os.WriteInsecure(verifier_shared, i, 7 + i);
    w.os.WriteInsecure(verifier_shared, 8 + i, measurement[i]);
    w.os.WriteInsecure(verifier_shared, 16 + i, w.os.ReadInsecure(attestor_shared, i));
  }
  w.os.WriteInsecure(verifier_shared, 0, 9999);  // tamper with the data
  EXPECT_EQ(w.os.Enter(verifier.thread).payload, 0u);
}

TEST_F(AttestationTest, VerifyRejectsWrongMeasurement) {
  word attestor_shared = 0;
  word verifier_shared = 0;
  const EnclaveHandle attestor = BuildWithShared(enclave::AttestProgram(), &attestor_shared);
  const EnclaveHandle verifier = BuildWithShared(enclave::VerifyProgram(), &verifier_shared);
  ASSERT_TRUE(w.os.Enter(attestor.thread, 7).exited());
  crypto::DigestWords measurement = MeasurementOf(attestor.addrspace);
  measurement[3] ^= 1;  // claim a different identity
  for (word i = 0; i < 8; ++i) {
    w.os.WriteInsecure(verifier_shared, i, 7 + i);
    w.os.WriteInsecure(verifier_shared, 8 + i, measurement[i]);
    w.os.WriteInsecure(verifier_shared, 16 + i, w.os.ReadInsecure(attestor_shared, i));
  }
  EXPECT_EQ(w.os.Enter(verifier.thread).payload, 0u);
}

TEST_F(AttestationTest, VerifyRejectsForgedMac) {
  word verifier_shared = 0;
  const EnclaveHandle verifier = BuildWithShared(enclave::VerifyProgram(), &verifier_shared);
  for (word i = 0; i < 24; ++i) {
    w.os.WriteInsecure(verifier_shared, i, 0x41414141 + i);  // pure fabrication
  }
  EXPECT_EQ(w.os.Enter(verifier.thread).payload, 0u);
}

TEST_F(AttestationTest, MacDiffersAcrossBootsWithDifferentEntropy) {
  // The attestation key derives from boot entropy; a different boot produces
  // different MACs for the same enclave and data.
  auto mac_words = [](uint64_t seed) {
    Monitor::Config cfg;
    cfg.entropy_seed = seed;
    World world(128, cfg);
    os::EnclaveHandle e;
    auto built_e = world.os.NewEnclave().Code(enclave::AttestProgram()).SharedPage().Build();
    EXPECT_TRUE(built_e.ok());
    if (built_e.ok()) e = *std::move(built_e);
    EXPECT_TRUE(world.os.Enter(e.thread, 7).exited());
    std::array<word, 8> mac;
    for (word i = 0; i < 8; ++i) {
      mac[i] = world.os.ReadInsecure(e.shared_insecure_pgnr, i);
    }
    return mac;
  };
  EXPECT_EQ(mac_words(111), mac_words(111));
  EXPECT_NE(mac_words(111), mac_words(222));
}

TEST_F(AttestationTest, AttestRejectsBadPointers) {
  // An enclave passing an unmapped or unwritable MAC buffer gets an error,
  // not monitor memory corruption. We drive the SVC path with a hand-rolled
  // program that passes a bogus output pointer.
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R0, kSvcAttest);
  a.MovImm(R1, os::kEnclaveDataVa);
  a.MovImm(R2, 0x3f00'0000);  // unmapped target
  a.Svc();
  a.Mov(R1, R0);  // propagate the SVC error as the exit value
  a.MovImm(R0, kSvcExit);
  a.Svc();
  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(a.Finish()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  const os::EnterResult r = w.os.Enter(e.thread);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, kErrInvalidArgument);
}

}  // namespace
}  // namespace komodo
