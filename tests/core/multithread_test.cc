// Multi-threaded enclaves: Table 1 allows any number of InitThread calls
// before Finalise; each dispatcher enters/suspends/resumes independently
// while sharing the address space. (Execution is still single-core — threads
// interleave, they don't run in parallel, §1.)
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using os::World;

// Two entry points in one code page: entry A adds arg into data[0]; entry B
// multiplies data[0] by arg. Each exits with the new value.
struct TwoEntryProgram {
  std::vector<word> code;
  vaddr entry_a;
  vaddr entry_b;
};

TwoEntryProgram MakeTwoEntryProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  TwoEntryProgram out;
  out.entry_a = a.CurrentAddr();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Add(R5, R5, R0);
  a.Str(R5, R4, 0);
  a.Mov(R1, R5);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  out.entry_b = a.CurrentAddr();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Mul(R5, R5, R0);
  a.Str(R5, R4, 0);
  a.Mov(R1, R5);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  out.code = a.Finish();
  return out;
}

class MultiThreadTest : public ::testing::Test {
 protected:
  // Builds an enclave with two dispatchers at different entry points.
  void Build() {
    const TwoEntryProgram program = MakeTwoEntryProgram();
    auto& os = w.os;
    as = os.AllocSecurePage();
    const PageNr l1pt = os.AllocSecurePage();
    ASSERT_EQ(os.InitAddrspace(as, l1pt).err, kErrSuccess);
    const PageNr l2 = os.AllocSecurePage();
    ASSERT_EQ(os.InitL2Table(as, l2, 0).err, kErrSuccess);
    const word code_pg = os.AllocInsecurePage();
    os.WriteInsecurePage(code_pg, program.code);
    ASSERT_EQ(os.MapSecure(as, os.AllocSecurePage(),
                           MakeMapping(os::kEnclaveCodeVa, kMapR | kMapX), code_pg)
                  .err,
              kErrSuccess);
    const word data_pg = os.AllocInsecurePage();
    os.WriteInsecurePage(data_pg, {1});  // data[0] = 1
    ASSERT_EQ(os.MapSecure(as, os.AllocSecurePage(),
                           MakeMapping(os::kEnclaveDataVa, kMapR | kMapW), data_pg)
                  .err,
              kErrSuccess);
    thread_a = os.AllocSecurePage();
    thread_b = os.AllocSecurePage();
    ASSERT_EQ(os.InitThread(as, thread_a, program.entry_a).err, kErrSuccess);
    ASSERT_EQ(os.InitThread(as, thread_b, program.entry_b).err, kErrSuccess);
    ASSERT_EQ(os.Finalise(as).err, kErrSuccess);
  }

  World w{64};
  PageNr as = kInvalidPage;
  PageNr thread_a = kInvalidPage;
  PageNr thread_b = kInvalidPage;
};

TEST_F(MultiThreadTest, ThreadsShareTheAddressSpace) {
  Build();
  // data[0] = 1; A adds, B multiplies — interleaved through shared state.
  EXPECT_EQ(w.os.Enter(thread_a, 4).payload, 5u);   // 1 + 4
  EXPECT_EQ(w.os.Enter(thread_b, 3).payload, 15u);  // 5 * 3
  EXPECT_EQ(w.os.Enter(thread_a, 1).payload, 16u);  // 15 + 1
}

TEST_F(MultiThreadTest, EachThreadSuspendsIndependently) {
  // Replace with spin code? Simpler: suspend A via injected interrupt, then
  // run B to completion, then resume A.
  Build();
  w.machine.pending_irq = true;
  ASSERT_TRUE(w.os.Enter(thread_a, 4).interrupted());
  // A is suspended; B still enterable.
  EXPECT_TRUE(w.os.Enter(thread_b, 3).exited());
  EXPECT_EQ(w.os.Enter(thread_a, 9).err, KomErr::kAlreadyEntered);
  EXPECT_EQ(w.os.Resume(thread_b).err, KomErr::kNotEntered);
  EXPECT_TRUE(w.os.Resume(thread_a).exited());
  EXPECT_TRUE(spec::ValidPageDb(spec::ExtractPageDb(w.machine)));
}

TEST_F(MultiThreadTest, BothThreadEntrypointsMeasured) {
  // An enclave with the same code but a different second entry point has a
  // different measurement.
  Build();
  const auto m1 = spec::ExtractPageDb(w.machine)[as].As<spec::AddrspacePage>().measurement;

  World other{64};
  const TwoEntryProgram program = MakeTwoEntryProgram();
  auto& os = other.os;
  const PageNr as2 = os.AllocSecurePage();
  const PageNr l1pt = os.AllocSecurePage();
  ASSERT_EQ(os.InitAddrspace(as2, l1pt).err, kErrSuccess);
  const PageNr l2 = os.AllocSecurePage();
  ASSERT_EQ(os.InitL2Table(as2, l2, 0).err, kErrSuccess);
  const word code_pg = os.AllocInsecurePage();
  os.WriteInsecurePage(code_pg, program.code);
  ASSERT_EQ(os.MapSecure(as2, os.AllocSecurePage(),
                         MakeMapping(os::kEnclaveCodeVa, kMapR | kMapX), code_pg)
                .err,
            kErrSuccess);
  const word data_pg = os.AllocInsecurePage();
  os.WriteInsecurePage(data_pg, {1});
  ASSERT_EQ(os.MapSecure(as2, os.AllocSecurePage(),
                         MakeMapping(os::kEnclaveDataVa, kMapR | kMapW), data_pg)
                .err,
            kErrSuccess);
  ASSERT_EQ(os.InitThread(as2, os.AllocSecurePage(), program.entry_a).err, kErrSuccess);
  ASSERT_EQ(os.InitThread(as2, os.AllocSecurePage(), program.entry_b + 4).err, kErrSuccess);
  ASSERT_EQ(os.Finalise(as2).err, kErrSuccess);
  const auto m2 = spec::ExtractPageDb(other.machine)[as2].As<spec::AddrspacePage>().measurement;
  EXPECT_NE(m1, m2);
}

TEST_F(MultiThreadTest, RefcountTracksBothThreads) {
  Build();
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  // l1pt + l2 + code + data + 2 threads = 6.
  EXPECT_EQ(d[as].As<spec::AddrspacePage>().refcount, 6u);
}

TEST(SharedChannelTest, TwoEnclavesShareAnInsecurePage) {
  // The same insecure page mapped into two enclaves is an (untrusted)
  // communication channel between them (§4).
  World w{64};
  auto build = [&w](const std::vector<word>& code, word shared_pg, os::EnclaveHandle* out) {
    auto& os = w.os;
    const PageNr as = os.AllocSecurePage();
    const PageNr l1pt = os.AllocSecurePage();
    ASSERT_EQ(os.InitAddrspace(as, l1pt).err, kErrSuccess);
    const PageNr l2 = os.AllocSecurePage();
    ASSERT_EQ(os.InitL2Table(as, l2, 0).err, kErrSuccess);
    const word staging = os.AllocInsecurePage();
    os.WriteInsecurePage(staging, code);
    ASSERT_EQ(os.MapSecure(as, os.AllocSecurePage(),
                           MakeMapping(os::kEnclaveCodeVa, kMapR | kMapX), staging)
                  .err,
              kErrSuccess);
    const word data_staging = os.AllocInsecurePage();
    os.WriteInsecurePage(data_staging, {});
    ASSERT_EQ(os.MapSecure(as, os.AllocSecurePage(),
                           MakeMapping(os::kEnclaveDataVa, kMapR | kMapW), data_staging)
                  .err,
              kErrSuccess);
    ASSERT_EQ(os.MapInsecure(as, MakeMapping(os::kEnclaveSharedVa, kMapR | kMapW), shared_pg)
                  .err,
              kErrSuccess);
    const PageNr thread = os.AllocSecurePage();
    ASSERT_EQ(os.InitThread(as, thread, os::kEnclaveCodeVa).err, kErrSuccess);
    ASSERT_EQ(os.Finalise(as).err, kErrSuccess);
    out->addrspace = as;
    out->thread = thread;
  };

  const word channel = w.os.AllocInsecurePage();
  os::EnclaveHandle producer;
  os::EnclaveHandle consumer;
  // Producer writes 2*arg+1 to shared[1] (EchoShared reads shared[0]).
  build(enclave::EchoSharedProgram(), channel, &producer);
  // Consumer: read shared[1], exit with it.
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveSharedVa);
  a.Ldr(R1, R4, 4);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  build(a.Finish(), channel, &consumer);

  w.os.WriteInsecure(channel, 0, 21);
  ASSERT_TRUE(w.os.Enter(producer.thread).exited());
  const os::EnterResult r = w.os.Enter(consumer.thread);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 43u);  // 2*21+1, via the shared channel
}

}  // namespace
}  // namespace komodo
