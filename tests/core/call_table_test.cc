// Registry tests for the table-driven monitor-call dispatch (DESIGN.md §9,
// src/core/call_list.inc): the registry must cover exactly the Table 1 API,
// its metadata must be internally consistent, every registered call must
// have a specification, and unknown call numbers must be rejected by both
// the implementation and the spec dispatch.
#include "src/core/call_table.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/kom_defs.h"
#include "src/core/monitor.h"
#include "src/os/world.h"
#include "src/spec/spec_dispatch.h"

namespace komodo {
namespace {

struct Expected {
  word number;
  const char* name;
  int arity;
};

// Table 1 of the paper, verbatim. If this list and the registry disagree,
// one of them is wrong — the registry is not allowed to drift silently.
constexpr Expected kExpectedSmcs[] = {
    {kSmcQuery, "Query", 0},
    {kSmcGetPhysPages, "GetPhysPages", 0},
    {kSmcInitAddrspace, "InitAddrspace", 2},
    {kSmcInitThread, "InitThread", 3},
    {kSmcInitL2Table, "InitL2Table", 3},
    {kSmcMapSecure, "MapSecure", 4},
    {kSmcAllocSpare, "AllocSpare", 2},
    {kSmcMapInsecure, "MapInsecure", 3},
    {kSmcRemove, "Remove", 1},
    {kSmcFinalise, "Finalise", 1},
    {kSmcEnter, "Enter", 4},
    {kSmcResume, "Resume", 1},
    {kSmcStop, "Stop", 1},
};

constexpr Expected kExpectedSvcs[] = {
    {kSvcExit, "Exit", 1},
    {kSvcGetRandom, "GetRandom", 0},
    {kSvcAttest, "Attest", 2},
    {kSvcVerify, "Verify", 3},
    {kSvcInitL2Table, "InitL2Table", 2},
    {kSvcMapData, "MapData", 2},
    {kSvcUnmapData, "UnmapData", 2},
};

std::vector<std::string> SplitErrors(const char* errors) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = errors;; ++p) {
    if (*p == '|' || *p == '\0') {
      out.push_back(cur);
      cur.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      cur += *p;
    }
  }
  return out;
}

TEST(CallTable, SmcCompleteness) {
  ASSERT_EQ(kNumSmcCalls, static_cast<int>(std::size(kExpectedSmcs)));
  for (const Expected& e : kExpectedSmcs) {
    const CallInfo* c = FindSmc(e.number);
    ASSERT_NE(c, nullptr) << "SMC " << e.number << " (" << e.name << ") missing from registry";
    EXPECT_STREQ(c->name, e.name);
    EXPECT_EQ(c->arity, e.arity) << e.name;
    EXPECT_EQ(c->kind, CallKind::kSmc) << e.name;
  }
}

TEST(CallTable, SvcCompleteness) {
  ASSERT_EQ(kNumSvcCalls, static_cast<int>(std::size(kExpectedSvcs)));
  for (const Expected& e : kExpectedSvcs) {
    const CallInfo* c = FindSvc(e.number);
    ASSERT_NE(c, nullptr) << "SVC " << e.number << " (" << e.name << ") missing from registry";
    EXPECT_STREQ(c->name, e.name);
    EXPECT_EQ(c->arity, e.arity) << e.name;
    EXPECT_EQ(c->kind, CallKind::kSvc) << e.name;
  }
}

TEST(CallTable, NumbersAndNamesUnique) {
  std::set<word> smc_numbers;
  std::set<std::string> smc_names;
  for (const CallInfo& c : kSmcCalls) {
    EXPECT_TRUE(smc_numbers.insert(c.number).second) << "duplicate SMC number " << c.number;
    EXPECT_TRUE(smc_names.insert(c.name).second) << "duplicate SMC name " << c.name;
  }
  std::set<word> svc_numbers;
  std::set<std::string> svc_names;
  for (const CallInfo& c : kSvcCalls) {
    EXPECT_TRUE(svc_numbers.insert(c.number).second) << "duplicate SVC number " << c.number;
    EXPECT_TRUE(svc_names.insert(c.name).second) << "duplicate SVC name " << c.name;
  }
}

TEST(CallTable, MetadataConsistent) {
  auto check = [](const CallInfo& c, int max_arity) {
    SCOPED_TRACE(c.name);
    EXPECT_GE(c.arity, 0);
    EXPECT_LE(c.arity, max_arity);
    // arg_names lists exactly `arity` comma-separated names.
    if (c.arity == 0) {
      EXPECT_STREQ(c.arg_names, "");
    } else {
      int names = 1;
      for (const char* p = c.arg_names; *p != '\0'; ++p) {
        names += *p == ',';
      }
      EXPECT_EQ(names, c.arity);
    }
    // insecure_arg, when present, indexes a real argument.
    if (c.insecure_arg != -1) {
      EXPECT_GE(c.insecure_arg, 1);
      EXPECT_LE(c.insecure_arg, c.arity);
    }
    if (c.copies_contents) {
      EXPECT_NE(c.insecure_arg, -1)
          << "copies_contents without an insecure source argument";
    }
    // Every declared error name is a known KomErrName.
    if (std::string(c.errors) != "-") {
      for (const std::string& err : SplitErrors(c.errors)) {
        bool known = false;
        for (word e = 0; e <= kErrNotSpare; ++e) {
          if (err == KomErrName(e)) {
            known = true;
            break;
          }
        }
        EXPECT_TRUE(known) << "unknown error name \"" << err << "\"";
        EXPECT_NE(err, KomErrName(kErrSuccess)) << "success is implicit, never declared";
      }
    }
  };
  for (const CallInfo& c : kSmcCalls) {
    check(c, 4);
  }
  for (const CallInfo& c : kSvcCalls) {
    check(c, 3);
  }
  // The two calls taking insecure page numbers, per Table 1.
  EXPECT_EQ(FindSmc(kSmcMapSecure)->insecure_arg, 4);
  EXPECT_TRUE(FindSmc(kSmcMapSecure)->copies_contents);
  EXPECT_EQ(FindSmc(kSmcMapInsecure)->insecure_arg, 3);
  EXPECT_FALSE(FindSmc(kSmcMapInsecure)->copies_contents);
}

TEST(CallTable, FindRejectsUnknownNumbers) {
  EXPECT_EQ(FindSmc(0), nullptr);
  EXPECT_EQ(FindSmc(3), nullptr);
  EXPECT_EQ(FindSmc(999), nullptr);
  EXPECT_EQ(FindSvc(0), nullptr);
  EXPECT_EQ(FindSvc(5), nullptr);
  EXPECT_EQ(FindSvc(999), nullptr);
}

TEST(CallTable, EveryCallHasASpec) {
  for (const CallInfo& c : kSmcCalls) {
    EXPECT_TRUE(spec::HasSmcSpec(c.number)) << c.name;
  }
  for (const CallInfo& c : kSvcCalls) {
    EXPECT_TRUE(spec::HasSvcSpec(c.number)) << c.name;
  }
  EXPECT_FALSE(spec::HasSmcSpec(999));
  EXPECT_FALSE(spec::HasSvcSpec(999));
}

TEST(CallTable, DispatchRejectsUnknownNumbers) {
  os::World w{16};
  Monitor::CallCtx smc;
  smc.call = 999;
  const Monitor::CallResult res = w.monitor.Dispatch(smc);
  EXPECT_EQ(res.err, KomErr::kInvalidArgument);

  Monitor::SvcCtx svc;
  svc.call = 999;
  const Monitor::SvcResult sres = w.monitor.DispatchSvc(svc);
  EXPECT_EQ(sres.err, KomErr::kInvalidSvc);
  EXPECT_FALSE(sres.exits);
}

TEST(CallTable, KomErrMatchesAbiWords) {
  // The typed error enum must be value-identical to the ABI words the OS
  // sees in r0 (conversion happens only at the OnSmc epilogue).
  EXPECT_EQ(ToWord(KomErr::kSuccess), kErrSuccess);
  EXPECT_EQ(ToWord(KomErr::kInvalidPageNo), kErrInvalidPageNo);
  EXPECT_EQ(ToWord(KomErr::kPageInUse), kErrPageInUse);
  EXPECT_EQ(ToWord(KomErr::kInvalidAddrspace), kErrInvalidAddrspace);
  EXPECT_EQ(ToWord(KomErr::kAlreadyFinal), kErrAlreadyFinal);
  EXPECT_EQ(ToWord(KomErr::kNotFinal), kErrNotFinal);
  EXPECT_EQ(ToWord(KomErr::kInvalidMapping), kErrInvalidMapping);
  EXPECT_EQ(ToWord(KomErr::kAddrInUse), kErrAddrInUse);
  EXPECT_EQ(ToWord(KomErr::kNotStopped), kErrNotStopped);
  EXPECT_EQ(ToWord(KomErr::kInterrupted), kErrInterrupted);
  EXPECT_EQ(ToWord(KomErr::kFault), kErrFault);
  EXPECT_EQ(ToWord(KomErr::kAlreadyEntered), kErrAlreadyEntered);
  EXPECT_EQ(ToWord(KomErr::kNotEntered), kErrNotEntered);
  EXPECT_EQ(ToWord(KomErr::kPageTableMissing), kErrPageTableMissing);
  EXPECT_EQ(ToWord(KomErr::kInvalidArgument), kErrInvalidArgument);
  EXPECT_EQ(ToWord(KomErr::kNotFinalised), kErrNotFinalised);
  EXPECT_EQ(ToWord(KomErr::kInvalidSvc), kErrInvalidSvc);
  EXPECT_EQ(ToWord(KomErr::kNotSpare), kErrNotSpare);
  for (word e = 0; e <= kErrNotSpare; ++e) {
    EXPECT_EQ(ErrFromWord(ToWord(static_cast<KomErr>(e))), static_cast<KomErr>(e));
  }
}

TEST(CallTable, RegistryDispatchMatchesDirectSmc) {
  // A short build sequence driven through Monitor::Dispatch must behave
  // exactly like the OS-facing SMC ABI (which routes through the same
  // table): same errors, same values.
  os::World w{32};
  Monitor::CallCtx query;
  query.call = kSmcQuery;
  const Monitor::CallResult q = w.monitor.Dispatch(query);
  EXPECT_EQ(q.err, KomErr::kSuccess);
  EXPECT_EQ(q.val, kMagic);

  Monitor::CallCtx phys;
  phys.call = kSmcGetPhysPages;
  EXPECT_EQ(w.monitor.Dispatch(phys).val, 32u);

  const PageNr as = w.os.AllocSecurePage();
  const PageNr l1pt = w.os.AllocSecurePage();
  Monitor::CallCtx init;
  init.call = kSmcInitAddrspace;
  init.args = {as, l1pt, 0, 0};
  EXPECT_EQ(w.monitor.Dispatch(init).err, KomErr::kSuccess);
  // Repeating it must fail exactly as the ABI says: the page is now in use.
  EXPECT_EQ(w.monitor.Dispatch(init).err, KomErr::kPageInUse);
}

}  // namespace
}  // namespace komodo
