// Parameterized hardening sweep over the whole SMC surface: for every call,
// classes of bad arguments must be rejected with no observable state change,
// and no call available to the OS can make a finalised enclave fault
// (controlled-channel immunity, §3.1).
#include <gtest/gtest.h>

#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using os::World;

const word kAllSmcs[] = {kSmcQuery,      kSmcGetPhysPages, kSmcInitAddrspace, kSmcInitThread,
                         kSmcInitL2Table, kSmcMapSecure,    kSmcAllocSpare,    kSmcMapInsecure,
                         kSmcRemove,      kSmcFinalise,     kSmcEnter,         kSmcResume,
                         kSmcStop};

class SmcSweepTest : public ::testing::TestWithParam<word> {};

TEST_P(SmcSweepTest, OutOfRangePageArgumentsRejectedWithoutStateChange) {
  const word call = GetParam();
  if (call == kSmcQuery || call == kSmcGetPhysPages) {
    GTEST_SKIP() << "no page arguments";
  }
  World w{16};
  const spec::PageDb before = spec::ExtractPageDb(w.machine);
  // Every combination of clearly-invalid page numbers in the first two slots.
  for (word bad : {16u, 17u, 0xffffu, 0xffffffffu}) {
    const os::SmcRet r1 = w.os.Smc(call, bad, bad, bad, bad);
    EXPECT_NE(r1.err, kErrSuccess) << "call " << call << " accepted page " << bad;
    const os::SmcRet r2 = w.os.Smc(call, bad, 0, 0, 0);
    EXPECT_NE(r2.err, kErrSuccess);
  }
  EXPECT_TRUE(spec::ExtractPageDb(w.machine) == before)
      << "call " << call << " mutated state on a failed path";
}

TEST_P(SmcSweepTest, FreshBootFirstArgumentZeroIsSafe) {
  // Immediately after boot, any call with all-zero arguments must leave the
  // PageDB valid (most fail; InitAddrspace(0,0) aliases; none may corrupt).
  const word call = GetParam();
  World w{16};
  w.os.Smc(call, 0, 0, 0, 0);
  const auto violations = spec::PageDbViolations(spec::ExtractPageDb(w.machine));
  EXPECT_TRUE(violations.empty()) << "call " << call << ": " << violations.front();
}

TEST_P(SmcSweepTest, CannotMakeFinalisedEnclaveFault) {
  // Controlled-channel immunity (§3.1): "the OS ... cannot induce an
  // exception". Whatever single SMC the OS throws at a finalised enclave's
  // pages, the enclave afterwards either runs to completion exactly as
  // before, or is cleanly not runnable (stopped) — it never faults.
  const word call = GetParam();
  World w{64};
  os::EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(enclave::EchoSharedProgram()).SharedPage().Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  w.os.WriteInsecure(e.shared_insecure_pgnr, 0, 21);
  ASSERT_TRUE(w.os.Enter(e.thread).exited());  // baseline run

  // Attack every page of the enclave with this call.
  const PageNr targets[] = {e.addrspace, e.l1pt, e.l2pts[0], e.thread, e.data_pages[0],
                            e.data_pages[1]};
  for (PageNr target : targets) {
    for (PageNr second : targets) {
      w.os.Smc(call, target, second, MakeMapping(os::kEnclaveCodeVa, kMapR | kMapW), 33);
    }
  }

  const os::EnterResult r = w.os.Enter(e.thread);
  if (call == kSmcStop) {
    EXPECT_EQ(r.err, KomErr::kNotFinal);  // cleanly stopped, not faulted
  } else {
    EXPECT_TRUE(r.exited()) << "call " << call << " broke the enclave";
    EXPECT_EQ(r.payload, 21u);
  }
  EXPECT_TRUE(spec::ValidPageDb(spec::ExtractPageDb(w.machine)));
}

INSTANTIATE_TEST_SUITE_P(AllCalls, SmcSweepTest, ::testing::ValuesIn(kAllSmcs),
                         [](const ::testing::TestParamInfo<word>& param_info) {
                           switch (param_info.param) {
                             case kSmcQuery:
                               return std::string("Query");
                             case kSmcGetPhysPages:
                               return std::string("GetPhysPages");
                             case kSmcInitAddrspace:
                               return std::string("InitAddrspace");
                             case kSmcInitThread:
                               return std::string("InitThread");
                             case kSmcInitL2Table:
                               return std::string("InitL2Table");
                             case kSmcMapSecure:
                               return std::string("MapSecure");
                             case kSmcAllocSpare:
                               return std::string("AllocSpare");
                             case kSmcMapInsecure:
                               return std::string("MapInsecure");
                             case kSmcRemove:
                               return std::string("Remove");
                             case kSmcFinalise:
                               return std::string("Finalise");
                             case kSmcEnter:
                               return std::string("Enter");
                             case kSmcResume:
                               return std::string("Resume");
                             case kSmcStop:
                               return std::string("Stop");
                             default:
                               return std::string("Unknown");
                           }
                         });

}  // namespace
}  // namespace komodo
