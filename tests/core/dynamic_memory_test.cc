// SGXv2-style dynamic memory management (§4, Dynamic allocation): AllocSpare
// from the OS; MapData / UnmapData / InitL2PTable SVCs from the enclave.
#include <gtest/gtest.h>

#include "src/arm/assembler.h"
#include "src/enclave/programs.h"
#include "src/os/world.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"

namespace komodo {
namespace {

using os::EnclaveHandle;
using os::SmcRet;
using os::World;

class DynMemTest : public ::testing::Test {
 protected:
  World w{64};

  EnclaveHandle Build(const std::vector<word>& code) {
    EnclaveHandle e;
    auto built_e = w.os.NewEnclave().Code(code).Build();
    EXPECT_TRUE(built_e.ok());
    if (built_e.ok()) e = *std::move(built_e);
    return e;
  }
};

TEST_F(DynMemTest, MapWriteUnmapRoundTrip) {
  const EnclaveHandle e = Build(enclave::DynMemProgram());
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  const os::EnterResult r = w.os.Enter(e.thread, spare);
  EXPECT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 0u) << "enclave-reported step failure " << r.payload;
  // After UnmapData the page is spare again and reclaimable by the OS.
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[spare].type(), PageType::kSparePage);
  EXPECT_EQ(w.os.Remove(spare).err, kErrSuccess);
  EXPECT_TRUE(spec::ValidPageDb(spec::ExtractPageDb(w.machine)));
}

TEST_F(DynMemTest, MapDataZeroesThePage) {
  // The spare page is dirtied by the OS before being given to the enclave;
  // MapData must zero it (its contents are not measured).
  const EnclaveHandle e = Build(enclave::DynMemProgram());
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  // (The OS cannot write secure pages; dirty it via monitor-internal channel
  // to simulate a recycled page: write directly in the simulated RAM.)
  w.machine.mem.Write(PagePaddr(spare) + 64, 0xdeadbeef);

  // A probe program: MapData then read the word at offset 64 and exit with it.
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.Mov(R7, R0);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
  a.Svc();
  a.MovImm(R4, 0x30000);
  a.Ldr(R1, R4, 64);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  World fresh{64};
  EnclaveHandle probe;
  auto built_probe = fresh.os.NewEnclave().Code(a.Finish()).Build();
  ASSERT_TRUE(built_probe.ok());
  probe = *std::move(built_probe);
  const PageNr spare2 = fresh.os.AllocSecurePage();
  ASSERT_EQ(fresh.os.AllocSpare(probe.addrspace, spare2).err, kErrSuccess);
  fresh.machine.mem.Write(PagePaddr(spare2) + 64, 0xdeadbeef);
  const os::EnterResult r = fresh.os.Enter(probe.thread, spare2);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 0u) << "stale contents leaked through MapData";
  (void)e;
}

TEST_F(DynMemTest, EnclaveCannotMapForeignSpare) {
  // Spare pages belonging to another enclave are rejected.
  const EnclaveHandle victim = Build(enclave::AddTwoProgram());
  const EnclaveHandle attacker = Build(enclave::DynMemProgram());
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(victim.addrspace, spare).err, kErrSuccess);
  const os::EnterResult r = w.os.Enter(attacker.thread, spare);
  EXPECT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 1u);  // step 1 (MapData) failed inside the enclave
}

TEST_F(DynMemTest, EnclaveCannotMapArbitraryPages) {
  // Data pages, page tables, even its own addrspace page are not spares.
  const EnclaveHandle e = Build(enclave::DynMemProgram());
  for (const PageNr target : {e.addrspace, e.l1pt, e.data_pages[0], e.thread}) {
    const os::EnterResult r = w.os.Enter(e.thread, target);
    EXPECT_TRUE(r.exited());
    EXPECT_EQ(r.payload, 1u) << "page " << target << " must not be mappable";
  }
}

TEST_F(DynMemTest, OsCannotRemoveMappedDataPageUntilUnmapped) {
  // Convert a spare to data (enclave maps it, doesn't unmap), then the OS
  // tries to reclaim it: Remove must fail — and that failure is the allowed
  // side channel of §6.2.
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.Mov(R7, R0);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
  a.Svc();
  a.Mov(R1, R0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(a.Finish()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  ASSERT_EQ(w.os.Enter(e.thread, spare).payload, kErrSuccess);

  EXPECT_EQ(w.os.Remove(spare).err, kErrNotStopped);  // it's a data page now
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[spare].type(), PageType::kDataPage);
  EXPECT_TRUE(spec::ValidPageDb(d));
}

TEST_F(DynMemTest, SvcInitL2TableExtendsAddressSpace) {
  // Enclave grows its own page tables at runtime: InitL2PTable SVC on a
  // spare, then MapData into the fresh 4 MB region.
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  Assembler::Label fail = a.NewLabel();
  a.Mov(R7, R0);  // spare #1 (L2 table)
  a.Mov(R8, R1);  // spare #2 (data)
  a.MovImm(R0, kSvcInitL2Table);
  a.Mov(R1, R7);
  a.MovImm(R2, 1);  // cover [4 MB, 8 MB)
  a.Svc();
  a.Cmp(R0, 0u);
  a.B(fail, Cond::kNe);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R8);
  a.MovImm(R2, MakeMapping(0x0050'0000, kMapR | kMapW));  // 5 MB
  a.Svc();
  a.Cmp(R0, 0u);
  a.B(fail, Cond::kNe);
  a.MovImm(R4, 0x0050'0000);
  a.MovImm(R5, 1234);
  a.Str(R5, R4, 0);
  a.Ldr(R1, R4, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  a.Bind(fail);
  a.MovImm(R1, 0xdead);
  a.MovImm(R0, kSvcExit);
  a.Svc();

  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(a.Finish()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  const PageNr spare_l2 = w.os.AllocSecurePage();
  const PageNr spare_data = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare_l2).err, kErrSuccess);
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare_data).err, kErrSuccess);
  const os::EnterResult r = w.os.Enter(e.thread, spare_l2, spare_data);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, 1234u);
  const spec::PageDb d = spec::ExtractPageDb(w.machine);
  EXPECT_EQ(d[spare_l2].type(), PageType::kL2PTable);
  EXPECT_EQ(d[spare_data].type(), PageType::kDataPage);
  EXPECT_TRUE(spec::ValidPageDb(d));
}

TEST_F(DynMemTest, DynamicAllocationInvisibleInMeasurement) {
  // The measurement taken at Finalise is unaffected by later dynamic
  // activity, so attestation still identifies the enclave (§4).
  const EnclaveHandle e = Build(enclave::DynMemProgram());
  const auto before =
      spec::ExtractPageDb(w.machine)[e.addrspace].As<spec::AddrspacePage>().measurement;
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  ASSERT_TRUE(w.os.Enter(e.thread, spare).exited());
  const auto after =
      spec::ExtractPageDb(w.machine)[e.addrspace].As<spec::AddrspacePage>().measurement;
  EXPECT_EQ(before, after);
}

TEST_F(DynMemTest, UnmapRequiresMatchingMapping) {
  // UnmapData with a VA that doesn't map the page must fail.
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.Mov(R7, R0);
  a.MovImm(R0, kSvcMapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x30000, kMapR | kMapW));
  a.Svc();
  a.MovImm(R0, kSvcUnmapData);
  a.Mov(R1, R7);
  a.MovImm(R2, MakeMapping(0x31000, kMapR | kMapW));  // wrong VA
  a.Svc();
  a.Mov(R1, R0);  // expect an error code
  a.MovImm(R0, kSvcExit);
  a.Svc();
  EnclaveHandle e;
  auto built_e = w.os.NewEnclave().Code(a.Finish()).Build();
  ASSERT_TRUE(built_e.ok());
  e = *std::move(built_e);
  const PageNr spare = w.os.AllocSecurePage();
  ASSERT_EQ(w.os.AllocSpare(e.addrspace, spare).err, kErrSuccess);
  const os::EnterResult r = w.os.Enter(e.thread, spare);
  ASSERT_TRUE(r.exited());
  EXPECT_EQ(r.payload, kErrInvalidMapping);
}

}  // namespace
}  // namespace komodo
