// Abstract-interpretation taint pass: the static counterpart of the dynamic
// ~adv noninterference checks in tests/spec/noninterference_test.cc.
//
// Values loaded from enclave-private (secure) pages are secret; the pass
// propagates taint through registers, flags and a word-granular abstract
// store, and reports the two classic side channels the dynamic relation
// cannot see per-trace: branches whose condition flags depend on a secret,
// and loads/stores whose *address* depends on a secret. Deliberate
// declassification — storing a secret value to a shared page at a public
// address, as LeakSecretProgram does — is intentionally not a finding (§6:
// Komodo does not police what enclaves do with their own secrets).
#ifndef SRC_ANALYSIS_TAINT_H_
#define SRC_ANALYSIS_TAINT_H_

#include <optional>
#include <vector>

#include "src/analysis/absdom.h"
#include "src/analysis/cfg.h"
#include "src/analysis/findings.h"

namespace komodo::analysis {

struct TaintOptions {
  MemoryLayout layout;  // memory regions; the code range is added from the CFG
  std::optional<word> entry_sp;       // SP at enclave entry (constant if known)
  std::vector<word> allowed_svcs;     // legal SVC call numbers (r0 at the SVC)

  // Conventional single-threaded enclave layout and the 7-call Table 1 SVC
  // set (kom_defs.h).
  static TaintOptions Default();
};

struct TaintResult {
  std::vector<Finding> findings;
  // Fixpoint in-state of every basic block (block_in[i].valid == false means
  // the block is unreachable from the entry). Exposed for tests.
  std::vector<AbsState> block_in;
  // Number of joins the fixpoint replaced with a widening step (see
  // taint.cc); zero for programs whose loops converge on their own.
  size_t widened_joins = 0;
};

TaintResult RunTaintPass(const Cfg& cfg, const TaintOptions& options = TaintOptions::Default());

}  // namespace komodo::analysis

#endif  // SRC_ANALYSIS_TAINT_H_
