#include "src/analysis/fixtures.h"

#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"
#include "src/os/os.h"

namespace komodo::analysis {

using arm::Assembler;
using arm::Cond;
using namespace arm;  // register names

namespace {

Assembler NewAsm() { return Assembler(os::kEnclaveCodeVa); }

void EmitExit(Assembler& a, word retval = 0) {
  a.MovImm(R1, retval);
  a.MovImm(R0, kSvcExit);
  a.Svc();
}

std::vector<word> SecretBranchProgram() {
  // Branches on the secret in data[0] — the classic timing/trace channel the
  // ~adv relation catches dynamically only when the randomized secrets happen
  // to differ across the branch.
  Assembler a = NewAsm();
  Assembler::Label is_zero = a.NewLabel();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Cmp(R5, 0u);
  a.B(is_zero, Cond::kEq);
  EmitExit(a, 1);
  a.Bind(is_zero);
  EmitExit(a, 0);
  return a.Finish();
}

std::vector<word> SecretIndexedStoreProgram() {
  // Uses the secret as a store index into the shared page — a cache/layout
  // channel even though the stored value itself is public.
  Assembler a = NewAsm();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);  // secret
  a.MovImm(R6, os::kEnclaveSharedVa);
  a.MovImm(R7, 0);
  a.StrReg(R7, R6, R5);  // shared[secret] = 0
  EmitExit(a);
  return a.Finish();
}

std::vector<word> RogueSmcProgram() {
  // SMC is the OS<->monitor interface; from enclave user mode it traps
  // Undefined, and shipped enclave code must never contain it.
  Assembler a = NewAsm();
  a.Smc();
  EmitExit(a);
  return a.Finish();
}

std::vector<word> SvcOutOfRangeProgram() {
  // r0 = 99 is outside Table 1's seven supervisor calls.
  Assembler a = NewAsm();
  a.MovImm(R0, 99);
  a.MovImm(R1, 0);
  a.Svc();
  EmitExit(a);
  return a.Finish();
}

std::vector<word> SecretIndexedLoadProgram() {
  Assembler a = NewAsm();
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);  // secret
  a.MovImm(R6, os::kEnclaveSharedVa);
  a.LdrReg(R7, R6, R5);  // r7 = shared[secret]
  EmitExit(a);
  return a.Finish();
}

std::vector<word> SvcUnresolvedProgram() {
  // The SVC number comes in from the OS (r2 at Enter) — never a constant.
  Assembler a = NewAsm();
  a.Mov(R0, R2);
  a.Svc();
  EmitExit(a);
  return a.Finish();
}

std::vector<word> UndecodableProgram() {
  Assembler a = NewAsm();
  a.EmitWord(0xe7f0'00f0);  // permanently-undefined encoding space
  EmitExit(a);
  return a.Finish();
}

std::vector<word> IndirectBranchProgram() {
  Assembler a = NewAsm();
  a.MovImm(R5, os::kEnclaveCodeVa);
  a.Bx(R5);
  EmitExit(a);
  return a.Finish();
}

std::vector<word> UserMsrProgram() {
  Assembler a = NewAsm();
  a.MovImm(R5, 0);
  a.MsrCpsr(R5);
  EmitExit(a);
  return a.Finish();
}

}  // namespace

std::vector<BadFixture> SeededBadFixtures() {
  return {
      {"secret_branch", SecretBranchProgram(), FindingKind::kSecretDependentBranch},
      {"secret_indexed_store", SecretIndexedStoreProgram(), FindingKind::kSecretIndexedStore},
      {"rogue_smc", RogueSmcProgram(), FindingKind::kPrivilegedInstruction},
      {"svc_out_of_range", SvcOutOfRangeProgram(), FindingKind::kSvcOutOfRange},
  };
}

std::vector<BadFixture> ExtraBadFixtures() {
  return {
      {"secret_indexed_load", SecretIndexedLoadProgram(), FindingKind::kSecretIndexedLoad},
      {"svc_unresolved", SvcUnresolvedProgram(), FindingKind::kSvcUnresolved},
      {"undecodable", UndecodableProgram(), FindingKind::kUndecodableWord},
      {"indirect_branch", IndirectBranchProgram(), FindingKind::kIndirectBranch},
      {"user_msr", UserMsrProgram(), FindingKind::kPrivilegedInstruction},
  };
}

}  // namespace komodo::analysis
