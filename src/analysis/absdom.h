// Abstract domain of the taint pass: a product of a two-point taint lattice
// (public <= secret) and a constant-propagation lattice (known k <= unknown).
//
// Secrecy is defined by where a value was loaded from, mirroring the dynamic
// ~adv relation (Defs. 1-2, §5.2): enclave-private (secure) pages hold
// secrets, insecure/shared pages are adversary-visible, and the code page
// holds the program text itself (public constants). Constant propagation is
// what lets the pass resolve data-page addresses, SVC call numbers in r0 and
// loads of in-code constant tables precisely enough that the shipped enclave
// programs analyze clean.
#ifndef SRC_ANALYSIS_ABSDOM_H_
#define SRC_ANALYSIS_ABSDOM_H_

#include <map>
#include <vector>

#include "src/arm/psr.h"
#include "src/arm/types.h"

namespace komodo::analysis {

using arm::vaddr;
using arm::word;

enum class Taint : uint8_t { kPublic = 0, kSecret = 1 };

inline Taint JoinTaint(Taint a, Taint b) {
  return (a == Taint::kSecret || b == Taint::kSecret) ? Taint::kSecret : Taint::kPublic;
}

struct AbsVal {
  Taint taint = Taint::kPublic;
  bool known = false;
  word value = 0;

  static AbsVal Const(word v, Taint t = Taint::kPublic) { return {t, true, v}; }
  static AbsVal Unknown(Taint t) { return {t, false, 0}; }

  bool operator==(const AbsVal&) const = default;
};

inline AbsVal Join(const AbsVal& a, const AbsVal& b) {
  AbsVal out;
  out.taint = JoinTaint(a.taint, b.taint);
  if (a.known && b.known && a.value == b.value) {
    out.known = true;
    out.value = a.value;
  }
  return out;
}

// --- Memory regions -----------------------------------------------------------

enum class Region : uint8_t {
  kCode,    // the program text: loads yield the actual instruction words
  kSecret,  // enclave-private secure pages (data, stack, dynamically mapped)
  kPublic,  // insecure/shared pages the OS can read and write
};

struct MemRange {
  vaddr lo = 0;
  word size = 0;
  Region region = Region::kSecret;
  bool Contains(vaddr a) const { return a >= lo && a - lo < size; }
};

// First matching range wins; addresses outside every range default to
// `fallback` (secure-world memory unless declared otherwise — a user-mode
// access there faults at runtime, but taint-wise it may hold secrets).
struct MemoryLayout {
  std::vector<MemRange> ranges;
  Region fallback = Region::kSecret;

  Region Classify(vaddr a) const {
    for (const MemRange& r : ranges) {
      if (r.Contains(a)) {
        return r.region;
      }
    }
    return fallback;
  }

  // The conventional single-thread enclave layout of os.h: code page at
  // kEnclaveCodeVa (extent set by the analyzer from the program), private
  // data page, private stack page, and everything from kEnclaveSharedVa up
  // treated as OS-shared insecure memory.
  static MemoryLayout DefaultEnclaveLayout();
};

// --- Abstract machine state ---------------------------------------------------

struct AbsState {
  bool valid = false;  // bottom until a path reaches this point
  AbsVal regs[16];
  Taint flags = Taint::kPublic;  // NZCV taint (values are not tracked)
  // Word-granular abstract store, keyed by word-aligned VA. Cells absent from
  // the map read as their region default. Stores through statically-unknown
  // addresses weaken every tracked cell (see taint.cc).
  std::map<word, AbsVal> store;

  bool operator==(const AbsState&) const = default;
};

}  // namespace komodo::analysis

#endif  // SRC_ANALYSIS_ABSDOM_H_
