#include "src/analysis/analyzer.h"

#include "src/analysis/privilege.h"

namespace komodo::analysis {

AnalysisResult AnalyzeProgram(const std::vector<word>& program, vaddr base,
                              const TaintOptions& options) {
  AnalysisResult result;
  result.cfg = BuildCfg(program, base);
  if (result.cfg.blocks.empty()) {
    return result;
  }

  const std::vector<bool> reachable = ReachableBlocks(result.cfg);

  // Declare the code page(s) so loads of in-code constant tables and of the
  // zero-filled remainder of the page stay public.
  TaintOptions taint_options = options;
  const vaddr code_lo = arm::PageBase(base);
  const word code_extent = base + static_cast<word>(program.size()) * arm::kWordSize - code_lo;
  const word code_size = (code_extent + arm::kPageSize - 1) & ~(arm::kPageSize - 1);
  taint_options.layout.ranges.insert(taint_options.layout.ranges.begin(),
                                     {code_lo, code_size, Region::kCode});

  for (Finding& f : RunPrivilegeLint(result.cfg, reachable)) {
    result.findings.push_back(std::move(f));
  }
  for (Finding& f : RunTaintPass(result.cfg, taint_options).findings) {
    result.findings.push_back(std::move(f));
  }

  // Control flow the analysis cannot follow, from reachable blocks only.
  for (size_t b = 0; b < result.cfg.blocks.size(); ++b) {
    if (!reachable[b]) {
      continue;
    }
    const BasicBlock& bb = result.cfg.blocks[b];
    const CfgInsn& last = result.cfg.insns[bb.last];
    if (bb.exit == BlockExit::kIndirect) {
      result.findings.push_back({FindingKind::kIndirectBranch, last.addr,
                                 last.decoded.has_value() ? arm::OpName(last.decoded->op) : "?"});
    } else if (bb.exit == BlockExit::kBranch && !bb.taken.has_value()) {
      result.findings.push_back(
          {FindingKind::kBranchOutOfRange, last.addr, "target outside program text"});
    }
  }

  SortUnique(&result.findings);
  return result;
}

}  // namespace komodo::analysis
