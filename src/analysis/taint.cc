#include "src/analysis/taint.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <string>

#include "src/core/call_table.h"
#include "src/core/kom_defs.h"
#include "src/os/os.h"

namespace komodo::analysis {

using arm::Cond;
using arm::Instruction;
using arm::Op;
using arm::Reg;
using arm::ShiftKind;

TaintOptions TaintOptions::Default() {
  TaintOptions options;
  options.layout = MemoryLayout::DefaultEnclaveLayout();
  options.entry_sp = os::kEnclaveStackVa + arm::kPageSize;
  // Every SVC in the call registry is legal from enclave code; a new SVC
  // added to call_list.inc is picked up here without a parallel list.
  for (const CallInfo& c : kSvcCalls) {
    options.allowed_svcs.push_back(c.number);
  }
  return options;
}

namespace {

// Value half of execute.cc's ApplyShift. RRX (ROR #0) consumes the carry
// flag, whose concrete value the domain does not track, so it never folds.
std::optional<word> FoldShift(word value, ShiftKind kind, unsigned amount) {
  switch (kind) {
    case ShiftKind::kLsl:
      return amount == 0 ? value : value << amount;
    case ShiftKind::kLsr:
      return amount == 0 ? 0 : value >> amount;
    case ShiftKind::kAsr: {
      if (amount == 0 || amount >= 32) {
        return (value >> 31) != 0 ? 0xffff'ffffu : 0u;
      }
      return static_cast<word>(static_cast<int32_t>(value) >> amount);
    }
    case ShiftKind::kRor:
      if (amount == 0) {
        return std::nullopt;  // RRX
      }
      return (value >> amount) | (value << (32 - amount));
  }
  return std::nullopt;
}

bool UsesRn(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kBic:
      return true;
    default:
      return false;  // MOV/MVN take only the shifter operand
  }
}

bool ConsumesCarry(Op op) { return op == Op::kAdc || op == Op::kSbc || op == Op::kRsc; }

bool IsCompare(Op op) {
  return op == Op::kTst || op == Op::kTeq || op == Op::kCmp || op == Op::kCmn;
}

class Interp {
 public:
  Interp(const Cfg& cfg, const TaintOptions& options) : cfg_(cfg), options_(options) {}

  TaintResult Run() {
    TaintResult result;
    result.block_in.assign(cfg_.blocks.size(), AbsState{});
    if (cfg_.blocks.empty()) {
      return result;
    }

    result.block_in[0] = EntryState();
    std::deque<size_t> worklist = {0};
    std::vector<bool> queued(cfg_.blocks.size(), false);
    queued[0] = true;
    // Plain joins already collapse a changing register or cell to Unknown in
    // one step (the constant lattice has height 2), but a loop that walks a
    // chain of tracked cells still ascends one cell per pass — the number of
    // fixpoint iterations grows with the number of tracked addresses, not
    // with the CFG. After a block's in-state has been re-joined this many
    // times, switch to WidenStates, which abstracts the whole store to its
    // region defaults so the remaining ascent is bounded by the registers.
    std::vector<uint32_t> joins(cfg_.blocks.size(), 0);
    // Safety valve: the lattice is finite and widening bounds the ascent, but
    // cap the fixpoint anyway so a domain bug cannot hang the lint.
    size_t budget = 64 * cfg_.blocks.size() + 1024;
    while (!worklist.empty()) {
      assert(budget > 0 && "taint fixpoint failed to converge");
      if (budget == 0) {
        break;
      }
      --budget;
      const size_t b = worklist.front();
      worklist.pop_front();
      queued[b] = false;
      const AbsState out = TransferBlock(result.block_in[b], cfg_.blocks[b], nullptr);
      for (const size_t succ : cfg_.blocks[b].successors) {
        AbsState joined = JoinStates(result.block_in[succ], out);
        if (!(joined == result.block_in[succ])) {
          if (++joins[succ] > kWidenAfterJoins) {
            joined = WidenStates(result.block_in[succ], joined);
            ++result.widened_joins;
          }
        }
        if (!(joined == result.block_in[succ])) {
          result.block_in[succ] = joined;
          if (!queued[succ]) {
            queued[succ] = true;
            worklist.push_back(succ);
          }
        }
      }
    }

    // Reporting pass over the fixpoint states.
    for (size_t b = 0; b < cfg_.blocks.size(); ++b) {
      if (result.block_in[b].valid) {
        TransferBlock(result.block_in[b], cfg_.blocks[b], &result.findings);
      }
    }
    SortUnique(&result.findings);
    return result;
  }

 private:
  AbsState EntryState() const {
    AbsState s;
    s.valid = true;
    for (AbsVal& r : s.regs) {
      r = AbsVal::Unknown(Taint::kPublic);  // Enter args and scrubbed registers
    }
    if (options_.entry_sp.has_value()) {
      s.regs[arm::SP] = AbsVal::Const(*options_.entry_sp);
    }
    return s;
  }

  // Region default for a word-aligned address: code reads the program text,
  // secure pages read secrets, insecure pages read adversary-chosen values.
  AbsVal DefaultAt(word addr) const {
    if (const auto index = cfg_.IndexOf(addr); index.has_value()) {
      return AbsVal::Const(cfg_.insns[*index].bits);
    }
    switch (options_.layout.Classify(addr)) {
      case Region::kCode:  // code page beyond the program text: zero-filled
        return AbsVal::Const(0);
      case Region::kPublic:
        return AbsVal::Unknown(Taint::kPublic);
      case Region::kSecret:
        return AbsVal::Unknown(Taint::kSecret);
    }
    return AbsVal::Unknown(Taint::kSecret);
  }

  AbsVal LoadWord(const AbsState& s, word addr) const {
    const word key = addr & ~3u;
    if (const auto it = s.store.find(key); it != s.store.end()) {
      return it->second;
    }
    return DefaultAt(key);
  }

  // A store through a statically-unknown address may hit any tracked cell:
  // weaken them all. Cells not in the map keep their region default, which
  // under-approximates writes of secrets into tracked-as-public regions; see
  // DESIGN.md § Analysis for this documented soundness limit.
  static void WeakStoreAll(AbsState& s, const AbsVal& value) {
    for (auto& [addr, cell] : s.store) {
      cell = Join(cell, value);
    }
  }

  // Joins tolerated on one block's in-state before the fixpoint widens.
  // High enough that every shipped enclave program converges without it
  // (their loop heads stabilize in a handful of joins), low enough that a
  // cell-cascade loop cannot burn the budget one tracked address at a time.
  static constexpr uint32_t kWidenAfterJoins = 12;

  // Widening operator: an upper bound of `joined` (which must itself be an
  // upper bound of the previous in-state `old`) chosen so repeated
  // application terminates quickly. Registers that are still moving lose
  // constant knowledge but keep their joined taint; the store is abstracted
  // to its region defaults — a cell may never report *lower* taint than its
  // region default would, and a cell equal to its default is dropped from the
  // map, so the widened store is a fixed ceiling no later pass can raise.
  AbsState WidenStates(const AbsState& old, const AbsState& joined) const {
    AbsState out;
    out.valid = true;
    for (int i = 0; i < 16; ++i) {
      out.regs[i] = old.regs[i] == joined.regs[i]
                        ? joined.regs[i]
                        : AbsVal::Unknown(joined.regs[i].taint);
    }
    out.flags = joined.flags;
    for (const auto& [addr, cell] : joined.store) {
      const AbsVal ceiling = Join(cell, DefaultAt(addr));
      if (!(ceiling == DefaultAt(addr))) {
        out.store.emplace(addr, ceiling);
      }
    }
    return out;
  }

  AbsState JoinStates(const AbsState& a, const AbsState& b) const {
    if (!a.valid) {
      return b;
    }
    if (!b.valid) {
      return a;
    }
    AbsState out;
    out.valid = true;
    for (int i = 0; i < 16; ++i) {
      out.regs[i] = Join(a.regs[i], b.regs[i]);
    }
    out.flags = JoinTaint(a.flags, b.flags);
    // A cell missing on one side reads as that side's region default.
    for (const auto& [addr, cell] : a.store) {
      const auto it = b.store.find(addr);
      out.store.emplace(addr, Join(cell, it != b.store.end() ? it->second : DefaultAt(addr)));
    }
    for (const auto& [addr, cell] : b.store) {
      if (!a.store.contains(addr)) {
        out.store.emplace(addr, Join(cell, DefaultAt(addr)));
      }
    }
    return out;
  }

  AbsState TransferBlock(const AbsState& in, const BasicBlock& bb,
                         std::vector<Finding>* findings) const {
    AbsState s = in;
    for (size_t i = bb.first; i <= bb.last; ++i) {
      s = Step(s, cfg_.insns[i], findings);
    }
    return s;
  }

  AbsState Step(const AbsState& pre, const CfgInsn& ci, std::vector<Finding>* findings) const {
    if (!ci.decoded.has_value()) {
      return pre;  // undecodable: Undefined exception; the block has no successors
    }
    const Instruction& insn = *ci.decoded;
    if (findings != nullptr && insn.cond != Cond::kAl && pre.flags == Taint::kSecret) {
      findings->push_back(
          {FindingKind::kSecretDependentBranch, ci.addr, arm::OpName(insn.op)});
    }
    AbsState post = StepCore(pre, ci, insn, findings);
    if (insn.cond != Cond::kAl) {
      // The instruction may be skipped; keep both outcomes.
      post = JoinStates(post, pre);
    }
    return post;
  }

  AbsState StepCore(const AbsState& pre, const CfgInsn& ci, const Instruction& insn,
                    std::vector<Finding>* findings) const {
    AbsState s = pre;
    // Reading the PC yields the instruction address + 8 (execute.cc).
    auto read_reg = [&](Reg r) -> AbsVal {
      return r == arm::PC ? AbsVal::Const(ci.addr + 8) : s.regs[r];
    };

    switch (insn.op) {
      case Op::kAnd:
      case Op::kEor:
      case Op::kSub:
      case Op::kRsb:
      case Op::kAdd:
      case Op::kAdc:
      case Op::kSbc:
      case Op::kRsc:
      case Op::kTst:
      case Op::kTeq:
      case Op::kCmp:
      case Op::kCmn:
      case Op::kOrr:
      case Op::kMov:
      case Op::kBic:
      case Op::kMvn: {
        AbsVal op2;
        if (insn.op2.is_imm) {
          op2 = AbsVal::Const(insn.op2.ImmValue());
        } else {
          const AbsVal rm = read_reg(insn.op2.rm);
          const std::optional<word> folded =
              rm.known ? FoldShift(rm.value, insn.op2.shift, insn.op2.shift_imm) : std::nullopt;
          const bool is_rrx = insn.op2.shift == ShiftKind::kRor && insn.op2.shift_imm == 0;
          const Taint t = is_rrx ? JoinTaint(rm.taint, s.flags) : rm.taint;
          op2 = folded.has_value() ? AbsVal::Const(*folded, t) : AbsVal::Unknown(t);
        }
        const AbsVal rn = read_reg(insn.rn);

        Taint t = op2.taint;
        if (UsesRn(insn.op)) {
          t = JoinTaint(t, rn.taint);
        }
        if (ConsumesCarry(insn.op)) {
          t = JoinTaint(t, s.flags);
        }
        AbsVal result = AbsVal::Unknown(t);
        const bool inputs_known = op2.known && (!UsesRn(insn.op) || rn.known);
        if (inputs_known && !ConsumesCarry(insn.op)) {
          word v = 0;
          switch (insn.op) {
            case Op::kAnd:
            case Op::kTst:
              v = rn.value & op2.value;
              break;
            case Op::kEor:
            case Op::kTeq:
              v = rn.value ^ op2.value;
              break;
            case Op::kSub:
            case Op::kCmp:
              v = rn.value - op2.value;
              break;
            case Op::kRsb:
              v = op2.value - rn.value;
              break;
            case Op::kAdd:
            case Op::kCmn:
              v = rn.value + op2.value;
              break;
            case Op::kOrr:
              v = rn.value | op2.value;
              break;
            case Op::kMov:
              v = op2.value;
              break;
            case Op::kBic:
              v = rn.value & ~op2.value;
              break;
            case Op::kMvn:
              v = ~op2.value;
              break;
            default:
              break;
          }
          result = AbsVal::Const(v, t);
        }

        if (insn.set_flags || IsCompare(insn.op)) {
          s.flags = t;
        }
        if (!IsCompare(insn.op) && insn.rd != arm::PC) {
          s.regs[insn.rd] = result;
        }
        break;
      }

      case Op::kMul: {
        const AbsVal a = read_reg(insn.rm);
        const AbsVal b = read_reg(insn.rn);
        const Taint t = JoinTaint(a.taint, b.taint);
        s.regs[insn.rd] =
            a.known && b.known ? AbsVal::Const(a.value * b.value, t) : AbsVal::Unknown(t);
        if (insn.set_flags) {
          s.flags = t;
        }
        break;
      }

      case Op::kMovw:
        s.regs[insn.rd] = AbsVal::Const(insn.trap_imm & 0xffff);
        break;
      case Op::kMovt: {
        const AbsVal old = s.regs[insn.rd];
        s.regs[insn.rd] =
            old.known
                ? AbsVal::Const((old.value & 0xffff) | ((insn.trap_imm & 0xffff) << 16), old.taint)
                : AbsVal::Unknown(old.taint);
        break;
      }

      case Op::kLdr:
      case Op::kStr:
      case Op::kLdrb:
      case Op::kStrb: {
        const bool is_load = insn.op == Op::kLdr || insn.op == Op::kLdrb;
        const bool is_byte = insn.op == Op::kLdrb || insn.op == Op::kStrb;
        const AbsVal base = read_reg(insn.rn);
        const AbsVal off =
            insn.mem_reg_offset ? read_reg(insn.rm) : AbsVal::Const(insn.mem_imm12);
        const Taint addr_taint = JoinTaint(base.taint, off.taint);
        const bool addr_known = base.known && off.known;
        const word addr =
            insn.mem_add ? base.value + off.value : base.value - off.value;

        if (findings != nullptr && addr_taint == Taint::kSecret) {
          findings->push_back({is_load ? FindingKind::kSecretIndexedLoad
                                       : FindingKind::kSecretIndexedStore,
                               ci.addr, arm::OpName(insn.op)});
        }

        if (is_load) {
          AbsVal value;
          if (!addr_known) {
            // The cell cannot be identified, so propagate the address taint
            // instead of assuming the worst-case aliased cell. This under-
            // taints a public-indexed read of a secret cell — a documented
            // soundness limit (DESIGN.md § Analysis); without it every
            // array-walking loop (sha256's W schedule) reads as secret.
            value = AbsVal::Unknown(addr_taint);
          } else if (is_byte) {
            const AbsVal cell = LoadWord(s, addr);
            value = cell.known ? AbsVal::Const((cell.value >> ((addr & 3u) * 8)) & 0xff, cell.taint)
                               : AbsVal::Unknown(cell.taint);
          } else {
            value = LoadWord(s, addr);
          }
          if (insn.rd != arm::PC) {
            s.regs[insn.rd] = value;
          }
        } else {
          const AbsVal value = read_reg(insn.rd);
          if (!addr_known) {
            WeakStoreAll(s, is_byte ? AbsVal::Unknown(value.taint) : value);
          } else if (is_byte) {
            const word key = addr & ~3u;
            const AbsVal old = LoadWord(s, addr);
            const unsigned shift = (addr & 3u) * 8;
            const Taint t = JoinTaint(old.taint, value.taint);
            s.store[key] =
                old.known && value.known
                    ? AbsVal::Const((old.value & ~(0xffu << shift)) | ((value.value & 0xff) << shift),
                                    t)
                    : AbsVal::Unknown(t);
          } else {
            s.store[addr & ~3u] = value;
          }
        }
        break;
      }

      case Op::kLdm:
      case Op::kStm: {
        const bool is_load = insn.op == Op::kLdm;
        const AbsVal base = read_reg(insn.rn);
        const word count = static_cast<word>(__builtin_popcount(insn.reg_list));
        if (findings != nullptr && base.taint == Taint::kSecret) {
          findings->push_back({is_load ? FindingKind::kSecretIndexedLoad
                                       : FindingKind::kSecretIndexedStore,
                               ci.addr, arm::OpName(insn.op)});
        }
        if (base.known) {
          word addr;
          if (insn.mem_add) {
            addr = base.value + (insn.block_pre ? 4 : 0);
          } else {
            addr = base.value - 4 * count + (insn.block_pre ? 0 : 4);
          }
          for (int i = 0; i < 16; ++i) {
            if (((insn.reg_list >> i) & 1) == 0) {
              continue;
            }
            const Reg reg = static_cast<Reg>(i);
            if (is_load) {
              if (reg != arm::PC) {
                s.regs[reg] = LoadWord(s, addr);
              }
            } else {
              s.store[addr & ~3u] =
                  (reg == arm::PC) ? AbsVal::Const(ci.addr + 8) : read_reg(reg);
            }
            addr += 4;
          }
        } else {
          Taint t = base.taint;
          if (is_load) {
            for (int i = 0; i < 16; ++i) {
              if (((insn.reg_list >> i) & 1) != 0 && i != arm::PC) {
                s.regs[i] = AbsVal::Unknown(base.taint);  // same rule as LDR
              }
            }
          } else {
            for (int i = 0; i < 16; ++i) {
              if (((insn.reg_list >> i) & 1) != 0) {
                t = JoinTaint(t, read_reg(static_cast<Reg>(i)).taint);
              }
            }
            WeakStoreAll(s, AbsVal::Unknown(t));
          }
        }
        if (insn.block_wback) {
          const bool base_loaded = is_load && ((insn.reg_list >> insn.rn) & 1) != 0;
          if (!base_loaded) {
            s.regs[insn.rn] =
                base.known
                    ? AbsVal::Const(insn.mem_add ? base.value + 4 * count : base.value - 4 * count,
                                    base.taint)
                    : AbsVal::Unknown(base.taint);
          }
        }
        break;
      }

      case Op::kB:
        break;
      case Op::kBl:
        s.regs[arm::LR] = AbsVal::Const(ci.addr + 4);
        break;
      case Op::kBx:
        break;  // no successors; analyzer reports the indirect branch

      case Op::kSvc: {
        if (findings != nullptr) {
          const AbsVal r0 = s.regs[arm::R0];
          if (!r0.known) {
            findings->push_back({FindingKind::kSvcUnresolved, ci.addr, "r0 not a constant"});
          } else if (std::find(options_.allowed_svcs.begin(), options_.allowed_svcs.end(),
                               r0.value) == options_.allowed_svcs.end()) {
            findings->push_back(
                {FindingKind::kSvcOutOfRange, ci.addr, "r0=" + std::to_string(r0.value)});
          }
        }
        ClobberAfterTrap(s);
        break;
      }
      case Op::kSmc:
        // Flagged by the privilege lint; model the trap clobber anyway.
        ClobberAfterTrap(s);
        break;

      case Op::kMrs:
        // CPSR reads expose the (possibly secret-set) NZCV flags.
        s.regs[insn.rd] = AbsVal::Unknown(insn.uses_spsr ? Taint::kPublic : s.flags);
        break;
      case Op::kMsr:
        if (!insn.uses_spsr) {
          s.flags = read_reg(insn.rm).taint;  // user-mode MSR writes the flags
        }
        break;
      case Op::kMcr:
        break;
      case Op::kMrc:
        s.regs[insn.rd] = AbsVal::Unknown(Taint::kPublic);
        break;
    }
    return s;
  }

  // After a trap into the monitor: r0-r3 come back as monitor-chosen (public)
  // values, flags are restored/scrubbed, and the monitor may have rewritten
  // enclave memory (e.g. Attest's MAC output), so tracked cells are dropped
  // back to their region defaults.
  static void ClobberAfterTrap(AbsState& s) {
    for (int i = 0; i < 4; ++i) {
      s.regs[i] = AbsVal::Unknown(Taint::kPublic);
    }
    s.flags = Taint::kPublic;
    s.store.clear();
  }

  const Cfg& cfg_;
  const TaintOptions& options_;
};

}  // namespace

TaintResult RunTaintPass(const Cfg& cfg, const TaintOptions& options) {
  return Interp(cfg, options).Run();
}

}  // namespace komodo::analysis
