#include "src/analysis/findings.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace komodo::analysis {

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kPrivilegedInstruction:
      return "privileged-instruction";
    case FindingKind::kUndecodableWord:
      return "undecodable-word";
    case FindingKind::kSvcOutOfRange:
      return "svc-out-of-range";
    case FindingKind::kSvcUnresolved:
      return "svc-unresolved";
    case FindingKind::kSecretDependentBranch:
      return "secret-dependent-branch";
    case FindingKind::kSecretIndexedLoad:
      return "secret-indexed-load";
    case FindingKind::kSecretIndexedStore:
      return "secret-indexed-store";
    case FindingKind::kIndirectBranch:
      return "indirect-branch";
    case FindingKind::kBranchOutOfRange:
      return "branch-out-of-range";
  }
  return "?";
}

std::string FormatFinding(const Finding& f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%08x", f.addr);
  std::string out = FindingKindName(f.kind);
  out += '\t';
  out += buf;
  out += '\t';
  out += f.detail;
  return out;
}

void SortUnique(std::vector<Finding>* findings) {
  auto key = [](const Finding& f) { return std::tie(f.addr, f.kind, f.detail); };
  std::sort(findings->begin(), findings->end(),
            [&](const Finding& a, const Finding& b) { return key(a) < key(b); });
  findings->erase(std::unique(findings->begin(), findings->end()), findings->end());
}

}  // namespace komodo::analysis
