// komodo::analysis — static secret-flow and privilege analyzer for enclave
// program images (vectors of A32 words, as shipped by src/enclave).
//
// Three cooperating passes over one recovered CFG:
//   1. CFG recovery (cfg.h): basic blocks, direct-branch edges, trap edges.
//   2. Privilege lint (privilege.h): instructions illegal in enclave user
//      mode, undecodable words.
//   3. Taint pass (taint.h): abstract interpretation flagging
//      secret-dependent branches, secret-indexed memory accesses and SVC
//      call numbers outside the Table 1 set.
// This is the whole-program complement to the property-based noninterference
// tests in tests/spec/ — see DESIGN.md § Analysis for what each side
// guarantees.
#ifndef SRC_ANALYSIS_ANALYZER_H_
#define SRC_ANALYSIS_ANALYZER_H_

#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/findings.h"
#include "src/analysis/taint.h"

namespace komodo::analysis {

struct AnalysisResult {
  Cfg cfg;
  std::vector<Finding> findings;  // all passes, sorted by address, deduplicated
  bool Clean() const { return findings.empty(); }
};

// Analyzes `program` linked at `base` (conventionally os::kEnclaveCodeVa).
AnalysisResult AnalyzeProgram(const std::vector<word>& program, vaddr base,
                              const TaintOptions& options = TaintOptions::Default());

}  // namespace komodo::analysis

#endif  // SRC_ANALYSIS_ANALYZER_H_
