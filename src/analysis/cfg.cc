#include "src/analysis/cfg.h"

#include <algorithm>
#include <cassert>

namespace komodo::analysis {

using arm::Cond;
using arm::Instruction;
using arm::Op;

std::optional<size_t> Cfg::IndexOf(vaddr addr) const {
  if (addr < base || !arm::IsWordAligned(addr)) {
    return std::nullopt;
  }
  const size_t index = (addr - base) / arm::kWordSize;
  if (index >= insns.size()) {
    return std::nullopt;
  }
  return index;
}

size_t Cfg::BlockOf(size_t insn_index) const {
  assert(insn_index < insns.size());
  // Blocks are in address order; binary-search the one covering the index.
  size_t lo = 0;
  size_t hi = blocks.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (blocks[mid].first <= insn_index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

// Classifies the way an instruction ends a basic block, if it does.
std::optional<BlockExit> TerminatorKind(const std::optional<Instruction>& decoded) {
  if (!decoded.has_value()) {
    return BlockExit::kUndefined;
  }
  const Instruction& insn = *decoded;
  if (arm::IsExceptionReturn(insn)) {
    return BlockExit::kExceptionReturn;
  }
  if (arm::WritesPcIndirectly(insn)) {
    return BlockExit::kIndirect;
  }
  switch (insn.op) {
    case Op::kB:
    case Op::kBl:
      return BlockExit::kBranch;
    case Op::kSvc:
    case Op::kSmc:
      return BlockExit::kTrap;
    default:
      return std::nullopt;
  }
}

}  // namespace

Cfg BuildCfg(const std::vector<word>& program, vaddr base) {
  Cfg cfg;
  cfg.base = base;
  cfg.insns.reserve(program.size());
  for (size_t i = 0; i < program.size(); ++i) {
    const vaddr addr = base + static_cast<word>(i) * arm::kWordSize;
    cfg.insns.push_back({addr, program[i], arm::Decode(program[i])});
  }
  if (cfg.insns.empty()) {
    return cfg;
  }

  // Pass 1: leaders. Index 0, every direct-branch target, and the instruction
  // after any terminator.
  std::vector<bool> leader(cfg.insns.size(), false);
  leader[0] = true;
  for (size_t i = 0; i < cfg.insns.size(); ++i) {
    const CfgInsn& ci = cfg.insns[i];
    if (!TerminatorKind(ci.decoded).has_value()) {
      continue;
    }
    if (i + 1 < cfg.insns.size()) {
      leader[i + 1] = true;
    }
    if (ci.decoded.has_value() &&
        (ci.decoded->op == Op::kB || ci.decoded->op == Op::kBl)) {
      const word target = arm::BranchTargetAddr(ci.addr, *ci.decoded);
      if (const auto ti = cfg.IndexOf(target); ti.has_value()) {
        leader[*ti] = true;
      }
    }
  }

  // Pass 2: carve blocks out of the leader map.
  for (size_t i = 0; i < cfg.insns.size(); ++i) {
    if (!leader[i]) {
      continue;
    }
    BasicBlock bb;
    bb.first = i;
    size_t j = i;
    while (j + 1 < cfg.insns.size() && !leader[j + 1] &&
           !TerminatorKind(cfg.insns[j].decoded).has_value()) {
      ++j;
    }
    bb.last = j;
    cfg.blocks.push_back(bb);
  }

  // Pass 3: exits and successor edges.
  for (BasicBlock& bb : cfg.blocks) {
    const CfgInsn& last = cfg.insns[bb.last];
    const std::optional<BlockExit> term = TerminatorKind(last.decoded);
    const bool has_next = bb.last + 1 < cfg.insns.size();
    auto fall_next = [&] {
      if (has_next) {
        bb.fall = cfg.BlockOf(bb.last + 1);
      }
    };

    if (!term.has_value()) {
      bb.exit = has_next ? BlockExit::kFallthrough : BlockExit::kEndOfProgram;
      fall_next();
    } else {
      bb.exit = *term;
      const Instruction* insn = last.decoded.has_value() ? &*last.decoded : nullptr;
      const bool conditional = insn != nullptr && insn->cond != Cond::kAl;
      switch (*term) {
        case BlockExit::kBranch: {
          const word target = arm::BranchTargetAddr(last.addr, *insn);
          if (const auto ti = cfg.IndexOf(target); ti.has_value()) {
            bb.taken = cfg.BlockOf(*ti);
          }
          // An unconditional BL's continuation is only reachable through the
          // callee's return (an indirect branch we do not follow), so no edge.
          if (conditional) {
            fall_next();
          }
          break;
        }
        case BlockExit::kTrap:
          // The monitor resumes the enclave at the next instruction (unless
          // the call was Exit; analyzing the dead continuation is harmless).
          fall_next();
          break;
        case BlockExit::kIndirect:
        case BlockExit::kExceptionReturn:
          if (conditional) {
            fall_next();
          }
          break;
        case BlockExit::kUndefined:
        case BlockExit::kFallthrough:
        case BlockExit::kEndOfProgram:
          break;
      }
    }
    if (bb.taken.has_value()) {
      bb.successors.push_back(*bb.taken);
    }
    if (bb.fall.has_value() && bb.fall != bb.taken) {
      bb.successors.push_back(*bb.fall);
    }
  }
  return cfg;
}

}  // namespace komodo::analysis
