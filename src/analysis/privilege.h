// Privilege lint: purely syntactic checks over the instructions reachable
// from the enclave entry point. Enclaves run in secure user mode, where SMC,
// MSR, CP15 access (MCR/MRC), MRS of the SPSR, the exception-return idiom and
// anything outside the modelled encoding space either traps Undefined or
// touches state the monitor owns — none of it belongs in shipped enclave
// code. (SVC call-number validation needs constant propagation and therefore
// lives in the taint pass.)
#ifndef SRC_ANALYSIS_PRIVILEGE_H_
#define SRC_ANALYSIS_PRIVILEGE_H_

#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/findings.h"

namespace komodo::analysis {

// `reachable[b]` says whether block b is reachable from the entry block;
// unreachable blocks typically hold in-code constant tables and are skipped.
std::vector<Finding> RunPrivilegeLint(const Cfg& cfg, const std::vector<bool>& reachable);

// Forward reachability over Cfg::successors from block 0.
std::vector<bool> ReachableBlocks(const Cfg& cfg);

}  // namespace komodo::analysis

#endif  // SRC_ANALYSIS_PRIVILEGE_H_
