#include "src/analysis/absdom.h"

#include "src/os/os.h"

namespace komodo::analysis {

MemoryLayout MemoryLayout::DefaultEnclaveLayout() {
  MemoryLayout layout;
  // The code range is prepended by the analyzer once the program extent is
  // known. Everything at or above the shared VA is insecure by convention
  // (the notary maps hundreds of shared pages there).
  layout.ranges.push_back({os::kEnclaveDataVa, arm::kPageSize, Region::kSecret});
  layout.ranges.push_back({os::kEnclaveStackVa, arm::kPageSize, Region::kSecret});
  layout.ranges.push_back(
      {os::kEnclaveSharedVa, arm::kEnclaveVaLimit - os::kEnclaveSharedVa, Region::kPublic});
  layout.fallback = Region::kSecret;
  return layout;
}

}  // namespace komodo::analysis
