// Deliberately-defective enclave programs for exercising komodo-lint. Each
// fixture is seeded with exactly one defect and must produce exactly one
// finding of the expected kind — enforced both by tests/analysis/ and by
// `komodo-lint --check-fixtures` (a CTest case), so a regression that makes
// the analyzer blind to a defect class fails the build.
#ifndef SRC_ANALYSIS_FIXTURES_H_
#define SRC_ANALYSIS_FIXTURES_H_

#include <string>
#include <vector>

#include "src/analysis/findings.h"
#include "src/arm/types.h"

namespace komodo::analysis {

struct BadFixture {
  std::string name;
  std::vector<word> program;  // linked at os::kEnclaveCodeVa
  FindingKind expected;
};

// The four canonical seeded-bad programs:
//   secret_branch        — branches on a value loaded from the private data page
//   secret_indexed_store — stores through an address derived from a secret
//   rogue_smc            — issues SMC from enclave user code
//   svc_out_of_range     — SVC with r0 = 99, outside the Table 1 set
std::vector<BadFixture> SeededBadFixtures();

// Additional single-defect fixtures covering the remaining finding kinds
// (secret-indexed load, unresolvable SVC number, undecodable word, indirect
// branch, MSR from user code).
std::vector<BadFixture> ExtraBadFixtures();

}  // namespace komodo::analysis

#endif  // SRC_ANALYSIS_FIXTURES_H_
