// Control-flow-graph recovery over the modelled A32 subset.
//
// The unit of analysis is a "program image": the vector of instruction words
// an enclave ships (src/enclave/programs.cc et al.), linked at a known base
// VA. Every word is decoded with arm::Decode; basic blocks are split at branch
// targets and after terminators. Direct branches (B/BL) resolve statically;
// indirect PC writes (BX, MOV pc, LDR pc, LDM {..pc}) terminate their block
// with no successors and are surfaced to the caller — following them would
// require the dataflow pass, and komodo-lint reports them instead (see
// DESIGN.md § Analysis, soundness limits).
#ifndef SRC_ANALYSIS_CFG_H_
#define SRC_ANALYSIS_CFG_H_

#include <optional>
#include <vector>

#include "src/arm/isa.h"
#include "src/arm/types.h"

namespace komodo::analysis {

using arm::vaddr;
using arm::word;

// Why a basic block stops.
enum class BlockExit : uint8_t {
  kFallthrough,     // next block starts here (leader boundary)
  kBranch,          // direct B/BL: target edge, plus fallthrough if conditional
  kIndirect,        // BX / PC write with statically-unknown target
  kTrap,            // SVC: monitor may return to the next instruction
  kUndefined,       // undecodable word -> Undefined exception, no successors
  kExceptionReturn, // MOVS pc, lr idiom (privileged; dead end for enclave code)
  kEndOfProgram,    // execution would run off the program text
};

struct CfgInsn {
  vaddr addr = 0;
  word bits = 0;
  std::optional<arm::Instruction> decoded;  // nullopt = undecodable
};

struct BasicBlock {
  size_t first = 0;  // index range [first, last] into Cfg::insns
  size_t last = 0;
  BlockExit exit = BlockExit::kFallthrough;
  // Successor blocks, split by how control reaches them: `taken` is the
  // resolved target of a direct branch; `fall` is the fallthrough (including
  // the monitor's return point after an SVC). The dataflow pass needs the
  // distinction to propagate the branch-not-taken state only along `fall`.
  std::optional<size_t> taken;
  std::optional<size_t> fall;
  std::vector<size_t> successors;  // taken + fall, for generic traversals
  vaddr StartAddr(const std::vector<CfgInsn>& insns) const { return insns[first].addr; }
};

struct Cfg {
  vaddr base = 0;
  std::vector<CfgInsn> insns;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block

  // Maps a VA to the instruction index, or nullopt if outside the program.
  std::optional<size_t> IndexOf(vaddr addr) const;
  // Maps an instruction index to the id of the block containing it.
  size_t BlockOf(size_t insn_index) const;
};

// Builds the CFG for `program` linked at `base`. Never fails: undecodable
// words and out-of-range branch targets become block exits (the taint pass
// and the privilege lint turn them into findings).
Cfg BuildCfg(const std::vector<word>& program, vaddr base);

}  // namespace komodo::analysis

#endif  // SRC_ANALYSIS_CFG_H_
