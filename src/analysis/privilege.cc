#include "src/analysis/privilege.h"

#include <deque>

namespace komodo::analysis {

using arm::Instruction;
using arm::Op;

std::vector<bool> ReachableBlocks(const Cfg& cfg) {
  std::vector<bool> reachable(cfg.blocks.size(), false);
  if (cfg.blocks.empty()) {
    return reachable;
  }
  std::deque<size_t> worklist = {0};
  reachable[0] = true;
  while (!worklist.empty()) {
    const size_t b = worklist.front();
    worklist.pop_front();
    for (const size_t succ : cfg.blocks[b].successors) {
      if (!reachable[succ]) {
        reachable[succ] = true;
        worklist.push_back(succ);
      }
    }
  }
  return reachable;
}

std::vector<Finding> RunPrivilegeLint(const Cfg& cfg, const std::vector<bool>& reachable) {
  std::vector<Finding> findings;
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (!reachable[b]) {
      continue;
    }
    const BasicBlock& bb = cfg.blocks[b];
    for (size_t i = bb.first; i <= bb.last; ++i) {
      const CfgInsn& ci = cfg.insns[i];
      if (!ci.decoded.has_value()) {
        findings.push_back({FindingKind::kUndecodableWord, ci.addr, "outside modelled subset"});
        continue;
      }
      const Instruction& insn = *ci.decoded;
      if (arm::IsExceptionReturn(insn)) {
        findings.push_back(
            {FindingKind::kPrivilegedInstruction, ci.addr, "exception-return idiom"});
        continue;
      }
      switch (insn.op) {
        case Op::kSmc:
          findings.push_back({FindingKind::kPrivilegedInstruction, ci.addr, "smc"});
          break;
        case Op::kMsr:
          findings.push_back({FindingKind::kPrivilegedInstruction, ci.addr,
                              insn.uses_spsr ? "msr spsr" : "msr cpsr"});
          break;
        case Op::kMcr:
          findings.push_back({FindingKind::kPrivilegedInstruction, ci.addr, "mcr p15"});
          break;
        case Op::kMrc:
          findings.push_back({FindingKind::kPrivilegedInstruction, ci.addr, "mrc p15"});
          break;
        case Op::kMrs:
          if (insn.uses_spsr) {
            findings.push_back({FindingKind::kPrivilegedInstruction, ci.addr, "mrs spsr"});
          }
          break;
        default:
          break;
      }
    }
  }
  SortUnique(&findings);
  return findings;
}

}  // namespace komodo::analysis
