// Findings emitted by the static analyzer: one record per defect, carrying the
// kind, the instruction address it anchors to, and a human-readable detail.
// The machine-readable serialisation (one finding per line, tab-separated) is
// what `komodo-lint` prints and what the CTest cases grep.
#ifndef SRC_ANALYSIS_FINDINGS_H_
#define SRC_ANALYSIS_FINDINGS_H_

#include <string>
#include <vector>

#include "src/arm/types.h"

namespace komodo::analysis {

using arm::vaddr;
using arm::word;

enum class FindingKind : uint8_t {
  // Privilege lint: instructions an enclave (secure user mode) may not issue.
  kPrivilegedInstruction,  // SMC, MSR, MCR/MRC, MRS SPSR, exception return
  kUndecodableWord,        // outside the modelled subset -> Undefined exception
  kSvcOutOfRange,          // SVC with r0 = known constant outside Table 1's 7 calls
  kSvcUnresolved,          // SVC whose call number (r0) is not a static constant
  // Secret-flow lint: static counterpart of the ~adv noninterference relation.
  kSecretDependentBranch,  // conditional executed under secret-tainted flags
  kSecretIndexedLoad,      // load whose address depends on a secret
  kSecretIndexedStore,     // store whose address depends on a secret
  // CFG recovery: control flow the analysis cannot follow.
  kIndirectBranch,  // BX / MOV pc / LDR pc / LDM {..pc} with unresolved target
  kBranchOutOfRange,  // direct branch target outside the program text
};

const char* FindingKindName(FindingKind kind);

struct Finding {
  FindingKind kind;
  vaddr addr = 0;      // VA of the offending instruction
  std::string detail;  // e.g. the mnemonic, or the out-of-range SVC number

  bool operator==(const Finding&) const = default;
};

// "<kind>\t0x<addr>\t<detail>" — stable, grep-friendly.
std::string FormatFinding(const Finding& f);

// Sorts by address then kind and drops duplicates (the fixpoint visits
// instructions many times; each defect is reported once).
void SortUnique(std::vector<Finding>* findings);

}  // namespace komodo::analysis

#endif  // SRC_ANALYSIS_FINDINGS_H_
