#include "src/arm/execute.h"

#include <cassert>

#include "src/arm/page_table.h"
#include "src/jit/jit.h"

namespace komodo::arm {

namespace {

const CycleCosts& kCosts = kCortexA7Costs;

struct ShiftOut {
  word value;
  bool carry;
};

ShiftOut ApplyShift(word value, ShiftKind kind, unsigned amount, bool carry_in) {
  switch (kind) {
    case ShiftKind::kLsl:
      if (amount == 0) {
        return {value, carry_in};
      }
      return {value << amount, ((value >> (32 - amount)) & 1) != 0};
    case ShiftKind::kLsr:
      // Encoded amount 0 means LSR #32.
      if (amount == 0) {
        return {0, (value >> 31) != 0};
      }
      return {value >> amount, ((value >> (amount - 1)) & 1) != 0};
    case ShiftKind::kAsr: {
      if (amount == 0) {
        amount = 32;
      }
      const bool sign = (value >> 31) != 0;
      if (amount >= 32) {
        return {sign ? 0xffff'ffff : 0, sign};
      }
      return {static_cast<word>(static_cast<int32_t>(value) >> amount),
              ((value >> (amount - 1)) & 1) != 0};
    }
    case ShiftKind::kRor:
      if (amount == 0) {
        // RRX (rotate through carry by one).
        return {(value >> 1) | (static_cast<word>(carry_in) << 31), (value & 1) != 0};
      }
      return {(value >> amount) | (value << (32 - amount)), ((value >> (amount - 1)) & 1) != 0};
  }
  return {value, carry_in};
}

struct AluOut {
  word value;
  bool carry;
  bool overflow;
  bool affects_cv;  // arithmetic ops update C/V; logical ops use shifter carry
};

AluOut AddWithCarry(word a, word b, bool carry_in) {
  const uint64_t unsigned_sum = static_cast<uint64_t>(a) + b + (carry_in ? 1 : 0);
  const int64_t signed_sum = static_cast<int64_t>(static_cast<int32_t>(a)) +
                             static_cast<int32_t>(b) + (carry_in ? 1 : 0);
  const word result = static_cast<word>(unsigned_sum);
  return {result, unsigned_sum != result,
          signed_sum != static_cast<int32_t>(result), true};
}

bool IsPrivileged(const MachineState& m) { return m.cpsr.mode != Mode::kUser; }

}  // namespace

Translation TranslateAddress(const MachineState& m, vaddr va, Access access) {
  Translation t;
  if (m.CurrentWorld() == World::kNormal) {
    // Normal world runs flat-mapped; the TrustZone address-space filter blocks
    // any access outside insecure RAM.
    if (m.mem.RegionOf(va & ~3u) != MemRegion::kInsecure) {
      return t;
    }
    t.ok = true;
    t.phys = va;
    return t;
  }
  if (m.cpsr.mode == Mode::kUser) {
    // Secure user: enclave page table via TTBR0. The model requires a
    // consistent TLB for any user-mode activity (§5.1); the monitor's proof
    // obligation is to flush before entering, so a violation here is a bug in
    // the privileged code driving the machine, not an architectural fault.
    assert(m.tlb_consistent && "user-mode access with inconsistent TLB");
    const WalkResult w = m.interp.enabled() ? m.interp.TlbWalk(m.mem, m.ttbr0, va)
                                            : WalkPageTable(m.mem, m.ttbr0, va);
    if (!w.ok) {
      return t;
    }
    if (access == Access::kFetch && !w.executable) {
      return t;
    }
    if (access == Access::kWrite && !w.user_write) {
      return t;
    }
    t.ok = true;
    t.phys = w.phys;
    return t;
  }
  // Secure privileged: static TTBR1 direct map of physical memory.
  if (va < kDirectMapVbase) {
    return t;
  }
  const paddr phys = va - kDirectMapVbase;
  if (!m.mem.IsValidPhys(phys & ~3u)) {
    return t;
  }
  t.ok = true;
  t.phys = phys;
  return t;
}

namespace {

// Return-address conventions per exception kind (DDI 0406C §B1.8.3), given
// the address of the instruction being (or about to be) executed.
word PreferredReturn(Exception e, word insn_addr) {
  switch (e) {
    case Exception::kSvc:
    case Exception::kSmc:
    case Exception::kUndefined:
    case Exception::kPrefetchAbort:
    case Exception::kIrq:
    case Exception::kFiq:
      return insn_addr + 4;
    case Exception::kDataAbort:
      return insn_addr + 8;
  }
  return insn_addr + 4;
}

StepResult Fault(MachineState& m, Exception e, word insn_addr) {
  m.TakeException(e, PreferredReturn(e, insn_addr));
  return {StepStatus::kException, e};
}

// A store in the secure world that lands inside the live enclave page table
// invalidates TLB consistency (§5.1). The OS's flat normal-world stores can
// never reach secure memory, so only secure-world stores are checked. The
// fast path answers through the cached page-table footprint; once the TLB is
// already inconsistent there is nothing left for the check to change.
void NoteStore(MachineState& m, paddr phys) {
  if (m.CurrentWorld() != World::kSecure || m.ttbr0 == 0) {
    return;
  }
  if (m.interp.enabled()) {
    if (m.tlb_consistent &&
        m.interp.StoreHitsLivePageTable(m.mem, m.ttbr0, phys & ~3u)) {
      m.tlb_consistent = false;
    }
    return;
  }
  if (AddrInLivePageTable(m.mem, m.ttbr0, phys & ~3u)) {
    m.tlb_consistent = false;
  }
}

}  // namespace

StepResult Step(MachineState& m) {
  ++m.steps_retired;
  // Asynchronous interrupts are taken before fetching (FIQ has priority).
  if (m.pending_fiq && !m.cpsr.fiq_masked) {
    m.pending_fiq = false;
    return Fault(m, Exception::kFiq, m.pc);
  }
  if (m.pending_irq && !m.cpsr.irq_masked) {
    m.pending_irq = false;
    return Fault(m, Exception::kIrq, m.pc);
  }

  const word insn_addr = m.pc;
  if (!IsWordAligned(insn_addr)) {
    return Fault(m, Exception::kPrefetchAbort, insn_addr);
  }
  const Translation fetch = TranslateAddress(m, insn_addr, Access::kFetch);
  if (!fetch.ok) {
    return Fault(m, Exception::kPrefetchAbort, insn_addr);
  }
  // Decode through the per-physical-address cache; the slow path re-decodes
  // every step (and is what the cache is differentially tested against).
  std::optional<Instruction> decoded_slow;
  const Instruction* insn_p;
  if (m.interp.enabled()) {
    insn_p = m.interp.LookupDecode(m.mem, fetch.phys);
    if (insn_p == nullptr) {
      return Fault(m, Exception::kUndefined, insn_addr);
    }
  } else {
    decoded_slow = Decode(m.mem.Read(fetch.phys));
    if (!decoded_slow.has_value()) {
      return Fault(m, Exception::kUndefined, insn_addr);
    }
    insn_p = &*decoded_slow;
  }
  const Instruction& insn = *insn_p;

  if (insn.cond != Cond::kAl && !CondPasses(insn.cond, m.cpsr)) {
    m.cycles.Charge(kCosts.alu);
    m.pc = insn_addr + 4;
    return {StepStatus::kOk, {}};
  }

  word next_pc = insn_addr + 4;

  switch (insn.op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kTst:
    case Op::kTeq:
    case Op::kCmp:
    case Op::kCmn:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn: {
      m.cycles.Charge(kCosts.alu);
      // Reading PC as an operand yields the instruction address + 8.
      auto read_operand = [&](Reg reg) -> word {
        return (reg == PC) ? insn_addr + 8 : m.ReadReg(reg);
      };
      word op2_value;
      bool shifter_carry = m.cpsr.c;
      if (insn.op2.is_imm) {
        op2_value = insn.op2.ImmValue();
        if (insn.op2.rot4 != 0) {
          shifter_carry = (op2_value >> 31) != 0;
        }
      } else {
        const ShiftOut s =
            ApplyShift(read_operand(insn.op2.rm), insn.op2.shift, insn.op2.shift_imm, m.cpsr.c);
        op2_value = s.value;
        shifter_carry = s.carry;
      }
      const word rn_value = read_operand(insn.rn);

      AluOut out{0, shifter_carry, m.cpsr.v, false};
      switch (insn.op) {
        case Op::kAnd:
        case Op::kTst:
          out.value = rn_value & op2_value;
          break;
        case Op::kEor:
        case Op::kTeq:
          out.value = rn_value ^ op2_value;
          break;
        case Op::kSub:
        case Op::kCmp:
          out = AddWithCarry(rn_value, ~op2_value, true);
          break;
        case Op::kRsb:
          out = AddWithCarry(~rn_value, op2_value, true);
          break;
        case Op::kAdd:
        case Op::kCmn:
          out = AddWithCarry(rn_value, op2_value, false);
          break;
        case Op::kAdc:
          out = AddWithCarry(rn_value, op2_value, m.cpsr.c);
          break;
        case Op::kSbc:
          out = AddWithCarry(rn_value, ~op2_value, m.cpsr.c);
          break;
        case Op::kRsc:
          out = AddWithCarry(~rn_value, op2_value, m.cpsr.c);
          break;
        case Op::kOrr:
          out.value = rn_value | op2_value;
          break;
        case Op::kMov:
          out.value = op2_value;
          break;
        case Op::kBic:
          out.value = rn_value & ~op2_value;
          break;
        case Op::kMvn:
          out.value = ~op2_value;
          break;
        default:
          break;
      }

      const bool is_compare =
          insn.op == Op::kTst || insn.op == Op::kTeq || insn.op == Op::kCmp || insn.op == Op::kCmn;

      if (insn.set_flags && insn.rd == PC && !is_compare) {
        // Exception return idiom (MOVS PC, LR / SUBS PC, LR, #imm).
        if (!IsPrivileged(m)) {
          return Fault(m, Exception::kUndefined, insn_addr);
        }
        m.ExceptionReturn(out.value);
        return {StepStatus::kOk, {}};
      }

      if (insn.set_flags || is_compare) {
        m.cpsr.n = (out.value >> 31) != 0;
        m.cpsr.z = out.value == 0;
        if (out.affects_cv) {
          m.cpsr.c = out.carry;
          m.cpsr.v = out.overflow;
        } else {
          m.cpsr.c = shifter_carry;
        }
      }
      if (!is_compare) {
        if (insn.rd == PC) {
          next_pc = out.value;
          m.cycles.Charge(kCosts.branch_taken);
        } else {
          m.WriteReg(insn.rd, out.value);
        }
      }
      break;
    }

    case Op::kMul: {
      m.cycles.Charge(kCosts.mul);
      const word result = m.ReadReg(insn.rm) * m.ReadReg(insn.rn);
      m.WriteReg(insn.rd, result);
      if (insn.set_flags) {
        m.cpsr.n = (result >> 31) != 0;
        m.cpsr.z = result == 0;
      }
      break;
    }

    case Op::kMovw:
      m.cycles.Charge(kCosts.alu);
      m.WriteReg(insn.rd, insn.trap_imm & 0xffff);
      break;
    case Op::kMovt: {
      m.cycles.Charge(kCosts.alu);
      const word low = m.ReadReg(insn.rd) & 0xffff;
      m.WriteReg(insn.rd, low | ((insn.trap_imm & 0xffff) << 16));
      break;
    }

    case Op::kLdr:
    case Op::kStr:
    case Op::kLdrb:
    case Op::kStrb: {
      const bool is_load = insn.op == Op::kLdr || insn.op == Op::kLdrb;
      const bool is_byte = insn.op == Op::kLdrb || insn.op == Op::kStrb;
      m.cycles.Charge(is_load ? kCosts.load : kCosts.store);
      const word base = (insn.rn == PC) ? insn_addr + 8 : m.ReadReg(insn.rn);
      word addr;
      if (insn.mem_reg_offset) {
        const word off = m.ReadReg(insn.rm);
        addr = insn.mem_add ? base + off : base - off;
      } else {
        addr = insn.mem_add ? base + insn.mem_imm12 : base - insn.mem_imm12;
      }
      if (!is_byte && !IsWordAligned(addr)) {
        return Fault(m, Exception::kDataAbort, insn_addr);
      }
      const Translation tr =
          TranslateAddress(m, addr, is_load ? Access::kRead : Access::kWrite);
      if (!tr.ok) {
        return Fault(m, Exception::kDataAbort, insn_addr);
      }
      if (is_byte) {
        const paddr word_addr = tr.phys & ~3u;
        const unsigned shift = (tr.phys & 3u) * 8;
        if (is_load) {
          m.WriteReg(insn.rd, (m.mem.Read(word_addr) >> shift) & 0xff);
        } else {
          const word old = m.mem.Read(word_addr);
          const word byte = m.ReadReg(insn.rd) & 0xff;
          m.mem.Write(word_addr, (old & ~(0xffu << shift)) | (byte << shift));
          NoteStore(m, word_addr);
        }
      } else {
        if (is_load) {
          const word value = m.mem.Read(tr.phys);
          if (insn.rd == PC) {
            // Same alignment discipline as LDM-to-PC below: Thumb
            // interworking is unmodelled, so the low bits are cleared.
            next_pc = value & ~3u;
            m.cycles.Charge(kCosts.branch_taken);
          } else {
            m.WriteReg(insn.rd, value);
          }
        } else {
          // STR with Rd = PC stores the instruction address + 8, matching the
          // STM-with-PC case below (ReadReg(PC) would give the raw fetch
          // address).
          m.mem.Write(tr.phys, (insn.rd == PC) ? insn_addr + 8 : m.ReadReg(insn.rd));
          NoteStore(m, tr.phys);
        }
      }
      break;
    }

    case Op::kLdm:
    case Op::kStm: {
      const bool is_load = insn.op == Op::kLdm;
      const word base = m.ReadReg(insn.rn);
      const word count = static_cast<word>(__builtin_popcount(insn.reg_list));
      // Lowest address accessed, per the four addressing modes.
      word addr;
      if (insn.mem_add) {
        addr = base + (insn.block_pre ? 4 : 0);
      } else {
        addr = base - 4 * count + (insn.block_pre ? 0 : 4);
      }
      if (!IsWordAligned(addr)) {
        return Fault(m, Exception::kDataAbort, insn_addr);
      }
      bool loaded_pc = false;
      word pc_value = 0;
      for (int i = 0; i < 16; ++i) {
        if (((insn.reg_list >> i) & 1) == 0) {
          continue;
        }
        m.cycles.Charge(is_load ? kCosts.load : kCosts.store);
        const Translation tr =
            TranslateAddress(m, addr, is_load ? Access::kRead : Access::kWrite);
        if (!tr.ok) {
          return Fault(m, Exception::kDataAbort, insn_addr);
        }
        const Reg reg = static_cast<Reg>(i);
        if (is_load) {
          const word value = m.mem.Read(tr.phys);
          if (reg == PC) {
            loaded_pc = true;
            pc_value = value;
          } else {
            m.WriteReg(reg, value);
          }
        } else {
          // STM with PC in the list stores the instruction address + 8.
          m.mem.Write(tr.phys, (reg == PC) ? insn_addr + 8 : m.ReadReg(reg));
          NoteStore(m, tr.phys);
        }
        addr += 4;
      }
      if (insn.block_wback) {
        // LDM that also loads the base register wins over writeback.
        const bool base_loaded = is_load && ((insn.reg_list >> insn.rn) & 1);
        if (!base_loaded) {
          m.WriteReg(insn.rn, insn.mem_add ? base + 4 * count : base - 4 * count);
        }
      }
      if (loaded_pc) {
        next_pc = pc_value & ~3u;
        m.cycles.Charge(kCosts.branch_taken);
      }
      break;
    }

    case Op::kB:
    case Op::kBl:
      m.cycles.Charge(kCosts.branch_taken);
      if (insn.op == Op::kBl) {
        m.WriteReg(LR, insn_addr + 4);
      }
      next_pc = static_cast<word>(static_cast<int64_t>(insn_addr) + 8 + insn.branch_offset);
      break;

    case Op::kBx:
      m.cycles.Charge(kCosts.branch_taken);
      next_pc = m.ReadReg(insn.rm) & ~3u;  // Thumb interworking unmodelled
      break;

    case Op::kSvc:
      m.cycles.Charge(kCosts.svc_smc_issue);
      return Fault(m, Exception::kSvc, insn_addr);

    case Op::kSmc:
      // SMC from user mode is undefined; from privileged modes it traps to
      // monitor mode.
      m.cycles.Charge(kCosts.svc_smc_issue);
      if (!IsPrivileged(m)) {
        return Fault(m, Exception::kUndefined, insn_addr);
      }
      return Fault(m, Exception::kSmc, insn_addr);

    case Op::kMrs:
      m.cycles.Charge(kCosts.msr_mrs);
      if (insn.uses_spsr) {
        if (!IsPrivileged(m)) {
          return Fault(m, Exception::kUndefined, insn_addr);
        }
        m.WriteReg(insn.rd, m.Spsr().Encode());
      } else {
        m.WriteReg(insn.rd, m.cpsr.Encode());
      }
      break;

    case Op::kMcr:
    case Op::kMrc: {
      m.cycles.Charge(kCosts.cp15_access);
      // CP15 is privileged, secure-world state; anything else is outside the
      // model (normal-world system control is the OS's business, unmodelled).
      if (!IsPrivileged(m) || m.CurrentWorld() != World::kSecure) {
        return Fault(m, Exception::kUndefined, insn_addr);
      }
      const bool is_read = insn.op == Op::kMrc;
      const word key = (static_cast<word>(insn.cp_opc1) << 12) |
                       (static_cast<word>(insn.cp_crn) << 8) |
                       (static_cast<word>(insn.cp_crm) << 4) | insn.cp_opc2;
      switch (key) {
        case 0x0200:  // TTBR0: c2, c0, 0
          if (is_read) {
            m.WriteReg(insn.rd, m.ttbr0);
          } else {
            m.WriteTtbr0(m.ReadReg(insn.rd));
          }
          break;
        case 0x0201:  // TTBR1: c2, c0, 1
          if (is_read) {
            m.WriteReg(insn.rd, m.ttbr1);
          } else {
            m.ttbr1 = m.ReadReg(insn.rd);
          }
          break;
        case 0x0870:  // TLBIALL: c8, c7, 0 (write-only)
          if (is_read) {
            return Fault(m, Exception::kUndefined, insn_addr);
          }
          m.FlushTlb();
          break;
        case 0x0c00:  // VBAR (secure): c12, c0, 0
          if (is_read) {
            m.WriteReg(insn.rd, m.vbar_secure);
          } else {
            m.vbar_secure = m.ReadReg(insn.rd);
          }
          break;
        case 0x0110:  // SCR: c1, c1, 0 — monitor mode only
          if (m.cpsr.mode != Mode::kMonitor) {
            return Fault(m, Exception::kUndefined, insn_addr);
          }
          if (is_read) {
            m.WriteReg(insn.rd, m.scr_ns ? 1u : 0u);
          } else {
            m.SetScrNs((m.ReadReg(insn.rd) & 1) != 0);
          }
          break;
        default:
          return Fault(m, Exception::kUndefined, insn_addr);
      }
      break;
    }

    case Op::kMsr: {
      m.cycles.Charge(kCosts.msr_mrs);
      const word value = m.ReadReg(insn.rm);
      if (insn.uses_spsr) {
        if (!IsPrivileged(m)) {
          return Fault(m, Exception::kUndefined, insn_addr);
        }
        m.Spsr() = Psr::Decode(value);
      } else if (IsPrivileged(m)) {
        m.cpsr = Psr::Decode(value);
      } else {
        // User mode can only touch the flags.
        const Psr flags = Psr::Decode(value);
        m.cpsr.n = flags.n;
        m.cpsr.z = flags.z;
        m.cpsr.c = flags.c;
        m.cpsr.v = flags.v;
      }
      break;
    }
  }

  m.pc = next_pc;
  return {StepStatus::kOk, {}};
}

void NoteStoreToPhys(MachineState& m, paddr phys) { NoteStore(m, phys); }

std::optional<Exception> RunUntilException(MachineState& m, uint64_t max_steps) {
  uint64_t remaining = max_steps;
  while (remaining > 0) {
    if (m.jit.enabled()) {
      const jit::RunOutcome o = jit::TryRunBlock(m, remaining);
      if (o.ran) {
        remaining -= o.steps;
        if (o.took_exception) {
          return o.exception;
        }
        continue;
      }
    }
    const StepResult r = Step(m);
    --remaining;
    if (r.status == StepStatus::kException) {
      return r.exception;
    }
  }
  return std::nullopt;
}

}  // namespace komodo::arm
