// Decoded representation of the modelled A32 instruction subset.
//
// The paper's machine model covers ~25 instructions (§5.1): integer and
// bitwise data-processing, multiply, loads/stores, branches, the trapping
// instructions (SVC/SMC), status-register moves, and the exception-return
// idiom MOVS PC, LR. We model the same subset with genuine A32 encodings so
// that the assembler and decoder are mutually inverse (a property the tests
// check exhaustively for the generator side).
#ifndef SRC_ARM_ISA_H_
#define SRC_ARM_ISA_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/arm/psr.h"
#include "src/arm/types.h"

namespace komodo::arm {

enum class Op : uint8_t {
  // Data-processing (opcode bits 24:21 in the encoding order).
  kAnd,
  kEor,
  kSub,
  kRsb,
  kAdd,
  kAdc,
  kSbc,
  kRsc,
  kTst,
  kTeq,
  kCmp,
  kCmn,
  kOrr,
  kMov,
  kBic,
  kMvn,
  // Multiply.
  kMul,
  // Wide immediates.
  kMovw,
  kMovt,
  // Memory.
  kLdr,
  kStr,
  kLdrb,
  kStrb,
  kLdm,
  kStm,
  // Branches.
  kB,
  kBl,
  kBx,
  // Traps.
  kSvc,
  kSmc,
  // Status registers.
  kMrs,
  kMsr,
  // CP15 system-register access (TTBR0/TTBR1, TLBIALL, VBAR, SCR).
  kMcr,
  kMrc,
};

enum class ShiftKind : uint8_t { kLsl = 0, kLsr = 1, kAsr = 2, kRor = 3 };

// Flexible second operand of data-processing instructions: either a rotated
// 8-bit immediate or a register with an immediate shift.
struct Operand2 {
  bool is_imm = true;
  // Immediate form: value = ror(imm8, 2*rot4).
  uint8_t imm8 = 0;
  uint8_t rot4 = 0;
  // Register form.
  Reg rm = R0;
  ShiftKind shift = ShiftKind::kLsl;
  uint8_t shift_imm = 0;  // 0..31

  static Operand2 Imm(uint8_t imm8, uint8_t rot4 = 0);
  static Operand2 Rm(Reg rm, ShiftKind shift = ShiftKind::kLsl, uint8_t shift_imm = 0);
  // Tries to express an arbitrary 32-bit value as a rotated immediate.
  static std::optional<Operand2> TryImm32(word value);
  // The immediate value this operand denotes (immediate form only).
  word ImmValue() const;
};

struct Instruction {
  Op op = Op::kMov;
  Cond cond = Cond::kAl;
  bool set_flags = false;  // S bit (data-processing / MUL)

  Reg rd = R0;
  Reg rn = R0;
  Reg rm = R0;  // MUL / BX / MSR source / LDR-STR register offset
  Operand2 op2;

  // Memory form: [rn, #imm12] with U = sign of offset, or [rn, rm].
  bool mem_reg_offset = false;
  uint16_t mem_imm12 = 0;
  bool mem_add = true;  // U bit

  // Block transfer (LDM/STM): register list, pre-index (P) and writeback (W).
  // The modelled idiom covers the four usual addressing modes (IA/IB/DA/DB);
  // the S bit (user-bank/exception-return forms) is unmodelled.
  uint16_t reg_list = 0;
  bool block_pre = false;  // P bit
  bool block_wback = false;  // W bit

  // Branch: signed word offset relative to the instruction's address + 8.
  int32_t branch_offset = 0;

  // SVC/SMC immediate.
  word trap_imm = 0;

  // MRS/MSR: true = SPSR, false = CPSR.
  bool uses_spsr = false;

  // MCR/MRC coprocessor-15 operands (opc1, CRn, CRm, opc2); rd is Rt.
  uint8_t cp_opc1 = 0;
  uint8_t cp_crn = 0;
  uint8_t cp_crm = 0;
  uint8_t cp_opc2 = 0;

  std::string ToString() const;
};

// Encodes to a genuine A32 instruction word. Asserts that the instruction is
// representable (the assembler only builds representable forms).
word Encode(const Instruction& insn);

// Decodes an instruction word. Returns nullopt for anything outside the
// modelled subset — the executor treats that as an Undefined exception.
std::optional<Instruction> Decode(word bits);

const char* OpName(Op op);

// --- Static-analysis helpers (shared with src/analysis) -----------------------

// Resolved target of a direct branch (B/BL) at `insn_addr`: the executor
// computes insn_addr + 8 + branch_offset.
word BranchTargetAddr(word insn_addr, const Instruction& insn);

// True if the instruction writes the PC other than by falling through or by a
// direct B/BL: BX, data-processing with rd=PC, LDR into PC, or LDM with PC in
// the register list. Such targets are not statically resolvable in general.
bool WritesPcIndirectly(const Instruction& insn);

// True for the exception-return idiom MOVS/SUBS/... PC, ... (set_flags with
// rd=PC on a non-compare data-processing op) — privileged-only.
bool IsExceptionReturn(const Instruction& insn);

}  // namespace komodo::arm

#endif  // SRC_ARM_ISA_H_
