#include "src/arm/page_table.h"

#include <cassert>

namespace komodo::arm {

namespace {
constexpr word kL1TypeMask = 0x3;
constexpr word kL1TypePageTable = 0x1;
constexpr word kL1TableBaseMask = 0xffff'fc00;
constexpr word kNsBit = 1u << 3;

constexpr word kL2SmallBit = 1u << 1;
constexpr word kL2XnBit = 1u << 0;
constexpr word kL2ApShift = 4;
constexpr word kL2ApMask = 0x3u << kL2ApShift;
constexpr word kL2PageBaseMask = 0xffff'f000;

constexpr word kApUserRw = 0x3;
constexpr word kApUserRo = 0x2;
constexpr word kApPrivOnly = 0x1;
}  // namespace

word MakeL1PageTableDesc(paddr l2_table_base) {
  assert((l2_table_base & ~kL1TableBaseMask) == 0);
  return (l2_table_base & kL1TableBaseMask) | kL1TypePageTable;
}

bool IsL1PageTableDesc(word desc) { return (desc & kL1TypeMask) == kL1TypePageTable; }

paddr L1DescTableBase(word desc) { return desc & kL1TableBaseMask; }

word MakeL2SmallPageDesc(paddr page_base, bool writable, bool executable, bool ns) {
  assert(IsPageAligned(page_base));
  word desc = (page_base & kL2PageBaseMask) | kL2SmallBit;
  const word ap = writable ? kApUserRw : kApUserRo;
  desc |= ap << kL2ApShift;
  if (!executable) {
    desc |= kL2XnBit;
  }
  if (ns) {
    desc |= kNsBit;
  }
  return desc;
}

bool IsL2SmallPageDesc(word desc) { return (desc & kL2SmallBit) != 0; }

L2Perms L2DescPerms(word desc) {
  L2Perms p;
  const word ap = (desc & kL2ApMask) >> kL2ApShift;
  p.user_read = (ap == kApUserRw || ap == kApUserRo);
  p.user_write = (ap == kApUserRw);
  p.executable = (desc & kL2XnBit) == 0;
  p.ns = (desc & kNsBit) != 0;
  (void)kApPrivOnly;
  return p;
}

paddr L2DescPageBase(word desc) { return desc & kL2PageBaseMask; }

WalkResult WalkPageTable(const PhysMemory& mem, paddr l1_base, vaddr va, WalkTrace* trace) {
  WalkResult res;
  if (va >= kEnclaveVaLimit) {
    return res;
  }
  const word l1_index = va >> 20;  // 1 MB per L1 entry
  const paddr l1_addr = l1_base + l1_index * kWordSize;
  if (!mem.IsValidPhys(l1_addr)) {
    return res;
  }
  const word l1_desc = mem.Read(l1_addr);
  if (!IsL1PageTableDesc(l1_desc)) {
    return res;
  }
  const paddr l2_table = L1DescTableBase(l1_desc);
  const word l2_index = (va >> 12) & 0xff;
  const paddr l2_addr = l2_table + l2_index * kWordSize;
  if (!mem.IsValidPhys(l2_addr)) {
    return res;
  }
  const word l2_desc = mem.Read(l2_addr);
  if (!IsL2SmallPageDesc(l2_desc)) {
    return res;
  }
  if (trace != nullptr) {
    trace->l1_entry_addr = l1_addr;
    trace->l2_entry_addr = l2_addr;
  }
  const L2Perms perms = L2DescPerms(l2_desc);
  res.ok = perms.user_read;
  res.phys = L2DescPageBase(l2_desc) | (va & (kPageSize - 1));
  res.user_read = perms.user_read;
  res.user_write = perms.user_write;
  res.executable = perms.executable;
  return res;
}

std::vector<WritableMapping> WritablePages(const PhysMemory& mem, paddr l1_base) {
  std::vector<WritableMapping> out;
  for (word l1_index = 0; l1_index < kL1Entries; ++l1_index) {
    const paddr l1_addr = l1_base + l1_index * kWordSize;
    if (!mem.IsValidPhys(l1_addr)) {
      continue;
    }
    const word l1_desc = mem.Read(l1_addr);
    if (!IsL1PageTableDesc(l1_desc)) {
      continue;
    }
    const paddr l2_table = L1DescTableBase(l1_desc);
    for (word l2_index = 0; l2_index < kL2Entries; ++l2_index) {
      const paddr l2_addr = l2_table + l2_index * kWordSize;
      if (!mem.IsValidPhys(l2_addr)) {
        continue;
      }
      const word l2_desc = mem.Read(l2_addr);
      if (!IsL2SmallPageDesc(l2_desc)) {
        continue;
      }
      if (!L2DescPerms(l2_desc).user_write) {
        continue;
      }
      out.push_back({(l1_index << 20) | (l2_index << 12), L2DescPageBase(l2_desc)});
    }
  }
  return out;
}

bool AddrInLivePageTable(const PhysMemory& mem, paddr l1_base, paddr addr) {
  if (addr >= l1_base && addr < l1_base + kL1Entries * kWordSize) {
    return true;
  }
  for (word l1_index = 0; l1_index < kL1Entries; ++l1_index) {
    const paddr l1_addr = l1_base + l1_index * kWordSize;
    if (!mem.IsValidPhys(l1_addr)) {
      continue;
    }
    const word l1_desc = mem.Read(l1_addr);
    if (!IsL1PageTableDesc(l1_desc)) {
      continue;
    }
    const paddr l2_table = L1DescTableBase(l1_desc);
    if (addr >= l2_table && addr < l2_table + kL2TableBytes) {
      return true;
    }
  }
  return false;
}

}  // namespace komodo::arm
