#include "src/arm/interp_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace komodo::arm {

namespace {

bool EnvEnabled() {
  const char* v = std::getenv("KOMODO_INTERP_CACHE");
  if (v == nullptr) {
    return true;
  }
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0);
}

}  // namespace

InterpCaches::InterpCaches()
    : enabled_(EnvEnabled()), decode_(kDecodeEntries), tlb_(kTlbEntries) {}

InterpCaches::InterpCaches(const InterpCaches& o)
    : enabled_(o.enabled_), decode_(kDecodeEntries), tlb_(kTlbEntries) {}

InterpCaches& InterpCaches::operator=(const InterpCaches& o) {
  enabled_ = o.enabled_;
  InvalidateAll();
  return *this;
}

const Instruction* InterpCaches::FillDecode(const PhysMemory& mem, paddr phys,
                                            DecodeEntry& e) {
  ++stats_.decode_misses;
  const std::optional<Instruction> decoded = Decode(mem.Read(phys));
  e.addr = phys;
  e.epoch = decode_epoch_;
  e.gen_idx = mem.PageIndexOf(phys);
  e.gen = mem.PageGenAt(e.gen_idx);
  e.decode_ok = decoded.has_value();
  if (decoded.has_value()) {
    e.insn = *decoded;
  }
  return e.decode_ok ? &e.insn : nullptr;
}

WalkResult InterpCaches::FillTlb(const PhysMemory& mem, paddr ttbr0, vaddr va,
                                 TlbEntry& e) {
  ++stats_.tlb_misses;
  WalkTrace trace;
  const WalkResult res = WalkPageTable(mem, ttbr0, va, &trace);
  if (res.ok) {
    e.vpn = va >> 12;
    e.epoch = tlb_epoch_;
    e.ttbr0 = ttbr0;
    e.l1_gen_idx = mem.PageIndexOf(trace.l1_entry_addr);
    e.l2_gen_idx = mem.PageIndexOf(trace.l2_entry_addr);
    e.l1_gen = mem.PageGenAt(e.l1_gen_idx);
    e.l2_gen = mem.PageGenAt(e.l2_gen_idx);
    e.page_base = PageBase(res.phys);
    e.user_write = res.user_write;
    e.executable = res.executable;
  }
  return res;
}

void InterpCaches::RebuildFootprint(const PhysMemory& mem, paddr ttbr0) {
  ++stats_.pt_filter_rebuilds;
  footprint_.ranges.clear();
  footprint_.ttbr0 = ttbr0;
  const paddr l1_end = ttbr0 + kL1Entries * kWordSize;
  footprint_.l1_first_idx = mem.PageIndexOf(PageBase(ttbr0));
  footprint_.l1_last_idx = mem.PageIndexOf(PageBase(l1_end - kWordSize));
  footprint_.l1_first_gen = mem.PageGenAt(footprint_.l1_first_idx);
  footprint_.l1_last_gen = mem.PageGenAt(footprint_.l1_last_idx);
  footprint_.ranges.emplace_back(ttbr0, l1_end);
  for (word l1_index = 0; l1_index < kL1Entries; ++l1_index) {
    const paddr l1_addr = ttbr0 + l1_index * kWordSize;
    if (!mem.IsValidPhys(l1_addr)) {
      continue;
    }
    const word l1_desc = mem.Read(l1_addr);
    if (!IsL1PageTableDesc(l1_desc)) {
      continue;
    }
    const paddr l2_table = L1DescTableBase(l1_desc);
    footprint_.ranges.emplace_back(l2_table, l2_table + kL2TableBytes);
  }
  // Sort and merge so membership is one binary search.
  std::sort(footprint_.ranges.begin(), footprint_.ranges.end());
  std::vector<std::pair<paddr, paddr>> merged;
  for (const auto& r : footprint_.ranges) {
    if (!merged.empty() && r.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, r.second);
    } else {
      merged.push_back(r);
    }
  }
  footprint_.ranges = std::move(merged);
  footprint_.valid = true;
}

bool InterpCaches::FootprintContains(paddr addr) const {
  // First range with start > addr; the candidate containing addr precedes it.
  auto it = std::upper_bound(
      footprint_.ranges.begin(), footprint_.ranges.end(), addr,
      [](paddr a, const std::pair<paddr, paddr>& r) { return a < r.first; });
  return it != footprint_.ranges.begin() && addr < std::prev(it)->second;
}

void InterpCaches::InvalidateTlb() {
  ++tlb_epoch_;
  footprint_.valid = false;
}

void InterpCaches::InvalidateAll() {
  InvalidateTlb();
  ++decode_epoch_;
}

std::vector<paddr> InterpCaches::ResidentDecodeAddrs() const {
  std::vector<paddr> out;
  for (const DecodeEntry& e : decode_) {
    if (e.addr != kNoTag && e.epoch == decode_epoch_) {
      out.push_back(e.addr);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace komodo::arm
