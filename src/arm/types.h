// Basic machine types and layout constants for the ARMv7-A + TrustZone model.
//
// The physical memory map mirrors Figure 4 of the paper and the Raspberry Pi 2
// prototype: a region of insecure (normal-world) RAM, the monitor image, and a
// bootloader-reserved region of secure pages that the monitor hands out to
// enclaves.
#ifndef SRC_ARM_TYPES_H_
#define SRC_ARM_TYPES_H_

#include <cstdint>

namespace komodo::arm {

using word = uint32_t;
using dword = uint64_t;
using paddr = uint32_t;  // physical address
using vaddr = uint32_t;  // virtual address

inline constexpr word kWordSize = 4;
inline constexpr word kPageSize = 4096;
inline constexpr word kWordsPerPage = kPageSize / kWordSize;

// --- Physical memory map (see DESIGN.md §4) ---------------------------------

// Insecure, normal-world RAM. The untrusted OS, its page allocator and all
// insecure (shared) pages live here.
inline constexpr paddr kInsecureBase = 0x0000'0000;
inline constexpr word kInsecureSize = 16 * 1024 * 1024;

// Monitor image: code, stack, globals, the in-memory PageDB and thread-context
// storage. Carved out of secure RAM by the (trusted) bootloader.
inline constexpr paddr kMonitorBase = 0x4000'0000;
inline constexpr word kMonitorSize = 1 * 1024 * 1024;

// Secure page region managed by the monitor; size configurable at boot.
inline constexpr paddr kSecurePagesBase = 0x4010'0000;
inline constexpr word kMaxSecurePages = 1024;
inline constexpr word kDefaultSecurePages = 256;

// Secure-world virtual map (Figure 4): enclave VA space is the low 1 GB
// (translated by TTBR0 with TTBCR.N=2); the monitor owns the high half via a
// static TTBR1 table, including a direct map of physical memory.
inline constexpr vaddr kEnclaveVaLimit = 0x4000'0000;  // 1 GB
inline constexpr vaddr kDirectMapVbase = 0x8000'0000;

// General-purpose register numbers. R13/R14/R15 are SP/LR/PC.
enum Reg : uint8_t {
  R0 = 0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  R8,
  R9,
  R10,
  R11,
  R12,
  SP = 13,
  LR = 14,
  PC = 15,
};

constexpr bool IsWordAligned(word x) { return (x & 3u) == 0; }
constexpr bool IsPageAligned(word x) { return (x & (kPageSize - 1)) == 0; }
constexpr word PageBase(word x) { return x & ~(kPageSize - 1); }

}  // namespace komodo::arm

#endif  // SRC_ARM_TYPES_H_
