// A32 encoder/decoder for the modelled subset. Encodings follow DDI 0406C
// chapter A8; Decode() is the inverse of Encode() on every representable
// instruction (property-tested), and rejects the rest of the encoding space.
#include "src/arm/isa.h"

#include <cassert>
#include <cstdio>

namespace komodo::arm {

namespace {

constexpr word kDpOpcode(Op op) {
  // Data-processing opcode field values (bits 24:21).
  switch (op) {
    case Op::kAnd:
      return 0x0;
    case Op::kEor:
      return 0x1;
    case Op::kSub:
      return 0x2;
    case Op::kRsb:
      return 0x3;
    case Op::kAdd:
      return 0x4;
    case Op::kAdc:
      return 0x5;
    case Op::kSbc:
      return 0x6;
    case Op::kRsc:
      return 0x7;
    case Op::kTst:
      return 0x8;
    case Op::kTeq:
      return 0x9;
    case Op::kCmp:
      return 0xa;
    case Op::kCmn:
      return 0xb;
    case Op::kOrr:
      return 0xc;
    case Op::kMov:
      return 0xd;
    case Op::kBic:
      return 0xe;
    case Op::kMvn:
      return 0xf;
    default:
      return 0xff;
  }
}

bool IsDataProcessing(Op op) { return kDpOpcode(op) != 0xff; }

bool IsCompareOp(Op op) {
  return op == Op::kTst || op == Op::kTeq || op == Op::kCmp || op == Op::kCmn;
}

Op DpOpFromOpcode(word opcode) {
  static constexpr Op kTable[16] = {Op::kAnd, Op::kEor, Op::kSub, Op::kRsb, Op::kAdd, Op::kAdc,
                                    Op::kSbc, Op::kRsc, Op::kTst, Op::kTeq, Op::kCmp, Op::kCmn,
                                    Op::kOrr, Op::kMov, Op::kBic, Op::kMvn};
  return kTable[opcode & 0xf];
}

word RotateRight(word value, unsigned amount) {
  amount &= 31;
  if (amount == 0) {
    return value;
  }
  return (value >> amount) | (value << (32 - amount));
}

}  // namespace

Operand2 Operand2::Imm(uint8_t imm8, uint8_t rot4) {
  Operand2 o;
  o.is_imm = true;
  o.imm8 = imm8;
  o.rot4 = static_cast<uint8_t>(rot4 & 0xf);
  return o;
}

Operand2 Operand2::Rm(Reg rm, ShiftKind shift, uint8_t shift_imm) {
  Operand2 o;
  o.is_imm = false;
  o.rm = rm;
  o.shift = shift;
  o.shift_imm = static_cast<uint8_t>(shift_imm & 0x1f);
  return o;
}

std::optional<Operand2> Operand2::TryImm32(word value) {
  // value == ror(imm8, 2*rot)  <=>  imm8 == rol(value, 2*rot)
  for (unsigned rot = 0; rot < 16; ++rot) {
    const unsigned amount = 2 * rot;
    const word candidate = (amount == 0) ? value : ((value << amount) | (value >> (32 - amount)));
    if (candidate <= 0xff) {
      return Imm(static_cast<uint8_t>(candidate), static_cast<uint8_t>(rot));
    }
  }
  return std::nullopt;
}

word Operand2::ImmValue() const {
  assert(is_imm);
  return RotateRight(imm8, 2u * rot4);
}

word Encode(const Instruction& insn) {
  const word cond = static_cast<word>(insn.cond) << 28;

  if (IsDataProcessing(insn.op)) {
    word bits = cond | (kDpOpcode(insn.op) << 21);
    if (insn.set_flags || IsCompareOp(insn.op)) {
      bits |= 1u << 20;
    }
    bits |= static_cast<word>(insn.rn) << 16;
    bits |= static_cast<word>(insn.rd) << 12;
    if (insn.op2.is_imm) {
      bits |= 1u << 25;
      bits |= static_cast<word>(insn.op2.rot4) << 8;
      bits |= insn.op2.imm8;
    } else {
      bits |= static_cast<word>(insn.op2.shift_imm) << 7;
      bits |= static_cast<word>(insn.op2.shift) << 5;
      bits |= static_cast<word>(insn.op2.rm);
    }
    return bits;
  }

  switch (insn.op) {
    case Op::kMul: {
      // MUL rd, rm, rs: rd at 19:16, rs at 11:8, rm at 3:0. We carry rs in rn.
      word bits = cond | 0x0000'0090;
      if (insn.set_flags) {
        bits |= 1u << 20;
      }
      bits |= static_cast<word>(insn.rd) << 16;
      bits |= static_cast<word>(insn.rn) << 8;
      bits |= static_cast<word>(insn.rm);
      return bits;
    }
    case Op::kMovw:
    case Op::kMovt: {
      const word imm16 = insn.trap_imm & 0xffff;
      word bits = cond | ((insn.op == Op::kMovw) ? 0x0300'0000u : 0x0340'0000u);
      bits |= (imm16 >> 12) << 16;
      bits |= static_cast<word>(insn.rd) << 12;
      bits |= imm16 & 0xfff;
      return bits;
    }
    case Op::kLdr:
    case Op::kStr:
    case Op::kLdrb:
    case Op::kStrb: {
      const bool is_load = insn.op == Op::kLdr || insn.op == Op::kLdrb;
      const bool is_byte = insn.op == Op::kLdrb || insn.op == Op::kStrb;
      word bits = cond | (1u << 26) | (1u << 24);  // P=1, W=0 (offset addressing)
      if (insn.mem_add) {
        bits |= 1u << 23;
      }
      if (is_byte) {
        bits |= 1u << 22;
      }
      if (is_load) {
        bits |= 1u << 20;
      }
      bits |= static_cast<word>(insn.rn) << 16;
      bits |= static_cast<word>(insn.rd) << 12;
      if (insn.mem_reg_offset) {
        bits |= 1u << 25;
        bits |= static_cast<word>(insn.rm);  // no shift
      } else {
        assert(insn.mem_imm12 <= 0xfff);
        bits |= insn.mem_imm12;
      }
      return bits;
    }
    case Op::kLdm:
    case Op::kStm: {
      word bits = cond | (0x4u << 25);
      if (insn.block_pre) {
        bits |= 1u << 24;
      }
      if (insn.mem_add) {
        bits |= 1u << 23;
      }
      if (insn.block_wback) {
        bits |= 1u << 21;
      }
      if (insn.op == Op::kLdm) {
        bits |= 1u << 20;
      }
      bits |= static_cast<word>(insn.rn) << 16;
      bits |= insn.reg_list;
      return bits;
    }
    case Op::kB:
    case Op::kBl: {
      word bits = cond | (0x5u << 25);
      if (insn.op == Op::kBl) {
        bits |= 1u << 24;
      }
      assert((insn.branch_offset & 3) == 0);
      const word imm24 = (static_cast<word>(insn.branch_offset) >> 2) & 0x00ff'ffff;
      bits |= imm24;
      return bits;
    }
    case Op::kBx:
      return cond | 0x012f'ff10 | static_cast<word>(insn.rm);
    case Op::kSvc:
      return cond | (0xfu << 24) | (insn.trap_imm & 0x00ff'ffff);
    case Op::kSmc:
      return cond | 0x0160'0070 | (insn.trap_imm & 0xf);
    case Op::kMrs: {
      word bits = cond | 0x010f'0000;
      if (insn.uses_spsr) {
        bits |= 1u << 22;
      }
      bits |= static_cast<word>(insn.rd) << 12;
      return bits;
    }
    case Op::kMsr: {
      word bits = cond | 0x0129'f000;  // mask = 0b1001 (flags+control)
      if (insn.uses_spsr) {
        bits |= 1u << 22;
      }
      bits |= static_cast<word>(insn.rm);
      return bits;
    }
    case Op::kMcr:
    case Op::kMrc: {
      word bits = cond | 0x0e00'0f10;  // coproc 15
      if (insn.op == Op::kMrc) {
        bits |= 1u << 20;
      }
      bits |= static_cast<word>(insn.cp_opc1 & 0x7) << 21;
      bits |= static_cast<word>(insn.cp_crn & 0xf) << 16;
      bits |= static_cast<word>(insn.rd) << 12;
      bits |= static_cast<word>(insn.cp_opc2 & 0x7) << 5;
      bits |= static_cast<word>(insn.cp_crm & 0xf);
      return bits;
    }
    default:
      assert(false && "unencodable instruction");
      return 0;
  }
}

std::optional<Instruction> Decode(word bits) {
  const word cond_bits = bits >> 28;
  if (cond_bits == 0xf) {
    return std::nullopt;  // unconditional space unmodelled
  }
  Instruction insn;
  insn.cond = static_cast<Cond>(cond_bits);

  const word op1 = (bits >> 25) & 0x7;

  // SVC: bits[27:24] = 1111.
  if (((bits >> 24) & 0xf) == 0xf) {
    insn.op = Op::kSvc;
    insn.trap_imm = bits & 0x00ff'ffff;
    return insn;
  }

  if (op1 == 0x5) {  // B / BL
    insn.op = ((bits >> 24) & 1) ? Op::kBl : Op::kB;
    word imm24 = bits & 0x00ff'ffff;
    // Sign-extend 24 -> 32 and convert to byte offset.
    int32_t off = static_cast<int32_t>(imm24 << 8) >> 8;
    insn.branch_offset = off * 4;
    return insn;
  }

  if (op1 == 0x4) {  // LDM/STM
    if ((bits >> 22) & 1) {
      return std::nullopt;  // S bit (user bank / exception return) unmodelled
    }
    if ((bits & 0xffff) == 0) {
      return std::nullopt;  // empty register list is unpredictable
    }
    insn.op = ((bits >> 20) & 1) ? Op::kLdm : Op::kStm;
    insn.block_pre = (bits >> 24) & 1;
    insn.mem_add = (bits >> 23) & 1;
    insn.block_wback = (bits >> 21) & 1;
    insn.rn = static_cast<Reg>((bits >> 16) & 0xf);
    insn.reg_list = static_cast<uint16_t>(bits & 0xffff);
    if (insn.rn == PC) {
      return std::nullopt;
    }
    return insn;
  }

  if (op1 == 0x2 || op1 == 0x3) {  // LDR/STR
    const bool reg_offset = (op1 == 0x3);
    if (reg_offset && (bits & 0x0000'0ff0) != 0) {
      return std::nullopt;  // shifted register offsets unmodelled
    }
    const bool p = (bits >> 24) & 1;
    const bool w = (bits >> 21) & 1;
    if (!p || w) {
      return std::nullopt;  // pre/post-indexed writeback unmodelled
    }
    const bool is_byte = (bits >> 22) & 1;
    const bool is_load = (bits >> 20) & 1;
    insn.op = is_load ? (is_byte ? Op::kLdrb : Op::kLdr) : (is_byte ? Op::kStrb : Op::kStr);
    insn.mem_add = (bits >> 23) & 1;
    insn.rn = static_cast<Reg>((bits >> 16) & 0xf);
    insn.rd = static_cast<Reg>((bits >> 12) & 0xf);
    insn.mem_reg_offset = reg_offset;
    if (reg_offset) {
      insn.rm = static_cast<Reg>(bits & 0xf);
    } else {
      insn.mem_imm12 = static_cast<uint16_t>(bits & 0xfff);
    }
    return insn;
  }

  if (op1 == 0x0 || op1 == 0x1) {
    const bool imm_form = (op1 == 0x1);
    const word opcode = (bits >> 21) & 0xf;
    const bool s_bit = (bits >> 20) & 1;

    // MUL: bits[27:21]=0, bits[7:4]=1001.
    if (!imm_form && (bits & 0x0fc0'00f0) == 0x0000'0090) {
      insn.op = Op::kMul;
      insn.set_flags = s_bit;
      insn.rd = static_cast<Reg>((bits >> 16) & 0xf);
      insn.rn = static_cast<Reg>((bits >> 8) & 0xf);  // rs carried in rn
      insn.rm = static_cast<Reg>(bits & 0xf);
      return insn;
    }

    // MOVW/MOVT reuse the S=0 compare-opcode space of the immediate form.
    if (imm_form && !s_bit && (opcode == 0x8 || opcode == 0xa)) {
      insn.op = (opcode == 0x8) ? Op::kMovw : Op::kMovt;
      insn.rd = static_cast<Reg>((bits >> 12) & 0xf);
      insn.trap_imm = (((bits >> 16) & 0xf) << 12) | (bits & 0xfff);
      return insn;
    }

    // Miscellaneous space: register form, opcode 10xx, S=0.
    if (!imm_form && !s_bit && (opcode & 0xc) == 0x8) {
      if ((bits & 0x0fbf'0fff) == 0x010f'0000) {
        insn.op = Op::kMrs;
        insn.uses_spsr = (bits >> 22) & 1;
        insn.rd = static_cast<Reg>((bits >> 12) & 0xf);
        return insn;
      }
      if ((bits & 0x0fb0'fff0) == 0x0120'f000) {
        insn.op = Op::kMsr;
        insn.uses_spsr = (bits >> 22) & 1;
        insn.rm = static_cast<Reg>(bits & 0xf);
        return insn;
      }
      if ((bits & 0x0fff'fff0) == 0x012f'ff10) {
        insn.op = Op::kBx;
        insn.rm = static_cast<Reg>(bits & 0xf);
        return insn;
      }
      if ((bits & 0x0fff'fff0) == 0x0160'0070) {
        insn.op = Op::kSmc;
        insn.trap_imm = bits & 0xf;
        return insn;
      }
      return std::nullopt;
    }

    // Plain data-processing.
    if (!imm_form) {
      if ((bits >> 4 & 1) != 0) {
        return std::nullopt;  // register-shifted register unmodelled
      }
    }
    insn.op = DpOpFromOpcode(opcode);
    if (IsCompareOp(insn.op) && !s_bit) {
      return std::nullopt;  // would be misc space; already handled above
    }
    insn.set_flags = s_bit;
    insn.rn = static_cast<Reg>((bits >> 16) & 0xf);
    insn.rd = static_cast<Reg>((bits >> 12) & 0xf);
    if (imm_form) {
      insn.op2 = Operand2::Imm(static_cast<uint8_t>(bits & 0xff),
                               static_cast<uint8_t>((bits >> 8) & 0xf));
    } else {
      insn.op2 = Operand2::Rm(static_cast<Reg>(bits & 0xf),
                              static_cast<ShiftKind>((bits >> 5) & 0x3),
                              static_cast<uint8_t>((bits >> 7) & 0x1f));
    }
    return insn;
  }

  if (op1 == 0x7 && ((bits >> 24) & 1) == 0 && ((bits >> 4) & 1) == 1) {
    // Coprocessor register transfer; only CP15 is modelled.
    if (((bits >> 8) & 0xf) != 15) {
      return std::nullopt;
    }
    insn.op = ((bits >> 20) & 1) ? Op::kMrc : Op::kMcr;
    insn.cp_opc1 = static_cast<uint8_t>((bits >> 21) & 0x7);
    insn.cp_crn = static_cast<uint8_t>((bits >> 16) & 0xf);
    insn.rd = static_cast<Reg>((bits >> 12) & 0xf);
    insn.cp_opc2 = static_cast<uint8_t>((bits >> 5) & 0x7);
    insn.cp_crm = static_cast<uint8_t>(bits & 0xf);
    return insn;
  }

  return std::nullopt;  // media, remaining coprocessor space: unmodelled
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kAnd:
      return "and";
    case Op::kEor:
      return "eor";
    case Op::kSub:
      return "sub";
    case Op::kRsb:
      return "rsb";
    case Op::kAdd:
      return "add";
    case Op::kAdc:
      return "adc";
    case Op::kSbc:
      return "sbc";
    case Op::kRsc:
      return "rsc";
    case Op::kTst:
      return "tst";
    case Op::kTeq:
      return "teq";
    case Op::kCmp:
      return "cmp";
    case Op::kCmn:
      return "cmn";
    case Op::kOrr:
      return "orr";
    case Op::kMov:
      return "mov";
    case Op::kBic:
      return "bic";
    case Op::kMvn:
      return "mvn";
    case Op::kMul:
      return "mul";
    case Op::kMovw:
      return "movw";
    case Op::kMovt:
      return "movt";
    case Op::kLdr:
      return "ldr";
    case Op::kStr:
      return "str";
    case Op::kLdrb:
      return "ldrb";
    case Op::kStrb:
      return "strb";
    case Op::kLdm:
      return "ldm";
    case Op::kStm:
      return "stm";
    case Op::kB:
      return "b";
    case Op::kBl:
      return "bl";
    case Op::kBx:
      return "bx";
    case Op::kSvc:
      return "svc";
    case Op::kSmc:
      return "smc";
    case Op::kMrs:
      return "mrs";
    case Op::kMsr:
      return "msr";
    case Op::kMcr:
      return "mcr";
    case Op::kMrc:
      return "mrc";
  }
  return "?";
}

std::string Instruction::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s r%d, r%d", OpName(op), rd, rn);
  return buf;
}

word BranchTargetAddr(word insn_addr, const Instruction& insn) {
  return static_cast<word>(static_cast<int64_t>(insn_addr) + 8 + insn.branch_offset);
}

bool IsExceptionReturn(const Instruction& insn) {
  switch (insn.op) {
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn:
      return insn.set_flags && insn.rd == PC;
    default:
      return false;
  }
}

bool WritesPcIndirectly(const Instruction& insn) {
  switch (insn.op) {
    case Op::kBx:
      return true;
    case Op::kLdr:
      return insn.rd == PC;
    case Op::kLdm:
      return (insn.reg_list & (1u << PC)) != 0;
    case Op::kAnd:
    case Op::kEor:
    case Op::kSub:
    case Op::kRsb:
    case Op::kAdd:
    case Op::kAdc:
    case Op::kSbc:
    case Op::kRsc:
    case Op::kOrr:
    case Op::kMov:
    case Op::kBic:
    case Op::kMvn:
      // Compares never write rd; the exception-return idiom is classified
      // separately (it is a privileged instruction, not a plain branch).
      return insn.rd == PC && !insn.set_flags;
    default:
      return false;
  }
}

}  // namespace komodo::arm
