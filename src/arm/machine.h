// The ARMv7-A + TrustZone machine state and its architectural transitions.
//
// Mirrors the paper's trusted Dafny hardware model (§5.1): core registers
// R0–R12, banked SP/LR/SPSR per mode, CPSR fields, TrustZone worlds via
// SCR.NS, translation-table base registers, a TLB-consistency bit, exception
// entry/return, and physical memory. The program counter is modelled
// explicitly here (the interpreter needs it); structured-control-flow
// reasoning was a verification convenience in the paper, not an architectural
// property.
#ifndef SRC_ARM_MACHINE_H_
#define SRC_ARM_MACHINE_H_

#include <array>
#include <cstdint>

#include "src/arm/cycle_model.h"
#include "src/arm/interp_cache.h"
#include "src/arm/memory.h"
#include "src/arm/psr.h"
#include "src/arm/types.h"
#include "src/jit/jit.h"

namespace komodo::arm {

// Exception kinds the model can take (DDI 0406C §B1.8). Reset is unmodelled;
// the bootloader constructs the initial state directly.
enum class Exception : uint8_t {
  kUndefined,
  kSvc,
  kSmc,
  kPrefetchAbort,
  kDataAbort,
  kIrq,
  kFiq,
};

// Vector-table offsets for each exception kind.
word VectorOffset(Exception e);
// The mode an exception is taken to. SMC always enters monitor mode.
Mode ExceptionTargetMode(Exception e);

struct MachineState {
  explicit MachineState(word nsecure_pages = kDefaultSecurePages);

  // --- Core registers -------------------------------------------------------
  std::array<word, 13> r{};  // R0-R12 (not banked; FIQ banking of R8-R12 is
                             // unused by Komodo and unmodelled, like the paper)
  word pc = 0;
  Psr cpsr;

  // Banked SP/LR per mode (index by Mode).
  std::array<word, kNumModes> sp_banked{};
  std::array<word, kNumModes> lr_banked{};
  // Banked SPSR per privileged mode; the user-mode slot is unused.
  std::array<Psr, kNumModes> spsr_banked{};

  // --- System control -------------------------------------------------------
  bool scr_ns = false;      // SCR.NS: current world when not in monitor mode
  word ttbr0 = 0;           // enclave page-table base (low 1 GB, TTBCR.N=2)
  word ttbr1 = 0;           // monitor static table base (high addresses)
  word vbar_secure = 0;     // secure-world exception vector base
  word vbar_monitor = 0;    // monitor vector base (SMC lands here)

  // TLB consistency (§5.1): stores to a live page table or TTBR writes mark
  // the TLB inconsistent; user-mode execution requires consistency.
  bool tlb_consistent = true;

  // Pending asynchronous interrupt lines, injectable by the environment /
  // test harness. Checked before each interpreted instruction.
  bool pending_irq = false;
  bool pending_fiq = false;

  PhysMemory mem;
  CycleCounter cycles;

  // Interpreter fast-path caches (DESIGN.md §8). Architecturally invisible
  // bookkeeping: mutable because even const translations may fill them, and
  // excluded from any state comparison. KOMODO_INTERP_CACHE=off disables.
  mutable InterpCaches interp;

  // A32→x64 block translator state (DESIGN.md §13). Like `interp`, pure
  // bookkeeping: invisible to state comparison, cold after copy, disabled by
  // KOMODO_JIT=off, and always off on non-x86-64 hosts. Mutable for the same
  // reason as `interp` (dispatching from a logically-const machine fills it).
  mutable jit::JitState jit;

  // Instructions the interpreter has stepped (bookkeeping for benchmarks;
  // identical across cached/uncached runs of the same program).
  uint64_t steps_retired = 0;

  // FlushTlb invocations (bookkeeping for the tracer's per-call attribution;
  // architecturally invisible, like steps_retired).
  uint64_t tlb_flushes = 0;

  // --- Accessors honouring register banking ---------------------------------
  World CurrentWorld() const {
    // Monitor mode is always secure regardless of SCR.NS (DDI 0406C §B1.5.1).
    if (cpsr.mode == Mode::kMonitor) {
      return World::kSecure;
    }
    return scr_ns ? World::kNormal : World::kSecure;
  }

  // Inline: these sit on the interpreter's per-operand hot path.
  word ReadRegMode(Reg reg, Mode m) const {
    if (reg < SP) {
      return r[reg];
    }
    if (reg == SP) {
      return sp_banked[static_cast<size_t>(m)];
    }
    if (reg == LR) {
      return lr_banked[static_cast<size_t>(m)];
    }
    return pc;
  }
  void WriteRegMode(Reg reg, word value, Mode m) {
    if (reg < SP) {
      r[reg] = value;
    } else if (reg == SP) {
      sp_banked[static_cast<size_t>(m)] = value;
    } else if (reg == LR) {
      lr_banked[static_cast<size_t>(m)] = value;
    } else {
      pc = value;
    }
  }
  word ReadReg(Reg reg) const { return ReadRegMode(reg, cpsr.mode); }  // SP/LR banked
  void WriteReg(Reg reg, word value) { WriteRegMode(reg, value, cpsr.mode); }

  Psr& Spsr() { return spsr_banked[static_cast<size_t>(cpsr.mode)]; }
  const Psr& Spsr() const { return spsr_banked[static_cast<size_t>(cpsr.mode)]; }

  // --- Architectural transitions --------------------------------------------

  // Takes exception `e`: banks the return address and CPSR into the target
  // mode's LR/SPSR, switches mode, masks IRQs (and FIQs for FIQ/SMC), and
  // branches to the vector. `return_addr` is the architecturally preferred
  // return address for `e`. Charges exception-entry cycles.
  void TakeException(Exception e, word return_addr);

  // Exception return (MOVS PC, LR semantics): restores CPSR from the current
  // mode's SPSR and branches to `target`. Charges exception-return cycles.
  // The caller is responsible for having set up banked user state.
  void ExceptionReturn(word target);

  // CP15 operations the monitor uses.
  void WriteTtbr0(word value);     // marks TLB inconsistent
  void FlushTlb();                 // TLBIALL: marks TLB consistent
  void SetScrNs(bool ns);          // world switch (monitor mode only)

  // Marks the TLB inconsistent without a TTBR write — the hook monitor code
  // uses after editing a live page table from C++ (InstallMapping,
  // UnmapData); a later FlushTlb restores consistency.
  void NoteTlbStale() { tlb_consistent = false; }

  // --- Snapshot-reset (DESIGN.md §11) ----------------------------------------
  // Restores this machine to `snapshot` — a plain copy of *this taken while
  // mem's dirty tracking was enabled with an empty dirty set. All scalar
  // architectural state (registers, banked state, PSRs, system registers,
  // consistency/pending bits) and the bookkeeping counters (cycles,
  // steps_retired, tlb_flushes) are copied back; memory is restored page-wise
  // through PhysMemory::ResetTo, touching only the pages written since the
  // snapshot. The interpreter caches are invalidated outright (their entries
  // may embed translations and footprints derived from pre-reset TTBRs) and
  // the cache-enabled flag reverts to the snapshot's. The result is
  // state-equal to a fresh copy of the snapshot. Returns the number of memory
  // pages restored.
  size_t ResetTo(const MachineState& snapshot);
};

}  // namespace komodo::arm

#endif  // SRC_ARM_MACHINE_H_
