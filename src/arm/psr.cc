#include "src/arm/psr.h"

namespace komodo::arm {

word ModeEncoding(Mode m) {
  switch (m) {
    case Mode::kUser:
      return 0b10000;
    case Mode::kFiq:
      return 0b10001;
    case Mode::kIrq:
      return 0b10010;
    case Mode::kSupervisor:
      return 0b10011;
    case Mode::kMonitor:
      return 0b10110;
    case Mode::kAbort:
      return 0b10111;
    case Mode::kUndefined:
      return 0b11011;
  }
  return 0b10000;
}

bool DecodeMode(word bits, Mode* out) {
  switch (bits & 0x1f) {
    case 0b10000:
      *out = Mode::kUser;
      return true;
    case 0b10001:
      *out = Mode::kFiq;
      return true;
    case 0b10010:
      *out = Mode::kIrq;
      return true;
    case 0b10011:
      *out = Mode::kSupervisor;
      return true;
    case 0b10110:
      *out = Mode::kMonitor;
      return true;
    case 0b10111:
      *out = Mode::kAbort;
      return true;
    case 0b11011:
      *out = Mode::kUndefined;
      return true;
    default:
      return false;
  }
}

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kUser:
      return "usr";
    case Mode::kFiq:
      return "fiq";
    case Mode::kIrq:
      return "irq";
    case Mode::kSupervisor:
      return "svc";
    case Mode::kAbort:
      return "abt";
    case Mode::kUndefined:
      return "und";
    case Mode::kMonitor:
      return "mon";
  }
  return "?";
}

word Psr::Encode() const {
  word bits = ModeEncoding(mode);
  if (n) bits |= 1u << 31;
  if (z) bits |= 1u << 30;
  if (c) bits |= 1u << 29;
  if (v) bits |= 1u << 28;
  if (irq_masked) bits |= 1u << 7;
  if (fiq_masked) bits |= 1u << 6;
  return bits;
}

Psr Psr::Decode(word bits) {
  Psr p;
  p.n = (bits >> 31) & 1;
  p.z = (bits >> 30) & 1;
  p.c = (bits >> 29) & 1;
  p.v = (bits >> 28) & 1;
  p.irq_masked = (bits >> 7) & 1;
  p.fiq_masked = (bits >> 6) & 1;
  Mode m;
  if (DecodeMode(bits, &m)) {
    p.mode = m;
  }
  return p;
}

std::string Psr::ToString() const {
  std::string s;
  s += n ? 'N' : '-';
  s += z ? 'Z' : '-';
  s += c ? 'C' : '-';
  s += v ? 'V' : '-';
  s += irq_masked ? 'I' : '-';
  s += fiq_masked ? 'F' : '-';
  s += ' ';
  s += ModeName(mode);
  return s;
}

bool CondPasses(Cond cond, const Psr& psr) {
  switch (cond) {
    case Cond::kEq:
      return psr.z;
    case Cond::kNe:
      return !psr.z;
    case Cond::kCs:
      return psr.c;
    case Cond::kCc:
      return !psr.c;
    case Cond::kMi:
      return psr.n;
    case Cond::kPl:
      return !psr.n;
    case Cond::kVs:
      return psr.v;
    case Cond::kVc:
      return !psr.v;
    case Cond::kHi:
      return psr.c && !psr.z;
    case Cond::kLs:
      return !psr.c || psr.z;
    case Cond::kGe:
      return psr.n == psr.v;
    case Cond::kLt:
      return psr.n != psr.v;
    case Cond::kGt:
      return !psr.z && psr.n == psr.v;
    case Cond::kLe:
      return psr.z || psr.n != psr.v;
    case Cond::kAl:
      return true;
  }
  return true;
}

}  // namespace komodo::arm
