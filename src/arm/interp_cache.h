// Interpreter fast-path caches (DESIGN.md §8).
//
// Three side structures remove the per-step interpretive overhead of the ARM
// model while staying architecturally invisible — same MachineState results,
// same cycle charges, checked by the cached-vs-uncached differential suite:
//
//  * Decode cache: a direct-mapped cache of Decode() results keyed by the
//    instruction's physical address, validated against the backing page's
//    generation counter (PhysMemory::PageGen). Self-modifying code and page
//    reuse (InstallL2/Remove) bump the generation and force a re-decode.
//  * Micro-TLB: a direct-mapped cache of WalkPageTable results per virtual
//    page, tagged with the TTBR0 it was walked under and the generations of
//    the L1/L2 descriptor pages the walk read. Any store into those pages —
//    interpreted, monitor C++, or test-harness poke — invalidates the entry
//    by construction; TLBIALL, TTBR writes and world switches flush it
//    outright (the events §5.1's tlb_consistent discipline names).
//  * Live-page-table footprint: the byte ranges occupied by the active L1
//    table and the L2 tables it references, recomputed only when the L1 page's
//    generation moves. Replaces the O(L1 entries) AddrInLivePageTable scan on
//    every secure-world store with a binary search.
//
// All caches are bookkeeping: they are excluded from state equality, and
// copying a MachineState yields fresh (empty) caches. The KOMODO_INTERP_CACHE
// environment variable ("off"/"0"/"false") disables them, restoring the
// pre-cache interpreter byte for byte.
#ifndef SRC_ARM_INTERP_CACHE_H_
#define SRC_ARM_INTERP_CACHE_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/arm/isa.h"
#include "src/arm/memory.h"
#include "src/arm/page_table.h"
#include "src/arm/types.h"
#include "src/fuzz/inject.h"

namespace komodo::arm {

struct InterpCacheStats {
  uint64_t decode_hits = 0;
  uint64_t decode_misses = 0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t pt_filter_fast = 0;     // NoteStore checks answered by the footprint
  uint64_t pt_filter_rebuilds = 0; // footprint recomputations
};

class InterpCaches {
 public:
  static constexpr size_t kDecodeEntries = 4096;  // power of two; 16 kB of code
  static constexpr size_t kTlbEntries = 128;      // power of two; 512 kB of VA

  InterpCaches();
  // Copies carry the enabled flag but start cold: caches are bookkeeping, not
  // state, and cloned machines (differential tests, spec extraction) must not
  // pay for or depend on the donor's cache contents.
  InterpCaches(const InterpCaches& o);
  InterpCaches& operator=(const InterpCaches& o);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) {
    enabled_ = on;
    InvalidateAll();
  }

  // Decoded instruction at physical address `phys` (which must be mapped and
  // word-aligned). Returns nullptr if the word does not decode — the cache
  // remembers undefined encodings too. The pointer is valid until the next
  // LookupDecode call. Hit path inline: tag compare plus one indexed
  // generation load.
  const Instruction* LookupDecode(const PhysMemory& mem, paddr phys) {
    DecodeEntry& e = decode_[(phys >> 2) & (kDecodeEntries - 1)];
    // The generation check is what keeps the cache coherent with stores into
    // code pages; the fuzz harness can disable it (stale-decode injection) to
    // prove the cached-vs-uncached oracle catches the resulting divergence.
    // The epoch check is explicit invalidation (set_enabled / InvalidateAll),
    // not coherence, so the injection deliberately cannot bypass it.
    if (e.addr == phys && e.epoch == decode_epoch_ &&
        (mem.PageGenAt(e.gen_idx) == e.gen || fuzz::Inject().stale_decode)) {
      ++stats_.decode_hits;
      return e.decode_ok ? &e.insn : nullptr;
    }
    return FillDecode(mem, phys, e);
  }

  // WalkPageTable(mem, ttbr0, va) through the micro-TLB. Bit-identical to an
  // uncached walk; only successful (user-readable) walks are cached.
  WalkResult TlbWalk(const PhysMemory& mem, paddr ttbr0, vaddr va) {
    const vaddr vpn = va >> 12;
    TlbEntry& e = tlb_[vpn & (kTlbEntries - 1)];
    if (e.vpn == vpn && e.ttbr0 == ttbr0 && e.epoch == tlb_epoch_ &&
        mem.PageGenAt(e.l1_gen_idx) == e.l1_gen &&
        mem.PageGenAt(e.l2_gen_idx) == e.l2_gen) {
      ++stats_.tlb_hits;
      WalkResult res;
      res.ok = true;
      res.phys = e.page_base | (va & (kPageSize - 1));
      res.user_read = true;  // only readable mappings are cached
      res.user_write = e.user_write;
      res.executable = e.executable;
      return res;
    }
    return FillTlb(mem, ttbr0, va, e);
  }

  // AddrInLivePageTable(mem, ttbr0, addr) through the footprint cache.
  bool StoreHitsLivePageTable(const PhysMemory& mem, paddr ttbr0, paddr addr) {
    if (!footprint_.valid || footprint_.ttbr0 != ttbr0 ||
        mem.PageGenAt(footprint_.l1_first_idx) != footprint_.l1_first_gen ||
        mem.PageGenAt(footprint_.l1_last_idx) != footprint_.l1_last_gen) {
      RebuildFootprint(mem, ttbr0);
    }
    ++stats_.pt_filter_fast;
    return FootprintContains(addr);
  }

  // TLBIALL / TTBR write / world switch: drop every translation.
  void InvalidateTlb();
  void InvalidateAll();

  // Physical word addresses with a live decode-cache entry (current epoch;
  // generation staleness is irrelevant — the address was decoded during this
  // epoch either way). Sorted and duplicate-free. This is a coverage signal
  // for the fuzzer's evolve mode (DESIGN.md §15), not part of the cache's
  // architectural contract.
  std::vector<paddr> ResidentDecodeAddrs() const;

  const InterpCacheStats& stats() const { return stats_; }

 private:
  struct DecodeEntry {
    paddr addr = kNoTag;    // exact physical word address; kNoTag = empty
    uint64_t epoch = 0;     // valid only when equal to decode_epoch_
    uint32_t gen = 0;       // backing page generation at decode time
    size_t gen_idx = PhysMemory::kNoPage;  // its index in the gen array
    bool decode_ok = false;
    Instruction insn;
  };

  struct TlbEntry {
    vaddr vpn = kNoTag;  // va >> 12; kNoTag = empty
    uint64_t epoch = 0;  // valid only when equal to tlb_epoch_
    paddr ttbr0 = 0;
    // Pages whose contents the walk read (as generation-array indices), with
    // their generations at fill time; a mismatch on either means the
    // descriptors may have changed.
    size_t l1_gen_idx = PhysMemory::kNoPage;
    size_t l2_gen_idx = PhysMemory::kNoPage;
    uint32_t l1_gen = 0;
    uint32_t l2_gen = 0;
    paddr page_base = 0;
    bool user_write = false;
    bool executable = false;
  };

  struct PtFootprint {
    bool valid = false;
    paddr ttbr0 = 0;
    // The footprint derives from the L1 table's contents alone; the
    // generations of the first/last page the 4 kB table touches gate reuse.
    size_t l1_first_idx = PhysMemory::kNoPage;
    size_t l1_last_idx = PhysMemory::kNoPage;
    uint32_t l1_first_gen = 0;
    uint32_t l1_last_gen = 0;
    std::vector<std::pair<paddr, paddr>> ranges;  // sorted, merged [start,end)
  };

  static constexpr uint32_t kNoTag = 0xffff'ffff;  // unaligned: never matches

  const Instruction* FillDecode(const PhysMemory& mem, paddr phys, DecodeEntry& e);
  WalkResult FillTlb(const PhysMemory& mem, paddr ttbr0, vaddr va, TlbEntry& e);
  void RebuildFootprint(const PhysMemory& mem, paddr ttbr0);
  bool FootprintContains(paddr addr) const;

  bool enabled_;
  // Invalidation is O(1): entries carry the epoch they were filled under and
  // a bumped epoch orphans them all at once. The model checker and the fuzz
  // pool reset the machine (which invalidates) once or twice per probed
  // transition, so wiping the 4096-entry decode array each time dominated
  // their runtime before this.
  uint64_t decode_epoch_ = 1;
  uint64_t tlb_epoch_ = 1;
  std::vector<DecodeEntry> decode_;
  std::vector<TlbEntry> tlb_;
  PtFootprint footprint_;
  InterpCacheStats stats_;
};

}  // namespace komodo::arm

#endif  // SRC_ARM_INTERP_CACHE_H_
