#include "src/arm/assembler.h"

#include <cassert>

namespace komodo::arm {

namespace {
constexpr vaddr kUnbound = ~0u;
}

Assembler::Label Assembler::NewLabel() {
  label_addrs_.push_back(kUnbound);
  return Label{label_addrs_.size() - 1};
}

void Assembler::Bind(Label label) {
  assert(label_addrs_[label.id] == kUnbound && "label bound twice");
  label_addrs_[label.id] = CurrentAddr();
}

vaddr Assembler::AddrOf(Label label) const {
  assert(label_addrs_[label.id] != kUnbound);
  return label_addrs_[label.id];
}

void Assembler::Emit(const Instruction& insn) { EmitWord(Encode(insn)); }

void Assembler::EmitWord(word bits) {
  assert(!finished_);
  code_.push_back(bits);
}

void Assembler::Dp(Op op, Reg rd, Reg rn, Operand2 op2, Cond cond, bool set_flags) {
  Instruction insn;
  insn.op = op;
  insn.cond = cond;
  insn.set_flags = set_flags;
  insn.rd = rd;
  insn.rn = rn;
  insn.op2 = op2;
  Emit(insn);
}

void Assembler::DpImm(Op op, Reg rd, Reg rn, word imm, Cond cond, bool set_flags) {
  const std::optional<Operand2> op2 = Operand2::TryImm32(imm);
  assert(op2.has_value() && "immediate not encodable; use MovImm into a scratch register");
  Dp(op, rd, rn, *op2, cond, set_flags);
}

void Assembler::MovImm(Reg rd, word value, Cond cond) {
  if (const std::optional<Operand2> imm = Operand2::TryImm32(value)) {
    Dp(Op::kMov, rd, R0, *imm, cond);
    return;
  }
  if (const std::optional<Operand2> inv = Operand2::TryImm32(~value)) {
    Dp(Op::kMvn, rd, R0, *inv, cond);
    return;
  }
  Instruction movw;
  movw.op = Op::kMovw;
  movw.cond = cond;
  movw.rd = rd;
  movw.trap_imm = value & 0xffff;
  Emit(movw);
  if ((value >> 16) != 0) {
    Instruction movt;
    movt.op = Op::kMovt;
    movt.cond = cond;
    movt.rd = rd;
    movt.trap_imm = value >> 16;
    Emit(movt);
  }
}

void Assembler::Mov(Reg rd, Reg rm, Cond cond) { Dp(Op::kMov, rd, R0, Operand2::Rm(rm), cond); }
void Assembler::Mvn(Reg rd, Reg rm) { Dp(Op::kMvn, rd, R0, Operand2::Rm(rm)); }
void Assembler::Add(Reg rd, Reg rn, word imm, Cond cond) { DpImm(Op::kAdd, rd, rn, imm, cond); }
void Assembler::Add(Reg rd, Reg rn, Reg rm, Cond cond) {
  Dp(Op::kAdd, rd, rn, Operand2::Rm(rm), cond);
}
void Assembler::Adc(Reg rd, Reg rn, Reg rm) { Dp(Op::kAdc, rd, rn, Operand2::Rm(rm)); }
void Assembler::Sub(Reg rd, Reg rn, word imm, Cond cond) { DpImm(Op::kSub, rd, rn, imm, cond); }
void Assembler::Sub(Reg rd, Reg rn, Reg rm, Cond cond) {
  Dp(Op::kSub, rd, rn, Operand2::Rm(rm), cond);
}
void Assembler::Sbc(Reg rd, Reg rn, Reg rm) { Dp(Op::kSbc, rd, rn, Operand2::Rm(rm)); }
void Assembler::Rsb(Reg rd, Reg rn, word imm) { DpImm(Op::kRsb, rd, rn, imm); }

void Assembler::Mul(Reg rd, Reg rm, Reg rs) {
  Instruction insn;
  insn.op = Op::kMul;
  insn.rd = rd;
  insn.rm = rm;
  insn.rn = rs;
  Emit(insn);
}

void Assembler::And(Reg rd, Reg rn, word imm) { DpImm(Op::kAnd, rd, rn, imm); }
void Assembler::And(Reg rd, Reg rn, Reg rm) { Dp(Op::kAnd, rd, rn, Operand2::Rm(rm)); }
void Assembler::Orr(Reg rd, Reg rn, word imm) { DpImm(Op::kOrr, rd, rn, imm); }
void Assembler::Orr(Reg rd, Reg rn, Reg rm) { Dp(Op::kOrr, rd, rn, Operand2::Rm(rm)); }
void Assembler::Eor(Reg rd, Reg rn, word imm) { DpImm(Op::kEor, rd, rn, imm); }
void Assembler::Eor(Reg rd, Reg rn, Reg rm) { Dp(Op::kEor, rd, rn, Operand2::Rm(rm)); }
void Assembler::Bic(Reg rd, Reg rn, word imm) { DpImm(Op::kBic, rd, rn, imm); }

void Assembler::Shift(Reg rd, Reg rm, ShiftKind kind, uint8_t amount) {
  Dp(Op::kMov, rd, R0, Operand2::Rm(rm, kind, amount));
}
void Assembler::Lsl(Reg rd, Reg rm, uint8_t amount) { Shift(rd, rm, ShiftKind::kLsl, amount); }
void Assembler::Lsr(Reg rd, Reg rm, uint8_t amount) { Shift(rd, rm, ShiftKind::kLsr, amount); }
void Assembler::Asr(Reg rd, Reg rm, uint8_t amount) { Shift(rd, rm, ShiftKind::kAsr, amount); }
void Assembler::Ror(Reg rd, Reg rm, uint8_t amount) {
  assert(amount != 0 && "ROR #0 encodes RRX");
  Shift(rd, rm, ShiftKind::kRor, amount);
}

void Assembler::AddShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount) {
  Dp(Op::kAdd, rd, rn, Operand2::Rm(rm, shift, amount));
}
void Assembler::OrrShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount) {
  Dp(Op::kOrr, rd, rn, Operand2::Rm(rm, shift, amount));
}
void Assembler::EorShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount) {
  Dp(Op::kEor, rd, rn, Operand2::Rm(rm, shift, amount));
}
void Assembler::AndShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount) {
  Dp(Op::kAnd, rd, rn, Operand2::Rm(rm, shift, amount));
}

void Assembler::Cmp(Reg rn, word imm, Cond cond) { DpImm(Op::kCmp, R0, rn, imm, cond); }
void Assembler::Cmp(Reg rn, Reg rm, Cond cond) { Dp(Op::kCmp, R0, rn, Operand2::Rm(rm), cond); }
void Assembler::Tst(Reg rn, word imm) { DpImm(Op::kTst, R0, rn, imm); }

void Assembler::Adds(Reg rd, Reg rn, Reg rm) {
  Dp(Op::kAdd, rd, rn, Operand2::Rm(rm), Cond::kAl, /*set_flags=*/true);
}
void Assembler::Subs(Reg rd, Reg rn, Reg rm) {
  Dp(Op::kSub, rd, rn, Operand2::Rm(rm), Cond::kAl, /*set_flags=*/true);
}
void Assembler::Subs(Reg rd, Reg rn, word imm) {
  DpImm(Op::kSub, rd, rn, imm, Cond::kAl, /*set_flags=*/true);
}

void Assembler::MemOp(Op op, Reg rd, Reg rn, int32_t offset, Cond cond) {
  Instruction insn;
  insn.op = op;
  insn.cond = cond;
  insn.rd = rd;
  insn.rn = rn;
  insn.mem_add = offset >= 0;
  const uint32_t magnitude = static_cast<uint32_t>(offset >= 0 ? offset : -offset);
  assert(magnitude <= 0xfff && "LDR/STR offset out of range");
  insn.mem_imm12 = static_cast<uint16_t>(magnitude);
  Emit(insn);
}

void Assembler::Ldr(Reg rd, Reg rn, int32_t offset, Cond cond) {
  MemOp(Op::kLdr, rd, rn, offset, cond);
}
void Assembler::Str(Reg rd, Reg rn, int32_t offset, Cond cond) {
  MemOp(Op::kStr, rd, rn, offset, cond);
}
void Assembler::Ldrb(Reg rd, Reg rn, int32_t offset) { MemOp(Op::kLdrb, rd, rn, offset, Cond::kAl); }
void Assembler::Strb(Reg rd, Reg rn, int32_t offset) { MemOp(Op::kStrb, rd, rn, offset, Cond::kAl); }

void Assembler::Ldmia(Reg rn, uint16_t reg_mask, bool writeback) {
  assert(reg_mask != 0);
  Instruction insn;
  insn.op = Op::kLdm;
  insn.rn = rn;
  insn.reg_list = reg_mask;
  insn.mem_add = true;
  insn.block_pre = false;
  insn.block_wback = writeback;
  Emit(insn);
}

void Assembler::Stmia(Reg rn, uint16_t reg_mask, bool writeback) {
  assert(reg_mask != 0);
  Instruction insn;
  insn.op = Op::kStm;
  insn.rn = rn;
  insn.reg_list = reg_mask;
  insn.mem_add = true;
  insn.block_pre = false;
  insn.block_wback = writeback;
  Emit(insn);
}

void Assembler::Push(uint16_t reg_mask) {
  assert(reg_mask != 0);
  Instruction insn;
  insn.op = Op::kStm;
  insn.rn = SP;
  insn.reg_list = reg_mask;
  insn.mem_add = false;   // descending
  insn.block_pre = true;  // before
  insn.block_wback = true;
  Emit(insn);
}

void Assembler::Pop(uint16_t reg_mask) {
  assert(reg_mask != 0);
  Instruction insn;
  insn.op = Op::kLdm;
  insn.rn = SP;
  insn.reg_list = reg_mask;
  insn.mem_add = true;     // ascending
  insn.block_pre = false;  // after
  insn.block_wback = true;
  Emit(insn);
}

void Assembler::LdrReg(Reg rd, Reg rn, Reg rm) {
  Instruction insn;
  insn.op = Op::kLdr;
  insn.rd = rd;
  insn.rn = rn;
  insn.rm = rm;
  insn.mem_reg_offset = true;
  Emit(insn);
}

void Assembler::StrReg(Reg rd, Reg rn, Reg rm) {
  Instruction insn;
  insn.op = Op::kStr;
  insn.rd = rd;
  insn.rn = rn;
  insn.rm = rm;
  insn.mem_reg_offset = true;
  Emit(insn);
}

void Assembler::B(Label target, Cond cond) {
  fixups_.push_back({code_.size(), target.id});
  Instruction insn;
  insn.op = Op::kB;
  insn.cond = cond;
  Emit(insn);
}

void Assembler::Bl(Label target, Cond cond) {
  fixups_.push_back({code_.size(), target.id});
  Instruction insn;
  insn.op = Op::kBl;
  insn.cond = cond;
  Emit(insn);
}

void Assembler::Bx(Reg rm) {
  Instruction insn;
  insn.op = Op::kBx;
  insn.rm = rm;
  Emit(insn);
}

void Assembler::Svc(word imm, Cond cond) {
  Instruction insn;
  insn.op = Op::kSvc;
  insn.cond = cond;
  insn.trap_imm = imm;
  Emit(insn);
}

void Assembler::Smc(word imm) {
  Instruction insn;
  insn.op = Op::kSmc;
  insn.trap_imm = imm;
  Emit(insn);
}

void Assembler::MrsCpsr(Reg rd) {
  Instruction insn;
  insn.op = Op::kMrs;
  insn.rd = rd;
  Emit(insn);
}

void Assembler::MsrCpsr(Reg rm) {
  Instruction insn;
  insn.op = Op::kMsr;
  insn.rm = rm;
  Emit(insn);
}

void Assembler::Mcr(Reg rt, uint8_t opc1, uint8_t crn, uint8_t crm, uint8_t opc2) {
  Instruction insn;
  insn.op = Op::kMcr;
  insn.rd = rt;
  insn.cp_opc1 = opc1;
  insn.cp_crn = crn;
  insn.cp_crm = crm;
  insn.cp_opc2 = opc2;
  Emit(insn);
}

void Assembler::Mrc(Reg rt, uint8_t opc1, uint8_t crn, uint8_t crm, uint8_t opc2) {
  Instruction insn;
  insn.op = Op::kMrc;
  insn.rd = rt;
  insn.cp_opc1 = opc1;
  insn.cp_crn = crn;
  insn.cp_crm = crm;
  insn.cp_opc2 = opc2;
  Emit(insn);
}

std::vector<word> Assembler::Finish() {
  assert(!finished_);
  finished_ = true;
  for (const Fixup& fixup : fixups_) {
    const vaddr target = label_addrs_[fixup.label_id];
    assert(target != kUnbound && "unbound label at Finish()");
    const vaddr insn_addr = base_ + static_cast<word>(fixup.code_index) * kWordSize;
    const int64_t offset = static_cast<int64_t>(target) - (static_cast<int64_t>(insn_addr) + 8);
    assert(offset >= -(1 << 25) && offset < (1 << 25) && (offset & 3) == 0);
    std::optional<Instruction> insn = Decode(code_[fixup.code_index]);
    assert(insn.has_value());
    insn->branch_offset = static_cast<int32_t>(offset);
    code_[fixup.code_index] = Encode(*insn);
  }
  return code_;
}

}  // namespace komodo::arm
