#include "src/arm/machine.h"

#include <cassert>

namespace komodo::arm {

word VectorOffset(Exception e) {
  switch (e) {
    case Exception::kUndefined:
      return 0x04;
    case Exception::kSvc:
      return 0x08;
    case Exception::kSmc:
      return 0x08;  // SMC uses the monitor vector table's 0x08 slot
    case Exception::kPrefetchAbort:
      return 0x0c;
    case Exception::kDataAbort:
      return 0x10;
    case Exception::kIrq:
      return 0x18;
    case Exception::kFiq:
      return 0x1c;
  }
  return 0;
}

Mode ExceptionTargetMode(Exception e) {
  switch (e) {
    case Exception::kUndefined:
      return Mode::kUndefined;
    case Exception::kSvc:
      return Mode::kSupervisor;
    case Exception::kSmc:
      return Mode::kMonitor;
    case Exception::kPrefetchAbort:
    case Exception::kDataAbort:
      return Mode::kAbort;
    case Exception::kIrq:
      return Mode::kIrq;
    case Exception::kFiq:
      return Mode::kFiq;
  }
  return Mode::kSupervisor;
}

MachineState::MachineState(word nsecure_pages) : mem(nsecure_pages) {
  cpsr.mode = Mode::kSupervisor;
  cpsr.irq_masked = true;
  cpsr.fiq_masked = true;
}

void MachineState::TakeException(Exception e, word return_addr) {
  const Mode target = ExceptionTargetMode(e);
  lr_banked[static_cast<size_t>(target)] = return_addr;
  spsr_banked[static_cast<size_t>(target)] = cpsr;

  cpsr.mode = target;
  cpsr.irq_masked = true;
  if (e == Exception::kFiq || e == Exception::kSmc) {
    cpsr.fiq_masked = true;
  }

  const word base = (target == Mode::kMonitor) ? vbar_monitor : vbar_secure;
  pc = base + VectorOffset(e);
  cycles.Charge(kCortexA7Costs.exception_entry);
}

void MachineState::ExceptionReturn(word target) {
  assert(cpsr.mode != Mode::kUser);
  const Psr saved = Spsr();
  cpsr = saved;
  pc = target;
  cycles.Charge(kCortexA7Costs.exception_return);
}

// Note on the interpreter's micro-TLB: TTBR writes, TLBIALL and world
// switches deliberately do NOT touch it. Its entries are tagged with the
// TTBR0 they were walked under and the generations of the descriptor pages
// the walk read, so a stale entry can never validate — the cache is a pure
// memo of WalkPageTable, coherent by construction (tests/arm/tlb_cache_test.cc
// pins this). Keeping entries warm across the SMC world-switch round trip is
// a measurable win on enter/resume-heavy workloads (EXPERIMENTS.md). The
// *architectural* tlb_consistent discipline below is unchanged.
void MachineState::WriteTtbr0(word value) {
  ttbr0 = value;
  tlb_consistent = false;
  cycles.Charge(kCortexA7Costs.cp15_access);
}

void MachineState::FlushTlb() {
  tlb_consistent = true;
  ++tlb_flushes;
  cycles.Charge(kCortexA7Costs.tlb_flush_all);
}

size_t MachineState::ResetTo(const MachineState& snapshot) {
  r = snapshot.r;
  pc = snapshot.pc;
  cpsr = snapshot.cpsr;
  sp_banked = snapshot.sp_banked;
  lr_banked = snapshot.lr_banked;
  spsr_banked = snapshot.spsr_banked;
  scr_ns = snapshot.scr_ns;
  ttbr0 = snapshot.ttbr0;
  ttbr1 = snapshot.ttbr1;
  vbar_secure = snapshot.vbar_secure;
  vbar_monitor = snapshot.vbar_monitor;
  tlb_consistent = snapshot.tlb_consistent;
  pending_irq = snapshot.pending_irq;
  pending_fiq = snapshot.pending_fiq;
  cycles = snapshot.cycles;
  steps_retired = snapshot.steps_retired;
  tlb_flushes = snapshot.tlb_flushes;
  const size_t restored = mem.ResetTo(snapshot.mem);
  // set_enabled invalidates every decode/TLB/footprint entry as a side
  // effect; stale translations must not survive into the next lease even
  // though page generations only ever move forward.
  interp.set_enabled(snapshot.interp.enabled());
  jit.set_enabled(snapshot.jit.enabled());
  return restored;
}

void MachineState::SetScrNs(bool ns) {
  assert(cpsr.mode == Mode::kMonitor);
  scr_ns = ns;
  cycles.Charge(kCortexA7Costs.world_switch);
}

}  // namespace komodo::arm
