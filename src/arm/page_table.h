// ARMv7 short-descriptor page tables, restricted — exactly as the paper's
// model is (§5.1) — to two-level tables of 4 kB "small" pages.
//
// Enclave address spaces cover the low 1 GB of virtual memory (TTBCR.N=2,
// Figure 4), so a first-level table has 1024 4-byte entries and fits in one
// secure page. Each second-level table has 256 entries (1 kB); a Komodo
// L2PTable page packs four consecutive second-level tables covering 4 MB.
// If the walker meets a descriptor outside this idiom, translation faults —
// the model "says nothing" about other formats, which forces monitor code to
// build conforming tables.
#ifndef SRC_ARM_PAGE_TABLE_H_
#define SRC_ARM_PAGE_TABLE_H_

#include <vector>

#include "src/arm/memory.h"
#include "src/arm/types.h"

namespace komodo::arm {

inline constexpr word kL1Entries = 1024;        // 1 GB / 1 MB sections
inline constexpr word kL2Entries = 256;         // 1 MB / 4 kB pages
inline constexpr word kL2TableBytes = kL2Entries * kWordSize;  // 1 kB
inline constexpr word kL2TablesPerPage = kPageSize / kL2TableBytes;  // 4

// --- Descriptor encodings (DDI 0406C §B3.5) ---------------------------------

// First-level "page table" (coarse) descriptor: bits[1:0]=0b01, NS at bit 3,
// second-level table base at bits[31:10].
word MakeL1PageTableDesc(paddr l2_table_base);
bool IsL1PageTableDesc(word desc);
paddr L1DescTableBase(word desc);
inline constexpr word kL1FaultDesc = 0;

// Second-level "small page" descriptor: bit[1]=1, XN at bit[0], AP[1:0] at
// bits[5:4], page base at bits[31:12]. AP=0b11 grants user read/write,
// AP=0b10 grants user read-only. We additionally carry a software NS bit at
// bit 3 marking mappings of insecure pages; it does not affect the walk.
word MakeL2SmallPageDesc(paddr page_base, bool writable, bool executable, bool ns);
bool IsL2SmallPageDesc(word desc);
inline constexpr word kL2FaultDesc = 0;

struct L2Perms {
  bool user_read = false;
  bool user_write = false;
  bool executable = false;
  bool ns = false;
};
L2Perms L2DescPerms(word desc);
paddr L2DescPageBase(word desc);

// --- Translation -------------------------------------------------------------

struct WalkResult {
  bool ok = false;
  paddr phys = 0;
  bool user_read = false;
  bool user_write = false;
  bool executable = false;
};

// The descriptor addresses a (successful) walk read — the micro-TLB tags its
// entries with the pages these live in so that any store into them
// invalidates the cached translation.
struct WalkTrace {
  paddr l1_entry_addr = 0;
  paddr l2_entry_addr = 0;
};

// Walks the two-level table rooted at `l1_base` for virtual address `va`.
// Fails (ok=false) for va >= 1 GB, descriptors outside the modelled idiom, or
// table addresses that leave mapped physical memory. `trace`, when non-null,
// receives the descriptor addresses of a successful walk.
WalkResult WalkPageTable(const PhysMemory& mem, paddr l1_base, vaddr va,
                         WalkTrace* trace = nullptr);

// All user-writable page base addresses reachable from `l1_base`, in
// ascending VA order. This is the footprint the paper's model havocs after
// user-mode execution (§5.1), and the basis of several PageDB invariants.
struct WritableMapping {
  vaddr va;
  paddr page_base;
};
std::vector<WritableMapping> WritablePages(const PhysMemory& mem, paddr l1_base);

// True if `addr` (word-aligned) lies inside the L1 table at `l1_base` or any
// second-level table it references — used to model TLB-consistency tracking
// for stores that may alias a live page table.
bool AddrInLivePageTable(const PhysMemory& mem, paddr l1_base, paddr addr);

}  // namespace komodo::arm

#endif  // SRC_ARM_PAGE_TABLE_H_
