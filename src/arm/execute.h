// Single-step interpreter for the modelled instruction subset, with virtual
// memory translation, the TrustZone memory filter and asynchronous interrupt
// injection.
#ifndef SRC_ARM_EXECUTE_H_
#define SRC_ARM_EXECUTE_H_

#include <optional>

#include "src/arm/isa.h"
#include "src/arm/machine.h"

namespace komodo::arm {

enum class StepStatus : uint8_t {
  kOk,         // instruction retired, control stays in the current mode
  kException,  // an exception was taken (including SVC/SMC traps)
};

struct StepResult {
  StepStatus status = StepStatus::kOk;
  Exception exception = Exception::kUndefined;  // valid when status == kException
};

// Kinds of memory access for translation purposes.
enum class Access : uint8_t { kFetch, kRead, kWrite };

struct Translation {
  bool ok = false;
  paddr phys = 0;
};

// Translates `va` for the machine's current mode and world:
//  * normal world: flat mapping, but the TrustZone filter faults any access to
//    the monitor image or secure page region (§3.2's IOMMU-like partition);
//  * secure user: two-level walk from TTBR0 with permission checks;
//  * secure privileged: the monitor's static direct map at kDirectMapVbase.
Translation TranslateAddress(const MachineState& m, vaddr va, Access access);

// Executes one instruction (or takes a pending interrupt). All architectural
// effects — including exceptions — are applied to `m`; cycle costs are charged
// per the Cortex-A7 model.
StepResult Step(MachineState& m);

// Applies the store side-channel bookkeeping Step performs after a successful
// write to `phys` (TLB-consistency invalidation when a secure-world store
// lands in the live enclave page table). Exposed for the JIT's store helpers,
// which bypass Step but must observe identical architectural effects.
void NoteStoreToPhys(MachineState& m, paddr phys);

// Runs until control leaves user mode (an exception is taken) or `max_steps`
// instructions retire. When the machine's JIT is enabled, hot basic blocks
// execute as translated x64 code with bit-identical architectural effects
// (DESIGN.md §13); everything else falls back to Step. Returns the
// terminating exception, or nullopt if the step budget ran out with the
// machine still in user mode.
std::optional<Exception> RunUntilException(MachineState& m, uint64_t max_steps);

}  // namespace komodo::arm

#endif  // SRC_ARM_EXECUTE_H_
