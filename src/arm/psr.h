// Program status registers (CPSR/SPSR), processor modes and TrustZone worlds.
//
// We model the architectural mode encodings of ARMv7-A (DDI 0406C §B1.3) for
// the seven modes Komodo's machine model covers: user, FIQ, IRQ, supervisor,
// abort, undefined and (secure-only) monitor. System/Hyp modes are
// intentionally unmodelled, per the paper's idiomatic-specification approach:
// a program that tried to enter them is outside the model.
#ifndef SRC_ARM_PSR_H_
#define SRC_ARM_PSR_H_

#include <cstdint>
#include <string>

#include "src/arm/types.h"

namespace komodo::arm {

enum class Mode : uint8_t {
  kUser = 0,
  kFiq,
  kIrq,
  kSupervisor,
  kAbort,
  kUndefined,
  kMonitor,
};
inline constexpr int kNumModes = 7;

// Architectural 5-bit mode encodings.
word ModeEncoding(Mode m);
// Decodes a 5-bit encoding; returns false if it is not one of the seven
// modelled modes.
bool DecodeMode(word bits, Mode* out);
const char* ModeName(Mode m);

enum class World : uint8_t { kSecure = 0, kNormal = 1 };

// Condition flags + mask bits + mode of a program status register. We model
// exactly the fields Komodo's spec needs: N/Z/C/V, the I (IRQ mask) and
// F (FIQ mask) bits, and the mode field.
struct Psr {
  bool n = false;
  bool z = false;
  bool c = false;
  bool v = false;
  bool irq_masked = true;   // I bit
  bool fiq_masked = true;   // F bit
  Mode mode = Mode::kSupervisor;

  word Encode() const;
  static Psr Decode(word bits);
  bool operator==(const Psr&) const = default;
  std::string ToString() const;
};

// Condition codes for A32 instructions (DDI 0406C §A8.3).
enum class Cond : uint8_t {
  kEq = 0x0,
  kNe = 0x1,
  kCs = 0x2,
  kCc = 0x3,
  kMi = 0x4,
  kPl = 0x5,
  kVs = 0x6,
  kVc = 0x7,
  kHi = 0x8,
  kLs = 0x9,
  kGe = 0xa,
  kLt = 0xb,
  kGt = 0xc,
  kLe = 0xd,
  kAl = 0xe,
};

// Evaluates a condition against the flags in `psr`.
bool CondPasses(Cond cond, const Psr& psr);

}  // namespace komodo::arm

#endif  // SRC_ARM_PSR_H_
