// A small programmatic assembler for the modelled A32 subset.
//
// This plays the role of the enclave-side toolchain: test and example
// enclaves are written against this builder and executed natively by the
// interpreter through the enclave's own page tables. Branch targets are
// label-based and resolved at Finish().
#ifndef SRC_ARM_ASSEMBLER_H_
#define SRC_ARM_ASSEMBLER_H_

#include <cstddef>
#include <vector>

#include "src/arm/isa.h"
#include "src/arm/types.h"

namespace komodo::arm {

class Assembler {
 public:
  // `base` is the virtual address the code will be placed at (needed to
  // resolve PC-relative branches).
  explicit Assembler(vaddr base) : base_(base) {}

  struct Label {
    size_t id;
  };

  Label NewLabel();
  void Bind(Label label);
  vaddr AddrOf(Label label) const;  // only valid after Bind
  vaddr CurrentAddr() const { return base_ + static_cast<word>(code_.size()) * kWordSize; }

  // --- Moves and arithmetic --------------------------------------------------
  // Loads an arbitrary 32-bit constant (MOV imm if encodable, else MOVW/MOVT).
  void MovImm(Reg rd, word value, Cond cond = Cond::kAl);
  void Mov(Reg rd, Reg rm, Cond cond = Cond::kAl);
  void Mvn(Reg rd, Reg rm);
  void Add(Reg rd, Reg rn, word imm, Cond cond = Cond::kAl);
  void Add(Reg rd, Reg rn, Reg rm, Cond cond = Cond::kAl);
  void Adc(Reg rd, Reg rn, Reg rm);
  void Sub(Reg rd, Reg rn, word imm, Cond cond = Cond::kAl);
  void Sub(Reg rd, Reg rn, Reg rm, Cond cond = Cond::kAl);
  void Sbc(Reg rd, Reg rn, Reg rm);
  void Rsb(Reg rd, Reg rn, word imm);
  void Mul(Reg rd, Reg rm, Reg rs);
  void And(Reg rd, Reg rn, word imm);
  void And(Reg rd, Reg rn, Reg rm);
  void Orr(Reg rd, Reg rn, word imm);
  void Orr(Reg rd, Reg rn, Reg rm);
  void Eor(Reg rd, Reg rn, word imm);
  void Eor(Reg rd, Reg rn, Reg rm);
  void Bic(Reg rd, Reg rn, word imm);
  void Lsl(Reg rd, Reg rm, uint8_t amount);
  void Lsr(Reg rd, Reg rm, uint8_t amount);
  void Asr(Reg rd, Reg rm, uint8_t amount);
  void Ror(Reg rd, Reg rm, uint8_t amount);
  // rd = rn OP (rm SHIFT #amount) — the general register form.
  void AddShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount);
  void OrrShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount);
  void EorShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount);
  void AndShifted(Reg rd, Reg rn, Reg rm, ShiftKind shift, uint8_t amount);

  // --- Compares (always set flags) -------------------------------------------
  void Cmp(Reg rn, word imm, Cond cond = Cond::kAl);
  void Cmp(Reg rn, Reg rm, Cond cond = Cond::kAl);
  void Tst(Reg rn, word imm);

  // Flag-setting arithmetic (ADDS/SUBS) for multi-word carries.
  void Adds(Reg rd, Reg rn, Reg rm);
  void Subs(Reg rd, Reg rn, Reg rm);
  void Subs(Reg rd, Reg rn, word imm);

  // --- Memory -----------------------------------------------------------------
  void Ldr(Reg rd, Reg rn, int32_t offset = 0, Cond cond = Cond::kAl);
  void Str(Reg rd, Reg rn, int32_t offset = 0, Cond cond = Cond::kAl);
  void LdrReg(Reg rd, Reg rn, Reg rm);
  void StrReg(Reg rd, Reg rn, Reg rm);
  void Ldrb(Reg rd, Reg rn, int32_t offset = 0);
  void Strb(Reg rd, Reg rn, int32_t offset = 0);
  // Block transfers. `reg_mask` is a bitmask of registers (bit i = Ri).
  void Ldmia(Reg rn, uint16_t reg_mask, bool writeback = false);
  void Stmia(Reg rn, uint16_t reg_mask, bool writeback = false);
  void Push(uint16_t reg_mask);  // STMDB sp!, {...}
  void Pop(uint16_t reg_mask);   // LDMIA sp!, {...}

  // --- Control flow -------------------------------------------------------------
  void B(Label target, Cond cond = Cond::kAl);
  void Bl(Label target, Cond cond = Cond::kAl);
  void Bx(Reg rm);

  // --- Traps and system ----------------------------------------------------------
  void Svc(word imm = 0, Cond cond = Cond::kAl);
  void Smc(word imm = 0);
  void MrsCpsr(Reg rd);
  void MsrCpsr(Reg rm);
  // CP15 access (privileged, secure world): raw form plus the named system
  // registers the monitor uses.
  void Mcr(Reg rt, uint8_t opc1, uint8_t crn, uint8_t crm, uint8_t opc2);
  void Mrc(Reg rt, uint8_t opc1, uint8_t crn, uint8_t crm, uint8_t opc2);
  void WriteTtbr0(Reg rt) { Mcr(rt, 0, 2, 0, 0); }
  void ReadTtbr0(Reg rt) { Mrc(rt, 0, 2, 0, 0); }
  void TlbiAll(Reg rt) { Mcr(rt, 0, 8, 7, 0); }
  void ReadVbar(Reg rt) { Mrc(rt, 0, 12, 0, 0); }
  void WriteVbar(Reg rt) { Mcr(rt, 0, 12, 0, 0); }
  void ReadScr(Reg rt) { Mrc(rt, 0, 1, 1, 0); }
  void WriteScr(Reg rt) { Mcr(rt, 0, 1, 1, 0); }

  // Raw escape hatches.
  void Emit(const Instruction& insn);
  void EmitWord(word bits);

  // Resolves all branch fixups and returns the instruction words.
  std::vector<word> Finish();

  size_t size_words() const { return code_.size(); }

 private:
  void Dp(Op op, Reg rd, Reg rn, Operand2 op2, Cond cond = Cond::kAl, bool set_flags = false);
  void DpImm(Op op, Reg rd, Reg rn, word imm, Cond cond = Cond::kAl, bool set_flags = false);
  void Shift(Reg rd, Reg rm, ShiftKind kind, uint8_t amount);
  void MemOp(Op op, Reg rd, Reg rn, int32_t offset, Cond cond);

  struct Fixup {
    size_t code_index;
    size_t label_id;
  };

  vaddr base_;
  std::vector<word> code_;
  std::vector<vaddr> label_addrs_;  // ~0u = unbound
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace komodo::arm

#endif  // SRC_ARM_ASSEMBLER_H_
