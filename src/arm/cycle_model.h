// Cycle-cost model, loosely calibrated to an in-order Cortex-A7 at 900 MHz
// (the Raspberry Pi 2 Model B used by the paper's evaluation, §8.1).
//
// The simulator charges these costs for interpreted user-mode instructions;
// the monitor implementation charges the same costs for the equivalent
// operations its assembly counterpart would execute (see
// src/core/monitor_costs.h). All benchmark output is in these simulated
// cycles; EXPERIMENTS.md converts to milliseconds at 900 MHz where the paper
// reports time.
#ifndef SRC_ARM_CYCLE_MODEL_H_
#define SRC_ARM_CYCLE_MODEL_H_

#include <cstdint>

namespace komodo::arm {

struct CycleCosts {
  // Core pipeline.
  uint64_t alu = 1;             // data-processing, register or immediate
  uint64_t mul = 3;
  uint64_t load = 3;            // LDR, L1 hit
  uint64_t store = 2;           // STR
  uint64_t branch_taken = 2;    // pipeline refill
  uint64_t branch_not_taken = 1;
  // System.
  uint64_t cp15_access = 3;     // MCR/MRC
  uint64_t msr_mrs = 2;         // banked/status register moves
  uint64_t exception_entry = 12;
  uint64_t exception_return = 12;  // MOVS PC, LR and friends
  uint64_t tlb_flush_all = 14;     // TLBIALL + barriers
  uint64_t world_switch = 9;       // SCR.NS write + ISB
  uint64_t svc_smc_issue = 1;      // the trapping instruction itself
};

inline constexpr CycleCosts kCortexA7Costs{};

inline constexpr uint64_t kCpuHz = 900'000'000;  // Raspberry Pi 2

// Monotone cycle counter threaded through the machine state.
class CycleCounter {
 public:
  void Charge(uint64_t cycles) { total_ += cycles; }
  uint64_t total() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  uint64_t total_ = 0;
};

inline double CyclesToMs(uint64_t cycles) {
  return static_cast<double>(cycles) * 1000.0 / static_cast<double>(kCpuHz);
}

}  // namespace komodo::arm

#endif  // SRC_ARM_CYCLE_MODEL_H_
