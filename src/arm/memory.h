// Physical memory for the machine model.
//
// Following the paper's Dafny model (§5.1), memory is a map from word-aligned
// physical addresses to 32-bit words; only aligned word accesses exist.
// Memory is split into the three regions of the physical map (insecure RAM,
// monitor image, secure pages) so that region predicates — which the monitor's
// validity checks depend on — are cheap and explicit.
#ifndef SRC_ARM_MEMORY_H_
#define SRC_ARM_MEMORY_H_

#include <cstddef>
#include <vector>

#include "src/arm/types.h"

namespace komodo::arm {

// Identifies which physical region an address falls in.
enum class MemRegion { kInsecure, kMonitor, kSecurePages, kUnmapped };

class PhysMemory {
 public:
  // `nsecure_pages` is the bootloader-configured size of the secure page
  // region (GetPhysPages returns it).
  explicit PhysMemory(word nsecure_pages = kDefaultSecurePages);

  word nsecure_pages() const { return nsecure_pages_; }

  MemRegion RegionOf(paddr addr) const;
  bool IsValidPhys(paddr addr) const { return RegionOf(addr) != MemRegion::kUnmapped; }

  // Word access. Addresses must be word-aligned and mapped; the model treats a
  // violation as a programming error in the caller (the interpreter raises an
  // architectural fault *before* calling these).
  word Read(paddr addr) const;
  void Write(paddr addr, word value);

  // Bulk helpers used by loaders, page initialisation and hashing.
  void ReadPage(paddr page_base, word out[kWordsPerPage]) const;
  void WritePage(paddr page_base, const word in[kWordsPerPage]);
  void ZeroPage(paddr page_base);

  // Byte-oriented view over one page (for measurement hashing). `bytes_out`
  // must hold kPageSize bytes; words are serialised little-endian.
  void ReadPageBytes(paddr page_base, uint8_t* bytes_out) const;

  bool operator==(const PhysMemory&) const = default;

  // Whole-region views for the equivalence relations (fast comparison of all
  // insecure memory without per-word region lookups).
  const std::vector<word>& insecure_words() const { return insecure_; }
  const std::vector<word>& secure_words() const { return secure_; }

 private:
  const std::vector<word>* BackingFor(paddr addr, size_t* index) const;

  word nsecure_pages_;
  std::vector<word> insecure_;
  std::vector<word> monitor_;
  std::vector<word> secure_;
};

// True iff the page-aligned physical address `page_base` lies entirely in
// insecure RAM — i.e. it overlaps neither the monitor image nor the secure
// page region. This is exactly the check §9.1 reports the unverified
// prototype got wrong.
bool IsInsecurePageAddr(const PhysMemory& mem, paddr page_base);

}  // namespace komodo::arm

#endif  // SRC_ARM_MEMORY_H_
