// Physical memory for the machine model.
//
// Following the paper's Dafny model (§5.1), memory is a map from word-aligned
// physical addresses to 32-bit words; only aligned word accesses exist.
// Memory is split into the three regions of the physical map (insecure RAM,
// monitor image, secure pages) so that region predicates — which the monitor's
// validity checks depend on — are cheap and explicit.
//
// Hot-path design: the three regions are flat vectors and the word accessors
// are inline single-branch span lookups (DESIGN.md §8). Every page carries a
// generation counter bumped on any store into it; the interpreter's decode
// cache and micro-TLB validate their entries against these generations, which
// makes them coherent against *any* writer (interpreted stores, monitor C++
// code, or test-harness pokes) without explicit invalidation hooks.
//
// Snapshot-reset (DESIGN.md §11): with dirty tracking enabled, every store
// also records the containing page in a dirty list (once per page), so
// ResetTo(snapshot) can restore the memory to a previously copied state by
// rewriting only the pages written since tracking began — O(pages actually
// dirtied) instead of O(total memory). The fuzz campaign's per-worker world
// pools lean on this to replace a ~17 MB zero-and-reconstruct per trace with
// a copy of the handful of pages the previous trace touched.
#ifndef SRC_ARM_MEMORY_H_
#define SRC_ARM_MEMORY_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/arm/types.h"

namespace komodo::arm {

// Identifies which physical region an address falls in.
enum class MemRegion { kInsecure, kMonitor, kSecurePages, kUnmapped };

class PhysMemory {
 public:
  // `nsecure_pages` is the bootloader-configured size of the secure page
  // region (GetPhysPages returns it).
  explicit PhysMemory(word nsecure_pages = kDefaultSecurePages);

  word nsecure_pages() const { return nsecure_pages_; }

  MemRegion RegionOf(paddr addr) const {
    // Regions are disjoint; unsigned wraparound makes each test one compare.
    if (addr - kInsecureBase < kInsecureSize) {
      return MemRegion::kInsecure;
    }
    if (addr - kMonitorBase < kMonitorSize) {
      return MemRegion::kMonitor;
    }
    if (addr - kSecurePagesBase < nsecure_pages_ * kPageSize) {
      return MemRegion::kSecurePages;
    }
    return MemRegion::kUnmapped;
  }
  bool IsValidPhys(paddr addr) const { return RegionOf(addr) != MemRegion::kUnmapped; }

  // Word access. Addresses must be word-aligned and mapped; the model treats a
  // violation as a programming error in the caller (the interpreter raises an
  // architectural fault *before* calling these).
  word Read(paddr addr) const {
    assert(IsWordAligned(addr));
    const word* p = WordPtr(addr);
    assert(p != nullptr);
    return *p;
  }
  void Write(paddr addr, word value) {
    assert(IsWordAligned(addr));
    size_t page_index = 0;
    word* p = WordPtr(addr, &page_index);
    assert(p != nullptr);
    *p = value;
    ++page_gen_[page_index];
    if (track_dirty_) {
      MarkDirty(page_index);
    }
  }

  // Generation bookkeeping for the interpreter caches: every store bumps the
  // containing page's counter. Unmapped addresses report the constant
  // generation 0 (they can never be written). `PageIndexOf` resolves an
  // address to its stable global page index once, so cache entries revalidate
  // with a single indexed load (`PageGenAt`) instead of a region decode.
  static constexpr size_t kNoPage = static_cast<size_t>(-1);
  size_t PageIndexOf(paddr addr) const {
    size_t page_index = kNoPage;
    (void)WordPtr(addr & ~3u, &page_index);
    return page_index;
  }
  uint32_t PageGenAt(size_t page_index) const {
    return page_index == kNoPage ? 0 : page_gen_[page_index];
  }
  uint32_t PageGen(paddr addr) const { return PageGenAt(PageIndexOf(addr)); }

  // Bulk helpers used by loaders, page initialisation and hashing.
  void ReadPage(paddr page_base, word out[kWordsPerPage]) const;
  void WritePage(paddr page_base, const word in[kWordsPerPage]);
  void ZeroPage(paddr page_base);

  // Byte-oriented view over one page (for measurement hashing). `bytes_out`
  // must hold kPageSize bytes; words are serialised little-endian.
  void ReadPageBytes(paddr page_base, uint8_t* bytes_out) const;

  // --- Snapshot-reset support (DESIGN.md §11) --------------------------------
  // Starts recording which pages are written from this point on (clears any
  // previously recorded dirty set). Tracking is off by default; nothing in a
  // normal run pays more than one predictable branch per store.
  void EnableDirtyTracking();
  bool dirty_tracking() const { return track_dirty_; }
  // Pages written since EnableDirtyTracking / the last ResetTo, as global
  // page indices (the PageIndexOf/PageGenAt space).
  const std::vector<uint32_t>& dirty_pages() const { return dirty_list_; }

  // Restores this memory to `snapshot` (a copy taken when the dirty set was
  // last empty, i.e. at EnableDirtyTracking or right after a ResetTo) by
  // copying back only the dirty pages, then clears the dirty set. Each
  // restored page's generation is bumped — never rolled back — so decode
  // cache and micro-TLB entries can never mistake pre-reset contents for
  // post-reset contents (the caller must still invalidate caches whose
  // entries embed generation *indices* that stay valid; MachineState::ResetTo
  // does). Geometries must match. Returns the number of pages restored.
  size_t ResetTo(const PhysMemory& snapshot);

  // Architectural equality: contents only. Page generations are cache
  // bookkeeping and must not distinguish observably-equal memories.
  bool operator==(const PhysMemory& o) const {
    return nsecure_pages_ == o.nsecure_pages_ && insecure_ == o.insecure_ &&
           monitor_ == o.monitor_ && secure_ == o.secure_;
  }

  // Whole-region views for the equivalence relations (fast comparison of all
  // insecure memory without per-word region lookups).
  const std::vector<word>& insecure_words() const { return insecure_; }
  const std::vector<word>& secure_words() const { return secure_; }

 private:
  // Pointer to the backing word, or nullptr if unmapped. The non-const form
  // also yields the global page index (for the generation bump) so the region
  // decode happens once per access.
  const word* WordPtr(paddr addr, size_t* page_index = nullptr) const;
  word* WordPtr(paddr addr, size_t* page_index = nullptr) {
    return const_cast<word*>(static_cast<const PhysMemory*>(this)->WordPtr(addr, page_index));
  }

  // Region backing a page-aligned address, with the word index of `addr` in
  // it; non-const overload for writers (no const_cast at call sites).
  const std::vector<word>* BackingFor(paddr addr, size_t* index) const;
  std::vector<word>* BackingFor(paddr addr, size_t* index) {
    return const_cast<std::vector<word>*>(
        static_cast<const PhysMemory*>(this)->BackingFor(addr, index));
  }

  // First word of the page with global index `page_index` (which must be a
  // mapped page). Inverse of PageIndexOf's region layout.
  word* PageWords(size_t page_index);
  const word* PageWords(size_t page_index) const {
    return const_cast<PhysMemory*>(this)->PageWords(page_index);
  }

  void MarkDirty(size_t page_index) {
    if (!dirty_map_[page_index]) {
      dirty_map_[page_index] = 1;
      dirty_list_.push_back(static_cast<uint32_t>(page_index));
    }
  }

  word nsecure_pages_;
  std::vector<word> insecure_;
  std::vector<word> monitor_;
  std::vector<word> secure_;
  // One generation counter per mapped page, across all three regions in
  // layout order (insecure, monitor, secure).
  std::vector<uint32_t> page_gen_;
  // Dirty-page recording for snapshot-reset; empty/disabled unless
  // EnableDirtyTracking was called.
  bool track_dirty_ = false;
  std::vector<uint8_t> dirty_map_;    // one flag per mapped page
  std::vector<uint32_t> dirty_list_;  // insertion-ordered dirty page indices
};

inline const word* PhysMemory::WordPtr(paddr addr, size_t* page_index) const {
  if (addr - kInsecureBase < kInsecureSize) {
    const paddr off = addr - kInsecureBase;
    if (page_index != nullptr) {
      *page_index = off / kPageSize;
    }
    return &insecure_[off / kWordSize];
  }
  if (addr - kMonitorBase < kMonitorSize) {
    const paddr off = addr - kMonitorBase;
    if (page_index != nullptr) {
      *page_index = kInsecureSize / kPageSize + off / kPageSize;
    }
    return &monitor_[off / kWordSize];
  }
  if (addr - kSecurePagesBase < nsecure_pages_ * kPageSize) {
    const paddr off = addr - kSecurePagesBase;
    if (page_index != nullptr) {
      *page_index = (kInsecureSize + kMonitorSize) / kPageSize + off / kPageSize;
    }
    return &secure_[off / kWordSize];
  }
  return nullptr;
}

// True iff the page-aligned physical address `page_base` lies entirely in
// insecure RAM — i.e. it overlaps neither the monitor image nor the secure
// page region. This is exactly the check §9.1 reports the unverified
// prototype got wrong.
bool IsInsecurePageAddr(const PhysMemory& mem, paddr page_base);

}  // namespace komodo::arm

#endif  // SRC_ARM_MEMORY_H_
