#include "src/arm/memory.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace komodo::arm {

PhysMemory::PhysMemory(word nsecure_pages)
    : nsecure_pages_(nsecure_pages),
      insecure_(kInsecureSize / kWordSize, 0),
      monitor_(kMonitorSize / kWordSize, 0),
      secure_(static_cast<size_t>(nsecure_pages) * kWordsPerPage, 0),
      page_gen_((kInsecureSize + kMonitorSize) / kPageSize + nsecure_pages, 0) {
  assert(nsecure_pages >= 1 && nsecure_pages <= kMaxSecurePages);
}

const std::vector<word>* PhysMemory::BackingFor(paddr addr, size_t* index) const {
  switch (RegionOf(addr)) {
    case MemRegion::kInsecure:
      *index = (addr - kInsecureBase) / kWordSize;
      return &insecure_;
    case MemRegion::kMonitor:
      *index = (addr - kMonitorBase) / kWordSize;
      return &monitor_;
    case MemRegion::kSecurePages:
      *index = (addr - kSecurePagesBase) / kWordSize;
      return &secure_;
    case MemRegion::kUnmapped:
      return nullptr;
  }
  return nullptr;
}

void PhysMemory::ReadPage(paddr page_base, word out[kWordsPerPage]) const {
  assert(IsPageAligned(page_base));
  size_t index = 0;
  const std::vector<word>* backing = BackingFor(page_base, &index);
  assert(backing != nullptr);
  std::memcpy(out, backing->data() + index, kPageSize);
}

void PhysMemory::WritePage(paddr page_base, const word in[kWordsPerPage]) {
  assert(IsPageAligned(page_base));
  size_t index = 0;
  std::vector<word>* backing = BackingFor(page_base, &index);
  assert(backing != nullptr);
  std::memcpy(backing->data() + index, in, kPageSize);
  const size_t page_index = PageIndexOf(page_base);
  ++page_gen_[page_index];
  if (track_dirty_) {
    MarkDirty(page_index);
  }
}

void PhysMemory::ZeroPage(paddr page_base) {
  assert(IsPageAligned(page_base));
  size_t index = 0;
  std::vector<word>* backing = BackingFor(page_base, &index);
  assert(backing != nullptr);
  std::fill_n(backing->data() + index, kWordsPerPage, 0u);
  const size_t page_index = PageIndexOf(page_base);
  ++page_gen_[page_index];
  if (track_dirty_) {
    MarkDirty(page_index);
  }
}

word* PhysMemory::PageWords(size_t page_index) {
  constexpr size_t kInsecurePages = kInsecureSize / kPageSize;
  constexpr size_t kMonitorPages = kMonitorSize / kPageSize;
  if (page_index < kInsecurePages) {
    return insecure_.data() + page_index * kWordsPerPage;
  }
  if (page_index < kInsecurePages + kMonitorPages) {
    return monitor_.data() + (page_index - kInsecurePages) * kWordsPerPage;
  }
  assert(page_index < kInsecurePages + kMonitorPages + nsecure_pages_);
  return secure_.data() + (page_index - kInsecurePages - kMonitorPages) * kWordsPerPage;
}

void PhysMemory::EnableDirtyTracking() {
  track_dirty_ = true;
  dirty_map_.assign(page_gen_.size(), 0);
  dirty_list_.clear();
}

size_t PhysMemory::ResetTo(const PhysMemory& snapshot) {
  assert(track_dirty_);
  assert(nsecure_pages_ == snapshot.nsecure_pages_);
  const size_t restored = dirty_list_.size();
  for (const uint32_t page_index : dirty_list_) {
    std::memcpy(PageWords(page_index), snapshot.PageWords(page_index), kPageSize);
    ++page_gen_[page_index];
    dirty_map_[page_index] = 0;
  }
  dirty_list_.clear();
  return restored;
}

void PhysMemory::ReadPageBytes(paddr page_base, uint8_t* bytes_out) const {
  assert(IsPageAligned(page_base));
  size_t index = 0;
  const std::vector<word>* backing = BackingFor(page_base, &index);
  assert(backing != nullptr);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(bytes_out, backing->data() + index, kPageSize);
  } else {
    for (word i = 0; i < kWordsPerPage; ++i) {
      const word w = (*backing)[index + i];
      bytes_out[i * 4 + 0] = static_cast<uint8_t>(w & 0xff);
      bytes_out[i * 4 + 1] = static_cast<uint8_t>((w >> 8) & 0xff);
      bytes_out[i * 4 + 2] = static_cast<uint8_t>((w >> 16) & 0xff);
      bytes_out[i * 4 + 3] = static_cast<uint8_t>((w >> 24) & 0xff);
    }
  }
}

bool IsInsecurePageAddr(const PhysMemory& mem, paddr page_base) {
  if (!IsPageAligned(page_base)) {
    return false;
  }
  // The whole page must fall in insecure RAM. Regions are page-aligned, so
  // checking the base suffices, but we check the last word as well to stay
  // robust if the map constants ever change.
  return mem.RegionOf(page_base) == MemRegion::kInsecure &&
         mem.RegionOf(page_base + kPageSize - kWordSize) == MemRegion::kInsecure;
}

}  // namespace komodo::arm
