// Program catalog for the serve daemon (DESIGN.md §14): the fixed menu of
// enclave programs a server instance is willing to construct sessions from.
// Clients name a program; they never supply code. This mirrors the paper's
// deployment model — the untrusted OS hosts a known set of measured enclave
// images, and the measurement (not the client) is what a verifier trusts.
#ifndef SRC_SERVE_CATALOG_H_
#define SRC_SERVE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "src/arm/types.h"

namespace komodo::serve {

using arm::word;

struct CatalogEntry {
  std::vector<word> code;
  // Speaks the shared-page batch ABI (shared[0]=n, args at shared[1..n],
  // results at shared[33+i]; see src/enclave/programs.h). Non-batch programs
  // take their argument in r0 of Enter and reply via the exit value, so the
  // scheduler runs them one world switch per request.
  bool batch_abi = false;
};

class ProgramCatalog {
 public:
  void Register(const std::string& name, CatalogEntry entry);
  // nullptr when the name is unknown.
  const CatalogEntry* Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, CatalogEntry> entries_;
};

// counter/echo (batch ABI), add_two (single-shot), spin (never exits; the
// timeout path's test program).
ProgramCatalog DefaultCatalog();

}  // namespace komodo::serve

#endif  // SRC_SERVE_CATALOG_H_
