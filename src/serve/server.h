// komodo-serve (DESIGN.md §14): a long-running daemon model that multiplexes
// many concurrent enclave sessions over one Komodo world on one core —
// the role a hosting OS plays above the monitor.
//
//   CreateSession(program)  pick a program from the catalog; allocate the
//                           session's shared insecure page (stable across
//                           rebuilds — it is the client-visible buffer)
//   Submit(session, arg)    enqueue a request into the bounded submission
//                           queue (kQueueFull backpressure when at capacity)
//   Poll / Wait             observe or drive a request to completion
//   DestroySession          fail queued requests, tear the enclave down
//
// Scheduling is deterministic and single-threaded: PumpOne() takes the
// head-of-line request, coalesces every queued request of the same session
// (up to kServeBatchMax when the program speaks the batch ABI) into ONE
// world switch, and executes it. Under a secure-page budget, idle sessions
// are LRU-evicted (Stop + Remove of all their secure pages) and rebuilt
// from the catalog on demand — rebuilt enclaves restart from their measured
// initial state, exactly as a freshly booted Komodo enclave would; nothing
// survives eviction except the shared insecure page.
//
// Requests that exceed the timeout budget (timeout_slices interrupted
// entries of steps_per_slice interpreted steps each) fail with kTimeout and
// the wedged enclave is destroyed. All failures are typed (RequestFailure),
// never raw ABI words.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/expected.h"
#include "src/obs/trace.h"
#include "src/os/world.h"
#include "src/serve/catalog.h"

namespace komodo::serve {

// Max requests one batch-ABI Enter can service (shared[0]=n, args at
// shared[1..32], results at shared[33..64]; one 1024-word page holds both).
inline constexpr word kServeBatchMax = 32;

using SessionId = word;
using RequestId = word;

enum class ServeErr : word {
  kNone = 0,
  kUnknownProgram,
  kUnknownSession,
  kUnknownRequest,
  kQueueFull,
};

const char* ServeErrName(ServeErr e);

enum class RequestFailure : word {
  kNone = 0,        // completed successfully
  kTimeout,         // exceeded timeout_slices interrupted resumes
  kEnclaveFault,    // enclave took an abort/undef; value = declassified code
  kMonitorDenied,   // monitor refused the Enter/Resume (see err)
  kBuildFailed,     // enclave (re)construction failed (see err)
  kSessionDestroyed,  // DestroySession raced the queued request
};

const char* RequestFailureName(RequestFailure f);

struct RequestResult {
  bool ok = false;
  RequestFailure failure = RequestFailure::kNone;
  word value = 0;             // per-request result / fault code
  KomErr err = KomErr::kSuccess;  // monitor error for kMonitorDenied/kBuildFailed
  uint64_t latency_cycles = 0;    // submit -> completion, simulated cycles
};

struct ServerStats {
  uint64_t sessions_created = 0;
  uint64_t sessions_destroyed = 0;
  uint64_t requests_submitted = 0;
  uint64_t requests_completed = 0;
  uint64_t requests_failed = 0;
  uint64_t queue_full_rejections = 0;
  uint64_t queue_depth_hwm = 0;  // high-water mark of the submission queue
  uint64_t enters = 0;
  uint64_t resumes = 0;
  uint64_t world_switches = 0;  // enters + resumes
  uint64_t batches = 0;         // scheduling rounds that executed
  uint64_t batched_requests = 0;  // requests serviced by those rounds
  uint64_t evictions = 0;
  uint64_t rebuilds = 0;  // builds after the first (post-eviction/timeout)
  obs::Histogram request_latency_cycles;
  obs::Histogram batch_size;
};

class Server {
 public:
  struct Config {
    // Secure pages of the underlying world (hardware) and the serve-layer
    // resident budget (policy; must leave room for at least one enclave).
    word nsecure_pages = arm::kDefaultSecurePages;
    word secure_page_budget = arm::kDefaultSecurePages;
    size_t queue_capacity = 64;
    // Timeout = timeout_slices slices of steps_per_slice interpreted steps,
    // *counting the initial Enter as the first slice*: a request gets
    // timeout_slices - 1 Resumes before it is failed with kTimeout, and
    // timeout_slices = 1 allows no Resume at all.
    uint64_t steps_per_slice = 200'000;
    word timeout_slices = 4;
    // Coalesce same-session requests into one Enter (batch-ABI programs).
    bool batching = true;
    // §8.1 Monitor fast paths (flush skipping + lazy banked registers).
    bool monitor_fast_paths = true;
  };

  explicit Server(ProgramCatalog catalog) : Server(std::move(catalog), Config{}) {}
  Server(ProgramCatalog catalog, const Config& config);

  Expected<SessionId, ServeErr> CreateSession(const std::string& program);
  // Fails queued requests with kSessionDestroyed; returns how many.
  Expected<word, ServeErr> DestroySession(SessionId session);

  Expected<RequestId, ServeErr> Submit(SessionId session, word arg);
  // nullptr while the request is still queued/executing.
  const RequestResult* Poll(RequestId request) const;
  // Pumps the scheduler until the request completes.
  Expected<RequestResult, ServeErr> Wait(RequestId request);

  // Executes one scheduling round (one session's coalesced batch); returns
  // false when the queue is empty.
  bool PumpOne();
  void Drain();

  size_t queue_depth() const { return queue_.size(); }
  // Secure pages currently charged against the budget by built enclaves.
  word resident_pages() const { return resident_pages_; }
  bool session_built(SessionId session) const;
  const ServerStats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  os::World& world() { return world_; }

  // komodo-metrics-v1 document: monitor counters + per-call stats from the
  // world's tracer (zero unless tracing is enabled) plus a "serve" section
  // with the queue/eviction counters and request-latency histogram.
  std::string ExportMetrics() const;
  bool WriteMetrics(const std::string& path) const;

 private:
  struct Session {
    std::string program;
    const CatalogEntry* entry = nullptr;
    bool built = false;
    os::EnclaveHandle enclave;
    word shared_pgnr = 0;      // allocated once; survives rebuilds
    uint64_t last_used = 0;    // LRU clock (scheduling rounds)
    uint64_t builds = 0;
  };

  struct Pending {
    RequestId id;
    SessionId session;
    word arg;
    uint64_t submit_cycles;
  };

  static Monitor::Config MonitorConfigFor(const Config& config);
  // Evicts LRU-idle built sessions (never `sid` itself) until the enclave
  // fits the budget, then builds. kSuccess or the first monitor error.
  KomErr EnsureBuilt(SessionId sid, Session& s);
  void Evict(Session& s);
  void ExecuteRound(SessionId sid, Session& s, std::vector<Pending>& batch);
  void Complete(const Pending& p, word value);
  void Fail(const Pending& p, RequestFailure failure, word value, KomErr err);

  ProgramCatalog catalog_;
  Config config_;
  os::World world_;
  std::map<SessionId, Session> sessions_;
  std::deque<Pending> queue_;
  std::map<RequestId, RequestResult> done_;
  SessionId next_session_ = 1;
  RequestId next_request_ = 1;
  uint64_t round_clock_ = 0;
  word resident_pages_ = 0;
  ServerStats stats_;
};

}  // namespace komodo::serve

#endif  // SRC_SERVE_SERVER_H_
