#include "src/serve/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/obs/json.h"

namespace komodo::serve {

namespace {

// Secure-page footprint of a catalog enclave (addrspace + L1 + one L2 +
// thread + code/data/stack pages), used to pre-charge the budget before the
// actual handle exists. All catalog programs fit the conventional layout.
constexpr word kEnclavePages = 7;

}  // namespace

const char* ServeErrName(ServeErr e) {
  switch (e) {
    case ServeErr::kNone: return "none";
    case ServeErr::kUnknownProgram: return "unknown-program";
    case ServeErr::kUnknownSession: return "unknown-session";
    case ServeErr::kUnknownRequest: return "unknown-request";
    case ServeErr::kQueueFull: return "queue-full";
  }
  return "?";
}

const char* RequestFailureName(RequestFailure f) {
  switch (f) {
    case RequestFailure::kNone: return "none";
    case RequestFailure::kTimeout: return "timeout";
    case RequestFailure::kEnclaveFault: return "enclave-fault";
    case RequestFailure::kMonitorDenied: return "monitor-denied";
    case RequestFailure::kBuildFailed: return "build-failed";
    case RequestFailure::kSessionDestroyed: return "session-destroyed";
  }
  return "?";
}

Monitor::Config Server::MonitorConfigFor(const Config& config) {
  Monitor::Config mc;
  mc.max_enclave_steps = config.steps_per_slice;
  mc.opt_skip_redundant_tlb_flush = config.monitor_fast_paths;
  mc.opt_lazy_banked_regs = config.monitor_fast_paths;
  return mc;
}

Server::Server(ProgramCatalog catalog, const Config& config)
    : catalog_(std::move(catalog)),
      config_(config),
      world_(config.nsecure_pages, MonitorConfigFor(config)) {}

Expected<SessionId, ServeErr> Server::CreateSession(const std::string& program) {
  const CatalogEntry* entry = catalog_.Find(program);
  if (entry == nullptr) {
    return ServeErr::kUnknownProgram;
  }
  const SessionId sid = next_session_++;
  Session s;
  s.program = program;
  s.entry = entry;
  s.shared_pgnr = world_.os.AllocInsecurePage();
  sessions_.emplace(sid, std::move(s));
  ++stats_.sessions_created;
  return sid;
}

Expected<word, ServeErr> Server::DestroySession(SessionId session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return ServeErr::kUnknownSession;
  }
  Session& s = it->second;
  word dropped = 0;
  std::deque<Pending> rest;
  for (const Pending& p : queue_) {
    if (p.session == session) {
      Fail(p, RequestFailure::kSessionDestroyed, 0, KomErr::kSuccess);
      ++dropped;
    } else {
      rest.push_back(p);
    }
  }
  queue_ = std::move(rest);
  if (s.built) {
    resident_pages_ -= s.enclave.SecurePageCount();
    world_.os.DestroyEnclave(s.enclave);
  }
  world_.os.FreeInsecurePage(s.shared_pgnr);
  sessions_.erase(it);
  ++stats_.sessions_destroyed;
  return dropped;
}

Expected<RequestId, ServeErr> Server::Submit(SessionId session, word arg) {
  if (sessions_.find(session) == sessions_.end()) {
    return ServeErr::kUnknownSession;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.queue_full_rejections;
    return ServeErr::kQueueFull;
  }
  const RequestId rid = next_request_++;
  queue_.push_back({rid, session, arg, world_.machine.cycles.total()});
  ++stats_.requests_submitted;
  stats_.queue_depth_hwm = std::max<uint64_t>(stats_.queue_depth_hwm, queue_.size());
  return rid;
}

const RequestResult* Server::Poll(RequestId request) const {
  const auto it = done_.find(request);
  return it == done_.end() ? nullptr : &it->second;
}

Expected<RequestResult, ServeErr> Server::Wait(RequestId request) {
  while (true) {
    if (const RequestResult* r = Poll(request)) {
      return *r;
    }
    const bool queued = std::any_of(queue_.begin(), queue_.end(),
                                    [&](const Pending& p) { return p.id == request; });
    if (!queued) {
      return ServeErr::kUnknownRequest;
    }
    PumpOne();
  }
}

bool Server::session_built(SessionId session) const {
  const auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.built;
}

void Server::Evict(Session& s) {
  resident_pages_ -= s.enclave.SecurePageCount();
  world_.os.DestroyEnclave(s.enclave);
  s.enclave = os::EnclaveHandle{};
  s.built = false;
}

KomErr Server::EnsureBuilt(SessionId sid, Session& s) {
  if (s.built) {
    return KomErr::kSuccess;
  }
  // LRU-evict idle built sessions until the new enclave fits the budget.
  while (resident_pages_ + kEnclavePages > config_.secure_page_budget) {
    SessionId victim = 0;
    uint64_t oldest = ~0ull;
    for (auto& [other_id, other] : sessions_) {
      if (other_id != sid && other.built && other.last_used < oldest) {
        oldest = other.last_used;
        victim = other_id;
      }
    }
    if (victim == 0) {
      // Nothing left to evict: the budget cannot fit even this one enclave.
      return KomErr::kInvalidArgument;
    }
    Evict(sessions_.at(victim));
    ++stats_.evictions;
  }
  auto built = world_.os.NewEnclave().Code(s.entry->code).SharedPage(s.shared_pgnr).Build();
  if (!built.ok()) {
    return built.error();
  }
  s.enclave = *std::move(built);
  s.built = true;
  resident_pages_ += s.enclave.SecurePageCount();
  ++s.builds;
  if (s.builds > 1) {
    ++stats_.rebuilds;
  }
  return KomErr::kSuccess;
}

void Server::Complete(const Pending& p, word value) {
  RequestResult r;
  r.ok = true;
  r.value = value;
  r.latency_cycles = world_.machine.cycles.total() - p.submit_cycles;
  stats_.request_latency_cycles.Add(r.latency_cycles);
  ++stats_.requests_completed;
  done_.emplace(p.id, r);
}

void Server::Fail(const Pending& p, RequestFailure failure, word value, KomErr err) {
  RequestResult r;
  r.ok = false;
  r.failure = failure;
  r.value = value;
  r.err = err;
  r.latency_cycles = world_.machine.cycles.total() - p.submit_cycles;
  ++stats_.requests_failed;
  done_.emplace(p.id, r);
}

void Server::ExecuteRound(SessionId sid, Session& s, std::vector<Pending>& batch) {
  const KomErr build_err = EnsureBuilt(sid, s);
  if (build_err != KomErr::kSuccess) {
    for (const Pending& p : batch) {
      Fail(p, RequestFailure::kBuildFailed, 0, build_err);
    }
    return;
  }

  auto& os = world_.os;
  os::EnterResult r;
  if (s.entry->batch_abi) {
    const word n = static_cast<word>(batch.size());
    os.WriteInsecure(s.shared_pgnr, 0, n);
    for (word i = 0; i < n; ++i) {
      os.WriteInsecure(s.shared_pgnr, 1 + i, batch[i].arg);
    }
    r = os.Enter(s.enclave.thread);
  } else {
    r = os.Enter(s.enclave.thread, batch[0].arg);
  }
  ++stats_.enters;
  ++stats_.world_switches;

  // `slices` counts execution slices already consumed, and the initial Enter
  // is the first one — so timeout_slices is the *total* slice budget, not a
  // resume count. At the boundary, timeout_slices=1 means one Enter and zero
  // Resumes: a request still interrupted after its first slice times out
  // immediately. (Audited against an off-by-one suspicion: the accounting is
  // correct; the boundary test pins it.)
  word slices = 1;
  while (r.interrupted()) {
    if (slices >= config_.timeout_slices) {
      // The thread is wedged mid-run; destroy the enclave so the session can
      // be rebuilt fresh on its next request.
      for (const Pending& p : batch) {
        Fail(p, RequestFailure::kTimeout, 0, KomErr::kInterrupted);
      }
      Evict(s);
      return;
    }
    r = os.Resume(s.enclave.thread);
    ++stats_.resumes;
    ++stats_.world_switches;
    ++slices;
  }

  if (r.exited()) {
    for (word i = 0; i < static_cast<word>(batch.size()); ++i) {
      const word value = s.entry->batch_abi ? os.ReadInsecure(s.shared_pgnr, 33 + i)
                                            : r.payload;
      Complete(batch[i], value);
    }
  } else if (r.faulted()) {
    for (const Pending& p : batch) {
      Fail(p, RequestFailure::kEnclaveFault, r.payload, r.err);
    }
  } else {
    for (const Pending& p : batch) {
      Fail(p, RequestFailure::kMonitorDenied, r.payload, r.err);
    }
  }
}

bool Server::PumpOne() {
  if (queue_.empty()) {
    return false;
  }
  const SessionId sid = queue_.front().session;
  Session& s = sessions_.at(sid);
  const size_t max_batch =
      (config_.batching && s.entry->batch_abi) ? static_cast<size_t>(kServeBatchMax) : 1;

  std::vector<Pending> batch;
  std::deque<Pending> rest;
  for (const Pending& p : queue_) {
    if (p.session == sid && batch.size() < max_batch) {
      batch.push_back(p);
    } else {
      rest.push_back(p);
    }
  }
  queue_ = std::move(rest);

  s.last_used = ++round_clock_;
  ++stats_.batches;
  stats_.batched_requests += batch.size();
  stats_.batch_size.Add(batch.size());
  ExecuteRound(sid, s, batch);
  return true;
}

void Server::Drain() {
  while (PumpOne()) {
  }
}

std::string Server::ExportMetrics() const {
  const obs::Observability& obs = world_.monitor.obs();
  std::string out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.KV("schema", "komodo-metrics-v1");
  w.Key("counters");
  obs::WriteCountersJson(w, obs.counters());
  w.Key("smc");
  obs::WriteCallStatsJson(w, obs.smc_stats());
  w.Key("svc");
  obs::WriteCallStatsJson(w, obs.svc_stats());
  w.Key("serve");
  w.BeginObject();
  w.KV("sessions_created", stats_.sessions_created);
  w.KV("sessions_destroyed", stats_.sessions_destroyed);
  w.KV("requests_submitted", stats_.requests_submitted);
  w.KV("requests_completed", stats_.requests_completed);
  w.KV("requests_failed", stats_.requests_failed);
  w.KV("queue_full_rejections", stats_.queue_full_rejections);
  w.KV("queue_depth_hwm", stats_.queue_depth_hwm);
  w.KV("enters", stats_.enters);
  w.KV("resumes", stats_.resumes);
  w.KV("world_switches", stats_.world_switches);
  w.KV("batches", stats_.batches);
  w.KV("batched_requests", stats_.batched_requests);
  w.KV("evictions", stats_.evictions);
  w.KV("rebuilds", stats_.rebuilds);
  w.KV("resident_pages", static_cast<uint64_t>(resident_pages_));
  w.Key("request_latency_cycles");
  obs::WriteHistogramJson(w, stats_.request_latency_cycles);
  w.Key("batch_size");
  obs::WriteHistogramJson(w, stats_.batch_size);
  w.EndObject();
  w.EndObject();
  return out;
}

bool Server::WriteMetrics(const std::string& path) const {
  const std::string content = ExportMetrics();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  return n == content.size() && rc == 0;
}

}  // namespace komodo::serve
