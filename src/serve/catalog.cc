#include "src/serve/catalog.h"

#include <utility>

#include "src/enclave/programs.h"

namespace komodo::serve {

void ProgramCatalog::Register(const std::string& name, CatalogEntry entry) {
  entries_[name] = std::move(entry);
}

const CatalogEntry* ProgramCatalog::Find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> ProgramCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

ProgramCatalog DefaultCatalog() {
  ProgramCatalog catalog;
  catalog.Register("counter", {enclave::CounterBatchProgram(), /*batch_abi=*/true});
  catalog.Register("echo", {enclave::EchoBatchProgram(), /*batch_abi=*/true});
  catalog.Register("add_two", {enclave::AddTwoProgram(), /*batch_abi=*/false});
  catalog.Register("spin", {enclave::SpinProgram(), /*batch_abi=*/false});
  return catalog;
}

}  // namespace komodo::serve
