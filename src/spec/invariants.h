// PageDB validity invariants (§5.2): the consistency properties the paper
// proves every SMC and SVC preserves. The property tests assert these after
// every call in randomized traces.
#ifndef SRC_SPEC_INVARIANTS_H_
#define SRC_SPEC_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/spec/abstract_state.h"

namespace komodo::spec {

// Returns the list of violated invariants (empty = valid). Each entry is a
// human-readable description naming the offending page.
std::vector<std::string> PageDbViolations(const PageDb& d);

inline bool ValidPageDb(const PageDb& d) { return PageDbViolations(d).empty(); }

}  // namespace komodo::spec

#endif  // SRC_SPEC_INVARIANTS_H_
