// Pure-functional specification of the Komodo monitor calls (§5.2).
//
// Each management SMC and each memory-management SVC is specified as a
// function from an input PageDb and arguments to an error code and resulting
// PageDb — exactly the structure of the paper's Dafny spec, where the
// SMC-handler predicate relates states before and after. Enter/Resume involve
// user-mode execution and are specified separately as pre/post predicates
// (see the refinement tests).
#ifndef SRC_SPEC_SPEC_CALLS_H_
#define SRC_SPEC_SPEC_CALLS_H_

#include <array>

#include "src/spec/abstract_state.h"

namespace komodo::spec {

struct Result {
  word err;
  PageDb db;
};

// --- SMCs ------------------------------------------------------------------------
// Query/GetPhysPages are pure reads: the spec is the identity on the PageDb.
Result SpecQuery(PageDb d);
Result SpecGetPhysPages(PageDb d);
Result SpecInitAddrspace(PageDb d, PageNr as_page, PageNr l1pt_page);
Result SpecInitThread(PageDb d, PageNr as_page, PageNr disp_page, word entrypoint);
Result SpecInitL2Table(PageDb d, PageNr as_page, PageNr l2pt_page, word l1index);
// `insecure_ok` abstracts the machine-level validity of the source page
// (inside insecure RAM, overlapping neither monitor nor secure region);
// `contents` is that page's data at call time.
Result SpecMapSecure(PageDb d, PageNr as_page, PageNr data_page, word mapping, bool insecure_ok,
                     const std::array<word, arm::kWordsPerPage>& contents);
Result SpecAllocSpare(PageDb d, PageNr as_page, PageNr spare_page);
Result SpecMapInsecure(PageDb d, PageNr as_page, word mapping, bool insecure_ok,
                       word insecure_pgnr);
Result SpecRemove(PageDb d, PageNr page);
Result SpecFinalise(PageDb d, PageNr as_page);
Result SpecStop(PageDb d, PageNr as_page);
// Enter/Resume guards: these specify the validation order and error codes
// only. On success, user-mode execution havocs machine state (§5.1) — the
// entered-flag and saved-context updates belong to that havoc, so the
// success relation here is the identity on the pre-state PageDb.
Result SpecEnter(PageDb d, PageNr disp_page);
Result SpecResume(PageDb d, PageNr disp_page);

// --- Execution/crypto SVCs (guard-only specs) ---------------------------------------
// Exit and GetRandom never touch the PageDb; Attest/Verify read the
// measurement and attestation key but mutate nothing (their user-memory
// argument faults are part of the execution havoc, not the PageDb relation).
Result SpecSvcExit(PageDb d);
Result SpecSvcGetRandom(PageDb d);
Result SpecSvcAttest(PageDb d, PageNr as_page);
Result SpecSvcVerify(PageDb d, PageNr as_page);

// --- Dynamic-memory SVCs (issued by the enclave owning `as_page`) -------------------
Result SpecSvcInitL2Table(PageDb d, PageNr as_page, PageNr spare_page, word l1index);
Result SpecSvcMapData(PageDb d, PageNr as_page, PageNr spare_page, word mapping);
Result SpecSvcUnmapData(PageDb d, PageNr as_page, PageNr data_page, word mapping);

// The enclave measurement a conforming implementation must produce for a
// given construction trace is fully determined by these records; exposed so
// tests can predict measurements independently.
crypto::DigestWords SpecMeasurementAfterFinalise(const AddrspacePage& as);

}  // namespace komodo::spec

#endif  // SRC_SPEC_SPEC_CALLS_H_
