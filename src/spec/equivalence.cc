#include "src/spec/equivalence.h"

namespace komodo::spec {

namespace {

std::string PageStr(PageNr n) { return "page " + std::to_string(n); }

}  // namespace

bool WeakEquivPage(const PageDbEntry& e1, const PageDbEntry& e2) {
  if (e1.type() != e2.type()) {
    return false;
  }
  switch (e1.type()) {
    case PageType::kDataPage:
    case PageType::kSparePage:
    case PageType::kFree:
      return true;  // contents unobservable from outside
    case PageType::kDispatcher:
      // Only the entered flag is observable (the OS sees Resume/Enter succeed
      // or fail); the saved context is enclave-private.
      return e1.As<DispatcherPage>().entered == e2.As<DispatcherPage>().entered &&
             e1.owner == e2.owner;
    case PageType::kAddrspace:
    case PageType::kL1PTable:
    case PageType::kL2PTable:
      return e1 == e2;
  }
  return false;
}

std::vector<std::string> EncEquivViolations(const PageDb& d1, const PageDb& d2, PageNr enc) {
  std::vector<std::string> out;
  if (d1.NPages() != d2.NPages()) {
    out.push_back("page counts differ");
    return out;
  }
  for (PageNr n = 0; n < d1.NPages(); ++n) {
    // F(d1) = F(d2): the free sets agree.
    if (d1[n].IsFree() != d2[n].IsFree()) {
      out.push_back(PageStr(n) + ": free in one state only");
      continue;
    }
    const bool in_a1 = !d1[n].IsFree() && enc != kInvalidPage && d1[n].owner == enc;
    const bool in_a2 = !d2[n].IsFree() && enc != kInvalidPage && d2[n].owner == enc;
    // A_enc(d1) = A_enc(d2): the observer owns the same pages.
    if (in_a1 != in_a2) {
      out.push_back(PageStr(n) + ": owned by observer in one state only");
      continue;
    }
    if (in_a1) {
      // Owned pages must be fully equal.
      if (!(d1[n] == d2[n])) {
        out.push_back(PageStr(n) + ": observer-owned page differs");
      }
    } else {
      // Outside pages must be weakly equal (Definition 1).
      if (!WeakEquivPage(d1[n], d2[n])) {
        out.push_back(PageStr(n) + ": weak equivalence violated");
      }
    }
  }
  return out;
}

std::vector<std::string> AdvEquivViolations(const arm::MachineState& m1, const PageDb& d1,
                                            const arm::MachineState& m2, const PageDb& d2,
                                            PageNr enc) {
  std::vector<std::string> out = EncEquivViolations(d1, d2, enc);

  for (int i = 0; i < 13; ++i) {
    if (m1.r[i] != m2.r[i]) {
      out.push_back("r" + std::to_string(i) + " differs");
    }
  }
  if (!(m1.cpsr == m2.cpsr)) {
    out.push_back("cpsr differs");
  }
  for (int mi = 0; mi < arm::kNumModes; ++mi) {
    const arm::Mode mode = static_cast<arm::Mode>(mi);
    if (mode == arm::Mode::kMonitor) {
      continue;  // monitor bank is secure state, invisible to the OS
    }
    if (m1.sp_banked[mi] != m2.sp_banked[mi]) {
      out.push_back(std::string("sp_") + arm::ModeName(mode) + " differs");
    }
    if (m1.lr_banked[mi] != m2.lr_banked[mi]) {
      out.push_back(std::string("lr_") + arm::ModeName(mode) + " differs");
    }
    if (mode != arm::Mode::kUser && !(m1.spsr_banked[mi] == m2.spsr_banked[mi])) {
      out.push_back(std::string("spsr_") + arm::ModeName(mode) + " differs");
    }
  }

  // All of insecure memory.
  if (m1.mem.insecure_words() != m2.mem.insecure_words()) {
    const auto& w1 = m1.mem.insecure_words();
    const auto& w2 = m2.mem.insecure_words();
    for (size_t i = 0; i < w1.size(); ++i) {
      if (w1[i] != w2[i]) {
        out.push_back("insecure memory differs at word " + std::to_string(i));
        break;  // one witness is enough
      }
    }
  }
  return out;
}

}  // namespace komodo::spec
