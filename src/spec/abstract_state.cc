#include "src/spec/abstract_state.h"

namespace komodo::spec {

std::optional<std::pair<PageNr, word>> SpecL2Slot(const PageDb& d, PageNr as_page, word mapping) {
  const arm::vaddr va = MappingVa(mapping);
  const AddrspacePage& as = d[as_page].As<AddrspacePage>();
  const L1PTablePage& l1 = d[as.l1pt_page].As<L1PTablePage>();
  const word l1_index = va >> 22;  // 4 MB per L2PTable page
  if (!l1.l2_tables[l1_index].has_value()) {
    return std::nullopt;
  }
  return std::make_pair(*l1.l2_tables[l1_index], (va >> 12) & 0x3ff);
}

}  // namespace komodo::spec
