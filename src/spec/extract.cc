#include "src/spec/extract.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/arm/page_table.h"
#include "src/core/pagedb.h"

namespace komodo::spec {

namespace {

word ReadGlobal(const arm::MachineState& m, word offset) {
  return m.mem.Read(arm::kMonitorBase + offset);
}

word ReadDbField(const arm::MachineState& m, PageNr n, word field) {
  return m.mem.Read(arm::kMonitorBase + kPageDbOffset + n * kPageDbEntryWords * arm::kWordSize +
                    field * arm::kWordSize);
}

word ReadPageWord(const arm::MachineState& m, PageNr page, word word_offset) {
  return m.mem.Read(PagePaddr(page) + word_offset * arm::kWordSize);
}

std::string HexWord(word w) {
  std::ostringstream out;
  out << "0x" << std::hex << w;
  return out.str();
}

// Decode context: carries the machine, the world size and the first
// structural failure. Every helper bails out cheaply once an error is
// recorded; the caller checks `failed` after each page.
struct Extraction {
  const arm::MachineState& m;
  word npages;
  bool failed = false;
  ExtractError err;

  void Fail(PageNr page, std::string detail) {
    if (!failed) {
      failed = true;
      err = ExtractError{page, std::move(detail)};
    }
  }

  // Maps a physical address inside the secure region back to its page number;
  // fails if the address lies outside the world's secure pages.
  bool SecurePageNrOf(paddr addr, PageNr decoding, const char* what, PageNr* out) {
    if (addr < arm::kSecurePagesBase ||
        addr >= arm::kSecurePagesBase + static_cast<paddr>(npages) * arm::kPageSize) {
      Fail(decoding, std::string(what) + " target " + HexWord(addr) +
                         " lies outside the secure region");
      return false;
    }
    *out = (addr - arm::kSecurePagesBase) / arm::kPageSize;
    return true;
  }
};

AddrspacePage ExtractAddrspace(const Extraction& x, PageNr page) {
  AddrspacePage as;
  as.l1pt_page = ReadPageWord(x.m, page, kAsL1PtPage);
  as.refcount = ReadPageWord(x.m, page, kAsRefcount);
  as.state = static_cast<AddrspaceState>(ReadPageWord(x.m, page, kAsState));
  for (word i = 0; i < 8; ++i) {
    as.measurement[i] = ReadPageWord(x.m, page, kAsMeasurementDigest + i);
  }
  for (word i = 0; i < crypto::Sha256::kExportWords; ++i) {
    as.measurement_stream[i] = ReadPageWord(x.m, page, kAsMeasurementStream + i);
  }
  return as;
}

DispatcherPage ExtractDispatcher(const Extraction& x, PageNr page) {
  DispatcherPage disp;
  disp.entered = ReadPageWord(x.m, page, kDispEntered) != 0;
  disp.entrypoint = ReadPageWord(x.m, page, kDispEntrypoint);
  for (word i = 0; i < 13; ++i) {
    disp.regs[i] = ReadPageWord(x.m, page, kDispSavedRegs + i);
  }
  disp.sp = ReadPageWord(x.m, page, kDispSavedSp);
  disp.lr = ReadPageWord(x.m, page, kDispSavedLr);
  disp.pc = ReadPageWord(x.m, page, kDispSavedPc);
  disp.psr = ReadPageWord(x.m, page, kDispSavedPsr);
  return disp;
}

L1PTablePage ExtractL1PTable(Extraction& x, PageNr page) {
  L1PTablePage l1;
  for (word group = 0; group < 256; ++group) {
    // The four hardware descriptors of one group must agree: either all
    // faults, or the four quarters of one L2PTable page.
    const word desc0 = x.m.mem.Read(PagePaddr(page) + group * 4 * arm::kWordSize);
    if (desc0 == arm::kL1FaultDesc) {
      continue;
    }
    if (!arm::IsL1PageTableDesc(desc0)) {
      x.Fail(page, "L1 slot " + std::to_string(group) + ": descriptor " + HexWord(desc0) +
                       " is neither fault nor page-table");
      return l1;
    }
    const paddr base = arm::L1DescTableBase(desc0);
    if (!arm::IsPageAligned(base)) {
      x.Fail(page, "L1 slot " + std::to_string(group) + ": table base " + HexWord(base) +
                       " is not page-aligned");
      return l1;
    }
    PageNr l2 = kInvalidPage;
    if (!x.SecurePageNrOf(base, page, "L1 descriptor", &l2)) {
      return l1;
    }
    l1.l2_tables[group] = l2;
  }
  return l1;
}

L2PTablePage ExtractL2PTable(Extraction& x, PageNr page) {
  L2PTablePage l2;
  for (word i = 0; i < 1024; ++i) {
    const word desc = x.m.mem.Read(PagePaddr(page) + i * arm::kWordSize);
    if (desc == arm::kL2FaultDesc) {
      continue;
    }
    if (!arm::IsL2SmallPageDesc(desc)) {
      x.Fail(page, "L2 slot " + std::to_string(i) + ": descriptor " + HexWord(desc) +
                       " is neither fault nor small-page");
      return l2;
    }
    const arm::L2Perms perms = arm::L2DescPerms(desc);
    const paddr base = arm::L2DescPageBase(desc);
    if (perms.ns) {
      l2.entries[i] = InsecureMapping{base / arm::kPageSize, perms.user_write};
    } else {
      PageNr data = kInvalidPage;
      if (!x.SecurePageNrOf(base, page, "L2 descriptor", &data)) {
        return l2;
      }
      l2.entries[i] = SecureMapping{data, perms.user_write, perms.executable};
    }
  }
  return l2;
}

DataPage ExtractData(const Extraction& x, PageNr page) {
  DataPage data;
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    data.contents[i] = ReadPageWord(x.m, page, i);
  }
  return data;
}

}  // namespace

std::optional<PageDb> TryExtractPageDb(const arm::MachineState& m, ExtractError* err) {
  Extraction x{m, ReadGlobal(m, kGlobalNPages)};
  PageDb d(x.npages);
  for (PageNr n = 0; n < x.npages && !x.failed; ++n) {
    const word type_word = ReadDbField(m, n, 0);
    const PageNr owner = ReadDbField(m, n, 1);
    PageDbEntry entry;
    entry.owner = owner;
    switch (static_cast<PageType>(type_word)) {
      case PageType::kFree:
        entry.page = FreePage{};
        break;
      case PageType::kAddrspace:
        entry.page = ExtractAddrspace(x, n);
        break;
      case PageType::kDispatcher:
        entry.page = ExtractDispatcher(x, n);
        break;
      case PageType::kL1PTable:
        entry.page = ExtractL1PTable(x, n);
        break;
      case PageType::kL2PTable:
        entry.page = ExtractL2PTable(x, n);
        break;
      case PageType::kDataPage:
        entry.page = ExtractData(x, n);
        break;
      case PageType::kSparePage:
        entry.page = SparePage{};
        break;
      default:
        x.Fail(n, "PageDB type word " + HexWord(type_word) + " names no page type");
        break;
    }
    d[n] = std::move(entry);
  }
  if (x.failed) {
    if (err != nullptr) {
      *err = std::move(x.err);
    }
    return std::nullopt;
  }
  return d;
}

PageDb ExtractPageDb(const arm::MachineState& m) {
  ExtractError err;
  std::optional<PageDb> d = TryExtractPageDb(m, &err);
  if (!d.has_value()) {
    std::fprintf(stderr, "komodo: spec extraction failed at page %u: %s\n",
                 static_cast<unsigned>(err.page), err.detail.c_str());
    std::abort();
  }
  return std::move(*d);
}

std::array<word, arm::kWordsPerPage> ExtractPageContents(const arm::MachineState& m, PageNr page) {
  std::array<word, arm::kWordsPerPage> out;
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    out[i] = ReadPageWord(m, page, i);
  }
  return out;
}

std::array<word, arm::kWordsPerPage> ReadInsecurePage(const arm::MachineState& m,
                                                      word insecure_pgnr) {
  std::array<word, arm::kWordsPerPage> out;
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    out[i] = m.mem.Read(insecure_pgnr * arm::kPageSize + i * arm::kWordSize);
  }
  return out;
}

}  // namespace komodo::spec
