#include "src/spec/extract.h"

#include <cassert>

#include "src/arm/page_table.h"
#include "src/core/pagedb.h"

namespace komodo::spec {

namespace {

word ReadGlobal(const arm::MachineState& m, word offset) {
  return m.mem.Read(arm::kMonitorBase + offset);
}

word ReadDbField(const arm::MachineState& m, PageNr n, word field) {
  return m.mem.Read(arm::kMonitorBase + kPageDbOffset + n * kPageDbEntryWords * arm::kWordSize +
                    field * arm::kWordSize);
}

word ReadPageWord(const arm::MachineState& m, PageNr page, word word_offset) {
  return m.mem.Read(PagePaddr(page) + word_offset * arm::kWordSize);
}

// Maps a physical address inside the secure region back to its page number.
PageNr SecurePageNrOf(paddr addr) {
  assert(addr >= arm::kSecurePagesBase);
  return (addr - arm::kSecurePagesBase) / arm::kPageSize;
}

AddrspacePage ExtractAddrspace(const arm::MachineState& m, PageNr page) {
  AddrspacePage as;
  as.l1pt_page = ReadPageWord(m, page, kAsL1PtPage);
  as.refcount = ReadPageWord(m, page, kAsRefcount);
  as.state = static_cast<AddrspaceState>(ReadPageWord(m, page, kAsState));
  for (word i = 0; i < 8; ++i) {
    as.measurement[i] = ReadPageWord(m, page, kAsMeasurementDigest + i);
  }
  for (word i = 0; i < crypto::Sha256::kExportWords; ++i) {
    as.measurement_stream[i] = ReadPageWord(m, page, kAsMeasurementStream + i);
  }
  return as;
}

DispatcherPage ExtractDispatcher(const arm::MachineState& m, PageNr page) {
  DispatcherPage disp;
  disp.entered = ReadPageWord(m, page, kDispEntered) != 0;
  disp.entrypoint = ReadPageWord(m, page, kDispEntrypoint);
  for (word i = 0; i < 13; ++i) {
    disp.regs[i] = ReadPageWord(m, page, kDispSavedRegs + i);
  }
  disp.sp = ReadPageWord(m, page, kDispSavedSp);
  disp.lr = ReadPageWord(m, page, kDispSavedLr);
  disp.pc = ReadPageWord(m, page, kDispSavedPc);
  disp.psr = ReadPageWord(m, page, kDispSavedPsr);
  return disp;
}

L1PTablePage ExtractL1PTable(const arm::MachineState& m, PageNr page) {
  L1PTablePage l1;
  for (word group = 0; group < 256; ++group) {
    // The four hardware descriptors of one group must agree: either all
    // faults, or the four quarters of one L2PTable page.
    const word desc0 = m.mem.Read(PagePaddr(page) + group * 4 * arm::kWordSize);
    if (desc0 == arm::kL1FaultDesc) {
      continue;
    }
    assert(arm::IsL1PageTableDesc(desc0));
    const paddr base = arm::L1DescTableBase(desc0);
    assert(arm::IsPageAligned(base));
    l1.l2_tables[group] = SecurePageNrOf(base);
  }
  return l1;
}

L2PTablePage ExtractL2PTable(const arm::MachineState& m, PageNr page) {
  L2PTablePage l2;
  for (word i = 0; i < 1024; ++i) {
    const word desc = m.mem.Read(PagePaddr(page) + i * arm::kWordSize);
    if (desc == arm::kL2FaultDesc) {
      continue;
    }
    assert(arm::IsL2SmallPageDesc(desc));
    const arm::L2Perms perms = arm::L2DescPerms(desc);
    const paddr base = arm::L2DescPageBase(desc);
    if (perms.ns) {
      l2.entries[i] = InsecureMapping{base / arm::kPageSize, perms.user_write};
    } else {
      l2.entries[i] = SecureMapping{SecurePageNrOf(base), perms.user_write, perms.executable};
    }
  }
  return l2;
}

DataPage ExtractData(const arm::MachineState& m, PageNr page) {
  DataPage data;
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    data.contents[i] = ReadPageWord(m, page, i);
  }
  return data;
}

}  // namespace

PageDb ExtractPageDb(const arm::MachineState& m) {
  const word npages = ReadGlobal(m, kGlobalNPages);
  PageDb d(npages);
  for (PageNr n = 0; n < npages; ++n) {
    const PageType type = static_cast<PageType>(ReadDbField(m, n, 0));
    const PageNr owner = ReadDbField(m, n, 1);
    PageDbEntry entry;
    entry.owner = owner;
    switch (type) {
      case PageType::kFree:
        entry.page = FreePage{};
        break;
      case PageType::kAddrspace:
        entry.page = ExtractAddrspace(m, n);
        break;
      case PageType::kDispatcher:
        entry.page = ExtractDispatcher(m, n);
        break;
      case PageType::kL1PTable:
        entry.page = ExtractL1PTable(m, n);
        break;
      case PageType::kL2PTable:
        entry.page = ExtractL2PTable(m, n);
        break;
      case PageType::kDataPage:
        entry.page = ExtractData(m, n);
        break;
      case PageType::kSparePage:
        entry.page = SparePage{};
        break;
    }
    d[n] = std::move(entry);
  }
  return d;
}

std::array<word, arm::kWordsPerPage> ExtractPageContents(const arm::MachineState& m, PageNr page) {
  std::array<word, arm::kWordsPerPage> out;
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    out[i] = ReadPageWord(m, page, i);
  }
  return out;
}

std::array<word, arm::kWordsPerPage> ReadInsecurePage(const arm::MachineState& m,
                                                      word insecure_pgnr) {
  std::array<word, arm::kWordsPerPage> out;
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    out[i] = m.mem.Read(insecure_pgnr * arm::kPageSize + i * arm::kWordSize);
  }
  return out;
}

}  // namespace komodo::spec
