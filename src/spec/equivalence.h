// Observational-equivalence relations from the noninterference proofs (§6.1):
// weak page equivalence =enc (Definition 1), enclave observational
// equivalence ≈enc (Definition 2), and the OS-adversary relation ≈adv, which
// additionally compares general-purpose registers, non-monitor banked
// registers, and all of insecure memory.
#ifndef SRC_SPEC_EQUIVALENCE_H_
#define SRC_SPEC_EQUIVALENCE_H_

#include <string>
#include <vector>

#include "src/arm/machine.h"
#include "src/spec/abstract_state.h"

namespace komodo::spec {

// Definition 1: pages outside the observer's address space look the same if
// they have the same type (data/spare), the same type and entered flag
// (dispatcher), or are fully equal (page tables and address spaces).
bool WeakEquivPage(const PageDbEntry& e1, const PageDbEntry& e2);

// Definition 2: ≈enc for observer address space `enc`. Returns violations
// (empty = related).
std::vector<std::string> EncEquivViolations(const PageDb& d1, const PageDb& d2, PageNr enc);
inline bool ObsEquivEnc(const PageDb& d1, const PageDb& d2, PageNr enc) {
  return EncEquivViolations(d1, d2, enc).empty();
}

// ≈adv: the OS colluding with enclave `enc` (pass kInvalidPage for an OS-only
// adversary, i.e. skip the colluding-enclave clause). Compares, on top of
// ≈enc: r0-r12, banked SP/LR/SPSR of every mode except monitor, CPSR, and the
// full insecure memory.
std::vector<std::string> AdvEquivViolations(const arm::MachineState& m1, const PageDb& d1,
                                            const arm::MachineState& m2, const PageDb& d2,
                                            PageNr enc);
inline bool ObsEquivAdv(const arm::MachineState& m1, const PageDb& d1,
                        const arm::MachineState& m2, const PageDb& d2, PageNr enc) {
  return AdvEquivViolations(m1, d1, m2, d2, enc).empty();
}

}  // namespace komodo::spec

#endif  // SRC_SPEC_EQUIVALENCE_H_
