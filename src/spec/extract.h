// Extraction of the abstract PageDb from the monitor's concrete in-memory
// representation — the refinement relation between implementation and spec.
// The refinement tests require ExtractPageDb(machine after impl call) to
// equal the spec function's output; the implementation keeps no C++ shadow
// state it could cheat with.
#ifndef SRC_SPEC_EXTRACT_H_
#define SRC_SPEC_EXTRACT_H_

#include "src/arm/machine.h"
#include "src/spec/abstract_state.h"

namespace komodo::spec {

// Reads the PageDB region, typed secure pages and hardware page tables out of
// simulated memory and reifies the abstract state. Asserts only structural
// well-formedness needed to decode (e.g. descriptor addresses inside the
// secure region); semantic invariants are checked separately.
PageDb ExtractPageDb(const arm::MachineState& m);

// Extracts the contents of one secure page as words (for data-page checks).
std::array<word, arm::kWordsPerPage> ExtractPageContents(const arm::MachineState& m, PageNr page);

// Reads one insecure physical page as words (spec input for MapSecure).
std::array<word, arm::kWordsPerPage> ReadInsecurePage(const arm::MachineState& m,
                                                      word insecure_pgnr);

}  // namespace komodo::spec

#endif  // SRC_SPEC_EXTRACT_H_
