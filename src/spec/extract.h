// Extraction of the abstract PageDb from the monitor's concrete in-memory
// representation — the refinement relation between implementation and spec.
// The refinement tests require ExtractPageDb(machine after impl call) to
// equal the spec function's output; the implementation keeps no C++ shadow
// state it could cheat with.
#ifndef SRC_SPEC_EXTRACT_H_
#define SRC_SPEC_EXTRACT_H_

#include <optional>
#include <string>

#include "src/arm/machine.h"
#include "src/spec/abstract_state.h"

namespace komodo::spec {

// A structural decode failure: the monitor's in-memory state does not
// represent any abstract PageDb (e.g. a page-table descriptor pointing
// outside the secure region, or a PageDB type word with no variant). A
// correct monitor never produces one; fault injections can.
struct ExtractError {
  PageNr page = kInvalidPage;  // secure page being decoded (kInvalidPage: PageDB header)
  std::string detail;
};

// Reads the PageDB region, typed secure pages and hardware page tables out of
// simulated memory and reifies the abstract state. Returns nullopt (filling
// *err when non-null) if the representation cannot be decoded; semantic
// invariants are checked separately (invariants.h).
std::optional<PageDb> TryExtractPageDb(const arm::MachineState& m, ExtractError* err = nullptr);

// Abort-on-failure wrapper for callers that have already established
// decodability (the refinement and property tests). The differential oracles
// and the model checker use TryExtractPageDb so an injected fault surfaces as
// an oracle failure instead of killing the process.
PageDb ExtractPageDb(const arm::MachineState& m);

// Extracts the contents of one secure page as words (for data-page checks).
std::array<word, arm::kWordsPerPage> ExtractPageContents(const arm::MachineState& m, PageNr page);

// Reads one insecure physical page as words (spec input for MapSecure).
std::array<word, arm::kWordsPerPage> ReadInsecurePage(const arm::MachineState& m,
                                                      word insecure_pgnr);

}  // namespace komodo::spec

#endif  // SRC_SPEC_EXTRACT_H_
