#include "src/spec/invariants.h"

#include <map>
#include <set>

namespace komodo::spec {

namespace {

std::string PageStr(PageNr n) { return "page " + std::to_string(n); }

}  // namespace

std::vector<std::string> PageDbViolations(const PageDb& d) {
  std::vector<std::string> out;
  const auto fail = [&out](const std::string& msg) { out.push_back(msg); };

  std::map<PageNr, word> owned_counts;  // non-addrspace pages per addrspace

  for (PageNr n = 0; n < d.NPages(); ++n) {
    const PageDbEntry& e = d[n];
    switch (e.type()) {
      case PageType::kFree:
        if (e.owner != kInvalidPage) {
          fail(PageStr(n) + ": free page has an owner");
        }
        break;
      case PageType::kAddrspace: {
        if (e.owner != n) {
          fail(PageStr(n) + ": addrspace page must own itself");
        }
        const AddrspacePage& as = e.As<AddrspacePage>();
        // A stopped addrspace may have had its L1 table removed already.
        if (as.state != AddrspaceState::kStopped) {
          if (!d.ValidPageNr(as.l1pt_page) || d[as.l1pt_page].type() != PageType::kL1PTable) {
            fail(PageStr(n) + ": l1pt reference is not an L1 table");
          } else if (d[as.l1pt_page].owner != n) {
            fail(PageStr(n) + ": l1pt owned by a different addrspace");
          }
        }
        break;
      }
      default: {
        if (!IsAddrspace(d, e.owner)) {
          fail(PageStr(n) + ": owner is not a valid addrspace");
        } else {
          owned_counts[e.owner] += 1;
        }
        break;
      }
    }
  }

  // Reference counts: every addrspace's refcount equals the number of
  // non-addrspace pages it owns.
  for (PageNr n = 0; n < d.NPages(); ++n) {
    if (d[n].type() != PageType::kAddrspace) {
      continue;
    }
    const word expected = owned_counts.count(n) ? owned_counts[n] : 0;
    if (d[n].As<AddrspacePage>().refcount != expected) {
      fail(PageStr(n) + ": refcount " + std::to_string(d[n].As<AddrspacePage>().refcount) +
           " != owned pages " + std::to_string(expected));
    }
  }

  // Page-table referential integrity. Stopped address spaces are exempt
  // entirely: their pages may have been removed and even reallocated to other
  // enclaves, and a stopped enclave can never execute again (§5.2).
  std::set<PageNr> l2_seen;  // each L2 table appears in at most one L1 slot
  for (PageNr n = 0; n < d.NPages(); ++n) {
    if (d[n].type() != PageType::kL1PTable) {
      continue;
    }
    const PageNr as_page = d[n].owner;
    const bool stopped = IsAddrspace(d, as_page) &&
                         d[as_page].As<AddrspacePage>().state == AddrspaceState::kStopped;
    if (stopped) {
      continue;
    }
    const L1PTablePage& l1 = d[n].As<L1PTablePage>();
    for (word i = 0; i < l1.l2_tables.size(); ++i) {
      if (!l1.l2_tables[i].has_value()) {
        continue;
      }
      const PageNr l2 = *l1.l2_tables[i];
      if (!d.ValidPageNr(l2)) {
        fail(PageStr(n) + ": L1 slot " + std::to_string(i) + " references invalid page");
        continue;
      }
      if (d[l2].type() != PageType::kL2PTable) {
        fail(PageStr(n) + ": L1 slot " + std::to_string(i) + " references non-L2 " + PageStr(l2));
        continue;
      }
      if (d[l2].owner != as_page) {
        fail(PageStr(n) + ": L1 slot " + std::to_string(i) + " references foreign L2 table");
      }
      if (!l2_seen.insert(l2).second) {
        fail(PageStr(l2) + ": L2 table referenced from multiple L1 slots");
      }
    }
  }

  // Leaf mappings: secure mappings must point at data pages of the same
  // addrspace; each data page is mapped at most once.
  std::set<PageNr> data_mapped;
  for (PageNr n = 0; n < d.NPages(); ++n) {
    if (d[n].type() != PageType::kL2PTable) {
      continue;
    }
    const PageNr as_page = d[n].owner;
    const bool stopped = IsAddrspace(d, as_page) &&
                         d[as_page].As<AddrspacePage>().state == AddrspaceState::kStopped;
    if (stopped) {
      continue;
    }
    const L2PTablePage& l2 = d[n].As<L2PTablePage>();
    for (word i = 0; i < l2.entries.size(); ++i) {
      const SecureMapping* sm = std::get_if<SecureMapping>(&l2.entries[i]);
      if (sm == nullptr) {
        continue;
      }
      if (!d.ValidPageNr(sm->data_page)) {
        fail(PageStr(n) + ": L2 slot " + std::to_string(i) + " references invalid page");
        continue;
      }
      if (d[sm->data_page].type() != PageType::kDataPage) {
        fail(PageStr(n) + ": L2 slot " + std::to_string(i) + " maps non-data " +
             PageStr(sm->data_page));
        continue;
      }
      if (d[sm->data_page].owner != as_page) {
        fail(PageStr(n) + ": L2 slot " + std::to_string(i) + " maps foreign data page");
      }
      if (!data_mapped.insert(sm->data_page).second) {
        fail(PageStr(sm->data_page) + ": data page mapped more than once");
      }
    }
  }

  // Every data page of a non-stopped addrspace is reachable from its page
  // table (data pages only come into being with a mapping).
  for (PageNr n = 0; n < d.NPages(); ++n) {
    if (d[n].type() != PageType::kDataPage) {
      continue;
    }
    const PageNr as_page = d[n].owner;
    if (!IsAddrspace(d, as_page) ||
        d[as_page].As<AddrspacePage>().state == AddrspaceState::kStopped) {
      continue;
    }
    if (!data_mapped.count(n)) {
      fail(PageStr(n) + ": data page not mapped anywhere");
    }
  }

  return out;
}

}  // namespace komodo::spec
