#include "src/spec/spec_calls.h"

namespace komodo::spec {

namespace {

// Validation shared with the implementation (same checks, same order).
std::optional<word> CheckAddrspaceForInit(const PageDb& d, PageNr as_page) {
  if (!IsAddrspace(d, as_page)) {
    return kErrInvalidAddrspace;
  }
  if (d[as_page].As<AddrspacePage>().state != AddrspaceState::kInit) {
    return kErrAlreadyFinal;
  }
  return std::nullopt;
}

void Bump(PageDb& d, PageNr as_page, int delta) {
  AddrspacePage& as = d[as_page].As<AddrspacePage>();
  as.refcount = static_cast<word>(static_cast<int>(as.refcount) + delta);
}

crypto::Sha256 LoadStream(const AddrspacePage& as) {
  crypto::Sha256 s;
  s.Import(as.measurement_stream);
  return s;
}

void StoreStream(AddrspacePage& as, const crypto::Sha256& s) { as.measurement_stream = s.Export(); }

// Checks whether a zeroed L2 table page can be installed at `l1index`; the
// caller only mutates the PageDb once this returns success, so no defensive
// copy of the whole database is needed.
word CheckInstallL2(const PageDb& d, PageNr as_page, word l1index) {
  if (l1index >= 256) {
    return kErrInvalidMapping;
  }
  const PageNr l1pt = d[as_page].As<AddrspacePage>().l1pt_page;
  if (d[l1pt].As<L1PTablePage>().l2_tables[l1index].has_value()) {
    return kErrAddrInUse;
  }
  return kErrSuccess;
}

// Installs a zeroed L2 table page into the L1 slot at `l1index`; the caller
// must have validated with CheckInstallL2 first.
void InstallL2(PageDb& d, PageNr as_page, PageNr l2pt_page, word l1index) {
  const PageNr l1pt = d[as_page].As<AddrspacePage>().l1pt_page;
  d[l1pt].As<L1PTablePage>().l2_tables[l1index] = l2pt_page;
}

// Shared Enter/Resume guard; `resuming` selects which entered-state is the
// error (same checks, same order as the implementation).
std::optional<word> CheckDispatcherForEntry(const PageDb& d, PageNr disp_page, bool resuming) {
  if (!d.ValidPageNr(disp_page) || d[disp_page].type() != PageType::kDispatcher) {
    return kErrInvalidPageNo;
  }
  if (d[d[disp_page].owner].As<AddrspacePage>().state != AddrspaceState::kFinal) {
    return kErrNotFinal;
  }
  const bool entered = d[disp_page].As<DispatcherPage>().entered;
  if (!resuming && entered) {
    return kErrAlreadyEntered;
  }
  if (resuming && !entered) {
    return kErrNotEntered;
  }
  return std::nullopt;
}

}  // namespace

Result SpecQuery(PageDb d) { return {kErrSuccess, std::move(d)}; }

Result SpecGetPhysPages(PageDb d) { return {kErrSuccess, std::move(d)}; }

Result SpecEnter(PageDb d, PageNr disp_page) {
  if (const auto err = CheckDispatcherForEntry(d, disp_page, /*resuming=*/false)) {
    return {*err, std::move(d)};
  }
  return {kErrSuccess, std::move(d)};
}

Result SpecResume(PageDb d, PageNr disp_page) {
  if (const auto err = CheckDispatcherForEntry(d, disp_page, /*resuming=*/true)) {
    return {*err, std::move(d)};
  }
  return {kErrSuccess, std::move(d)};
}

Result SpecSvcExit(PageDb d) { return {kErrSuccess, std::move(d)}; }

Result SpecSvcGetRandom(PageDb d) { return {kErrSuccess, std::move(d)}; }

Result SpecSvcAttest(PageDb d, PageNr as_page) {
  (void)as_page;
  return {kErrSuccess, std::move(d)};
}

Result SpecSvcVerify(PageDb d, PageNr as_page) {
  (void)as_page;
  return {kErrSuccess, std::move(d)};
}

Result SpecInitAddrspace(PageDb d, PageNr as_page, PageNr l1pt_page) {
  if (!d.ValidPageNr(as_page) || !d.ValidPageNr(l1pt_page)) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  if (as_page == l1pt_page) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  if (!d[as_page].IsFree() || !d[l1pt_page].IsFree()) {
    return {kErrPageInUse, std::move(d)};
  }
  AddrspacePage as;
  as.l1pt_page = l1pt_page;
  as.refcount = 1;
  as.state = AddrspaceState::kInit;
  StoreStream(as, crypto::Sha256());
  d[as_page] = PageDbEntry{as_page, as};
  d[l1pt_page] = PageDbEntry{as_page, L1PTablePage{}};
  return {kErrSuccess, std::move(d)};
}

Result SpecInitThread(PageDb d, PageNr as_page, PageNr disp_page, word entrypoint) {
  if (const auto err = CheckAddrspaceForInit(d, as_page)) {
    return {*err, std::move(d)};
  }
  if (!d.ValidPageNr(disp_page)) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  if (!d[disp_page].IsFree()) {
    return {kErrPageInUse, std::move(d)};
  }
  DispatcherPage disp;
  disp.entrypoint = entrypoint;
  d[disp_page] = PageDbEntry{as_page, disp};
  Bump(d, as_page, 1);
  AddrspacePage& as = d[as_page].As<AddrspacePage>();
  crypto::Sha256 stream = LoadStream(as);
  stream.UpdateWordLe(kMeasureInitThread);
  stream.UpdateWordLe(entrypoint);
  StoreStream(as, stream);
  return {kErrSuccess, std::move(d)};
}

Result SpecInitL2Table(PageDb d, PageNr as_page, PageNr l2pt_page, word l1index) {
  if (const auto err = CheckAddrspaceForInit(d, as_page)) {
    return {*err, std::move(d)};
  }
  if (!d.ValidPageNr(l2pt_page)) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  if (!d[l2pt_page].IsFree()) {
    return {kErrPageInUse, std::move(d)};
  }
  if (const word err = CheckInstallL2(d, as_page, l1index); err != kErrSuccess) {
    return {err, std::move(d)};
  }
  d[l2pt_page] = PageDbEntry{as_page, L2PTablePage{}};
  InstallL2(d, as_page, l2pt_page, l1index);
  Bump(d, as_page, 1);
  return {kErrSuccess, std::move(d)};
}

Result SpecMapSecure(PageDb d, PageNr as_page, PageNr data_page, word mapping, bool insecure_ok,
                     const std::array<word, arm::kWordsPerPage>& contents) {
  if (const auto err = CheckAddrspaceForInit(d, as_page)) {
    return {*err, std::move(d)};
  }
  if (!d.ValidPageNr(data_page)) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  if (!d[data_page].IsFree()) {
    return {kErrPageInUse, std::move(d)};
  }
  if (!MappingValid(mapping)) {
    return {kErrInvalidMapping, std::move(d)};
  }
  if (!insecure_ok) {
    return {kErrInvalidArgument, std::move(d)};
  }
  const auto slot = SpecL2Slot(d, as_page, mapping);
  if (!slot.has_value()) {
    return {kErrPageTableMissing, std::move(d)};
  }
  L2PTablePage& l2 = d[slot->first].As<L2PTablePage>();
  if (!std::holds_alternative<std::monostate>(l2.entries[slot->second])) {
    return {kErrAddrInUse, std::move(d)};
  }
  const word perms = MappingPerms(mapping);
  l2.entries[slot->second] =
      SecureMapping{data_page, (perms & kMapW) != 0, (perms & kMapX) != 0};
  DataPage data;
  data.contents = contents;
  d[data_page] = PageDbEntry{as_page, data};
  Bump(d, as_page, 1);

  AddrspacePage& as = d[as_page].As<AddrspacePage>();
  crypto::Sha256 stream = LoadStream(as);
  stream.UpdateWordLe(kMeasureMapSecure);
  stream.UpdateWordLe(mapping);
  for (word w : contents) {
    stream.UpdateWordLe(w);
  }
  StoreStream(as, stream);
  return {kErrSuccess, std::move(d)};
}

Result SpecAllocSpare(PageDb d, PageNr as_page, PageNr spare_page) {
  if (!IsAddrspace(d, as_page)) {
    return {kErrInvalidAddrspace, std::move(d)};
  }
  if (d[as_page].As<AddrspacePage>().state == AddrspaceState::kStopped) {
    return {kErrInvalidAddrspace, std::move(d)};
  }
  if (!d.ValidPageNr(spare_page)) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  if (!d[spare_page].IsFree()) {
    return {kErrPageInUse, std::move(d)};
  }
  d[spare_page] = PageDbEntry{as_page, SparePage{}};
  Bump(d, as_page, 1);
  return {kErrSuccess, std::move(d)};
}

Result SpecMapInsecure(PageDb d, PageNr as_page, word mapping, bool insecure_ok,
                       word insecure_pgnr) {
  if (const auto err = CheckAddrspaceForInit(d, as_page)) {
    return {*err, std::move(d)};
  }
  if (!MappingValid(mapping)) {
    return {kErrInvalidMapping, std::move(d)};
  }
  if (!insecure_ok) {
    return {kErrInvalidArgument, std::move(d)};
  }
  if ((MappingPerms(mapping) & kMapX) != 0) {
    return {kErrInvalidMapping, std::move(d)};
  }
  const auto slot = SpecL2Slot(d, as_page, mapping);
  if (!slot.has_value()) {
    return {kErrPageTableMissing, std::move(d)};
  }
  L2PTablePage& l2 = d[slot->first].As<L2PTablePage>();
  if (!std::holds_alternative<std::monostate>(l2.entries[slot->second])) {
    return {kErrAddrInUse, std::move(d)};
  }
  l2.entries[slot->second] =
      InsecureMapping{insecure_pgnr, (MappingPerms(mapping) & kMapW) != 0};
  return {kErrSuccess, std::move(d)};
}

Result SpecRemove(PageDb d, PageNr page) {
  if (!d.ValidPageNr(page)) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  const PageType type = d[page].type();
  if (type == PageType::kFree) {
    return {kErrSuccess, std::move(d)};
  }
  if (type == PageType::kAddrspace) {
    if (d[page].As<AddrspacePage>().refcount != 0) {
      return {kErrPageInUse, std::move(d)};
    }
  } else {
    const PageNr owner = d[page].owner;
    if (type != PageType::kSparePage &&
        d[owner].As<AddrspacePage>().state != AddrspaceState::kStopped) {
      return {kErrNotStopped, std::move(d)};
    }
    Bump(d, owner, -1);
  }
  d[page] = PageDbEntry{kInvalidPage, FreePage{}};
  return {kErrSuccess, std::move(d)};
}

Result SpecFinalise(PageDb d, PageNr as_page) {
  if (const auto err = CheckAddrspaceForInit(d, as_page)) {
    return {*err, std::move(d)};
  }
  AddrspacePage& as = d[as_page].As<AddrspacePage>();
  as.measurement = SpecMeasurementAfterFinalise(as);
  as.state = AddrspaceState::kFinal;
  return {kErrSuccess, std::move(d)};
}

Result SpecStop(PageDb d, PageNr as_page) {
  if (!IsAddrspace(d, as_page)) {
    return {kErrInvalidAddrspace, std::move(d)};
  }
  d[as_page].As<AddrspacePage>().state = AddrspaceState::kStopped;
  return {kErrSuccess, std::move(d)};
}

Result SpecSvcInitL2Table(PageDb d, PageNr as_page, PageNr spare_page, word l1index) {
  if (!d.ValidPageNr(spare_page) || d[spare_page].type() != PageType::kSparePage ||
      d[spare_page].owner != as_page) {
    return {kErrNotSpare, std::move(d)};
  }
  if (const word err = CheckInstallL2(d, as_page, l1index); err != kErrSuccess) {
    return {err, std::move(d)};
  }
  d[spare_page] = PageDbEntry{as_page, L2PTablePage{}};
  InstallL2(d, as_page, spare_page, l1index);
  return {kErrSuccess, std::move(d)};
}

Result SpecSvcMapData(PageDb d, PageNr as_page, PageNr spare_page, word mapping) {
  if (!d.ValidPageNr(spare_page) || d[spare_page].type() != PageType::kSparePage ||
      d[spare_page].owner != as_page) {
    return {kErrNotSpare, std::move(d)};
  }
  if (!MappingValid(mapping)) {
    return {kErrInvalidMapping, std::move(d)};
  }
  const auto slot = SpecL2Slot(d, as_page, mapping);
  if (!slot.has_value()) {
    return {kErrPageTableMissing, std::move(d)};
  }
  L2PTablePage& l2 = d[slot->first].As<L2PTablePage>();
  if (!std::holds_alternative<std::monostate>(l2.entries[slot->second])) {
    return {kErrAddrInUse, std::move(d)};
  }
  const word perms = MappingPerms(mapping);
  l2.entries[slot->second] =
      SecureMapping{spare_page, (perms & kMapW) != 0, (perms & kMapX) != 0};
  d[spare_page] = PageDbEntry{as_page, DataPage{}};  // zero-filled
  return {kErrSuccess, std::move(d)};
}

Result SpecSvcUnmapData(PageDb d, PageNr as_page, PageNr data_page, word mapping) {
  if (!d.ValidPageNr(data_page) || d[data_page].type() != PageType::kDataPage ||
      d[data_page].owner != as_page) {
    return {kErrInvalidPageNo, std::move(d)};
  }
  if (!MappingValid(mapping)) {
    return {kErrInvalidMapping, std::move(d)};
  }
  const auto slot = SpecL2Slot(d, as_page, mapping);
  if (!slot.has_value()) {
    return {kErrPageTableMissing, std::move(d)};
  }
  L2PTablePage& l2 = d[slot->first].As<L2PTablePage>();
  const SecureMapping* sm = std::get_if<SecureMapping>(&l2.entries[slot->second]);
  if (sm == nullptr || sm->data_page != data_page) {
    return {kErrInvalidMapping, std::move(d)};
  }
  l2.entries[slot->second] = std::monostate{};
  // Contents are retained while the page is spare (only re-mapping zeroes).
  d[data_page] = PageDbEntry{as_page, SparePage{}};
  return {kErrSuccess, std::move(d)};
}

crypto::DigestWords SpecMeasurementAfterFinalise(const AddrspacePage& as) {
  crypto::Sha256 stream;
  stream.Import(as.measurement_stream);
  return crypto::DigestToWords(stream.Finalize());
}

}  // namespace komodo::spec
