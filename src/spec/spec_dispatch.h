// Registry-driven specification dispatch: applies the spec function for any
// Table 1 call by number, with the machine-derived environment (insecure-page
// validity, source-page contents) computed from the registry's metadata.
// This is the spec-side counterpart of Monitor::Dispatch — both expand
// src/core/call_list.inc, so an SMC/SVC added to the registry automatically
// reaches the refinement suite.
#ifndef SRC_SPEC_SPEC_DISPATCH_H_
#define SRC_SPEC_SPEC_DISPATCH_H_

#include <array>

#include "src/arm/machine.h"
#include "src/spec/spec_calls.h"

namespace komodo::spec {

// Applies the spec of SMC `call` to `d`. The machine state is consulted only
// for the insecure-memory environment of MapSecure/MapInsecure (per the
// registry's insecure_arg/copies_contents columns); the PageDb relation
// itself is pure. Unknown call numbers return kErrInvalidArgument with the
// database unchanged, matching the implementation's dispatch default.
Result ApplySmc(PageDb d, const arm::MachineState& m, word call, const std::array<word, 4>& args);

// Applies the spec of SVC `call` issued by the enclave owning `as_page`.
// Unknown numbers return kErrInvalidSvc with the database unchanged.
Result ApplySvc(PageDb d, PageNr as_page, word call, const std::array<word, 3>& args);

// True when the registry carries a spec for the call number (used by the
// registry-completeness test).
bool HasSmcSpec(word call);
bool HasSvcSpec(word call);

}  // namespace komodo::spec

#endif  // SRC_SPEC_SPEC_DISPATCH_H_
