// Abstract PageDB — the state space of the paper's functional specification
// (§5.2). Pure value types: spec functions map (PageDb, args) to
// (error, PageDb) with no machine in sight. The refinement tests extract this
// representation from the monitor's in-memory state and compare.
#ifndef SRC_SPEC_ABSTRACT_STATE_H_
#define SRC_SPEC_ABSTRACT_STATE_H_

#include <array>
#include <map>
#include <optional>
#include <variant>
#include <vector>

#include "src/arm/types.h"
#include "src/core/kom_defs.h"
#include "src/crypto/sha256.h"

namespace komodo::spec {

using arm::word;

// --- Abstract page-table views -------------------------------------------------

// One leaf mapping in an enclave's second-level table.
struct SecureMapping {
  PageNr data_page;
  bool writable;
  bool executable;
  bool operator==(const SecureMapping&) const = default;
};

struct InsecureMapping {
  word insecure_pgnr;  // physical page number in insecure RAM
  bool writable;
  bool operator==(const InsecureMapping&) const = default;
};

using L2Entry = std::variant<std::monostate, SecureMapping, InsecureMapping>;

// --- PageDB entries ---------------------------------------------------------------

struct FreePage {
  bool operator==(const FreePage&) const = default;
};

struct AddrspacePage {
  PageNr l1pt_page = kInvalidPage;
  word refcount = 0;
  AddrspaceState state = AddrspaceState::kInit;
  // In-progress measurement stream (meaningful in kInit) and the final
  // measurement (meaningful from kFinal on).
  std::array<uint32_t, crypto::Sha256::kExportWords> measurement_stream{};
  crypto::DigestWords measurement{};
  bool operator==(const AddrspacePage&) const = default;
};

struct DispatcherPage {
  bool entered = false;
  word entrypoint = 0;
  // Saved user context, meaningful when entered.
  std::array<word, 13> regs{};
  word sp = 0;
  word lr = 0;
  word pc = 0;
  word psr = 0;
  bool operator==(const DispatcherPage&) const = default;
};

struct L1PTablePage {
  // One slot per 4 MB region (kL1Entries / kL2TablesPerPage): the L2PTable
  // page serving it, if installed.
  std::array<std::optional<PageNr>, 256> l2_tables{};
  bool operator==(const L1PTablePage&) const = default;
};

struct L2PTablePage {
  // 1024 leaf slots (four 256-entry hardware tables per page).
  std::array<L2Entry, arm::kWordsPerPage / 4 * 4> entries{};
  bool operator==(const L2PTablePage&) const = default;
};

struct DataPage {
  std::array<word, arm::kWordsPerPage> contents{};
  bool operator==(const DataPage&) const = default;
};

struct SparePage {
  bool operator==(const SparePage&) const = default;
};

struct PageDbEntry {
  PageNr owner = kInvalidPage;  // owning address space (self for Addrspace)
  std::variant<FreePage, AddrspacePage, DispatcherPage, L1PTablePage, L2PTablePage, DataPage,
               SparePage>
      page;

  bool operator==(const PageDbEntry&) const = default;

  PageType type() const {
    return static_cast<PageType>(page.index());  // variant order matches PageType
  }
  bool IsFree() const { return type() == PageType::kFree; }

  template <typename T>
  T& As() {
    return std::get<T>(page);
  }
  template <typename T>
  const T& As() const {
    return std::get<T>(page);
  }
};

struct PageDb {
  std::vector<PageDbEntry> pages;

  explicit PageDb(size_t npages = 0) : pages(npages) {}
  size_t NPages() const { return pages.size(); }
  bool ValidPageNr(PageNr n) const { return n < pages.size(); }
  PageDbEntry& operator[](PageNr n) { return pages[n]; }
  const PageDbEntry& operator[](PageNr n) const { return pages[n]; }
  bool operator==(const PageDb&) const = default;
};

// Helpers shared by the spec functions and invariants.
inline bool IsAddrspace(const PageDb& d, PageNr n) {
  return d.ValidPageNr(n) && d[n].type() == PageType::kAddrspace;
}

// Resolves the L2 slot index for a mapping within an address space; returns
// the (l2_page, slot_index) if the L2 table exists.
std::optional<std::pair<PageNr, word>> SpecL2Slot(const PageDb& d, PageNr as_page, word mapping);

}  // namespace komodo::spec

#endif  // SRC_SPEC_ABSTRACT_STATE_H_
