#include "src/spec/spec_dispatch.h"

#include "src/arm/memory.h"
#include "src/core/call_table.h"
#include "src/spec/extract.h"

namespace komodo::spec {

namespace {

// Machine-derived environment for calls whose spec depends on insecure
// memory: the validity of the insecure page-number argument and (when the
// call copies contents, i.e. MapSecure's measurement) the source page's data
// at call time.
struct SpecEnv {
  bool insecure_ok = false;
  std::array<word, arm::kWordsPerPage> contents{};
};

SpecEnv MakeEnv(const CallInfo& info, const arm::MachineState& m,
                const std::array<word, 4>& args) {
  SpecEnv env;
  if (info.insecure_arg > 0) {
    const word pgnr = args[info.insecure_arg - 1];
    env.insecure_ok = arm::IsInsecurePageAddr(m.mem, pgnr * arm::kPageSize);
    if (env.insecure_ok && info.copies_contents) {
      env.contents = ReadInsecurePage(m, pgnr);
    }
  }
  return env;
}

}  // namespace

Result ApplySmc(PageDb d, const arm::MachineState& m, word call, const std::array<word, 4>& args) {
  const word a1 = args[0];
  const word a2 = args[1];
  const word a3 = args[2];
  const word a4 = args[3];
  (void)a4;  // no current spec consumes r4 directly (MapSecure's r4 arrives via env)
  switch (call) {
#define KOM_SMC(name, nr, arity, argnames, insec, contents, impl, spec, errors) \
  case nr: {                                                                    \
    const SpecEnv env = MakeEnv(*FindSmc(nr), m, args);                         \
    (void)env;                                                                  \
    return spec;                                                                \
  }
#define KOM_SVC(name, nr, arity, argnames, impl, spec, errors)
#include "src/core/call_list.inc"
#undef KOM_SMC
#undef KOM_SVC
    default:
      return {kErrInvalidArgument, std::move(d)};
  }
}

Result ApplySvc(PageDb d, PageNr as_page, word call, const std::array<word, 3>& args) {
  const word a1 = args[0];
  const word a2 = args[1];
  const word a3 = args[2];
  (void)a3;  // no current SVC spec consumes r3 (Verify's MAC comparison is havoc)
  (void)as_page;
  switch (call) {
#define KOM_SMC(name, nr, arity, argnames, insec, contents, impl, spec, errors)
#define KOM_SVC(name, nr, arity, argnames, impl, spec, errors) \
  case nr:                                                     \
    return spec;
#include "src/core/call_list.inc"
#undef KOM_SMC
#undef KOM_SVC
    default:
      return {kErrInvalidSvc, std::move(d)};
  }
}

bool HasSmcSpec(word call) { return FindSmc(call) != nullptr; }

bool HasSvcSpec(word call) { return FindSvc(call) != nullptr; }

}  // namespace komodo::spec
