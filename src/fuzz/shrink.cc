#include "src/fuzz/shrink.h"

namespace komodo::fuzz {

namespace {
constexpr size_t kMaxEvaluations = 2000;
}  // namespace

Trace ShrinkTrace(const Trace& failing, const RunFn& run, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  s.ops_before = failing.ops.size();

  Trace best = failing;
  const auto fails = [&](const Trace& cand) {
    ++s.evaluations;
    return run(cand).failed;
  };

  // Pass 0: confirm the input fails and truncate past the failing op.
  ++s.evaluations;
  const Verdict v = run(best);
  if (!v.failed) {
    s.ops_after = best.ops.size();
    return best;
  }
  if (v.failing_op >= 0 && static_cast<size_t>(v.failing_op) + 1 < best.ops.size()) {
    Trace cand = best;
    cand.ops.resize(static_cast<size_t>(v.failing_op) + 1);
    if (fails(cand)) {
      best = std::move(cand);
    }
  }

  bool progress = true;
  while (progress && s.evaluations < kMaxEvaluations) {
    progress = false;
    // Delete one op at a time, from the back (later ops are cheapest to lose:
    // removing an early op usually desynchronizes everything after it).
    for (size_t i = best.ops.size(); i-- > 0 && s.evaluations < kMaxEvaluations;) {
      Trace cand = best;
      cand.ops.erase(cand.ops.begin() + static_cast<long>(i));
      if (fails(cand)) {
        best = std::move(cand);
        progress = true;
      }
    }
    // Simplify arguments toward zero.
    for (size_t i = 0; i < best.ops.size(); ++i) {
      for (int j = 0; j < 5 && s.evaluations < kMaxEvaluations; ++j) {
        if (best.ops[i].a[j] == 0) {
          continue;
        }
        Trace cand = best;
        cand.ops[i].a[j] = 0;
        if (fails(cand)) {
          best = std::move(cand);
          progress = true;
        }
      }
    }
  }
  s.ops_after = best.ops.size();
  return best;
}

}  // namespace komodo::fuzz
