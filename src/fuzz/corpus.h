// Corpus store for evolve-mode fuzzing (DESIGN.md §15): the traces that
// discovered new coverage, kept as mutation parents for later rounds.
//
// Determinism contract: a Corpus is a pure function of the admission sequence
// — entries dedup by Trace::Hash(), the cap evicts by a total order
// (lowest coverage gain first, newest first among ties), and iteration and
// digests follow admission order. The campaign driver admits in canonical
// (round, oracle, shard, trace) order, so the corpus — like the campaign
// hash — is byte-identical at any --jobs count.
//
// Every entry is a replayable `komodo-fuzz-trace v1`; SaveDir writes one
// trace file per entry (plus an INDEX with gains) that `komodo-fuzz --replay`
// accepts unmodified.
#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/fuzz/trace.h"

namespace komodo::fuzz {

struct CorpusEntry {
  Trace trace;
  uint64_t gain = 0;   // coverage keys that were new at admission
  uint64_t round = 0;  // evolve round that admitted it
  uint64_t seq = 0;    // campaign-wide admission sequence number (canonical)
  std::string hash;    // Trace::Hash(); the dedup key
};

class Corpus {
 public:
  // Admits `t` unless an identical trace (by hash) is present. Returns
  // whether the entry was added.
  bool Add(Trace t, uint64_t gain, uint64_t round, uint64_t seq);

  // Evicts down to `max_entries` by (gain ascending, seq descending): the
  // cheapest discoveries go first, and among equals the older entry — whose
  // descendants had more rounds to enter — survives. Admission order of the
  // survivors is preserved.
  void Trim(size_t max_entries);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<CorpusEntry>& entries() const { return entries_; }
  // Parent pointers for MutateTrace, in admission order. Valid until the next
  // mutating call.
  std::vector<const Trace*> Traces() const;

  // SHA-256 hex over (hash, gain, round, seq) lines in admission order; pins
  // the corpus state in campaign hashes and tests.
  std::string Digest() const;

  // Writes one `<seq>-<hash prefix>.trace` file per entry into `dir`
  // (created if missing) plus an INDEX file; returns false on any I/O error.
  bool SaveDir(const std::string& dir) const;
  // Reads every `*.trace` file under `dir` in filename order.
  static std::vector<Trace> LoadDir(const std::string& dir);

 private:
  std::vector<CorpusEntry> entries_;
  std::unordered_set<std::string> hashes_;
};

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_CORPUS_H_
