#include "src/fuzz/pool.h"

namespace komodo::fuzz {

Monitor::Config FuzzMonitorConfig() {
  Monitor::Config cfg;
  cfg.max_enclave_steps = 4000;
  return cfg;
}

WorldPool::Lease::~Lease() {
  if (pool_ != nullptr) {
    pool_->Release(std::move(slot_));
  }
}

WorldPool::Lease WorldPool::Acquire(word pages) {
  ++stats_.acquires;
  Bucket& bucket = buckets_[pages];
  if (!bucket.free.empty()) {
    Lease::Slot slot = std::move(bucket.free.back());
    bucket.free.pop_back();
    ++stats_.resets;
    stats_.pages_restored += slot.world->machine.ResetTo(*slot.snapshot);
    slot.world->monitor.ResetForReuse();
    slot.world->os.ResetForReuse();
    return Lease(this, std::move(slot));
  }
  Lease::Slot slot;
  slot.world = std::make_unique<os::World>(pages, config_);
  ++stats_.constructions;
  if (reuse_) {
    slot.world->machine.mem.EnableDirtyTracking();
    if (bucket.snapshot == nullptr) {
      // Boot is deterministic, so this world's post-boot state doubles as the
      // reset target for every later world of the same geometry.
      bucket.snapshot = std::make_shared<const arm::MachineState>(slot.world->machine);
    }
    slot.snapshot = bucket.snapshot;
  }
  return Lease(this, std::move(slot));
}

void WorldPool::Release(Lease::Slot slot) {
  if (!reuse_) {
    return;  // drop it; the next Acquire constructs fresh (baseline mode)
  }
  buckets_[slot.world->machine.mem.nsecure_pages()].free.push_back(std::move(slot));
}

}  // namespace komodo::fuzz
