// The pluggable oracles of the fuzzing subsystem (DESIGN.md §10): each one
// replays a Trace against fresh world(s) and decides whether the monitor
// upheld its contract.
//
//   refinement        impl-vs-spec bisimulation through the call registry:
//                     every SMC's error code and resulting abstract PageDb
//                     must match spec::ApplySmc; SVCs are driven through a
//                     driver enclave and compared against spec::ApplySvc.
//   invariants        spec::PageDbViolations after every operation.
//   noninterference   two worlds differing only in a victim's secret replay
//                     the identical trace; every SMC result and the full
//                     ≈adv relation must stay equal.
//   interp            cache-enabled vs cache-disabled worlds replay the same
//                     trace; SMC results and complete machine state must be
//                     bit-identical.
//
// A Verdict pinpoints the first failing operation, which is what the shrinker
// truncates to.
#ifndef SRC_FUZZ_ORACLES_H_
#define SRC_FUZZ_ORACLES_H_

#include <string>
#include <vector>

#include "src/arm/machine.h"
#include "src/fuzz/coverage.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {

class WorldPool;

struct Verdict {
  bool failed = false;
  int failing_op = -1;  // index into trace.ops; -1 = setup/harness failure
  std::string detail;
};

// Replays `t` under its oracle. When `apply_inject` is set (the default) the
// trace's fault injection is armed for the duration of the run; passing false
// replays the same trace against the unbroken monitor (corpus tests use this
// to prove a witness fails *because of* its injection).
//
// `pool`, when given, supplies the oracle's world(s) via snapshot-reset
// reuse (DESIGN.md §11) instead of fresh construction; the verdict is
// identical either way. The campaign driver and the shrinker pass their
// per-thread pool; one-shot replays can leave it null.
//
// `cover`, when given, accumulates the coverage keys the run touched
// (DESIGN.md §15): per-op PageDb shape keys, the primary world's
// observability event set, and — for the interp oracle, whose worlds set
// their cache/JIT enablement explicitly — resident decode-cache and JIT
// block keys. Collection is architecturally invisible (the tracer is cycle
// bit-identical on/off), so the verdict never depends on it.
Verdict RunTrace(const Trace& t, bool apply_inject = true, WorldPool* pool = nullptr,
                 CoverageMap* cover = nullptr);

// Full architectural-state comparison (the non-gtest form of the interp-diff
// suite's ExpectSameState): registers, banked state, CPSR/SPSRs, system
// registers, TLB-consistency bit, retired-step and cycle counters, and all of
// memory. Empty = identical.
std::vector<std::string> MachineDiff(const arm::MachineState& a, const arm::MachineState& b);

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_ORACLES_H_
