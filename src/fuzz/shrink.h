// Trace minimization (DESIGN.md §10): given a failing trace, produce the
// smallest trace that still fails the same oracle, by fixpoint iteration of
//   1. truncate everything after the failing operation,
//   2. delete one operation at a time (scanning from the back),
//   3. simplify arguments (try zero for each nonzero argument word).
// Every candidate is re-run through the oracle, so a minimized witness is a
// failing trace by construction.
#ifndef SRC_FUZZ_SHRINK_H_
#define SRC_FUZZ_SHRINK_H_

#include <cstddef>
#include <functional>

#include "src/fuzz/oracles.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {

using RunFn = std::function<Verdict(const Trace&)>;

struct ShrinkStats {
  size_t evaluations = 0;
  size_t ops_before = 0;
  size_t ops_after = 0;
};

// Minimizes `failing` under `run` (normally [](const Trace& t) { return
// RunTrace(t); }). If `failing` does not actually fail, it is returned
// unchanged. Evaluation count is bounded (~2000 oracle runs), which in
// practice converges: shrunk witnesses are a handful of ops.
Trace ShrinkTrace(const Trace& failing, const RunFn& run, ShrinkStats* stats = nullptr);

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_SHRINK_H_
