// Per-worker world pools for the fuzzing subsystem (DESIGN.md §11).
//
// Every oracle run needs one or two freshly booted Worlds (machine + monitor
// + OS model). Constructing one zeroes ~17 MB of simulated physical memory
// and replays secure boot; for short traces that setup dwarfs the oracle
// work itself — and the paired-execution oracles (noninterference, interp)
// pay it twice per trace. A WorldPool keeps booted worlds alive between
// traces and resets them with the snapshot-reset machinery instead:
//
//   * at first construction the world's memory turns on dirty-page tracking
//     and a full copy of the post-boot MachineState is captured (one shared
//     copy per world geometry, since boot is deterministic);
//   * Acquire hands out a pooled world after MachineState::ResetTo(snapshot)
//     — which rewrites only the pages the previous trace dirtied and
//     invalidates the interpreter caches — plus Monitor::ResetForReuse and
//     Os::ResetForReuse for the C++-side bookkeeping.
//
// The result is state-equal to a fresh construction (pinned by
// tests/fuzz/parallel_campaign_test.cc) at a small fraction of the cost.
//
// Pools are deliberately NOT thread-safe: the parallel campaign driver gives
// each worker thread its own pool, which also keeps every Observability
// instance, machine and monitor confined to one thread.
#ifndef SRC_FUZZ_POOL_H_
#define SRC_FUZZ_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/os/world.h"

namespace komodo::fuzz {

using arm::word;

// The monitor configuration every fuzz oracle runs under: bounded enclave
// dispatch so victim spin loops and accidentally-built runaway enclaves
// interrupt quickly instead of burning the 50M-step default.
Monitor::Config FuzzMonitorConfig();

class WorldPool {
 public:
  explicit WorldPool(const Monitor::Config& config = FuzzMonitorConfig(),
                     bool reuse = true)
      : config_(config), reuse_(reuse) {}
  WorldPool(const WorldPool&) = delete;
  WorldPool& operator=(const WorldPool&) = delete;

  struct Stats {
    uint64_t acquires = 0;        // total leases handed out
    uint64_t constructions = 0;   // fresh World constructions
    uint64_t resets = 0;          // snapshot-resets of a pooled world
    uint64_t pages_restored = 0;  // dirty pages rewritten across all resets
  };

  // Scoped lease of a booted, pristine world; returns it to the pool on
  // destruction. The world reference stays valid for the lease's lifetime.
  class Lease {
   public:
    Lease(Lease&& o) noexcept : pool_(o.pool_), slot_(std::move(o.slot_)) {
      o.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    os::World& world() { return *slot_.world; }

   private:
    friend class WorldPool;
    struct Slot {
      std::unique_ptr<os::World> world;
      // Post-boot machine snapshot; shared across every slot of the same
      // geometry (boot is deterministic, so the snapshots are identical).
      std::shared_ptr<const arm::MachineState> snapshot;
    };
    Lease(WorldPool* pool, Slot slot) : pool_(pool), slot_(std::move(slot)) {}

    WorldPool* pool_;
    Slot slot_;
  };

  // Hands out a world with `pages` secure pages, booted and in its pristine
  // post-boot state: a pooled world reset via snapshot, or a fresh
  // construction when the pool is empty (or reuse is disabled).
  Lease Acquire(word pages);

  const Stats& stats() const { return stats_; }
  bool reuse() const { return reuse_; }

 private:
  friend class Lease;
  struct Bucket {
    std::shared_ptr<const arm::MachineState> snapshot;
    std::vector<Lease::Slot> free;
  };
  void Release(Lease::Slot slot);

  Monitor::Config config_;
  bool reuse_;
  std::unordered_map<word, Bucket> buckets_;  // keyed by secure-page count
  Stats stats_;
};

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_POOL_H_
