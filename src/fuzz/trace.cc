#include "src/fuzz/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/crypto/sha256.h"

namespace komodo::fuzz {

namespace {

std::string Hex(word v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

bool ParseWord(const std::string& tok, word* out) {
  if (tok.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long v = std::strtoul(tok.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<word>(v);
  return true;
}

}  // namespace

size_t Trace::CallCount() const {
  size_t n = 0;
  for (const TraceOp& op : ops) {
    n += op.IsCall() ? 1 : 0;
  }
  return n;
}

std::string Trace::Format() const {
  std::ostringstream out;
  out << "komodo-fuzz-trace v1\n";
  out << "oracle " << oracle << "\n";
  out << "seed " << seed << "\n";
  out << "pages " << pages << "\n";
  if (!inject.empty()) {
    out << "inject " << inject << "\n";
  }
  if (!victim.empty()) {
    out << "victim " << victim << "\n";
    out << "secrets " << Hex(secrets[0]) << " " << Hex(secrets[1]) << "\n";
  }
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case OpKind::kPoke:
        out << "poke " << op.a[0] << " " << op.a[1] << " " << Hex(op.a[2]) << "\n";
        break;
      case OpKind::kSmc:
        out << "smc " << op.a[0] << " " << Hex(op.a[1]) << " " << Hex(op.a[2]) << " "
            << Hex(op.a[3]) << " " << Hex(op.a[4]) << "\n";
        break;
      case OpKind::kSvc:
        out << "svc " << op.a[0] << " " << Hex(op.a[1]) << " " << Hex(op.a[2]) << " "
            << Hex(op.a[3]) << "\n";
        break;
      case OpKind::kEnter:
        out << "enter " << Hex(op.a[1]) << " " << Hex(op.a[2]) << " " << Hex(op.a[3]) << "\n";
        break;
      case OpKind::kResume:
        out << "resume\n";
        break;
    }
  }
  out << "end\n";
  return out.str();
}

std::string Trace::Hash() const {
  const std::string text = Format();
  return crypto::DigestToHex(
      crypto::Sha256Hash(reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

std::optional<Trace> Trace::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  // Comments and blank lines may precede the magic: committed corpus files
  // carry a header explaining what the witness demonstrates.
  do {
    if (!std::getline(in, line)) {
      return std::nullopt;
    }
  } while (line.empty() || line[0] == '#');
  if (line != "komodo-fuzz-trace v1") {
    return std::nullopt;
  }
  Trace t;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto words = [&ls](word* out, int n, int required) {
      int got = 0;
      std::string tok;
      while (got < n && ls >> tok) {
        if (!ParseWord(tok, &out[got])) {
          return false;
        }
        ++got;
      }
      return got >= required;
    };
    if (tag == "oracle") {
      ls >> t.oracle;
    } else if (tag == "seed") {
      uint64_t s = 0;
      ls >> s;
      t.seed = s;
    } else if (tag == "pages") {
      if (!words(&t.pages, 1, 1)) {
        return std::nullopt;
      }
    } else if (tag == "inject") {
      ls >> t.inject;
    } else if (tag == "victim") {
      ls >> t.victim;
    } else if (tag == "secrets") {
      if (!words(t.secrets, 2, 2)) {
        return std::nullopt;
      }
    } else if (tag == "poke") {
      TraceOp op;
      op.kind = OpKind::kPoke;
      if (!words(op.a, 3, 3)) {
        return std::nullopt;
      }
      t.ops.push_back(op);
    } else if (tag == "smc") {
      TraceOp op;
      op.kind = OpKind::kSmc;
      if (!words(op.a, 5, 5)) {
        return std::nullopt;
      }
      t.ops.push_back(op);
    } else if (tag == "svc") {
      TraceOp op;
      op.kind = OpKind::kSvc;
      if (!words(op.a, 4, 4)) {
        return std::nullopt;
      }
      t.ops.push_back(op);
    } else if (tag == "enter") {
      TraceOp op;
      op.kind = OpKind::kEnter;
      if (!words(&op.a[1], 3, 3)) {
        return std::nullopt;
      }
      t.ops.push_back(op);
    } else if (tag == "resume") {
      TraceOp op;
      op.kind = OpKind::kResume;
      t.ops.push_back(op);
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;  // unknown tag: refuse rather than misreplay
    }
  }
  if (!saw_end || t.oracle.empty()) {
    return std::nullopt;
  }
  return t;
}

bool Trace::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << Format();
  return static_cast<bool>(out);
}

std::optional<Trace> Trace::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

}  // namespace komodo::fuzz
