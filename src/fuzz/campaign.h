// Fuzzing campaign driver (DESIGN.md §10): generates traces from a master
// seed, runs each through its oracle, and stops at the first failure with
// both the original and the shrunk witness. Everything is a deterministic
// function of the options, pinned by a running SHA-256 over every generated
// trace and verdict — two campaigns with the same options produce the same
// hash or something is nondeterministic.
#ifndef SRC_FUZZ_CAMPAIGN_H_
#define SRC_FUZZ_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fuzz/oracles.h"
#include "src/fuzz/shrink.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {

struct CampaignOptions {
  uint64_t seed = 1;
  uint64_t calls = 10'000;       // monitor-call budget per oracle
  size_t trace_len = 150;        // ops per generated trace
  std::vector<std::string> oracles;  // empty = all four
  std::string inject;            // fault injection applied to every trace
  bool shrink = true;            // minimize the first failure
};

struct OracleStats {
  std::string oracle;
  uint64_t traces = 0;
  uint64_t calls = 0;    // monitor calls executed (pokes excluded)
  double seconds = 0.0;  // wall clock (informational; not part of the hash)
};

struct CampaignResult {
  bool failed = false;
  Trace original;       // the failing trace as generated (valid iff failed)
  Trace witness;        // the shrunk reproducer (== original if !shrink)
  Verdict verdict;      // of the original failure
  ShrinkStats shrink;   // filled when a failure was minimized
  std::string hash;     // SHA-256 over all traces + verdicts (determinism pin)
  std::vector<OracleStats> stats;
};

// Runs the campaign. `log`, when given, receives one progress line per
// completed oracle and on failure.
CampaignResult RunCampaign(const CampaignOptions& opts,
                           const std::function<void(const std::string&)>& log = {});

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_CAMPAIGN_H_
