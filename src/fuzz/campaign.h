// Fuzzing campaign driver (DESIGN.md §10, §11, §15): generates traces from a
// master seed, runs each through its oracle, and reports the canonically
// first failure with both the original and the shrunk witness.
//
// Work is split into `shards` deterministically seeded shards per oracle
// ((seed, shard) -> an independent trace-seed stream), executed by `jobs`
// worker threads each owning a snapshot-reset WorldPool. Every shard keeps
// its own SHA-256 over the traces it generated and the verdicts it saw; the
// campaign hash folds the per-shard digests in canonical (oracle, shard)
// order, so it is byte-identical for any `jobs` — including jobs=1 — and
// changes only with the options that define the work (seed, calls,
// trace_len, oracle set, inject, shards). Timing never enters the hash.
//
// A failing shard stops at its first failure; all other shards still run to
// completion, so the hash stays a pure function of the options. The reported
// failure is the canonically first one (lowest oracle, then shard, then
// trace index), not whichever worker happened to hit one first.
//
// Evolve mode (DESIGN.md §15) layers coverage-guided corpus evolution on the
// same skeleton: the per-oracle call budget splits across `rounds`
// synchronous generations; within a round every shard draws candidates from
// its own seed stream — fresh traces, or deterministic mutations of the
// round-start corpus snapshot — and measures each candidate's coverage
// (PageDb shapes, obs events, interp/JIT residency). Shards never share
// mid-round state; discoveries merge at the round barrier in canonical task
// order, which keeps coverage, corpus and the v3 campaign hash jobs-
// invariant. Every corpus entry is a replayable `komodo-fuzz-trace v1`.
#ifndef SRC_FUZZ_CAMPAIGN_H_
#define SRC_FUZZ_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/fuzz/oracles.h"
#include "src/fuzz/shrink.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {

enum class CampaignMode {
  kBlind,   // stateless trace stream (v2 hash; byte-compatible with PR 5)
  kEvolve,  // coverage-guided corpus evolution (v3 hash)
};

struct CampaignOptions {
  uint64_t seed = 1;
  uint64_t calls = 10'000;       // monitor-call budget per oracle
  size_t trace_len = 150;        // ops per generated trace
  std::vector<std::string> oracles;  // empty = all four
  std::string inject;            // fault injection applied to every trace
  bool shrink = true;            // minimize the canonically first failure
  int jobs = 1;                  // worker threads; <= 0 = hardware concurrency
  uint32_t shards = 16;          // work split per oracle; part of the hash domain
  bool reuse_worlds = true;      // snapshot-reset world pooling (perf only)
  CampaignMode mode = CampaignMode::kBlind;
  // Evolve-mode knobs (all in the v3 hash domain):
  uint32_t rounds = 4;           // corpus generations the call budget splits over
  size_t max_corpus = 256;       // per-oracle corpus cap (deterministic eviction)
  // Blind mode: also measure coverage (counted in stats, NEVER hashed — the
  // v2 hash stays byte-identical with or without it). The evolve-vs-blind
  // bench comparison uses this for an equal-budget coverage baseline.
  bool measure_coverage = false;
  std::string corpus_dir;        // evolve: save the final corpus here ("" = don't)
};

struct OracleStats {
  std::string oracle;
  uint64_t traces = 0;
  uint64_t calls = 0;    // monitor calls executed (pokes excluded)
  // Timing is informational and never part of the campaign hash:
  // `seconds` is wall clock from campaign start until the oracle's last
  // shard completed (shards of different oracles interleave under
  // parallelism, so per-oracle wall times overlap and do not sum to the
  // campaign wall time); `cpu_seconds` is the summed per-shard thread CPU
  // time, the comparable "work done" figure at any jobs count.
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  // Coverage accounting (evolve mode, or blind with measure_coverage):
  uint64_t coverage_keys = 0;    // distinct keys this oracle reached
  uint64_t corpus_entries = 0;   // final corpus size (evolve only)
};

struct CampaignResult {
  bool failed = false;
  Trace original;       // the canonically first failing trace (valid iff failed)
  Trace witness;        // the shrunk reproducer (== original if !shrink)
  Verdict verdict;      // of the original failure
  ShrinkStats shrink;   // filled when a failure was minimized
  std::string hash;     // SHA-256 folding all per-shard digests (determinism pin)
  std::vector<OracleStats> stats;
  double wall_seconds = 0.0;      // whole-campaign wall clock (not hashed)
  // World-pool effectiveness across all workers (not hashed).
  uint64_t worlds_built = 0;      // fresh World constructions
  uint64_t worlds_reused = 0;     // snapshot-resets of a pooled world
  uint64_t pages_restored = 0;    // dirty pages rewritten by those resets
  // Coverage results (evolve mode, or blind with measure_coverage):
  uint64_t coverage_keys = 0;     // summed distinct keys across oracles
  // Cumulative coverage_keys after each evolve round (the growth curve).
  std::vector<uint64_t> coverage_curve;
  // Final per-oracle corpora, aligned with `stats` (evolve mode only).
  std::vector<Corpus> corpora;
};

// The k-th trace seed of shard `shard` under master seed `seed`: shard
// streams are splitmix64-decorrelated so neighbouring master seeds and
// neighbouring shards share no traces. Exposed so tests and tools can
// regenerate any shard's stream without a campaign.
uint64_t ShardTraceSeed(uint64_t seed, uint32_t shard, uint64_t k);

// The master seed of evolve round `round` under campaign seed `seed`; shard
// streams within a round come from ShardTraceSeed(EvolveRoundSeed(...), ...).
// Round streams are decorrelated the same way shard streams are.
uint64_t EvolveRoundSeed(uint64_t seed, uint32_t round);

// Runs the campaign. `log`, when given, receives one progress line per
// completed oracle and on failure; it is only ever invoked from the calling
// thread.
CampaignResult RunCampaign(const CampaignOptions& opts,
                           const std::function<void(const std::string&)>& log = {});

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_CAMPAIGN_H_
