#include "src/fuzz/oracles.h"

#include <optional>
#include <sstream>

#include "src/arm/assembler.h"
#include "src/core/kom_defs.h"
#include "src/fuzz/coverage.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/inject.h"
#include "src/fuzz/pool.h"
#include "src/obs/trace.h"
#include "src/os/world.h"
#include "src/spec/equivalence.h"
#include "src/spec/extract.h"
#include "src/spec/invariants.h"
#include "src/spec/spec_dispatch.h"

namespace komodo::fuzz {

namespace {

Verdict Fail(int op, std::string detail) { return Verdict{true, op, std::move(detail)}; }

// Arms the primary world's observability coverage hook for the duration of
// one oracle run and harvests the keys on every exit path, including early
// failure returns. Worlds listed in `machine_worlds` additionally contribute
// their resident decode-cache / JIT block keys — callers only list worlds
// whose cache/JIT enablement they set explicitly, so the harvested set never
// depends on KOMODO_INTERP_CACHE / KOMODO_JIT environment defaults. The
// tracer is cycle bit-identical on/off, so arming it cannot change a verdict.
//
// Must be declared *after* the world leases it references: it harvests in its
// destructor, while the worlds are still leased.
class CoverageScope {
 public:
  CoverageScope(os::World& primary, CoverageMap* cover,
                std::vector<const os::World*> machine_worlds = {})
      : primary_(primary), cover_(cover), machine_worlds_(std::move(machine_worlds)) {
    if (cover_ == nullptr) {
      return;
    }
    obs::Observability& obs = primary_.monitor.obs();
    was_enabled_ = obs.enabled();
    if (!was_enabled_) {
      // Tiny ring: only the key set matters, not the event log.
      obs.Enable(kCoverageRing);
    }
    obs.ArmCoverage();
  }
  CoverageScope(const CoverageScope&) = delete;
  CoverageScope& operator=(const CoverageScope&) = delete;
  ~CoverageScope() {
    if (cover_ == nullptr) {
      return;
    }
    HarvestObsCoverage(primary_, cover_);
    for (const os::World* w : machine_worlds_) {
      HarvestMachineCoverage(*w, cover_);
    }
    obs::Observability& obs = primary_.monitor.obs();
    obs.DisarmCoverage();
    if (!was_enabled_) {
      obs.Disable();
    }
  }

 private:
  static constexpr size_t kCoverageRing = 64;
  os::World& primary_;
  CoverageMap* cover_;
  std::vector<const os::World*> machine_worlds_;
  bool was_enabled_ = false;
};

std::string OpLabel(const Trace& t, size_t i) {
  std::ostringstream out;
  out << "op " << i << " of " << t.ops.size();
  return out.str();
}

// Replays one poke. Page numbers are clamped into insecure RAM so shrinker
// The oracles compare and hash the raw ABI words of Enter/Resume, so the
// typed EnterResult is flattened back to the r0/r1 pair at these sites.
os::SmcRet AbiWords(const os::EnterResult& r) { return {ToWord(r.err), r.payload}; }

// arg-simplification cannot wander out of bounds (WriteInsecure is raw).
void ApplyPoke(os::World& w, const TraceOp& op) {
  const word npages = arm::kInsecureSize / arm::kPageSize;
  w.os.WriteInsecure(op.a[0] % npages, op.a[1] % arm::kWordsPerPage, op.a[2]);
}

// Builds the trace's victim enclave; returns false (with `why`) on failure.
// Victims that rewrite their own code get their code page mapped R|W|X.
bool BuildVictim(os::World& w, const std::string& name, os::EnclaveHandle* out,
                 std::string* why) {
  const std::vector<word> program = VictimProgram(name);
  if (program.empty()) {
    *why = "unknown victim '" + name + "'";
    return false;
  }
  if (!VictimWantsWritableCode(name)) {
    if (auto built = w.os.NewEnclave().Code(program).Build(); built.ok()) {
      *out = *std::move(built);
      return true;
    } else {
      *why = "victim build failed: " + std::string(KomErrName(built.error()));
      return false;
    }
  }
  os::Os& os = w.os;
  os::EnclaveHandle e;
  e.addrspace = os.AllocSecurePage();
  e.l1pt = os.AllocSecurePage();
  const PageNr l2 = os.AllocSecurePage();
  const PageNr code = os.AllocSecurePage();
  e.thread = os.AllocSecurePage();
  const word staging = os.AllocInsecurePage();
  os.WriteInsecurePage(staging, program);
  word err = os.InitAddrspace(e.addrspace, e.l1pt).err;
  if (err == kErrSuccess) err = os.InitL2Table(e.addrspace, l2, 0).err;
  if (err == kErrSuccess) {
    err = os.MapSecure(e.addrspace, code,
                       MakeMapping(os::kEnclaveCodeVa, kMapR | kMapW | kMapX), staging)
              .err;
  }
  if (err == kErrSuccess) err = os.InitThread(e.addrspace, e.thread, os::kEnclaveCodeVa).err;
  if (err == kErrSuccess) err = os.Finalise(e.addrspace).err;
  if (err != kErrSuccess) {
    *why = "victim build failed: " + std::string(KomErrName(err));
    return false;
  }
  e.l2pts.push_back(l2);
  e.data_pages.push_back(code);
  *out = e;
  return true;
}

// Reifies the abstract state mid-replay. An undecodable representation
// (possible only when a fault injection corrupted the monitor's structures)
// is an oracle failure with a replayable verdict, not a harness abort — the
// corpus pins traces whose whole point is reproducing exactly that.
std::optional<Verdict> ExtractInto(const os::World& w, const Trace& t, size_t i,
                                   spec::PageDb* out) {
  spec::ExtractError xerr;
  std::optional<spec::PageDb> got = spec::TryExtractPageDb(w.machine, &xerr);
  if (!got.has_value()) {
    return Fail(static_cast<int>(i), OpLabel(t, i) + ": spec extraction failed at page " +
                                         std::to_string(xerr.page) + ": " + xerr.detail);
  }
  *out = std::move(*got);
  return std::nullopt;
}

// The SVC driver: loads (call, a1, a2, a3) staged in its data page into
// r0-r3, issues the SVC, then exits with the SVC's r0 result. Exit-style SVCs
// terminate at the first `svc`; everything else reaches the explicit exit.
std::vector<word> DriverProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R0, R4, 0);
  a.Ldr(R1, R4, 4);
  a.Ldr(R2, R4, 8);
  a.Ldr(R3, R4, 12);
  a.Svc();
  a.Mov(R1, R0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

// --- refinement / invariants ---------------------------------------------------

// One replay loop serves both spec-backed oracles: with `with_spec` it is the
// full bisimulation, without it only the PageDB invariants are checked.
Verdict RunSpecBacked(const Trace& t, bool with_spec, WorldPool& pool, CoverageMap* cover) {
  WorldPool::Lease lease = pool.Acquire(t.pages);
  os::World& w = lease.world();
  CoverageScope coverage(w, cover);

  bool needs_driver = false;
  for (const TraceOp& op : t.ops) {
    needs_driver = needs_driver || op.kind == OpKind::kSvc;
  }
  os::EnclaveHandle driver;
  if (needs_driver) {
    auto built = w.os.NewEnclave().Code(DriverProgram()).Build();
    if (!built.ok()) {
      return Fail(-1,
                  "harness: driver build failed: " + std::string(KomErrName(built.error())));
    }
    driver = *std::move(built);
  }

  spec::PageDb d = spec::ExtractPageDb(w.machine);
  for (size_t i = 0; i < t.ops.size(); ++i) {
    const TraceOp& op = t.ops[i];
    switch (op.kind) {
      case OpKind::kPoke:
        ApplyPoke(w, op);  // insecure RAM is outside the PageDb
        break;
      case OpKind::kEnter:
      case OpKind::kResume:
        break;  // no victim in spec-backed traces
      case OpKind::kSmc: {
        const std::array<word, 4> args{op.a[1], op.a[2], op.a[3], op.a[4]};
        const bool enterish = op.a[0] == kSmcEnter || op.a[0] == kSmcResume;
        spec::Result expected{};
        if (with_spec) {
          expected = spec::ApplySmc(d, w.machine, op.a[0], args);
        }
        const os::SmcRet got = w.os.Smc(op.a[0], args[0], args[1], args[2], args[3]);
        if (!with_spec) {
          break;
        }
        if (enterish && expected.err == kErrSuccess) {
          // The guard passed; user-mode execution is havoc in the spec, so
          // accept any legitimate outcome and resynchronize.
          if (got.err != kErrSuccess && got.err != kErrInterrupted && got.err != kErrFault) {
            return Fail(static_cast<int>(i),
                        OpLabel(t, i) + ": enter/resume guard passed in spec but impl says " +
                            KomErrName(got.err));
          }
          if (auto bad = ExtractInto(w, t, i, &d)) {
            return *bad;
          }
        } else {
          if (got.err != expected.err) {
            return Fail(static_cast<int>(i),
                        OpLabel(t, i) + ": smc " + std::to_string(op.a[0]) + " impl=" +
                            KomErrName(got.err) + " spec=" + KomErrName(expected.err));
          }
          d = expected.db;
          spec::PageDb got_db(0);
          if (auto bad = ExtractInto(w, t, i, &got_db)) {
            return *bad;
          }
          if (!(got_db == d)) {
            return Fail(static_cast<int>(i),
                        OpLabel(t, i) + ": smc " + std::to_string(op.a[0]) +
                            " pagedb diverges from spec");
          }
        }
        break;
      }
      case OpKind::kSvc: {
        if (!with_spec) {
          if (auto bad = ExtractInto(w, t, i, &d)) {
            return *bad;
          }
        }
        // Staging the SVC arguments writes the driver's data page directly —
        // the same deus-ex channel the noninterference victims use for their
        // secrets. That is only sound while the page still *is* the driver's
        // data page: the adversary may have stopped and dismantled the driver
        // and recycled its pages into, say, another enclave's page tables,
        // which a direct write would corrupt in ways no real OS can.
        const PageNr data_page = driver.data_pages[1];
        const bool intact = d.ValidPageNr(driver.thread) &&
                            d[driver.thread].type() == PageType::kDispatcher &&
                            d[driver.thread].owner == driver.addrspace &&
                            d.ValidPageNr(data_page) &&
                            d[data_page].type() == PageType::kDataPage &&
                            d[data_page].owner == driver.addrspace;
        if (intact) {
          const paddr data = PagePaddr(data_page);
          for (int j = 0; j < 4; ++j) {
            w.machine.mem.Write(data + static_cast<word>(j) * arm::kWordSize, op.a[j]);
          }
          if (auto bad = ExtractInto(w, t, i, &d)) {
            return *bad;
          }
        }
        if (!with_spec) {
          w.os.Enter(driver.thread);
          break;
        }
        // Check the Enter guard first; only when the intact driver actually
        // runs is the SVC itself comparable against the spec.
        const spec::Result guard = spec::ApplySmc(d, w.machine, kSmcEnter,
                                                  {driver.thread, 0, 0, 0});
        const os::SmcRet got = AbiWords(w.os.Enter(driver.thread));
        if (guard.err != kErrSuccess) {
          if (got.err != guard.err) {
            return Fail(static_cast<int>(i),
                        OpLabel(t, i) + ": driver enter impl=" + KomErrName(got.err) +
                            " spec=" + KomErrName(guard.err));
          }
          break;
        }
        if (!intact || got.err != kErrSuccess) {
          // Some other enclave's code ran, or the driver faulted or was
          // interrupted mid-program: user-execution havoc either way.
          if (got.err != kErrSuccess && got.err != kErrInterrupted && got.err != kErrFault) {
            return Fail(static_cast<int>(i),
                        OpLabel(t, i) + ": enter guard passed in spec but impl says " +
                            KomErrName(got.err));
          }
          if (auto bad = ExtractInto(w, t, i, &d)) {
            return *bad;
          }
          break;
        }
        const spec::Result expected =
            spec::ApplySvc(d, driver.addrspace, op.a[0], {op.a[1], op.a[2], op.a[3]});
        // Attest/Verify write through user VAs (havoc territory); Exit's
        // result is its argument. Everything else must report the spec's
        // error word and land on the spec's PageDb.
        const bool modelled =
            op.a[0] != kSvcExit && op.a[0] != kSvcAttest && op.a[0] != kSvcVerify;
        if (modelled && got.val != expected.err) {
          return Fail(static_cast<int>(i),
                      OpLabel(t, i) + ": svc " + std::to_string(op.a[0]) + " impl result=" +
                          KomErrName(got.val) + " spec=" + KomErrName(expected.err));
        }
        if (modelled) {
          spec::PageDb got_db(0);
          if (auto bad = ExtractInto(w, t, i, &got_db)) {
            return *bad;
          }
          if (!(got_db == expected.db)) {
            return Fail(static_cast<int>(i),
                        OpLabel(t, i) + ": svc " + std::to_string(op.a[0]) +
                            " pagedb diverges from spec");
          }
          d = expected.db;
        } else if (auto bad = ExtractInto(w, t, i, &d)) {
          return *bad;
        }
        break;
      }
    }
    spec::PageDb cur(0);
    if (auto bad = ExtractInto(w, t, i, &cur)) {
      return *bad;
    }
    if (cover != nullptr) {
      HarvestPageDbCoverage(cur, cover);
    }
    const auto violations = spec::PageDbViolations(cur);
    if (!violations.empty()) {
      return Fail(static_cast<int>(i), OpLabel(t, i) + ": invariant: " + violations.front());
    }
  }
  return {};
}

// --- noninterference -----------------------------------------------------------

Verdict RunNoninterference(const Trace& t, WorldPool& pool, CoverageMap* cover) {
  if (t.victim.empty()) {
    return Fail(-1, "harness: noninterference trace needs a victim");
  }
  WorldPool::Lease lease1 = pool.Acquire(t.pages);
  WorldPool::Lease lease2 = pool.Acquire(t.pages);
  os::World& w1 = lease1.world();
  os::World& w2 = lease2.world();
  CoverageScope coverage(w1, cover);
  os::EnclaveHandle v1, v2;
  std::string why;
  if (!BuildVictim(w1, t.victim, &v1, &why) || !BuildVictim(w2, t.victim, &v2, &why)) {
    return Fail(-1, "harness: " + why);
  }
  // Plant differing secrets in the victim's private page (a secret arriving
  // over a secure channel after launch; initial contents are OS-visible).
  const PageNr s1 = v1.data_pages.size() > 1 ? v1.data_pages[1] : v1.data_pages[0];
  const PageNr s2 = v2.data_pages.size() > 1 ? v2.data_pages[1] : v2.data_pages[0];
  w1.machine.mem.Write(PagePaddr(s1), t.secrets[0]);
  w2.machine.mem.Write(PagePaddr(s2), t.secrets[1]);

  for (size_t i = 0; i < t.ops.size(); ++i) {
    const TraceOp& op = t.ops[i];
    os::SmcRet r1{kErrSuccess, 0};
    os::SmcRet r2{kErrSuccess, 0};
    switch (op.kind) {
      case OpKind::kPoke:
        ApplyPoke(w1, op);
        ApplyPoke(w2, op);
        break;
      case OpKind::kSmc:
        r1 = w1.os.Smc(op.a[0], op.a[1], op.a[2], op.a[3], op.a[4]);
        r2 = w2.os.Smc(op.a[0], op.a[1], op.a[2], op.a[3], op.a[4]);
        break;
      case OpKind::kSvc:
        break;  // not generated for paired traces
      case OpKind::kEnter:
        r1 = AbiWords(w1.os.Enter(v1.thread, op.a[1], op.a[2], op.a[3]));
        r2 = AbiWords(w2.os.Enter(v2.thread, op.a[1], op.a[2], op.a[3]));
        break;
      case OpKind::kResume:
        r1 = AbiWords(w1.os.Resume(v1.thread));
        r2 = AbiWords(w2.os.Resume(v2.thread));
        break;
    }
    if (r1.err != r2.err || r1.val != r2.val) {
      std::ostringstream out;
      out << OpLabel(t, i) << ": result differs: (" << KomErrName(r1.err) << ", " << r1.val
          << ") vs (" << KomErrName(r2.err) << ", " << r2.val << ")";
      return Fail(static_cast<int>(i), out.str());
    }
    spec::PageDb d1(0);
    spec::PageDb d2(0);
    if (auto bad = ExtractInto(w1, t, i, &d1)) {
      return *bad;
    }
    if (auto bad = ExtractInto(w2, t, i, &d2)) {
      return *bad;
    }
    if (cover != nullptr) {
      HarvestPageDbCoverage(d1, cover);
    }
    const auto violations =
        spec::AdvEquivViolations(w1.machine, d1, w2.machine, d2, kInvalidPage);
    if (!violations.empty()) {
      return Fail(static_cast<int>(i), OpLabel(t, i) + ": ~adv broken: " + violations.front());
    }
  }
  return {};
}

// --- interp (cached vs uncached vs JIT) -----------------------------------------
//
// Three-way bisimulation. The cached/uncached pair is the original oracle and
// is compared first so its canonical failure details stay stable (the
// committed regression corpus records them). The third world runs the block
// JIT on top of the caches; any architectural divergence from the cached
// world is a translator bug. On hosts without JIT support the third world
// degenerates into a second cached interpreter, which trivially agrees.

Verdict RunInterp(const Trace& t, WorldPool& pool, CoverageMap* cover) {
  WorldPool::Lease lease_c = pool.Acquire(t.pages);
  WorldPool::Lease lease_u = pool.Acquire(t.pages);
  WorldPool::Lease lease_j = pool.Acquire(t.pages);
  os::World& wc = lease_c.world();
  os::World& wu = lease_u.world();
  os::World& wj = lease_j.world();
  // wc/wj set their cache/JIT enablement explicitly below, so their resident
  // decode/JIT entries are legitimate (environment-independent) coverage.
  CoverageScope coverage(wc, cover, {&wc, &wj});
  wc.machine.interp.set_enabled(true);
  wc.machine.jit.set_enabled(false);
  wu.machine.interp.set_enabled(false);
  wu.machine.jit.set_enabled(false);
  wj.machine.interp.set_enabled(true);
  wj.machine.jit.set_enabled(true);
  os::EnclaveHandle vc, vu, vj;
  if (!t.victim.empty()) {
    std::string why;
    if (!BuildVictim(wc, t.victim, &vc, &why) || !BuildVictim(wu, t.victim, &vu, &why) ||
        !BuildVictim(wj, t.victim, &vj, &why)) {
      return Fail(-1, "harness: " + why);
    }
  }
  for (size_t i = 0; i < t.ops.size(); ++i) {
    const TraceOp& op = t.ops[i];
    os::SmcRet rc{kErrSuccess, 0};
    os::SmcRet ru{kErrSuccess, 0};
    os::SmcRet rj{kErrSuccess, 0};
    switch (op.kind) {
      case OpKind::kPoke:
        ApplyPoke(wc, op);
        ApplyPoke(wu, op);
        ApplyPoke(wj, op);
        break;
      case OpKind::kSmc:
        rc = wc.os.Smc(op.a[0], op.a[1], op.a[2], op.a[3], op.a[4]);
        ru = wu.os.Smc(op.a[0], op.a[1], op.a[2], op.a[3], op.a[4]);
        rj = wj.os.Smc(op.a[0], op.a[1], op.a[2], op.a[3], op.a[4]);
        break;
      case OpKind::kSvc:
        break;  // not generated for interp traces
      case OpKind::kEnter:
        if (t.victim.empty()) {
          break;
        }
        rc = AbiWords(wc.os.Enter(vc.thread, op.a[1], op.a[2], op.a[3]));
        ru = AbiWords(wu.os.Enter(vu.thread, op.a[1], op.a[2], op.a[3]));
        rj = AbiWords(wj.os.Enter(vj.thread, op.a[1], op.a[2], op.a[3]));
        break;
      case OpKind::kResume:
        if (t.victim.empty()) {
          break;
        }
        rc = AbiWords(wc.os.Resume(vc.thread));
        ru = AbiWords(wu.os.Resume(vu.thread));
        rj = AbiWords(wj.os.Resume(vj.thread));
        break;
    }
    if (rc.err != ru.err || rc.val != ru.val) {
      std::ostringstream out;
      out << OpLabel(t, i) << ": result differs: cached (" << KomErrName(rc.err) << ", "
          << rc.val << ") vs uncached (" << KomErrName(ru.err) << ", " << ru.val << ")";
      return Fail(static_cast<int>(i), out.str());
    }
    const auto diff = MachineDiff(wc.machine, wu.machine);
    if (!diff.empty()) {
      return Fail(static_cast<int>(i),
                  OpLabel(t, i) + ": cached/uncached state diverges: " + diff.front());
    }
    if (rj.err != rc.err || rj.val != rc.val) {
      std::ostringstream out;
      out << OpLabel(t, i) << ": result differs: jit (" << KomErrName(rj.err) << ", "
          << rj.val << ") vs cached (" << KomErrName(rc.err) << ", " << rc.val << ")";
      return Fail(static_cast<int>(i), out.str());
    }
    const auto jdiff = MachineDiff(wj.machine, wc.machine);
    if (!jdiff.empty()) {
      return Fail(static_cast<int>(i),
                  OpLabel(t, i) + ": jit/cached state diverges: " + jdiff.front());
    }
  }
  return {};
}

}  // namespace

std::vector<std::string> MachineDiff(const arm::MachineState& a, const arm::MachineState& b) {
  std::vector<std::string> v;
  if (!(a.r == b.r)) {
    v.push_back("r0-r12 differ");
  }
  if (!(a.pc == b.pc)) {
    v.push_back("pc differs");
  }
  if (!(a.cpsr == b.cpsr)) {
    v.push_back("cpsr differs");
  }
  if (!(a.sp_banked == b.sp_banked) || !(a.lr_banked == b.lr_banked)) {
    v.push_back("banked sp/lr differ");
  }
  if (!(a.spsr_banked == b.spsr_banked)) {
    v.push_back("banked spsr differ");
  }
  if (!(a.scr_ns == b.scr_ns)) {
    v.push_back("scr.ns differs");
  }
  if (!(a.ttbr0 == b.ttbr0) || !(a.ttbr1 == b.ttbr1)) {
    v.push_back("ttbr differs");
  }
  if (!(a.vbar_secure == b.vbar_secure) || !(a.vbar_monitor == b.vbar_monitor)) {
    v.push_back("vbar differs");
  }
  if (!(a.tlb_consistent == b.tlb_consistent)) {
    v.push_back("tlb-consistency bit differs");
  }
  if (!(a.steps_retired == b.steps_retired)) {
    v.push_back("steps_retired differs");
  }
  if (!(a.cycles.total() == b.cycles.total())) {
    v.push_back("cycle count differs");
  }
  if (!(a.mem == b.mem)) {
    v.push_back("memories diverge");
  }
  return v;
}

Verdict RunTrace(const Trace& t, bool apply_inject, WorldPool* pool, CoverageMap* cover) {
  // One-shot callers get a throwaway pool, which degenerates to the old
  // construct-per-run behaviour (every Acquire builds a fresh world).
  WorldPool local_pool;
  WorldPool& p = pool != nullptr ? *pool : local_pool;
  const std::string inject = apply_inject ? t.inject : std::string();
  ScopedInject scoped(inject);
  if (!inject.empty() && !SetInjectByName(inject)) {
    return Fail(-1, "harness: unknown injection '" + inject + "'");
  }
  if (t.oracle == "refinement") {
    return RunSpecBacked(t, /*with_spec=*/true, p, cover);
  }
  if (t.oracle == "invariants") {
    return RunSpecBacked(t, /*with_spec=*/false, p, cover);
  }
  if (t.oracle == "noninterference") {
    return RunNoninterference(t, p, cover);
  }
  if (t.oracle == "interp") {
    return RunInterp(t, p, cover);
  }
  return Fail(-1, "harness: unknown oracle '" + t.oracle + "'");
}

}  // namespace komodo::fuzz
