#include "src/fuzz/generator.h"

#include "src/arm/assembler.h"
#include "src/arm/types.h"
#include "src/core/kom_defs.h"
#include "src/os/adversary.h"
#include "src/os/os.h"

namespace komodo::fuzz {

word RandomEnclaveInsn(crypto::HashDrbg& drbg) {
  using namespace arm;
  Instruction insn;
  insn.cond = static_cast<Cond>(drbg.Below(15));
  switch (drbg.Below(8)) {
    case 0:
    case 1: {  // data-processing, immediate
      static constexpr Op kOps[] = {Op::kAnd, Op::kEor, Op::kSub, Op::kAdd, Op::kOrr,
                                    Op::kMov, Op::kBic, Op::kMvn, Op::kCmp, Op::kTst};
      insn.op = kOps[drbg.Below(10)];
      insn.set_flags = drbg.Below(2) != 0;
      insn.rd = static_cast<Reg>(drbg.Below(13));  // keep PC out of rd
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.op2 = Operand2::Imm(static_cast<uint8_t>(drbg.Below(256)),
                               static_cast<uint8_t>(drbg.Below(16)));
      break;
    }
    case 2: {  // data-processing, shifted register
      insn.op = Op::kAdd;
      insn.rd = static_cast<Reg>(drbg.Below(13));
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.op2 = Operand2::Rm(static_cast<Reg>(drbg.Below(13)),
                              static_cast<ShiftKind>(drbg.Below(4)),
                              static_cast<uint8_t>(drbg.Below(32)));
      break;
    }
    case 3: {  // multiply
      insn.op = Op::kMul;
      insn.rd = static_cast<Reg>(drbg.Below(13));
      insn.rm = static_cast<Reg>(drbg.Below(13));
      insn.rn = static_cast<Reg>(drbg.Below(13));
      break;
    }
    case 4: {  // load/store — mostly wild addresses
      insn.op = drbg.Below(2) ? Op::kLdr : Op::kStr;
      insn.rd = static_cast<Reg>(drbg.Below(13));
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.mem_imm12 = static_cast<uint16_t>(drbg.Below(0x1000));
      insn.mem_add = drbg.Below(2) != 0;
      break;
    }
    case 5: {  // block transfer
      insn.op = drbg.Below(2) ? Op::kLdm : Op::kStm;
      insn.rn = static_cast<Reg>(drbg.Below(13));
      insn.reg_list = static_cast<uint16_t>(drbg.Below(0x2000) | 1);  // nonempty, no PC
      insn.block_pre = drbg.Below(2) != 0;
      insn.mem_add = drbg.Below(2) != 0;
      insn.block_wback = drbg.Below(2) != 0;
      break;
    }
    case 6: {  // branch (short offsets so it stays near the code page)
      insn.op = Op::kB;
      insn.branch_offset = (static_cast<int32_t>(drbg.Below(64)) - 32) * 4;
      break;
    }
    default: {  // SVC with a random call number and whatever is in the regs
      insn.op = Op::kSvc;
      insn.trap_imm = drbg.Below(4);
      break;
    }
  }
  return Encode(insn);
}

arm::Instruction RandomFlatInsn(crypto::HashDrbg& drbg) {
  using namespace arm;
  Instruction insn;
  insn.cond = static_cast<Cond>(drbg.Below(15));  // all conditions incl. kAl
  const uint32_t kind = drbg.Below(10);
  const Reg rd = static_cast<Reg>(drbg.Below(10));
  const Reg rn = static_cast<Reg>(drbg.Below(12));
  const Reg rm = static_cast<Reg>(drbg.Below(12));
  if (kind < 6) {  // data-processing
    insn.op = static_cast<Op>(drbg.Below(16));  // kAnd..kMvn
    insn.set_flags = drbg.Below(2) != 0;
    if (insn.op == Op::kTst || insn.op == Op::kTeq || insn.op == Op::kCmp ||
        insn.op == Op::kCmn) {
      insn.set_flags = true;
    }
    insn.rd = rd;
    insn.rn = rn;
    if (drbg.Below(2) != 0) {
      insn.op2 = Operand2::Imm(static_cast<uint8_t>(drbg.Below(256)),
                               static_cast<uint8_t>(drbg.Below(16)));
    } else {
      insn.op2 = Operand2::Rm(rm, static_cast<ShiftKind>(drbg.Below(4)),
                              static_cast<uint8_t>(drbg.Below(32)));
    }
  } else if (kind < 7) {  // multiply
    insn.op = Op::kMul;
    insn.rd = rd;
    insn.rm = static_cast<Reg>(drbg.Below(10));
    insn.rn = static_cast<Reg>(drbg.Below(10));  // Rs in the MUL encoding
    if (insn.rm == insn.rd) {  // Rd==Rm is UNPREDICTABLE; sidestep it
      insn.rm = static_cast<Reg>((insn.rm + 1) % 10);
    }
  } else {  // load/store word through the scratch base
    insn.op = drbg.Below(2) != 0 ? Op::kLdr : Op::kStr;
    insn.rd = rd;
    insn.rn = R10;
    insn.mem_imm12 = static_cast<uint16_t>(drbg.Below(64) * kWordSize);
    insn.mem_add = true;
  }
  return insn;
}

word RandomCodeWord(crypto::HashDrbg& drbg) {
  const uint32_t roll = drbg.Below(16);
  if (roll == 0) {
    return drbg.NextWord();  // fully random: usually undefined, sometimes wild
  }
  if (roll == 1) {
    // cond=0b1111: one past the 0b1110 "always" boundary — must decode as
    // undefined, never as an executed instruction.
    return 0xf000'0000u | (drbg.NextWord() & 0x0fff'ffffu);
  }
  return RandomEnclaveInsn(drbg);
}

namespace {

std::vector<word> InternalComputeProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R5, R4, 0);
  a.Mul(R6, R5, R5);
  a.Str(R6, R4, 4);
  a.MovImm(R1, 0);
  a.MovImm(R0, kSvcExit);
  a.Svc();
  return a.Finish();
}

// Loads the secret into exactly the registers the SMC epilogue must scrub
// (r2, r3, r12 — §5.2), then spins until the step budget interrupts it.
std::vector<word> SpinScratchProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R2, R4, 0);
  a.Mov(R3, R2);
  a.Mov(R12, R2);
  Assembler::Label loop = a.NewLabel();
  a.Bind(loop);
  a.Add(R8, R8, 1u);
  a.B(loop);
  return a.Finish();
}

// Loads the secret into r2, then data-aborts on an unmapped store: the fault
// return path must scrub scratch registers just like the exit path.
std::vector<word> FaultSecretProgram() {
  arm::Assembler a(os::kEnclaveCodeVa);
  using namespace arm;
  a.MovImm(R4, os::kEnclaveDataVa);
  a.Ldr(R2, R4, 0);
  a.MovImm(R6, 0x3f00'0000);  // unmapped
  a.Str(R2, R6, 0);           // data abort
  return a.Finish();
}

// The self-modifying loop of the interp-diff suite, relocated into an
// enclave: ADD R0,R0,#1 on the first pass, rewritten to ADD R0,R0,#2 for the
// remaining two, so r0 ends at 5 — a machine replaying a stale decode ends at
// 3. Exits with r0 as the return value.
std::vector<word> SelfModifyProgram() {
  using namespace arm;
  Instruction add2;
  add2.op = Op::kAdd;
  add2.rd = R0;
  add2.rn = R0;
  add2.op2 = Operand2::Imm(2);

  // Two-pass assembly: the rewritten instruction's address depends only on
  // the fixed prologue, so learn it with a placeholder first.
  vaddr target_addr = 0;
  std::vector<word> code;
  for (int pass = 0; pass < 2; ++pass) {
    Assembler a(os::kEnclaveCodeVa);
    a.MovImm(R0, 0);
    a.MovImm(R2, 0);             // iteration counter
    a.MovImm(R4, Encode(add2));  // replacement encoding
    Assembler::Label loop = a.NewLabel();
    a.Bind(loop);
    const vaddr here = a.CurrentAddr();
    a.Add(R0, R0, 1);  // the instruction that gets rewritten
    a.MovImm(R3, target_addr);
    a.Str(R4, R3, 0);  // overwrite the ADD above
    a.Add(R2, R2, 1);
    a.Cmp(R2, 3);
    a.B(loop, Cond::kNe);
    a.Mov(R1, R0);
    a.MovImm(R0, kSvcExit);
    a.Svc();
    code = a.Finish();
    target_addr = here;
  }
  return code;
}

}  // namespace

std::vector<word> VictimProgram(const std::string& name) {
  if (name == "internal-compute") {
    return InternalComputeProgram();
  }
  if (name == "spin-scratch") {
    return SpinScratchProgram();
  }
  if (name == "fault-secret") {
    return FaultSecretProgram();
  }
  if (name == "self-modify") {
    return SelfModifyProgram();
  }
  return {};
}

bool VictimWantsWritableCode(const std::string& name) { return name == "self-modify"; }

std::vector<std::string> OracleNames() {
  return {"refinement", "invariants", "noninterference", "interp"};
}

Trace GenerateTrace(const std::string& oracle, uint64_t seed, size_t nops) {
  // Mix the oracle name into the seed material so the four campaigns explore
  // different traces even from the same master seed.
  std::vector<uint8_t> material;
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<uint8_t>(seed >> (8 * i)));
  }
  material.insert(material.end(), oracle.begin(), oracle.end());
  crypto::HashDrbg drbg(material);

  Trace t;
  t.oracle = oracle;
  t.seed = seed;
  const bool paired = oracle == "noninterference";
  const bool interp = oracle == "interp";
  const bool with_svc = oracle == "refinement" || oracle == "invariants";
  t.pages = (paired || interp) ? 64 : 24;
  if (paired) {
    t.victim = kVictimNames[drbg.Below(3)];  // the secret-bearing victims
    t.secrets[0] = drbg.NextWord();
    t.secrets[1] = drbg.NextWord();
  } else if (interp && drbg.Below(2) == 0) {
    t.victim = "self-modify";
  }

  os::Adversary adv(t.pages, drbg.NextU64());
  for (size_t i = 0; i < nops; ++i) {
    TraceOp op;
    const uint32_t roll = drbg.Below(16);
    if (roll < 3) {
      // Stage code/data in the insecure pages MapSecure draws from, so
      // accidentally-built enclaves run fuzzed instruction streams.
      op.kind = OpKind::kPoke;
      op.a[0] = 32 + drbg.Below(16);
      op.a[1] = drbg.Below(arm::kWordsPerPage);
      op.a[2] = RandomCodeWord(drbg);
    } else if (!t.victim.empty() && roll < 6) {
      if (drbg.Below(4) == 0) {
        op.kind = OpKind::kResume;
      } else {
        op.kind = OpKind::kEnter;
        for (int j = 1; j <= 3; ++j) {
          op.a[j] = drbg.Below(2) != 0 ? drbg.Below(64) : drbg.NextWord();
        }
      }
    } else if (with_svc && roll < 6) {
      op.kind = OpKind::kSvc;
      static constexpr word kSvcs[] = {kSvcExit,   kSvcGetRandom,   kSvcAttest,
                                       kSvcVerify, kSvcInitL2Table, kSvcMapData,
                                       kSvcUnmapData, 99};
      op.a[0] = kSvcs[drbg.Below(8)];
      for (int j = 1; j <= 3; ++j) {
        switch (drbg.Below(4)) {
          case 0:
            op.a[j] = drbg.Below(16);  // page-number shaped
            break;
          case 1:
            op.a[j] = MakeMapping(drbg.Below(64) * arm::kPageSize, kMapR | kMapW);
            break;
          case 2:
            op.a[j] = drbg.Below(4096);  // small VA / index shaped
            break;
          default:
            op.a[j] = drbg.NextWord();
            break;
        }
      }
    } else {
      op.kind = OpKind::kSmc;
      if (drbg.Below(8) == 0) {
        // Raw Enter/Resume at an adversary-guessed page: exercises the guard
        // paths, and user execution itself when it lands on a real thread.
        op.a[0] = drbg.Below(2) != 0 ? kSmcEnter : kSmcResume;
        op.a[1] = drbg.Below(16);
        op.a[2] = drbg.Below(64);
        op.a[3] = drbg.Below(64);
      } else {
        os::AdvAction act = adv.NextAction();
        // Bias toward *runnable* enclaves: entrypoints and code mappings at
        // the conventional code VA make accidental Enter successes common.
        if (act.call == kSmcInitThread && drbg.Below(2) == 0) {
          act.args[2] = os::kEnclaveCodeVa;
        }
        if (act.call == kSmcMapSecure && drbg.Below(2) == 0) {
          act.args[2] = MakeMapping(os::kEnclaveCodeVa, kMapR | kMapW | kMapX);
        }
        op.a[0] = act.call;
        for (int j = 0; j < 4; ++j) {
          op.a[1 + j] = act.args[j];
        }
      }
    }
    t.ops.push_back(op);
  }
  return t;
}

}  // namespace komodo::fuzz
