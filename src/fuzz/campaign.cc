#include "src/fuzz/campaign.h"

#include <chrono>
#include <sstream>

#include "src/crypto/sha256.h"
#include "src/fuzz/generator.h"

namespace komodo::fuzz {

namespace {

void HashString(crypto::Sha256& h, const std::string& s) {
  h.Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::string VerdictLine(const Verdict& v) {
  std::ostringstream out;
  out << "failed=" << (v.failed ? 1 : 0) << " op=" << v.failing_op << " " << v.detail << "\n";
  return out.str();
}

}  // namespace

CampaignResult RunCampaign(const CampaignOptions& opts,
                           const std::function<void(const std::string&)>& log) {
  CampaignResult result;
  crypto::Sha256 hash;
  std::vector<std::string> oracles = opts.oracles;
  if (oracles.empty()) {
    oracles = OracleNames();
  }

  for (const std::string& oracle : oracles) {
    OracleStats st;
    st.oracle = oracle;
    const auto start = std::chrono::steady_clock::now();
    // Each trace gets its own seed derived from the master seed; the
    // splitmix64 increment keeps neighbouring master seeds from overlapping.
    for (uint64_t k = 0; st.calls < opts.calls; ++k) {
      const uint64_t trace_seed = opts.seed + 0x9e3779b97f4a7c15ull * (k + 1);
      Trace t = GenerateTrace(oracle, trace_seed, opts.trace_len);
      t.inject = opts.inject;
      const Verdict v = RunTrace(t);
      ++st.traces;
      st.calls += t.CallCount();
      HashString(hash, t.Format());
      HashString(hash, VerdictLine(v));
      if (v.failed) {
        st.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                         .count();
        result.stats.push_back(st);
        result.failed = true;
        result.original = t;
        result.verdict = v;
        if (log) {
          std::ostringstream out;
          out << "FAIL oracle=" << oracle << " trace-seed=" << trace_seed << " "
              << v.detail;
          log(out.str());
        }
        result.witness =
            opts.shrink
                ? ShrinkTrace(t, [](const Trace& c) { return RunTrace(c); }, &result.shrink)
                : t;
        if (log && opts.shrink) {
          std::ostringstream out;
          out << "shrunk " << result.shrink.ops_before << " -> " << result.shrink.ops_after
              << " ops (" << result.witness.CallCount() << " calls, "
              << result.shrink.evaluations << " oracle runs)";
          log(out.str());
        }
        const crypto::Digest digest = hash.Finalize();
        result.hash = crypto::DigestToHex(digest);
        return result;
      }
    }
    st.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    result.stats.push_back(st);
    if (log) {
      std::ostringstream out;
      out << "oracle " << oracle << ": " << st.calls << " calls in " << st.traces
          << " traces, " << st.seconds << "s";
      log(out.str());
    }
  }
  const crypto::Digest digest = hash.Finalize();
  result.hash = crypto::DigestToHex(digest);
  return result;
}

}  // namespace komodo::fuzz
