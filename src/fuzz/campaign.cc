#include "src/fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "src/crypto/sha256.h"
#include "src/fuzz/coverage.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/mutate.h"
#include "src/fuzz/pool.h"

namespace komodo::fuzz {

namespace {

void HashString(crypto::Sha256& h, const std::string& s) {
  h.Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::string VerdictLine(const Verdict& v) {
  std::ostringstream out;
  out << "failed=" << (v.failed ? 1 : 0) << " op=" << v.failing_op << " " << v.detail << "\n";
  return out.str();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// CPU time of the calling thread — the per-shard cost figure that stays
// comparable whether shards timeslice one core or spread over eight.
double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0.0;
  }
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

using Clock = std::chrono::steady_clock;

// One (oracle, shard) work unit; tasks are indexed in canonical order
// (oracle-major, shard-minor), which is also the hash-merge order.
struct ShardTask {
  size_t oracle_idx = 0;
  uint32_t shard = 0;
  uint64_t call_budget = 0;
};

struct ShardFailure {
  uint64_t trace_index = 0;  // k within the shard's stream
  Trace trace;
  Verdict verdict;
};

// A trace that discovered coverage its shard had not seen: carried to the
// round barrier with its full key set, so the canonical merge can recompute
// the gain against the true global map.
struct EvolveCandidate {
  uint64_t k = 0;
  Trace trace;
  CoverageMap keys;
};

struct ShardOutcome {
  uint64_t traces = 0;
  uint64_t calls = 0;
  double cpu_seconds = 0.0;
  double done_at = 0.0;  // wall seconds since campaign start at completion
  std::string digest;    // SHA-256 hex over this shard's traces + verdicts
  std::optional<ShardFailure> failure;
  CoverageMap cover;     // blind + measure_coverage: keys seen (never hashed)
  std::vector<EvolveCandidate> candidates;  // evolve: local-gain traces, k order
};

// The canonical task list for one generation of work: oracle-major,
// shard-minor. The call budget splits as evenly as the integer division
// allows, remainder to the lowest shard indices, so the split — and thus the
// hash — depends only on (calls, shards).
std::vector<ShardTask> MakeTasks(size_t noracles, uint64_t calls, uint32_t shards) {
  std::vector<ShardTask> tasks;
  for (size_t o = 0; o < noracles; ++o) {
    const uint64_t base = calls / shards;
    const uint64_t remainder = calls % shards;
    for (uint32_t s = 0; s < shards; ++s) {
      tasks.push_back({o, s, base + (s < remainder ? 1 : 0)});
    }
  }
  return tasks;
}

// Runs one blind shard to its call budget (or its first failure), hashing
// every generated trace and verdict into the shard digest. With
// measure_coverage, each run additionally harvests its coverage keys into
// out.cover — informational only, never hashed, so the v2 campaign hash is
// byte-identical with the measurement on or off.
ShardOutcome RunShard(const CampaignOptions& opts, const std::string& oracle,
                      const ShardTask& task, WorldPool& pool, Clock::time_point campaign_start) {
  ShardOutcome out;
  const double cpu_begin = ThreadCpuSeconds();
  crypto::Sha256 hash;
  for (uint64_t k = 0; out.calls < task.call_budget; ++k) {
    Trace t = GenerateTrace(oracle, ShardTraceSeed(opts.seed, task.shard, k), opts.trace_len);
    t.inject = opts.inject;
    const Verdict v =
        RunTrace(t, /*apply_inject=*/true, &pool, opts.measure_coverage ? &out.cover : nullptr);
    ++out.traces;
    out.calls += t.CallCount();
    HashString(hash, t.Format());
    HashString(hash, VerdictLine(v));
    if (v.failed) {
      out.failure = ShardFailure{k, std::move(t), v};
      break;
    }
  }
  out.digest = crypto::DigestToHex(hash.Finalize());
  out.cpu_seconds = ThreadCpuSeconds() - cpu_begin;
  out.done_at = std::chrono::duration<double>(Clock::now() - campaign_start).count();
  return out;
}

// Runs one evolve shard of one round. Candidates come from the shard's seed
// stream: a fresh trace while the corpus is empty (or on a deterministic 1/8
// refresh draw), otherwise a mutation of the round-start corpus snapshot.
// Gains are measured against a shard-local copy of the round-start coverage
// (plus the shard's own discoveries), so the shard never reads shared state;
// every local discovery travels to the barrier with its full key set. The
// shard digest additionally pins each run's coverage size and local gain.
ShardOutcome RunEvolveShard(const CampaignOptions& opts, const std::string& oracle,
                            const ShardTask& task, uint32_t round, const CoverageMap& snapshot,
                            const std::vector<const Trace*>& parents, WorldPool& pool,
                            Clock::time_point campaign_start) {
  ShardOutcome out;
  const double cpu_begin = ThreadCpuSeconds();
  crypto::Sha256 hash;
  CoverageMap seen = snapshot;
  const uint64_t round_seed = EvolveRoundSeed(opts.seed, round);
  for (uint64_t k = 0; out.calls < task.call_budget; ++k) {
    const uint64_t trace_seed = ShardTraceSeed(round_seed, task.shard, k);
    Trace t;
    if (parents.empty() || SplitMix64(trace_seed ^ 0x65766f6c76653a31ull) % 8 == 0) {
      t = GenerateTrace(oracle, trace_seed, opts.trace_len);
    } else {
      // Mutations may grow past the base length, doubling the cap each
      // round: extensions of already-interesting traces buy *depth* —
      // structural features (refcounts, table fill, page populations) a
      // fresh trace of trace_len ops can never produce. Shallow coverage
      // saturates within the first round, so later rounds spend their calls
      // where the marginal novelty is: deeper in the state space. The cap
      // compounds exponentially because an extension replays its parent as
      // a prefix — linear growth would spend most of the budget
      // re-executing known ops, exponential growth keeps the replayed
      // prefix a constant fraction of each lineage. The cap is additionally
      // clamped so one mutant cannot dwarf the cell's remaining call budget
      // (roughly half of a trace's ops are calls): unbounded depth at small
      // budgets makes evolve overshoot blind's executed calls by 50%+, which
      // would invalidate the equal-budget comparison.
      const uint64_t remaining = task.call_budget - out.calls;
      const size_t cap = std::min<size_t>(opts.trace_len << std::min(round, 3u),
                                          std::max<uint64_t>(opts.trace_len, 2 * remaining));
      t = MutateTrace(parents, trace_seed, cap);
    }
    t.inject = opts.inject;
    CoverageMap got;
    const Verdict v = RunTrace(t, /*apply_inject=*/true, &pool, &got);
    ++out.traces;
    out.calls += t.CallCount();
    const size_t gain = seen.Merge(got);
    HashString(hash, t.Format());
    HashString(hash, VerdictLine(v));
    std::ostringstream cover_line;
    cover_line << "cover total=" << got.size() << " new=" << gain << "\n";
    HashString(hash, cover_line.str());
    if (v.failed) {
      out.failure = ShardFailure{k, std::move(t), v};
      break;
    }
    if (gain > 0) {
      out.candidates.push_back({k, std::move(t), std::move(got)});
    }
  }
  out.digest = crypto::DigestToHex(hash.Finalize());
  out.cpu_seconds = ThreadCpuSeconds() - cpu_begin;
  out.done_at = std::chrono::duration<double>(Clock::now() - campaign_start).count();
  return out;
}

// Executes `tasks` with the requested parallelism. `pools` persists across
// calls (rounds) so pooled worlds stay warm; pools[w] is only ever touched by
// the worker holding index w, and successive rounds hand a pool to its next
// worker through thread join/spawn (a synchronization point), so every pool
// — and the worlds, monitors and tracers inside — stays effectively
// thread-confined.
void ExecuteTasks(const std::vector<ShardTask>& tasks, unsigned jobs,
                  std::vector<std::unique_ptr<WorldPool>>& pools,
                  const std::function<ShardOutcome(const ShardTask&, WorldPool&)>& run,
                  std::vector<ShardOutcome>& outcomes) {
  if (jobs <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      outcomes[i] = run(tasks[i], *pools[0]);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    workers.emplace_back([&, w]() {
      for (size_t i = next.fetch_add(1); i < tasks.size(); i = next.fetch_add(1)) {
        outcomes[i] = run(tasks[i], *pools[w]);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
}

// Folds one outcome into the per-oracle stats (allocating the oracle's row
// when its first shard arrives) and the campaign hash.
void MergeStatsAndHash(const std::vector<std::string>& oracles, const ShardTask& task,
                       const ShardOutcome& out, const std::string& line_prefix,
                       std::vector<OracleStats>& stats, crypto::Sha256& hash) {
  OracleStats& st = stats[task.oracle_idx];
  st.oracle = oracles[task.oracle_idx];
  st.traces += out.traces;
  st.calls += out.calls;
  st.cpu_seconds += out.cpu_seconds;
  st.seconds = std::max(st.seconds, out.done_at);
  std::ostringstream line;
  line << line_prefix << "oracle=" << oracles[task.oracle_idx] << " shard=" << task.shard
       << " traces=" << out.traces << " calls=" << out.calls << " digest=" << out.digest
       << "\n";
  HashString(hash, line.str());
}

// Shrinks and reports the canonically first failure (shared by both modes).
void ReportFailure(const CampaignOptions& opts, const ShardFailure& failure,
                   const std::function<void(const std::string&)>& log, CampaignResult& result) {
  result.failed = true;
  result.original = failure.trace;
  result.verdict = failure.verdict;
  if (log) {
    std::ostringstream out;
    out << "FAIL oracle=" << result.original.oracle << " trace-seed=" << result.original.seed
        << " " << result.verdict.detail;
    log(out.str());
  }
  if (opts.shrink) {
    WorldPool shrink_pool(FuzzMonitorConfig(), opts.reuse_worlds);
    result.witness = ShrinkTrace(
        result.original, [&](const Trace& c) { return RunTrace(c, true, &shrink_pool); },
        &result.shrink);
    if (log) {
      std::ostringstream out;
      out << "shrunk " << result.shrink.ops_before << " -> " << result.shrink.ops_after
          << " ops (" << result.witness.CallCount() << " calls, " << result.shrink.evaluations
          << " oracle runs)";
      log(out.str());
    }
  } else {
    result.witness = result.original;
  }
}

unsigned ResolveJobs(const CampaignOptions& opts, size_t ntasks) {
  unsigned jobs = opts.jobs > 0 ? static_cast<unsigned>(opts.jobs)
                                : std::max(1u, std::thread::hardware_concurrency());
  return std::min<unsigned>(jobs, static_cast<unsigned>(ntasks));
}

CampaignResult RunBlindCampaign(const CampaignOptions& opts,
                                const std::function<void(const std::string&)>& log) {
  CampaignResult result;
  const Clock::time_point start = Clock::now();
  std::vector<std::string> oracles = opts.oracles;
  if (oracles.empty()) {
    oracles = OracleNames();
  }
  const uint32_t shards = opts.shards == 0 ? 1 : opts.shards;
  const std::vector<ShardTask> tasks = MakeTasks(oracles.size(), opts.calls, shards);
  std::vector<ShardOutcome> outcomes(tasks.size());

  const unsigned jobs = ResolveJobs(opts, tasks.size());
  std::vector<std::unique_ptr<WorldPool>> pools(std::max(1u, jobs));
  for (auto& p : pools) {
    p = std::make_unique<WorldPool>(FuzzMonitorConfig(), opts.reuse_worlds);
  }
  ExecuteTasks(
      tasks, jobs, pools,
      [&](const ShardTask& task, WorldPool& pool) {
        return RunShard(opts, oracles[task.oracle_idx], task, pool, start);
      },
      outcomes);

  for (const auto& p : pools) {
    result.worlds_built += p->stats().constructions;
    result.worlds_reused += p->stats().resets;
    result.pages_restored += p->stats().pages_restored;
  }

  // Canonical merge: per-oracle stats, the campaign hash over the per-shard
  // digests in task order, and the canonically first failure.
  crypto::Sha256 hash;
  {
    std::ostringstream header;
    header << "komodo-fuzz-campaign-hash v2 shards=" << shards << "\n";
    HashString(hash, header.str());
  }
  result.stats.resize(oracles.size());
  std::vector<CoverageMap> covers(oracles.size());
  const ShardFailure* first_failure = nullptr;
  for (size_t i = 0; i < tasks.size(); ++i) {
    MergeStatsAndHash(oracles, tasks[i], outcomes[i], "", result.stats, hash);
    if (opts.measure_coverage) {
      covers[tasks[i].oracle_idx].Merge(outcomes[i].cover);
    }
    if (first_failure == nullptr && outcomes[i].failure.has_value()) {
      first_failure = &*outcomes[i].failure;  // task order is canonical order
    }
  }
  result.hash = crypto::DigestToHex(hash.Finalize());
  if (opts.measure_coverage) {
    for (size_t o = 0; o < oracles.size(); ++o) {
      result.stats[o].coverage_keys = covers[o].size();
      result.coverage_keys += covers[o].size();
    }
  }

  if (log) {
    for (const OracleStats& st : result.stats) {
      std::ostringstream out;
      out << "oracle " << st.oracle << ": " << st.calls << " calls in " << st.traces
          << " traces, " << st.cpu_seconds << "s cpu";
      log(out.str());
    }
  }
  if (first_failure != nullptr) {
    ReportFailure(opts, *first_failure, log, result);
  }
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

// Evolve mode: `rounds` synchronous generations over the same sharded
// skeleton. All shared state (per-oracle coverage map + corpus) is read-only
// during a round and advances only at the round barrier, in canonical task
// order — the determinism argument is in DESIGN.md §15.
CampaignResult RunEvolveCampaign(const CampaignOptions& opts,
                                 const std::function<void(const std::string&)>& log) {
  CampaignResult result;
  const Clock::time_point start = Clock::now();
  std::vector<std::string> oracles = opts.oracles;
  if (oracles.empty()) {
    oracles = OracleNames();
  }
  const uint32_t shards = opts.shards == 0 ? 1 : opts.shards;
  const uint32_t rounds = opts.rounds == 0 ? 1 : opts.rounds;

  crypto::Sha256 hash;
  {
    std::ostringstream header;
    header << "komodo-fuzz-campaign-hash v3 mode=evolve shards=" << shards
           << " rounds=" << rounds << " max-corpus=" << opts.max_corpus << "\n";
    HashString(hash, header.str());
  }

  result.stats.resize(oracles.size());
  std::vector<CoverageMap> cover(oracles.size());
  std::vector<Corpus> corpora(oracles.size());
  std::vector<uint64_t> next_seq(oracles.size(), 0);
  std::optional<ShardFailure> first_failure;

  // Pools persist across rounds so pooled worlds stay warm (see ExecuteTasks
  // for the thread-confinement argument).
  const unsigned jobs = ResolveJobs(opts, oracles.size() * shards);
  std::vector<std::unique_ptr<WorldPool>> pools(std::max(1u, jobs));
  for (auto& p : pools) {
    p = std::make_unique<WorldPool>(FuzzMonitorConfig(), opts.reuse_worlds);
  }

  // Per-(oracle, shard) call ledger. Each shard owns the same total budget a
  // blind shard would (calls/shards, remainder to the low indices); round r
  // lets it spend up to the cumulative target total·(r+1)/rounds. A shard
  // whose last trace overshot one round's allowance runs correspondingly
  // less in the next, so — like blind — a shard overshoots its *total*
  // budget by at most one trace, and equal --calls means equal executed
  // calls (evolve is never gifted extra budget by its round structure).
  // (The uniform split beats front- or back-loaded schedules empirically:
  // later rounds need depth budget, but shallow breadth keys come from fresh
  // trace diversity, which every round must keep contributing.)
  const auto shard_total = [&](uint32_t s) {
    return opts.calls / shards + (s < opts.calls % shards ? 1 : 0);
  };
  std::vector<std::vector<uint64_t>> spent(oracles.size(),
                                           std::vector<uint64_t>(shards, 0));

  for (uint32_t r = 0; r < rounds; ++r) {
    std::vector<ShardTask> tasks;
    for (size_t o = 0; o < oracles.size(); ++o) {
      for (uint32_t s = 0; s < shards; ++s) {
        const uint64_t target = shard_total(s) * (r + 1) / rounds;
        const uint64_t used = spent[o][s];
        tasks.push_back({o, s, target > used ? target - used : 0});
      }
    }
    std::vector<ShardOutcome> outcomes(tasks.size());

    // Round-start snapshots: shards read these, never the live maps.
    std::vector<std::vector<const Trace*>> parents(oracles.size());
    for (size_t o = 0; o < oracles.size(); ++o) {
      parents[o] = corpora[o].Traces();
    }
    ExecuteTasks(
        tasks, jobs, pools,
        [&](const ShardTask& task, WorldPool& pool) {
          return RunEvolveShard(opts, oracles[task.oracle_idx], task, r,
                                cover[task.oracle_idx], parents[task.oracle_idx], pool, start);
        },
        outcomes);

    // Round barrier: canonical merge. Recomputing each candidate's gain
    // against the true global map (updated as we go, in task order) makes the
    // admitted corpus independent of which worker ran which shard.
    std::ostringstream round_prefix;
    round_prefix << "round=" << r << " ";
    for (size_t i = 0; i < tasks.size(); ++i) {
      const ShardTask& task = tasks[i];
      ShardOutcome& out = outcomes[i];
      MergeStatsAndHash(oracles, task, out, round_prefix.str(), result.stats, hash);
      spent[task.oracle_idx][task.shard] += out.calls;
      if (!first_failure.has_value() && out.failure.has_value()) {
        first_failure = std::move(out.failure);  // (round, task) order is canonical
      }
      for (EvolveCandidate& cand : out.candidates) {
        const size_t gain = cover[task.oracle_idx].Merge(cand.keys);
        if (gain > 0) {
          corpora[task.oracle_idx].Add(std::move(cand.trace), gain, r,
                                       next_seq[task.oracle_idx]++);
        }
      }
    }
    uint64_t total_cover = 0;
    uint64_t total_corpus = 0;
    for (size_t o = 0; o < oracles.size(); ++o) {
      corpora[o].Trim(opts.max_corpus);
      total_cover += cover[o].size();
      total_corpus += corpora[o].size();
    }
    result.coverage_curve.push_back(total_cover);
    if (log) {
      std::ostringstream out;
      out << "evolve round " << r << ": coverage-keys=" << total_cover
          << " corpus=" << total_corpus;
      log(out.str());
    }
  }

  // Final corpus + coverage lines pin the evolved state in the hash.
  for (size_t o = 0; o < oracles.size(); ++o) {
    result.stats[o].oracle = oracles[o];  // zero-round edge: rows still labelled
    result.stats[o].coverage_keys = cover[o].size();
    result.stats[o].corpus_entries = corpora[o].size();
    result.coverage_keys += cover[o].size();
    std::ostringstream line;
    line << "oracle=" << oracles[o] << " corpus=" << corpora[o].size()
         << " coverage-keys=" << cover[o].size() << " corpus-digest=" << corpora[o].Digest()
         << " coverage-digest=" << cover[o].Digest() << "\n";
    HashString(hash, line.str());
  }
  result.hash = crypto::DigestToHex(hash.Finalize());

  for (const auto& p : pools) {
    result.worlds_built += p->stats().constructions;
    result.worlds_reused += p->stats().resets;
    result.pages_restored += p->stats().pages_restored;
  }

  if (log) {
    for (const OracleStats& st : result.stats) {
      std::ostringstream out;
      out << "oracle " << st.oracle << ": " << st.calls << " calls in " << st.traces
          << " traces, " << st.cpu_seconds << "s cpu, coverage-keys=" << st.coverage_keys
          << " corpus=" << st.corpus_entries;
      log(out.str());
    }
  }

  if (!opts.corpus_dir.empty()) {
    for (size_t o = 0; o < oracles.size(); ++o) {
      if (!corpora[o].SaveDir(opts.corpus_dir + "/" + oracles[o]) && log) {
        log("evolve: cannot write corpus under " + opts.corpus_dir + "/" + oracles[o]);
      }
    }
  }
  result.corpora = std::move(corpora);

  if (first_failure.has_value()) {
    ReportFailure(opts, *first_failure, log, result);
  }
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace

uint64_t ShardTraceSeed(uint64_t seed, uint32_t shard, uint64_t k) {
  // Diffuse the shard index through splitmix64 before mixing in the per-trace
  // counter: shard streams stay disjoint even for adjacent master seeds, and
  // the k-increment cannot walk one shard's stream into another's.
  return SplitMix64(SplitMix64(seed ^ (0x9e3779b97f4a7c15ull * (shard + 1))) + k);
}

uint64_t EvolveRoundSeed(uint64_t seed, uint32_t round) {
  return SplitMix64(seed ^ (0xa0761d6478bd642full * (round + 1)));
}

CampaignResult RunCampaign(const CampaignOptions& opts,
                           const std::function<void(const std::string&)>& log) {
  return opts.mode == CampaignMode::kEvolve ? RunEvolveCampaign(opts, log)
                                            : RunBlindCampaign(opts, log);
}

}  // namespace komodo::fuzz
