#include "src/fuzz/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <optional>
#include <sstream>
#include <thread>

#include "src/crypto/sha256.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/pool.h"

namespace komodo::fuzz {

namespace {

void HashString(crypto::Sha256& h, const std::string& s) {
  h.Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::string VerdictLine(const Verdict& v) {
  std::ostringstream out;
  out << "failed=" << (v.failed ? 1 : 0) << " op=" << v.failing_op << " " << v.detail << "\n";
  return out.str();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// CPU time of the calling thread — the per-shard cost figure that stays
// comparable whether shards timeslice one core or spread over eight.
double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0.0;
  }
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

using Clock = std::chrono::steady_clock;

// One (oracle, shard) work unit; tasks are indexed in canonical order
// (oracle-major, shard-minor), which is also the hash-merge order.
struct ShardTask {
  size_t oracle_idx = 0;
  uint32_t shard = 0;
  uint64_t call_budget = 0;
};

struct ShardFailure {
  uint64_t trace_index = 0;  // k within the shard's stream
  Trace trace;
  Verdict verdict;
};

struct ShardOutcome {
  uint64_t traces = 0;
  uint64_t calls = 0;
  double cpu_seconds = 0.0;
  double done_at = 0.0;  // wall seconds since campaign start at completion
  std::string digest;    // SHA-256 hex over this shard's traces + verdicts
  std::optional<ShardFailure> failure;
};

// Runs one shard to its call budget (or its first failure), hashing every
// generated trace and verdict into the shard digest.
ShardOutcome RunShard(const CampaignOptions& opts, const std::string& oracle,
                      const ShardTask& task, WorldPool& pool, Clock::time_point campaign_start) {
  ShardOutcome out;
  const double cpu_begin = ThreadCpuSeconds();
  crypto::Sha256 hash;
  for (uint64_t k = 0; out.calls < task.call_budget; ++k) {
    Trace t = GenerateTrace(oracle, ShardTraceSeed(opts.seed, task.shard, k), opts.trace_len);
    t.inject = opts.inject;
    const Verdict v = RunTrace(t, /*apply_inject=*/true, &pool);
    ++out.traces;
    out.calls += t.CallCount();
    HashString(hash, t.Format());
    HashString(hash, VerdictLine(v));
    if (v.failed) {
      out.failure = ShardFailure{k, std::move(t), v};
      break;
    }
  }
  out.digest = crypto::DigestToHex(hash.Finalize());
  out.cpu_seconds = ThreadCpuSeconds() - cpu_begin;
  out.done_at = std::chrono::duration<double>(Clock::now() - campaign_start).count();
  return out;
}

}  // namespace

uint64_t ShardTraceSeed(uint64_t seed, uint32_t shard, uint64_t k) {
  // Diffuse the shard index through splitmix64 before mixing in the per-trace
  // counter: shard streams stay disjoint even for adjacent master seeds, and
  // the k-increment cannot walk one shard's stream into another's.
  return SplitMix64(SplitMix64(seed ^ (0x9e3779b97f4a7c15ull * (shard + 1))) + k);
}

CampaignResult RunCampaign(const CampaignOptions& opts,
                           const std::function<void(const std::string&)>& log) {
  CampaignResult result;
  const Clock::time_point start = Clock::now();
  std::vector<std::string> oracles = opts.oracles;
  if (oracles.empty()) {
    oracles = OracleNames();
  }
  const uint32_t shards = opts.shards == 0 ? 1 : opts.shards;

  // Canonical task list: oracle-major, shard-minor. The per-oracle call
  // budget splits as evenly as the integer division allows, remainder to the
  // lowest shard indices, so the split — and thus the hash — depends only on
  // (calls, shards).
  std::vector<ShardTask> tasks;
  for (size_t o = 0; o < oracles.size(); ++o) {
    const uint64_t base = opts.calls / shards;
    const uint64_t remainder = opts.calls % shards;
    for (uint32_t s = 0; s < shards; ++s) {
      tasks.push_back({o, s, base + (s < remainder ? 1 : 0)});
    }
  }

  std::vector<ShardOutcome> outcomes(tasks.size());
  std::vector<WorldPool::Stats> pool_stats;

  unsigned jobs = opts.jobs > 0 ? static_cast<unsigned>(opts.jobs)
                                : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min<unsigned>(jobs, static_cast<unsigned>(tasks.size()));

  if (jobs <= 1) {
    // Serial fast path: no threads at all, same code per shard.
    WorldPool pool(FuzzMonitorConfig(), opts.reuse_worlds);
    for (size_t i = 0; i < tasks.size(); ++i) {
      outcomes[i] = RunShard(opts, oracles[tasks[i].oracle_idx], tasks[i], pool, start);
    }
    pool_stats.push_back(pool.stats());
  } else {
    // Worker pool: each worker owns a WorldPool (worlds, monitors and their
    // tracers stay thread-confined) and claims tasks off a shared counter.
    // Workers write only their own outcome slots; the merge below is the
    // only reader and runs after join.
    pool_stats.resize(jobs);
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
      workers.emplace_back([&, w]() {
        WorldPool pool(FuzzMonitorConfig(), opts.reuse_worlds);
        for (size_t i = next.fetch_add(1); i < tasks.size(); i = next.fetch_add(1)) {
          outcomes[i] = RunShard(opts, oracles[tasks[i].oracle_idx], tasks[i], pool, start);
        }
        pool_stats[w] = pool.stats();
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }

  for (const WorldPool::Stats& ps : pool_stats) {
    result.worlds_built += ps.constructions;
    result.worlds_reused += ps.resets;
    result.pages_restored += ps.pages_restored;
  }

  // Canonical merge: per-oracle stats, the campaign hash over the per-shard
  // digests in task order, and the canonically first failure.
  crypto::Sha256 hash;
  {
    std::ostringstream header;
    header << "komodo-fuzz-campaign-hash v2 shards=" << shards << "\n";
    HashString(hash, header.str());
  }
  const ShardFailure* first_failure = nullptr;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const ShardTask& task = tasks[i];
    const ShardOutcome& out = outcomes[i];
    if (task.shard == 0) {
      OracleStats st;
      st.oracle = oracles[task.oracle_idx];
      result.stats.push_back(st);
    }
    OracleStats& st = result.stats.back();
    st.traces += out.traces;
    st.calls += out.calls;
    st.cpu_seconds += out.cpu_seconds;
    st.seconds = std::max(st.seconds, out.done_at);
    std::ostringstream line;
    line << "oracle=" << oracles[task.oracle_idx] << " shard=" << task.shard
         << " traces=" << out.traces << " calls=" << out.calls << " digest=" << out.digest
         << "\n";
    HashString(hash, line.str());
    if (first_failure == nullptr && out.failure.has_value()) {
      first_failure = &*out.failure;  // task order is canonical order
    }
  }
  result.hash = crypto::DigestToHex(hash.Finalize());

  if (log) {
    for (const OracleStats& st : result.stats) {
      std::ostringstream out;
      out << "oracle " << st.oracle << ": " << st.calls << " calls in " << st.traces
          << " traces, " << st.cpu_seconds << "s cpu";
      log(out.str());
    }
  }

  if (first_failure != nullptr) {
    result.failed = true;
    result.original = first_failure->trace;
    result.verdict = first_failure->verdict;
    if (log) {
      std::ostringstream out;
      out << "FAIL oracle=" << result.original.oracle << " trace-seed=" << result.original.seed
          << " " << result.verdict.detail;
      log(out.str());
    }
    if (opts.shrink) {
      WorldPool shrink_pool(FuzzMonitorConfig(), opts.reuse_worlds);
      result.witness = ShrinkTrace(
          result.original, [&](const Trace& c) { return RunTrace(c, true, &shrink_pool); },
          &result.shrink);
      if (log) {
        std::ostringstream out;
        out << "shrunk " << result.shrink.ops_before << " -> " << result.shrink.ops_after
            << " ops (" << result.witness.CallCount() << " calls, "
            << result.shrink.evaluations << " oracle runs)";
        log(out.str());
      }
    } else {
      result.witness = result.original;
    }
  }

  result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace komodo::fuzz
