// The replayable trace format of the fuzzing subsystem (DESIGN.md §10).
//
// A trace is everything one oracle run needs to be reproduced byte for byte:
// which oracle, the world size, an optional fault injection, an optional
// victim-enclave program (by catalog name) with its planted secrets, and the
// operation sequence — insecure-memory pokes plus monitor calls. Minimized
// failures are serialized in a small line-oriented text form and committed to
// tests/corpus/ as regression witnesses.
#ifndef SRC_FUZZ_TRACE_H_
#define SRC_FUZZ_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/arm/types.h"

namespace komodo::fuzz {

using arm::word;

enum class OpKind : uint8_t {
  kPoke,    // poke <insecure pgnr> <word offset> <value>
  kSmc,     // smc <call> <a1> <a2> <a3> <a4>        (covers Enter/Resume too)
  kSvc,     // svc <call> <a1> <a2> <a3>             (via the driver enclave)
  kEnter,   // enter <a1> <a2> <a3>                  (enter the victim enclave)
  kResume,  // resume                                (resume the victim enclave)
};

struct TraceOp {
  OpKind kind = OpKind::kSmc;
  // poke: a[0]=pgnr, a[1]=word offset, a[2]=value.
  // smc:  a[0]=call, a[1..4]=args.  svc: a[0]=call, a[1..3]=args.
  // enter: a[1..3]=args.  resume: unused.
  word a[5] = {0, 0, 0, 0, 0};

  // Monitor calls (everything except pokes) are what the "reproducer of
  // <= 10 calls" acceptance bound counts.
  bool IsCall() const { return kind != OpKind::kPoke; }
};

struct Trace {
  std::string oracle;  // refinement | invariants | noninterference | interp
  uint64_t seed = 0;   // generator seed (printed on failure, replays the run)
  word pages = 24;     // secure pages of the world(s)
  std::string inject;  // fault injection name ("" = none), see inject.h
  std::string victim;  // victim program catalog name ("" = none)
  word secrets[2] = {0, 0};  // planted secrets (noninterference pairs)
  std::vector<TraceOp> ops;

  size_t CallCount() const;

  // Serialization. Format() and Parse() round-trip exactly; Hash() is the
  // SHA-256 hex of Format(), used for determinism pinning.
  std::string Format() const;
  std::string Hash() const;
  static std::optional<Trace> Parse(const std::string& text);

  // File helpers for witness reproducers.
  bool WriteFile(const std::string& path) const;
  static std::optional<Trace> ReadFile(const std::string& path);
};

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_TRACE_H_
