// Deterministic trace mutators for evolve-mode fuzzing (DESIGN.md §15).
//
// A mutant derives from one or two parent traces (drawn from the round-start
// corpus snapshot) plus a 64-bit seed from the campaign's shard stream.
// Operator choice, parent choice, cut points and new argument values all come
// from one HashDrbg over that seed, so the same (parents, seed) pair always
// yields the same mutant — the property that keeps evolve-mode campaign
// hashes jobs-invariant. Mutants stay inside the `komodo-fuzz-trace v1`
// format by construction: headers are inherited from a parent and ops are
// ordinary TraceOps, so every corpus entry replays under `komodo-fuzz
// --replay`.
//
// Operators:
//   splice     prefix of parent A + suffix of parent B (same oracle)
//   extend     parent A + the ops of a freshly generated trace
//   retarget   parent A with page-number-carrying SMC args redirected
//   arg-tweak  parent A with a few op arguments perturbed (bit flips,
//              small deltas, 0 / 0xffffffff boundary values)
#ifndef SRC_FUZZ_MUTATE_H_
#define SRC_FUZZ_MUTATE_H_

#include <cstdint>
#include <vector>

#include "src/fuzz/trace.h"

namespace komodo::fuzz {

inline constexpr const char* kMutatorNames[] = {"splice", "extend", "retarget", "arg-tweak"};

// Derives one mutant from `parents` (non-empty; all entries share the same
// oracle). The result keeps at least one op and at most `max_ops`; its `seed`
// field records `seed` for reporting (ops are serialized in full, so replay
// never regenerates from the seed).
Trace MutateTrace(const std::vector<const Trace*>& parents, uint64_t seed, size_t max_ops);

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_MUTATE_H_
