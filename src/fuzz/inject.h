// Fault-injection registry for the fuzzing subsystem (DESIGN.md §10).
//
// Each flag deliberately re-introduces one historical bug class so the
// oracles can be shown to catch it and the shrinker can be shown to minimize
// it; the committed reproducers in tests/corpus/ each name one of these.
// Production code paths consult the flags through this header only — it is
// header-only and dependency-free on purpose, so src/core and src/arm can
// include it without linking against the fuzz library (no layering cycle).
// All flags default to off; nothing in a normal build or test run changes
// behaviour unless a fuzz harness switches one on.
#ifndef SRC_FUZZ_INJECT_H_
#define SRC_FUZZ_INJECT_H_

#include <string>

namespace komodo::fuzz {

struct InjectFlags {
  // SmcInitAddrspace accepts as_page == l1pt_page — the exact unverified-
  // prototype bug the paper's verification found (§9.1). Caught by the
  // refinement oracle (spec rejects, impl succeeds).
  bool initaddrspace_alias = false;

  // SmcRemove frees an address space whose refcount is nonzero, orphaning
  // the pages it still owns. Caught by the PageDB-invariant oracle.
  bool remove_skip_refcount = false;

  // The SMC epilogue skips zeroing the non-return scratch registers
  // (r2/r3/r4/r12), leaking enclave register state to the OS — the
  // register-sanitisation invariant of §5.2. Caught by the noninterference
  // oracle with a victim that keeps its secret in scratch registers.
  bool skip_scratch_clear = false;

  // The interpreter decode cache skips its page-generation validation, so
  // self-modifying or reused code pages replay stale instructions. Caught by
  // the cached-vs-uncached equivalence oracle.
  bool stale_decode = false;
};

// The flag set (C++17 inline variable: one instance per thread across all
// translation units, zero-initialised, no registration needed). Thread-local
// because the parallel campaign driver (DESIGN.md §11) arms an injection per
// oracle run on each worker; the monitor/interpreter code consulting the
// flags always runs on the thread that armed them, and workers must not see
// each other's (or the main thread's) injections.
inline thread_local InjectFlags g_inject_flags;

inline InjectFlags& Inject() { return g_inject_flags; }

// Name <-> flag mapping used by the trace format, the CLI and the corpus
// replay suite. "none"/"" means no injection. Returns false for an unknown
// name (flags left untouched).
inline bool SetInjectByName(const std::string& name) {
  InjectFlags f;
  if (name == "" || name == "none") {
    // all off
  } else if (name == "initaddrspace-alias") {
    f.initaddrspace_alias = true;
  } else if (name == "remove-skip-refcount") {
    f.remove_skip_refcount = true;
  } else if (name == "skip-scratch-clear") {
    f.skip_scratch_clear = true;
  } else if (name == "stale-decode") {
    f.stale_decode = true;
  } else {
    return false;
  }
  g_inject_flags = f;
  return true;
}

inline const char* const kInjectNames[] = {
    "initaddrspace-alias",
    "remove-skip-refcount",
    "skip-scratch-clear",
    "stale-decode",
};

// RAII: applies a named injection for the duration of one oracle run and
// restores the previous flags afterwards.
class ScopedInject {
 public:
  explicit ScopedInject(const std::string& name) : saved_(g_inject_flags) {
    SetInjectByName(name);
  }
  ~ScopedInject() { g_inject_flags = saved_; }
  ScopedInject(const ScopedInject&) = delete;
  ScopedInject& operator=(const ScopedInject&) = delete;

 private:
  InjectFlags saved_;
};

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_INJECT_H_
