#include "src/fuzz/coverage.h"

#include <algorithm>

#include "src/crypto/sha256.h"
#include "src/os/world.h"
#include "src/spec/abstract_state.h"

namespace komodo::fuzz {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-sensitive chained fold — a structural serialization, not a bag hash.
void Fold(uint64_t* h, uint64_t v) { *h = SplitMix64(*h ^ v); }

}  // namespace

size_t CoverageMap::Merge(const CoverageMap& o) {
  size_t added = 0;
  for (const uint64_t k : o.keys_) {
    added += keys_.insert(k).second ? 1 : 0;
  }
  return added;
}

size_t CoverageMap::CountNew(const CoverageMap& o) const {
  size_t n = 0;
  for (const uint64_t k : o.keys_) {
    n += keys_.count(k) == 0 ? 1 : 0;
  }
  return n;
}

std::vector<uint64_t> CoverageMap::Sorted() const {
  std::vector<uint64_t> v(keys_.begin(), keys_.end());
  std::sort(v.begin(), v.end());
  return v;
}

std::string CoverageMap::Digest() const {
  crypto::Sha256 h;
  for (const uint64_t k : Sorted()) {
    uint8_t bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<uint8_t>(k >> (8 * i));
    }
    h.Update(bytes, sizeof(bytes));
  }
  return crypto::DigestToHex(h.Finalize());
}

uint64_t MixCoverageKey(CoverageDomain domain, uint64_t value) {
  return SplitMix64(SplitMix64(static_cast<uint64_t>(domain) * 0x9e3779b97f4a7c15ull) ^ value);
}

namespace {

// Emits one feature key: an order-sensitive fold of the (tag, values...)
// tuple under the PageDb-shape domain.
void Feature(CoverageMap* out, uint64_t tag, std::initializer_list<uint64_t> values) {
  uint64_t h = 0x6b6f6d6f646f6462ull;
  Fold(&h, tag);
  for (const uint64_t v : values) {
    Fold(&h, v);
  }
  out->Add(MixCoverageKey(CoverageDomain::kPageDbShape, h));
}

}  // namespace

void HarvestPageDbCoverage(const spec::PageDb& db, CoverageMap* out) {
  uint64_t type_counts[8] = {0};
  for (PageNr n = 0; n < db.NPages(); ++n) {
    const spec::PageDbEntry& e = db[n];
    ++type_counts[static_cast<size_t>(e.type()) & 7];
    switch (e.type()) {
      case PageType::kAddrspace: {
        const auto& a = e.As<spec::AddrspacePage>();
        Feature(out, 1, {static_cast<uint64_t>(a.state), a.refcount});
        break;
      }
      case PageType::kDispatcher: {
        const auto& d = e.As<spec::DispatcherPage>();
        Feature(out, 2, {d.entered ? 1u : 0u});
        break;
      }
      case PageType::kL1PTable: {
        const auto& l1 = e.As<spec::L1PTablePage>();
        uint64_t installed = 0;
        for (const auto& slot : l1.l2_tables) {
          installed += slot.has_value() ? 1 : 0;
        }
        Feature(out, 3, {installed});
        break;
      }
      case PageType::kL2PTable: {
        const auto& l2 = e.As<spec::L2PTablePage>();
        uint64_t secure = 0;
        uint64_t insecure = 0;
        uint64_t perm_union = 0;
        for (const spec::L2Entry& ent : l2.entries) {
          if (const auto* sm = std::get_if<spec::SecureMapping>(&ent)) {
            ++secure;
            perm_union |= 1u | (sm->writable ? 2u : 0u) | (sm->executable ? 4u : 0u);
          } else if (const auto* im = std::get_if<spec::InsecureMapping>(&ent)) {
            ++insecure;
            perm_union |= 8u | (im->writable ? 2u : 0u);
          }
        }
        Feature(out, 4, {secure, insecure, perm_union});
        break;
      }
      case PageType::kFree:
      case PageType::kDataPage:  // contents excluded by design (see header)
      case PageType::kSparePage:
        break;
    }
  }
  // Population counts: how many pages of each type coexist — depth that
  // page-local features cannot see (three addrspaces, nine data pages, ...).
  for (size_t ty = 0; ty < 8; ++ty) {
    if (type_counts[ty] != 0) {
      Feature(out, 100 + ty, {type_counts[ty]});
    }
  }
}

void HarvestObsCoverage(const os::World& w, CoverageMap* out) {
  for (const uint64_t k : w.monitor.obs().coverage_keys()) {
    out->Add(MixCoverageKey(CoverageDomain::kObsEvent, k));
  }
}

void HarvestMachineCoverage(const os::World& w, CoverageMap* out) {
  for (const arm::paddr a : w.machine.interp.ResidentDecodeAddrs()) {
    out->Add(MixCoverageKey(CoverageDomain::kDecodeAddr, a));
  }
  for (const jit::ResidentBlock& b : w.machine.jit.ResidentBlocks()) {
    uint64_t h = b.phys;
    Fold(&h, b.va);
    Fold(&h, b.compiled ? 1 : 0);
    out->Add(MixCoverageKey(CoverageDomain::kJitBlock, h));
  }
}

}  // namespace komodo::fuzz
