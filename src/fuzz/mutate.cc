#include "src/fuzz/mutate.h"

#include <algorithm>

#include "src/crypto/drbg.h"
#include "src/fuzz/generator.h"

namespace komodo::fuzz {

namespace {

using crypto::HashDrbg;

const Trace& Pick(const std::vector<const Trace*>& parents, HashDrbg& drbg) {
  return *parents[drbg.Below(static_cast<uint32_t>(parents.size()))];
}

void CapOps(Trace* t, size_t max_ops) {
  if (max_ops == 0) {
    max_ops = 1;
  }
  if (t->ops.size() > max_ops) {
    t->ops.resize(max_ops);
  }
  if (t->ops.empty()) {
    t->ops.push_back(TraceOp{});  // degenerate parents still yield a valid trace
  }
}

// Prefix of A + suffix of B. The header (victim, secrets, inject) comes from
// A; the world must be big enough for either parent's ops.
Trace Splice(const Trace& a, const Trace& b, HashDrbg& drbg) {
  Trace m = a;
  m.pages = std::max(a.pages, b.pages);
  const auto cut_a = drbg.Below(static_cast<uint32_t>(a.ops.size() + 1));
  const auto cut_b = drbg.Below(static_cast<uint32_t>(b.ops.size() + 1));
  m.ops.assign(a.ops.begin(), a.ops.begin() + cut_a);
  m.ops.insert(m.ops.end(), b.ops.begin() + cut_b, b.ops.end());
  return m;
}

// Continues A where its generator stopped. Regenerating A's seed at a longer
// length replays the same drbg stream, so for generator-born parents the
// appended ops are the adversary model's own coherent continuation — deeper
// *valid* state (more pages owned, higher refcounts, fuller page tables)
// that a fresh trace of the base length can never reach. Extend-born traces
// keep the parent's seed (see MutateTrace), so extend-of-extend chains stay
// exact generator streams and the coherence compounds round over round.
// Parents born from other mutations carry a mutation seed instead, so their
// "continuation" is merely fresh ops — no worse than blind diversity
// stapled on.
//
// The target length is biased toward max_ops (max of two draws): an
// extension replays its parent as a prefix, so the deeper the jump, the
// smaller the replayed fraction of the resulting lineage.
Trace Extend(const Trace& a, HashDrbg& drbg, size_t max_ops) {
  Trace m = a;
  const size_t room = max_ops > a.ops.size() ? max_ops - a.ops.size() : 1;
  const uint32_t d1 = drbg.Below(static_cast<uint32_t>(room));
  const uint32_t d2 = drbg.Below(static_cast<uint32_t>(room));
  const size_t want = a.ops.size() + 1 + std::max(d1, d2);
  const Trace deeper = GenerateTrace(a.oracle, a.seed, want);
  m.pages = std::max(m.pages, deeper.pages);
  if (deeper.ops.size() > a.ops.size()) {
    m.ops.insert(m.ops.end(), deeper.ops.begin() + a.ops.size(), deeper.ops.end());
  }
  return m;
}

// Redirects the page-number argument of a few SMC ops — the cheapest way to
// re-aim a known-interesting call sequence at different PageDb slots.
Trace Retarget(const Trace& a, HashDrbg& drbg) {
  Trace m = a;
  if (m.ops.empty()) {
    return m;
  }
  const uint32_t n = 1 + drbg.Below(4);
  for (uint32_t i = 0; i < n; ++i) {
    TraceOp& op = m.ops[drbg.Below(static_cast<uint32_t>(m.ops.size()))];
    if (op.kind == OpKind::kSmc || op.kind == OpKind::kSvc) {
      op.a[1] = drbg.Below(2 * m.pages + 2);
    } else if (op.kind == OpKind::kPoke) {
      op.a[0] = drbg.NextWord();
    }
  }
  return m;
}

// Generic argument perturbation: bit flips, small deltas and the 0 /
// 0xffffffff boundaries structured generators rarely emit.
Trace ArgTweak(const Trace& a, HashDrbg& drbg) {
  Trace m = a;
  if (m.ops.empty()) {
    return m;
  }
  const uint32_t n = 1 + drbg.Below(3);
  for (uint32_t i = 0; i < n; ++i) {
    TraceOp& op = m.ops[drbg.Below(static_cast<uint32_t>(m.ops.size()))];
    word& arg = op.a[drbg.Below(5)];
    switch (drbg.Below(4)) {
      case 0:
        arg ^= 1u << drbg.Below(32);
        break;
      case 1:
        arg += drbg.Below(9) - 4;
        break;
      case 2:
        arg = 0;
        break;
      default:
        arg = 0xffffffffu;
        break;
    }
  }
  return m;
}

}  // namespace

Trace MutateTrace(const std::vector<const Trace*>& parents, uint64_t seed, size_t max_ops) {
  HashDrbg drbg(seed);
  const Trace& a = Pick(parents, drbg);
  Trace m;
  // Extend dominates the mix: it is the one operator that reliably reaches
  // deeper valid state (see its comment); the arg perturbations mostly probe
  // error paths, which saturate quickly.
  bool keep_parent_seed = false;
  switch (drbg.Below(8)) {
    case 0:
      m = Splice(a, Pick(parents, drbg), drbg);
      break;
    case 1:
    case 2:
    case 3:
    case 4:
    case 5:
      m = Extend(a, drbg, max_ops);
      // Keeping the parent's seed is what makes extend chains coherent: the
      // child's ops are exactly GenerateTrace(seed, len), so extending *it*
      // appends the generator's true continuation, not fresh noise. (If the
      // parent was itself a non-extend mutant this is vacuous — its ops
      // already diverged from its seed's stream.) Identical extend children
      // of one parent collapse under the corpus's hash dedup.
      keep_parent_seed = true;
      break;
    case 6:
      m = Retarget(a, drbg);
      break;
    default:
      m = ArgTweak(a, drbg);
      break;
  }
  if (!keep_parent_seed) {
    m.seed = seed;
  }
  CapOps(&m, max_ops);
  return m;
}

}  // namespace komodo::fuzz
