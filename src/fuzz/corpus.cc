#include "src/fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "src/crypto/sha256.h"

namespace komodo::fuzz {

namespace fs = std::filesystem;

bool Corpus::Add(Trace t, uint64_t gain, uint64_t round, uint64_t seq) {
  std::string hash = t.Hash();
  if (!hashes_.insert(hash).second) {
    return false;
  }
  entries_.push_back(CorpusEntry{std::move(t), gain, round, seq, std::move(hash)});
  return true;
}

void Corpus::Trim(size_t max_entries) {
  if (entries_.size() <= max_entries) {
    return;
  }
  // Survivor selection by (gain desc, seq asc); then back to admission order.
  std::vector<CorpusEntry> sorted = std::move(entries_);
  std::stable_sort(sorted.begin(), sorted.end(), [](const CorpusEntry& a, const CorpusEntry& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    return a.seq < b.seq;
  });
  sorted.resize(max_entries);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CorpusEntry& a, const CorpusEntry& b) { return a.seq < b.seq; });
  hashes_.clear();
  for (const CorpusEntry& e : sorted) {
    hashes_.insert(e.hash);
  }
  entries_ = std::move(sorted);
}

std::vector<const Trace*> Corpus::Traces() const {
  std::vector<const Trace*> out;
  out.reserve(entries_.size());
  for (const CorpusEntry& e : entries_) {
    out.push_back(&e.trace);
  }
  return out;
}

std::string Corpus::Digest() const {
  crypto::Sha256 h;
  for (const CorpusEntry& e : entries_) {
    std::ostringstream line;
    line << e.hash << " gain=" << e.gain << " round=" << e.round << " seq=" << e.seq << "\n";
    const std::string s = line.str();
    h.Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  return crypto::DigestToHex(h.Finalize());
}

bool Corpus::SaveDir(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return false;
  }
  std::ostringstream index;
  for (const CorpusEntry& e : entries_) {
    std::ostringstream name;
    name << e.seq;
    std::string seq = name.str();
    if (seq.size() < 6) {
      seq.insert(0, 6 - seq.size(), '0');
    }
    const std::string file = seq + "-" + e.hash.substr(0, 12) + ".trace";
    if (!e.trace.WriteFile(dir + "/" + file)) {
      return false;
    }
    index << file << " oracle=" << e.trace.oracle << " gain=" << e.gain << " round=" << e.round
          << "\n";
  }
  std::ofstream out(dir + "/INDEX");
  out << index.str();
  return out.good();
}

std::vector<Trace> Corpus::LoadDir(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".trace") {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Trace> out;
  for (const std::string& f : files) {
    if (auto t = Trace::ReadFile(f)) {
      out.push_back(std::move(*t));
    }
  }
  return out;
}

}  // namespace komodo::fuzz
