// Trace and instruction generators for the fuzzing subsystem (DESIGN.md §10).
//
// Everything is a pure function of a HashDrbg (or a 64-bit seed), so a trace
// regenerates byte-identically from its header alone. The instruction
// generators were grown out of the enclave-fuzz and interp-diff suites and
// are shared with them, so ad-hoc test generators cannot drift away from what
// the fuzzer exercises.
#ifndef SRC_FUZZ_GENERATOR_H_
#define SRC_FUZZ_GENERATOR_H_

#include <string>
#include <vector>

#include "src/arm/isa.h"
#include "src/crypto/drbg.h"
#include "src/fuzz/trace.h"

namespace komodo::fuzz {

// A random well-formed user-mode instruction for enclave code pages: no SMC
// (undefined in user mode), destinations keep the PC out, branches stay near
// the code page. Always decodable.
word RandomEnclaveInsn(crypto::HashDrbg& drbg);

// A random instruction for bare flat-translation machines: destinations in
// R0-R9, loads/stores through the scratch base in R10, R11 preserved for the
// code base. Exercises every condition code and shift form.
arm::Instruction RandomFlatInsn(crypto::HashDrbg& drbg);

// A random code word for fuzzed code pages: mostly decodable instructions,
// sometimes a fully random word, and sometimes a cond=0b1111 encoding — the
// 0b1110 (always) vs 0b1111 (undefined) boundary that structured generators
// drawing conditions from Below(15) never reach.
word RandomCodeWord(crypto::HashDrbg& drbg);

// --- Victim-program catalog ---------------------------------------------------
//
// Victim enclaves referenced by name from traces. All victims read their
// "secret" from the first word of their data page (planted by the oracle
// after finalisation, modelling a secure channel).
//
//   internal-compute  squares the secret into data[1], exits with a constant
//   spin-scratch      loads the secret into r2/r3/r12 and spins until
//                     interrupted (the §5.2 scratch-register leak shape)
//   fault-secret      loads the secret into r2 and faults on an unmapped store
//   self-modify       rewrites its own loop body each iteration and exits with
//                     the iteration sum (stale-decode-cache witness; its code
//                     page must be mapped writable, see VictimWantsWritableCode)
inline constexpr const char* kVictimNames[] = {"internal-compute", "spin-scratch",
                                               "fault-secret", "self-modify"};

// The victim's code, assembled at os::kEnclaveCodeVa. Empty if unknown.
std::vector<word> VictimProgram(const std::string& name);

// True if the victim's code page must be mapped R|W|X instead of R|X.
bool VictimWantsWritableCode(const std::string& name);

// --- Trace generation ---------------------------------------------------------

// Oracles a generated trace can target.
std::vector<std::string> OracleNames();

// Generates a randomized trace of `nops` operations for `oracle`,
// deterministically from `seed`. The op mix, world size and victim selection
// depend on the oracle: paired oracles (noninterference) pick a secret-bearing
// victim; the interp oracle sometimes runs the self-modifying victim; the
// spec-backed oracles (refinement, invariants) mix in driver-enclave SVCs.
Trace GenerateTrace(const std::string& oracle, uint64_t seed, size_t nops);

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_GENERATOR_H_
