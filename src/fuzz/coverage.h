// Coverage signals for evolve-mode fuzzing (DESIGN.md §15).
//
// A CoverageMap is a set of 64-bit keys, each a domain-separated hash of one
// "interesting shape" the monitor reached while replaying a trace:
//
//   * PageDb shape keys: abstraction *features* of the extracted abstract
//     state — per-page facts (addrspace state + refcount, dispatcher
//     entered-ness, installed L1/L2 slot counts and permission unions) plus
//     per-type population counts. Features, not whole-state hashes, on
//     purpose: hashing the full PageDb makes every fresh state exactly one
//     key, so any two equal-budget strategies tie by construction; features
//     saturate for shallow exploration and keep growing only with
//     qualitatively new structure (higher refcounts, fuller tables, more
//     coexisting pages) — exactly what guided depth buys. Page numbers and
//     DataPage contents are deliberately excluded: positional and payload
//     variation would explode the key space without describing a new shape.
//   * Observability keys: the (event kind, call/code, error) triples the
//     monitor's tracer saw — which calls ran, which errors they produced,
//     which lifecycle instants fired (src/obs/ coverage export hook).
//   * Machine keys: resident interp decode-cache addresses and JIT block-table
//     entries — which code the enclave worlds actually executed. Harvested
//     only from worlds whose cache/JIT enablement the oracle sets explicitly
//     (the interp oracle), so keys never depend on KOMODO_INTERP_CACHE /
//     KOMODO_JIT environment defaults.
//
// Every key derivation is a pure function of architectural state, so coverage
// — and everything evolve mode builds on it (corpus, campaign hash) — is
// byte-reproducible for a given seed at any --jobs count.
#ifndef SRC_FUZZ_COVERAGE_H_
#define SRC_FUZZ_COVERAGE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace komodo::os {
struct World;
}  // namespace komodo::os

namespace komodo::spec {
struct PageDb;
}  // namespace komodo::spec

namespace komodo::fuzz {

// Distinct-key set with deterministic export order.
class CoverageMap {
 public:
  // True if `key` was not present before.
  bool Add(uint64_t key) { return keys_.insert(key).second; }
  // Folds `o` in; returns how many of its keys were new.
  size_t Merge(const CoverageMap& o);
  bool Contains(uint64_t key) const { return keys_.count(key) != 0; }
  // Keys of `o` not present here (the gain `o` would contribute).
  size_t CountNew(const CoverageMap& o) const;
  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  void Clear() { keys_.clear(); }
  // Ascending key order — the canonical serialization.
  std::vector<uint64_t> Sorted() const;
  // SHA-256 hex over the sorted keys; pins a coverage state in hashes/tests.
  std::string Digest() const;

 private:
  std::unordered_set<uint64_t> keys_;
};

// Key domains. Every key is SplitMix-style mixed so unrelated facts cannot
// collide by arithmetic accident; the domain tag keeps e.g. a decode address
// from aliasing an obs triple.
enum class CoverageDomain : uint64_t {
  kPageDbShape = 1,
  kObsEvent = 2,
  kDecodeAddr = 3,
  kJitBlock = 4,
};

uint64_t MixCoverageKey(CoverageDomain domain, uint64_t value);

// Harvests the structural-shape feature keys of an abstract PageDb into
// `out` (see file comment).
void HarvestPageDbCoverage(const spec::PageDb& db, CoverageMap* out);

// Harvests the world's observability coverage keys (armed by CoverageScope in
// oracles.cc) into `out`.
void HarvestObsCoverage(const os::World& w, CoverageMap* out);

// Harvests resident decode-cache addresses and JIT block keys from a world
// whose cache/JIT enablement was set explicitly by the oracle.
void HarvestMachineCoverage(const os::World& w, CoverageMap* out);

}  // namespace komodo::fuzz

#endif  // SRC_FUZZ_COVERAGE_H_
