// Registry-driven dispatch: expands src/core/call_list.inc into the
// Monitor's SMC and SVC switches (the single implementation-side consumer of
// the impl column), and hangs the tracer on the two shared entry points.
// Adding a call means adding one line to call_list.inc; there is no other
// dispatch site to update.
#include "src/core/call_table.h"

#include "src/core/monitor.h"

namespace komodo {

obs::MachineSnap Monitor::ObsSnap() const {
  const arm::InterpCacheStats& cs = machine_.interp.stats();
  const jit::JitStats& js = machine_.jit.stats();
  obs::MachineSnap s;
  s.cycles = machine_.cycles.total();
  s.steps = machine_.steps_retired;
  s.decode_hits = cs.decode_hits;
  s.decode_misses = cs.decode_misses;
  s.tlb_hits = cs.tlb_hits;
  s.tlb_misses = cs.tlb_misses;
  s.tlb_flushes = machine_.tlb_flushes;
  s.jit_blocks_translated = js.blocks_translated;
  s.jit_block_hits = js.block_hits;
  s.jit_block_invalidations = js.block_invalidations;
  s.jit_fallback_steps = js.fallback_steps;
  s.jit_steps = js.jit_steps;
  return s;
}

Monitor::CallResult Monitor::Dispatch(const CallCtx& ctx) {
  if (!obs_.enabled()) {
    return DispatchImpl(ctx);
  }
  const CallInfo* info = FindSmc(ctx.call);
  const char* name = info ? info->name : "UnknownSmc";
  const int nargs = info ? info->arity : 4;
  const obs::Observability::Pending pending =
      obs_.BeginCall(obs::EventKind::kSmcBegin, ctx.call, name, ctx.args.data(), nargs, ObsSnap());
  const CallResult res = DispatchImpl(ctx);
  obs_.EndCall(obs::EventKind::kSmcEnd, ctx.call, name, ToWord(res.err), res.val, pending,
               ObsSnap());
  return res;
}

Monitor::CallResult Monitor::DispatchImpl(const CallCtx& ctx) {
  const word a1 = ctx.args[0];
  const word a2 = ctx.args[1];
  const word a3 = ctx.args[2];
  const word a4 = ctx.args[3];
  switch (ctx.call) {
#define KOM_SMC(name, nr, arity, argnames, insec, contents, impl, spec, errors) \
  case nr:                                                                      \
    return impl;
#define KOM_SVC(name, nr, arity, argnames, impl, spec, errors)
#include "src/core/call_list.inc"
#undef KOM_SMC
#undef KOM_SVC
    default:
      return {KomErr::kInvalidArgument, 0};
  }
}

Monitor::SvcResult Monitor::DispatchSvc(const SvcCtx& ctx) {
  if (!obs_.enabled()) {
    return DispatchSvcImpl(ctx);
  }
  const CallInfo* info = FindSvc(ctx.call);
  const char* name = info ? info->name : "UnknownSvc";
  const int nargs = info ? info->arity : 3;
  const obs::Observability::Pending pending =
      obs_.BeginCall(obs::EventKind::kSvcBegin, ctx.call, name, ctx.args.data(), nargs, ObsSnap());
  const SvcResult res = DispatchSvcImpl(ctx);
  obs_.EndCall(obs::EventKind::kSvcEnd, ctx.call, name, ToWord(res.err),
               res.exits ? res.exit_retval : res.val, pending, ObsSnap());
  return res;
}

Monitor::SvcResult Monitor::DispatchSvcImpl(const SvcCtx& ctx) {
  const word a1 = ctx.args[0];
  const word a2 = ctx.args[1];
  const word a3 = ctx.args[2];
  const PageNr as_page = ctx.as_page;
  const PageNr disp_page = ctx.disp_page;
  (void)disp_page;  // reserved for future SVCs; no current impl consumes it
  switch (ctx.call) {
#define KOM_SMC(name, nr, arity, argnames, insec, contents, impl, spec, errors)
#define KOM_SVC(name, nr, arity, argnames, impl, spec, errors) \
  case nr:                                                     \
    return impl;
#include "src/core/call_list.inc"
#undef KOM_SMC
#undef KOM_SVC
    default:
      return {KomErr::kInvalidSvc, 0, false, 0};
  }
}

}  // namespace komodo
