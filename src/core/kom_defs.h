// Komodo ABI definitions: monitor call numbers, error codes, page types and
// the virtual-address mapping word — the constants of the Table 1 API.
#ifndef SRC_CORE_KOM_DEFS_H_
#define SRC_CORE_KOM_DEFS_H_

#include <cstdint>

#include "src/arm/types.h"

namespace komodo {

using arm::paddr;
using arm::vaddr;
using arm::word;

// Secure page number (index into the secure page region).
using PageNr = word;
inline constexpr PageNr kInvalidPage = ~0u;

inline paddr PagePaddr(PageNr n) { return arm::kSecurePagesBase + n * arm::kPageSize; }

// --- Secure monitor calls (Table 1, from the OS) ------------------------------
enum KomSmc : word {
  kSmcQuery = 1,           // probe for Komodo presence (magic in r1)
  kSmcGetPhysPages = 2,    // -> npages
  kSmcInitAddrspace = 10,  // (asPg, l1ptPg)
  kSmcInitThread = 11,     // (asPg, threadPg, entry)
  kSmcInitL2Table = 12,    // (asPg, l2ptPg, l1index)
  kSmcMapSecure = 13,      // (asPg, dataPg, mapping, insecurePgNr)
  kSmcAllocSpare = 14,     // (asPg, sparePg)
  kSmcMapInsecure = 15,    // (asPg, mapping, insecurePgNr)
  kSmcRemove = 20,         // (pg)
  kSmcFinalise = 21,       // (asPg)
  kSmcEnter = 22,          // (threadPg, arg1, arg2, arg3) -> retval
  kSmcResume = 23,         // (threadPg) -> retval
  kSmcStop = 29,           // (asPg)
};

inline constexpr word kMagic = 0x4b6d646fu;  // 'Kmdo' — returned by kSmcQuery

// --- Supervisor calls (Table 1, from the enclave) ------------------------------
enum KomSvc : word {
  kSvcExit = 1,          // (retval)
  kSvcGetRandom = 2,     // -> r1 = random word
  kSvcAttest = 3,        // (va of u32 data[8], va of u32 mac_out[8])
  kSvcVerify = 4,        // (va of u32 data[8], va of u32 measure[8], va of u32 mac[8]) -> r1 ok
  kSvcInitL2Table = 10,  // (sparePg, l1index)
  kSvcMapData = 11,      // (sparePg, mapping)
  kSvcUnmapData = 12,    // (dataPg, mapping)
};

// --- Error codes ---------------------------------------------------------------
// Typed error codes used by the monitor's handlers and dispatch (the
// registry's `CallResult`/`SvcResult` carry a KomErr, never a raw word); the
// enum class keeps handler code from mixing error codes with page numbers or
// values. The raw `kErr*` word constants below are the SMC ABI encoding —
// what lands in r0 on return to the OS — and remain the vocabulary of the
// spec, the OS model and the tests, which all sit on the ABI side.
enum class KomErr : word {
  kSuccess = 0,
  kInvalidPageNo = 1,
  kPageInUse = 2,
  kInvalidAddrspace = 3,
  kAlreadyFinal = 4,
  kNotFinal = 5,
  kInvalidMapping = 6,
  kAddrInUse = 7,
  kNotStopped = 8,
  kInterrupted = 9,
  kFault = 10,
  kAlreadyEntered = 11,
  kNotEntered = 12,
  kPageTableMissing = 13,
  kInvalidArgument = 14,
  kNotFinalised = 15,
  kInvalidSvc = 16,
  kNotSpare = 17,
};

// The ABI words, value-identical to the enum above (checked by
// tests/core/call_table_test.cc).
inline constexpr word kErrSuccess = 0;
inline constexpr word kErrInvalidPageNo = 1;
inline constexpr word kErrPageInUse = 2;
inline constexpr word kErrInvalidAddrspace = 3;
inline constexpr word kErrAlreadyFinal = 4;
inline constexpr word kErrNotFinal = 5;
inline constexpr word kErrInvalidMapping = 6;
inline constexpr word kErrAddrInUse = 7;
inline constexpr word kErrNotStopped = 8;
inline constexpr word kErrInterrupted = 9;
inline constexpr word kErrFault = 10;
inline constexpr word kErrAlreadyEntered = 11;
inline constexpr word kErrNotEntered = 12;
inline constexpr word kErrPageTableMissing = 13;
inline constexpr word kErrInvalidArgument = 14;
inline constexpr word kErrNotFinalised = 15;
inline constexpr word kErrInvalidSvc = 16;
inline constexpr word kErrNotSpare = 17;

// KomErr <-> ABI word conversions, used only at the SMC/SVC boundary.
constexpr word ToWord(KomErr err) { return static_cast<word>(err); }
constexpr KomErr ErrFromWord(word err) { return static_cast<KomErr>(err); }

const char* KomErrName(word err);
inline const char* KomErrName(KomErr err) { return KomErrName(ToWord(err)); }

// --- Page types in the PageDB ----------------------------------------------------
enum class PageType : word {
  kFree = 0,
  kAddrspace = 1,
  kDispatcher = 2,  // "thread" in Table 1; Komodo's source calls it dispatcher
  kL1PTable = 3,
  kL2PTable = 4,
  kDataPage = 5,
  kSparePage = 6,
};

enum class AddrspaceState : word {
  kInit = 0,
  kFinal = 1,
  kStopped = 2,
};

// --- Mapping word ------------------------------------------------------------------
// Encodes the enclave virtual page and permissions for MapSecure/MapInsecure/
// MapData/UnmapData: bits[31:12] = VA page base, bit0 = R, bit1 = W, bit2 = X.
inline constexpr word kMapR = 1u << 0;
inline constexpr word kMapW = 1u << 1;
inline constexpr word kMapX = 1u << 2;
inline constexpr word kMapPermMask = kMapR | kMapW | kMapX;

inline word MakeMapping(vaddr va_page, word perms) {
  return (va_page & ~(arm::kPageSize - 1)) | (perms & kMapPermMask);
}
inline vaddr MappingVa(word mapping) { return mapping & ~(arm::kPageSize - 1); }
inline word MappingPerms(word mapping) { return mapping & kMapPermMask; }

// A mapping is well-formed if the VA lies below the 1 GB enclave limit and is
// at least readable.
inline bool MappingValid(word mapping) {
  return MappingVa(mapping) < arm::kEnclaveVaLimit && (mapping & kMapR) != 0 &&
         (mapping & ~(~(arm::kPageSize - 1) | kMapPermMask)) == 0;
}

// --- Measurement record opcodes (§4, Attestation) -----------------------------------
// The measurement is a SHA-256 over the sequence of enclave-layout-affecting
// operations; each record is (opcode, arg) plus page contents for MapSecure.
inline constexpr word kMeasureInitThread = 0x6b740001;
inline constexpr word kMeasureMapSecure = 0x6b740002;

}  // namespace komodo

#endif  // SRC_CORE_KOM_DEFS_H_
