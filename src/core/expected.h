// A minimal value-or-error sum type for fallible constructors and builders
// (std::expected is C++23; this tree builds as C++20). Used by the OS model's
// EnclaveBuilder and the serve layer's session API, which both return either
// a fully constructed value or a typed error — never a half-filled
// out-parameter.
#ifndef SRC_CORE_EXPECTED_H_
#define SRC_CORE_EXPECTED_H_

#include <cassert>
#include <optional>
#include <type_traits>
#include <utility>

namespace komodo {

template <typename T, typename E>
class [[nodiscard]] Expected {
  static_assert(!std::is_same_v<T, E>, "value and error types must differ");
  static_assert(std::is_default_constructible_v<E>);

 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(*-explicit-*)
  Expected(E error) : error_(error) {}             // NOLINT(*-explicit-*)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Only meaningful when !ok().
  E error() const {
    assert(!ok());
    return error_;
  }

 private:
  std::optional<T> value_;
  E error_{};
};

}  // namespace komodo

#endif  // SRC_CORE_EXPECTED_H_
