#include "src/core/pagedb.h"

namespace komodo {

PageType PageDb::TypeOf(PageNr n) {
  return static_cast<PageType>(ops_.LoadPhys(EntryAddr(n, 0)));
}

void PageDb::SetType(PageNr n, PageType t) {
  ops_.StorePhys(EntryAddr(n, 0), static_cast<word>(t));
}

PageNr PageDb::OwnerOf(PageNr n) { return ops_.LoadPhys(EntryAddr(n, 1)); }

void PageDb::SetOwner(PageNr n, PageNr addrspace) { ops_.StorePhys(EntryAddr(n, 1), addrspace); }

crypto::DigestWords PageDb::AsMeasurement(PageNr as) {
  crypto::DigestWords d;
  for (word i = 0; i < 8; ++i) {
    d[i] = LoadPageWord(as, kAsMeasurementDigest + i);
  }
  return d;
}

void PageDb::SetAsMeasurement(PageNr as, const crypto::DigestWords& digest) {
  for (word i = 0; i < 8; ++i) {
    StorePageWord(as, kAsMeasurementDigest + i, digest[i]);
  }
}

crypto::Sha256 PageDb::LoadMeasurementStream(PageNr as) {
  std::array<uint32_t, crypto::Sha256::kExportWords> words;
  for (word i = 0; i < crypto::Sha256::kExportWords; ++i) {
    words[i] = LoadPageWord(as, kAsMeasurementStream + i);
  }
  crypto::Sha256 stream;
  stream.Import(words);
  return stream;
}

void PageDb::StoreMeasurementStream(PageNr as, const crypto::Sha256& stream) {
  const std::array<uint32_t, crypto::Sha256::kExportWords> words = stream.Export();
  for (word i = 0; i < crypto::Sha256::kExportWords; ++i) {
    StorePageWord(as, kAsMeasurementStream + i, words[i]);
  }
}

crypto::HmacKey PageDb::AttestKey() {
  crypto::HmacKey key;
  for (word i = 0; i < 8; ++i) {
    const word w = ops_.LoadPhys(arm::kMonitorBase + kGlobalAttestKey + i * arm::kWordSize);
    key[i * 4] = static_cast<uint8_t>(w);
    key[i * 4 + 1] = static_cast<uint8_t>(w >> 8);
    key[i * 4 + 2] = static_cast<uint8_t>(w >> 16);
    key[i * 4 + 3] = static_cast<uint8_t>(w >> 24);
  }
  return key;
}

}  // namespace komodo
