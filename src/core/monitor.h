// The Komodo monitor (§4): a reference monitor for enclave construction and
// execution, running in TrustZone secure/monitor modes over the hardware
// primitives of §3.2. Implements every SMC and SVC of Table 1, including the
// SGXv2-style dynamic memory management, measurement, and HMAC-based local
// attestation.
//
// Control-flow mirrors Figure 3: the OS traps in via SMC; Enter/Resume drop
// to secure user mode with MOVS-PC-LR semantics; enclave exceptions (SVC,
// interrupts, aborts, undefined instructions) land back in the monitor's
// handler state machine, which either services an SVC and resumes the
// enclave, or tears down and returns to the OS.
#ifndef SRC_CORE_MONITOR_H_
#define SRC_CORE_MONITOR_H_

#include <array>
#include <functional>
#include <optional>

#include "src/arm/execute.h"
#include "src/arm/machine.h"
#include "src/core/kom_defs.h"
#include "src/core/monitor_ops.h"
#include "src/core/pagedb.h"
#include "src/crypto/drbg.h"
#include "src/obs/trace.h"

namespace komodo {

class Monitor {
 public:
  struct Config {
    // Seed for the simulated hardware entropy source (§3.2). The attestation
    // key is derived from it at boot.
    uint64_t entropy_seed = 0x6b6f6d6f646f2121ull;
    // Interpreter step budget per enclave dispatch before the environment's
    // timer interrupt fires (models the OS tick).
    uint64_t max_enclave_steps = 50'000'000;
    // §8.1 ablations: the prototype "conservatively saves and restores every
    // non-volatile register" and "flushes the TLB although this could be
    // avoided for repeated invocation of the same enclave". Setting these
    // enables the optimisations the paper says it intends to verify.
    bool opt_skip_redundant_tlb_flush = false;
    bool opt_lazy_banked_regs = false;
  };

  // A user-execution engine: runs enclave code in user mode until an
  // exception is taken (which it must apply to the machine via
  // TakeException) and returns that exception. The default engine is the
  // A32 interpreter; the enclave runtime installs native programs here
  // (mirroring the paper's havoc model of user execution, §5.1).
  using UserRunner = std::function<arm::Exception(arm::MachineState&)>;

  explicit Monitor(arm::MachineState& m, const Config& config);
  explicit Monitor(arm::MachineState& m) : Monitor(m, Config{}) {}

  // Simulated secure boot (§7.2's bootloader): initialises the monitor
  // globals, marks every secure page free, derives and stores the
  // attestation key, and configures exception vector bases.
  void Boot();

  // Re-arms the monitor's C++-side state to match a machine that has just
  // been restored to its post-Boot() snapshot (MachineState::ResetTo): the
  // entropy source rewinds to its state right after Boot()'s key derivation,
  // the exception bookkeeping clears, and the per-monitor tracer resets its
  // ring/counters (keeping its enabled state). Everything else the monitor
  // "knows" — the PageDB, globals, attestation key — lives in simulated
  // monitor RAM and is already restored by the machine reset. Must only be
  // called after Boot().
  void ResetForReuse();

  // Entry from the SMC vector: the machine has just taken an SMC exception
  // from the OS with the call number in r0 and arguments in r1-r4. Handles
  // the call (possibly running enclave code) and performs the exception
  // return to normal world with r0 = error and r1 = value.
  void OnSmc();

  void SetUserRunner(UserRunner runner) { user_runner_ = std::move(runner); }

  arm::MachineState& machine() { return machine_; }
  const Config& config() const { return config_; }
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  // --- Registry-driven dispatch (src/core/call_table.*) -----------------------
  // One SMC as staged by OnSmc: call number from r0, arguments from r1-r4.
  struct CallCtx {
    word call = 0;
    std::array<word, 4> args{};
  };
  // Typed handler result; converted to the ABI encoding (r0 = ToWord(err),
  // r1 = val) only in the OnSmc epilogue.
  struct CallResult {
    KomErr err = KomErr::kSuccess;
    word val = 0;
  };
  // Uniform entry point for every Table 1 SMC: routes through the call
  // registry (call_table.cc) and attaches observability around the handler.
  // Public so tests and harnesses can drive individual calls without staging
  // machine registers, though the architectural path is OnSmc.
  CallResult Dispatch(const CallCtx& ctx);

  // One SVC from enclave code: call number from r0, arguments from r1-r3,
  // plus the current dispatcher/address-space context.
  struct SvcCtx {
    word call = 0;
    std::array<word, 3> args{};
    PageNr disp_page = kInvalidPage;
    PageNr as_page = kInvalidPage;
  };
  // Return err/val written to the enclave's r0/r1; `exit_retval` is set when
  // the SVC ends enclave execution.
  struct SvcResult {
    KomErr err = KomErr::kSuccess;
    word val = 0;
    bool exits = false;
    word exit_retval = 0;
  };
  SvcResult DispatchSvc(const SvcCtx& ctx);

 private:

  // Registry-generated dispatch bodies (call_table.cc expands
  // call_list.inc); Dispatch/DispatchSvc wrap these with tracing.
  CallResult DispatchImpl(const CallCtx& ctx);
  SvcResult DispatchSvcImpl(const SvcCtx& ctx);
  // Snapshot of the machine's cycle/step/cache counters for the tracer.
  // Reads state directly (never through ops_), so it charges nothing.
  obs::MachineSnap ObsSnap() const;

  // --- SMC handlers (Table 1, top half) ---------------------------------------
  CallResult SmcQuery();
  CallResult SmcGetPhysPages();
  CallResult SmcInitAddrspace(PageNr as_page, PageNr l1pt_page);
  CallResult SmcInitThread(PageNr as_page, PageNr disp_page, word entrypoint);
  CallResult SmcInitL2Table(PageNr as_page, PageNr l2pt_page, word l1index);
  CallResult SmcMapSecure(PageNr as_page, PageNr data_page, word mapping, word insecure_pgnr);
  CallResult SmcAllocSpare(PageNr as_page, PageNr spare_page);
  CallResult SmcMapInsecure(PageNr as_page, word mapping, word insecure_pgnr);
  CallResult SmcRemove(PageNr page);
  CallResult SmcFinalise(PageNr as_page);
  CallResult SmcEnter(PageNr disp_page, word arg1, word arg2, word arg3);
  CallResult SmcResume(PageNr disp_page);
  CallResult SmcStop(PageNr as_page);

  // --- SVC handlers (Table 1, bottom half) --------------------------------------
  // Stages the SvcCtx from the live user registers and dispatches it.
  SvcResult HandleSvc(PageNr disp_page, PageNr as_page);
  SvcResult SvcExit(word retval);
  SvcResult SvcGetRandom();
  SvcResult SvcAttest(PageNr as_page, vaddr data_va, vaddr mac_out_va);
  SvcResult SvcVerify(PageNr as_page, vaddr data_va, vaddr measure_va, vaddr mac_va);
  SvcResult SvcInitL2Table(PageNr as_page, PageNr spare_page, word l1index);
  SvcResult SvcMapData(PageNr as_page, PageNr spare_page, word mapping);
  SvcResult SvcUnmapData(PageNr as_page, PageNr data_page, word mapping);

  // --- Enclave execution (Figure 3) -----------------------------------------------
  // Shared tail of Enter/Resume: assumes user state is staged and the machine
  // is in monitor mode; repeatedly drops to user mode and services the
  // resulting exceptions until control returns to the OS.
  CallResult EnclaveExecutionLoop(PageNr disp_page, PageNr as_page);
  // Saves the interrupted enclave context into the dispatcher page.
  void SaveEnclaveContext(PageNr disp_page, word resume_pc, const arm::Psr& user_psr);
  // Restores r0-r12/sp/lr from the dispatcher page; returns the resume pc and
  // the saved user PSR via the out-parameters.
  void RestoreEnclaveContext(PageNr disp_page, word* resume_pc, arm::Psr* user_psr);
  // Common exit path from enclave execution back to monitor mode with the OS
  // state restored; the OnSmc epilogue then returns to normal world.
  CallResult TeardownToOs(KomErr err, word val);

  // --- Shared validation ------------------------------------------------------------
  // Checks that `as_page` is a valid address-space page in state kInit.
  std::optional<KomErr> CheckAddrspaceForInit(PageNr as_page);
  // Common L2-table installation used by both the SMC and SVC variants.
  KomErr InstallL2Table(PageNr as_page, PageNr l2pt_page, word l1index);
  // Common data-page mapping used by MapSecure and MapData. Writes the L2
  // descriptor; the caller has validated everything else.
  KomErr InstallMapping(PageNr as_page, word mapping, paddr target, bool ns);
  // Resolves the L2 descriptor slot for `mapping` in `as_page`'s table;
  // returns 0 on missing L2 table.
  paddr L2SlotAddr(PageNr as_page, word mapping);

  // Reads/writes a word in enclave user memory through its page table,
  // charging walk costs. Returns false on translation/permission failure.
  bool ReadUserWord(PageNr as_page, vaddr va, word* out);
  bool WriteUserWord(PageNr as_page, vaddr va, word value);

  // --- Monitor prologue/epilogue cycle accounting ------------------------------------
  void ChargeSmcPrologue();
  void ChargeSmcEpilogue();
  void SaveOsBankedState();
  void RestoreOsBankedState();

  arm::Exception RunUser();

  arm::MachineState& machine_;
  Config config_;
  MonitorOps ops_;
  PageDb db_;
  crypto::HashDrbg entropy_;
  // The entropy source as Boot() left it, captured so ResetForReuse can
  // rewind SvcGetRandom draws without replaying the boot key derivation.
  std::optional<crypto::HashDrbg> boot_entropy_;
  UserRunner user_runner_;
  // Per-monitor tracer/counters (DESIGN.md §9); env-activated, never charges
  // simulated cycles. Per-instance so concurrent Worlds trace independently.
  obs::Observability obs_;

  // OS return state while an enclave executes (the paper keeps this on the
  // monitor stack; we keep it in a frame in monitor RAM — see kFrameOffset).
  static constexpr word kFrameOffset = 0x800;

  // Bitmask (by arm::Exception value) of exceptions taken during the current
  // enclave execution — drives the lazy-banked-register ablation's slow path.
  word exceptions_seen_ = 0;
};

}  // namespace komodo

#endif  // SRC_CORE_MONITOR_H_
