// Monitor boot, SMC dispatch, and the enclave-construction /
// memory-management calls. The execution path (Enter/Resume/SVC) lives in
// monitor_exec.cc.
#include "src/core/monitor.h"

#include <cassert>

#include "src/arm/page_table.h"
#include "src/fuzz/inject.h"

namespace komodo {

using arm::Exception;
using arm::MachineState;
using arm::Mode;
using arm::Reg;

const char* KomErrName(word err) {
  switch (err) {
    case kErrSuccess:
      return "success";
    case kErrInvalidPageNo:
      return "invalid_pageno";
    case kErrPageInUse:
      return "page_in_use";
    case kErrInvalidAddrspace:
      return "invalid_addrspace";
    case kErrAlreadyFinal:
      return "already_final";
    case kErrNotFinal:
      return "not_final";
    case kErrInvalidMapping:
      return "invalid_mapping";
    case kErrAddrInUse:
      return "addr_in_use";
    case kErrNotStopped:
      return "not_stopped";
    case kErrInterrupted:
      return "interrupted";
    case kErrFault:
      return "fault";
    case kErrAlreadyEntered:
      return "already_entered";
    case kErrNotEntered:
      return "not_entered";
    case kErrPageTableMissing:
      return "pagetable_missing";
    case kErrInvalidArgument:
      return "invalid_argument";
    case kErrInvalidSvc:
      return "invalid_svc";
    case kErrNotSpare:
      return "not_spare";
    default:
      return "unknown";
  }
}

Monitor::Monitor(MachineState& m, const Config& config)
    : machine_(m), config_(config), ops_(m), db_(ops_), entropy_(config.entropy_seed) {}

void Monitor::Boot() {
  // Monitor globals.
  machine_.mem.Write(arm::kMonitorBase + kGlobalNPages, machine_.mem.nsecure_pages());
  machine_.mem.Write(arm::kMonitorBase + kGlobalCurDispatcher, kInvalidPage);
  // Attestation key from the hardware entropy source (§4, Attestation).
  for (word i = 0; i < 8; ++i) {
    machine_.mem.Write(arm::kMonitorBase + kGlobalAttestKey + i * arm::kWordSize,
                       entropy_.NextWord());
  }
  // PageDB: every secure page starts free with no owner.
  for (PageNr n = 0; n < machine_.mem.nsecure_pages(); ++n) {
    machine_.mem.Write(arm::kMonitorBase + kPageDbOffset + n * kPageDbEntryWords * arm::kWordSize,
                       static_cast<word>(PageType::kFree));
    machine_.mem.Write(
        arm::kMonitorBase + kPageDbOffset + n * kPageDbEntryWords * arm::kWordSize + 4,
        kInvalidPage);
  }
  // Exception vector bases: the monitor's handlers live in its image, reached
  // through the secure direct map.
  machine_.vbar_monitor = arm::kDirectMapVbase + arm::kMonitorBase + 0xf000;
  machine_.vbar_secure = arm::kDirectMapVbase + arm::kMonitorBase + 0xf100;
  // Hand off to the normal-world OS (bootloader epilogue).
  machine_.cpsr.mode = Mode::kMonitor;
  machine_.SetScrNs(true);
  machine_.cpsr.mode = Mode::kSupervisor;
  machine_.cpsr.irq_masked = false;
  machine_.cycles.Reset();
  boot_entropy_ = entropy_;
}

void Monitor::ResetForReuse() {
  assert(boot_entropy_.has_value());
  entropy_ = *boot_entropy_;
  exceptions_seen_ = 0;
  obs_.Reset();
}

void Monitor::ChargeSmcPrologue() {
  // Push of the non-volatile registers the handlers may use (r5-r11; r0-r4
  // carry the call number and arguments) plus a stack frame and the
  // call-number dispatch chain. The prototype does this unconditionally, even
  // for trivial SMCs (§8.1).
  ops_.ChargeAlu(2);
  for (int i = 0; i < 7; ++i) {
    ops_.StorePhys(arm::kMonitorBase + kFrameOffset + 0x100 + i * 4, machine_.r[5 + i]);
  }
  // PSR/SCR bookkeeping on the way in (mrs spsr_mon, scr read, masks) and the
  // call-number dispatch chain of the inlined handler table.
  machine_.cycles.Charge(2 * arm::kCortexA7Costs.msr_mrs + 2 * arm::kCortexA7Costs.cp15_access);
  ops_.ChargeAlu(16);  // dispatch compare chain
}

void Monitor::ChargeSmcEpilogue() {
  for (int i = 0; i < 7; ++i) {
    machine_.r[5 + i] = ops_.LoadPhys(arm::kMonitorBase + kFrameOffset + 0x100 + i * 4);
  }
  // Zero the non-return volatile registers to avoid leaking monitor or
  // enclave state (the "other non-return registers are zeroed" invariant of
  // §5.2). Skippable under fault injection so the noninterference oracle can
  // be shown to catch the leak.
  if (!fuzz::Inject().skip_scratch_clear) {
    ops_.SetReg(Reg::R2, 0);
    ops_.SetReg(Reg::R3, 0);
    ops_.SetReg(Reg::R4, 0);
    ops_.SetReg(Reg::R12, 0);
  }
}

void Monitor::OnSmc() {
  assert(machine_.cpsr.mode == Mode::kMonitor);
  ChargeSmcPrologue();
  CallCtx ctx;
  ctx.call = ops_.GetReg(Reg::R0);
  ctx.args = {ops_.GetReg(Reg::R1), ops_.GetReg(Reg::R2), ops_.GetReg(Reg::R3),
              ops_.GetReg(Reg::R4)};

  // Per-call dispatch is table-driven (src/core/call_table.*); Dispatch also
  // attaches the tracer when enabled.
  const CallResult res = Dispatch(ctx);

  ChargeSmcEpilogue();
  ops_.SetReg(Reg::R0, ToWord(res.err));
  ops_.SetReg(Reg::R1, res.val);
  machine_.ExceptionReturn(machine_.lr_banked[static_cast<size_t>(Mode::kMonitor)]);
}

// --- Shared validation ---------------------------------------------------------

std::optional<KomErr> Monitor::CheckAddrspaceForInit(PageNr as_page) {
  if (!db_.ValidPageNr(as_page) || db_.TypeOf(as_page) != PageType::kAddrspace) {
    return KomErr::kInvalidAddrspace;
  }
  if (db_.AsState(as_page) != AddrspaceState::kInit) {
    return KomErr::kAlreadyFinal;
  }
  return std::nullopt;
}

paddr Monitor::L2SlotAddr(PageNr as_page, word mapping) {
  const vaddr va = MappingVa(mapping);
  const paddr l1pt = PagePaddr(db_.AsL1Pt(as_page));
  const word l1_index = va >> 20;
  ops_.ChargeAlu(2);
  const word l1_desc = ops_.LoadPhys(l1pt + l1_index * arm::kWordSize);
  if (!arm::IsL1PageTableDesc(l1_desc)) {
    return 0;
  }
  const paddr l2_table = arm::L1DescTableBase(l1_desc);
  ops_.ChargeAlu(2);
  return l2_table + ((va >> 12) & 0xff) * arm::kWordSize;
}

KomErr Monitor::InstallL2Table(PageNr as_page, PageNr l2pt_page, word l1index) {
  if (l1index >= arm::kL1Entries / arm::kL2TablesPerPage) {
    return KomErr::kInvalidMapping;
  }
  const paddr l1pt = PagePaddr(db_.AsL1Pt(as_page));
  // All four L1 slots this page will fill must be empty.
  for (word k = 0; k < arm::kL2TablesPerPage; ++k) {
    const word desc = ops_.LoadPhys(l1pt + (l1index * arm::kL2TablesPerPage + k) * arm::kWordSize);
    if (desc != arm::kL1FaultDesc) {
      return KomErr::kAddrInUse;
    }
  }
  // Zero the new table page, then install the four descriptors.
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    ops_.ChargeLoopIteration();
    ops_.StorePhys(PagePaddr(l2pt_page) + i * arm::kWordSize, 0);
  }
  for (word k = 0; k < arm::kL2TablesPerPage; ++k) {
    ops_.StorePhys(l1pt + (l1index * arm::kL2TablesPerPage + k) * arm::kWordSize,
                   arm::MakeL1PageTableDesc(PagePaddr(l2pt_page) + k * arm::kL2TableBytes));
  }
  // If this is the live table, the TLB may now be stale.
  if (machine_.ttbr0 == l1pt) {
    machine_.NoteTlbStale();
  }
  return KomErr::kSuccess;
}

KomErr Monitor::InstallMapping(PageNr as_page, word mapping, paddr target, bool ns) {
  const paddr slot = L2SlotAddr(as_page, mapping);
  assert(slot != 0);  // caller validated the table exists
  const word perms = MappingPerms(mapping);
  ops_.StorePhys(slot, arm::MakeL2SmallPageDesc(target, (perms & kMapW) != 0,
                                                (perms & kMapX) != 0, ns));
  if (machine_.ttbr0 == PagePaddr(db_.AsL1Pt(as_page))) {
    machine_.NoteTlbStale();
  }
  return KomErr::kSuccess;
}

bool Monitor::ReadUserWord(PageNr as_page, vaddr va, word* out) {
  if (!arm::IsWordAligned(va)) {
    return false;
  }
  ops_.ChargeAlu(2);
  const paddr l1pt = PagePaddr(db_.AsL1Pt(as_page));
  ops_.ChargeAlu(2);  // walk address computation; descriptor loads charged below
  machine_.cycles.Charge(2 * arm::kCortexA7Costs.load);
  const arm::WalkResult w = arm::WalkPageTable(machine_.mem, l1pt, va);
  if (!w.ok || !w.user_read) {
    return false;
  }
  *out = ops_.LoadPhys(w.phys);
  return true;
}

bool Monitor::WriteUserWord(PageNr as_page, vaddr va, word value) {
  if (!arm::IsWordAligned(va)) {
    return false;
  }
  ops_.ChargeAlu(2);
  const paddr l1pt = PagePaddr(db_.AsL1Pt(as_page));
  machine_.cycles.Charge(2 * arm::kCortexA7Costs.load);
  const arm::WalkResult w = arm::WalkPageTable(machine_.mem, l1pt, va);
  if (!w.ok || !w.user_write) {
    return false;
  }
  ops_.StorePhys(w.phys, value);
  return true;
}

// --- SMC handlers -----------------------------------------------------------------

Monitor::CallResult Monitor::SmcQuery() { return {KomErr::kSuccess, kMagic}; }

Monitor::CallResult Monitor::SmcGetPhysPages() { return {KomErr::kSuccess, db_.NPages()}; }

Monitor::CallResult Monitor::SmcInitAddrspace(PageNr as_page, PageNr l1pt_page) {
  if (!db_.ValidPageNr(as_page) || !db_.ValidPageNr(l1pt_page)) {
    return {KomErr::kInvalidPageNo, 0};
  }
  // The two arguments naming the same page is exactly the bug the paper's
  // verification found in the unverified prototype (§9.1). The fuzz harness
  // can re-introduce the bug to prove the refinement oracle catches it.
  if (as_page == l1pt_page && !fuzz::Inject().initaddrspace_alias) {
    return {KomErr::kInvalidPageNo, 0};
  }
  if (!db_.IsFree(as_page) || !db_.IsFree(l1pt_page)) {
    return {KomErr::kPageInUse, 0};
  }

  // Zero the L1 table (all fault descriptors) and the address-space header.
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    ops_.ChargeLoopIteration();
    ops_.StorePhys(PagePaddr(l1pt_page) + i * arm::kWordSize, 0);
  }
  db_.SetType(as_page, PageType::kAddrspace);
  db_.SetOwner(as_page, as_page);
  db_.SetType(l1pt_page, PageType::kL1PTable);
  db_.SetOwner(l1pt_page, as_page);
  db_.SetAsL1Pt(as_page, l1pt_page);
  db_.SetAsRefcount(as_page, 1);  // the L1 table
  db_.SetAsState(as_page, AddrspaceState::kInit);
  db_.StoreMeasurementStream(as_page, crypto::Sha256());
  db_.SetAsMeasurement(as_page, crypto::DigestWords{});
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcInitThread(PageNr as_page, PageNr disp_page, word entrypoint) {
  if (const auto err = CheckAddrspaceForInit(as_page)) {
    return {*err, 0};
  }
  if (!db_.ValidPageNr(disp_page)) {
    return {KomErr::kInvalidPageNo, 0};
  }
  if (!db_.IsFree(disp_page)) {
    return {KomErr::kPageInUse, 0};
  }
  db_.SetType(disp_page, PageType::kDispatcher);
  db_.SetOwner(disp_page, as_page);
  db_.SetDispEntered(disp_page, false);
  db_.SetDispEntrypoint(disp_page, entrypoint);
  db_.SetAsRefcount(as_page, db_.AsRefcount(as_page) + 1);
  // Measurement records the thread's entry point (§4, Attestation).
  crypto::Sha256 stream = db_.LoadMeasurementStream(as_page);
  stream.UpdateWordLe(kMeasureInitThread);
  stream.UpdateWordLe(entrypoint);
  ops_.ChargeSha256Blocks(1);
  db_.StoreMeasurementStream(as_page, stream);
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcInitL2Table(PageNr as_page, PageNr l2pt_page, word l1index) {
  if (const auto err = CheckAddrspaceForInit(as_page)) {
    return {*err, 0};
  }
  if (!db_.ValidPageNr(l2pt_page)) {
    return {KomErr::kInvalidPageNo, 0};
  }
  if (!db_.IsFree(l2pt_page)) {
    return {KomErr::kPageInUse, 0};
  }
  const KomErr err = InstallL2Table(as_page, l2pt_page, l1index);
  if (err != KomErr::kSuccess) {
    return {err, 0};
  }
  db_.SetType(l2pt_page, PageType::kL2PTable);
  db_.SetOwner(l2pt_page, as_page);
  db_.SetAsRefcount(as_page, db_.AsRefcount(as_page) + 1);
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcMapSecure(PageNr as_page, PageNr data_page, word mapping,
                                          word insecure_pgnr) {
  if (const auto err = CheckAddrspaceForInit(as_page)) {
    return {*err, 0};
  }
  if (!db_.ValidPageNr(data_page)) {
    return {KomErr::kInvalidPageNo, 0};
  }
  if (!db_.IsFree(data_page)) {
    return {KomErr::kPageInUse, 0};
  }
  if (!MappingValid(mapping)) {
    return {KomErr::kInvalidMapping, 0};
  }
  // The source of the initial contents must be genuinely insecure memory —
  // not the monitor image nor a secure page (§9.1's second bug class).
  const paddr src = insecure_pgnr * arm::kPageSize;
  if (!arm::IsInsecurePageAddr(machine_.mem, src)) {
    return {KomErr::kInvalidArgument, 0};
  }
  const paddr slot = L2SlotAddr(as_page, mapping);
  if (slot == 0) {
    return {KomErr::kPageTableMissing, 0};
  }
  if (ops_.LoadPhys(slot) != arm::kL2FaultDesc) {
    return {KomErr::kAddrInUse, 0};
  }

  // Copy the initial contents into the secure page.
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    ops_.ChargeLoopIteration();
    ops_.StorePhys(PagePaddr(data_page) + i * arm::kWordSize,
                   ops_.LoadPhys(src + i * arm::kWordSize));
  }
  InstallMapping(as_page, mapping, PagePaddr(data_page), /*ns=*/false);
  db_.SetType(data_page, PageType::kDataPage);
  db_.SetOwner(data_page, as_page);
  db_.SetAsRefcount(as_page, db_.AsRefcount(as_page) + 1);

  // Measure (opcode, mapping, contents) — §4.
  crypto::Sha256 stream = db_.LoadMeasurementStream(as_page);
  stream.UpdateWordLe(kMeasureMapSecure);
  stream.UpdateWordLe(mapping);
  uint8_t page_bytes[arm::kPageSize];
  machine_.mem.ReadPageBytes(PagePaddr(data_page), page_bytes);
  stream.Update(page_bytes, sizeof(page_bytes));
  ops_.ChargeSha256Blocks(arm::kPageSize / crypto::kSha256BlockBytes + 1);
  db_.StoreMeasurementStream(as_page, stream);
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcAllocSpare(PageNr as_page, PageNr spare_page) {
  if (!db_.ValidPageNr(as_page) || db_.TypeOf(as_page) != PageType::kAddrspace) {
    return {KomErr::kInvalidAddrspace, 0};
  }
  if (db_.AsState(as_page) == AddrspaceState::kStopped) {
    return {KomErr::kInvalidAddrspace, 0};
  }
  if (!db_.ValidPageNr(spare_page)) {
    return {KomErr::kInvalidPageNo, 0};
  }
  if (!db_.IsFree(spare_page)) {
    return {KomErr::kPageInUse, 0};
  }
  db_.SetType(spare_page, PageType::kSparePage);
  db_.SetOwner(spare_page, as_page);
  db_.SetAsRefcount(as_page, db_.AsRefcount(as_page) + 1);
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcMapInsecure(PageNr as_page, word mapping, word insecure_pgnr) {
  if (const auto err = CheckAddrspaceForInit(as_page)) {
    return {*err, 0};
  }
  if (!MappingValid(mapping)) {
    return {KomErr::kInvalidMapping, 0};
  }
  const paddr target = insecure_pgnr * arm::kPageSize;
  if (!arm::IsInsecurePageAddr(machine_.mem, target)) {
    return {KomErr::kInvalidArgument, 0};
  }
  // Insecure pages must never be executable inside an enclave: the OS could
  // change their contents after measurement.
  if ((MappingPerms(mapping) & kMapX) != 0) {
    return {KomErr::kInvalidMapping, 0};
  }
  const paddr slot = L2SlotAddr(as_page, mapping);
  if (slot == 0) {
    return {KomErr::kPageTableMissing, 0};
  }
  if (ops_.LoadPhys(slot) != arm::kL2FaultDesc) {
    return {KomErr::kAddrInUse, 0};
  }
  InstallMapping(as_page, mapping, target, /*ns=*/true);
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcRemove(PageNr page) {
  if (!db_.ValidPageNr(page)) {
    return {KomErr::kInvalidPageNo, 0};
  }
  const PageType type = db_.TypeOf(page);
  if (type == PageType::kFree) {
    return {KomErr::kSuccess, 0};
  }
  if (type == PageType::kAddrspace) {
    if (db_.AsRefcount(page) != 0 && !fuzz::Inject().remove_skip_refcount) {
      return {KomErr::kPageInUse, 0};
    }
  } else {
    const PageNr owner = db_.OwnerOf(page);
    // Spare pages may be reclaimed from a live enclave (§4, Dynamic
    // allocation); anything else requires the enclave to be stopped.
    if (type != PageType::kSparePage && db_.AsState(owner) != AddrspaceState::kStopped) {
      return {KomErr::kNotStopped, 0};
    }
    db_.SetAsRefcount(owner, db_.AsRefcount(owner) - 1);
  }
  // Scrub contents before the page can be reallocated.
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    ops_.ChargeLoopIteration();
    ops_.StorePhys(PagePaddr(page) + i * arm::kWordSize, 0);
  }
  db_.SetType(page, PageType::kFree);
  db_.SetOwner(page, kInvalidPage);
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcFinalise(PageNr as_page) {
  if (const auto err = CheckAddrspaceForInit(as_page)) {
    return {*err, 0};
  }
  crypto::Sha256 stream = db_.LoadMeasurementStream(as_page);
  ops_.ChargeSha256Blocks(2);  // padding + length block
  const crypto::Digest digest = stream.Finalize();
  db_.SetAsMeasurement(as_page, crypto::DigestToWords(digest));
  db_.SetAsState(as_page, AddrspaceState::kFinal);
  return {KomErr::kSuccess, 0};
}

Monitor::CallResult Monitor::SmcStop(PageNr as_page) {
  if (!db_.ValidPageNr(as_page) || db_.TypeOf(as_page) != PageType::kAddrspace) {
    return {KomErr::kInvalidAddrspace, 0};
  }
  db_.SetAsState(as_page, AddrspaceState::kStopped);
  return {KomErr::kSuccess, 0};
}

}  // namespace komodo
