// The enclave execution path: Enter/Resume, the exception-handler state
// machine of Figure 3, and the SVC handlers available to running enclaves.
#include <cassert>

#include "src/arm/page_table.h"
#include "src/core/monitor.h"
#include "src/crypto/hmac.h"

namespace komodo {

using arm::Exception;
using arm::Mode;
using arm::Psr;
using arm::Reg;

namespace {

constexpr paddr FrameAddr(word index) {
  return arm::kMonitorBase + 0x800 + index * arm::kWordSize;
}

// Frame slots for the OS state saved across enclave execution.
constexpr word kFrameOsLr = 0;
constexpr word kFrameOsSpsr = 1;
constexpr word kFrameUsrSp = 2;
constexpr word kFrameUsrLr = 3;
// Three slots (sp, lr, spsr) per exception mode, in this order.
constexpr Mode kSavedModes[] = {Mode::kSupervisor, Mode::kAbort, Mode::kUndefined, Mode::kIrq,
                                Mode::kFiq};
constexpr word kFrameBanked = 4;

word ExceptionBit(Exception e) { return 1u << static_cast<word>(e); }

// The declassified exception-type code reported to the OS on a faulting
// enclave (§6.2: the OS learns only the kind of exception).
// Static event names for the tracer (obs holds the pointer, never copies).
const char* ExcName(Exception e) {
  switch (e) {
    case Exception::kSvc:
      return "svc";
    case Exception::kIrq:
      return "irq";
    case Exception::kFiq:
      return "fiq";
    case Exception::kPrefetchAbort:
      return "prefetch_abort";
    case Exception::kDataAbort:
      return "data_abort";
    case Exception::kUndefined:
      return "undefined";
    case Exception::kSmc:
      return "smc";
  }
  return "unknown";
}

word FaultCode(Exception e) {
  switch (e) {
    case Exception::kPrefetchAbort:
      return 1;
    case Exception::kDataAbort:
      return 2;
    case Exception::kUndefined:
      return 3;
    default:
      return 0;
  }
}

}  // namespace

void Monitor::SaveOsBankedState() {
  ops_.StorePhys(FrameAddr(kFrameUsrSp), ops_.GetBanked(Reg::SP, Mode::kUser));
  ops_.StorePhys(FrameAddr(kFrameUsrLr), ops_.GetBanked(Reg::LR, Mode::kUser));
  word slot = kFrameBanked;
  for (Mode m : kSavedModes) {
    const bool lazy_skip = config_.opt_lazy_banked_regs &&
                           (m == Mode::kAbort || m == Mode::kUndefined || m == Mode::kFiq);
    if (!lazy_skip) {
      ops_.StorePhys(FrameAddr(slot), ops_.GetBanked(Reg::SP, m));
      ops_.StorePhys(FrameAddr(slot + 1), ops_.GetBanked(Reg::LR, m));
      ops_.ChargeAlu();  // mrs spsr
      ops_.StorePhys(FrameAddr(slot + 2), machine_.spsr_banked[static_cast<size_t>(m)].Encode());
    }
    slot += 3;
  }
}

void Monitor::RestoreOsBankedState() {
  ops_.SetBanked(Reg::SP, ops_.LoadPhys(FrameAddr(kFrameUsrSp)), Mode::kUser);
  ops_.SetBanked(Reg::LR, ops_.LoadPhys(FrameAddr(kFrameUsrLr)), Mode::kUser);
  word slot = kFrameBanked;
  for (Mode m : kSavedModes) {
    const bool lazy_skip = config_.opt_lazy_banked_regs &&
                           (m == Mode::kAbort || m == Mode::kUndefined || m == Mode::kFiq);
    if (!lazy_skip) {
      ops_.SetBanked(Reg::SP, ops_.LoadPhys(FrameAddr(slot)), m);
      ops_.SetBanked(Reg::LR, ops_.LoadPhys(FrameAddr(slot + 1)), m);
      ops_.ChargeAlu();
      machine_.spsr_banked[static_cast<size_t>(m)] =
          Psr::Decode(ops_.LoadPhys(FrameAddr(slot + 2)));
    } else {
      // Lazy ablation slow path: if the enclave's execution touched this
      // bank (by taking the corresponding exception), its contents now
      // derive from enclave state; scrub rather than leak. The fast path —
      // bank untouched — legitimately skips the save/restore, which is the
      // optimisation the paper sketches in §8.1.
      const bool touched =
          (m == Mode::kAbort &&
           (exceptions_seen_ & (ExceptionBit(Exception::kDataAbort) |
                                ExceptionBit(Exception::kPrefetchAbort))) != 0) ||
          (m == Mode::kUndefined &&
           (exceptions_seen_ & ExceptionBit(Exception::kUndefined)) != 0) ||
          (m == Mode::kFiq && (exceptions_seen_ & ExceptionBit(Exception::kFiq)) != 0);
      if (touched) {
        ops_.SetBanked(Reg::SP, 0, m);
        ops_.SetBanked(Reg::LR, 0, m);
        machine_.spsr_banked[static_cast<size_t>(m)] = Psr{};
        ops_.ChargeAlu();
      }
    }
    slot += 3;
  }
}

arm::Exception Monitor::RunUser() {
  if (user_runner_) {
    return user_runner_(machine_);
  }
  std::optional<Exception> exc = arm::RunUntilException(machine_, config_.max_enclave_steps);
  if (exc.has_value()) {
    return *exc;
  }
  // Step budget exhausted: the environment's timer interrupt fires (user mode
  // cannot mask IRQs, so it is taken on the next step).
  machine_.pending_irq = true;
  exc = arm::RunUntilException(machine_, 2);
  assert(exc.has_value());
  return *exc;
}

Monitor::CallResult Monitor::TeardownToOs(KomErr err, word val) {
  if (obs_.enabled()) {
    // No PageDb reads here: obs must never charge simulated cycles, and every
    // ops_ accessor does.
    obs_.Instant(obs::EventKind::kEnclaveExit, 0, "EnclaveExit", ObsSnap(), ToWord(err));
  }
  ops_.ChargeAlu();  // cps #monitor
  machine_.cpsr.mode = Mode::kMonitor;
  machine_.cpsr.irq_masked = true;
  machine_.cpsr.fiq_masked = true;
  db_.SetCurDispatcher(kInvalidPage);
  RestoreOsBankedState();
  machine_.SetScrNs(true);
  machine_.lr_banked[static_cast<size_t>(Mode::kMonitor)] = ops_.LoadPhys(FrameAddr(kFrameOsLr));
  machine_.spsr_banked[static_cast<size_t>(Mode::kMonitor)] =
      Psr::Decode(ops_.LoadPhys(FrameAddr(kFrameOsSpsr)));
  return {err, val};
}

Monitor::CallResult Monitor::SmcEnter(PageNr disp_page, word arg1, word arg2, word arg3) {
  if (!db_.ValidPageNr(disp_page) || db_.TypeOf(disp_page) != PageType::kDispatcher) {
    return {KomErr::kInvalidPageNo, 0};
  }
  const PageNr as_page = db_.OwnerOf(disp_page);
  if (db_.AsState(as_page) != AddrspaceState::kFinal) {
    return {KomErr::kNotFinal, 0};
  }
  if (db_.DispEntered(disp_page)) {
    return {KomErr::kAlreadyEntered, 0};
  }

  // Save the OS return state and banked registers (conservatively, §8.1).
  ops_.StorePhys(FrameAddr(kFrameOsLr), machine_.lr_banked[static_cast<size_t>(Mode::kMonitor)]);
  ops_.StorePhys(FrameAddr(kFrameOsSpsr),
                 machine_.spsr_banked[static_cast<size_t>(Mode::kMonitor)].Encode());
  SaveOsBankedState();
  machine_.SetScrNs(false);
  exceptions_seen_ = 0;

  // Load the enclave page table; flush unless provably still consistent.
  const paddr l1pt = PagePaddr(db_.AsL1Pt(as_page));
  if (config_.opt_skip_redundant_tlb_flush && machine_.ttbr0 == l1pt &&
      machine_.tlb_consistent) {
    ops_.ChargeAlu(2);
  } else {
    machine_.WriteTtbr0(l1pt);
    machine_.FlushTlb();
    if (obs_.enabled()) {
      obs_.Instant(obs::EventKind::kTlbFlush, 0, "TlbFlush", ObsSnap());
    }
  }

  // Stage the architectural entry state (§5.2): parameters in r0-r2, every
  // other user-visible register zeroed.
  for (int i = 0; i < 13; ++i) {
    ops_.SetReg(static_cast<Reg>(i), 0);
  }
  ops_.SetReg(Reg::R0, arg1);
  ops_.SetReg(Reg::R1, arg2);
  ops_.SetReg(Reg::R2, arg3);
  ops_.SetBanked(Reg::SP, 0, Mode::kUser);
  ops_.SetBanked(Reg::LR, 0, Mode::kUser);

  Psr user_psr;
  user_psr.mode = Mode::kUser;
  user_psr.irq_masked = false;
  user_psr.fiq_masked = false;
  machine_.spsr_banked[static_cast<size_t>(Mode::kMonitor)] = user_psr;
  ops_.ChargeAlu(2);  // msr spsr

  const word entry = db_.DispEntrypoint(disp_page);
  db_.SetCurDispatcher(disp_page);
  if (obs_.enabled()) {
    obs_.Instant(obs::EventKind::kEnclaveEnter, disp_page, "EnclaveEnter", ObsSnap());
  }
  machine_.ExceptionReturn(entry);  // MOVS PC, LR into user mode
  return EnclaveExecutionLoop(disp_page, as_page);
}

Monitor::CallResult Monitor::SmcResume(PageNr disp_page) {
  if (!db_.ValidPageNr(disp_page) || db_.TypeOf(disp_page) != PageType::kDispatcher) {
    return {KomErr::kInvalidPageNo, 0};
  }
  const PageNr as_page = db_.OwnerOf(disp_page);
  if (db_.AsState(as_page) != AddrspaceState::kFinal) {
    return {KomErr::kNotFinal, 0};
  }
  if (!db_.DispEntered(disp_page)) {
    return {KomErr::kNotEntered, 0};
  }

  ops_.StorePhys(FrameAddr(kFrameOsLr), machine_.lr_banked[static_cast<size_t>(Mode::kMonitor)]);
  ops_.StorePhys(FrameAddr(kFrameOsSpsr),
                 machine_.spsr_banked[static_cast<size_t>(Mode::kMonitor)].Encode());
  SaveOsBankedState();
  machine_.SetScrNs(false);
  exceptions_seen_ = 0;

  const paddr l1pt = PagePaddr(db_.AsL1Pt(as_page));
  if (config_.opt_skip_redundant_tlb_flush && machine_.ttbr0 == l1pt &&
      machine_.tlb_consistent) {
    ops_.ChargeAlu(2);
  } else {
    machine_.WriteTtbr0(l1pt);
    machine_.FlushTlb();
    if (obs_.enabled()) {
      obs_.Instant(obs::EventKind::kTlbFlush, 0, "TlbFlush", ObsSnap());
    }
  }

  word resume_pc = 0;
  Psr user_psr;
  RestoreEnclaveContext(disp_page, &resume_pc, &user_psr);
  db_.SetDispEntered(disp_page, false);
  machine_.spsr_banked[static_cast<size_t>(Mode::kMonitor)] = user_psr;
  ops_.ChargeAlu(2);

  db_.SetCurDispatcher(disp_page);
  if (obs_.enabled()) {
    obs_.Instant(obs::EventKind::kEnclaveResume, disp_page, "EnclaveResume", ObsSnap());
  }
  machine_.ExceptionReturn(resume_pc);
  return EnclaveExecutionLoop(disp_page, as_page);
}

Monitor::CallResult Monitor::EnclaveExecutionLoop(PageNr disp_page, PageNr as_page) {
  for (;;) {
    const Exception exc = RunUser();
    exceptions_seen_ |= ExceptionBit(exc);
    if (obs_.enabled() && exc != Exception::kSvc) {
      obs_.Instant(obs::EventKind::kException, static_cast<word>(exc), ExcName(exc), ObsSnap());
    }
    switch (exc) {
      case Exception::kSvc: {
        // The machine is now in (secure) supervisor mode; user registers are
        // live in the shared register file.
        const SvcResult res = HandleSvc(disp_page, as_page);
        if (res.exits) {
          // Exit does not save context: the thread stays re-enterable (§4).
          return TeardownToOs(KomErr::kSuccess, res.exit_retval);
        }
        ops_.SetReg(Reg::R0, ToWord(res.err));
        ops_.SetReg(Reg::R1, res.val);
        if (!machine_.tlb_consistent) {
          machine_.FlushTlb();  // an SVC may have edited the live page table
          if (obs_.enabled()) {
            obs_.Instant(obs::EventKind::kTlbFlush, 0, "TlbFlush", ObsSnap());
          }
        }
        machine_.ExceptionReturn(machine_.lr_banked[static_cast<size_t>(Mode::kSupervisor)]);
        continue;
      }
      case Exception::kIrq:
      case Exception::kFiq: {
        const Mode m = (exc == Exception::kIrq) ? Mode::kIrq : Mode::kFiq;
        ops_.ChargeAlu();
        const word resume_pc = machine_.lr_banked[static_cast<size_t>(m)] - 4;
        const Psr user_psr = machine_.spsr_banked[static_cast<size_t>(m)];
        SaveEnclaveContext(disp_page, resume_pc, user_psr);
        db_.SetDispEntered(disp_page, true);
        return TeardownToOs(KomErr::kInterrupted, 0);
      }
      case Exception::kPrefetchAbort:
      case Exception::kDataAbort:
      case Exception::kUndefined:
        // The thread exits with an error code but no further information
        // (§4): the OS cannot observe the faulting address or context.
        return TeardownToOs(KomErr::kFault, FaultCode(exc));
      case Exception::kSmc:
        // Unreachable: SMC from user mode is an undefined instruction.
        assert(false && "SMC exception during enclave execution");
        return TeardownToOs(KomErr::kFault, 0);
    }
  }
}

void Monitor::SaveEnclaveContext(PageNr disp_page, word resume_pc, const Psr& user_psr) {
  for (word i = 0; i < 13; ++i) {
    db_.StorePageWord(disp_page, kDispSavedRegs + i, machine_.r[i]);
    ops_.ChargeAlu();
  }
  db_.StorePageWord(disp_page, kDispSavedSp, ops_.GetBanked(Reg::SP, Mode::kUser));
  db_.StorePageWord(disp_page, kDispSavedLr, ops_.GetBanked(Reg::LR, Mode::kUser));
  db_.StorePageWord(disp_page, kDispSavedPc, resume_pc);
  db_.StorePageWord(disp_page, kDispSavedPsr, user_psr.Encode());
}

void Monitor::RestoreEnclaveContext(PageNr disp_page, word* resume_pc, Psr* user_psr) {
  for (word i = 0; i < 13; ++i) {
    machine_.r[i] = db_.LoadPageWord(disp_page, kDispSavedRegs + i);
    ops_.ChargeAlu();
  }
  ops_.SetBanked(Reg::SP, db_.LoadPageWord(disp_page, kDispSavedSp), Mode::kUser);
  ops_.SetBanked(Reg::LR, db_.LoadPageWord(disp_page, kDispSavedLr), Mode::kUser);
  *resume_pc = db_.LoadPageWord(disp_page, kDispSavedPc);
  Psr psr = Psr::Decode(db_.LoadPageWord(disp_page, kDispSavedPsr));
  // Whatever was saved, execution resumes in user mode with interrupts
  // enabled — the PSR is enclave-influenced data, not a capability.
  psr.mode = Mode::kUser;
  psr.irq_masked = false;
  psr.fiq_masked = false;
  *user_psr = psr;
}

// --- SVC handlers -------------------------------------------------------------------

Monitor::SvcResult Monitor::HandleSvc(PageNr disp_page, PageNr as_page) {
  ops_.ChargeAlu(8);  // dispatch chain
  SvcCtx ctx;
  ctx.call = ops_.GetReg(Reg::R0);
  ctx.args = {ops_.GetReg(Reg::R1), ops_.GetReg(Reg::R2), ops_.GetReg(Reg::R3)};
  ctx.disp_page = disp_page;
  ctx.as_page = as_page;
  // Per-call dispatch is table-driven (src/core/call_table.*); DispatchSvc
  // also attaches the tracer when enabled.
  return DispatchSvc(ctx);
}

Monitor::SvcResult Monitor::SvcExit(word retval) {
  // Exit carries no error path: the retval is handed to the OS verbatim.
  SvcResult res;
  res.exits = true;
  res.exit_retval = retval;
  return res;
}

Monitor::SvcResult Monitor::SvcGetRandom() {
  // Models the latency of a read from the SoC's hardware RNG FIFO.
  machine_.cycles.Charge(200);
  return {KomErr::kSuccess, entropy_.NextWord(), false, 0};
}

Monitor::SvcResult Monitor::SvcAttest(PageNr as_page, vaddr data_va, vaddr mac_out_va) {
  word data[8];
  for (word i = 0; i < 8; ++i) {
    if (!ReadUserWord(as_page, data_va + i * arm::kWordSize, &data[i])) {
      return {KomErr::kInvalidArgument, 0, false, 0};
    }
  }
  const crypto::DigestWords measurement = db_.AsMeasurement(as_page);
  // MAC over (measurement || enclave-provided data) — §4.
  crypto::HmacSha256Stream mac(db_.AttestKey());
  for (word w : measurement) {
    mac.UpdateWordLe(w);
  }
  for (word w : data) {
    mac.UpdateWordLe(w);
  }
  ops_.ChargeSha256Blocks(5);  // ipad + 1 message block + padding; opad + digest
  const crypto::DigestWords out = crypto::DigestToWords(mac.Finalize());
  for (word i = 0; i < 8; ++i) {
    if (!WriteUserWord(as_page, mac_out_va + i * arm::kWordSize, out[i])) {
      return {KomErr::kInvalidArgument, 0, false, 0};
    }
  }
  return {KomErr::kSuccess, 0, false, 0};
}

Monitor::SvcResult Monitor::SvcVerify(PageNr as_page, vaddr data_va, vaddr measure_va,
                                      vaddr mac_va) {
  word data[8];
  word measure[8];
  word mac_in[8];
  for (word i = 0; i < 8; ++i) {
    if (!ReadUserWord(as_page, data_va + i * arm::kWordSize, &data[i]) ||
        !ReadUserWord(as_page, measure_va + i * arm::kWordSize, &measure[i]) ||
        !ReadUserWord(as_page, mac_va + i * arm::kWordSize, &mac_in[i])) {
      return {KomErr::kInvalidArgument, 0, false, 0};
    }
  }
  crypto::HmacSha256Stream mac(db_.AttestKey());
  for (word w : measure) {
    mac.UpdateWordLe(w);
  }
  for (word w : data) {
    mac.UpdateWordLe(w);
  }
  ops_.ChargeSha256Blocks(5);
  const crypto::DigestWords expected = crypto::DigestToWords(mac.Finalize());
  // Constant-time comparison: the result must not depend on how many words
  // matched.
  word acc = 0;
  for (word i = 0; i < 8; ++i) {
    acc |= expected[i] ^ mac_in[i];
    ops_.ChargeAlu(2);
  }
  return {KomErr::kSuccess, acc == 0 ? 1u : 0u, false, 0};
}

Monitor::SvcResult Monitor::SvcInitL2Table(PageNr as_page, PageNr spare_page, word l1index) {
  if (!db_.ValidPageNr(spare_page) || db_.TypeOf(spare_page) != PageType::kSparePage ||
      db_.OwnerOf(spare_page) != as_page) {
    return {KomErr::kNotSpare, 0, false, 0};
  }
  const KomErr err = InstallL2Table(as_page, spare_page, l1index);
  if (err != KomErr::kSuccess) {
    return {err, 0, false, 0};
  }
  db_.SetType(spare_page, PageType::kL2PTable);
  return {KomErr::kSuccess, 0, false, 0};
}

Monitor::SvcResult Monitor::SvcMapData(PageNr as_page, PageNr spare_page, word mapping) {
  if (!db_.ValidPageNr(spare_page) || db_.TypeOf(spare_page) != PageType::kSparePage ||
      db_.OwnerOf(spare_page) != as_page) {
    return {KomErr::kNotSpare, 0, false, 0};
  }
  if (!MappingValid(mapping)) {
    return {KomErr::kInvalidMapping, 0, false, 0};
  }
  const paddr slot = L2SlotAddr(as_page, mapping);
  if (slot == 0) {
    return {KomErr::kPageTableMissing, 0, false, 0};
  }
  if (ops_.LoadPhys(slot) != arm::kL2FaultDesc) {
    return {KomErr::kAddrInUse, 0, false, 0};
  }
  // Dynamic data pages are zero-filled (§4): their contents are not part of
  // the measurement, so they must not carry stale state.
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    ops_.ChargeLoopIteration();
    ops_.StorePhys(PagePaddr(spare_page) + i * arm::kWordSize, 0);
  }
  InstallMapping(as_page, mapping, PagePaddr(spare_page), /*ns=*/false);
  db_.SetType(spare_page, PageType::kDataPage);
  return {KomErr::kSuccess, 0, false, 0};
}

Monitor::SvcResult Monitor::SvcUnmapData(PageNr as_page, PageNr data_page, word mapping) {
  if (!db_.ValidPageNr(data_page) || db_.TypeOf(data_page) != PageType::kDataPage ||
      db_.OwnerOf(data_page) != as_page) {
    return {KomErr::kInvalidPageNo, 0, false, 0};
  }
  if (!MappingValid(mapping)) {
    return {KomErr::kInvalidMapping, 0, false, 0};
  }
  const paddr slot = L2SlotAddr(as_page, mapping);
  if (slot == 0) {
    return {KomErr::kPageTableMissing, 0, false, 0};
  }
  const word desc = ops_.LoadPhys(slot);
  if (!arm::IsL2SmallPageDesc(desc) || arm::L2DescPageBase(desc) != PagePaddr(data_page)) {
    return {KomErr::kInvalidMapping, 0, false, 0};
  }
  ops_.StorePhys(slot, arm::kL2FaultDesc);
  machine_.NoteTlbStale();
  db_.SetType(data_page, PageType::kSparePage);
  return {KomErr::kSuccess, 0, false, 0};
}

}  // namespace komodo
