// Cycle-charged access to machine state for the monitor implementation.
//
// The paper's monitor is ARM assembly; ours is C++ operating on the simulated
// machine. To keep the benchmark numbers meaningful, every monitor operation
// goes through this layer, which both performs the access on the simulated
// physical memory and charges the cycles the equivalent ARM instruction
// sequence would cost. See DESIGN.md §6.
#ifndef SRC_CORE_MONITOR_OPS_H_
#define SRC_CORE_MONITOR_OPS_H_

#include "src/arm/cycle_model.h"
#include "src/arm/machine.h"

namespace komodo {

class MonitorOps {
 public:
  explicit MonitorOps(arm::MachineState& m) : m_(m) {}

  arm::MachineState& machine() { return m_; }

  // --- Memory (each charges one load/store) ---------------------------------
  word LoadPhys(paddr addr) {
    m_.cycles.Charge(kCosts.load);
    return m_.mem.Read(addr);
  }
  void StorePhys(paddr addr, word value) {
    m_.cycles.Charge(kCosts.store);
    m_.mem.Write(addr, value);
  }

  // --- Register file ---------------------------------------------------------
  word GetReg(arm::Reg reg) {
    m_.cycles.Charge(kCosts.alu);
    return m_.r[reg];
  }
  void SetReg(arm::Reg reg, word value) {
    m_.cycles.Charge(kCosts.alu);
    m_.r[reg] = value;
  }
  // Banked-register access from monitor mode: without the virtualisation
  // extensions' MRS-banked encodings, reaching another mode's SP/LR/SPSR
  // means a CPS into that mode and back — amortised here as 2 extra cycles
  // on top of the move itself.
  static constexpr uint64_t kBankedAccessCycles = 4;
  word GetBanked(arm::Reg reg, arm::Mode mode) {
    m_.cycles.Charge(kBankedAccessCycles);
    return m_.ReadRegMode(reg, mode);
  }
  void SetBanked(arm::Reg reg, word value, arm::Mode mode) {
    m_.cycles.Charge(kBankedAccessCycles);
    m_.WriteRegMode(reg, value, mode);
  }

  // --- Pure compute ----------------------------------------------------------
  void ChargeAlu(uint64_t n = 1) { m_.cycles.Charge(n * kCosts.alu); }
  void ChargeBranch() { m_.cycles.Charge(kCosts.branch_taken); }
  // One iteration of a per-word page loop: pointer increment, compare, and a
  // (mostly predicted) backward branch.
  void ChargeLoopIteration() { m_.cycles.Charge(3); }
  // One SHA-256 compression function in unoptimised ARM assembly. Calibrated
  // against the paper's Attest/Verify rows (≈5 compressions each).
  void ChargeSha256Blocks(uint64_t blocks) { m_.cycles.Charge(blocks * kSha256BlockCycles); }

  static constexpr uint64_t kSha256BlockCycles = 2300;

 private:
  static constexpr arm::CycleCosts kCosts = arm::kCortexA7Costs;
  arm::MachineState& m_;
};

}  // namespace komodo

#endif  // SRC_CORE_MONITOR_OPS_H_
