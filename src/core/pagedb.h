// The PageDB: the monitor's per-secure-page metadata (§4, "Page types and
// enclave construction"), the software analogue of SGX's EPCM.
//
// The database lives in simulated monitor RAM (not in C++ shadow state), so
// the refinement tests can extract it from memory and compare against the
// abstract specification. Layout:
//
//   kMonitorBase + kGlobalsOffset:   monitor globals (npages, current
//                                    dispatcher, attestation key)
//   kMonitorBase + kPageDbOffset:    one 4-word record per secure page:
//                                    { type, owner addrspace page, 2 spare }
//
// Per-page metadata that belongs to a specific page type (address-space
// refcount/state/measurement, dispatcher context) is stored *inside* the
// secure page itself, as the paper's implementation does.
#ifndef SRC_CORE_PAGEDB_H_
#define SRC_CORE_PAGEDB_H_

#include "src/core/kom_defs.h"
#include "src/core/monitor_ops.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"

namespace komodo {

// --- Monitor RAM layout -------------------------------------------------------
inline constexpr word kGlobalsOffset = 0x0;
inline constexpr word kGlobalNPages = 0x00;
inline constexpr word kGlobalCurDispatcher = 0x04;
inline constexpr word kGlobalAttestKey = 0x08;  // 8 words
inline constexpr word kPageDbOffset = 0x1000;
inline constexpr word kPageDbEntryWords = 4;

// --- Address-space page layout (word offsets within the page) ------------------
inline constexpr word kAsL1PtPage = 0;
inline constexpr word kAsRefcount = 1;
inline constexpr word kAsState = 2;
inline constexpr word kAsMeasurementDigest = 8;   // 8 words, valid once final
inline constexpr word kAsMeasurementStream = 16;  // 27 words (Sha256::Export)

// --- Dispatcher (thread) page layout --------------------------------------------
inline constexpr word kDispEntered = 0;
inline constexpr word kDispEntrypoint = 1;
inline constexpr word kDispSavedRegs = 2;  // r0-r12 (13 words)
inline constexpr word kDispSavedSp = 15;
inline constexpr word kDispSavedLr = 16;
inline constexpr word kDispSavedPc = 17;
inline constexpr word kDispSavedPsr = 18;

// Cycle-charged view of the PageDB and the typed pages it references.
class PageDb {
 public:
  explicit PageDb(MonitorOps& ops) : ops_(ops) {}

  word NPages() { return ops_.LoadPhys(arm::kMonitorBase + kGlobalNPages); }
  bool ValidPageNr(PageNr n) { return n < NPages(); }

  PageType TypeOf(PageNr n);
  void SetType(PageNr n, PageType t);
  PageNr OwnerOf(PageNr n);
  void SetOwner(PageNr n, PageNr addrspace);

  bool IsFree(PageNr n) { return TypeOf(n) == PageType::kFree; }
  // Valid page number of an address-space page?
  bool IsAddrspace(PageNr n) {
    return ValidPageNr(n) && TypeOf(n) == PageType::kAddrspace;
  }

  // --- Address-space pages ----------------------------------------------------
  PageNr AsL1Pt(PageNr as) { return LoadPageWord(as, kAsL1PtPage); }
  void SetAsL1Pt(PageNr as, PageNr l1pt) { StorePageWord(as, kAsL1PtPage, l1pt); }
  word AsRefcount(PageNr as) { return LoadPageWord(as, kAsRefcount); }
  void SetAsRefcount(PageNr as, word v) { StorePageWord(as, kAsRefcount, v); }
  AddrspaceState AsState(PageNr as) {
    return static_cast<AddrspaceState>(LoadPageWord(as, kAsState));
  }
  void SetAsState(PageNr as, AddrspaceState s) {
    StorePageWord(as, kAsState, static_cast<word>(s));
  }

  crypto::DigestWords AsMeasurement(PageNr as);
  void SetAsMeasurement(PageNr as, const crypto::DigestWords& digest);
  crypto::Sha256 LoadMeasurementStream(PageNr as);
  void StoreMeasurementStream(PageNr as, const crypto::Sha256& stream);

  // --- Dispatcher pages ----------------------------------------------------------
  bool DispEntered(PageNr disp) { return LoadPageWord(disp, kDispEntered) != 0; }
  void SetDispEntered(PageNr disp, bool entered) {
    StorePageWord(disp, kDispEntered, entered ? 1 : 0);
  }
  word DispEntrypoint(PageNr disp) { return LoadPageWord(disp, kDispEntrypoint); }
  void SetDispEntrypoint(PageNr disp, word entry) {
    StorePageWord(disp, kDispEntrypoint, entry);
  }

  // --- Globals ----------------------------------------------------------------------
  PageNr CurDispatcher() { return ops_.LoadPhys(arm::kMonitorBase + kGlobalCurDispatcher); }
  void SetCurDispatcher(PageNr n) {
    ops_.StorePhys(arm::kMonitorBase + kGlobalCurDispatcher, n);
  }
  crypto::HmacKey AttestKey();

  // Generic typed-page word access (cycle-charged).
  word LoadPageWord(PageNr page, word word_offset) {
    ops_.ChargeAlu();  // address computation
    return ops_.LoadPhys(PagePaddr(page) + word_offset * arm::kWordSize);
  }
  void StorePageWord(PageNr page, word word_offset, word value) {
    ops_.ChargeAlu();
    ops_.StorePhys(PagePaddr(page) + word_offset * arm::kWordSize, value);
  }

  MonitorOps& ops() { return ops_; }

 private:
  paddr EntryAddr(PageNr n, word field) {
    ops_.ChargeAlu(2);  // pagenr*16 + field*4 addressing
    return arm::kMonitorBase + kPageDbOffset + n * kPageDbEntryWords * arm::kWordSize +
           field * arm::kWordSize;
  }

  MonitorOps& ops_;
};

}  // namespace komodo

#endif  // SRC_CORE_PAGEDB_H_
