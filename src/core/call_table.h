// Table-driven monitor-call registry (see call_list.inc): constexpr metadata
// for every Table 1 SMC and SVC, consumed header-only by komodo-lint's
// privilege pass, the bench harness, komodo-apidoc and the registry tests.
// The dispatch expansions (Monitor and spec) live in call_table.cc and
// spec_dispatch.cc; this header carries no link dependency beyond kom_defs.
#ifndef SRC_CORE_CALL_TABLE_H_
#define SRC_CORE_CALL_TABLE_H_

#include <cstdint>

#include "src/core/kom_defs.h"

namespace komodo {

enum class CallKind : uint8_t {
  kSmc,  // invoked by the OS (monitor mode, Figure 3 left edge)
  kSvc,  // invoked by enclave code (secure supervisor mode)
};

struct CallInfo {
  word number;            // ABI call number (r0)
  const char* name;       // "InitAddrspace"
  CallKind kind;
  int arity;              // architectural arguments r1..r{arity}
  const char* arg_names;  // "as_page, l1pt_page" ("" when arity == 0)
  // 1-based index of an argument naming an insecure page number that must be
  // validated against the memory map (MapSecure/MapInsecure); -1 otherwise.
  int insecure_arg;
  // True when the call's specification consumes the insecure source page's
  // contents (MapSecure measures them).
  bool copies_contents;
  const char* errors;     // '|'-separated error names; "-" = cannot fail
};

inline constexpr CallInfo kSmcCalls[] = {
#define KOM_SMC(name, nr, arity, argnames, insec, contents, impl, spec, errors) \
  {nr, #name, CallKind::kSmc, arity, argnames, insec, (contents) != 0, errors},
#define KOM_SVC(name, nr, arity, argnames, impl, spec, errors)
#include "src/core/call_list.inc"
#undef KOM_SMC
#undef KOM_SVC
};

inline constexpr CallInfo kSvcCalls[] = {
#define KOM_SMC(name, nr, arity, argnames, insec, contents, impl, spec, errors)
#define KOM_SVC(name, nr, arity, argnames, impl, spec, errors) \
  {nr, #name, CallKind::kSvc, arity, argnames, -1, false, errors},
#include "src/core/call_list.inc"
#undef KOM_SMC
#undef KOM_SVC
};

inline constexpr int kNumSmcCalls = static_cast<int>(sizeof(kSmcCalls) / sizeof(kSmcCalls[0]));
inline constexpr int kNumSvcCalls = static_cast<int>(sizeof(kSvcCalls) / sizeof(kSvcCalls[0]));

constexpr const CallInfo* FindSmc(word number) {
  for (const CallInfo& c : kSmcCalls) {
    if (c.number == number) {
      return &c;
    }
  }
  return nullptr;
}

constexpr const CallInfo* FindSvc(word number) {
  for (const CallInfo& c : kSvcCalls) {
    if (c.number == number) {
      return &c;
    }
  }
  return nullptr;
}

}  // namespace komodo

#endif  // SRC_CORE_CALL_TABLE_H_
