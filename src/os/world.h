// Convenience bundle: a booted machine + monitor + OS model, the starting
// point for tests, examples and benchmarks.
#ifndef SRC_OS_WORLD_H_
#define SRC_OS_WORLD_H_

#include "src/arm/machine.h"
#include "src/core/monitor.h"
#include "src/os/os.h"

namespace komodo::os {

struct World {
  arm::MachineState machine;
  Monitor monitor;
  Os os;

  explicit World(word nsecure_pages = arm::kDefaultSecurePages,
                 const Monitor::Config& config = Monitor::Config{})
      : machine(nsecure_pages), monitor(machine, config), os(machine, monitor) {
    monitor.Boot();
    machine.pc = 0x1000;  // the OS kernel "executes" from insecure RAM
  }
};

}  // namespace komodo::os

#endif  // SRC_OS_WORLD_H_
