// Normal-world OS model: the untrusted operating system of the paper's threat
// model (§3.1). It owns insecure RAM, tracks which secure pages it believes
// free, and drives the monitor through SMCs — the role played by the Linux
// kernel driver in the prototype (§8.1).
//
// Nothing here is trusted: the monitor revalidates everything. The adversary
// used by the security property tests subclasses the same SMC surface.
#ifndef SRC_OS_OS_H_
#define SRC_OS_OS_H_

#include <vector>

#include "src/arm/machine.h"
#include "src/core/expected.h"
#include "src/core/monitor.h"

namespace komodo::os {

struct SmcRet {
  word err;
  word val;
};

// A constructed enclave's handle (page numbers the OS used).
struct EnclaveHandle {
  PageNr addrspace = kInvalidPage;
  PageNr l1pt = kInvalidPage;
  std::vector<PageNr> l2pts;
  PageNr thread = kInvalidPage;
  std::vector<PageNr> data_pages;
  std::vector<PageNr> spare_pages;
  // Shared insecure page mapped RW at kEnclaveSharedVa (builder option).
  bool has_shared_page = false;
  word shared_insecure_pgnr = 0;

  // Resident secure-page footprint (what a serve-layer page budget charges).
  word SecurePageCount() const {
    return 2 + static_cast<word>(l2pts.size()) + 1 + static_cast<word>(data_pages.size()) +
           static_cast<word>(spare_pages.size());
  }
};

// Conventional enclave VA layout used by the examples and tests (all within
// the first 4 MB, i.e. one L2 table page).
inline constexpr vaddr kEnclaveCodeVa = 0x0000'8000;
inline constexpr vaddr kEnclaveDataVa = 0x0001'0000;
inline constexpr vaddr kEnclaveStackVa = 0x0002'0000;  // stack page (sp starts at top)
inline constexpr vaddr kEnclaveSharedVa = 0x0010'0000;

// How an Enter/Resume round-trip came back to the OS. The monitor's ABI
// packs this into r0 (error word) + r1 (value word); EnterResult is the
// OS-side typed view so callers never pattern-match raw words.
enum class EnclaveExit : word {
  kExited,       // enclave ran to SvcExit; payload = exit value
  kInterrupted,  // timer fired mid-run; Resume() continues the thread
  kFaulted,      // enclave took an abort/undef; payload = declassified code
  kDenied,       // monitor rejected the call itself (see err)
};

const char* EnclaveExitName(EnclaveExit reason);

// Typed result of Os::Enter / Os::Resume. Raw ABI words exist only at the
// monitor's OnSmc epilogue (the PR 3 KomErr convention); everything OS-side
// consumes this struct.
struct EnterResult {
  EnclaveExit reason = EnclaveExit::kDenied;
  word payload = 0;                // r1: exit value / fault code / aux value
  KomErr err = KomErr::kSuccess;   // typed r0 (kSuccess iff kExited)

  bool exited() const { return reason == EnclaveExit::kExited; }
  bool interrupted() const { return reason == EnclaveExit::kInterrupted; }
  bool faulted() const { return reason == EnclaveExit::kFaulted; }
  bool denied() const { return reason == EnclaveExit::kDenied; }

  static EnterResult FromSmc(SmcRet r);

  bool operator==(const EnterResult&) const = default;
};

class Os;

// Value-returning enclave construction: stages code/data through insecure
// RAM and drives the InitAddrspace → … → Finalise SMC sequence, yielding
// either a complete EnclaveHandle or the first monitor error. Replaces the
// out-param construction API that predated it.
//
//   auto built = os.NewEnclave().Code(prog).SharedPage().Build();
//   if (!built.ok()) { ... built.error() ... }
//   EnclaveHandle e = std::move(built).value();
//
// On a monitor error the builder stops the half-built address space, removes
// every page it managed to assign, and returns the pages to the OS free
// lists, so a failed build does not strand secure pages (the serve layer's
// rebuild loop depends on this).
class EnclaveBuilder {
 public:
  explicit EnclaveBuilder(Os& os) : os_(os) {}

  EnclaveBuilder& Code(std::vector<word> code);
  EnclaveBuilder& Data(std::vector<word> data_init);
  EnclaveBuilder& Entrypoint(word entry_va);
  // Map one shared insecure page RW at kEnclaveSharedVa. With no argument a
  // fresh insecure page is allocated; passing a page number reuses an
  // existing one (a rebuilt serve session keeps its client-visible buffer).
  EnclaveBuilder& SharedPage();
  EnclaveBuilder& SharedPage(word insecure_pgnr);

  Expected<EnclaveHandle, KomErr> Build();

 private:
  Os& os_;
  std::vector<word> code_;
  std::vector<word> data_init_;
  word entrypoint_ = kEnclaveCodeVa;
  bool with_shared_page_ = false;
  bool shared_page_preallocated_ = false;
  word shared_insecure_pgnr_ = 0;
};

class Os {
 public:
  Os(arm::MachineState& m, Monitor& monitor);

  // Restores the OS model's own bookkeeping (secure-page free list,
  // insecure-page bump allocator) to its freshly constructed state. Paired
  // with MachineState::ResetTo + Monitor::ResetForReuse when a world is
  // recycled between fuzz traces.
  void ResetForReuse();

  // Issues an SMC: stages the call in r0-r4, traps to monitor mode, runs the
  // monitor, and reads back r0/r1 — the kernel-driver path.
  SmcRet Smc(word call, word a1 = 0, word a2 = 0, word a3 = 0, word a4 = 0);

  // --- Table 1 wrappers -------------------------------------------------------
  word GetPhysPages();
  SmcRet InitAddrspace(PageNr as_page, PageNr l1pt_page);
  SmcRet InitThread(PageNr as_page, PageNr thread_page, word entrypoint);
  SmcRet InitL2Table(PageNr as_page, PageNr l2pt_page, word l1index);
  SmcRet MapSecure(PageNr as_page, PageNr data_page, word mapping, word insecure_pgnr);
  SmcRet AllocSpare(PageNr as_page, PageNr spare_page);
  SmcRet MapInsecure(PageNr as_page, word mapping, word insecure_pgnr);
  SmcRet Remove(PageNr page);
  SmcRet Finalise(PageNr as_page);
  EnterResult Enter(PageNr thread_page, word arg1 = 0, word arg2 = 0, word arg3 = 0);
  EnterResult Resume(PageNr thread_page);
  SmcRet Stop(PageNr as_page);

  // --- OS-side resource management ---------------------------------------------
  // Next secure page the OS believes free (monitor still validates).
  PageNr AllocSecurePage();
  void FreeSecurePage(PageNr n) { free_secure_.push_back(n); }
  // Allocates an insecure physical page; returns its page number.
  word AllocInsecurePage();
  // Returns an insecure page to the allocator (serve-layer staging reuse;
  // contents are left as-is — insecure RAM is the OS's own memory).
  void FreeInsecurePage(word pgnr) { free_insecure_.push_back(pgnr); }
  // Direct access to insecure RAM (the OS can read/write it freely).
  void WriteInsecure(word pgnr, word word_offset, word value);
  word ReadInsecure(word pgnr, word word_offset) const;
  void WriteInsecurePage(word pgnr, const std::vector<word>& words);

  // --- Enclave construction / teardown -----------------------------------------
  // Starts a fluent enclave build (see EnclaveBuilder above).
  EnclaveBuilder NewEnclave() { return EnclaveBuilder(*this); }

  // Full teardown of a constructed enclave: stops the address space, removes
  // every secure page (thread, data, spares, page tables, then the address
  // space itself) and returns them to the OS free list. The shared insecure
  // page, if any, is NOT freed — the caller may still be reading it.
  // Returns the first monitor error, or kSuccess.
  KomErr DestroyEnclave(const EnclaveHandle& enclave);

  arm::MachineState& machine() { return machine_; }
  Monitor& monitor() { return monitor_; }

 private:
  arm::MachineState& machine_;
  Monitor& monitor_;
  std::vector<PageNr> free_secure_;
  std::vector<word> free_insecure_;
  word next_insecure_page_;
};

}  // namespace komodo::os

#endif  // SRC_OS_OS_H_
