// Normal-world OS model: the untrusted operating system of the paper's threat
// model (§3.1). It owns insecure RAM, tracks which secure pages it believes
// free, and drives the monitor through SMCs — the role played by the Linux
// kernel driver in the prototype (§8.1).
//
// Nothing here is trusted: the monitor revalidates everything. The adversary
// used by the security property tests subclasses the same SMC surface.
#ifndef SRC_OS_OS_H_
#define SRC_OS_OS_H_

#include <vector>

#include "src/arm/machine.h"
#include "src/core/monitor.h"

namespace komodo::os {

struct SmcRet {
  word err;
  word val;
};

// A constructed enclave's handle (page numbers the OS used).
struct EnclaveHandle {
  PageNr addrspace = kInvalidPage;
  PageNr l1pt = kInvalidPage;
  std::vector<PageNr> l2pts;
  PageNr thread = kInvalidPage;
  std::vector<PageNr> data_pages;
  std::vector<PageNr> spare_pages;
};

// Conventional enclave VA layout used by the examples and tests (all within
// the first 4 MB, i.e. one L2 table page).
inline constexpr vaddr kEnclaveCodeVa = 0x0000'8000;
inline constexpr vaddr kEnclaveDataVa = 0x0001'0000;
inline constexpr vaddr kEnclaveStackVa = 0x0002'0000;  // stack page (sp starts at top)
inline constexpr vaddr kEnclaveSharedVa = 0x0010'0000;

class Os {
 public:
  Os(arm::MachineState& m, Monitor& monitor);

  // Restores the OS model's own bookkeeping (secure-page free list,
  // insecure-page bump allocator) to its freshly constructed state. Paired
  // with MachineState::ResetTo + Monitor::ResetForReuse when a world is
  // recycled between fuzz traces.
  void ResetForReuse();

  // Issues an SMC: stages the call in r0-r4, traps to monitor mode, runs the
  // monitor, and reads back r0/r1 — the kernel-driver path.
  SmcRet Smc(word call, word a1 = 0, word a2 = 0, word a3 = 0, word a4 = 0);

  // --- Table 1 wrappers -------------------------------------------------------
  word GetPhysPages();
  SmcRet InitAddrspace(PageNr as_page, PageNr l1pt_page);
  SmcRet InitThread(PageNr as_page, PageNr thread_page, word entrypoint);
  SmcRet InitL2Table(PageNr as_page, PageNr l2pt_page, word l1index);
  SmcRet MapSecure(PageNr as_page, PageNr data_page, word mapping, word insecure_pgnr);
  SmcRet AllocSpare(PageNr as_page, PageNr spare_page);
  SmcRet MapInsecure(PageNr as_page, word mapping, word insecure_pgnr);
  SmcRet Remove(PageNr page);
  SmcRet Finalise(PageNr as_page);
  SmcRet Enter(PageNr thread_page, word arg1 = 0, word arg2 = 0, word arg3 = 0);
  SmcRet Resume(PageNr thread_page);
  SmcRet Stop(PageNr as_page);

  // --- OS-side resource management ---------------------------------------------
  // Next secure page the OS believes free (monitor still validates).
  PageNr AllocSecurePage();
  void FreeSecurePage(PageNr n) { free_secure_.push_back(n); }
  // Allocates an insecure physical page; returns its page number.
  word AllocInsecurePage();
  // Direct access to insecure RAM (the OS can read/write it freely).
  void WriteInsecure(word pgnr, word word_offset, word value);
  word ReadInsecure(word pgnr, word word_offset) const;
  void WriteInsecurePage(word pgnr, const std::vector<word>& words);

  // --- Enclave construction helper -------------------------------------------------
  // Builds a single-threaded enclave with `code` mapped RX at kEnclaveCodeVa,
  // one zeroed RW data page at kEnclaveDataVa, one RW stack page at
  // kEnclaveStackVa, optionally one shared insecure page at kEnclaveSharedVa,
  // then finalises. Returns kErrSuccess and the handle, or the first error.
  struct BuildOptions {
    bool with_shared_page = false;
    word shared_insecure_pgnr = 0;  // filled in by the builder when enabled
    std::vector<word> data_init;    // initial contents of the data page
    word entrypoint = kEnclaveCodeVa;
  };
  word BuildEnclave(const std::vector<word>& code, BuildOptions* options, EnclaveHandle* out);

  arm::MachineState& machine() { return machine_; }
  Monitor& monitor() { return monitor_; }

 private:
  arm::MachineState& machine_;
  Monitor& monitor_;
  std::vector<PageNr> free_secure_;
  word next_insecure_page_;
};

}  // namespace komodo::os

#endif  // SRC_OS_OS_H_
