#include "src/os/os.h"

#include <cassert>

namespace komodo::os {

using arm::Mode;

Os::Os(arm::MachineState& m, Monitor& monitor)
    : machine_(m), monitor_(monitor) {
  ResetForReuse();
}

void Os::ResetForReuse() {
  next_insecure_page_ = 16;
  // Free-list is kept so pages are handed out in ascending order (the
  // monitor doesn't care; tests like stable numbering).
  const word npages = machine_.mem.nsecure_pages();
  free_secure_.clear();
  for (PageNr n = 0; n < npages; ++n) {
    free_secure_.push_back(npages - 1 - n);
  }
}

SmcRet Os::Smc(word call, word a1, word a2, word a3, word a4) {
  assert(machine_.cpsr.mode != Mode::kUser && machine_.CurrentWorld() == arm::World::kNormal);
  machine_.r[0] = call;
  machine_.r[1] = a1;
  machine_.r[2] = a2;
  machine_.r[3] = a3;
  machine_.r[4] = a4;
  const word return_pc = machine_.pc + 4;
  machine_.cycles.Charge(arm::kCortexA7Costs.svc_smc_issue);
  machine_.TakeException(arm::Exception::kSmc, return_pc);
  monitor_.OnSmc();
  // The monitor has returned to normal world.
  assert(machine_.CurrentWorld() == arm::World::kNormal);
  return {machine_.r[0], machine_.r[1]};
}

word Os::GetPhysPages() { return Smc(kSmcGetPhysPages).val; }

SmcRet Os::InitAddrspace(PageNr as_page, PageNr l1pt_page) {
  return Smc(kSmcInitAddrspace, as_page, l1pt_page);
}
SmcRet Os::InitThread(PageNr as_page, PageNr thread_page, word entrypoint) {
  return Smc(kSmcInitThread, as_page, thread_page, entrypoint);
}
SmcRet Os::InitL2Table(PageNr as_page, PageNr l2pt_page, word l1index) {
  return Smc(kSmcInitL2Table, as_page, l2pt_page, l1index);
}
SmcRet Os::MapSecure(PageNr as_page, PageNr data_page, word mapping, word insecure_pgnr) {
  return Smc(kSmcMapSecure, as_page, data_page, mapping, insecure_pgnr);
}
SmcRet Os::AllocSpare(PageNr as_page, PageNr spare_page) {
  return Smc(kSmcAllocSpare, as_page, spare_page);
}
SmcRet Os::MapInsecure(PageNr as_page, word mapping, word insecure_pgnr) {
  return Smc(kSmcMapInsecure, as_page, mapping, insecure_pgnr);
}
SmcRet Os::Remove(PageNr page) { return Smc(kSmcRemove, page); }
SmcRet Os::Finalise(PageNr as_page) { return Smc(kSmcFinalise, as_page); }
SmcRet Os::Enter(PageNr thread_page, word arg1, word arg2, word arg3) {
  return Smc(kSmcEnter, thread_page, arg1, arg2, arg3);
}
SmcRet Os::Resume(PageNr thread_page) { return Smc(kSmcResume, thread_page); }
SmcRet Os::Stop(PageNr as_page) { return Smc(kSmcStop, as_page); }

PageNr Os::AllocSecurePage() {
  if (free_secure_.empty()) {
    // Out of pages: hand back an out-of-range number. The OS is untrusted —
    // the monitor rejects it with kErrInvalidPageNo, which is exactly how a
    // buggy or hostile kernel driver would fail.
    return machine_.mem.nsecure_pages();
  }
  const PageNr n = free_secure_.back();
  free_secure_.pop_back();
  return n;
}

word Os::AllocInsecurePage() {
  const word pgnr = next_insecure_page_++;
  assert(pgnr * arm::kPageSize < arm::kInsecureSize);
  return pgnr;
}

void Os::WriteInsecure(word pgnr, word word_offset, word value) {
  machine_.mem.Write(pgnr * arm::kPageSize + word_offset * arm::kWordSize, value);
}

word Os::ReadInsecure(word pgnr, word word_offset) const {
  return machine_.mem.Read(pgnr * arm::kPageSize + word_offset * arm::kWordSize);
}

void Os::WriteInsecurePage(word pgnr, const std::vector<word>& words) {
  assert(words.size() <= arm::kWordsPerPage);
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    WriteInsecure(pgnr, i, i < words.size() ? words[i] : 0);
  }
}

word Os::BuildEnclave(const std::vector<word>& code, BuildOptions* options, EnclaveHandle* out) {
  assert(code.size() <= arm::kWordsPerPage);
  EnclaveHandle enclave;
  enclave.addrspace = AllocSecurePage();
  enclave.l1pt = AllocSecurePage();
  if (const SmcRet r = InitAddrspace(enclave.addrspace, enclave.l1pt); r.err != kErrSuccess) {
    return r.err;
  }
  // One L2 table covers the low 4 MB (code/data/stack); the shared page at
  // 1 MB < 4 MB also fits in it.
  const PageNr l2 = AllocSecurePage();
  if (const SmcRet r = InitL2Table(enclave.addrspace, l2, 0); r.err != kErrSuccess) {
    return r.err;
  }
  enclave.l2pts.push_back(l2);

  // Stage and map the code page (read+execute).
  const word code_staging = AllocInsecurePage();
  WriteInsecurePage(code_staging, code);
  PageNr page = AllocSecurePage();
  if (const SmcRet r = MapSecure(enclave.addrspace, page,
                                 MakeMapping(kEnclaveCodeVa, kMapR | kMapX), code_staging);
      r.err != kErrSuccess) {
    return r.err;
  }
  enclave.data_pages.push_back(page);

  // Data page (read+write), with caller-supplied initial contents.
  const word data_staging = AllocInsecurePage();
  WriteInsecurePage(data_staging, options != nullptr ? options->data_init : std::vector<word>{});
  page = AllocSecurePage();
  if (const SmcRet r = MapSecure(enclave.addrspace, page,
                                 MakeMapping(kEnclaveDataVa, kMapR | kMapW), data_staging);
      r.err != kErrSuccess) {
    return r.err;
  }
  enclave.data_pages.push_back(page);

  // Stack page (read+write, zeroed).
  const word stack_staging = AllocInsecurePage();
  WriteInsecurePage(stack_staging, {});
  page = AllocSecurePage();
  if (const SmcRet r = MapSecure(enclave.addrspace, page,
                                 MakeMapping(kEnclaveStackVa, kMapR | kMapW), stack_staging);
      r.err != kErrSuccess) {
    return r.err;
  }
  enclave.data_pages.push_back(page);

  if (options != nullptr && options->with_shared_page) {
    options->shared_insecure_pgnr = AllocInsecurePage();
    if (const SmcRet r = MapInsecure(enclave.addrspace, MakeMapping(kEnclaveSharedVa, kMapR | kMapW),
                                     options->shared_insecure_pgnr);
        r.err != kErrSuccess) {
      return r.err;
    }
  }

  enclave.thread = AllocSecurePage();
  const word entry = options != nullptr ? options->entrypoint : kEnclaveCodeVa;
  if (const SmcRet r = InitThread(enclave.addrspace, enclave.thread, entry);
      r.err != kErrSuccess) {
    return r.err;
  }
  if (const SmcRet r = Finalise(enclave.addrspace); r.err != kErrSuccess) {
    return r.err;
  }
  *out = enclave;
  return kErrSuccess;
}

}  // namespace komodo::os
