#include "src/os/os.h"

#include <cassert>
#include <utility>

namespace komodo::os {

using arm::Mode;

const char* EnclaveExitName(EnclaveExit reason) {
  switch (reason) {
    case EnclaveExit::kExited:
      return "exited";
    case EnclaveExit::kInterrupted:
      return "interrupted";
    case EnclaveExit::kFaulted:
      return "faulted";
    case EnclaveExit::kDenied:
      return "denied";
  }
  return "unknown";
}

EnterResult EnterResult::FromSmc(SmcRet r) {
  EnterResult res;
  res.err = ErrFromWord(r.err);
  res.payload = r.val;
  switch (r.err) {
    case kErrSuccess:
      res.reason = EnclaveExit::kExited;
      break;
    case kErrInterrupted:
      res.reason = EnclaveExit::kInterrupted;
      break;
    case kErrFault:
      res.reason = EnclaveExit::kFaulted;
      break;
    default:
      res.reason = EnclaveExit::kDenied;
      break;
  }
  return res;
}

Os::Os(arm::MachineState& m, Monitor& monitor)
    : machine_(m), monitor_(monitor) {
  ResetForReuse();
}

void Os::ResetForReuse() {
  next_insecure_page_ = 16;
  free_insecure_.clear();
  // Free-list is kept so pages are handed out in ascending order (the
  // monitor doesn't care; tests like stable numbering).
  const word npages = machine_.mem.nsecure_pages();
  free_secure_.clear();
  for (PageNr n = 0; n < npages; ++n) {
    free_secure_.push_back(npages - 1 - n);
  }
}

SmcRet Os::Smc(word call, word a1, word a2, word a3, word a4) {
  assert(machine_.cpsr.mode != Mode::kUser && machine_.CurrentWorld() == arm::World::kNormal);
  machine_.r[0] = call;
  machine_.r[1] = a1;
  machine_.r[2] = a2;
  machine_.r[3] = a3;
  machine_.r[4] = a4;
  const word return_pc = machine_.pc + 4;
  machine_.cycles.Charge(arm::kCortexA7Costs.svc_smc_issue);
  machine_.TakeException(arm::Exception::kSmc, return_pc);
  monitor_.OnSmc();
  // The monitor has returned to normal world.
  assert(machine_.CurrentWorld() == arm::World::kNormal);
  return {machine_.r[0], machine_.r[1]};
}

word Os::GetPhysPages() { return Smc(kSmcGetPhysPages).val; }

SmcRet Os::InitAddrspace(PageNr as_page, PageNr l1pt_page) {
  return Smc(kSmcInitAddrspace, as_page, l1pt_page);
}
SmcRet Os::InitThread(PageNr as_page, PageNr thread_page, word entrypoint) {
  return Smc(kSmcInitThread, as_page, thread_page, entrypoint);
}
SmcRet Os::InitL2Table(PageNr as_page, PageNr l2pt_page, word l1index) {
  return Smc(kSmcInitL2Table, as_page, l2pt_page, l1index);
}
SmcRet Os::MapSecure(PageNr as_page, PageNr data_page, word mapping, word insecure_pgnr) {
  return Smc(kSmcMapSecure, as_page, data_page, mapping, insecure_pgnr);
}
SmcRet Os::AllocSpare(PageNr as_page, PageNr spare_page) {
  return Smc(kSmcAllocSpare, as_page, spare_page);
}
SmcRet Os::MapInsecure(PageNr as_page, word mapping, word insecure_pgnr) {
  return Smc(kSmcMapInsecure, as_page, mapping, insecure_pgnr);
}
SmcRet Os::Remove(PageNr page) { return Smc(kSmcRemove, page); }
SmcRet Os::Finalise(PageNr as_page) { return Smc(kSmcFinalise, as_page); }
EnterResult Os::Enter(PageNr thread_page, word arg1, word arg2, word arg3) {
  return EnterResult::FromSmc(Smc(kSmcEnter, thread_page, arg1, arg2, arg3));
}
EnterResult Os::Resume(PageNr thread_page) {
  return EnterResult::FromSmc(Smc(kSmcResume, thread_page));
}
SmcRet Os::Stop(PageNr as_page) { return Smc(kSmcStop, as_page); }

PageNr Os::AllocSecurePage() {
  if (free_secure_.empty()) {
    // Out of pages: hand back an out-of-range number. The OS is untrusted —
    // the monitor rejects it with kErrInvalidPageNo, which is exactly how a
    // buggy or hostile kernel driver would fail.
    return machine_.mem.nsecure_pages();
  }
  const PageNr n = free_secure_.back();
  free_secure_.pop_back();
  return n;
}

word Os::AllocInsecurePage() {
  if (!free_insecure_.empty()) {
    const word pgnr = free_insecure_.back();
    free_insecure_.pop_back();
    return pgnr;
  }
  const word pgnr = next_insecure_page_++;
  assert(pgnr * arm::kPageSize < arm::kInsecureSize);
  return pgnr;
}

void Os::WriteInsecure(word pgnr, word word_offset, word value) {
  machine_.mem.Write(pgnr * arm::kPageSize + word_offset * arm::kWordSize, value);
}

word Os::ReadInsecure(word pgnr, word word_offset) const {
  return machine_.mem.Read(pgnr * arm::kPageSize + word_offset * arm::kWordSize);
}

void Os::WriteInsecurePage(word pgnr, const std::vector<word>& words) {
  assert(words.size() <= arm::kWordsPerPage);
  for (word i = 0; i < arm::kWordsPerPage; ++i) {
    WriteInsecure(pgnr, i, i < words.size() ? words[i] : 0);
  }
}

KomErr Os::DestroyEnclave(const EnclaveHandle& enclave) {
  KomErr first_err = KomErr::kSuccess;
  const auto note = [&first_err](SmcRet r) {
    if (r.err != kErrSuccess && first_err == KomErr::kSuccess) {
      first_err = ErrFromWord(r.err);
    }
    return r.err == kErrSuccess;
  };
  // A running or suspended enclave cannot be dismantled page by page; Stop
  // forces the address space into kStopped so Remove accepts everything.
  if (enclave.addrspace != kInvalidPage) {
    note(Stop(enclave.addrspace));
  }
  const auto remove_and_free = [this, &note](PageNr page) {
    if (page == kInvalidPage) {
      return;
    }
    if (note(Remove(page))) {
      FreeSecurePage(page);
    }
  };
  remove_and_free(enclave.thread);
  for (PageNr page : enclave.data_pages) {
    remove_and_free(page);
  }
  for (PageNr page : enclave.spare_pages) {
    remove_and_free(page);
  }
  for (PageNr page : enclave.l2pts) {
    remove_and_free(page);
  }
  remove_and_free(enclave.l1pt);
  remove_and_free(enclave.addrspace);
  return first_err;
}

EnclaveBuilder& EnclaveBuilder::Code(std::vector<word> code) {
  code_ = std::move(code);
  return *this;
}

EnclaveBuilder& EnclaveBuilder::Data(std::vector<word> data_init) {
  data_init_ = std::move(data_init);
  return *this;
}

EnclaveBuilder& EnclaveBuilder::Entrypoint(word entry_va) {
  entrypoint_ = entry_va;
  return *this;
}

EnclaveBuilder& EnclaveBuilder::SharedPage() {
  with_shared_page_ = true;
  shared_page_preallocated_ = false;
  return *this;
}

EnclaveBuilder& EnclaveBuilder::SharedPage(word insecure_pgnr) {
  with_shared_page_ = true;
  shared_page_preallocated_ = true;
  shared_insecure_pgnr_ = insecure_pgnr;
  return *this;
}

Expected<EnclaveHandle, KomErr> EnclaveBuilder::Build() {
  assert(code_.size() <= arm::kWordsPerPage);
  EnclaveHandle enclave;
  // Staging pages are scratch: the monitor copies their contents into secure
  // pages during MapSecure, so they go straight back to the allocator.
  std::vector<word> staging;
  const auto fail = [this, &enclave, &staging](word err) -> Expected<EnclaveHandle, KomErr> {
    for (word pg : staging) {
      os_.FreeInsecurePage(pg);
    }
    os_.DestroyEnclave(enclave);
    return ErrFromWord(err);
  };

  enclave.addrspace = os_.AllocSecurePage();
  enclave.l1pt = os_.AllocSecurePage();
  if (const SmcRet r = os_.InitAddrspace(enclave.addrspace, enclave.l1pt);
      r.err != kErrSuccess) {
    // InitAddrspace assigns both pages or neither; hand them straight back.
    os_.FreeSecurePage(enclave.addrspace);
    os_.FreeSecurePage(enclave.l1pt);
    enclave.addrspace = kInvalidPage;
    enclave.l1pt = kInvalidPage;
    return fail(r.err);
  }
  // One L2 table covers the low 4 MB (code/data/stack); the shared page at
  // 1 MB < 4 MB also fits in it.
  const PageNr l2 = os_.AllocSecurePage();
  if (const SmcRet r = os_.InitL2Table(enclave.addrspace, l2, 0); r.err != kErrSuccess) {
    os_.FreeSecurePage(l2);
    return fail(r.err);
  }
  enclave.l2pts.push_back(l2);

  // Stage and map the code page (read+execute).
  const word code_staging = os_.AllocInsecurePage();
  staging.push_back(code_staging);
  os_.WriteInsecurePage(code_staging, code_);
  PageNr page = os_.AllocSecurePage();
  if (const SmcRet r = os_.MapSecure(enclave.addrspace, page,
                                     MakeMapping(kEnclaveCodeVa, kMapR | kMapX), code_staging);
      r.err != kErrSuccess) {
    os_.FreeSecurePage(page);
    return fail(r.err);
  }
  enclave.data_pages.push_back(page);

  // Data page (read+write), with caller-supplied initial contents.
  const word data_staging = os_.AllocInsecurePage();
  staging.push_back(data_staging);
  os_.WriteInsecurePage(data_staging, data_init_);
  page = os_.AllocSecurePage();
  if (const SmcRet r = os_.MapSecure(enclave.addrspace, page,
                                     MakeMapping(kEnclaveDataVa, kMapR | kMapW), data_staging);
      r.err != kErrSuccess) {
    os_.FreeSecurePage(page);
    return fail(r.err);
  }
  enclave.data_pages.push_back(page);

  // Stack page (read+write, zeroed).
  const word stack_staging = os_.AllocInsecurePage();
  staging.push_back(stack_staging);
  os_.WriteInsecurePage(stack_staging, {});
  page = os_.AllocSecurePage();
  if (const SmcRet r = os_.MapSecure(enclave.addrspace, page,
                                     MakeMapping(kEnclaveStackVa, kMapR | kMapW), stack_staging);
      r.err != kErrSuccess) {
    os_.FreeSecurePage(page);
    return fail(r.err);
  }
  enclave.data_pages.push_back(page);

  if (with_shared_page_) {
    if (!shared_page_preallocated_) {
      shared_insecure_pgnr_ = os_.AllocInsecurePage();
    }
    if (const SmcRet r =
            os_.MapInsecure(enclave.addrspace, MakeMapping(kEnclaveSharedVa, kMapR | kMapW),
                            shared_insecure_pgnr_);
        r.err != kErrSuccess) {
      if (!shared_page_preallocated_) {
        os_.FreeInsecurePage(shared_insecure_pgnr_);
      }
      return fail(r.err);
    }
    enclave.has_shared_page = true;
    enclave.shared_insecure_pgnr = shared_insecure_pgnr_;
  }

  enclave.thread = os_.AllocSecurePage();
  if (const SmcRet r = os_.InitThread(enclave.addrspace, enclave.thread, entrypoint_);
      r.err != kErrSuccess) {
    os_.FreeSecurePage(enclave.thread);
    enclave.thread = kInvalidPage;
    return fail(r.err);
  }
  if (const SmcRet r = os_.Finalise(enclave.addrspace); r.err != kErrSuccess) {
    return fail(r.err);
  }
  for (word pg : staging) {
    os_.FreeInsecurePage(pg);
  }
  return enclave;
}

}  // namespace komodo::os
