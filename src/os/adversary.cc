#include "src/os/adversary.h"

namespace komodo::os {

std::string AdvAction::ToString() const {
  std::string s = "smc(" + std::to_string(call);
  for (word a : args) {
    s += ", " + std::to_string(a);
  }
  return s + ")";
}

word Adversary::RandomPageArg() {
  switch (drbg_.Below(8)) {
    case 0:
      return drbg_.Below(4);  // very likely allocated early
    case 1:
    case 2:
    case 3:
      return drbg_.Below(16);  // the adversary's working set
    case 4:
    case 5:
      return drbg_.Below(nsecure_pages_);
    case 6:
      return nsecure_pages_;  // one past the end
    default:
      return drbg_.NextWord();  // wild
  }
}

word Adversary::RandomMapping() {
  // Mostly well-formed mappings in the low 8 MB; sometimes garbage.
  if (drbg_.Below(8) == 0) {
    return drbg_.NextWord();
  }
  const vaddr va = (drbg_.Below(2048)) * arm::kPageSize;
  const word perms = kMapR | (drbg_.Below(2) ? kMapW : 0) | (drbg_.Below(4) == 0 ? kMapX : 0);
  return MakeMapping(va, perms);
}

AdvAction Adversary::NextAction() {
  static constexpr word kCalls[] = {
      kSmcGetPhysPages, kSmcInitAddrspace, kSmcInitThread, kSmcInitL2Table, kSmcMapSecure,
      kSmcAllocSpare,   kSmcMapInsecure,   kSmcRemove,     kSmcFinalise,    kSmcStop,
  };
  AdvAction action{};
  action.call = kCalls[drbg_.Below(sizeof(kCalls) / sizeof(kCalls[0]))];
  switch (action.call) {
    case kSmcInitAddrspace:
      action.args[0] = RandomPageArg();
      // Frequently alias the two arguments — the §9.1 bug shape.
      action.args[1] = drbg_.Below(4) == 0 ? action.args[0] : RandomPageArg();
      break;
    case kSmcInitThread:
      action.args[0] = RandomPageArg();
      action.args[1] = RandomPageArg();
      action.args[2] = drbg_.NextWord();
      break;
    case kSmcInitL2Table:
      action.args[0] = RandomPageArg();
      action.args[1] = RandomPageArg();
      action.args[2] = drbg_.Below(300);  // mostly valid l1 indices
      break;
    case kSmcMapSecure:
      action.args[0] = RandomPageArg();
      action.args[1] = RandomPageArg();
      action.args[2] = RandomMapping();
      // Insecure page number: usually a real insecure page, sometimes the
      // monitor image or secure region (must be rejected).
      switch (drbg_.Below(4)) {
        case 0:
          action.args[3] = arm::kMonitorBase / arm::kPageSize + drbg_.Below(16);
          break;
        case 1:
          action.args[3] = arm::kSecurePagesBase / arm::kPageSize + drbg_.Below(16);
          break;
        default:
          action.args[3] = 32 + drbg_.Below(16);
          break;
      }
      break;
    case kSmcAllocSpare:
      action.args[0] = RandomPageArg();
      action.args[1] = RandomPageArg();
      break;
    case kSmcMapInsecure:
      action.args[0] = RandomPageArg();
      action.args[1] = RandomMapping();
      action.args[2] = 32 + drbg_.Below(16);
      break;
    case kSmcRemove:
    case kSmcFinalise:
    case kSmcStop:
      action.args[0] = RandomPageArg();
      break;
    default:
      break;
  }
  return action;
}

SmcRet Adversary::Execute(Os& os, const AdvAction& action) {
  return os.Smc(action.call, action.args[0], action.args[1], action.args[2], action.args[3]);
}

}  // namespace komodo::os
