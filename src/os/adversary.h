// Randomized adversarial OS: issues SMC sequences with arguments biased
// toward the interesting boundary cases (valid-looking pages, aliased
// arguments, pages owned by other enclaves). Used by the property tests for
// PageDB invariants, refinement and noninterference, and by the fuzz-style
// integration tests.
#ifndef SRC_OS_ADVERSARY_H_
#define SRC_OS_ADVERSARY_H_

#include <string>
#include <vector>

#include "src/crypto/drbg.h"
#include "src/os/os.h"

namespace komodo::os {

// One adversarial action (an SMC with concrete arguments), recorded so that
// paired noninterference executions can replay the identical trace.
struct AdvAction {
  word call;
  word args[4];
  std::string ToString() const;
};

class Adversary {
 public:
  Adversary(Os& os, uint64_t seed)
      : os_(&os), nsecure_pages_(os.machine().mem.nsecure_pages()), drbg_(seed) {}

  // Detached form: generates actions for a world of `nsecure_pages` secure
  // pages without holding an Os. Used by the fuzz trace generator, which
  // records actions for later replay instead of executing them; Step() is
  // unavailable in this form.
  Adversary(word nsecure_pages, uint64_t seed)
      : os_(nullptr), nsecure_pages_(nsecure_pages), drbg_(seed) {}

  // Generates the next action. Arguments are drawn from a mix of: small page
  // numbers (likely allocated), random valid page numbers, out-of-range
  // numbers, and previously used values — so traces exercise both success and
  // every validation failure.
  AdvAction NextAction();

  // Executes an action (replayable across machines).
  static SmcRet Execute(Os& os, const AdvAction& action);

  // Convenience: generate-and-execute, returning the action taken. Only
  // valid when constructed with an Os.
  AdvAction Step() {
    const AdvAction a = NextAction();
    Execute(*os_, a);
    return a;
  }

 private:
  word RandomPageArg();
  word RandomMapping();

  Os* os_;  // null in the detached (generator-only) form
  word nsecure_pages_;
  crypto::HashDrbg drbg_;
};

}  // namespace komodo::os

#endif  // SRC_OS_ADVERSARY_H_
