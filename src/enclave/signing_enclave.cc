#include "src/enclave/signing_enclave.h"

#include "src/enclave/notary.h"  // NotaryCosts: the same RSA cycle model
#include "src/os/os.h"

namespace komodo::enclave {

namespace {
const NotaryCosts kCosts{};
}

UserAction SigningEnclave::Run(UserContext& ctx) {
  if (awaiting_verify_) {
    return FinishSign(ctx);
  }
  switch (ctx.Reg(0)) {
    case kSignerCmdInit:
      return HandleInit(ctx);
    case kSignerCmdSign:
      return HandleSign(ctx);
    default:
      return UserAction::Exit(0);
  }
}

UserAction SigningEnclave::HandleInit(UserContext& ctx) {
  if (!key_ready_) {
    key_ = crypto::RsaGenerateKey(&drbg_, 1024);
    key_ready_ = true;
    ctx.ChargeCycles(kCosts.rsa_keygen_cycles);
  }
  const std::vector<uint8_t> modulus = key_.pub.n.ToBytesBe(128);
  if (!ctx.WriteBytes(os::kEnclaveSharedVa + kSignerPubkeyOffset, modulus.data(),
                      modulus.size())) {
    return UserAction::Fault();
  }
  return UserAction::Exit(1);
}

UserAction SigningEnclave::HandleSign(UserContext& ctx) {
  if (!key_ready_) {
    return UserAction::Exit(0);
  }
  // Copy the claimed attestation into enclave-private memory first —
  // verifying data the OS can still mutate would be a TOCTOU hole.
  for (word i = 0; i < 24; ++i) {
    word value;
    if (!ctx.Read(os::kEnclaveSharedVa + kSignerInputOffset + i * 4, &value)) {
      return UserAction::Fault();
    }
    staged_[i] = value;
    if (!ctx.Write(os::kEnclaveDataVa + i * 4, value)) {
      return UserAction::Fault();
    }
  }
  awaiting_verify_ = true;
  // Verify(data, measure, mac) against the private copy.
  return UserAction::Svc(kSvcVerify, os::kEnclaveDataVa, os::kEnclaveDataVa + 32,
                         os::kEnclaveDataVa + 64);
}

UserAction SigningEnclave::FinishSign(UserContext& ctx) {
  awaiting_verify_ = false;
  const word err = ctx.Reg(0);
  const word genuine = ctx.Reg(1);
  if (err != kErrSuccess || genuine != 1) {
    return UserAction::Exit(0);  // refuse to sign a forged local attestation
  }
  std::array<word, 8> data;
  std::array<word, 8> measure;
  for (word i = 0; i < 8; ++i) {
    data[i] = staged_[i];
    measure[i] = staged_[8 + i];
  }
  const std::vector<uint8_t> message = SignedMessage(measure, data);
  const std::vector<uint8_t> sig =
      crypto::RsaSignSha256(key_, message.data(), message.size());
  ctx.ChargeCycles(kCosts.rsa_sign_cycles +
                   kCosts.sha_cycles_per_byte * message.size());
  if (!ctx.WriteBytes(os::kEnclaveSharedVa + kSignerSigOffset, sig.data(), sig.size())) {
    return UserAction::Fault();
  }
  return UserAction::Exit(1);
}

std::vector<uint8_t> SigningEnclave::SignedMessage(const std::array<word, 8>& measure,
                                                   const std::array<word, 8>& data) {
  std::vector<uint8_t> message;
  message.reserve(64);
  for (const auto& block : {measure, data}) {
    for (word value : block) {
      message.push_back(static_cast<uint8_t>(value));
      message.push_back(static_cast<uint8_t>(value >> 8));
      message.push_back(static_cast<uint8_t>(value >> 16));
      message.push_back(static_cast<uint8_t>(value >> 24));
    }
  }
  return message;
}

}  // namespace komodo::enclave
