// SHA-256 as enclave code in the modelled A32 subset.
//
// The paper's monitor carries a Vale-verified ARM SHA-256 (§7.2, inherited
// from Bond et al. [12]); this is the enclave-side analogue: a complete
// FIPS 180-4 compression pipeline written with the assembler DSL, executed
// instruction-by-instruction by the interpreter through the enclave's page
// tables. Like the monitor's implementation, it requires block-aligned input
// (§7.2's simplification) — the untrusted driver performs the padding.
//
// Protocol: the OS stages big-endian-converted message words at
// kEnclaveSharedVa (up to kSha256ProgramMaxBlocks 64-byte blocks) and calls
// Enter(thread, nblocks). The enclave hashes and writes the 8 digest words to
// kEnclaveSharedVa + kSha256ProgramDigestOffset, then exits with 0.
#ifndef SRC_ENCLAVE_SHA256_PROGRAM_H_
#define SRC_ENCLAVE_SHA256_PROGRAM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/arm/types.h"
#include "src/os/os.h"

namespace komodo::enclave {

inline constexpr word kSha256ProgramDigestOffset = 0xe00;
inline constexpr word kSha256ProgramMaxBlocks = kSha256ProgramDigestOffset / 64;  // 56

// The program text (fits one code page).
std::vector<word> Sha256Program();

// Untrusted driver half: pads `message` per FIPS 180-4, stages it into the
// shared page as big-endian words, and returns the block count to pass to
// Enter. Message must fit: len <= kSha256ProgramMaxBlocks*64 - 9.
word StageSha256Message(os::Os& os, word shared_pg, const std::vector<uint8_t>& message);

// Reads the digest the enclave produced from the shared page.
std::array<uint8_t, 32> ReadSha256Digest(os::Os& os, word shared_pg);

}  // namespace komodo::enclave

#endif  // SRC_ENCLAVE_SHA256_PROGRAM_H_
