// Sample enclave programs written in the modelled A32 subset. These execute
// for real on the interpreter, through the enclave's own page tables, and
// exercise the SVC API end to end. Used by integration tests and examples.
#ifndef SRC_ENCLAVE_PROGRAMS_H_
#define SRC_ENCLAVE_PROGRAMS_H_

#include <vector>

#include "src/arm/types.h"

namespace komodo::enclave {

using arm::word;

// Exit(arg1 + arg2): the "hello world" of enclaves.
std::vector<word> AddTwoProgram();

// Reads shared[0], computes x*2+1, writes it to shared[1] and Exit(x).
std::vector<word> EchoSharedProgram();

// Each entry: counter (kept in the private data page) += arg1; Exit(counter).
// Demonstrates secure-page persistence across entries.
std::vector<word> CounterProgram();

// Busy-loops forever (for interrupt/Resume testing). If arg1 != 0, it first
// stores arg1 to data[0] so a resumed run can prove context was preserved.
std::vector<word> SpinProgram();

// Batch-ABI variants for the serve layer (DESIGN.md §14): one Enter services
// up to kServeBatchMax requests staged in the shared page —
//   shared[0]      = n (request count)
//   shared[1..n]   = per-request arguments
//   shared[33+i]   = per-request results (written by the enclave)
// and the program exits with n. Amortizing the world-switch cost over a
// batch is the §8.1 optimization the serve scheduler measures.

// counter += arg for each request; results are the running counter values.
// The counter lives in the private data page, so it persists across entries
// but resets when the serve layer evicts and rebuilds the enclave.
std::vector<word> CounterBatchProgram();

// result = 2*arg + 1 for each request (stateless echo).
std::vector<word> EchoBatchProgram();

// Writes 8 words of "user data" (derived from arg1) into its data page,
// issues the Attest SVC, copies the resulting MAC to the shared page
// (words 0..7), then Exit(0). The OS-side test passes the MAC to a second
// enclave for Verify.
std::vector<word> AttestProgram();

// Verifies an attestation: data[8], measurement[8] and mac[8] are staged by
// the OS in the shared page (words 0..23); the enclave copies them into its
// private data page, issues Verify, and Exit(ok).
std::vector<word> VerifyProgram();

// Dynamic memory: expects the OS to have allocated a spare page (page number
// in arg1). Issues the MapData SVC to map it at 0x30000, writes/reads a
// pattern, issues UnmapData, and Exit(0 on success, step number on failure).
std::vector<word> DynMemProgram();

// GetRandom: fills shared[0..3] with 4 random words from the monitor and
// Exit(0).
std::vector<word> RandomProgram();

// Reads its secret from data[0] and writes it straight into the shared
// insecure page — an enclave that *chooses* to declassify (§6's caveat that
// Komodo does not police what enclaves do with their own secrets).
std::vector<word> LeakSecretProgram();

// Faulting programs for exception-path tests.
std::vector<word> ReadOutsideProgram();   // loads from an unmapped VA
std::vector<word> WriteCodeProgram();     // stores to its own (read-only) code page
std::vector<word> UndefinedInsnProgram(); // executes a permanently-undefined encoding

}  // namespace komodo::enclave

#endif  // SRC_ENCLAVE_PROGRAMS_H_
