// The trusted signing enclave that §4 defers: Komodo implements *local*
// attestation in the monitor and "defers remote attestation to a trusted
// enclave (that we have yet to implement)". This is that enclave.
//
// Protocol: at Init it generates an RSA key pair and publishes the public
// modulus; a deployment would bind that key to the signing enclave's
// measurement through a provisioning step (played in the examples/tests by
// the "device manufacturer" endorsing the key). At Sign it takes a local
// attestation (data, measurement, MAC) produced by any enclave on the same
// machine, checks it with the monitor's Verify SVC — only the monitor knows
// the MAC key — and, if genuine, signs (measurement || data) with its RSA
// key. The result convinces a *remote* verifier who trusts only the endorsed
// public key.
#ifndef SRC_ENCLAVE_SIGNING_ENCLAVE_H_
#define SRC_ENCLAVE_SIGNING_ENCLAVE_H_

#include <vector>

#include "src/crypto/rsa.h"
#include "src/enclave/native_runtime.h"

namespace komodo::enclave {

// Commands (Enter arg1).
inline constexpr word kSignerCmdInit = 0;  // keygen; pubkey -> shared+0x200; Exit(1)
inline constexpr word kSignerCmdSign = 1;  // verify local attestation; sig -> shared+0x400
                                           // Exit(1) on success, Exit(0) if the MAC is bogus

// Shared-page layout (byte offsets from kEnclaveSharedVa).
inline constexpr word kSignerInputOffset = 0x000;   // data[8] | measure[8] | mac[8]
inline constexpr word kSignerPubkeyOffset = 0x200;  // RSA modulus, big-endian, 128 B
inline constexpr word kSignerSigOffset = 0x400;     // signature, 128 B

// Cycle model: RSA-1024 keygen/sign as in the notary (see notary.h).
class SigningEnclave : public NativeProgram {
 public:
  explicit SigningEnclave(uint64_t key_seed) : drbg_(key_seed) {}

  UserAction Run(UserContext& ctx) override;

  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

  // What a conforming remote verifier checks: RSA-PKCS#1-v1.5 over
  // (measurement || data), both as little-endian word serialisations.
  static std::vector<uint8_t> SignedMessage(const std::array<word, 8>& measure,
                                            const std::array<word, 8>& data);

 private:
  UserAction HandleInit(UserContext& ctx);
  UserAction HandleSign(UserContext& ctx);
  UserAction FinishSign(UserContext& ctx);

  crypto::HashDrbg drbg_;
  crypto::RsaKeyPair key_;
  bool key_ready_ = false;
  bool awaiting_verify_ = false;
  std::array<word, 24> staged_{};  // enclave-private copy of the input
};

}  // namespace komodo::enclave

#endif  // SRC_ENCLAVE_SIGNING_ENCLAVE_H_
