// The trusted notary from §8.2 (ported from Ironclad): assigns logical
// timestamps to documents. On first entry it constructs an RSA key pair,
// initialises a monotonic counter, and publishes its public key; on
// subsequent calls it hashes the provided document together with the counter,
// signs the result, increments the counter, and returns the signature.
//
// Two backends share the workload code and cycle model so Figure 5 can
// compare them: NotaryProgram runs inside a Komodo enclave (via the native
// runtime, reading the document through the enclave's page table from shared
// insecure pages); NotaryNative models the same binary as a plain Linux
// process.
#ifndef SRC_ENCLAVE_NOTARY_H_
#define SRC_ENCLAVE_NOTARY_H_

#include <cstdint>
#include <vector>

#include "src/crypto/rsa.h"
#include "src/enclave/native_runtime.h"

namespace komodo::enclave {

// Cycle model for the notary's computation on a 900 MHz Cortex-A7, expressed
// per unit of real work the C implementation performs. See EXPERIMENTS.md.
struct NotaryCosts {
  // Unoptimised C SHA-256 including the copy-in of the document.
  uint64_t sha_cycles_per_byte = 90;
  // RSA-1024 private-key operation (schoolbook Montgomery, unoptimised C).
  uint64_t rsa_sign_cycles = 27'000'000;
  // RSA-1024 key-pair generation (dominated by primality testing).
  uint64_t rsa_keygen_cycles = 450'000'000;
};

// Command protocol (Enter arguments).
inline constexpr word kNotaryCmdInit = 0;      // -> Exit(0), pubkey in shared page
inline constexpr word kNotaryCmdNotarize = 1;  // arg2 = document bytes -> Exit(counter)

// Shared-region layout: the document starts at kEnclaveSharedVa; the
// signature is written to the last page of the shared region.
inline constexpr word kNotaryMaxDocBytes = 512 * 1024;
inline constexpr word kNotarySharedPages = kNotaryMaxDocBytes / arm::kPageSize + 1;

// The core workload, shared by both backends: sha256(document || counter),
// then RSA sign. Performs the real crypto and returns the signature.
class NotaryCore {
 public:
  explicit NotaryCore(uint64_t key_seed, const NotaryCosts& costs = NotaryCosts{});

  // Generates the key pair (idempotent). Returns cycles charged.
  uint64_t Init();
  // Signs sha256(doc || counter), increments the counter. Returns cycles
  // charged via `cycles_out` and the signature.
  std::vector<uint8_t> Notarize(const uint8_t* doc, size_t len, uint64_t* cycles_out);

  const crypto::RsaPublicKey& public_key() const { return key_.pub; }
  uint32_t counter() const { return counter_; }
  const NotaryCosts& costs() const { return costs_; }

 private:
  crypto::HashDrbg drbg_;
  NotaryCosts costs_;
  crypto::RsaKeyPair key_;
  bool key_ready_ = false;
  uint32_t counter_ = 0;
};

// Enclave backend: a NativeProgram speaking the command protocol above.
class NotaryProgram : public NativeProgram {
 public:
  explicit NotaryProgram(uint64_t key_seed) : core_(key_seed) {}

  UserAction Run(UserContext& ctx) override;

  NotaryCore& core() { return core_; }

 private:
  NotaryCore core_;
};

// Native-process backend: same workload, no enclave. Returns the signature
// and accumulates simulated cycles in `cycles`.
class NotaryNative {
 public:
  explicit NotaryNative(uint64_t key_seed) : core_(key_seed) {}

  void Init() { cycles_ += core_.Init(); }
  std::vector<uint8_t> Notarize(const std::vector<uint8_t>& doc);

  uint64_t cycles() const { return cycles_; }
  void ResetCycles() { cycles_ = 0; }
  NotaryCore& core() { return core_; }

 private:
  NotaryCore core_;
  uint64_t cycles_ = 0;
};

}  // namespace komodo::enclave

#endif  // SRC_ENCLAVE_NOTARY_H_
